// Integration tests: distributed spectrum construction (Steps II-III).
#include "parallel/dist_spectrum.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>

#include "core/spectrum.hpp"
#include "seq/dataset.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams small_params() {
  core::CorrectorParams p;
  p.k = 8;
  p.tile_overlap = 2;
  p.kmer_threshold = 2;
  p.tile_threshold = 2;
  return p;
}

seq::SyntheticDataset make_dataset(std::uint64_t seed, std::uint64_t n = 600) {
  seq::DatasetSpec spec{"t", n, 50, 1500};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.01;
  errors.error_rate_end = 0.02;
  return seq::SyntheticDataset::generate(spec, errors, seed);
}

/// Reference: global (unpruned) counts from the sequential builder.
std::map<std::uint64_t, std::uint32_t> sequential_kmer_counts(
    const std::vector<seq::Read>& reads, const core::CorrectorParams& p) {
  core::SpectrumExtractor ex(p);
  std::map<std::uint64_t, std::uint32_t> counts;
  std::vector<seq::kmer_id_t> kmers;
  std::vector<seq::tile_id_t> tiles;
  for (const auto& r : reads) {
    kmers.clear();
    tiles.clear();
    ex.extract(r.bases, kmers, tiles);
    for (auto id : kmers) ++counts[id];
  }
  return counts;
}

/// Runs Step II+III across np ranks and returns each rank's owned tables'
/// union, as (id -> count).
std::map<std::uint64_t, std::uint32_t> distributed_kmer_counts(
    const std::vector<seq::Read>& reads, const core::CorrectorParams& p,
    int np, bool batch, unsigned prune_threshold) {
  std::map<std::uint64_t, std::uint32_t> merged;
  std::mutex merge_mutex;
  Heuristics heur;
  heur.batch_reads = batch;
  core::CorrectorParams params = p;
  params.kmer_threshold = prune_threshold;
  params.tile_threshold = prune_threshold;
  rtm::run_world({np, 1}, [&](rtm::Comm& comm) {
    DistSpectrum spectrum(params, heur, comm);
    const std::size_t begin =
        reads.size() * static_cast<std::size_t>(comm.rank()) /
        static_cast<std::size_t>(np);
    const std::size_t end =
        reads.size() * static_cast<std::size_t>(comm.rank() + 1) /
        static_cast<std::size_t>(np);
    if (batch) {
      const std::size_t chunk = 37;
      const std::uint64_t mine = (end - begin + chunk - 1) / chunk;
      const std::uint64_t rounds = comm.allreduce_max(mine);
      std::size_t pos = begin;
      for (std::uint64_t b = 0; b < rounds; ++b) {
        for (std::size_t i = 0; i < chunk && pos < end; ++i, ++pos) {
          spectrum.add_read(reads[pos].bases);
        }
        spectrum.exchange_to_owners();
      }
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        spectrum.add_read(reads[i].bases);
      }
      spectrum.exchange_to_owners();
    }
    if (prune_threshold > 1) spectrum.prune();
    std::lock_guard lock(merge_mutex);
    spectrum.hash_kmers().for_each([&](std::uint64_t id, std::uint32_t c) {
      // Each ID must live on exactly one rank.
      EXPECT_EQ(merged.count(id), 0u) << "id owned by two ranks";
      EXPECT_EQ(hash::owner_of(id, np), comm.rank());
      merged[id] = c;
    });
  });
  return merged;
}

TEST(DistSpectrum, GlobalCountsMatchSequential) {
  const auto ds = make_dataset(1);
  const auto p = small_params();
  const auto reference = sequential_kmer_counts(ds.reads, p);
  for (int np : {1, 2, 4, 8}) {
    const auto dist = distributed_kmer_counts(ds.reads, p, np, false, 1);
    EXPECT_EQ(dist, reference) << "np=" << np;
  }
}

TEST(DistSpectrum, BatchModeProducesSameSpectrum) {
  const auto ds = make_dataset(2);
  const auto p = small_params();
  const auto one_shot = distributed_kmer_counts(ds.reads, p, 4, false, 1);
  const auto batched = distributed_kmer_counts(ds.reads, p, 4, true, 1);
  EXPECT_EQ(batched, one_shot);
}

TEST(DistSpectrum, PruningMatchesSequentialThreshold) {
  const auto ds = make_dataset(3);
  const auto p = small_params();
  auto reference = sequential_kmer_counts(ds.reads, p);
  std::erase_if(reference, [](const auto& kv) { return kv.second < 3; });
  const auto dist = distributed_kmer_counts(ds.reads, p, 4, false, 3);
  EXPECT_EQ(dist, reference);
}

TEST(DistSpectrum, OwnedLookupsAnswerOnlyOwnedIds) {
  const auto ds = make_dataset(4, 100);
  const auto p = small_params();
  rtm::run_world({4, 1}, [&](rtm::Comm& comm) {
    Heuristics heur;
    DistSpectrum spectrum(p, heur, comm);
    const std::size_t begin =
        ds.reads.size() * static_cast<std::size_t>(comm.rank()) / 4;
    const std::size_t end =
        ds.reads.size() * static_cast<std::size_t>(comm.rank() + 1) / 4;
    for (std::size_t i = begin; i < end; ++i) {
      spectrum.add_read(ds.reads[i].bases);
    }
    spectrum.exchange_to_owners();
    spectrum.hash_kmers().for_each([&](std::uint64_t id, std::uint32_t) {
      EXPECT_TRUE(spectrum.owns_kmer(id));
      EXPECT_TRUE(spectrum.owned_kmer(id).has_value());
    });
  });
}

TEST(DistSpectrum, ReplicationGathersWholeSpectrum) {
  const auto ds = make_dataset(5, 200);
  const auto p = small_params();
  const auto reference = sequential_kmer_counts(ds.reads, p);
  rtm::run_world({4, 1}, [&](rtm::Comm& comm) {
    Heuristics heur;
    heur.allgather_kmers = true;
    DistSpectrum spectrum(p, heur, comm);
    const std::size_t begin =
        ds.reads.size() * static_cast<std::size_t>(comm.rank()) / 4;
    const std::size_t end =
        ds.reads.size() * static_cast<std::size_t>(comm.rank() + 1) / 4;
    for (std::size_t i = begin; i < end; ++i) {
      spectrum.add_read(ds.reads[i].bases);
    }
    spectrum.exchange_to_owners();
    spectrum.replicate_kmers();
    // Every rank sees every k-mer with its exact global count.
    for (const auto& [id, count] : reference) {
      ASSERT_EQ(spectrum.replica_kmer(id), count);
    }
  });
}

TEST(DistSpectrum, ReadsTablesHoldGlobalCountsAfterFetch) {
  const auto ds = make_dataset(6, 300);
  auto p = small_params();
  p.kmer_threshold = 2;
  p.tile_threshold = 2;
  auto reference = sequential_kmer_counts(ds.reads, p);
  rtm::run_world({4, 1}, [&](rtm::Comm& comm) {
    Heuristics heur;
    heur.read_kmers = true;
    DistSpectrum spectrum(p, heur, comm);
    const std::size_t begin =
        ds.reads.size() * static_cast<std::size_t>(comm.rank()) / 4;
    const std::size_t end =
        ds.reads.size() * static_cast<std::size_t>(comm.rank() + 1) / 4;
    std::vector<seq::kmer_id_t> my_kmers;
    std::vector<seq::tile_id_t> my_tiles;
    core::SpectrumExtractor ex(p);
    for (std::size_t i = begin; i < end; ++i) {
      spectrum.add_read(ds.reads[i].bases);
      ex.extract(ds.reads[i].bases, my_kmers, my_tiles);
    }
    spectrum.exchange_to_owners();
    spectrum.prune();
    spectrum.fetch_global_reads_tables();
    // Every non-owned k-mer of this rank's reads is answerable locally,
    // with the global (pruned) count.
    for (auto id : my_kmers) {
      if (spectrum.owns_kmer(id)) continue;
      const auto local = spectrum.reads_kmer(id);
      ASSERT_TRUE(local.has_value());
      const auto it = reference.find(id);
      const std::uint32_t global =
          (it != reference.end() && it->second >= p.kmer_threshold)
              ? it->second
              : 0;
      EXPECT_EQ(*local, global);
    }
  });
}

TEST(DistSpectrum, FootprintAccountsAllTables) {
  const auto ds = make_dataset(7, 100);
  const auto p = small_params();
  rtm::run_world({2, 1}, [&](rtm::Comm& comm) {
    Heuristics heur;
    DistSpectrum spectrum(p, heur, comm);
    for (const auto& r : ds.reads) spectrum.add_read(r.bases);
    const auto before = spectrum.footprint();
    EXPECT_GT(before.reads_kmer_entries, 0u);
    EXPECT_GT(before.bytes, 0u);
    spectrum.exchange_to_owners();
    const auto after = spectrum.footprint();
    EXPECT_EQ(after.reads_kmer_entries, 0u);  // pending cleared
    EXPECT_GT(after.hash_kmer_entries, 0u);
    spectrum.drop_reads_tables();
    EXPECT_GT(spectrum.footprint().hash_tile_entries, 0u);
  });
}

}  // namespace
}  // namespace reptile::parallel
