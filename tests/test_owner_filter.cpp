// Property tests for the blocked Bloom filter behind the filter exchange
// (hash::OwnerFilter, DESIGN.md §9). The load-bearing properties, in order
// of how badly their failure would hurt:
//   1. zero false negatives — a false negative answers "absent" for an ID
//      the owner actually holds, silently miscorrecting reads;
//   2. measured FP rate within 2x the configured one — an inflated rate
//      quietly erases the traffic savings the exchange pays for;
//   3. byte-exact serialize/deserialize round trip with every-prefix
//      truncation rejection — the filter crosses the chaos-injected wire,
//      so a garbled buffer must throw (and be discarded), never decode to
//      a filter that answers differently than the one the owner built.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <span>
#include <unordered_set>
#include <vector>

#include "hash/count_table.hpp"
#include "hash/owner_filter.hpp"
#include "rtm_test_seed.hpp"

namespace reptile::hash {
namespace {

const bool kSeedReporter = rtm_test::install_seed_reporter("test_owner_filter");

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(rtm_test::derive(seed));
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> keys;
  keys.reserve(n);
  while (keys.size() < n) {
    const std::uint64_t k = rng();
    if (seen.insert(k).second) keys.push_back(k);
  }
  return keys;
}

TEST(OwnerFilter, ZeroFalseNegatives) {
  // The one property the correction proof leans on: every inserted key
  // answers "possibly present", at every size and configured rate.
  for (const std::size_t n : {1u, 100u, 5000u, 60000u}) {
    for (const double fp : {0.001, 0.01, 0.2}) {
      const auto keys = random_keys(n, 11 + n);
      OwnerFilter f(n, fp);
      for (const auto k : keys) f.insert(k);
      EXPECT_EQ(f.key_count(), n);
      for (const auto k : keys) {
        ASSERT_TRUE(f.possibly_contains(k))
            << "false negative at n=" << n << " fp=" << fp << " key=" << k;
      }
    }
  }
}

TEST(OwnerFilter, SmallPackedIdsNeverFalseNegative) {
  // k-mer IDs are small dense integers (2 bits/base), not well-mixed
  // 64-bit words — the regime where a weak probe derivation would cluster.
  OwnerFilter f(1 << 16, 0.01);
  for (std::uint64_t id = 0; id < (1u << 16); ++id) f.insert(id);
  for (std::uint64_t id = 0; id < (1u << 16); ++id) {
    ASSERT_TRUE(f.possibly_contains(id)) << "id " << id;
  }
}

TEST(OwnerFilter, MeasuredFpRateWithinTwiceConfigured) {
  // 2x headroom covers the blocked-layout inflation the sizing already
  // compensates for plus sampling noise at 200k probes.
  for (const double fp : {0.005, 0.01, 0.05}) {
    const std::size_t n = 50000;
    const auto keys = random_keys(n, 23);
    std::unordered_set<std::uint64_t> inserted(keys.begin(), keys.end());
    OwnerFilter f(n, fp);
    for (const auto k : keys) f.insert(k);

    std::mt19937_64 rng(rtm_test::derive(29));
    const std::size_t probes = 200000;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < probes; ++i) {
      std::uint64_t k = rng();
      while (inserted.count(k) != 0) k = rng();
      hits += f.possibly_contains(k) ? 1 : 0;
    }
    const double measured =
        static_cast<double>(hits) / static_cast<double>(probes);
    EXPECT_LE(measured, 2.0 * fp)
        << "configured " << fp << " measured " << measured;
    // Sizing sanity from the other side: a healthy filter is not so
    // overbuilt that the rate collapses to zero (fill stays meaningful).
    EXPECT_GT(f.fill_ratio(), 0.05);
    EXPECT_LT(f.fill_ratio(), 0.6);
  }
}

TEST(OwnerFilter, BuildFromCountTableCoversEveryKey) {
  std::mt19937_64 rng(rtm_test::derive(37));
  CountTable<> table;
  for (int i = 0; i < 20000; ++i) {
    table.increment(rng() % 30000, static_cast<std::uint32_t>(1 + rng() % 5));
  }
  const OwnerFilter f = OwnerFilter::build_from(table, 0.01);
  EXPECT_EQ(f.key_count(), table.size());
  table.for_each([&](std::uint64_t id, std::uint32_t) {
    ASSERT_TRUE(f.possibly_contains(id)) << "table key " << id;
  });
}

TEST(OwnerFilter, SerializeRoundTripIsByteExact) {
  for (const std::size_t n : {0u, 1u, 777u, 20000u}) {
    const auto keys = random_keys(n, 41 + n);
    OwnerFilter f(n, 0.01);
    for (const auto k : keys) f.insert(k);

    const std::vector<std::uint8_t> bytes = f.serialize();
    ASSERT_EQ(bytes.size(), f.wire_bytes());
    const OwnerFilter back = OwnerFilter::deserialize(std::as_bytes(
        std::span<const std::uint8_t>(bytes.data(), bytes.size())));

    // Byte-for-byte: re-serializing the decoded filter reproduces the
    // original buffer exactly, so the wire format is a total encoding of
    // the filter's state.
    EXPECT_EQ(back.serialize(), bytes);
    EXPECT_EQ(back.block_count(), f.block_count());
    EXPECT_EQ(back.hash_count(), f.hash_count());
    EXPECT_EQ(back.key_count(), f.key_count());
    EXPECT_EQ(back.memory_bytes(), f.memory_bytes());
    // And behaviourally identical on both members and non-members.
    for (const auto k : keys) EXPECT_TRUE(back.possibly_contains(k));
    std::mt19937_64 rng(rtm_test::derive(43));
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t k = rng();
      EXPECT_EQ(back.possibly_contains(k), f.possibly_contains(k));
    }
  }
}

TEST(OwnerFilter, SerializeIntoMatchesSerialize) {
  const auto keys = random_keys(300, 47);
  OwnerFilter f(300, 0.01);
  for (const auto k : keys) f.insert(k);
  std::vector<std::byte> buf(f.wire_bytes());
  f.serialize_into(buf.data());
  const auto expected = f.serialize();
  ASSERT_EQ(buf.size(), expected.size());
  EXPECT_EQ(std::memcmp(buf.data(), expected.data(), buf.size()), 0);
}

TEST(OwnerFilter, DeserializeRejectsEveryTruncation) {
  // The chaos injector truncates payloads to arbitrary prefixes: every
  // strict prefix must throw (test_wire_roundtrip.cpp idiom), as must a
  // buffer with trailing garbage.
  OwnerFilter f(500, 0.01);
  for (const auto k : random_keys(500, 53)) f.insert(k);
  std::vector<std::uint8_t> bytes = f.serialize();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(OwnerFilter::deserialize(std::as_bytes(
                     std::span<const std::uint8_t>(bytes.data(), len))),
                 std::runtime_error)
        << "prefix of " << len << " bytes decoded";
  }
  bytes.push_back(0);
  EXPECT_THROW(OwnerFilter::deserialize(std::as_bytes(
                   std::span<const std::uint8_t>(bytes.data(), bytes.size()))),
               std::runtime_error);
}

TEST(OwnerFilter, DeserializeRejectsGarbledHeaders) {
  OwnerFilter f(100, 0.01);
  for (const auto k : random_keys(100, 59)) f.insert(k);
  const std::vector<std::uint8_t> good = f.serialize();
  const auto decode = [](std::vector<std::uint8_t> bytes) {
    return OwnerFilter::deserialize(std::as_bytes(
        std::span<const std::uint8_t>(bytes.data(), bytes.size())));
  };

  auto bad = good;
  bad[0] ^= 0xFF;  // magic
  EXPECT_THROW(decode(bad), std::runtime_error);

  bad = good;
  bad[4] = 99;  // version
  EXPECT_THROW(decode(bad), std::runtime_error);

  bad = good;
  bad[8] = 0;  // nhashes = 0
  EXPECT_THROW(decode(bad), std::runtime_error);
  bad[8] = 200;  // nhashes beyond the max
  EXPECT_THROW(decode(bad), std::runtime_error);

  bad = good;
  std::uint64_t nblocks = 0;  // nblocks = 0 with a non-empty body
  std::memcpy(bad.data() + 16, &nblocks, sizeof(nblocks));
  EXPECT_THROW(decode(bad), std::runtime_error);
  nblocks = ~std::uint64_t{0};  // absurd block count
  std::memcpy(bad.data() + 16, &nblocks, sizeof(nblocks));
  EXPECT_THROW(decode(bad), std::runtime_error);

  // The untouched buffer still decodes — the rejections above are the
  // header checks, not some blanket failure.
  EXPECT_NO_THROW(decode(good));
}

TEST(OwnerFilter, SizingAndAccounting) {
  EXPECT_THROW(OwnerFilter(100, 0.0), std::invalid_argument);
  EXPECT_THROW(OwnerFilter(100, 1.0), std::invalid_argument);
  EXPECT_THROW(OwnerFilter(100, -0.5), std::invalid_argument);

  // memory_bytes is exactly the block array; wire adds one 32-byte header.
  OwnerFilter f(10000, 0.01);
  EXPECT_EQ(f.memory_bytes(),
            f.block_count() * OwnerFilter::kBlockWords * sizeof(std::uint64_t));
  EXPECT_EQ(f.wire_bytes(), f.memory_bytes() + 32);
  EXPECT_GE(f.hash_count(), 1);
  EXPECT_LE(f.hash_count(), 16);

  // A tighter target rate buys a bigger filter; an empty filter is legal
  // and answers nothing as present.
  EXPECT_GT(OwnerFilter(10000, 0.001).memory_bytes(),
            OwnerFilter(10000, 0.05).memory_bytes());
  OwnerFilter empty(0, 0.01);
  std::mt19937_64 rng(rtm_test::derive(61));
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(empty.possibly_contains(rng()));
  }
}

}  // namespace
}  // namespace reptile::hash
