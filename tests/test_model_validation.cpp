// Model-vs-reality validation: the workload synthesis must agree with the
// REAL pipeline's measured counters on the same dataset at small scale.
// This is the hinge the large-scale figures swing on: if synthesis matches
// measurement at np we can run, projecting to np we cannot is arithmetic,
// not hope.
#include <gtest/gtest.h>

#include "parallel/dist_pipeline.hpp"
#include "perfmodel/workload.hpp"
#include "seq/dataset.hpp"

namespace reptile::perfmodel {
namespace {

struct Setup {
  core::CorrectorParams params;
  seq::ErrorModelParams errors;
  seq::SyntheticDataset ds;
  DatasetTraits traits;

  Setup() {
    params.k = 10;
    params.tile_overlap = 4;
    params.kmer_threshold = 3;
    params.tile_threshold = 3;
    params.chunk_size = 256;
    errors.error_rate_start = 0.003;
    errors.error_rate_end = 0.01;
    errors.burst_fraction = 0.2;
    errors.burst_regions = 4;
    errors.burst_multiplier = 8.0;
    seq::DatasetSpec spec{"val", 3000, 80, 4500};
    ds = seq::SyntheticDataset::generate(spec, errors, 404);
    traits = measure_traits(ds, params, errors, /*np_ref=*/64);
  }
};

const Setup& setup() {
  static const Setup s;
  return s;
}

std::uint64_t measured_remote(const parallel::DistResult& r) {
  std::uint64_t remote = 0;
  for (const auto& rank : r.ranks) remote += rank.remote.remote_lookups();
  return remote;
}

double synthesized_remote(int np, const parallel::Heuristics& heur) {
  const auto workload =
      synthesize_workload(setup().traits, setup().ds.spec, np, 4, heur);
  double remote = 0;
  for (const auto& w : workload) remote += w.remote_lookups();
  return remote;
}

TEST(ModelValidation, RemoteLookupTotalsMatchRealPipeline) {
  for (int np : {4, 8}) {
    parallel::DistConfig config;
    config.params = setup().params;
    config.ranks = np;
    config.ranks_per_node = 4;
    const auto result = parallel::run_distributed(setup().ds.reads, config);
    const double real = static_cast<double>(measured_remote(result));
    const double modeled = synthesized_remote(np, config.heuristics);
    // Synthesis averages per-read work over burst/quiet classes and applies
    // the (np-1)/np owner split analytically; it must land within ~15% of
    // the real counter.
    EXPECT_NEAR(modeled, real, 0.15 * real) << "np=" << np;
  }
}

TEST(ModelValidation, SubstitutionTotalsMatchRealPipeline) {
  parallel::DistConfig config;
  config.params = setup().params;
  config.ranks = 8;
  const auto result = parallel::run_distributed(setup().ds.reads, config);
  const auto workload = synthesize_workload(setup().traits, setup().ds.spec,
                                            8, 4, config.heuristics);
  double modeled_subs = 0;
  for (const auto& w : workload) modeled_subs += w.substitutions;
  const auto real_subs = static_cast<double>(result.total_substitutions());
  EXPECT_NEAR(modeled_subs, real_subs, 0.05 * real_subs + 5);
}

TEST(ModelValidation, ImbalanceDirectionMatches) {
  // Without load balancing, the real pipeline's per-rank untrusted-tile
  // spread and the synthesized per-rank tile-lookup spread must both be
  // large, and both collapse with balancing.
  auto spread_real = [&](bool balance) {
    parallel::DistConfig config;
    config.params = setup().params;
    config.ranks = 8;
    config.heuristics.load_balance = balance;
    const auto result = parallel::run_distributed(setup().ds.reads, config);
    std::uint64_t lo = ~0ull, hi = 0;
    for (const auto& r : result.ranks) {
      lo = std::min(lo, r.tiles_untrusted);
      hi = std::max(hi, r.tiles_untrusted);
    }
    return static_cast<double>(hi) / std::max<double>(1, static_cast<double>(lo));
  };
  auto spread_model = [&](bool balance) {
    parallel::Heuristics heur;
    heur.load_balance = balance;
    const auto workload =
        synthesize_workload(setup().traits, setup().ds.spec, 8, 4, heur);
    double lo = 1e300, hi = 0;
    for (const auto& w : workload) {
      lo = std::min(lo, w.tile_lookups);
      hi = std::max(hi, w.tile_lookups);
    }
    return hi / std::max(1.0, lo);
  };
  EXPECT_GT(spread_real(false), 1.5);
  EXPECT_GT(spread_model(false), 1.5);
  EXPECT_LT(spread_real(true), 1.4);
  EXPECT_LT(spread_model(true), 1.05);
}

TEST(ModelValidation, ReadsTableHitModelMatchesReality) {
  // read_kmers mode: the model subtracts measured own-set hits; the real
  // pipeline's reads-table hit counter must be in the same range.
  parallel::DistConfig config;
  config.params = setup().params;
  config.ranks = 8;
  config.heuristics.read_kmers = true;
  const auto result = parallel::run_distributed(setup().ds.reads, config);
  std::uint64_t hits = 0;
  for (const auto& r : result.ranks) hits += r.remote.reads_table_hits;

  const double base = synthesized_remote(8, parallel::Heuristics{});
  const double cached = synthesized_remote(8, config.heuristics);
  const double modeled_hits = base - cached;
  EXPECT_NEAR(modeled_hits, static_cast<double>(hits),
              0.35 * static_cast<double>(hits))
      << "modeled=" << modeled_hits << " real=" << hits;
}

}  // namespace
}  // namespace reptile::perfmodel
