// Unit tests: machine-readable run reports (CSV/JSON), the schema
// validation in RunReport::add, the Stopwatch monotonic-clock pin, and the
// DistResult flattening.
#include "stats/report.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "parallel/report.hpp"
#include "seq/dataset.hpp"
#include "stats/stopwatch.hpp"

namespace reptile::stats {
namespace {

TEST(RunReport, CsvHasHeaderAndRows) {
  RunReport r("demo");
  r.record().add("rank", 0).add("time", 1.5);
  r.record().add("rank", 1).add("time", 2.0);
  EXPECT_EQ(r.to_csv(), "rank,time\n0,1.5\n1,2\n");
}

TEST(RunReport, IntegersRenderWithoutDecimalPoint) {
  RunReport r("ints");
  r.record().add("big", 123456789.0).add("frac", 0.25);
  const auto csv = r.to_csv();
  EXPECT_NE(csv.find("123456789,"), std::string::npos);
  EXPECT_EQ(csv.find("123456789.0"), std::string::npos);
  EXPECT_NE(csv.find("0.25"), std::string::npos);
}

TEST(RunReport, JsonIsWellFormedForSimpleRecords) {
  RunReport r("j");
  r.record().add("a", 1).add("b", 2.5);
  EXPECT_EQ(r.to_json(), R"({"title":"j","records":[{"a":1,"b":2.5}]})");
}

TEST(RunReport, JsonEscapesQuotesAndBackslashes) {
  RunReport r("say \"hi\" \\ there");
  r.record().add("x", 1);
  const auto json = r.to_json();
  EXPECT_NE(json.find(R"(say \"hi\" \\ there)"), std::string::npos);
}

TEST(RunReport, EmptyReportStillRenders) {
  RunReport r("empty");
  EXPECT_EQ(r.to_csv(), "\n");
  EXPECT_EQ(r.to_json(), R"({"title":"empty","records":[]})");
  EXPECT_EQ(r.size(), 0u);
}

TEST(RunReport, SchemaComesFromFirstRecord) {
  RunReport r("s");
  r.record().add("one", 1).add("two", 2);
  r.record().add("one", 3).add("two", 4);
  EXPECT_EQ(r.schema(), (std::vector<std::string>{"one", "two"}));
}

TEST(RunReport, LaterRecordsMayOmitTrailingFields) {
  RunReport r("s");
  r.record().add("one", 1).add("two", 2);
  r.record().add("one", 3);  // legal: omitted trailing field renders as 0
  EXPECT_EQ(r.to_csv(), "one,two\n1,2\n3,\n");
}

TEST(RunReport, RejectsUnknownFieldOnLaterRecords) {
  RunReport r("s");
  r.record().add("one", 1).add("two", 2);
  r.record().add("one", 3);
  try {
    r.add("tow", 4);  // typo'd name would silently misalign the CSV
    FAIL() << "expected logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("\"tow\""), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("\"two\""), std::string::npos);
  }
}

TEST(RunReport, RejectsOutOfOrderFields) {
  RunReport r("s");
  r.record().add("one", 1).add("two", 2);
  r.record();
  EXPECT_THROW(r.add("two", 2), std::logic_error);
}

TEST(RunReport, RejectsMoreFieldsThanSchema) {
  RunReport r("s");
  r.record().add("one", 1);
  r.record().add("one", 2);
  EXPECT_THROW(r.add("extra", 3), std::logic_error);
}

TEST(RunReport, RejectsAddBeforeFirstRecord) {
  RunReport r("s");
  EXPECT_THROW(r.add("one", 1), std::logic_error);
}

TEST(Stopwatch, UsesMonotonicClockAndNeverGoesNegative) {
  // The static_asserts in stopwatch.hpp pin the clock choice at compile
  // time; this pins the observable consequence — a duration taken across
  // arbitrary scheduling can round to zero but can never be negative (a
  // wall-clock stopwatch would regress under an NTP step).
  Stopwatch watch;
  double last = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double s = watch.seconds();
    EXPECT_GE(s, 0.0);
    EXPECT_GE(s, last) << "monotonic clock went backwards";
    last = s;
  }
  watch.restart();
  EXPECT_GE(watch.seconds(), 0.0);

  Accumulator acc;
  for (int i = 0; i < 100; ++i) {
    acc.start();
    acc.stop();
  }
  EXPECT_GE(acc.seconds(), 0.0);
}

TEST(DistReport, FlattensEveryRank) {
  seq::DatasetSpec spec{"rep", 400, 60, 900};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.005;
  errors.error_rate_end = 0.01;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 17);
  parallel::DistConfig config;
  config.params.k = 10;
  config.params.tile_overlap = 4;
  config.ranks = 4;
  const auto result = parallel::run_distributed(ds.reads, config);

  const auto report = parallel::to_report(result, "test run");
  EXPECT_EQ(report.size(), 4u);
  const auto csv = report.to_csv();
  EXPECT_NE(csv.find("remote_tile_lookups"), std::string::npos);
  EXPECT_NE(csv.find("construct_seconds"), std::string::npos);
  // 4 data rows + header.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 5);
  const auto json = report.to_json();
  EXPECT_NE(json.find("\"records\":[{"), std::string::npos);
}

}  // namespace
}  // namespace reptile::stats
