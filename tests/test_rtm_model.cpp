// Model-checker tier (DESIGN.md §8): schedule exploration + happens-before
// race analysis of the PRODUCTION ring/mailbox/arena templates, driven
// through rtm/model/scenarios.hpp.
//
// Two layers:
//   - checker self-tests: hand-built mini-scenarios with known verdicts
//     (a plain-field race, an over-relaxed publish, an ABBA deadlock, a
//     correct release/acquire handshake) pin that the checker itself finds
//     what it claims to find and accepts what it must accept;
//   - production sweeps: bounded-exhaustive DFS over the tiny
//     configurations (2 producers / 1 consumer, capacity-2 ring) and
//     seeded random walks over all scenarios. RTM_MODEL_SCHEDULES scales
//     the random budget (default 20000 per scenario = 100k total);
//     RTM_MODEL_SEED picks the walk; RTM_MODEL_DEEP=1 adds the
//     preemption-bound-2 / overflow-heavy exhaustive runs the CI model
//     job uses (minutes, not seconds).
//
// Every failure message embeds the `seed:d0.d1...` replay token and the
// tools/rtm_model command line that reproduces the schedule exactly.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "rtm/model/scenarios.hpp"

namespace reptile::rtm::model {
namespace {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

Result run(const std::function<void(Sim&)>& fn, Mode mode,
           std::uint64_t schedules, int preemptions) {
  Options o;
  o.mode = mode;
  o.max_schedules = schedules;
  o.seed = env_u64("RTM_MODEL_SEED", 1);
  o.max_preemptions = preemptions;
  return explore(o, fn);
}

Result run_named(const char* name, Mode mode, std::uint64_t schedules,
                 int preemptions) {
  const scenarios::Named* sc = scenarios::find(name);
  EXPECT_NE(sc, nullptr) << "unknown scenario " << name;
  return run(sc->fn, mode, schedules, preemptions);
}

// ---- replay token -----------------------------------------------------------

TEST(ModelReplay, TokenRoundTrip) {
  const std::vector<int> decisions{0, 3, 1, 0, 2};
  const std::string token = format_replay(42, decisions);
  EXPECT_EQ(token, "42:0.3.1.0.2");
  std::uint64_t seed = 0;
  std::vector<int> parsed;
  ASSERT_TRUE(parse_replay(token, &seed, &parsed));
  EXPECT_EQ(seed, 42u);
  EXPECT_EQ(parsed, decisions);
  EXPECT_TRUE(parse_replay("7:", &seed, &parsed));  // empty decision list
  EXPECT_TRUE(parsed.empty());
  EXPECT_FALSE(parse_replay("no-colon", &seed, &parsed));
  EXPECT_FALSE(parse_replay("x:1.2", &seed, &parsed));
}

// ---- checker self-tests -----------------------------------------------------

// Unsynchronized writes to a plain field from two threads: a certain data
// race; the happens-before checker must flag it within a tiny DFS.
TEST(ModelChecker, FlagsPlainFieldRace) {
  auto scenario = [](Sim& sim) {
    auto v = std::make_shared<PlainVar<int>>();
    sim.thread("w1", [v] { put(*v, 1); });
    sim.thread("w2", [v] { put(*v, 2); });
  };
  const Result r = run(scenario, Mode::kDfs, 1000, -1);
  ASSERT_TRUE(r.failed) << "two unsynchronized writers must race";
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
  EXPECT_FALSE(r.replay_token.empty());
}

// The classic message-passing litmus: plain payload published through a
// release store, consumed after an acquire load. Correct — the checker
// must exhaust the full schedule space without a complaint.
TEST(ModelChecker, AcceptsReleaseAcquirePublish) {
  auto scenario = [](Sim& sim) {
    struct State {
      PlainVar<int> data;
      Atomic<int> flag{0};
    };
    auto st = std::make_shared<State>();
    sim.thread("producer", [st] {
      put(st->data, 41);
      st->flag.store(1, std::memory_order_release);
    });
    sim.thread("consumer", [st] {
      while (st->flag.load(std::memory_order_acquire) == 0) {
        ModelAtomics::yield();
      }
      require(take(st->data) == 41, "lost payload");
    });
  };
  const Result r = run(scenario, Mode::kDfs, 100000, -1);
  EXPECT_FALSE(r.failed) << describe_failure(r, "release_acquire_publish");
  EXPECT_TRUE(r.exhausted);
}

// Same litmus with a relaxed publish store: no happens-before edge to the
// consumer, so the payload read races. x86 hardware would hide this; the
// weak-memory simulation must not.
TEST(ModelChecker, FlagsRelaxedPublish) {
  auto scenario = [](Sim& sim) {
    struct State {
      PlainVar<int> data;
      Atomic<int> flag{0};
    };
    auto st = std::make_shared<State>();
    sim.thread("producer", [st] {
      put(st->data, 41);
      st->flag.store(1, std::memory_order_relaxed);
    });
    sim.thread("consumer", [st] {
      while (st->flag.load(std::memory_order_acquire) == 0) {
        ModelAtomics::yield();
      }
      take(st->data);
    });
  };
  const Result r = run(scenario, Mode::kDfs, 100000, -1);
  ASSERT_TRUE(r.failed) << "relaxed publish must race";
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
}

// Store-buffering (Dekker): with seq_cst fences both threads cannot read
// the other's flag as 0. A failure here would mean the SC-clock modeling
// lost the total order that WaiterGate's handshake depends on.
TEST(ModelChecker, SeqCstFencesForbidStoreBuffering) {
  auto scenario = [](Sim& sim) {
    struct State {
      Atomic<int> x{0}, y{0};
      PlainVar<int> saw_x0, saw_y0;
    };
    auto st = std::make_shared<State>();
    sim.thread("t1", [st] {
      st->x.store(1, std::memory_order_relaxed);
      ModelAtomics::fence(std::memory_order_seq_cst);
      put(st->saw_y0, st->y.load(std::memory_order_relaxed) == 0 ? 1 : 0);
    });
    sim.thread("t2", [st] {
      st->y.store(1, std::memory_order_relaxed);
      ModelAtomics::fence(std::memory_order_seq_cst);
      put(st->saw_x0, st->x.load(std::memory_order_relaxed) == 0 ? 1 : 0);
    });
    sim.invariant([st] {
      require(!(take(st->saw_x0) == 1 && take(st->saw_y0) == 1),
              "both sides read 0: seq_cst total order violated");
    });
  };
  const Result r = run(scenario, Mode::kDfs, 200000, -1);
  EXPECT_FALSE(r.failed) << describe_failure(r, "store_buffering");
  EXPECT_TRUE(r.exhausted);
}

// ABBA lock ordering: some schedule must deadlock, and the checker's
// report must say which threads are stuck where.
TEST(ModelChecker, FlagsAbbaDeadlock) {
  auto scenario = [](Sim& sim) {
    struct State {
      Mutex a, b;
    };
    auto st = std::make_shared<State>();
    sim.thread("t1", [st] {
      st->a.lock();
      st->b.lock();
      st->b.unlock();
      st->a.unlock();
    });
    sim.thread("t2", [st] {
      st->b.lock();
      st->a.lock();
      st->a.unlock();
      st->b.unlock();
    });
  };
  const Result r = run(scenario, Mode::kDfs, 10000, -1);
  ASSERT_TRUE(r.failed) << "ABBA ordering must deadlock in some schedule";
  EXPECT_NE(r.message.find("deadlock"), std::string::npos) << r.message;
  EXPECT_FALSE(r.replay_token.empty());
}

// ---- production structures: bounded-exhaustive ------------------------------

// The acceptance configuration: 2 producers / 1 consumer through a
// capacity-2 ring (overflow spill included), every schedule with at most
// one preemption. ~16k schedules, ~1s.
TEST(ModelExhaustive, RingFifoSmall) {
  const Result r = run_named("ring_fifo_small", Mode::kDfs, 3000000, 1);
  EXPECT_FALSE(r.failed) << describe_failure(r, "ring_fifo_small");
  EXPECT_TRUE(r.exhausted) << "DFS budget too small: " << r.schedules;
}

// Lost-wakeup handshake, preemption bound 2: a few hundred schedules.
TEST(ModelExhaustive, WaiterGate) {
  const Result r = run_named("waiter_gate", Mode::kDfs, 3000000, 2);
  EXPECT_FALSE(r.failed) << describe_failure(r, "waiter_gate");
  EXPECT_TRUE(r.exhausted) << "DFS budget too small: " << r.schedules;
}

// Arena slab retire vs lock-free releases, preemption bound 2.
TEST(ModelExhaustive, SlabGate) {
  const Result r = run_named("slab_gate", Mode::kDfs, 3000000, 2);
  EXPECT_FALSE(r.failed) << describe_failure(r, "slab_gate");
  EXPECT_TRUE(r.exhausted) << "DFS budget too small: " << r.schedules;
}

// The deep tier the CI model job runs (RTM_MODEL_DEEP=1): preemption
// bound 2 on the acceptance config and bound 1 on the overflow-heavy and
// exact-envelope configs. Minutes of wall clock, so skipped by default.
TEST(ModelExhaustive, DeepConfigs) {
  if (env_u64("RTM_MODEL_DEEP", 0) == 0) {
    GTEST_SKIP() << "set RTM_MODEL_DEEP=1 for the deep exhaustive tier";
  }
  struct Config {
    const char* name;
    int preemptions;
  };
  for (const Config& c : {Config{"ring_fifo_small", 2},
                          Config{"mailbox_overflow", 1},
                          Config{"ring_exact", 1}}) {
    const Result r = run_named(c.name, Mode::kDfs, 3000000, c.preemptions);
    EXPECT_FALSE(r.failed) << describe_failure(r, c.name);
    EXPECT_TRUE(r.exhausted)
        << c.name << ": DFS budget too small: " << r.schedules;
  }
}

// ---- production structures: seeded random walks -----------------------------

// All scenarios, RTM_MODEL_SCHEDULES random schedules each (default
// 20000 x 5 = 100k total). Unbounded preemptions; stale-read choices and
// preemption points sampled with a bias toward the SC-like default.
TEST(ModelRandom, AllScenarios) {
  const std::uint64_t budget = env_u64("RTM_MODEL_SCHEDULES", 20000);
  for (const scenarios::Named& sc : scenarios::all()) {
    const Result r = run(sc.fn, Mode::kRandom, budget, -1);
    EXPECT_FALSE(r.failed) << describe_failure(r, sc.name);
    EXPECT_EQ(r.schedules, budget) << sc.name;
  }
}

}  // namespace
}  // namespace reptile::rtm::model
