// Differential fuzz for hash::CountTable against std::unordered_map.
//
// The robin-hood table (backward-shift deletion, 8-bit probe budget with
// grow-and-retry, saturating counts, exact memory accounting) backs every
// spectrum — and, since the filter exchange, the owner filters are built
// straight from it. A silent divergence here corrupts corrections AND
// filters, so the table is fuzzed op-for-op against the STL map under the
// seeded-schedule regime of rtm_test_seed.hpp (RTM_TEST_SEED re-rolls the
// op streams; failures print a one-line replay command).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <random>
#include <unordered_map>
#include <vector>

#include "hash/count_table.hpp"
#include "rtm_test_seed.hpp"

namespace reptile::hash {
namespace {

const bool kSeedReporter =
    rtm_test::install_seed_reporter("test_count_table_fuzz");

using Model = std::unordered_map<std::uint64_t, std::uint32_t>;

constexpr std::uint32_t kCountMax = std::numeric_limits<std::uint32_t>::max();

/// Mirrors CountTable's saturating add in the reference model.
void model_increment(Model& model, std::uint64_t key, std::uint32_t delta) {
  std::uint32_t& c = model[key];
  c = (delta < kCountMax - c) ? c + delta : kCountMax;
}

/// Exhaustive bidirectional comparison: same size, every model entry
/// findable with an equal count, every iterated entry present in the model.
template <class Table>
void expect_matches(const Table& table, const Model& model) {
  ASSERT_EQ(table.size(), model.size());
  for (const auto& [key, count] : model) {
    const auto found = table.find(key);
    ASSERT_TRUE(found.has_value()) << "key " << key << " lost";
    EXPECT_EQ(*found, count) << "key " << key;
  }
  std::size_t iterated = 0;
  table.for_each([&](std::uint64_t key, std::uint32_t count) {
    ++iterated;
    const auto it = model.find(key);
    ASSERT_NE(it, model.end()) << "stray key " << key;
    EXPECT_EQ(count, it->second) << "key " << key;
  });
  EXPECT_EQ(iterated, model.size());
}

/// Runs `ops` random operations over `key_space` possible keys, checking
/// the table against the model continuously (point checks per op, full
/// sweep periodically). Small key spaces force re-increment and
/// backward-shift churn; wide ones force growth.
void fuzz_against_model(std::uint64_t seed, std::size_t ops,
                        std::uint64_t key_space, bool allow_prune) {
  std::mt19937_64 rng(rtm_test::derive(seed));
  CountTable<> table;
  Model model;
  const auto random_key = [&] {
    // Spread draws over the full 64-bit range so ownership of the low bits
    // is not special; modulo keeps the space bounded.
    return rng() % key_space;
  };
  for (std::size_t op = 0; op < ops; ++op) {
    const std::uint64_t before = table.memory_bytes();
    const auto roll = rng() % 100;
    if (roll < 55) {
      const std::uint64_t key = random_key();
      const std::uint32_t delta =
          static_cast<std::uint32_t>(1 + rng() % 9);
      const std::uint32_t got = table.increment(key, delta);
      model_increment(model, key, delta);
      EXPECT_EQ(got, model[key]);
    } else if (roll < 75) {
      const std::uint64_t key = random_key();
      EXPECT_EQ(table.erase(key), model.erase(key) == 1);
    } else if (roll < 90) {
      const std::uint64_t key = random_key();
      const auto it = model.find(key);
      const auto found = table.find(key);
      EXPECT_EQ(found.has_value(), it != model.end());
      if (found && it != model.end()) EXPECT_EQ(*found, it->second);
      EXPECT_EQ(table.contains(key), it != model.end());
    } else if (roll < 97 || !allow_prune) {
      // Saturation probe: a near-max delta must clamp, not wrap.
      const std::uint64_t key = random_key();
      const std::uint32_t got = table.increment(key, kCountMax - 3);
      model_increment(model, key, kCountMax - 3);
      EXPECT_EQ(got, model[key]);
    } else {
      const std::uint32_t threshold =
          static_cast<std::uint32_t>(1 + rng() % 4);
      const std::size_t removed = table.prune_below(threshold);
      std::size_t model_removed = 0;
      for (auto it = model.begin(); it != model.end();) {
        if (it->second < threshold) {
          it = model.erase(it);
          ++model_removed;
        } else {
          ++it;
        }
      }
      EXPECT_EQ(removed, model_removed);
    }
    // memory_bytes() only moves on rehash (growth) or a prune rebuild;
    // increment/erase/find must never shrink the footprint.
    if (roll < 97 || !allow_prune) {
      EXPECT_GE(table.memory_bytes(), before);
    }
    if (op % 256 == 255) expect_matches(table, model);
  }
  expect_matches(table, model);
}

TEST(CountTableFuzz, DifferentialSmallKeySpace) {
  // 48 possible keys: every key is re-incremented, erased, and re-inserted
  // many times, hammering the backward-shift deletion path.
  fuzz_against_model(/*seed=*/101, /*ops=*/6000, /*key_space=*/48,
                     /*allow_prune=*/false);
}

TEST(CountTableFuzz, DifferentialSmallKeySpaceWithPrune) {
  fuzz_against_model(/*seed=*/102, /*ops=*/6000, /*key_space=*/48,
                     /*allow_prune=*/true);
}

TEST(CountTableFuzz, DifferentialMediumKeySpace) {
  // ~4k keys at ~6k ops: the table crosses several load-factor rehashes
  // while still seeing collisions and erases.
  fuzz_against_model(/*seed=*/103, /*ops=*/6000, /*key_space=*/4096,
                     /*allow_prune=*/true);
}

TEST(CountTableFuzz, DifferentialWideKeys) {
  // Effectively unique 64-bit keys: pure growth plus absent-key probes.
  fuzz_against_model(/*seed=*/104, /*ops=*/4000,
                     /*key_space=*/~std::uint64_t{0},
                     /*allow_prune=*/true);
}

TEST(CountTableFuzz, MemoryBytesExactAndMonotoneUnderInsertion) {
  std::mt19937_64 rng(rtm_test::derive(105));
  CountTable<> table;
  std::size_t previous = table.memory_bytes();
  for (int i = 0; i < 20000; ++i) {
    table.increment(rng());
    const std::size_t now = table.memory_bytes();
    // Exact accounting: key + count + probe byte per slot, nothing hidden.
    EXPECT_EQ(now, table.capacity() * (sizeof(std::uint64_t) +
                                       sizeof(std::uint32_t) +
                                       sizeof(std::uint8_t)));
    EXPECT_GE(now, previous);
    previous = now;
  }
  EXPECT_GT(table.capacity(), 20000u);  // it did grow past the insertions
}

// Identity hash lets the test steer slot placement: keys that are equal in
// the low bits all land in one robin-hood chain until a rehash widens the
// mask enough to tell them apart.
struct IdentityHash {
  std::size_t operator()(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>(key);
  }
};

TEST(CountTableFuzz, ProbeOverflowRegrowsUntilKeysSpread) {
  // 400 keys of the form i<<16 collide perfectly while capacity <= 2^16,
  // so insert #256 exhausts the 8-bit probe budget. increment() must grow
  // and retry until the wider mask separates the keys — not loop, not drop.
  CountTable<std::uint32_t, IdentityHash> table;
  Model model;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const std::uint64_t key = i << 16;
    EXPECT_EQ(table.increment(key), 1u);
    model_increment(model, key, 1);
  }
  EXPECT_GT(table.capacity(), std::size_t{1} << 16);
  expect_matches(table, model);
}

TEST(CountTableFuzz, BackwardShiftInLongChains) {
  // Same trick at sub-overflow scale: ~200 perfectly-colliding keys with
  // interleaved erases exercise backward-shift over long displaced runs.
  std::mt19937_64 rng(rtm_test::derive(106));
  CountTable<std::uint32_t, IdentityHash> table;
  Model model;
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < 200; ++i) keys.push_back(i << 20);
  for (int round = 0; round < 6; ++round) {
    std::shuffle(keys.begin(), keys.end(), rng);
    for (const std::uint64_t key : keys) {
      table.increment(key);
      model_increment(model, key, 1);
    }
    std::shuffle(keys.begin(), keys.end(), rng);
    for (std::size_t i = 0; i < keys.size() / 2; ++i) {
      EXPECT_EQ(table.erase(keys[i]), model.erase(keys[i]) == 1);
    }
    expect_matches(table, model);
  }
}

TEST(CountTableFuzz, ClearReleasesAndRestarts) {
  std::mt19937_64 rng(rtm_test::derive(107));
  CountTable<> table;
  for (int i = 0; i < 1000; ++i) table.increment(rng() % 512);
  table.clear();
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.memory_bytes(), 0u);
  EXPECT_FALSE(table.contains(1));
  EXPECT_FALSE(table.erase(1));
  // The cleared table is fully usable again.
  Model model;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng() % 512;
    table.increment(key);
    model_increment(model, key, 1);
  }
  expect_matches(table, model);
}

}  // namespace
}  // namespace reptile::hash
