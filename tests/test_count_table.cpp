// Unit tests: robin-hood counting table.
#include "hash/count_table.hpp"

#include <gtest/gtest.h>

#include <map>

#include "seq/rng.hpp"

namespace reptile::hash {
namespace {

TEST(CountTable, StartsEmpty) {
  CountTable<> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.find(42));
  EXPECT_FALSE(t.contains(42));
}

TEST(CountTable, IncrementInsertsAndAccumulates) {
  CountTable<> t;
  EXPECT_EQ(t.increment(7), 1u);
  EXPECT_EQ(t.increment(7), 2u);
  EXPECT_EQ(t.increment(7, 5), 7u);
  EXPECT_EQ(t.find(7), 7u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(CountTable, ZeroKeyIsAValidKey) {
  // Packed "AAAA..." k-mers have ID 0; the table must not treat 0 as a
  // sentinel.
  CountTable<> t;
  EXPECT_EQ(t.increment(0), 1u);
  EXPECT_EQ(t.find(0), 1u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(CountTable, InsertWithZeroDeltaRecordsAbsence) {
  // Used by the add-remote heuristic to cache "definitively absent".
  CountTable<> t;
  t.increment(99, 0);
  ASSERT_TRUE(t.find(99).has_value());
  EXPECT_EQ(*t.find(99), 0u);
}

TEST(CountTable, EraseRemovesAndCompacts) {
  CountTable<> t;
  for (std::uint64_t k = 0; k < 100; ++k) t.increment(k, k + 1);
  EXPECT_TRUE(t.erase(50));
  EXPECT_FALSE(t.find(50));
  EXPECT_FALSE(t.erase(50));
  EXPECT_EQ(t.size(), 99u);
  // All other entries still reachable after backward-shift deletion.
  for (std::uint64_t k = 0; k < 100; ++k) {
    if (k == 50) continue;
    ASSERT_EQ(t.find(k), k + 1) << k;
  }
}

TEST(CountTable, PruneBelowDropsLightEntries) {
  CountTable<> t;
  for (std::uint64_t k = 0; k < 200; ++k) t.increment(k, (k % 5) + 1);
  const std::size_t removed = t.prune_below(3);
  EXPECT_EQ(removed, 80u);  // counts 1 and 2
  EXPECT_EQ(t.size(), 120u);
  t.for_each([](std::uint64_t, std::uint32_t c) { EXPECT_GE(c, 3u); });
}

TEST(CountTable, GrowsThroughManyInserts) {
  CountTable<> t;
  seq::Rng rng(5);
  std::map<std::uint64_t, std::uint32_t> reference;
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t key = rng.below(8000);
    ++reference[key];
    t.increment(key);
  }
  EXPECT_EQ(t.size(), reference.size());
  for (const auto& [k, c] : reference) {
    ASSERT_EQ(t.find(k), c) << k;
  }
}

TEST(CountTable, ForEachVisitsEverythingOnce) {
  CountTable<> t;
  for (std::uint64_t k = 100; k < 400; ++k) t.increment(k, 2);
  std::map<std::uint64_t, int> seen;
  t.for_each([&](std::uint64_t k, std::uint32_t c) {
    EXPECT_EQ(c, 2u);
    ++seen[k];
  });
  EXPECT_EQ(seen.size(), 300u);
  for (const auto& [k, n] : seen) {
    EXPECT_EQ(n, 1) << k;
    EXPECT_GE(k, 100u);
    EXPECT_LT(k, 400u);
  }
}

TEST(CountTable, EntriesMatchesForEach) {
  CountTable<> t;
  for (std::uint64_t k = 0; k < 50; ++k) t.increment(k * 17, k);
  const auto entries = t.entries();
  EXPECT_EQ(entries.size(), t.size());
  for (const auto& [k, c] : entries) {
    EXPECT_EQ(t.find(k), c);
  }
}

TEST(CountTable, ClearReleasesMemory) {
  CountTable<> t;
  for (std::uint64_t k = 0; k < 10000; ++k) t.increment(k);
  EXPECT_GT(t.memory_bytes(), 0u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.memory_bytes(), 0u);
  // Usable again after clear.
  t.increment(3);
  EXPECT_EQ(t.find(3), 1u);
}

TEST(CountTable, CountSaturatesAtMax) {
  CountTable<std::uint8_t> t;
  for (int i = 0; i < 300; ++i) t.increment(1);
  EXPECT_EQ(t.find(1), 255u);
}

TEST(CountTable, MemoryAccountingTracksCapacity) {
  CountTable<> t;
  const std::size_t empty_bytes = t.memory_bytes();
  for (std::uint64_t k = 0; k < 100000; ++k) t.increment(k);
  EXPECT_GT(t.memory_bytes(), empty_bytes);
  // 13 bytes/slot (8 key + 4 count + 1 probe), load factor >= ~44%.
  EXPECT_LE(t.memory_bytes(), 100000u * 13u * 3u);
}

TEST(CountTable, EraseRandomizedAgainstReference) {
  CountTable<> t;
  std::map<std::uint64_t, std::uint32_t> reference;
  seq::Rng rng(17);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t key = rng.below(600);
    if (rng.chance(0.3) && !reference.empty()) {
      // Erase a key known to the reference (may or may not exist).
      const std::uint64_t victim = rng.below(600);
      EXPECT_EQ(t.erase(victim), reference.erase(victim) > 0);
    } else {
      ++reference[key];
      t.increment(key);
    }
  }
  EXPECT_EQ(t.size(), reference.size());
  for (const auto& [k, c] : reference) {
    ASSERT_EQ(t.find(k), c) << k;
  }
}

}  // namespace
}  // namespace reptile::hash
