// Unit tests: DNA alphabet encoding and complementation.
#include "seq/alphabet.hpp"

#include <gtest/gtest.h>

namespace reptile::seq {
namespace {

TEST(Alphabet, RoundTripsAllBases) {
  for (base_t b = 0; b < kAlphabetSize; ++b) {
    EXPECT_EQ(base_from_char(char_from_base(b)), b);
  }
}

TEST(Alphabet, AcceptsLowercase) {
  EXPECT_EQ(base_from_char('a'), kBaseA);
  EXPECT_EQ(base_from_char('c'), kBaseC);
  EXPECT_EQ(base_from_char('g'), kBaseG);
  EXPECT_EQ(base_from_char('t'), kBaseT);
}

TEST(Alphabet, RejectsInvalidCharacters) {
  for (char c : {'N', 'n', 'U', 'x', ' ', '>', '0', '\n'}) {
    EXPECT_EQ(base_from_char(c), kInvalidBase) << "char: " << c;
    EXPECT_FALSE(is_valid_base_char(c));
  }
}

TEST(Alphabet, ComplementIsInvolution) {
  for (base_t b = 0; b < kAlphabetSize; ++b) {
    EXPECT_EQ(complement(complement(b)), b);
  }
  EXPECT_EQ(complement(kBaseA), kBaseT);
  EXPECT_EQ(complement(kBaseC), kBaseG);
}

TEST(Alphabet, ValidatesSequences) {
  EXPECT_TRUE(is_valid_sequence("ACGTACGT"));
  EXPECT_TRUE(is_valid_sequence(""));
  EXPECT_FALSE(is_valid_sequence("ACGNACGT"));
}

TEST(Alphabet, ReverseComplement) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverse_complement("AAAA"), "TTTT");
  EXPECT_EQ(reverse_complement("GATTACA"), "TGTAATC");
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(Alphabet, ReverseComplementIsInvolution) {
  const std::string s = "ACGGTTACGATCGATT";
  EXPECT_EQ(reverse_complement(reverse_complement(s)), s);
}

TEST(Alphabet, SanitizeReplacesInvalid) {
  EXPECT_EQ(sanitize_sequence("ACNNGT"), "ACAAGT");
  EXPECT_EQ(sanitize_sequence("NNN", 'T'), "TTT");
  EXPECT_EQ(sanitize_sequence("ACGT"), "ACGT");
}

}  // namespace
}  // namespace reptile::seq
