// Unit tests: dataset catalog (Table I geometries) and synthetic generation.
#include "seq/dataset.hpp"

#include <gtest/gtest.h>

#include "seq/alphabet.hpp"

namespace reptile::seq {
namespace {

TEST(DatasetSpec, Table1Geometries) {
  const auto ecoli = DatasetSpec::ecoli();
  EXPECT_EQ(ecoli.n_reads, 8'874'761u);
  EXPECT_EQ(ecoli.read_length, 102);
  EXPECT_DOUBLE_EQ(ecoli.nominal_coverage, 96.0);
  // Table I's own numbers are internally inconsistent for E.Coli: the
  // computed coverage is ~196.8X (see DatasetSpec doc comment).
  EXPECT_NEAR(ecoli.coverage(), 196.8, 1.0);

  const auto droso = DatasetSpec::drosophila();
  EXPECT_EQ(droso.read_length, 96);
  EXPECT_NEAR(droso.coverage(), droso.nominal_coverage, 3.0);

  const auto human = DatasetSpec::human();
  EXPECT_EQ(human.n_reads, 1'549'111'800u);
  EXPECT_NEAR(human.coverage(), human.nominal_coverage, 2.0);

  EXPECT_EQ(DatasetSpec::table1().size(), 3u);
}

TEST(DatasetSpec, ScalingPreservesCoverage) {
  const auto full = DatasetSpec::ecoli();
  const auto small = full.scaled(0.001);
  EXPECT_NEAR(small.coverage(), full.coverage(), full.coverage() * 0.05);
  EXPECT_EQ(small.read_length, full.read_length);
  EXPECT_LT(small.n_reads, full.n_reads / 500);
}

TEST(RandomGenome, SizeAndAlphabet) {
  Rng rng(1);
  const auto genome = random_genome(10000, {}, rng);
  EXPECT_EQ(genome.size(), 10000u);
  for (char c : genome) EXPECT_TRUE(is_valid_base_char(c));
}

TEST(RandomGenome, RepeatsCreateDuplicateSegments) {
  Rng rng(2);
  GenomeParams gp;
  gp.repeat_fraction = 0.3;
  gp.repeat_length = 50;
  const auto genome = random_genome(20000, gp, rng);
  // With 30% repeat content from 4 segments, at least one 50-mer appears
  // more than once.
  bool found_repeat = false;
  for (std::size_t i = 0; i + 50 <= genome.size() && !found_repeat;
       i += 50) {
    const auto seg = genome.substr(i, 50);
    if (genome.find(seg, i + 1) != std::string::npos) found_repeat = true;
  }
  EXPECT_TRUE(found_repeat);
}

TEST(SyntheticDataset, GeneratesRequestedGeometry) {
  DatasetSpec spec{"test", 500, 60, 5000};
  ErrorModelParams errors;
  const auto ds = SyntheticDataset::generate(spec, errors, 42);
  EXPECT_EQ(ds.genome.size(), 5000u);
  ASSERT_EQ(ds.reads.size(), 500u);
  ASSERT_EQ(ds.truth.size(), 500u);
  for (std::size_t i = 0; i < ds.reads.size(); ++i) {
    EXPECT_EQ(ds.reads[i].number, i + 1);
    EXPECT_EQ(ds.reads[i].bases.size(), 60u);
    EXPECT_EQ(ds.reads[i].quals.size(), 60u);
    EXPECT_EQ(ds.truth[i].size(), 60u);
  }
}

TEST(SyntheticDataset, TruthComesFromGenome) {
  DatasetSpec spec{"test", 100, 40, 2000};
  const auto ds = SyntheticDataset::generate(spec, {}, 7);
  for (const auto& t : ds.truth) {
    EXPECT_NE(ds.genome.find(t), std::string::npos);
  }
}

TEST(SyntheticDataset, DeterministicInSeed) {
  DatasetSpec spec{"test", 50, 40, 1000};
  const auto a = SyntheticDataset::generate(spec, {}, 9);
  const auto b = SyntheticDataset::generate(spec, {}, 9);
  EXPECT_EQ(a.genome, b.genome);
  EXPECT_EQ(a.reads, b.reads);
  const auto c = SyntheticDataset::generate(spec, {}, 10);
  EXPECT_NE(a.genome, c.genome);
}

TEST(SyntheticDataset, ErrorAccountingConsistent) {
  DatasetSpec spec{"test", 300, 80, 4000};
  ErrorModelParams errors;
  errors.error_rate_start = 0.01;
  errors.error_rate_end = 0.03;
  const auto ds = SyntheticDataset::generate(spec, errors, 11);
  std::uint64_t recount = 0;
  for (std::size_t i = 0; i < ds.reads.size(); ++i) {
    for (std::size_t p = 0; p < ds.truth[i].size(); ++p) {
      if (ds.reads[i].bases[p] != ds.truth[i][p]) ++recount;
    }
  }
  EXPECT_EQ(recount, ds.total_errors);
  EXPECT_GT(ds.total_errors, 0u);
  EXPECT_LE(ds.erroneous_reads(), ds.reads.size());
  EXPECT_GT(ds.erroneous_reads(), 0u);
}

TEST(SyntheticDataset, DiploidModeProducesTwoHaplotypes) {
  DatasetSpec spec{"dip", 400, 50, 3000};
  GenomeParams gp;
  gp.heterozygosity = 0.01;
  seq::ErrorModelParams no_errors;
  no_errors.error_rate_start = 0;
  no_errors.error_rate_end = 0;
  const auto ds = SyntheticDataset::generate(spec, no_errors, 21, gp);
  ASSERT_EQ(ds.alt_genome.size(), ds.genome.size());
  std::uint64_t diffs = 0;
  for (std::size_t i = 0; i < ds.genome.size(); ++i) {
    if (ds.genome[i] != ds.alt_genome[i]) ++diffs;
  }
  EXPECT_EQ(diffs, ds.heterozygous_sites);
  EXPECT_NEAR(static_cast<double>(diffs), 30.0, 20.0);  // ~1% of 3000
  // Every truth read comes from one of the two haplotypes.
  std::uint64_t from_primary = 0, from_alt = 0;
  for (const auto& t : ds.truth) {
    const bool in_primary = ds.genome.find(t) != std::string::npos;
    const bool in_alt = ds.alt_genome.find(t) != std::string::npos;
    ASSERT_TRUE(in_primary || in_alt);
    if (in_primary) ++from_primary;
    if (in_alt) ++from_alt;
  }
  EXPECT_GT(from_primary, 100u);
  EXPECT_GT(from_alt, 100u);
}

TEST(SyntheticDataset, HaploidModeUnchangedByDiploidCode) {
  // heterozygosity == 0 must not consume extra RNG draws (golden outputs
  // depend on the stream).
  DatasetSpec spec{"h", 100, 40, 800};
  const auto a = SyntheticDataset::generate(spec, {}, 33);
  GenomeParams gp;  // heterozygosity defaults to 0
  const auto b = SyntheticDataset::generate(spec, {}, 33, gp);
  EXPECT_EQ(a.reads, b.reads);
  EXPECT_TRUE(a.alt_genome.empty());
  EXPECT_EQ(a.heterozygous_sites, 0u);
}

TEST(SyntheticDataset, BurstsConcentrateErrorsInFileRegions) {
  DatasetSpec spec{"test", 1000, 80, 20000};
  ErrorModelParams errors;
  errors.error_rate_start = 0.002;
  errors.error_rate_end = 0.002;
  errors.burst_fraction = 0.2;
  errors.burst_regions = 2;
  errors.burst_multiplier = 20.0;
  const auto ds = SyntheticDataset::generate(spec, errors, 13);
  // Count errors in burst vs non-burst halves of the file.
  const IlluminaErrorModel model(errors, spec.n_reads);
  std::uint64_t burst_errors = 0, quiet_errors = 0, burst_reads = 0,
                quiet_reads = 0;
  for (std::size_t i = 0; i < ds.reads.size(); ++i) {
    std::uint64_t e = 0;
    for (std::size_t p = 0; p < ds.truth[i].size(); ++p) {
      if (ds.reads[i].bases[p] != ds.truth[i][p]) ++e;
    }
    if (model.in_burst(i)) {
      burst_errors += e;
      ++burst_reads;
    } else {
      quiet_errors += e;
      ++quiet_reads;
    }
  }
  ASSERT_GT(burst_reads, 0u);
  ASSERT_GT(quiet_reads, 0u);
  const double burst_rate =
      static_cast<double>(burst_errors) / static_cast<double>(burst_reads);
  const double quiet_rate =
      static_cast<double>(quiet_errors) / static_cast<double>(quiet_reads);
  EXPECT_GT(burst_rate, 5 * quiet_rate);
}

}  // namespace
}  // namespace reptile::seq
