// Unit tests: hash functions and ownership mapping.
#include "hash/hashing.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "seq/kmer.hpp"
#include "seq/rng.hpp"

namespace reptile::hash {
namespace {

TEST(Mix64, IsDeterministicAndNontrivial) {
  EXPECT_EQ(mix64(0x1234), mix64(0x1234));
  EXPECT_NE(mix64(0), mix64(1));
  EXPECT_NE(mix64(1), 1u);
}

TEST(Mix64, AvalanchesLowBits) {
  // Consecutive inputs (like packed k-mers of similar sequences) must land
  // in different low-bit buckets most of the time.
  int same_bucket = 0;
  for (std::uint64_t i = 0; i < 1024; ++i) {
    if ((mix64(i) % 64) == (mix64(i + 1) % 64)) ++same_bucket;
  }
  EXPECT_LT(same_bucket, 64);  // ~16 expected by chance
}

TEST(Fnv1a, KnownVectors) {
  // FNV-1a 64-bit reference values.
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xAF63DC4C8601EC8Cull);
}

TEST(OwnerOf, InRangeAndDeterministic) {
  for (int np : {1, 2, 7, 128}) {
    for (std::uint64_t id : {0ull, 1ull, 999999ull, ~0ull}) {
      const int o = owner_of(id, np);
      EXPECT_GE(o, 0);
      EXPECT_LT(o, np);
      EXPECT_EQ(o, owner_of(id, np));
    }
  }
}

TEST(OwnerOf, SpreadsKmersUniformly) {
  // The paper (Fig. 3) observes <1% spread of k-mers across 128 ranks.
  // Check our ownership hash keeps the spread over random k-mer IDs small.
  constexpr int kRanks = 128;
  constexpr int kIds = 256000;
  std::vector<int> counts(kRanks, 0);
  seq::Rng rng(3);
  for (int i = 0; i < kIds; ++i) {
    ++counts[static_cast<std::size_t>(owner_of(rng.next(), kRanks))];
  }
  const double mean = static_cast<double>(kIds) / kRanks;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), mean, mean * 0.12);
  }
}

TEST(OwnerOfSequence, MatchesFnvModulo) {
  EXPECT_EQ(owner_of_sequence("ACGT", 16),
            static_cast<int>(fnv1a("ACGT") % 16));
}

TEST(OwnerOfSequence, SingleRankOwnsEverything) {
  EXPECT_EQ(owner_of_sequence("ACGT", 1), 0);
  EXPECT_EQ(owner_of(123456, 1), 0);
}

}  // namespace
}  // namespace reptile::hash
