// Unit tests: deterministic RNG.
#include "seq/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace reptile::seq {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[rng.below(kBuckets)];
  }
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.1);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.01);
}

}  // namespace
}  // namespace reptile::seq
