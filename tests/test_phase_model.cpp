// Unit + integration tests: the machine model and phase pricing — the
// modeled runs must reproduce the paper's qualitative findings.
#include "perfmodel/phase_model.hpp"

#include <gtest/gtest.h>

#include "seq/error_model.hpp"

namespace reptile::perfmodel {
namespace {

core::CorrectorParams small_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 2000;
  // Search more of each untrusted tile, as the original Reptile does; this
  // drives the per-read candidate-lookup volume toward the paper's regime
  // (tens of millions of remote tile lookups per rank).
  p.max_positions_per_tile = 6;
  return p;
}

struct Fixture {
  seq::ErrorModelParams errors;
  seq::SyntheticDataset ds;
  DatasetTraits traits;
  seq::DatasetSpec full = seq::DatasetSpec::ecoli();
  MachineModel machine = MachineModel::bluegene_q();

  Fixture() {
    errors.error_rate_start = 0.003;
    errors.error_rate_end = 0.01;
    errors.burst_fraction = 0.2;
    errors.burst_regions = 4;
    errors.burst_multiplier = 8.0;
    seq::DatasetSpec spec{"mini", 4000, 102, 4600};  // E.Coli geometry, tiny
    ds = seq::SyntheticDataset::generate(spec, errors, 47);
    traits = measure_traits(ds, small_params(), errors, /*np_ref=*/64);
  }
};

const Fixture& fx() {
  static const Fixture f;
  return f;
}

TEST(MachineModel, SlowdownsMonotoneInRanksPerNode) {
  const auto m = MachineModel::bluegene_q();
  EXPECT_DOUBLE_EQ(m.compute_slowdown(8), 1.0);  // 16 threads on 16 cores
  EXPECT_GT(m.compute_slowdown(16), 1.0);
  EXPECT_GT(m.compute_slowdown(32), m.compute_slowdown(16));
  EXPECT_DOUBLE_EQ(m.comm_slowdown(4), 1.0);
  EXPECT_GT(m.comm_slowdown(32), m.comm_slowdown(8));
}

TEST(MachineModel, AlltoallvCostGrowsWithBytesAndRanks) {
  const auto m = MachineModel::bluegene_q();
  EXPECT_GT(m.alltoallv_cost(1 << 20, 128, 32),
            m.alltoallv_cost(1 << 10, 128, 32));
  EXPECT_GT(m.alltoallv_cost(1 << 20, 1024, 32),
            m.alltoallv_cost(1 << 20, 16, 32));
}

TEST(PhaseModel, StrongScalingReducesTime) {
  const auto& f = fx();
  parallel::Heuristics heur;
  const auto t1024 = model_run(f.machine, f.traits, f.full, 1024, 32, heur);
  const auto t8192 = model_run(f.machine, f.traits, f.full, 8192, 32, heur);
  EXPECT_LT(t8192.total_seconds(), t1024.total_seconds());
  // Fig. 6: parallel efficiency at 8x the ranks is high but below 1.
  const double eff = RunEstimate::parallel_efficiency(t1024, t8192);
  EXPECT_GT(eff, 0.5);
  EXPECT_LE(eff, 1.05);
}

TEST(PhaseModel, ConstructionIsNegligibleVsCorrection) {
  // Paper: "the k-mer construction time is a negligible percentage of the
  // error correction time".
  const auto& f = fx();
  parallel::Heuristics heur;
  const auto run = model_run(f.machine, f.traits, f.full, 1024, 32, heur);
  EXPECT_LT(run.construct_seconds(), 0.15 * run.correct_seconds());
}

TEST(PhaseModel, CommunicationDominatesCorrection) {
  // Paper Fig. 2 discussion: most of the error-correction time is spent in
  // communication.
  const auto& f = fx();
  parallel::Heuristics heur;
  const auto run = model_run(f.machine, f.traits, f.full, 1024, 32, heur);
  EXPECT_GT(run.max_comm_seconds(), 0.4 * run.correct_seconds());
}

TEST(PhaseModel, LoadBalancingHalvesImbalancedRuntime) {
  // Fig. 4 / Fig. 6: static load balancing about halves the total runtime
  // at lower node counts, and the slowest/fastest rank gap collapses.
  const auto& f = fx();
  parallel::Heuristics balanced;
  parallel::Heuristics imbalanced;
  imbalanced.load_balance = false;
  const auto rb = model_run(f.machine, f.traits, f.full, 128, 32, balanced);
  const auto ri = model_run(f.machine, f.traits, f.full, 128, 32, imbalanced);
  EXPECT_GT(ri.total_seconds(), 1.5 * rb.total_seconds());
  const double gap_imb =
      ri.slowest_rank_seconds() / std::max(1e-9, ri.fastest_rank_seconds());
  const double gap_bal =
      rb.slowest_rank_seconds() / std::max(1e-9, rb.fastest_rank_seconds());
  EXPECT_GT(gap_imb, 2.0);   // paper: 16000+ s vs 4948 s
  EXPECT_LT(gap_bal, 1.1);   // paper: "almost all ranks uniformly take 8886 s"
}

TEST(PhaseModel, MoreRanksPerNodeIsSlower) {
  // Fig. 2: 128 ranks on 4 nodes (32/node) is ~30% slower than on 16 nodes
  // (8/node), driven by communication.
  const auto& f = fx();
  parallel::Heuristics heur;
  const auto rpn8 = model_run(f.machine, f.traits, f.full, 128, 8, heur);
  const auto rpn32 = model_run(f.machine, f.traits, f.full, 128, 32, heur);
  EXPECT_GT(rpn32.total_seconds(), 1.1 * rpn8.total_seconds());
  EXPECT_LT(rpn32.total_seconds(), 1.8 * rpn8.total_seconds());
  EXPECT_GT(rpn32.max_comm_seconds(), rpn8.max_comm_seconds());
}

TEST(PhaseModel, UniversalModeIsModestlyFaster) {
  // Fig. 5: universal mode gains ~8.8% with no extra memory.
  const auto& f = fx();
  parallel::Heuristics base;
  parallel::Heuristics uni = base;
  uni.universal = true;
  const auto rb = model_run(f.machine, f.traits, f.full, 1024, 32, base);
  const auto ru = model_run(f.machine, f.traits, f.full, 1024, 32, uni);
  EXPECT_LT(ru.total_seconds(), rb.total_seconds());
  const double gain = 1.0 - ru.total_seconds() / rb.total_seconds();
  EXPECT_GT(gain, 0.01);
  EXPECT_LT(gain, 0.25);
  EXPECT_NEAR(ru.max_memory_bytes(), rb.max_memory_bytes(),
              0.01 * rb.max_memory_bytes());
}

TEST(PhaseModel, TileReplicationBeatsKmerReplication) {
  // Fig. 5: replicating the tile spectrum cuts the dominant tile traffic;
  // replicating only k-mers barely helps. Both inflate memory.
  const auto& f = fx();
  parallel::Heuristics base;
  parallel::Heuristics agk = base;
  agk.allgather_kmers = true;
  parallel::Heuristics agt = base;
  agt.allgather_tiles = true;
  const auto rb = model_run(f.machine, f.traits, f.full, 1024, 32, base);
  const auto rk = model_run(f.machine, f.traits, f.full, 1024, 32, agk);
  const auto rt = model_run(f.machine, f.traits, f.full, 1024, 32, agt);
  EXPECT_LT(rt.correct_seconds(), rb.correct_seconds());
  EXPECT_LT(rt.correct_seconds(), rk.correct_seconds());
  EXPECT_GT(rk.max_memory_bytes(), rb.max_memory_bytes());
  EXPECT_GT(rt.max_memory_bytes(), rb.max_memory_bytes());
}

TEST(PhaseModel, FullReplicationEliminatesCommunication) {
  // Fig. 5: k-mers and tiles replicated -> correction in 58 s (vs 1178 s),
  // memory up to ~1.6 GB/rank.
  const auto& f = fx();
  parallel::Heuristics both;
  both.allgather_kmers = both.allgather_tiles = true;
  parallel::Heuristics base;
  const auto rb = model_run(f.machine, f.traits, f.full, 1024, 32, base);
  const auto rr = model_run(f.machine, f.traits, f.full, 1024, 32, both);
  EXPECT_EQ(rr.max_comm_seconds(), 0.0);
  EXPECT_LT(rr.correct_seconds(), 0.2 * rb.correct_seconds());
  EXPECT_GT(rr.max_memory_bytes(), 2 * rb.max_memory_bytes());
}

TEST(PhaseModel, BatchReadsLowersMemoryRaisesConstructionTime) {
  // Fig. 5 + Fig. 7 discussion: batch mode trades construction time for a
  // smaller construction-phase footprint.
  const auto& f = fx();
  parallel::Heuristics base;
  parallel::Heuristics batch = base;
  batch.batch_reads = true;
  const auto rb = model_run(f.machine, f.traits, f.full, 1024, 32, base);
  const auto rc = model_run(f.machine, f.traits, f.full, 1024, 32, batch);
  EXPECT_LT(rc.max_memory_bytes(), rb.max_memory_bytes());
  EXPECT_GT(rc.construct_seconds(), rb.construct_seconds());
  EXPECT_NEAR(rc.correct_seconds(), rb.correct_seconds(),
              0.01 * rb.correct_seconds());
}

TEST(PhaseModel, MemoryPerRankShrinksWithScale) {
  // Paper Section V: E.Coli footprint < 50 MB/rank at 256 nodes.
  const auto& f = fx();
  parallel::Heuristics heur;
  const auto r32 = model_run(f.machine, f.traits, f.full, 1024, 32, heur);
  const auto r256 = model_run(f.machine, f.traits, f.full, 8192, 32, heur);
  EXPECT_LT(r256.max_memory_bytes(), r32.max_memory_bytes());
  EXPECT_LT(r256.max_memory_mb(), 100.0);
}

TEST(PhaseModel, LargerBatchesSpeedUpBatchedConstruction) {
  // Fig. 8 ran batch 5000 at 128/256 nodes and 10000 at 512/1024: fewer
  // exchange rounds amortize the collective latency.
  const auto& f = fx();
  parallel::Heuristics heur;
  heur.batch_reads = true;
  auto with_chunk = [&](std::size_t chunk) {
    auto traits = f.traits;
    traits.params.chunk_size = chunk;
    return model_run(f.machine, traits, f.full, 4096, 32, heur)
        .construct_seconds();
  };
  EXPECT_GT(with_chunk(1000), with_chunk(10000));
}

TEST(PhaseModel, PartialReplicationTradesMemoryForComm) {
  const auto& f = fx();
  parallel::Heuristics none;
  parallel::Heuristics half;
  half.partial_replication_group = 512;
  const auto base = model_run(f.machine, f.traits, f.full, 1024, 32, none);
  const auto grouped = model_run(f.machine, f.traits, f.full, 1024, 32, half);
  EXPECT_LT(grouped.max_comm_seconds(), 0.7 * base.max_comm_seconds());
  EXPECT_GT(grouped.max_memory_bytes(), 2 * base.max_memory_bytes());
}

TEST(PhaseModel, CommSplitTracksLookupMix) {
  const auto& f = fx();
  parallel::Heuristics heur;
  const auto run = model_run(f.machine, f.traits, f.full, 1024, 32, heur);
  for (const auto& r : run.ranks) {
    EXPECT_NEAR(r.comm_kmer_seconds + r.comm_tile_seconds, r.comm_seconds,
                1e-9 + r.comm_seconds * 1e-9);
    // Tile candidates dominate the remote mix (paper Fig. 2 narrative).
    EXPECT_GT(r.comm_tile_seconds, 5 * r.comm_kmer_seconds);
  }
}

TEST(PhaseModel, AnchorMagnitudesInPaperRange) {
  // Soft calibration check: E.Coli at 128 ranks / 32 per node, balanced —
  // the paper reports ~8886 s total with ~5073-5268 s communication. The
  // model must land within a factor of ~2.5 on both (shape, not identity).
  const auto& f = fx();
  parallel::Heuristics heur;
  const auto run = model_run(f.machine, f.traits, f.full, 128, 32, heur);
  EXPECT_GT(run.total_seconds(), 8886.0 / 2.5);
  EXPECT_LT(run.total_seconds(), 8886.0 * 2.5);
  EXPECT_GT(run.max_comm_seconds(), 5170.0 / 2.5);
  EXPECT_LT(run.max_comm_seconds(), 5170.0 * 2.5);
}

}  // namespace
}  // namespace reptile::perfmodel
