// Integration tests: the prior-art replicated-spectrum baseline with
// dynamic master-worker allocation (paper Section II-B).
#include "parallel/baseline_replicated.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  return p;
}

const seq::SyntheticDataset& dataset() {
  static const seq::SyntheticDataset ds = [] {
    seq::DatasetSpec spec{"base", 1000, 70, 1800};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.005;
    errors.error_rate_end = 0.012;
    return seq::SyntheticDataset::generate(spec, errors, 91);
  }();
  return ds;
}

TEST(ReplicatedBaseline, MatchesSequentialOutput) {
  const auto ref = core::run_sequential(dataset().reads, params());
  for (int ranks : {1, 2, 4, 8}) {
    BaselineConfig config;
    config.params = params();
    config.ranks = ranks;
    config.work_chunk = 64;
    const auto result = run_replicated_baseline(dataset().reads, config);
    ASSERT_EQ(result.corrected.size(), ref.corrected.size()) << ranks;
    for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
      ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases)
          << "ranks=" << ranks << " read " << ref.corrected[i].number;
    }
    EXPECT_EQ(result.total_substitutions(), ref.substitutions) << ranks;
  }
}

TEST(ReplicatedBaseline, EveryReadProcessedExactlyOnce) {
  BaselineConfig config;
  config.params = params();
  config.ranks = 4;
  config.work_chunk = 37;  // deliberately not dividing the read count
  const auto result = run_replicated_baseline(dataset().reads, config);
  ASSERT_EQ(result.corrected.size(), dataset().reads.size());
  for (std::size_t i = 0; i < result.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].number, i + 1);
  }
  std::uint64_t processed = 0;
  for (const auto& r : result.ranks) processed += r.reads_processed;
  EXPECT_EQ(processed, dataset().reads.size());
  // Chunk accounting: ceil(n / chunk) grants in total.
  EXPECT_EQ(result.total_chunks(),
            (dataset().reads.size() + 36) / 37);
}

TEST(ReplicatedBaseline, EveryRankHoldsTheFullSpectrum) {
  BaselineConfig config;
  config.params = params();
  config.ranks = 4;
  const auto baseline = run_replicated_baseline(dataset().reads, config);

  DistConfig dist_config;
  dist_config.params = params();
  dist_config.ranks = 4;
  const auto dist = run_distributed(dataset().reads, dist_config);

  // Replication: all ranks carry identical (full) spectra, and each is
  // ~np-fold larger than a distributed shard — the memory wall the paper's
  // approach removes.
  const auto bytes0 = baseline.ranks[0].spectrum_bytes;
  std::size_t dist_max_shard = 0;
  for (const auto& r : baseline.ranks) {
    EXPECT_EQ(r.spectrum_bytes, bytes0);
  }
  for (const auto& r : dist.ranks) {
    dist_max_shard =
        std::max(dist_max_shard, r.footprint_after_correction.bytes);
  }
  EXPECT_GT(bytes0, 2 * dist_max_shard);
}

TEST(ReplicatedBaseline, DynamicAllocationSharesWork) {
  BaselineConfig config;
  config.params = params();
  config.ranks = 4;
  config.work_chunk = 10;
  const auto result = run_replicated_baseline(dataset().reads, config);
  // Demand-driven distribution: every rank gets a nontrivial share (with
  // 100 chunks and 4 workers none can be starved on a healthy run).
  for (const auto& r : result.ranks) {
    EXPECT_GT(r.chunks_granted, 0u) << "rank " << r.rank;
    EXPECT_GT(r.reads_processed, 0u) << "rank " << r.rank;
  }
}

TEST(ReplicatedBaseline, SingleRankDegeneratesToSequential) {
  BaselineConfig config;
  config.params = params();
  config.ranks = 1;
  const auto result = run_replicated_baseline(dataset().reads, config);
  const auto ref = core::run_sequential(dataset().reads, params());
  EXPECT_EQ(result.corrected, ref.corrected);
  EXPECT_EQ(result.ranks[0].chunks_granted,
            (dataset().reads.size() + config.work_chunk - 1) /
                config.work_chunk);
}

}  // namespace
}  // namespace reptile::parallel
