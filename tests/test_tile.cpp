// Unit tests: tile codec (two overlapping k-mers packed as one ID).
#include "seq/tile.hpp"

#include <gtest/gtest.h>

namespace reptile::seq {
namespace {

TEST(TileCodec, GeometryDerivedFromKAndOverlap) {
  const TileCodec codec(12, 4);
  EXPECT_EQ(codec.tile_len(), 20);
  EXPECT_EQ(codec.step(), 8);
  EXPECT_EQ(codec.k(), 12);
}

TEST(TileCodec, RejectsBadGeometry) {
  EXPECT_THROW(TileCodec(12, 12), std::invalid_argument);  // overlap == k
  EXPECT_THROW(TileCodec(12, -1), std::invalid_argument);
  EXPECT_THROW(TileCodec(20, 4), std::invalid_argument);   // 2k-o = 36 > 32
  EXPECT_NO_THROW(TileCodec(16, 0));                        // exactly 32
}

TEST(TileCodec, PackUnpackRoundTrip) {
  const TileCodec codec(6, 2);  // tile_len 10
  const std::string s = "ACGTACGTAC";
  EXPECT_EQ(codec.unpack(codec.pack(s)), s);
}

TEST(TileCodec, CombineSplitsBackIntoKmers) {
  const TileCodec codec(6, 2);
  const std::string tile = "ACGTACGTAC";
  const tile_id_t id = codec.pack(tile);
  const KmerCodec& kc = codec.kmer_codec();
  // First k-mer covers [0, 6); second covers [4, 10).
  EXPECT_EQ(kc.unpack(codec.first_kmer(id)), "ACGTAC");
  EXPECT_EQ(kc.unpack(codec.second_kmer(id)), "ACGTAC");
  EXPECT_EQ(codec.combine(codec.first_kmer(id), codec.second_kmer(id)), id);
}

TEST(TileCodec, CombineWithDistinctKmers) {
  const TileCodec codec(5, 1);  // tile_len 9, step 4
  const std::string tile = "AACCGGTTA";
  const tile_id_t id = codec.pack(tile);
  EXPECT_EQ(codec.kmer_codec().unpack(codec.first_kmer(id)), "AACCG");
  EXPECT_EQ(codec.kmer_codec().unpack(codec.second_kmer(id)), "GGTTA");
  EXPECT_EQ(codec.combine(codec.first_kmer(id), codec.second_kmer(id)), id);
}

TEST(TileCodec, TilePositionsCoverRead) {
  const TileCodec codec(6, 2);  // tile_len 10, step 4
  const auto pos = codec.tile_positions(22);
  // Strided: 0, 4, 8, 12 (12+10=22 fits); no tail needed.
  EXPECT_EQ(pos, (std::vector<int>{0, 4, 8, 12}));
}

TEST(TileCodec, TilePositionsAddTailTile) {
  const TileCodec codec(6, 2);  // tile_len 10, step 4
  const auto pos = codec.tile_positions(21);
  // Strided 0,4,8 (8+10=18 <= 21); 12+10=22 > 21, tail at 21-10=11.
  EXPECT_EQ(pos, (std::vector<int>{0, 4, 8, 11}));
}

TEST(TileCodec, TilePositionsEmptyForShortReads) {
  const TileCodec codec(6, 2);
  EXPECT_TRUE(codec.tile_positions(9).empty());
  EXPECT_EQ(codec.tile_positions(10), (std::vector<int>{0}));
}

TEST(TileCodec, ExtractMatchesPositions) {
  const TileCodec codec(4, 1);  // tile_len 7, step 3
  const std::string read = "ACGTACGTACGT";  // len 12
  std::vector<tile_id_t> out;
  const auto n = codec.extract(read, out);
  const auto pos = codec.tile_positions(12);
  ASSERT_EQ(n, pos.size());
  for (std::size_t i = 0; i < pos.size(); ++i) {
    EXPECT_EQ(codec.unpack(out[i]),
              read.substr(static_cast<std::size_t>(pos[i]), 7));
  }
}

TEST(TileCodec, ConsecutiveTilesShareAKmer) {
  // The second k-mer of tile i must equal the first k-mer of tile i+1 for
  // strided (non-tail) tiles — the chaining property the corrector uses.
  const TileCodec codec(6, 2);
  const std::string read = "ACGGTTAACCGGATCGGATTAC";  // len 22
  std::vector<tile_id_t> tiles;
  codec.extract(read, tiles);
  ASSERT_GE(tiles.size(), 2u);
  for (std::size_t i = 0; i + 1 < tiles.size(); ++i) {
    EXPECT_EQ(codec.second_kmer(tiles[i]), codec.first_kmer(tiles[i + 1]));
  }
}

TEST(TileCodec, SubstituteMatchesStringEdit) {
  const TileCodec codec(6, 2);
  std::string tile = "ACGTACGTAC";
  const tile_id_t id = codec.pack(tile);
  const tile_id_t sub = codec.substitute(id, 7, kBaseC);
  tile[7] = 'C';
  EXPECT_EQ(codec.unpack(sub), tile);
}

}  // namespace
}  // namespace reptile::seq
