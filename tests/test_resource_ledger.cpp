// obs::ResourceLedger — differential exactness of the byte accounts.
//
// The contract under test:
//   * every instrumented structure's memory_bytes() equals the ledger
//     balance of its account at all times — across growth, shrinkage,
//     clear() and destruction (the "one source of truth" fold: the ad-hoc
//     construction-peak field now reads the same charge);
//   * LedgerCharge handles re-base across configure() generations, carry
//     their balance through moves and bind(), and track recorded()/
//     local_peak() unconditionally (ledger on or off);
//   * peaks are high-water marks per account AND for the live total;
//   * disabled ledger: add/sub are no-ops and balances stay zero;
//   * RssSampler records an OS-observed peak and keeps sampling until
//     stop(); publish_ledger_metrics renders the labelled gauges.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "hash/count_table.hpp"
#include "hash/owner_filter.hpp"
#include "hash/sorted_spectrum.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "parallel/admission.hpp"
#include "rtm/mailbox.hpp"
#include "rtm/message.hpp"
#include "seq/chunk_stream.hpp"
#include "seq/read.hpp"

namespace reptile {
namespace {

using obs::LedgerAccount;
using obs::LedgerCharge;
using obs::ResourceLedger;

std::uint64_t balance(LedgerAccount account) {
  return ResourceLedger::global().bytes(account);
}

/// Arms a fresh ledger epoch for the test and disarms it afterwards, so
/// the process-wide singleton never leaks state across tests.
struct LedgerTest : ::testing::Test {
  void SetUp() override { ResourceLedger::global().configure(true); }
  void TearDown() override {
    ResourceLedger::global().configure(false);
    obs::Registry::global().configure(false);
  }
};

// --- the ledger itself -----------------------------------------------------

TEST_F(LedgerTest, AccountsTrackBalancesTotalsAndPeaks) {
  ResourceLedger& ledger = ResourceLedger::global();
  ledger.add(LedgerAccount::kCountTable, 100);
  ledger.add(LedgerAccount::kOwnerFilters, 40);
  EXPECT_EQ(ledger.bytes(LedgerAccount::kCountTable), 100u);
  EXPECT_EQ(ledger.total_bytes(), 140u);
  EXPECT_EQ(ledger.total_peak_bytes(), 140u);

  ledger.sub(LedgerAccount::kCountTable, 60);
  EXPECT_EQ(ledger.bytes(LedgerAccount::kCountTable), 40u);
  EXPECT_EQ(ledger.peak_bytes(LedgerAccount::kCountTable), 100u);
  EXPECT_EQ(ledger.total_bytes(), 80u);
  EXPECT_EQ(ledger.total_peak_bytes(), 140u);  // hwm survives the shrink

  // Defensive clamp: an excess release floors at zero, never wraps.
  ledger.sub(LedgerAccount::kOwnerFilters, 1000);
  EXPECT_EQ(ledger.bytes(LedgerAccount::kOwnerFilters), 0u);

  const obs::LedgerSnapshot snap = ledger.snapshot();
  EXPECT_EQ(snap.account(LedgerAccount::kCountTable).bytes, 40u);
  EXPECT_EQ(snap.account(LedgerAccount::kCountTable).peak_bytes, 100u);
  EXPECT_EQ(snap.total_peak_bytes, 140u);
}

TEST_F(LedgerTest, DisabledLedgerIgnoresChargesButHandlesStillRecord) {
  ResourceLedger::global().configure(false);
  LedgerCharge charge(LedgerAccount::kCountTable);
  charge.set(4096);
  charge.set(1024);
  // recorded()/local_peak() are unconditional — the construction-peak fold
  // reads them even in uninstrumented runs.
  EXPECT_EQ(charge.recorded(), 1024u);
  EXPECT_EQ(charge.local_peak(), 4096u);
  EXPECT_EQ(ResourceLedger::global().total_bytes(), 0u);
  EXPECT_EQ(ResourceLedger::global().total_peak_bytes(), 0u);
}

TEST_F(LedgerTest, ChargeRebasesAcrossConfigureGenerations) {
  LedgerCharge charge(LedgerAccount::kReadBuffers);
  charge.set(100);
  ASSERT_EQ(balance(LedgerAccount::kReadBuffers), 100u);

  // A new run: configure() zeroes the balances. The surviving handle must
  // charge its full footprint into the new epoch, not just the delta.
  ResourceLedger::global().configure(true);
  EXPECT_EQ(balance(LedgerAccount::kReadBuffers), 0u);
  charge.set(150);
  EXPECT_EQ(balance(LedgerAccount::kReadBuffers), 150u);

  // And a handle destroyed in a later epoch never underflows it.
  charge.set(0);
  EXPECT_EQ(balance(LedgerAccount::kReadBuffers), 0u);
}

TEST_F(LedgerTest, BindMovesTheBalanceToTheNewAccount) {
  LedgerCharge charge(LedgerAccount::kCountTable);
  charge.set(64);
  ASSERT_EQ(balance(LedgerAccount::kCountTable), 64u);

  charge.bind(LedgerAccount::kRemoteCache);
  EXPECT_EQ(balance(LedgerAccount::kCountTable), 0u);
  EXPECT_EQ(balance(LedgerAccount::kRemoteCache), 64u);
  EXPECT_EQ(charge.recorded(), 64u);
}

TEST_F(LedgerTest, MoveTransfersTheChargeWithoutDoubleCounting) {
  LedgerCharge a(LedgerAccount::kPayloadArena);
  a.set(512);
  LedgerCharge b = std::move(a);
  EXPECT_EQ(balance(LedgerAccount::kPayloadArena), 512u);
  EXPECT_EQ(b.recorded(), 512u);

  // Move-assign settles the destination's old charge first.
  LedgerCharge c(LedgerAccount::kPayloadArena);
  c.set(100);
  c = std::move(b);
  EXPECT_EQ(balance(LedgerAccount::kPayloadArena), 512u);
  c.set(0);
  EXPECT_EQ(balance(LedgerAccount::kPayloadArena), 0u);
}

// --- differential exactness per instrumented structure ---------------------

TEST_F(LedgerTest, CountTableBalanceEqualsMemoryBytesAcrossGrowAndClear) {
  {
    hash::CountTable<> table(8);
    EXPECT_EQ(balance(LedgerAccount::kCountTable), table.memory_bytes());
    for (std::uint64_t k = 0; k < 5000; ++k) {
      table.increment(k * 2654435761u);  // forces several rehash growths
    }
    EXPECT_EQ(balance(LedgerAccount::kCountTable), table.memory_bytes());

    table.prune_below(2);  // compacts into a smaller table
    EXPECT_EQ(balance(LedgerAccount::kCountTable), table.memory_bytes());

    table.clear();
    EXPECT_EQ(table.memory_bytes(), 0u);
    EXPECT_EQ(balance(LedgerAccount::kCountTable), 0u);

    table.increment(7);
    EXPECT_EQ(balance(LedgerAccount::kCountTable), table.memory_bytes());
  }
  // Destruction releases the charge in full.
  EXPECT_EQ(balance(LedgerAccount::kCountTable), 0u);
}

TEST_F(LedgerTest, SortedSpectrumBalanceEqualsMemoryBytes) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries;
  for (std::uint64_t k = 0; k < 1000; ++k) {
    entries.emplace_back(k * 11400714819323198485ull, 3);
  }
  {
    auto sorted = hash::SortedCountArray::from_entries(entries);
    EXPECT_EQ(balance(LedgerAccount::kSortedSpectrum), sorted.memory_bytes());

    auto cache = hash::CacheAwareCountArray::from_sorted(sorted);
    EXPECT_EQ(balance(LedgerAccount::kSortedSpectrum),
              sorted.memory_bytes() + cache.memory_bytes());

    // Moves carry the balance, they never duplicate it.
    auto moved = std::move(cache);
    EXPECT_EQ(balance(LedgerAccount::kSortedSpectrum),
              sorted.memory_bytes() + moved.memory_bytes());
  }
  EXPECT_EQ(balance(LedgerAccount::kSortedSpectrum), 0u);
}

TEST_F(LedgerTest, OwnerFilterBalanceEqualsMemoryBytes) {
  {
    hash::OwnerFilter filter(10000, 0.01);
    EXPECT_GT(filter.memory_bytes(), 0u);
    EXPECT_EQ(balance(LedgerAccount::kOwnerFilters), filter.memory_bytes());
    for (std::uint64_t k = 0; k < 100; ++k) filter.insert(k);
    // Inserts flip bits in place; the footprint (and balance) is fixed.
    EXPECT_EQ(balance(LedgerAccount::kOwnerFilters), filter.memory_bytes());
  }
  EXPECT_EQ(balance(LedgerAccount::kOwnerFilters), 0u);
}

TEST_F(LedgerTest, PayloadArenaBalanceEqualsMemoryBytes) {
  {
    rtm::PayloadArena arena;
    EXPECT_EQ(balance(LedgerAccount::kPayloadArena), 0u);
    const auto p1 = arena.allocate(1000);
    EXPECT_EQ(balance(LedgerAccount::kPayloadArena), arena.memory_bytes());
    // Force a second slab: more than one slab's worth of live payloads.
    std::vector<rtm::Payload> live;
    for (int i = 0; i < 3; ++i) {
      live.push_back(arena.allocate(rtm::PayloadArena::kSlabBytes / 2));
    }
    EXPECT_EQ(balance(LedgerAccount::kPayloadArena), arena.memory_bytes());
    EXPECT_GE(arena.memory_bytes(), 2 * rtm::PayloadArena::kSlabBytes);
  }
  EXPECT_EQ(balance(LedgerAccount::kPayloadArena), 0u);
}

TEST_F(LedgerTest, MailboxChargesItsRingOnConstruction) {
  {
    rtm::Mailbox mailbox;
    EXPECT_GT(balance(LedgerAccount::kMailboxRings), 0u);
  }
  EXPECT_EQ(balance(LedgerAccount::kMailboxRings), 0u);
}

TEST_F(LedgerTest, AdmissionQueueBalanceEqualsMemoryBytes) {
  parallel::AdmissionQueue<std::uint64_t> queue(8);
  EXPECT_EQ(balance(LedgerAccount::kAdmissionQueue), 0u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.submit(i));
    EXPECT_EQ(balance(LedgerAccount::kAdmissionQueue), queue.memory_bytes());
  }
  while (true) {
    queue.close();
    const auto item = queue.pop();
    EXPECT_EQ(balance(LedgerAccount::kAdmissionQueue), queue.memory_bytes());
    if (!item.has_value()) break;
  }
  EXPECT_EQ(balance(LedgerAccount::kAdmissionQueue), 0u);
}

TEST_F(LedgerTest, ChunkStreamBalanceEqualsBatchBytes) {
  std::vector<seq::Read> reads(10);
  for (std::size_t i = 0; i < reads.size(); ++i) {
    reads[i].number = i;
    reads[i].bases = std::string(60, 'A');
    reads[i].quals.assign(60, 30);
  }
  seq::VectorReadSource source(reads);
  {
    seq::ChunkStream stream(source, 4);
    seq::ReadBatch batch;
    while (stream.next(batch)) {
      EXPECT_EQ(balance(LedgerAccount::kReadBuffers),
                seq::batch_memory_bytes(batch));
    }
    // Exhausted: the stream no longer retains the batch's bytes.
    EXPECT_EQ(balance(LedgerAccount::kReadBuffers), 0u);
  }
  EXPECT_EQ(balance(LedgerAccount::kReadBuffers), 0u);
}

// --- RSS sampler and gauges ------------------------------------------------

TEST_F(LedgerTest, RssSamplerRecordsAnOsObservedPeak) {
  ASSERT_GT(obs::read_rss_bytes(), 0u) << "/proc/self/statm must be readable";

  obs::RssSampler sampler(1);
  std::thread thread([&sampler] { sampler.run(); });
  while (sampler.samples() < 3) {
    std::this_thread::yield();
  }
  sampler.stop();
  thread.join();
  EXPECT_GE(sampler.samples(), 3u);
  // The sampled peak is a real resident set: at least a few pages.
  EXPECT_GT(ResourceLedger::global().rss_peak_bytes(), 4096u);
  EXPECT_EQ(ResourceLedger::global().snapshot().rss_peak_bytes,
            ResourceLedger::global().rss_peak_bytes());
}

TEST_F(LedgerTest, PublishLedgerMetricsRendersLabelledGauges) {
  obs::Registry::global().configure(true);
  ResourceLedger& ledger = ResourceLedger::global();
  ledger.add(LedgerAccount::kCountTable, 12345);
  ledger.note_rss(1 << 20);
  obs::publish_ledger_metrics(ledger.snapshot());

  const std::string text = obs::Registry::global().prometheus_text();
  EXPECT_NE(text.find("reptile_ledger_bytes{account=\"count_table\"} 12345"),
            std::string::npos)
      << text;
  EXPECT_NE(
      text.find("reptile_ledger_peak_bytes{account=\"count_table\"} 12345"),
      std::string::npos);
  EXPECT_NE(text.find("reptile_ledger_total_peak_bytes 12345"),
            std::string::npos);
  EXPECT_NE(text.find("reptile_rss_peak_bytes 1048576"), std::string::npos);
}

}  // namespace
}  // namespace reptile
