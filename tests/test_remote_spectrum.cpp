// Unit tests: the RemoteSpectrumView lookup chain, probed step by step in a
// controlled 2-rank world.
#include "parallel/remote_spectrum.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "parallel/lookup_service.hpp"
#include "seq/dataset.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams params() {
  core::CorrectorParams p;
  p.k = 8;
  p.tile_overlap = 2;
  p.kmer_threshold = 1;
  p.tile_threshold = 1;
  return p;
}

/// Runs `body` on rank 1 of a 2-rank world where both ranks built the
/// spectrum from the same reads (so counts are global either way) and rank
/// 0 runs a lookup service.
void with_remote_view(
    const Heuristics& heur,
    const std::function<void(rtm::Comm&, DistSpectrum&, RemoteSpectrumView&)>&
        body) {
  seq::DatasetSpec spec{"rsv", 150, 40, 500};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 7);

  rtm::run_world({2, 2}, [&](rtm::Comm& comm) {
    DistSpectrum spectrum(params(), heur, comm);
    // Both ranks see half the reads each.
    const std::size_t half = ds.reads.size() / 2;
    const std::size_t begin = comm.rank() == 0 ? 0 : half;
    const std::size_t end = comm.rank() == 0 ? half : ds.reads.size();
    for (std::size_t i = begin; i < end; ++i) {
      spectrum.add_read(ds.reads[i].bases);
    }
    spectrum.exchange_to_owners();
    spectrum.prune();
    if (heur.read_kmers) spectrum.fetch_global_reads_tables();
    spectrum.replicate_group();

    comm.reset_done();
    if (comm.rank() == 0) {
      LookupService service(comm, spectrum);
      std::thread server([&service] { service.serve(); });
      comm.signal_done();
      server.join();
    } else {
      RemoteSpectrumView view(comm, spectrum);
      body(comm, spectrum, view);
      comm.signal_done();
    }
    comm.barrier();
  });
}

/// A 64-bit ID owned by `owner` that cannot be in any 8-mer/short-tile
/// spectrum (all candidates have bits far above the packed-ID range).
std::uint64_t absent_id_owned_by(int owner, int np) {
  for (std::uint64_t x = ~std::uint64_t{0};; --x) {
    if (hash::owner_of(x, np) == owner) return x;
  }
}

/// First k-mer ID in the given rank's owned shard.
std::uint64_t any_owned_id(const DistSpectrum& spectrum, bool owned_by_self,
                           int np, int me) {
  std::uint64_t found = 0;
  bool have = false;
  spectrum.hash_kmers().for_each([&](std::uint64_t id, std::uint32_t) {
    if (!have) {
      found = id;
      have = true;
    }
  });
  (void)owned_by_self;
  (void)np;
  (void)me;
  EXPECT_TRUE(have);
  return found;
}

TEST(RemoteSpectrumView, OwnedLookupsNeverMessage) {
  with_remote_view({}, [](rtm::Comm&, DistSpectrum& spectrum,
                          RemoteSpectrumView& view) {
    const auto id = any_owned_id(spectrum, true, 2, 1);
    const auto direct = spectrum.owned_kmer(id);
    ASSERT_TRUE(direct.has_value());
    EXPECT_EQ(view.kmer_count(id), *direct);
    EXPECT_EQ(view.remote_stats().remote_kmer_lookups, 0u);
  });
}

TEST(RemoteSpectrumView, RemoteLookupFetchesOwnersCount) {
  with_remote_view({}, [](rtm::Comm&, DistSpectrum& spectrum,
                          RemoteSpectrumView& view) {
    // Find an ID owned by rank 0 by scanning rank 1's reads tables is
    // cleared; instead probe IDs until one is foreign.
    // Use the rank's own shard to learn plausible IDs, then perturb.
    std::uint64_t foreign = 0;
    bool have = false;
    spectrum.hash_kmers().for_each([&](std::uint64_t id, std::uint32_t) {
      if (have) return;
      for (std::uint64_t delta = 1; delta < 64 && !have; ++delta) {
        const std::uint64_t candidate = id ^ delta;
        if (hash::owner_of(candidate, 2) == 0) {
          foreign = candidate;
          have = true;
        }
      }
    });
    ASSERT_TRUE(have);
    // Whatever the count is, the call must complete and be counted remote.
    (void)view.kmer_count(foreign);
    EXPECT_EQ(view.remote_stats().remote_kmer_lookups, 1u);
  });
}

TEST(RemoteSpectrumView, AbsentRemoteMapsToZero) {
  with_remote_view({}, [](rtm::Comm&, DistSpectrum&,
                          RemoteSpectrumView& view) {
    // A 64-bit ID far outside the 8-mer space cannot exist.
    const std::uint64_t id = absent_id_owned_by(0, 2);
    EXPECT_EQ(view.tile_count(id), 0u);
    EXPECT_EQ(view.remote_stats().remote_tile_absent,
              view.remote_stats().remote_tile_lookups);
  });
}

TEST(RemoteSpectrumView, AddRemoteCachesSecondLookup) {
  Heuristics heur;
  heur.read_kmers = true;
  heur.add_remote = true;
  with_remote_view(heur, [](rtm::Comm&, DistSpectrum& spectrum,
                            RemoteSpectrumView& view) {
    // A definitively absent, rank-0-owned tile ID.
    const std::uint64_t id = absent_id_owned_by(0, 2);
    ASSERT_FALSE(spectrum.reads_tile(id).has_value());
    EXPECT_EQ(view.tile_count(id), 0u);
    EXPECT_EQ(view.remote_stats().remote_tile_lookups, 1u);
    // Cached (even though absent): the second lookup stays local.
    EXPECT_EQ(view.tile_count(id), 0u);
    EXPECT_EQ(view.remote_stats().remote_tile_lookups, 1u);
    EXPECT_GE(view.remote_stats().reads_table_hits, 1u);
  });
}

TEST(RemoteSpectrumView, GroupTableShortCircuitsRemote) {
  Heuristics heur;
  heur.partial_replication_group = 2;  // both ranks in one group
  with_remote_view(heur, [](rtm::Comm&, DistSpectrum&,
                            RemoteSpectrumView& view) {
    const std::uint64_t id = absent_id_owned_by(0, 2);
    EXPECT_EQ(view.tile_count(id), 0u);  // definitive miss, answered locally
    EXPECT_EQ(view.remote_stats().remote_tile_lookups, 0u);
    EXPECT_GE(view.remote_stats().group_lookups, 1u);
  });
}

TEST(RemoteSpectrumView, LookupStatsCountMisses) {
  with_remote_view({}, [](rtm::Comm&, DistSpectrum& spectrum,
                          RemoteSpectrumView& view) {
    const auto id = any_owned_id(spectrum, true, 2, 1);
    view.kmer_count(id);
    const std::uint64_t absent = absent_id_owned_by(1, 2);
    view.kmer_count(absent);  // owned by self, absent -> miss
    EXPECT_EQ(view.stats().kmer_misses, 1u);
    EXPECT_GE(view.stats().kmer_lookups, 1u);
  });
}

}  // namespace
}  // namespace reptile::parallel
