// Unit tests: local spectrum construction, pruning, lookup accounting.
#include "core/spectrum.hpp"

#include <gtest/gtest.h>

#include "seq/dataset.hpp"

namespace reptile::core {
namespace {

CorrectorParams small_params() {
  CorrectorParams p;
  p.k = 6;
  p.tile_overlap = 2;
  p.kmer_threshold = 2;
  p.tile_threshold = 2;
  return p;
}

TEST(SpectrumExtractor, ExtractsKmersAndTiles) {
  const CorrectorParams p = small_params();
  SpectrumExtractor ex(p);
  std::vector<seq::kmer_id_t> kmers;
  std::vector<seq::tile_id_t> tiles;
  const std::string read = "ACGTACGTACGTAC";  // len 14
  ex.extract(read, kmers, tiles);
  EXPECT_EQ(kmers.size(), 9u);   // 14 - 6 + 1
  EXPECT_EQ(tiles.size(), ex.tile_codec().tile_positions(14).size());
}

TEST(SpectrumExtractor, CanonicalModeFoldsStrands) {
  CorrectorParams p = small_params();
  p.canonical = true;
  SpectrumExtractor ex(p);
  std::vector<seq::kmer_id_t> k1, k2;
  std::vector<seq::tile_id_t> t1, t2;
  const std::string fwd = "ACGGTTACAG";
  const std::string rev = seq::reverse_complement(fwd);
  ex.extract(fwd, k1, t1);
  ex.extract(rev, k2, t2);
  // Same k-mer multiset from either strand (reversed order).
  std::sort(k1.begin(), k1.end());
  std::sort(k2.begin(), k2.end());
  EXPECT_EQ(k1, k2);
}

TEST(LocalSpectrum, CountsOccurrences) {
  const CorrectorParams p = small_params();
  LocalSpectrum s(p);
  const std::string read = "ACGTACGTAC";
  s.add_read(read);
  s.add_read(read);
  s.add_read(read);
  const seq::KmerCodec kc(p.k);
  EXPECT_EQ(s.kmer_count(kc.pack("ACGTAC")), 3u + 3u);  // appears at 0 and 4
  EXPECT_EQ(s.kmer_count(kc.pack("CGTACG")), 3u);
  EXPECT_EQ(s.kmer_count(kc.pack("TTTTTT")), 0u);
}

TEST(LocalSpectrum, PruneDropsBelowThreshold) {
  const CorrectorParams p = small_params();  // thresholds 2
  LocalSpectrum s(p);
  s.add_read("ACGTACGTAC");   // once
  s.add_read("TTGGCCAATT");   // once
  s.add_read("TTGGCCAATT");   // twice total
  const std::size_t before = s.kmer_entries();
  s.prune();
  EXPECT_LT(s.kmer_entries(), before);
  const seq::KmerCodec kc(p.k);
  // "CGTACG" occurs once in the first read (while "ACGTAC" occurs twice).
  EXPECT_EQ(s.kmer_count(kc.pack("CGTACG")), 0u);  // count 1, pruned
  EXPECT_EQ(s.kmer_count(kc.pack("ACGTAC")), 2u);  // twice in one read
  EXPECT_EQ(s.kmer_count(kc.pack("TTGGCC")), 2u);  // survives
}

TEST(LocalSpectrum, LookupStatsTrackMisses) {
  const CorrectorParams p = small_params();
  LocalSpectrum s(p);
  s.add_read("ACGTACGTAC");
  const seq::KmerCodec kc(p.k);
  s.kmer_count(kc.pack("ACGTAC"));
  s.kmer_count(kc.pack("TTTTTT"));
  s.tile_count(12345);
  EXPECT_EQ(s.stats().kmer_lookups, 2u);
  EXPECT_EQ(s.stats().kmer_misses, 1u);
  EXPECT_EQ(s.stats().tile_lookups, 1u);
  EXPECT_EQ(s.stats().tile_misses, 1u);
}

TEST(LocalSpectrum, MemoryGrowsWithContent) {
  const CorrectorParams p = small_params();
  LocalSpectrum s(p);
  const std::size_t empty = s.memory_bytes();
  seq::DatasetSpec spec{"t", 200, 60, 3000};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 3);
  for (const auto& r : ds.reads) s.add_read(r.bases);
  EXPECT_GT(s.memory_bytes(), empty);
  EXPECT_GT(s.kmer_entries(), 1000u);
  EXPECT_GT(s.tile_entries(), 1000u);
}

TEST(LocalSpectrum, CanonicalLookupMatchesEitherStrand) {
  CorrectorParams p = small_params();
  p.canonical = true;
  LocalSpectrum s(p);
  s.add_read("ACGGTTACAG");
  s.add_read("ACGGTTACAG");
  const seq::KmerCodec kc(p.k);
  const auto fwd = kc.pack("ACGGTT");
  const auto rc = kc.reverse_complement(fwd);
  EXPECT_EQ(s.kmer_count(fwd), 2u);
  EXPECT_EQ(s.kmer_count(rc), 2u);  // same canonical entry
}

TEST(LocalSpectrum, RejectsInvalidParams) {
  CorrectorParams p = small_params();
  p.k = 3;
  EXPECT_THROW(LocalSpectrum{p}, std::invalid_argument);
  p = small_params();
  p.tile_overlap = 6;
  EXPECT_THROW(LocalSpectrum{p}, std::invalid_argument);
}

TEST(CorrectorParams, TileGeometryHelpers) {
  CorrectorParams p;
  p.k = 12;
  p.tile_overlap = 4;
  EXPECT_EQ(p.tile_length(), 20);
  EXPECT_EQ(p.tile_step(), 8);
  EXPECT_NO_THROW(p.validate());
  p.k = 18;
  p.tile_overlap = 2;  // tile length 34
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace reptile::core
