// Mutant regression tier (DESIGN.md §8): re-introduce two real
// concurrency bugs behind compile-time + runtime toggles and pin that the
// model checker DETECTS both within a bounded schedule budget — and stays
// clean on the real code in the same binary with the toggles off.
//
//   RTM_MODEL_MUTANT_SPILL_FIFO   — the PR 6 overflow-spill race: the
//       locked push appends to the deque while another producer's claimed
//       ring cell is still unpublished, so a later message overtakes an
//       earlier one on the same (source, tag) stream. Surfaces as a
//       per-stream FIFO invariant violation.
//   RTM_MODEL_MUTANT_RELAXED_SEQ  — the ring's seq publish store weakened
//       to memory_order_relaxed: no happens-before edge to the consumer's
//       acquire, so reading the cell's Message is a data race. x86
//       hardware hides this; the weak-memory simulation must not.
//
// This binary is compiled as a STANDALONE translation unit with both
// mutant macros defined and deliberately does NOT link reptile_rtm: the
// library's TUs are built without the macros, and mixing the two inline
// definitions of the templated push path would be an ODR violation that
// silently drops the mutant.
#include <gtest/gtest.h>

#include <iostream>

#include "rtm/model/scenarios.hpp"

#ifndef RTM_MODEL_MUTANT_SPILL_FIFO
#error "build this test with -DRTM_MODEL_MUTANT_SPILL_FIFO"
#endif
#ifndef RTM_MODEL_MUTANT_RELAXED_SEQ
#error "build this test with -DRTM_MODEL_MUTANT_RELAXED_SEQ"
#endif

namespace reptile::rtm::model {
namespace {

Result run_named(const char* name, Mode mode, std::uint64_t schedules,
                 int preemptions) {
  const scenarios::Named* sc = scenarios::find(name);
  EXPECT_NE(sc, nullptr) << "unknown scenario " << name;
  Options o;
  o.mode = mode;
  o.max_schedules = schedules;
  o.seed = 7;
  o.max_preemptions = preemptions;
  return explore(o, sc->fn);
}

/// Flips one mutant flag for the duration of a test body.
class MutantFlag {
 public:
  explicit MutantFlag(bool& flag) : flag_(flag) { flag_ = true; }
  ~MutantFlag() { flag_ = false; }

 private:
  bool& flag_;
};

/// A detected mutant must come with a machine-replayable schedule: print
/// it (the satellite contract) and check it actually reproduces.
void check_replayable(const Result& r, const char* scenario) {
  ASSERT_FALSE(r.replay_token.empty());
  std::cout << describe_failure(r, scenario);
  Options o;
  o.mode = Mode::kReplay;
  ASSERT_TRUE(parse_replay(r.replay_token, &o.seed, &o.replay));
  const Result again = explore(o, scenarios::find(scenario)->fn);
  EXPECT_TRUE(again.failed) << "replay token did not reproduce the failure";
  EXPECT_EQ(again.message, r.message);
}

// With both mutants compiled in but switched OFF, the binary must behave
// exactly like the clean one: no false positives.
TEST(MutantsDisabled, AllScenariosClean) {
  for (const scenarios::Named& sc : scenarios::all()) {
    Options o;
    o.mode = Mode::kRandom;
    o.max_schedules = 2000;
    o.seed = 7;
    Result r = explore(o, sc.fn);
    EXPECT_FALSE(r.failed) << describe_failure(r, sc.name);
  }
}

TEST(SpillFifoMutant, RandomWalkDetects) {
  const MutantFlag on(mutants::g_spill_fifo);
  const Result r = run_named("mailbox_overflow", Mode::kRandom, 20000, -1);
  ASSERT_TRUE(r.failed) << "spill mutant survived 20k random schedules";
  EXPECT_NE(r.message.find("FIFO"), std::string::npos) << r.message;
  check_replayable(r, "mailbox_overflow");
}

TEST(SpillFifoMutant, BoundedDfsDetects) {
  const MutantFlag on(mutants::g_spill_fifo);
  // One preemption is enough: park a producer between its ring-cell claim
  // and its seq publish, and the next locked push spills past it.
  const Result r = run_named("ring_fifo_small", Mode::kDfs, 100000, 1);
  ASSERT_TRUE(r.failed) << "spill mutant survived bounded-exhaustive DFS";
  EXPECT_NE(r.message.find("FIFO"), std::string::npos) << r.message;
  check_replayable(r, "ring_fifo_small");
}

TEST(RelaxedSeqMutant, RandomWalkDetects) {
  const MutantFlag on(mutants::g_relaxed_seq_publish);
  const Result r = run_named("ring_exact", Mode::kRandom, 20000, -1);
  ASSERT_TRUE(r.failed) << "relaxed-publish mutant survived 20k schedules";
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
  check_replayable(r, "ring_exact");
}

TEST(RelaxedSeqMutant, BoundedDfsDetects) {
  const MutantFlag on(mutants::g_relaxed_seq_publish);
  const Result r = run_named("ring_fifo_small", Mode::kDfs, 100000, 1);
  ASSERT_TRUE(r.failed) << "relaxed-publish mutant survived bounded DFS";
  EXPECT_NE(r.message.find("data race"), std::string::npos) << r.message;
  check_replayable(r, "ring_fifo_small");
}

}  // namespace
}  // namespace reptile::rtm::model
