// rtm-check negative tests: each seeds one real concurrency or protocol bug
// and proves the checker names it — a deadlock aborts with a wait-for cycle
// instead of hanging, a leaked message and a malformed tag are reported
// with rank/tag detail — plus positive tests pinning that clean runs stay
// clean and that the pipeline surfaces the audit counters.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "parallel/dist_pipeline.hpp"
#include "parallel/protocol.hpp"
#include "parallel/protocol_table.hpp"
#include "parallel/wire.hpp"
#include "rtm/check/check.hpp"
#include "rtm/comm.hpp"
#include "seq/dataset.hpp"

namespace {

using namespace reptile;

/// Options tuned for negative tests: short grace so seeded deadlocks are
/// diagnosed in tens of milliseconds rather than the production quarter
/// second.
rtm::RunOptions fast_check_options() {
  rtm::RunOptions options;
  options.check.grace_ms = 60;
  options.check.poll_ms = 10;
  return options;
}

rtm::RunOptions lint_options() {
  rtm::RunOptions options = fast_check_options();
  options.check.tags = parallel::lookup_tag_table();
  options.check.strict_tags = true;
  return options;
}

// --- deadlock detection ---------------------------------------------------

TEST(RtmCheckDeadlock, MutualRecvReportsWaitForCycle) {
  // Rank 0 waits for rank 1 and vice versa; nobody ever sends. Without the
  // watchdog this hangs forever; with it every blocked rank throws a
  // DeadlockError whose report names both ranks and the wait-for chain.
  std::string what;
  try {
    rtm::run_world({2, 1}, [](rtm::Comm& comm) {
      (void)comm.recv(1 - comm.rank(), 77);
    }, fast_check_options());
    FAIL() << "seeded deadlock was not detected";
  } catch (const rtm::check::DeadlockError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("deadlock detected"), std::string::npos) << what;
  EXPECT_NE(what.find("wait-for chain"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  EXPECT_NE(what.find("tag=77"), std::string::npos) << what;
}

TEST(RtmCheckDeadlock, RecvFromExitedRankAborts) {
  // Rank 1 exits immediately; rank 0 waits for a message that can never
  // come. The report must point at the exited dependency.
  std::string what;
  try {
    rtm::run_world({2, 1}, [](rtm::Comm& comm) {
      if (comm.rank() == 0) (void)comm.recv(1, 5);
    }, fast_check_options());
    FAIL() << "recv from an exited rank was not detected";
  } catch (const rtm::check::DeadlockError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("rank 1 (exited)"), std::string::npos) << what;
  EXPECT_NE(what.find("recv(source=1 tag=5)"), std::string::npos) << what;
}

TEST(RtmCheckDeadlock, BarrierVersusRecvMixAborts) {
  // Rank 0 enters the barrier; rank 1 blocks in a recv first — the classic
  // mismatched-collective hang. Both waits appear in the state dump.
  std::string what;
  try {
    rtm::run_world({2, 1}, [](rtm::Comm& comm) {
      if (comm.rank() == 0) {
        comm.barrier();
      } else {
        (void)comm.recv(0, 9);
      }
    }, fast_check_options());
    FAIL() << "barrier/recv mismatch was not detected";
  } catch (const rtm::check::DeadlockError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("blocked in barrier"), std::string::npos) << what;
  EXPECT_NE(what.find("blocked in recv(source=0 tag=9)"), std::string::npos)
      << what;
}

TEST(RtmCheckDeadlock, HealthyPingPongIsNotFlagged) {
  // Steady traffic that individually blocks each rank for short periods
  // must never trip the watchdog, even with an aggressive grace period.
  rtm::RunOptions options = fast_check_options();
  auto world = rtm::run_world({2, 1}, [](rtm::Comm& comm) {
    const int peer = 1 - comm.rank();
    for (int i = 0; i < 50; ++i) {
      if (comm.rank() == 0) {
        comm.send_value(peer, 3, i);
        (void)comm.recv(peer, 4);
      } else {
        (void)comm.recv(peer, 3);
        comm.send_value(peer, 4, i);
      }
    }
    comm.barrier();
  }, options);
  const auto s0 = world->checker()->snapshot(0);
  const auto s1 = world->checker()->snapshot(1);
  EXPECT_EQ(s0.fifo_violations + s1.fifo_violations, 0u);
  EXPECT_EQ(s0.leaked_messages + s1.leaked_messages, 0u);
  // Someone must have blocked at least once for the other side to produce.
  EXPECT_GT(s0.waits_registered + s1.waits_registered, 0u);
}

// --- mailbox audit --------------------------------------------------------

TEST(RtmCheckAudit, LeakedMessageIsReportedWithRankAndTag) {
  // Rank 0 sends a message rank 1 never consumes: the run finishes, but
  // finalize() must flag the unconsumed message with its envelope.
  auto world = rtm::run_world({2, 1}, [](rtm::Comm& comm) {
    if (comm.rank() == 0) comm.send_value(1, 7, 123);
    comm.barrier();
  }, fast_check_options());
  const auto snapshot = world->checker()->snapshot(1);
  EXPECT_EQ(snapshot.leaked_messages, 1u);
  EXPECT_EQ(world->checker()->snapshot(0).leaked_messages, 0u);
  const std::string report = world->checker()->final_report();
  EXPECT_NE(report.find("rank 1: leaked message"), std::string::npos)
      << report;
  EXPECT_NE(report.find("source=0 tag=7"), std::string::npos) << report;
}

TEST(RtmCheckAudit, LeakedReplyIsClassifiedAsOrphan) {
  // With the protocol table installed, a leaked message on a reply-range
  // tag is an orphaned reply — a requester that gave up on its answer.
  rtm::RunOptions options = lint_options();
  auto world = rtm::run_world({2, 1}, [](rtm::Comm& comm) {
    if (comm.rank() == 0) {
      // A legal request/reply exchange whose reply is never consumed.
      parallel::LookupRequest req;
      req.id = 42;
      req.reply_to = parallel::kTagKmerReply;
      comm.send_value(1, parallel::kTagKmerRequest, req);
    } else {
      const auto msg = comm.recv(0, parallel::kTagKmerRequest);
      const auto req = msg.as_value<parallel::LookupRequest>();
      parallel::LookupReply reply;
      comm.send_value(0, req.reply_to, reply);
    }
    comm.barrier();
  }, options);
  const auto snapshot = world->checker()->snapshot(0);
  EXPECT_EQ(snapshot.leaked_messages, 1u);
  EXPECT_EQ(snapshot.orphaned_replies, 1u);
  EXPECT_NE(world->checker()->final_report().find("orphaned reply"),
            std::string::npos);
}

TEST(RtmCheckAudit, UnansweredRequestIsReported) {
  // The request reaches rank 1 and is consumed, but no reply is ever sent:
  // the pairing ledger must show rank 0 still waiting at run end.
  auto world = rtm::run_world({2, 1}, [](rtm::Comm& comm) {
    if (comm.rank() == 0) {
      parallel::LookupRequest req;
      req.reply_to = parallel::kTagKmerReply;
      comm.send_value(1, parallel::kTagKmerRequest, req);
    } else {
      (void)comm.recv(0, parallel::kTagKmerRequest);
    }
    comm.barrier();
  }, lint_options());
  EXPECT_EQ(world->checker()->snapshot(0).unanswered_requests, 1u);
  const std::string report = world->checker()->final_report();
  EXPECT_NE(report.find("never answered"), std::string::npos) << report;
}

TEST(RtmCheckAudit, FifoSequenceNumbersSurviveSelectiveConsumption) {
  // Selective pops across interleaved streams must not trip the FIFO
  // audit: per-stream order is what the guarantee (and the audit) is about.
  auto world = rtm::run_world({2, 1}, [](rtm::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 20; ++i) {
        comm.send_value(1, 100 + (i % 2), i);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        (void)comm.recv(0, 101);  // drain the odd stream first
      }
      for (int i = 0; i < 10; ++i) {
        (void)comm.recv(0, 100);
      }
    }
    comm.barrier();
  }, fast_check_options());
  EXPECT_EQ(world->checker()->snapshot(1).fifo_violations, 0u);
  EXPECT_EQ(world->checker()->snapshot(1).msgs_consumed, 20u);
}

// --- protocol linter ------------------------------------------------------

TEST(RtmCheckLint, MalformedRequestPayloadThrowsAtSendSite) {
  // A kmer request must be exactly sizeof(LookupRequest); sending a bare
  // int is a protocol violation named with rank and tag.
  std::string what;
  try {
    rtm::run_world({2, 1}, [](rtm::Comm& comm) {
      if (comm.rank() == 0) {
        comm.send_value(1, parallel::kTagKmerRequest, std::uint32_t{7});
      }
    }, lint_options());
    FAIL() << "malformed request was not rejected";
  } catch (const rtm::check::ProtocolError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("rank 0 -> rank 1"), std::string::npos) << what;
  EXPECT_NE(what.find("tag 11"), std::string::npos) << what;
  EXPECT_NE(what.find("payload size out of bounds"), std::string::npos)
      << what;
}

TEST(RtmCheckLint, UnknownTagThrowsUnderStrictTags) {
  EXPECT_THROW(
      rtm::run_world({2, 1}, [](rtm::Comm& comm) {
        if (comm.rank() == 0) comm.send_value(1, 5, 1);  // tag 5: not in table
      }, lint_options()),
      rtm::check::ProtocolError);
}

TEST(RtmCheckLint, OrphanedReplyThrows) {
  // A reply with no outstanding request is a protocol bug on the spot.
  std::string what;
  try {
    rtm::run_world({2, 1}, [](rtm::Comm& comm) {
      if (comm.rank() == 0) {
        parallel::LookupReply reply;
        comm.send_value(1, parallel::kTagKmerReply, reply);
      }
    }, lint_options());
    FAIL() << "orphaned reply was not rejected";
  } catch (const rtm::check::ProtocolError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("orphaned reply"), std::string::npos) << what;
  EXPECT_NE(what.find("tag 21"), std::string::npos) << what;
}

TEST(RtmCheckLint, BatchHeaderCountMismatchThrows) {
  // A batch request whose header promises more IDs than the body carries
  // mirrors the decode_batch_request check, but fails at the send site.
  std::string what;
  try {
    rtm::run_world({2, 1}, [](rtm::Comm& comm) {
      if (comm.rank() == 0) {
        parallel::BatchLookupHeader h;
        h.kind = 0;
        h.reply_to = parallel::kTagBatchReplyBase;
        h.count = 3;  // ...but no IDs follow
        comm.send_value(1, parallel::kTagBatchRequest, h);
      }
    }, lint_options());
    FAIL() << "bad batch header was not rejected";
  } catch (const rtm::check::ProtocolError& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("header declares 3 ids"), std::string::npos) << what;
}

TEST(RtmCheckLint, ReplySizeMismatchThrows) {
  // The reply to a scalar request must be exactly one LookupReply; answer
  // with two and the pairing check fires.
  EXPECT_THROW(
      rtm::run_world({2, 1}, [](rtm::Comm& comm) {
        if (comm.rank() == 0) {
          parallel::LookupRequest req;
          req.reply_to = parallel::kTagKmerReply;
          comm.send_value(1, parallel::kTagKmerRequest, req);
          (void)comm.recv(1, parallel::kTagKmerReply);
        } else {
          (void)comm.recv(0, parallel::kTagKmerRequest);
          const parallel::LookupReply two[2] = {};
          comm.send<parallel::LookupReply>(
              0, parallel::kTagKmerReply,
              std::span<const parallel::LookupReply>(two, 2));
        }
      }, lint_options()),
      rtm::check::ProtocolError);
}

TEST(RtmCheckLint, WellFormedExchangeIsAccepted) {
  // The canonical request/reply exchange sails through the strict table.
  auto world = rtm::run_world({2, 1}, [](rtm::Comm& comm) {
    if (comm.rank() == 0) {
      parallel::LookupRequest req;
      req.id = 99;
      req.reply_to = parallel::kTagKmerReply;
      comm.send_value(1, parallel::kTagKmerRequest, req);
      const auto reply =
          comm.recv(1, parallel::kTagKmerReply).as_value<parallel::LookupReply>();
      EXPECT_EQ(reply.count, -1);
    } else {
      const auto msg = comm.recv(0, parallel::kTagKmerRequest);
      const auto req = msg.as_value<parallel::LookupRequest>();
      parallel::LookupReply reply;
      comm.send_value(0, req.reply_to, reply);
    }
    comm.barrier();
  }, lint_options());
  const auto s0 = world->checker()->snapshot(0);
  EXPECT_EQ(s0.lint_checked, 1u);
  EXPECT_EQ(s0.unanswered_requests, 0u);
  EXPECT_EQ(s0.leaked_messages, 0u);
}

// --- pipeline integration -------------------------------------------------

TEST(RtmCheckPipeline, DistributedRunIsCleanAndSurfacesCounters) {
  // A real 4-rank pipeline run under the strict lookup table: no leaks, no
  // FIFO violations, no unanswered requests — and the per-rank report
  // carries the linter's message counts.
  const auto ds = seq::SyntheticDataset::generate({"check_pipe", 300, 60, 600},
                                                  {}, 2026);
  parallel::DistConfig config;
  config.params.k = 10;
  config.params.tile_overlap = 4;
  config.params.kmer_threshold = 2;
  config.params.tile_threshold = 2;
  config.params.chunk_size = 64;
  config.ranks = 4;
  config.ranks_per_node = 2;
  const auto result = parallel::run_distributed(ds.reads, config);
  ASSERT_EQ(result.ranks.size(), 4u);
  std::uint64_t linted = 0;
  for (const auto& r : result.ranks) {
    EXPECT_EQ(r.check.fifo_violations, 0u) << "rank " << r.rank;
    EXPECT_EQ(r.check.leaked_messages, 0u) << "rank " << r.rank;
    EXPECT_EQ(r.check.unanswered_requests, 0u) << "rank " << r.rank;
    linted += r.check.lint_checked;
  }
  // Every point-to-point message of the run went through the linter.
  std::uint64_t sent = 0;
  for (const auto& r : result.ranks) sent += r.traffic.sent_msgs();
  EXPECT_EQ(linted, sent);
  EXPECT_GT(linted, 0u);
}

TEST(RtmCheckPipeline, CheckingOffLeavesZeroCounters) {
  const auto ds = seq::SyntheticDataset::generate({"check_off", 120, 50, 240},
                                                  {}, 7);
  parallel::DistConfig config;
  config.params.k = 10;
  config.params.tile_overlap = 4;
  config.params.kmer_threshold = 2;
  config.params.tile_threshold = 2;
  config.params.chunk_size = 64;
  config.ranks = 2;
  config.run_options.check.enabled = false;
  const auto result = parallel::run_distributed(ds.reads, config);
  for (const auto& r : result.ranks) {
    EXPECT_EQ(r.check.lint_checked, 0u);
    EXPECT_EQ(r.check.msgs_delivered, 0u);
  }
}

}  // namespace
