// Integration tests: the paper's Section V future-work feature (partial
// replication) and the Step III Bloom-filter construction alternative.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"
#include "stats/accuracy.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams test_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 64;
  return p;
}

const seq::SyntheticDataset& dataset() {
  static const seq::SyntheticDataset ds = [] {
    seq::DatasetSpec spec{"ext", 1200, 70, 2000};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.004;
    errors.error_rate_end = 0.012;
    return seq::SyntheticDataset::generate(spec, errors, 88);
  }();
  return ds;
}

// --- partial replication (Section V) ----------------------------------------

TEST(PartialReplication, OutputIdenticalToSequential) {
  const auto ref = core::run_sequential(dataset().reads, test_params());
  // Includes a group size that does not divide the rank count (the last
  // group is smaller: {0..3}, {4, 5}).
  const std::pair<int, int> cases[] = {{8, 2}, {8, 4}, {8, 8}, {6, 4}};
  for (const auto [ranks, group] : cases) {
    DistConfig config;
    config.params = test_params();
    config.ranks = ranks;
    config.ranks_per_node = 4;
    config.heuristics.partial_replication_group = group;
    const auto result = run_distributed(dataset().reads, config);
    ASSERT_EQ(result.corrected.size(), ref.corrected.size());
    for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
      ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases)
          << "ranks=" << ranks << " group=" << group << " read "
          << ref.corrected[i].number;
    }
  }
}

TEST(PartialReplication, ReducesRemoteLookupsMonotonically) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 8;
  config.ranks_per_node = 4;
  std::uint64_t previous = ~0ull;
  for (int group : {1, 2, 4, 8}) {
    config.heuristics.partial_replication_group = group;
    const auto result = run_distributed(dataset().reads, config);
    std::uint64_t remote = 0, group_hits = 0;
    for (const auto& r : result.ranks) {
      remote += r.remote.remote_lookups();
      group_hits += r.remote.group_lookups;
    }
    EXPECT_LT(remote, previous) << "group=" << group;
    previous = remote;
    if (group > 1) EXPECT_GT(group_hits, 0u) << "group=" << group;
    if (group == 8) EXPECT_EQ(remote, 0u);  // whole world in one group
  }
}

TEST(PartialReplication, TradesMemoryForLocality) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 8;
  config.ranks_per_node = 4;
  auto peak_memory = [&](int group) {
    config.heuristics.partial_replication_group = group;
    const auto result = run_distributed(dataset().reads, config);
    std::size_t peak = 0;
    for (const auto& r : result.ranks) {
      peak = std::max(peak, r.footprint_after_correction.bytes);
    }
    return peak;
  };
  const auto none = peak_memory(1);
  const auto pairs = peak_memory(2);
  const auto full = peak_memory(8);
  EXPECT_GT(pairs, none);
  EXPECT_GT(full, pairs);
}

TEST(PartialReplication, RejectsInvalidGroup) {
  Heuristics h;
  h.partial_replication_group = 0;
  EXPECT_THROW(h.validate(), std::invalid_argument);
  h.partial_replication_group = 4;
  EXPECT_NO_THROW(h.validate());
  EXPECT_NE(h.label().find("partial_repl(4)"), std::string::npos);
}

// --- Bloom-filter construction (Step III note) -------------------------------

TEST(BloomConstruction, AccuracyEssentiallyUnchanged) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  const auto exact = run_distributed(dataset().reads, config);
  config.heuristics.bloom_construction = true;
  const auto bloomed = run_distributed(dataset().reads, config);

  const auto acc_exact =
      stats::score_correction(dataset().reads, exact.corrected, dataset().truth);
  const auto acc_bloom = stats::score_correction(dataset().reads,
                                                 bloomed.corrected,
                                                 dataset().truth);
  // The mode is approximate (counts can be off by one near the threshold),
  // but correction quality must stay within a few percent of exact.
  EXPECT_NEAR(acc_bloom.sensitivity(), acc_exact.sensitivity(), 0.05);
  EXPECT_NEAR(acc_bloom.gain(), acc_exact.gain(), 0.05);
}

TEST(BloomConstruction, SuppressesSingletonEntries) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  config.params.kmer_threshold = 1;  // keep everything -> census visible
  config.params.tile_threshold = 1;

  const auto count_entries = [&](bool bloom) {
    config.heuristics.bloom_construction = bloom;
    const auto result = run_distributed(dataset().reads, config);
    std::size_t entries = 0;
    for (const auto& r : result.ranks) {
      entries += r.footprint_after_construction.hash_kmer_entries +
                 r.footprint_after_construction.hash_tile_entries;
    }
    return entries;
  };
  const auto exact = count_entries(false);
  const auto bloomed = count_entries(true);
  // Error-noise singletons dominate the unpruned spectrum; the filter must
  // keep a large share of them out of the exact tables.
  EXPECT_LT(bloomed, exact * 3 / 4);
}

TEST(BloomConstruction, AboveThresholdEntriesSurvive) {
  // Entries comfortably above the threshold must all be admitted (their
  // counts may be off by one, never missing).
  const auto params = test_params();
  DistConfig config;
  config.params = params;
  config.ranks = 4;
  config.heuristics.bloom_construction = true;
  const auto bloomed = run_distributed(dataset().reads, config);
  const auto exact_run = core::run_sequential(dataset().reads, params);
  // Compare total corrected substitutions: bloom mode must do essentially
  // the same work (solid spectrum preserved).
  const double exact_subs = static_cast<double>(exact_run.substitutions);
  const double bloom_subs =
      static_cast<double>(bloomed.total_substitutions());
  EXPECT_NEAR(bloom_subs, exact_subs, exact_subs * 0.05 + 5);
}

TEST(BloomConstruction, ComposesWithBatchReads) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  config.heuristics.bloom_construction = true;
  config.heuristics.batch_reads = true;
  const auto result = run_distributed(dataset().reads, config);
  const auto acc = stats::score_correction(dataset().reads, result.corrected,
                                           dataset().truth);
  EXPECT_GT(acc.sensitivity(), 0.5);
  EXPECT_EQ(result.corrected.size(), dataset().reads.size());
}

}  // namespace
}  // namespace reptile::parallel
