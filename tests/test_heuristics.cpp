// Unit tests: heuristics flags, labels, validation.
#include "parallel/heuristics.hpp"

#include <gtest/gtest.h>

namespace reptile::parallel {
namespace {

TEST(Heuristics, DefaultIsBalancedBase) {
  const Heuristics h;
  EXPECT_FALSE(h.universal);
  EXPECT_FALSE(h.read_kmers);
  EXPECT_FALSE(h.allgather_kmers);
  EXPECT_FALSE(h.allgather_tiles);
  EXPECT_FALSE(h.add_remote);
  EXPECT_FALSE(h.batch_reads);
  EXPECT_TRUE(h.load_balance);
  EXPECT_EQ(h.partial_replication_group, 1);
  EXPECT_FALSE(h.bloom_construction);
  EXPECT_NO_THROW(h.validate());
  EXPECT_EQ(h.label(), "load_balance");
}

TEST(Heuristics, LabelListsActiveFlags) {
  Heuristics h;
  h.load_balance = false;
  EXPECT_EQ(h.label(), "base");
  h.universal = true;
  h.batch_reads = true;
  EXPECT_EQ(h.label(), "universal+batch_reads");
  h.bloom_construction = true;
  h.partial_replication_group = 8;
  const auto label = h.label();
  EXPECT_NE(label.find("bloom"), std::string::npos);
  EXPECT_NE(label.find("partial_repl(8)"), std::string::npos);
}

TEST(Heuristics, FullyReplicatedRequiresBothSpectra) {
  Heuristics h;
  EXPECT_FALSE(h.fully_replicated());
  h.allgather_kmers = true;
  EXPECT_FALSE(h.fully_replicated());
  h.allgather_tiles = true;
  EXPECT_TRUE(h.fully_replicated());
}

TEST(Heuristics, AddRemoteRequiresReadKmers) {
  Heuristics h;
  h.add_remote = true;
  EXPECT_THROW(h.validate(), std::invalid_argument);
  h.read_kmers = true;
  EXPECT_NO_THROW(h.validate());
}

TEST(Heuristics, PartialReplicationGroupValidated) {
  Heuristics h;
  for (int bad : {0, -1, -100}) {
    h.partial_replication_group = bad;
    EXPECT_THROW(h.validate(), std::invalid_argument) << bad;
  }
  for (int ok : {1, 2, 32, 8192}) {
    h.partial_replication_group = ok;
    EXPECT_NO_THROW(h.validate()) << ok;
  }
}

}  // namespace
}  // namespace reptile::parallel
