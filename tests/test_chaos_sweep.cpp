// Chaos sweep: the distributed pipeline across seeds x fault plans x lookup
// modes (scalar request/reply vs batched prefetch), checked against the
// sequential baseline.
//
// Identity contract per plan class (DESIGN.md §4d):
//  * delay-only plans lose nothing — output must be bit-identical;
//  * lossy plans (drops/truncation) may degrade lookups — the output must be
//    CONSERVATIVELY identical: every base either matches the sequential
//    correction or is the original (a skipped substitution). A substitution
//    the baseline never applied is a miscorrection and fails the sweep.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"

namespace reptile {
namespace {

core::CorrectorParams sweep_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.chunk_size = 64;
  return p;
}

const seq::SyntheticDataset& sweep_dataset() {
  static const seq::SyntheticDataset ds = [] {
    seq::DatasetSpec spec{"sweep", 400, 60, 900};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.005;
    errors.error_rate_end = 0.012;
    return seq::SyntheticDataset::generate(spec, errors, 77);
  }();
  return ds;
}

const core::SequentialResult& sweep_reference() {
  static const core::SequentialResult ref =
      core::run_sequential(sweep_dataset().reads, sweep_params());
  return ref;
}

struct SweepCase {
  const char* name;
  rtm::FaultPlan plan;     ///< seed overwritten per sweep iteration
  bool lossy;              ///< expected contract (plan.lossy() cross-check)
  bool batched;            ///< batch_lookups mode
};

rtm::FaultPlan delay_only() {
  rtm::FaultPlan p;
  p.max_delay_us = 250;
  return p;
}

rtm::FaultPlan delays_and_drops() {
  rtm::FaultPlan p = delay_only();
  p.drop_rate = 0.06;
  return p;
}

rtm::FaultPlan full_chaos() {
  rtm::FaultPlan p = delay_only();
  p.drop_rate = 0.05;
  p.duplicate_rate = 0.05;
  p.truncate_rate = 0.02;
  p.stall_rate = 0.002;
  p.stall_us = 1500;
  return p;
}

class ChaosSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ChaosSweep, HoldsIdentityContract) {
  const SweepCase& cs = GetParam();
  const auto& ds = sweep_dataset();
  const auto& ref = sweep_reference();

  for (const std::uint64_t seed : {101ull, 202ull}) {
    parallel::DistConfig config;
    config.params = sweep_params();
    config.ranks = 4;
    config.heuristics.batch_lookups = cs.batched;
    config.run_options.chaos = cs.plan;
    config.run_options.chaos.seed = seed;
    ASSERT_EQ(config.run_options.chaos.lossy(), cs.lossy) << cs.name;
    if (cs.lossy) {
      config.retry.timeout_ticks = 5;
      config.retry.max_retries = 12;
    }

    const auto result = parallel::run_distributed(ds.reads, config);
    ASSERT_EQ(result.corrected.size(), ref.corrected.size());

    std::uint64_t degraded = 0;
    for (const auto& r : result.ranks) {
      degraded += r.tiles_degraded;
      EXPECT_EQ(r.check.fifo_violations, 0u)
          << cs.name << " seed " << seed << " rank " << r.rank;
      EXPECT_EQ(r.check.leaked_messages, 0u)
          << cs.name << " seed " << seed << " rank " << r.rank;
      EXPECT_EQ(r.check.orphaned_replies, 0u)
          << cs.name << " seed " << seed << " rank " << r.rank;
    }
    if (!cs.lossy) {
      EXPECT_EQ(degraded, 0u) << cs.name;
    }

    std::size_t divergent = 0;
    for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
      ASSERT_EQ(result.corrected[i].number, ref.corrected[i].number);
      const std::string& dist = result.corrected[i].bases;
      const std::string& fixed = ref.corrected[i].bases;
      if (dist == fixed) continue;
      ++divergent;
      ASSERT_TRUE(cs.lossy)
          << cs.name << " seed " << seed << ": delay-only plan changed read "
          << ref.corrected[i].number;
      const std::string& original = ds.reads[i].bases;
      ASSERT_EQ(dist.size(), fixed.size());
      for (std::size_t b = 0; b < dist.size(); ++b) {
        if (dist[b] != fixed[b]) {
          ASSERT_EQ(dist[b], original[b])
              << cs.name << " seed " << seed << " read "
              << ref.corrected[i].number << " base " << b
              << ": miscorrection (neither original nor baseline)";
        }
      }
    }
    // Degradation is the only licence to diverge.
    if (degraded == 0) {
      EXPECT_EQ(divergent, 0u) << cs.name << " seed " << seed;
      EXPECT_EQ(result.total_substitutions(), ref.substitutions)
          << cs.name << " seed " << seed;
    }
    EXPECT_LE(result.total_substitutions(), ref.substitutions);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Plans, ChaosSweep,
    ::testing::Values(
        SweepCase{"delay_scalar", delay_only(), false, false},
        SweepCase{"delay_batched", delay_only(), false, true},
        SweepCase{"drops_scalar", delays_and_drops(), true, false},
        SweepCase{"drops_batched", delays_and_drops(), true, true},
        SweepCase{"full_scalar", full_chaos(), true, false},
        SweepCase{"full_batched", full_chaos(), true, true}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace reptile
