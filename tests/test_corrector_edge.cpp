// Edge-case tests for the tile corrector: boundary geometries, parameter
// extremes, adversarial inputs.
#include <gtest/gtest.h>

#include "core/corrector.hpp"
#include "core/pipeline.hpp"
#include "seq/dataset.hpp"

namespace reptile::core {
namespace {

CorrectorParams tiny() {
  CorrectorParams p;
  p.k = 6;
  p.tile_overlap = 2;  // tile length 10
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  return p;
}

LocalSpectrum spectrum_of(const CorrectorParams& p, const std::string& truth,
                          int copies) {
  LocalSpectrum s(p);
  for (int i = 0; i < copies; ++i) s.add_read(truth);
  s.prune();
  return s;
}

seq::Read read_of(const std::string& bases, seq::qual_t q = 30) {
  return {1, bases, std::vector<seq::qual_t>(bases.size(), q)};
}

TEST(CorrectorEdge, ReadExactlyOneTileLong) {
  const auto p = tiny();
  const std::string truth = "ACGGTTAACC";  // exactly 10 bases
  auto s = spectrum_of(p, truth, 5);
  std::string corrupted = truth;
  corrupted[4] = corrupted[4] == 'T' ? 'G' : 'T';
  auto r = read_of(corrupted);
  r.quals[4] = 3;
  TileCorrector corrector(p);
  const auto rc = corrector.correct(r, s);
  EXPECT_EQ(r.bases, truth);
  EXPECT_EQ(rc.substitutions, 1);
}

TEST(CorrectorEdge, ErrorInTheTailTile) {
  // The final tail tile (anchored at read_len - tile_len) must also be
  // checked; an error in the last base is only covered by it.
  const auto p = tiny();
  const std::string truth = "ACGGTTAACCGGATCGGATTA";  // len 21
  auto s = spectrum_of(p, truth, 5);
  std::string corrupted = truth;
  corrupted.back() = corrupted.back() == 'A' ? 'C' : 'A';
  auto r = read_of(corrupted);
  r.quals.back() = 3;
  TileCorrector corrector(p);
  corrector.correct(r, s);
  EXPECT_EQ(r.bases, truth);
}

TEST(CorrectorEdge, HammingOneOnlyModeSkipsDoubleErrors) {
  CorrectorParams p = tiny();
  p.max_hamming = 1;
  const std::string truth = "ACGGTTAACCGGATCGGATTAC";
  auto s = spectrum_of(p, truth, 6);
  std::string corrupted = truth;
  corrupted[2] = corrupted[2] == 'G' ? 'C' : 'G';
  corrupted[7] = corrupted[7] == 'A' ? 'T' : 'A';  // both in the first tile
  auto r = read_of(corrupted);
  r.quals[2] = 4;
  r.quals[7] = 4;
  TileCorrector corrector(p);
  const auto rc = corrector.correct(r, s);
  // The two-error tile cannot be fixed at distance 1; later tiles that
  // contain only one of the errors may still fix that one.
  EXPECT_LE(rc.substitutions, 1);
  EXPECT_NE(r.bases, truth);  // at least the first-tile pair survives partly
}

TEST(CorrectorEdge, DominanceRatioOneAcceptsAnyStrictWinner) {
  CorrectorParams p = tiny();
  p.dominance_ratio = 1.0;
  const std::string variant_a = "ACGGTTAACCGGATCGGATTAC";
  std::string variant_b = variant_a;
  variant_b[1] = 'T';
  LocalSpectrum s(p);
  for (int i = 0; i < 6; ++i) s.add_read(variant_a);
  for (int i = 0; i < 3; ++i) s.add_read(variant_b);
  s.prune();
  std::string ambiguous = variant_a;
  ambiguous[1] = 'G';
  auto r = read_of(ambiguous);
  r.quals[1] = 4;
  TileCorrector corrector(p);
  corrector.correct(r, s);
  // 6 > 3, so with ratio 1.0 the majority variant wins.
  EXPECT_EQ(r.bases[1], variant_a[1]);
}

TEST(CorrectorEdge, ZeroBudgetMeansNoChanges) {
  CorrectorParams p = tiny();
  p.max_corrections_per_read = 0;
  const std::string truth = "ACGGTTAACCGGATCGGATTAC";
  auto s = spectrum_of(p, truth, 5);
  std::string corrupted = truth;
  corrupted[3] = corrupted[3] == 'G' ? 'A' : 'G';
  auto r = read_of(corrupted);
  TileCorrector corrector(p);
  const auto rc = corrector.correct(r, s);
  EXPECT_EQ(rc.substitutions, 0);
  EXPECT_EQ(r.bases, corrupted);
}

TEST(CorrectorEdge, AllBasesLowQualityStillBounded) {
  CorrectorParams p = tiny();
  p.max_positions_per_tile = 3;
  const std::string truth = "ACGGTTAACCGGATCGGATTAC";
  auto s = spectrum_of(p, truth, 5);
  std::string corrupted = truth;
  corrupted[5] = corrupted[5] == 'T' ? 'A' : 'T';
  auto r = read_of(corrupted, /*q=*/2);  // uniformly terrible qualities
  TileCorrector corrector(p);
  const auto rc = corrector.correct(r, s);
  // With only 3 searchable positions per tile the error may or may not be
  // reachable; the corrector must stay within its budget and not corrupt
  // further.
  EXPECT_LE(rc.substitutions, p.max_corrections_per_read);
  int diffs = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (r.bases[i] != truth[i]) ++diffs;
  }
  EXPECT_LE(diffs, 1);
}

TEST(CorrectorEdge, EmptySpectrumChangesNothing) {
  const auto p = tiny();
  LocalSpectrum s(p);
  s.prune();
  auto r = read_of("ACGGTTAACCGGATCGGATTAC");
  TileCorrector corrector(p);
  const auto rc = corrector.correct(r, s);
  // Every tile is untrusted but no candidate is acceptable either.
  EXPECT_GT(rc.tiles_untrusted, 0);
  EXPECT_EQ(rc.substitutions, 0);
}

TEST(CorrectorEdge, RepeatRichGenomeDoesNotTriggerFalseCorrections) {
  // High-count repeat k-mers must not pull reads toward the repeat
  // consensus when the read's own tile is solid.
  CorrectorParams p = tiny();
  seq::DatasetSpec spec{"rep", 2500, 60, 2500};
  seq::GenomeParams gp;
  gp.repeat_fraction = 0.4;
  gp.repeat_length = 120;
  seq::ErrorModelParams no_errors;
  no_errors.error_rate_start = 0;
  no_errors.error_rate_end = 0;
  const auto ds = seq::SyntheticDataset::generate(spec, no_errors, 5, gp);
  const auto result = run_sequential(ds.reads, p);
  // A handful of miscorrections are expected at the genome EDGES (the
  // first/last tile positions are covered by only ~1 read, so their true
  // tiles fall below threshold and a solid repeat variant can win) — the
  // classic spectrum-corrector edge effect. The property worth pinning is
  // that repeats do not cause widespread damage: <0.01% of the ~150k bases.
  EXPECT_LE(result.substitutions, 10u);
}

TEST(CorrectorEdge, RestrictToLowQualityOnlyTouchesSuspectBases) {
  CorrectorParams p = tiny();
  p.restrict_to_low_quality = true;
  p.qual_threshold = 20;
  const std::string truth = "ACGGTTAACCGGATCGGATTAC";
  auto s = spectrum_of(p, truth, 5);
  // Error at a HIGH-quality position: the restricted corrector must not
  // touch it (the original Reptile trusts confident base calls).
  std::string corrupted = truth;
  corrupted[5] = corrupted[5] == 'T' ? 'A' : 'T';
  auto high_conf = read_of(corrupted, /*q=*/35);
  TileCorrector corrector(p);
  auto rc = corrector.correct(high_conf, s);
  EXPECT_EQ(rc.substitutions, 0);
  EXPECT_EQ(high_conf.bases, corrupted);
  // The same error reported with low quality is corrected.
  auto low_conf = read_of(corrupted, 35);
  low_conf.quals[5] = 5;
  rc = corrector.correct(low_conf, s);
  EXPECT_EQ(low_conf.bases, truth);
  EXPECT_EQ(rc.substitutions, 1);
}

TEST(CorrectorEdge, HeterozygousSitesAreNotMiscorrected) {
  // Diploid sample, no sequencing errors: both alleles of every SNP are
  // solid and roughly balanced, so the dominance rule must refuse to
  // "correct" one haplotype toward the other.
  CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  seq::DatasetSpec spec{"het", 4000, 60, 3000};  // 80X combined coverage
  seq::GenomeParams gp;
  gp.heterozygosity = 0.01;
  seq::ErrorModelParams no_errors;
  no_errors.error_rate_start = 0;
  no_errors.error_rate_end = 0;
  const auto ds = seq::SyntheticDataset::generate(spec, no_errors, 7, gp);
  ASSERT_GT(ds.heterozygous_sites, 10u);
  const auto result = run_sequential(ds.reads, p);
  // Changed bases would all be false positives here. Allow only the usual
  // genome-edge noise (far below one per heterozygous site).
  EXPECT_LT(result.substitutions, ds.heterozygous_sites / 2);
}

TEST(CorrectorEdge, QualityOrderingPrefersLowQualityPositions) {
  // Two possible single-base fixes exist at different positions; the one at
  // the low-quality position must be explored first and win.
  const auto p = tiny();
  const std::string truth = "ACGGTTAACCGGATCGGATTAC";
  auto s = spectrum_of(p, truth, 5);
  std::string corrupted = truth;
  corrupted[6] = corrupted[6] == 'A' ? 'G' : 'A';
  auto r = read_of(corrupted, 35);
  r.quals[6] = 2;  // the true error site reports terrible quality
  TileCorrector corrector(p);
  corrector.correct(r, s);
  EXPECT_EQ(r.bases, truth);
}

}  // namespace
}  // namespace reptile::core
