// Unit tests: Illumina-like error model and burst localization.
#include "seq/error_model.hpp"

#include <gtest/gtest.h>

#include <string>

#include "seq/alphabet.hpp"

namespace reptile::seq {
namespace {

ErrorModelParams flat_params(double rate) {
  ErrorModelParams p;
  p.error_rate_start = rate;
  p.error_rate_end = rate;
  p.qual_jitter = 0;
  return p;
}

TEST(PhredConversion, MapsKnownValues) {
  EXPECT_EQ(phred_from_probability(0.1, 2, 40), 10);
  EXPECT_EQ(phred_from_probability(0.01, 2, 40), 20);
  EXPECT_EQ(phred_from_probability(0.001, 2, 40), 30);
  EXPECT_EQ(phred_from_probability(0.0, 2, 40), 40);   // clamp high
  EXPECT_EQ(phred_from_probability(0.9, 2, 40), 2);    // clamp low
}

TEST(ErrorModel, ZeroRateIntroducesNoErrors) {
  const IlluminaErrorModel model(flat_params(0.0), 100);
  Rng rng(1);
  const std::string truth(100, 'A');
  Read out;
  EXPECT_EQ(model.corrupt(truth, 0, rng, out), 0);
  EXPECT_EQ(out.bases, truth);
  EXPECT_EQ(out.quals.size(), truth.size());
}

TEST(ErrorModel, ErrorRateMatchesExpectation) {
  const IlluminaErrorModel model(flat_params(0.02), 1000);
  Rng rng(2);
  const std::string truth(100, 'C');
  int total = 0;
  constexpr int kReads = 2000;
  for (int i = 0; i < kReads; ++i) {
    Read out;
    total += model.corrupt(truth, 0, rng, out);
  }
  const double observed = static_cast<double>(total) / (kReads * 100.0);
  EXPECT_NEAR(observed, 0.02, 0.004);
}

TEST(ErrorModel, ErrorsAreSubstitutionsOnly) {
  const IlluminaErrorModel model(flat_params(0.1), 10);
  Rng rng(3);
  const std::string truth = "ACGTACGTACGTACGTACGT";
  Read out;
  std::vector<int> positions;
  const int n = model.corrupt(truth, 0, rng, out, &positions);
  EXPECT_EQ(out.bases.size(), truth.size());
  int diffs = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (out.bases[i] != truth[i]) {
      ++diffs;
      EXPECT_TRUE(is_valid_base_char(out.bases[i]));
    }
  }
  EXPECT_EQ(diffs, n);
  EXPECT_EQ(positions.size(), static_cast<std::size_t>(n));
}

TEST(ErrorModel, RampRaisesErrorProbabilityTowardEnd) {
  ErrorModelParams p;
  p.error_rate_start = 0.001;
  p.error_rate_end = 0.03;
  const IlluminaErrorModel model(p, 10);
  EXPECT_LT(model.error_probability(0, 100, 0),
            model.error_probability(99, 100, 0));
  EXPECT_DOUBLE_EQ(model.error_probability(0, 100, 0), 0.001);
  EXPECT_DOUBLE_EQ(model.error_probability(99, 100, 0), 0.03);
}

TEST(ErrorModel, BurstRegionsAreLocalized) {
  ErrorModelParams p = flat_params(0.005);
  p.burst_fraction = 0.25;
  p.burst_regions = 4;
  p.burst_multiplier = 10.0;
  const IlluminaErrorModel model(p, 1000);
  // Period = 250, span = 62: indices 0..61 burst, 62..249 not, then repeat.
  int burst_count = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    if (model.in_burst(i)) ++burst_count;
  }
  EXPECT_NEAR(burst_count, 250, 10);
  EXPECT_TRUE(model.in_burst(0));
  EXPECT_FALSE(model.in_burst(200));
  EXPECT_TRUE(model.in_burst(250));
  // Burst multiplies the probability.
  EXPECT_GT(model.error_probability(0, 100, 0),
            5 * model.error_probability(0, 100, 200));
}

TEST(ErrorModel, QualityCorrelatesWithErrorProbability) {
  ErrorModelParams p;
  p.error_rate_start = 0.0001;
  p.error_rate_end = 0.05;
  p.qual_jitter = 0;
  const IlluminaErrorModel model(p, 10);
  Rng rng(4);
  const std::string truth(100, 'G');
  Read out;
  model.corrupt(truth, 0, rng, out);
  // Early bases (low error prob) must report higher quality than late ones.
  EXPECT_GT(static_cast<int>(out.quals.front()),
            static_cast<int>(out.quals.back()));
}

TEST(ErrorModel, ProbabilityCappedBelowRandom) {
  ErrorModelParams p = flat_params(0.5);
  p.burst_fraction = 0.5;
  p.burst_regions = 1;
  p.burst_multiplier = 100.0;
  const IlluminaErrorModel model(p, 10);
  EXPECT_LE(model.error_probability(50, 100, 0), 0.75);
}

}  // namespace
}  // namespace reptile::seq
