// Chaos tier: fault injection against the lock-free mailbox fast path.
//
// The ring is a delivery detail — FaultPlan drop/duplicate/truncate/stall
// semantics must be bit-for-bit unchanged whether messages land in the
// MPMC ring or the locked deque. Test one proves it directly with a
// deterministic A/B run (same seed, fast path on vs off); test two runs
// the full lossy pipeline on the ring path and holds it to the same
// conservative-identity contract as the locked path (DESIGN.md §4d).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "parallel/dist_pipeline.hpp"
#include "rtm/comm.hpp"
#include "rtm_test_seed.hpp"
#include "seq/dataset.hpp"

namespace reptile {
namespace {

// Prints the base seed + a one-line replay command on any failure.
const bool kSeedReporter = rtm_test::install_seed_reporter("test_chaos_ring");

using namespace std::chrono_literals;

struct ChaosRunResult {
  std::vector<std::uint64_t> received;
  rtm::ChaosStats chaos;
  rtm::MailboxStats receiver_mailbox;
};

// One seeded faulty run: rank 0 sends kMessages numbered messages on tag 5,
// then a sentinel on tag 6. Chaos delivery is FIFO per destination, so the
// sentinel arrives after every data message (and duplicates of them). The
// receiver records the data stream it observes, in order.
ChaosRunResult run_seeded_chaos(bool fast_path) {
  constexpr int kMessages = 300;
  rtm::RunOptions options;
  options.check.enabled = false;  // A/B runs park a duplicated sentinel
  options.mailbox_fast_path = fast_path;
  options.chaos.seed = rtm_test::derive(83);
  options.chaos.max_delay_us = 200;
  options.chaos.duplicate_rate = 0.35;
  options.chaos.stall_rate = 0.01;
  options.chaos.stall_us = 2000;
  ChaosRunResult result;
  auto world = rtm::run_world(
      {2, 1},
      [&result](rtm::Comm& comm) {
        if (comm.rank() == 0) {
          for (int m = 0; m < kMessages; ++m) {
            comm.send_value(1, 5, static_cast<std::uint64_t>(m));
          }
          comm.send_value(1, 6, std::uint64_t{0});
        } else {
          while (true) {
            const auto m = comm.recv_match_for(
                [](const rtm::Message&) { return true; }, 5s);
            ASSERT_TRUE(m);
            if (m->tag == 6) break;
            result.received.push_back(m->as_value<std::uint64_t>());
          }
        }
        comm.barrier();
      },
      options);
  // A duplicated sentinel may still be queued in the delivery thread; wait
  // for it so the stats snapshot is complete.
  for (int i = 0; i < 2000 && !world->chaos()->idle(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_TRUE(world->chaos()->idle());
  result.chaos = world->chaos()->stats();
  result.receiver_mailbox = world->mailbox(1).stats();
  return result;
}

TEST(ChaosRing, DeterministicFaultsIdenticalAcrossPaths) {
  const ChaosRunResult fast = run_seeded_chaos(/*fast_path=*/true);
  const ChaosRunResult slow = run_seeded_chaos(/*fast_path=*/false);

  // Both runs actually took the path they claim.
  EXPECT_GT(fast.receiver_mailbox.fast_pushes, 0u);
  EXPECT_EQ(slow.receiver_mailbox.fast_pushes, 0u);
  EXPECT_GT(slow.receiver_mailbox.slow_pushes, 0u);

  // The fault plan is seeded per message index, so both runs must observe
  // the exact same fault outcomes...
  EXPECT_EQ(fast.chaos.delivered, slow.chaos.delivered);
  EXPECT_EQ(fast.chaos.duplicated, slow.chaos.duplicated);
  EXPECT_EQ(fast.chaos.dropped, slow.chaos.dropped);
  EXPECT_EQ(fast.chaos.truncated, slow.chaos.truncated);
  EXPECT_EQ(fast.chaos.stalls_opened, slow.chaos.stalls_opened);
  EXPECT_EQ(fast.chaos.dropped, 0u);  // plan has no drops: nothing lost
  EXPECT_GT(fast.chaos.duplicated, 0u);  // and duplication did fire

  // ...and the receiver must see the identical delivery sequence —
  // duplicates included, in the same positions.
  ASSERT_EQ(fast.received.size(), slow.received.size());
  EXPECT_EQ(fast.received, slow.received);
}

TEST(ChaosRing, LossyRetryPipelineOnRingPath) {
  // The full pipeline through drops/duplicates/truncation/stalls with the
  // fast path armed and rtm-check off — the only configuration where
  // exact-match pops really run lock-free end to end. The contract is the
  // same conservative identity the audited run proves: faults may make the
  // corrector skip a substitution the sequential baseline applies, never
  // invent one it does not.
  seq::DatasetSpec spec{"ringlossy", 400, 60, 900};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.005;
  errors.error_rate_end = 0.012;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 37);
  core::CorrectorParams params;
  params.k = 10;
  params.tile_overlap = 4;
  params.chunk_size = 64;
  const auto ref = core::run_sequential(ds.reads, params);

  parallel::DistConfig config;
  config.params = params;
  config.ranks = 4;
  config.run_options.check.enabled = false;
  config.run_options.mailbox_fast_path = true;
  config.run_options.chaos.seed = rtm_test::derive(113);
  config.run_options.chaos.max_delay_us = 150;
  config.run_options.chaos.drop_rate = 0.08;
  config.run_options.chaos.duplicate_rate = 0.05;
  config.run_options.chaos.truncate_rate = 0.03;
  config.run_options.chaos.stall_rate = 0.002;
  config.run_options.chaos.stall_us = 2000;
  config.retry.timeout_ticks = 5;
  config.retry.max_retries = 12;

  const auto result = parallel::run_distributed(ds.reads, config);
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  std::uint64_t degraded_tiles = 0;
  std::uint64_t dropped = 0;
  for (const auto& r : result.ranks) {
    degraded_tiles += r.tiles_degraded;
    dropped += r.traffic.dropped_msgs;
  }
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].number, ref.corrected[i].number);
    if (result.corrected[i].bases == ref.corrected[i].bases) continue;
    ++divergent;
    const std::string& original = ds.reads[i].bases;
    const std::string& seq_fixed = ref.corrected[i].bases;
    const std::string& dist = result.corrected[i].bases;
    ASSERT_EQ(dist.size(), seq_fixed.size());
    for (std::size_t b = 0; b < dist.size(); ++b) {
      if (dist[b] != seq_fixed[b]) {
        EXPECT_EQ(dist[b], original[b])
            << "read " << ref.corrected[i].number << " base " << b
            << ": ring-path run invented a substitution the sequential "
               "baseline never applied";
      }
    }
  }
  if (degraded_tiles == 0) {
    EXPECT_EQ(divergent, 0u);
    EXPECT_EQ(result.total_substitutions(), ref.substitutions);
  }
  EXPECT_LE(result.total_substitutions(), ref.substitutions);
  EXPECT_GT(dropped, 0u);  // the lossy plan did fire on the ring path
}

}  // namespace
}  // namespace reptile
