// Batched remote lookups (batch_lookups extension): wire format, the
// service's vectored reply path, identity of the prefetch-cached correction
// with the sequential baseline, multi-worker reply routing, and the bounded
// caches' eviction behaviour.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>

#include "core/pipeline.hpp"
#include "core/spectrum.hpp"
#include "hash/hashing.hpp"
#include "parallel/dist_pipeline.hpp"
#include "parallel/wire.hpp"
#include "seq/dataset.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams test_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 64;
  return p;
}

const seq::SyntheticDataset& dataset() {
  static const seq::SyntheticDataset ds = [] {
    seq::DatasetSpec spec{"batch", 1200, 70, 2000};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.005;
    errors.error_rate_end = 0.012;
    return seq::SyntheticDataset::generate(spec, errors, 4242);
  }();
  return ds;
}

const core::SequentialResult& sequential_reference() {
  static const core::SequentialResult ref =
      core::run_sequential(dataset().reads, test_params());
  return ref;
}

void expect_identical_to_sequential(const DistResult& result) {
  const auto& ref = sequential_reference();
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].number, ref.corrected[i].number);
    ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases)
        << "read " << ref.corrected[i].number;
  }
  EXPECT_EQ(result.total_substitutions(), ref.substitutions);
}

// ---- wire format -----------------------------------------------------------

TEST(BatchWire, RoundTripsIdsAndHeader) {
  const std::vector<std::uint64_t> ids = {0, 1, 42, ~std::uint64_t{0},
                                          0xdeadbeefcafe1234ull};
  std::vector<std::uint8_t> buf;
  encode_batch_request(LookupKind::kTile, 1027,
                       std::span<const std::uint64_t>(ids.data(), ids.size()),
                       buf);
  EXPECT_EQ(buf.size(), sizeof(BatchLookupHeader) + ids.size() * 8);
  const BatchLookupRequest req = decode_batch_request(buf.data(), buf.size());
  EXPECT_EQ(req.kind, LookupKind::kTile);
  EXPECT_EQ(req.reply_to, 1027);
  EXPECT_EQ(req.ids, ids);
}

TEST(BatchWire, RoundTripsEmptyRequest) {
  std::vector<std::uint8_t> buf;
  encode_batch_request(LookupKind::kKmer, kTagBatchReplyBase, {}, buf);
  EXPECT_EQ(buf.size(), sizeof(BatchLookupHeader));
  const BatchLookupRequest req = decode_batch_request(buf.data(), buf.size());
  EXPECT_EQ(req.kind, LookupKind::kKmer);
  EXPECT_TRUE(req.ids.empty());
}

TEST(BatchWire, RejectsMalformedBuffers) {
  std::vector<std::uint8_t> buf;
  const std::vector<std::uint64_t> ids = {1, 2, 3};
  encode_batch_request(LookupKind::kKmer, kTagBatchReplyBase,
                       std::span<const std::uint64_t>(ids.data(), ids.size()),
                       buf);
  // Truncated header.
  EXPECT_THROW(decode_batch_request(buf.data(), sizeof(BatchLookupHeader) - 1),
               std::runtime_error);
  // Body shorter than the header's count promises.
  EXPECT_THROW(decode_batch_request(buf.data(), buf.size() - 8),
               std::runtime_error);
  // Trailing garbage beyond count * 8.
  buf.push_back(0);
  EXPECT_THROW(decode_batch_request(buf.data(), buf.size()),
               std::runtime_error);
  buf.pop_back();
  // Unknown kind.
  buf[0] = 7;
  EXPECT_THROW(decode_batch_request(buf.data(), buf.size()),
               std::runtime_error);
}

// ---- service protocol ------------------------------------------------------

TEST(BatchProtocol, ServiceAnswersVectoredRequest) {
  seq::DatasetSpec spec{"svc", 100, 40, 400};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 123);
  core::CorrectorParams p;
  p.k = 8;
  p.tile_overlap = 2;
  p.kmer_threshold = 1;
  p.tile_threshold = 1;

  ServiceStats stats;
  rtm::run_world({2, 1}, [&](rtm::Comm& comm) {
    DistSpectrum spectrum(p, Heuristics{}, comm);
    if (comm.rank() == 0) {
      for (const auto& r : ds.reads) spectrum.add_read(r.bases);
    }
    spectrum.exchange_to_owners();

    // Rank 0 tells the driver a k-mer it owns, and its count.
    std::uint64_t probe_id = 0;
    std::uint32_t probe_count = 0;
    if (comm.rank() == 0) {
      spectrum.hash_kmers().for_each([&](std::uint64_t id, std::uint32_t c) {
        if (probe_count == 0) {
          probe_id = id;
          probe_count = c;
        }
      });
      comm.send_value(1, 99, probe_id);
      comm.send_value(1, 98, static_cast<std::uint64_t>(probe_count));
    } else {
      probe_id = comm.recv(0, 99).as_value<std::uint64_t>();
      probe_count = static_cast<std::uint32_t>(
          comm.recv(0, 98).as_value<std::uint64_t>());
    }

    comm.reset_done();
    if (comm.rank() == 0) {
      LookupService service(comm, spectrum);
      std::thread server([&service] { service.serve(); });
      comm.signal_done();
      server.join();
      stats = service.stats();
    } else {
      const std::vector<std::uint64_t> ids = {probe_id, ~std::uint64_t{0}};
      std::vector<std::uint8_t> buf;
      const int reply_to = batch_reply_tag(LookupKind::kKmer, 0);
      encode_batch_request(
          LookupKind::kKmer, reply_to,
          std::span<const std::uint64_t>(ids.data(), ids.size()), buf);
      comm.send<std::uint8_t>(
          0, kTagBatchRequest,
          std::span<const std::uint8_t>(buf.data(), buf.size()));
      const auto reply = decode_batch_reply(comm.recv(0, reply_to).payload);
      EXPECT_EQ(reply.seq, 0u);  // unsequenced request echoes seq 0
      ASSERT_EQ(reply.counts.size(), 2u);
      EXPECT_EQ(reply.counts[0], static_cast<std::int32_t>(probe_count));
      EXPECT_EQ(reply.counts[1], -1);  // absent IDs reply -1, index-aligned
      comm.signal_done();
    }
    comm.barrier();
  });
  EXPECT_EQ(stats.batch_requests, 1u);
  EXPECT_EQ(stats.batch_ids_served, 2u);
  EXPECT_EQ(stats.requests_served, 1u);
  EXPECT_EQ(stats.absent_replies, 1u);
}

// ---- identity with the sequential baseline ---------------------------------

struct BatchedCase {
  const char* name;
  int ranks;
  Heuristics heur;
};

class BatchedIdentity : public ::testing::TestWithParam<BatchedCase> {};

TEST_P(BatchedIdentity, MatchesSequential) {
  DistConfig config;
  config.params = test_params();
  config.ranks = GetParam().ranks;
  config.ranks_per_node = 2;
  config.heuristics = GetParam().heur;
  config.heuristics.batch_lookups = true;
  const auto result = run_distributed(dataset().reads, config);
  expect_identical_to_sequential(result);
}

Heuristics with_flags(bool universal, bool read_kmers, bool add_remote,
                      int group = 1) {
  Heuristics h;
  h.universal = universal;
  h.read_kmers = read_kmers;
  h.add_remote = add_remote;
  h.partial_replication_group = group;
  return h;
}

INSTANTIATE_TEST_SUITE_P(
    Configs, BatchedIdentity,
    ::testing::Values(
        BatchedCase{"r2_base", 2, with_flags(false, false, false)},
        BatchedCase{"r4_base", 4, with_flags(false, false, false)},
        BatchedCase{"r8_base", 8, with_flags(false, false, false)},
        BatchedCase{"r4_read_kmers", 4, with_flags(false, true, false)},
        BatchedCase{"r4_universal", 4, with_flags(true, false, false)},
        BatchedCase{"r4_add_remote", 4, with_flags(false, true, true)},
        BatchedCase{"r4_partial_repl", 4, with_flags(false, false, false, 2)}),
    [](const ::testing::TestParamInfo<BatchedCase>& info) {
      return info.param.name;
    });

TEST(BatchedLookups, TinyPrefetchCapacityStaysIdentical) {
  // When the cap truncates the prefetch set, the overflow must simply fall
  // back to scalar lookups — never change the output.
  DistConfig config;
  config.params = test_params();
  config.params.prefetch_capacity = 8;
  config.ranks = 4;
  config.heuristics.batch_lookups = true;
  const auto result = run_distributed(dataset().reads, config);
  expect_identical_to_sequential(result);
}

TEST(BatchedLookups, ChaosDeliveryStaysIdentical) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  config.heuristics.batch_lookups = true;
  config.run_options.chaos.seed = 7;
  const auto result = run_distributed(dataset().reads, config);
  expect_identical_to_sequential(result);
}

// ---- multi-worker routing --------------------------------------------------

TEST(BatchedLookups, MultiWorkerRepliesRouteToRightSlot) {
  DistConfig config;
  config.params = test_params();
  config.params.chunk_size = 32;  // plenty of worker interleaving
  config.ranks = 4;
  config.worker_threads = 4;
  config.heuristics.batch_lookups = true;
  const auto result = run_distributed(dataset().reads, config);
  expect_identical_to_sequential(result);
  std::uint64_t batch_requests = 0;
  for (const auto& r : result.ranks) {
    batch_requests += r.remote.batch_requests;
  }
  EXPECT_GT(batch_requests, 0u);
}

TEST(BatchedLookups, AddRemoteWithWorkersNeedsBatchLookups) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 2;
  config.worker_threads = 2;
  config.heuristics.read_kmers = true;
  config.heuristics.add_remote = true;
  // Without batch_lookups the shared reads-table cache is not thread-safe.
  EXPECT_THROW(run_distributed(dataset().reads, config),
               std::invalid_argument);
  // With it, replies go to worker-private caches and the combination runs.
  config.heuristics.batch_lookups = true;
  const auto result = run_distributed(dataset().reads, config);
  expect_identical_to_sequential(result);
}

// ---- stats -----------------------------------------------------------------

TEST(BatchedLookups, PrefetchAbsorbsScalarLookups) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  const auto scalar = run_distributed(dataset().reads, config);
  config.heuristics.batch_lookups = true;
  const auto batched = run_distributed(dataset().reads, config);

  std::uint64_t scalar_remote = 0;
  for (const auto& r : scalar.ranks) {
    scalar_remote += r.remote.remote_lookups();
    EXPECT_EQ(r.remote.batch_requests, 0u);
    EXPECT_EQ(r.remote.prefetch_hits, 0u);
  }
  std::uint64_t batched_remote = 0, requests = 0, ids = 0, ids_raw = 0,
                 hits = 0, served = 0;
  for (const auto& r : batched.ranks) {
    batched_remote += r.remote.remote_lookups();
    requests += r.remote.batch_requests;
    ids += r.remote.batch_ids();
    ids_raw += r.remote.batch_ids_raw();
    hits += r.remote.prefetch_hits;
    served += r.service.batch_requests;
    EXPECT_GE(r.remote.dedup_ratio(), 0.0);
    EXPECT_LE(r.remote.prefetch_hit_rate(), 1.0);
  }
  // The read-spectrum IDs move into vectored requests; scalar round trips
  // remain only for mid-correction candidate misses.
  EXPECT_GT(requests, 0u);
  EXPECT_GT(served, 0u);
  EXPECT_GT(hits, 0u);
  EXPECT_LT(batched_remote, scalar_remote);
  // A chunk repeats k-mers across overlapping reads: dedup must bite.
  EXPECT_LT(ids, ids_raw);
  // Vectored requests are far fewer than the IDs they carry.
  EXPECT_LT(requests, ids / 4);
}

TEST(BatchedLookups, DedupStatsSplitPerKind) {
  // Chunk dedup runs per kind (one seen-set per table): an ID numerically
  // present in both the k-mer and the tile request vectors of one chunk is
  // two distinct spectrum entries, so it must be counted — and sent — in
  // both tables. A merged counter would let a cross-kind dedup bug hide;
  // the per-kind split pins it.
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  config.heuristics.batch_lookups = true;
  const auto result = run_distributed(dataset().reads, config);
  std::uint64_t kmer_ids = 0, tile_ids = 0, kmer_raw = 0, tile_raw = 0;
  for (const auto& r : result.ranks) {
    kmer_ids += r.remote.batch_kmer_ids;
    tile_ids += r.remote.batch_tile_ids;
    kmer_raw += r.remote.batch_kmer_ids_raw;
    tile_raw += r.remote.batch_tile_ids_raw;
    // The summing accessors are definitionally the per-kind totals.
    EXPECT_EQ(r.remote.batch_ids(),
              r.remote.batch_kmer_ids + r.remote.batch_tile_ids);
    EXPECT_EQ(r.remote.batch_ids_raw(),
              r.remote.batch_kmer_ids_raw + r.remote.batch_tile_ids_raw);
    // Dedup can only shrink a kind's ID stream, never move IDs across
    // kinds: each kind's sent count is bounded by its own raw count.
    EXPECT_LE(r.remote.batch_kmer_ids, r.remote.batch_kmer_ids_raw);
    EXPECT_LE(r.remote.batch_tile_ids, r.remote.batch_tile_ids_raw);
  }
  // Both tables produce remote traffic on this dataset.
  EXPECT_GT(kmer_ids, 0u);
  EXPECT_GT(tile_ids, 0u);
  EXPECT_LE(kmer_ids, kmer_raw);
  EXPECT_LE(tile_ids, tile_raw);
}

TEST(BatchedLookups, CrossKindIdCountedInBothTables) {
  // Direct unit pin of the per-kind seen-sets. With k=8 and tile_overlap=2
  // a tile spans 14 bases, so a read of the form AAAAAA+S packs its first
  // tile to the SAME numeric value as the k-mer S (the six A's are the
  // zero high bits). Feeding such reads through prefetch_chunk, the shared
  // numeric ID must be counted — and sent — once PER KIND; a dedup
  // seen-set shared across kinds would silently drop one of them. The
  // per-kind sent/raw counters are compared against expectations computed
  // independently with the same extractor and owner hash.
  core::CorrectorParams p;
  p.k = 8;
  p.tile_overlap = 2;
  p.kmer_threshold = 1;
  p.tile_threshold = 1;
  p.canonical = false;  // keep the packed-ID construction literal

  // Each read contributes one tile whose ID equals pack(S) — the same
  // value as the k-mer S at offset 6. Duplicated reads exercise dedup.
  const char* kSuffixes[] = {"CGTCAGGT", "GATTACAG", "TTGACCAA", "CCATGGTC",
                             "GTTCAAGC", "ACCTGTTG", "TGGCATCA", "CAGTTGCA"};
  seq::ReadBatch batch;
  for (const char* s : kSuffixes) {
    seq::Read r;
    r.number = static_cast<seq::seq_num_t>(batch.size() + 1);
    r.bases = std::string("AAAAAA") + s;
    r.quals.assign(r.bases.size(), 40);
    batch.push_back(r);
    batch.push_back(r);  // duplicate: raw counts double, sent counts don't
  }

  rtm::run_world({2, 1}, [&](rtm::Comm& comm) {
    Heuristics h;
    h.batch_lookups = true;
    DistSpectrum spectrum(p, h, comm);
    spectrum.exchange_to_owners();
    comm.reset_done();
    if (comm.rank() == 0) {
      LookupService service(comm, spectrum);
      std::thread server([&service] { service.serve(); });
      comm.signal_done();
      server.join();
    } else {
      // Expected per-kind remote streams, computed independently: every
      // occurrence owned by rank 0 counts raw, every distinct ID once.
      core::SpectrumExtractor extractor(p);
      std::vector<seq::kmer_id_t> kmers;
      std::vector<seq::tile_id_t> tiles;
      for (const auto& r : batch) extractor.extract(r.bases, kmers, tiles);
      std::set<std::uint64_t> kmer_set, tile_set;
      std::uint64_t kmer_raw = 0, tile_raw = 0;
      for (const auto id : kmers) {
        if (hash::owner_of(id, comm.size()) == 0) {
          ++kmer_raw;
          kmer_set.insert(id);
        }
      }
      for (const auto id : tiles) {
        if (hash::owner_of(id, comm.size()) == 0) {
          ++tile_raw;
          tile_set.insert(id);
        }
      }
      // The construction above guarantees numeric overlap between the two
      // kinds' remote streams (any suffix whose packed ID hashes to rank 0
      // appears in both sets) — the exact case a shared seen-set corrupts.
      std::size_t overlap = 0;
      for (const auto id : tile_set) overlap += kmer_set.count(id);
      ASSERT_GT(overlap, 0u);

      RemoteSpectrumView view(comm, spectrum);
      view.prefetch_chunk(batch);
      const auto& stats = view.remote_stats();
      EXPECT_EQ(stats.batch_kmer_ids, kmer_set.size());
      EXPECT_EQ(stats.batch_tile_ids, tile_set.size());
      EXPECT_EQ(stats.batch_kmer_ids_raw, kmer_raw);
      EXPECT_EQ(stats.batch_tile_ids_raw, tile_raw);
      // One vectored request per kind with remote IDs, all owned by rank 0.
      EXPECT_EQ(stats.batch_requests, (kmer_set.empty() ? 0u : 1u) +
                                          (tile_set.empty() ? 0u : 1u));
      comm.signal_done();
    }
    comm.barrier();
  });
}

TEST(BatchedLookups, FewerMessagesAndLargerPayloadsThanScalar) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  const auto scalar = run_distributed(dataset().reads, config);
  config.heuristics.batch_lookups = true;
  const auto batched = run_distributed(dataset().reads, config);
  std::uint64_t scalar_msgs = 0, batched_msgs = 0;
  std::uint64_t scalar_largest = 0, batched_largest = 0;
  for (const auto& r : scalar.ranks) {
    scalar_msgs += r.traffic.sent_msgs();
    scalar_largest = std::max(scalar_largest, r.traffic.largest_msg_bytes);
  }
  for (const auto& r : batched.ranks) {
    batched_msgs += r.traffic.sent_msgs();
    batched_largest = std::max(batched_largest, r.traffic.largest_msg_bytes);
  }
  EXPECT_LT(batched_msgs, scalar_msgs);
  EXPECT_GT(batched_largest, scalar_largest);
}

// ---- bounded caches --------------------------------------------------------

TEST(RemoteCache, EvictsOldestBeyondCapacity) {
  core::CorrectorParams p = test_params();
  p.remote_cache_capacity = 4;
  rtm::run_world({1, 1}, [&](rtm::Comm& comm) {
    Heuristics h;
    h.read_kmers = true;
    h.add_remote = true;
    DistSpectrum spectrum(p, h, comm);
    for (std::uint64_t id = 0; id < 10; ++id) {
      spectrum.cache_remote_kmer(id, static_cast<std::uint32_t>(id + 1));
    }
    // FIFO: only the 4 newest replies survive.
    for (std::uint64_t id = 0; id < 6; ++id) {
      EXPECT_FALSE(spectrum.reads_kmer(id).has_value()) << "id " << id;
    }
    for (std::uint64_t id = 6; id < 10; ++id) {
      const auto c = spectrum.reads_kmer(id);
      ASSERT_TRUE(c.has_value()) << "id " << id;
      EXPECT_EQ(*c, static_cast<std::uint32_t>(id + 1));
    }
    // Re-caching an evicted ID readmits it (and evicts the then-oldest).
    spectrum.cache_remote_kmer(0, 1);
    EXPECT_TRUE(spectrum.reads_kmer(0).has_value());
    EXPECT_FALSE(spectrum.reads_kmer(6).has_value());
  });
}

TEST(RemoteCache, CapacityOneIsLegalAndIdentical) {
  DistConfig config;
  config.params = test_params();
  config.params.remote_cache_capacity = 1;
  config.ranks = 4;
  config.heuristics.read_kmers = true;
  config.heuristics.add_remote = true;
  const auto result = run_distributed(dataset().reads, config);
  expect_identical_to_sequential(result);
}

TEST(RemoteCache, ZeroCapacitiesRejected) {
  core::CorrectorParams p = test_params();
  p.prefetch_capacity = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params();
  p.remote_cache_capacity = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace reptile::parallel
