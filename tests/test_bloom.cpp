// Unit tests: Bloom filter.
#include "hash/bloom_filter.hpp"

#include <gtest/gtest.h>

#include "seq/rng.hpp"

namespace reptile::hash {
namespace {

TEST(BloomFilter, NoFalseNegatives) {
  BloomFilter bf(1000, 0.01);
  seq::Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(rng.next());
  for (auto k : keys) bf.insert(k);
  for (auto k : keys) EXPECT_TRUE(bf.possibly_contains(k));
}

TEST(BloomFilter, FalsePositiveRateNearTarget) {
  BloomFilter bf(10000, 0.01);
  seq::Rng rng(2);
  for (int i = 0; i < 10000; ++i) bf.insert(rng.next());
  int fp = 0;
  constexpr int kProbes = 50000;
  seq::Rng probe_rng(3);  // fresh stream: effectively disjoint keys
  for (int i = 0; i < kProbes; ++i) {
    if (bf.possibly_contains(probe_rng.next())) ++fp;
  }
  const double rate = static_cast<double>(fp) / kProbes;
  EXPECT_LT(rate, 0.03);
}

TEST(BloomFilter, InsertReportsPriorPresence) {
  BloomFilter bf(1000, 0.01);
  EXPECT_FALSE(bf.insert(42));  // first time: not all bits set
  EXPECT_TRUE(bf.insert(42));   // second time: definitely all set
}

TEST(BloomFilter, SingletonSuppressionWorkflow) {
  // The paper's suggested memory-efficient pruning: only keys seen twice
  // get an exact-table entry.
  BloomFilter bf(2000, 0.01);
  seq::Rng rng(4);
  std::vector<std::uint64_t> repeated, singles;
  for (int i = 0; i < 500; ++i) repeated.push_back(rng.next());
  for (int i = 0; i < 1000; ++i) singles.push_back(rng.next());

  int admitted = 0;
  auto offer = [&](std::uint64_t k) {
    if (bf.insert(k)) ++admitted;
  };
  for (auto k : singles) offer(k);
  for (auto k : repeated) offer(k);
  for (auto k : repeated) offer(k);  // second sighting admits them
  EXPECT_GE(admitted, 500);
  EXPECT_LT(admitted, 500 + 60);  // few false admissions from singles
}

TEST(BloomFilter, FillRatioGrowsWithInserts) {
  BloomFilter bf(1000, 0.01);
  EXPECT_DOUBLE_EQ(bf.fill_ratio(), 0.0);
  seq::Rng rng(5);
  for (int i = 0; i < 500; ++i) bf.insert(rng.next());
  const double half = bf.fill_ratio();
  for (int i = 0; i < 500; ++i) bf.insert(rng.next());
  EXPECT_GT(bf.fill_ratio(), half);
  EXPECT_LT(bf.fill_ratio(), 0.6);  // sized for ~50% at capacity
}

TEST(BloomFilter, SizingMonotoneInExpectedKeys) {
  BloomFilter small(100, 0.01);
  BloomFilter large(100000, 0.01);
  EXPECT_LT(small.memory_bytes(), large.memory_bytes());
  EXPECT_GE(small.hash_count(), 1);
}

TEST(BloomFilter, ZeroExpectedKeysStillUsable) {
  BloomFilter bf(0, 0.01);
  EXPECT_FALSE(bf.possibly_contains(1));
  bf.insert(1);
  EXPECT_TRUE(bf.possibly_contains(1));
}

}  // namespace
}  // namespace reptile::hash
