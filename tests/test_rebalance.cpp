// Integration tests: read wire format and static load-balancing
// redistribution.
#include "parallel/rebalance.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "hash/hashing.hpp"
#include "parallel/wire.hpp"
#include "seq/dataset.hpp"
#include "stats/summary.hpp"

namespace reptile::parallel {
namespace {

TEST(Wire, EncodeDecodeRoundTrip) {
  std::vector<seq::Read> reads;
  for (int i = 0; i < 10; ++i) {
    seq::Read r;
    r.number = static_cast<seq::seq_num_t>(i + 1);
    r.bases = std::string(static_cast<std::size_t>(10 + i), 'A' + (i % 2 ? 0 : 2 /*G*/) );
    for (auto& c : r.bases) c = (i % 2) ? 'C' : 'G';
    r.quals.assign(r.bases.size(), static_cast<seq::qual_t>(i * 3));
    reads.push_back(std::move(r));
  }
  std::vector<std::uint8_t> buffer;
  for (const auto& r : reads) encode_read(r, buffer);
  std::vector<seq::Read> back;
  decode_reads(buffer, back);
  EXPECT_EQ(back, reads);
}

TEST(Wire, EmptyBufferDecodesToNothing) {
  std::vector<std::uint8_t> buffer;
  std::vector<seq::Read> out;
  decode_reads(buffer, out);
  EXPECT_TRUE(out.empty());
}

TEST(Wire, TruncatedBufferThrows) {
  seq::Read r{1, "ACGT", {30, 30, 30, 30}};
  std::vector<std::uint8_t> buffer;
  encode_read(r, buffer);
  buffer.pop_back();
  std::vector<seq::Read> out;
  EXPECT_THROW(decode_reads(buffer, out), std::runtime_error);
}

TEST(Wire, MismatchedQualsThrow) {
  seq::Read r{1, "ACGT", {30, 30}};
  std::vector<std::uint8_t> buffer;
  EXPECT_THROW(encode_read(r, buffer), std::invalid_argument);
}

TEST(Rebalance, ConservesReadsAndAssignsByHash) {
  seq::DatasetSpec spec{"t", 400, 40, 1200};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 8);
  constexpr int kRanks = 4;
  std::vector<std::vector<seq::Read>> per_rank(kRanks);
  std::mutex m;
  rtm::run_world({kRanks, 1}, [&](rtm::Comm& comm) {
    const std::size_t begin =
        ds.reads.size() * static_cast<std::size_t>(comm.rank()) / kRanks;
    const std::size_t end =
        ds.reads.size() * static_cast<std::size_t>(comm.rank() + 1) / kRanks;
    std::vector<seq::Read> mine(ds.reads.begin() + static_cast<long>(begin),
                                ds.reads.begin() + static_cast<long>(end));
    auto balanced = rebalance_reads(comm, mine);
    std::lock_guard lock(m);
    per_rank[static_cast<std::size_t>(comm.rank())] = std::move(balanced);
  });

  std::vector<seq::Read> all;
  for (int r = 0; r < kRanks; ++r) {
    for (const auto& read : per_rank[static_cast<std::size_t>(r)]) {
      // Every read landed on the rank its sequence hash designates.
      EXPECT_EQ(hash::owner_of_sequence(read.bases, kRanks), r);
      all.push_back(read);
    }
  }
  ASSERT_EQ(all.size(), ds.reads.size());
  std::sort(all.begin(), all.end(),
            [](const seq::Read& a, const seq::Read& b) {
              return a.number < b.number;
            });
  EXPECT_EQ(all, ds.reads);
}

TEST(Rebalance, EvensOutBurstyWork) {
  // Reads with errors are clustered in file regions; contiguous partitions
  // then give some ranks many more erroneous reads. After rebalancing, the
  // spread of erroneous reads per rank must shrink dramatically.
  seq::DatasetSpec spec{"t", 2000, 60, 10000};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.001;
  errors.error_rate_end = 0.001;
  errors.burst_fraction = 0.25;
  errors.burst_regions = 2;
  errors.burst_multiplier = 30.0;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 9);

  auto erroneous = [&](const seq::Read& r) {
    const std::size_t idx = static_cast<std::size_t>(r.number - 1);
    return r.bases != ds.truth[idx];
  };

  constexpr int kRanks = 8;
  std::vector<std::uint64_t> before(kRanks, 0), after(kRanks, 0);
  std::mutex m;
  rtm::run_world({kRanks, 1}, [&](rtm::Comm& comm) {
    const std::size_t begin =
        ds.reads.size() * static_cast<std::size_t>(comm.rank()) / kRanks;
    const std::size_t end =
        ds.reads.size() * static_cast<std::size_t>(comm.rank() + 1) / kRanks;
    std::vector<seq::Read> mine(ds.reads.begin() + static_cast<long>(begin),
                                ds.reads.begin() + static_cast<long>(end));
    std::uint64_t bad_before = 0;
    for (const auto& r : mine) {
      if (erroneous(r)) ++bad_before;
    }
    const auto balanced = rebalance_reads(comm, mine);
    std::uint64_t bad_after = 0;
    for (const auto& r : balanced) {
      if (erroneous(r)) ++bad_after;
    }
    std::lock_guard lock(m);
    before[static_cast<std::size_t>(comm.rank())] = bad_before;
    after[static_cast<std::size_t>(comm.rank())] = bad_after;
  });

  const auto s_before =
      stats::summarize(std::span<const std::uint64_t>(before));
  const auto s_after = stats::summarize(std::span<const std::uint64_t>(after));
  // Bursty layout makes some ranks nearly error-free and others saturated;
  // hashing must collapse the spread to statistical noise.
  EXPECT_GT(s_before.relative_spread(), 1.0);
  EXPECT_LT(s_after.relative_spread(), 0.6);
  EXPECT_LT(s_after.relative_spread(), s_before.relative_spread() / 2);
}

TEST(Rebalance, DeterministicResult) {
  seq::DatasetSpec spec{"t", 300, 40, 1000};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 10);
  auto run_once = [&] {
    constexpr int kRanks = 4;
    std::vector<std::vector<seq::Read>> per_rank(kRanks);
    std::mutex m;
    rtm::run_world({kRanks, 1}, [&](rtm::Comm& comm) {
      const std::size_t begin =
          ds.reads.size() * static_cast<std::size_t>(comm.rank()) / kRanks;
      const std::size_t end =
          ds.reads.size() * static_cast<std::size_t>(comm.rank() + 1) / kRanks;
      std::vector<seq::Read> mine(ds.reads.begin() + static_cast<long>(begin),
                                  ds.reads.begin() + static_cast<long>(end));
      auto balanced = rebalance_reads(comm, mine);
      std::lock_guard lock(m);
      per_rank[static_cast<std::size_t>(comm.rank())] = std::move(balanced);
    });
    return per_rank;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace reptile::parallel
