// Unit tests: the pipeline stage graph, stage by stage, over a RankContext.
// Each stage is exercised in isolation against the local spectrum model
// (stages communicate only through the context, so this is the sequential
// instance of the same code paths the distributed drivers run), then the
// whole sequential graph is pinned against the golden checksums from
// test_golden — the refactor-proof that the stage decomposition is
// behaviour-preserving.
#include "pipeline/stages.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "hash/hashing.hpp"
#include "pipeline/context.hpp"
#include "pipeline/spectrum_model.hpp"
#include "seq/dataset.hpp"

namespace reptile::pipeline {
namespace {

/// Order-sensitive FNV over all read bases (same pin as test_golden).
std::uint64_t checksum_reads(const std::vector<seq::Read>& reads) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const auto& r : reads) {
    h ^= hash::fnv1a(r.bases);
    h *= 0x100000001B3ull;
  }
  return h;
}

core::CorrectorParams golden_params() {
  core::CorrectorParams p;
  p.k = 12;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 128;
  return p;
}

const seq::SyntheticDataset& golden_dataset() {
  static const seq::SyntheticDataset ds = [] {
    seq::DatasetSpec spec{"golden", 2000, 80, 3000};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.004;
    errors.error_rate_end = 0.012;
    errors.burst_fraction = 0.1;
    errors.burst_regions = 2;
    errors.burst_multiplier = 5.0;
    return seq::SyntheticDataset::generate(spec, errors, 0xC0FFEE);
  }();
  return ds;
}

TEST(LoadBalanceStage, SequentialInstanceOnlyRecordsTheWorkingSet) {
  const auto& ds = golden_dataset();
  const auto params = golden_params();
  seq::VectorReadSource source(ds.reads);

  RankContext ctx;
  ctx.bind(params);
  ctx.job.source = &source;
  LoadBalanceStage{}.run(ctx);

  // No communicator: nothing moves, nothing is materialized.
  EXPECT_EQ(ctx.job.source, &source);
  EXPECT_EQ(ctx.job.balanced, nullptr);
  EXPECT_EQ(ctx.job.report.reads_processed, ds.reads.size());
}

TEST(BuildSpectrumStage, BuildsPrunesAndRecordsFootprint) {
  const auto& ds = golden_dataset();
  const auto params = golden_params();
  seq::VectorReadSource source(ds.reads);
  LocalSpectrumModel model(params);

  RankContext ctx;
  ctx.bind(params);
  ctx.rank.model = &model;
  ctx.job.source = &source;
  BuildSpectrumStage{}.run(ctx);

  const auto& fp = ctx.job.report.footprint_after_construction;
  EXPECT_GT(fp.hash_kmer_entries, 0u);
  EXPECT_GT(fp.hash_tile_entries, 0u);
  EXPECT_GT(fp.bytes, 0u);
  // The per-chunk peak is sampled before the prune, so it bounds the
  // post-construction footprint from above.
  EXPECT_GE(ctx.job.report.construction_peak_bytes, fp.bytes);
  // 2000 reads in chunks of 128 -> 16 non-empty chunks.
  EXPECT_EQ(ctx.job.report.batches, 16u);
  EXPECT_GE(ctx.job.report.construct_seconds, 0.0);
}

TEST(CorrectStage, CorrectsEveryReadOverTheBuiltSpectrum) {
  const auto& ds = golden_dataset();
  const auto params = golden_params();
  seq::VectorReadSource source(ds.reads);
  LocalSpectrumModel model(params);

  RankContext ctx;
  ctx.bind(params);
  ctx.rank.model = &model;
  ctx.job.source = &source;
  BuildSpectrumStage{}.run(ctx);
  CorrectStage{}.run(ctx);

  ASSERT_EQ(ctx.job.corrected.size(), ds.reads.size());
  EXPECT_GT(ctx.job.report.substitutions, 0u);
  EXPECT_GT(ctx.job.report.reads_changed, 0u);
  EXPECT_GE(ctx.job.report.correct_seconds, 0.0);
  // One worker, local model: every lookup is a hash-table hit or miss, and
  // correction-phase lookups are what the handle harvests.
  EXPECT_GT(ctx.job.report.lookups.kmer_lookups, 0u);
  EXPECT_GT(ctx.job.report.lookups.tile_lookups, 0u);
  EXPECT_GT(ctx.job.report.footprint_after_correction.bytes, 0u);
}

TEST(StageGraph, RecordsOneTimedSamplePerStage) {
  const auto& ds = golden_dataset();
  const auto params = golden_params();
  seq::VectorReadSource source(ds.reads);
  LocalSpectrumModel model(params);

  RankContext ctx;
  ctx.bind(params);
  ctx.rank.model = &model;
  ctx.job.source = &source;
  auto graph = paper_graph();
  EXPECT_EQ(graph.size(), 3u);
  graph.run(ctx);

  ASSERT_EQ(ctx.job.report.stages.size(), 3u);
  EXPECT_EQ(ctx.job.report.stages[0].stage, "load_balance");
  EXPECT_EQ(ctx.job.report.stages[1].stage, "build_spectrum");
  EXPECT_EQ(ctx.job.report.stages[2].stage, "correct");
  for (const auto& sample : ctx.job.report.stages) {
    EXPECT_GE(sample.seconds, 0.0);
  }
  // Footprint at stage exit: zero before construction, live afterwards.
  EXPECT_GT(ctx.job.report.stages[1].spectrum_bytes, 0u);
  EXPECT_GT(ctx.job.report.stages[2].spectrum_bytes, 0u);
}

TEST(MergeStage, RestoresFileOrderAcrossRanks) {
  auto read = [](seq::seq_num_t n) {
    seq::Read r;
    r.number = n;
    r.bases = "ACGT";
    return r;
  };
  // Two "ranks" whose working sets interleave (what load balancing and
  // dynamic grants both produce).
  std::vector<std::vector<seq::Read>> per_rank;
  per_rank.push_back({read(5), read(1), read(3)});
  per_rank.push_back({read(4), read(2)});

  const auto merged = MergeStage::run(std::move(per_rank));
  ASSERT_EQ(merged.size(), 5u);
  for (std::size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].number, static_cast<seq::seq_num_t>(i + 1));
  }
}

// The refactor pin: the sequential stage graph, driven stage by stage from
// a test-owned RankContext, reproduces the exact pre-refactor golden output
// (same checksum and substitution count test_golden pins for
// core::run_sequential).
TEST(StageGraph, SequentialRunMatchesPinnedGoldenChecksum) {
  const auto& ds = golden_dataset();
  const auto params = golden_params();
  seq::VectorReadSource source(ds.reads);
  LocalSpectrumModel model(params);

  RankContext ctx;
  ctx.bind(params);
  ctx.rank.model = &model;
  ctx.job.source = &source;
  paper_graph().run(ctx);

  EXPECT_EQ(checksum_reads(ctx.job.corrected), 0x8c14c08e3007d618ull)
      << "actual: 0x" << std::hex << checksum_reads(ctx.job.corrected);
  EXPECT_EQ(ctx.job.report.substitutions, 1226u);

  // And the driver wrapper returns the same thing the graph produced.
  const auto result = core::run_sequential(ds.reads, params);
  EXPECT_EQ(checksum_reads(result.corrected), checksum_reads(ctx.job.corrected));
  EXPECT_EQ(result.substitutions, ctx.job.report.substitutions);
}

}  // namespace
}  // namespace reptile::pipeline
