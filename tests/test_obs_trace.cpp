// reptile-obs: trace-output format pins, metrics registry, flight recorder.
//
// The contract under test:
//   * shards are strict JSON with the Chrome trace-event required keys per
//     phase ('X' has ts+dur, 'i' has scope, 's'/'f' pair by id, 'M' is
//     metadata) — tools/trace_merge --check and Perfetto both depend on it;
//   * a 2-rank distributed run emits stage spans for the paper's steps and
//     at least one cross-rank lookup flow (an 's' on the requester whose id
//     reappears as 'f' on the owning rank);
//   * zero-overhead pin: with trace_enabled=false and metrics off, a run
//     leaves no obs state behind — no full-trace events beyond the flight
//     recorder's rings, no registry instruments, no extra report columns —
//     so a production run is bit-identical to the seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/dist_pipeline.hpp"
#include "parallel/report.hpp"
#include "seq/dataset.hpp"

namespace reptile {
namespace {

using obs::JsonValue;
using obs::Registry;
using obs::Tracer;

seq::SyntheticDataset small_dataset() {
  seq::DatasetSpec spec{"obs", 600, 60, 2500};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.004;
  errors.error_rate_end = 0.01;
  return seq::SyntheticDataset::generate(spec, errors, 4242);
}

parallel::DistConfig traced_config(int ranks) {
  parallel::DistConfig config;
  config.params.k = 8;
  config.params.chunk_size = 64;
  config.ranks = ranks;
  config.ranks_per_node = ranks;
  config.heuristics.universal = true;
  config.trace.enabled = true;
  config.trace.metrics = true;
  return config;
}

/// Restore the default (disabled) obs state so one test's configuration
/// never leaks into another (the tracer/registry are process-wide).
struct ObsReset {
  ~ObsReset() {
    Tracer::instance().configure(obs::TraceConfig{});
    Registry::global().configure(false);
    obs::ResourceLedger::global().configure(false);
  }
};

const JsonValue& events_of(const JsonValue& doc) {
  const JsonValue* events = doc.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_TRUE(events->is_array());
  return *events;
}

std::string phase_of(const JsonValue& event) {
  const JsonValue* ph = event.find("ph");
  return ph != nullptr && ph->is_string() ? ph->as_string() : std::string();
}

// --- trace JSON format ----------------------------------------------------

TEST(ObsTrace, ShardsAreValidJsonWithRequiredKeysPerPhase) {
  ObsReset reset;
  const auto ds = small_dataset();
  const auto result = parallel::run_distributed(ds.reads, traced_config(2));
  ASSERT_EQ(result.corrected.size(), ds.reads.size());

  for (int rank = 0; rank < 2; ++rank) {
    const JsonValue doc = obs::json_parse(Tracer::instance().to_json(rank));
    ASSERT_TRUE(doc.is_object());
    const JsonValue* unit = doc.find("displayTimeUnit");
    ASSERT_NE(unit, nullptr);
    EXPECT_EQ(unit->as_string(), "ms");
    const JsonValue& events = events_of(doc);
    ASSERT_FALSE(events.as_array().empty());
    for (const JsonValue& event : events.as_array()) {
      ASSERT_TRUE(event.is_object());
      ASSERT_TRUE(event.has("name"));
      ASSERT_TRUE(event.has("ph"));
      ASSERT_TRUE(event.has("pid"));
      ASSERT_TRUE(event.has("tid"));
      const std::string ph = phase_of(event);
      if (ph == "M") continue;
      ASSERT_TRUE(event.has("cat")) << "phase " << ph;
      ASSERT_TRUE(event.has("ts")) << "phase " << ph;
      if (ph == "X") {
        ASSERT_TRUE(event.has("dur"));
        EXPECT_GE(event.find("dur")->as_number(), 0.0);
      } else if (ph == "i") {
        ASSERT_TRUE(event.has("s"));  // instant scope
      } else if (ph == "s" || ph == "f") {
        ASSERT_TRUE(event.has("id"));
        EXPECT_TRUE(event.find("id")->is_string());
        if (ph == "f") {
          ASSERT_TRUE(event.has("bp"));
          EXPECT_EQ(event.find("bp")->as_string(), "e");
        }
      } else if (ph == "C") {
        // Ledger counter: the tracked value is always non-negative bytes.
        const JsonValue* args = event.find("args");
        ASSERT_NE(args, nullptr);
        const JsonValue* bytes = args->find("bytes");
        ASSERT_NE(bytes, nullptr);
        EXPECT_GE(bytes->as_number(), 0.0);
      } else {
        FAIL() << "unexpected phase " << ph;
      }
    }
  }
}

TEST(ObsTrace, TwoRankRunHasStageSpansAndCrossRankFlows) {
  ObsReset reset;
  const auto ds = small_dataset();
  const auto result = parallel::run_distributed(ds.reads, traced_config(2));
  ASSERT_EQ(result.corrected.size(), ds.reads.size());

  // Paper steps II-IV appear as stage spans on every rank (step I is the
  // read partitioning inside the drivers; the graph's first stage is
  // load_balance). Flow starts pair with finishes *across* shards.
  std::set<std::string> flow_starts;
  std::set<std::string> flow_finishes;
  for (int rank = 0; rank < 2; ++rank) {
    const JsonValue doc = obs::json_parse(Tracer::instance().to_json(rank));
    std::set<std::string> stages;
    bool saw_chunk = false;
    for (const JsonValue& event : events_of(doc).as_array()) {
      const std::string ph = phase_of(event);
      const JsonValue* cat = event.find("cat");
      const std::string category =
          cat != nullptr && cat->is_string() ? cat->as_string() : "";
      if (category == "stage") stages.insert(event.find("name")->as_string());
      if (category == "chunk") saw_chunk = true;
      if (ph == "s") flow_starts.insert(event.find("id")->as_string());
      if (ph == "f") flow_finishes.insert(event.find("id")->as_string());
    }
    EXPECT_TRUE(stages.count("stage:load_balance")) << "rank " << rank;
    EXPECT_TRUE(stages.count("stage:build_spectrum")) << "rank " << rank;
    EXPECT_TRUE(stages.count("stage:correct")) << "rank " << rank;
    EXPECT_TRUE(saw_chunk) << "rank " << rank;
  }
  ASSERT_FALSE(flow_finishes.empty())
      << "2-rank universal run must serve at least one remote lookup";
  for (const std::string& id : flow_finishes) {
    EXPECT_TRUE(flow_starts.count(id)) << "unmatched flow finish " << id;
  }
}

TEST(ObsTrace, WriteShardsRoundTripsThroughParser) {
  ObsReset reset;
  const auto ds = small_dataset();
  auto config = traced_config(2);
  const auto dir =
      std::filesystem::temp_directory_path() / "reptile_obs_shards";
  std::filesystem::create_directories(dir);
  config.trace.path = (dir / "trace").string();
  (void)parallel::run_distributed(ds.reads, config);

  for (int rank = 0; rank < 2; ++rank) {
    const auto path = dir / ("trace.rank" + std::to_string(rank) + ".json");
    ASSERT_TRUE(std::filesystem::exists(path)) << path;
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const JsonValue doc = obs::json_parse(buf.str());
    EXPECT_FALSE(events_of(doc).as_array().empty());
  }
  std::filesystem::remove_all(dir);
}

// --- zero overhead when disabled ------------------------------------------

TEST(ObsTrace, DisabledRunLeavesNoObsState) {
  ObsReset reset;
  const auto ds = small_dataset();
  auto config = traced_config(2);
  config.trace = obs::TraceConfig{};  // defaults: everything off

  const auto result = parallel::run_distributed(ds.reads, config);
  ASSERT_EQ(result.corrected.size(), ds.reads.size());

  EXPECT_FALSE(Tracer::instance().enabled());
  EXPECT_EQ(Registry::global().size(), 0u);
  EXPECT_EQ(Registry::global().prometheus_text(), "");
  EXPECT_EQ(Registry::global().counter("anything"), nullptr);
  EXPECT_EQ(Registry::global().histogram("anything"), nullptr);

  // Report schema carries no latency columns when metrics are off.
  const auto report = parallel::to_report(result, "disabled");
  for (const std::string& column : report.schema()) {
    EXPECT_EQ(column.find("_p99_us"), std::string::npos) << column;
  }
}

TEST(ObsTrace, DisabledOutputIdenticalToTracedOutput) {
  // Tracing is observation only: the corrected reads of a traced run are
  // bit-identical to an untraced run of the same configuration.
  ObsReset reset;
  const auto ds = small_dataset();
  auto traced = traced_config(2);
  auto untraced = traced;
  untraced.trace = obs::TraceConfig{};

  const auto a = parallel::run_distributed(ds.reads, traced);
  const auto b = parallel::run_distributed(ds.reads, untraced);
  ASSERT_EQ(a.corrected.size(), b.corrected.size());
  for (std::size_t i = 0; i < a.corrected.size(); ++i) {
    EXPECT_EQ(a.corrected[i].bases, b.corrected[i].bases) << "read " << i;
  }
}

// --- resource-ledger counters ----------------------------------------------

TEST(ObsTrace, LedgerArmedRunEmitsCounterEventsInShards) {
  ObsReset reset;
  const auto ds = small_dataset();
  auto config = traced_config(2);
  config.trace.ledger = true;
  const auto result = parallel::run_distributed(ds.reads, config);
  ASSERT_EQ(result.corrected.size(), ds.reads.size());

  // Every rank's shard carries ledger 'C' counters; the count_table account
  // must be among them (every run builds spectrum tables — the same
  // invariant trace_merge --check enforces across shards).
  for (int rank = 0; rank < 2; ++rank) {
    const JsonValue doc = obs::json_parse(Tracer::instance().to_json(rank));
    std::set<std::string> counter_names;
    for (const JsonValue& event : events_of(doc).as_array()) {
      if (phase_of(event) != "C") continue;
      const std::string& name = event.find("name")->as_string();
      EXPECT_EQ(name.rfind("ledger:", 0), 0u) << name;
      const JsonValue* args = event.find("args");
      ASSERT_NE(args, nullptr);
      ASSERT_NE(args->find("bytes"), nullptr);
      EXPECT_GE(args->find("bytes")->as_number(), 0.0);
      counter_names.insert(name);
    }
    EXPECT_TRUE(counter_names.count("ledger:count_table")) << "rank " << rank;
  }

  // The harvested timelines carry the per-account breakdown and the report
  // gains the ledger columns.
  ASSERT_FALSE(result.ranks.empty());
  ASSERT_EQ(result.ranks[0].ledger.size(), obs::kLedgerAccounts);
  EXPECT_GT(result.ranks[0].ledger_total_peak_bytes, 0u);
  const auto report = parallel::to_report(result, "ledger");
  EXPECT_NE(std::find(report.schema().begin(), report.schema().end(),
                      "ledger_peak_count_table"),
            report.schema().end());
  EXPECT_NE(std::find(report.schema().begin(), report.schema().end(),
                      "ledger_total_peak_bytes"),
            report.schema().end());
}

TEST(ObsTrace, LedgerOffRunHasZeroCountersAndIdenticalOutput) {
  // The ledger is observation only and off by default: a traced run without
  // --ledger emits not a single 'C' event, grows no ledger columns, and
  // corrects reads byte-identically to a ledger-armed run.
  ObsReset reset;
  const auto ds = small_dataset();
  auto armed = traced_config(2);
  armed.trace.ledger = true;
  auto off = traced_config(2);

  const auto a = parallel::run_distributed(ds.reads, armed);
  const auto b = parallel::run_distributed(ds.reads, off);

  for (int rank = 0; rank < 2; ++rank) {
    const JsonValue doc = obs::json_parse(Tracer::instance().to_json(rank));
    std::size_t counters = 0;
    for (const JsonValue& event : events_of(doc).as_array()) {
      if (phase_of(event) == "C") ++counters;
    }
    EXPECT_EQ(counters, 0u) << "rank " << rank;
  }
  EXPECT_FALSE(obs::ResourceLedger::global().enabled());
  EXPECT_EQ(obs::ResourceLedger::global().total_bytes(), 0u);
  for (const auto& r : b.ranks) {
    EXPECT_TRUE(r.ledger.empty());
    EXPECT_EQ(r.ledger_total_peak_bytes, 0u);
  }
  const auto report = parallel::to_report(b, "off");
  for (const std::string& column : report.schema()) {
    EXPECT_EQ(column.rfind("ledger_", 0), std::string::npos) << column;
  }

  ASSERT_EQ(a.corrected.size(), b.corrected.size());
  for (std::size_t i = 0; i < a.corrected.size(); ++i) {
    EXPECT_EQ(a.corrected[i].bases, b.corrected[i].bases) << "read " << i;
  }
}

// --- metrics registry ------------------------------------------------------

TEST(ObsTrace, MetricsRunPublishesHistogramsAndCounters) {
  ObsReset reset;
  const auto ds = small_dataset();
  const auto result = parallel::run_distributed(ds.reads, traced_config(2));

  ASSERT_TRUE(Registry::global().enabled());
  EXPECT_GT(Registry::global().size(), 0u);

  // The 2-rank universal run performs remote lookups, so both ranks have a
  // lookup RTT histogram and the text dump renders them.
  std::uint64_t rtt_samples = 0;
  for (int rank = 0; rank < 2; ++rank) {
    rtt_samples +=
        Registry::global().histogram_summary("reptile_lookup_rtt_us", rank)
            .count;
  }
  EXPECT_GT(rtt_samples, 0u);

  const std::string text = Registry::global().prometheus_text();
  EXPECT_NE(text.find("reptile_lookup_rtt_us"), std::string::npos);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("rank=\"0\""), std::string::npos);
  EXPECT_NE(text.find("reptile_reads_processed"), std::string::npos);

  // Counter mirror matches the harvested timelines.
  std::uint64_t subs = 0;
  for (const auto& r : result.ranks) {
    const obs::Counter* c =
        Registry::global().counter("reptile_substitutions", r.rank);
    if (c != nullptr) subs += c->value();
  }
  EXPECT_EQ(subs, result.total_substitutions());

  // Report gains consistent latency columns on every record.
  const auto report = parallel::to_report(result, "metrics");
  EXPECT_NE(std::find(report.schema().begin(), report.schema().end(),
                      "lookup_rtt_p99_us"),
            report.schema().end());
}

TEST(ObsHistogram, BucketsQuantilesAndMax) {
  obs::Histogram h;
  EXPECT_EQ(obs::Histogram::bucket_index(0), 0u);
  EXPECT_EQ(obs::Histogram::bucket_index(1), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(2), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(3), 1u);
  EXPECT_EQ(obs::Histogram::bucket_index(4), 2u);
  EXPECT_EQ(obs::Histogram::bucket_index(1024), 10u);

  for (int i = 0; i < 99; ++i) h.record(10);
  h.record(100000);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.max(), 100000u);
  // p50 lands in 10's bucket [8,16); quantile reports the bucket's upper
  // bound, clamped to the observed max.
  EXPECT_LE(h.quantile(0.5), 15u);
  EXPECT_GE(h.quantile(0.5), 10u);
  EXPECT_EQ(h.quantile(1.0), 100000u);
}

// --- flow ids and interning ------------------------------------------------

TEST(ObsTrace, FlowIdsAreDeterministicDistinctAndNonZero) {
  const std::uint64_t a = obs::flow_id(0, 100, 1);
  EXPECT_EQ(a, obs::flow_id(0, 100, 1));  // requester and service agree
  EXPECT_NE(a, 0u);
  EXPECT_NE(a, obs::flow_id(1, 100, 1));
  EXPECT_NE(a, obs::flow_id(0, 101, 1));
  EXPECT_NE(a, obs::flow_id(0, 100, 2));
}

TEST(ObsTrace, InternReturnsStablePointers) {
  const char* a = obs::intern("stage:alpha");
  const char* b = obs::intern(std::string("stage:") + "alpha");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "stage:alpha");
  EXPECT_NE(a, obs::intern("stage:beta"));
}

// --- flight recorder -------------------------------------------------------

TEST(ObsTrace, FlightRecorderKeepsTailWithoutFullTracing) {
  ObsReset reset;
  obs::TraceConfig config;  // full tracing OFF; flight recorder only
  config.flight_capacity = 8;
  Tracer::instance().configure(config);
  Tracer::instance().set_thread(3, "worker0");
  for (std::uint64_t i = 0; i < 50; ++i) {
    Tracer::instance().instant("test", "tick", Tracer::kThreadRank, "i", i);
  }
  // Ring keeps only the newest flight_capacity events.
  EXPECT_EQ(Tracer::instance().events_recorded(), 8u);
  const std::string tail = Tracer::instance().tail_text(8);
  EXPECT_NE(tail.find("rank3/worker0"), std::string::npos);
  EXPECT_NE(tail.find("tick"), std::string::npos);
  EXPECT_NE(tail.find("i=49"), std::string::npos);   // newest survives
  EXPECT_EQ(tail.find("i=41"), std::string::npos);   // overwritten
  // The rank filter drops other ranks' threads.
  const int keep[] = {7};
  EXPECT_EQ(Tracer::instance().tail_text(8, keep).find("tick"),
            std::string::npos);
}

// --- json parser -----------------------------------------------------------

TEST(ObsJson, ParsesAndRoundTrips) {
  const std::string text =
      R"({"a":[1,2.5,-3e2],"b":"xA\n","c":{"d":true,"e":null}})";
  const JsonValue doc = obs::json_parse(text);
  EXPECT_EQ(doc.find("a")->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(doc.find("a")->as_array()[2].as_number(), -300.0);
  EXPECT_EQ(doc.find("b")->as_string(), "xA\n");
  EXPECT_TRUE(doc.find("c")->find("d")->as_bool());
  EXPECT_TRUE(doc.find("c")->find("e")->is_null());
  // dump() round-trips through the parser.
  const JsonValue again = obs::json_parse(doc.dump());
  EXPECT_EQ(again.dump(), doc.dump());
}

TEST(ObsJson, RejectsMalformedInput) {
  EXPECT_THROW(obs::json_parse("{"), obs::JsonError);
  EXPECT_THROW(obs::json_parse("[1,]"), obs::JsonError);
  EXPECT_THROW(obs::json_parse("{\"a\":1} trailing"), obs::JsonError);
  EXPECT_THROW(obs::json_parse("\"unterminated"), obs::JsonError);
  EXPECT_THROW(obs::json_parse("nul"), obs::JsonError);
}

}  // namespace
}  // namespace reptile
