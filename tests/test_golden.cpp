// Golden regression test: the full pipeline's output on a fixed seed is
// pinned by checksum. Every layer is deterministic by design (seeded RNG,
// deterministic corrector tie-breaks, order-restoring merge), so any change
// to these checksums means an algorithmic behaviour change — which must be
// deliberate, reviewed, and re-pinned.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "hash/hashing.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"

namespace reptile {
namespace {

/// Order-sensitive FNV over all read bases.
std::uint64_t checksum_reads(const std::vector<seq::Read>& reads) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const auto& r : reads) {
    h ^= hash::fnv1a(r.bases);
    h *= 0x100000001B3ull;
  }
  return h;
}

core::CorrectorParams golden_params() {
  core::CorrectorParams p;
  p.k = 12;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 128;
  return p;
}

const seq::SyntheticDataset& golden_dataset() {
  static const seq::SyntheticDataset ds = [] {
    seq::DatasetSpec spec{"golden", 2000, 80, 3000};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.004;
    errors.error_rate_end = 0.012;
    errors.burst_fraction = 0.1;
    errors.burst_regions = 2;
    errors.burst_multiplier = 5.0;
    return seq::SyntheticDataset::generate(spec, errors, 0xC0FFEE);
  }();
  return ds;
}

TEST(Golden, DatasetGenerationIsPinned) {
  const auto& ds = golden_dataset();
  // If these fire, the synthetic-data RNG stream changed: every modeled
  // figure moves with it.
  EXPECT_EQ(checksum_reads(ds.reads), 0x6664e40ea476aef0ull)
      << "actual: 0x" << std::hex << checksum_reads(ds.reads);
  EXPECT_EQ(ds.total_errors, 1739u);
}

TEST(Golden, SequentialCorrectionIsPinned) {
  const auto result =
      core::run_sequential(golden_dataset().reads, golden_params());
  EXPECT_EQ(checksum_reads(result.corrected), 0x8c14c08e3007d618ull)
      << "actual: 0x" << std::hex << checksum_reads(result.corrected);
  EXPECT_EQ(result.substitutions, 1226u);
}

TEST(Golden, DistributedMatchesThePinnedSequentialChecksum) {
  parallel::DistConfig config;
  config.params = golden_params();
  config.ranks = 4;
  config.heuristics.universal = true;
  config.heuristics.batch_reads = true;
  const auto result = parallel::run_distributed(golden_dataset().reads, config);
  const auto seq_result =
      core::run_sequential(golden_dataset().reads, golden_params());
  EXPECT_EQ(checksum_reads(result.corrected),
            checksum_reads(seq_result.corrected));
}

}  // namespace
}  // namespace reptile
