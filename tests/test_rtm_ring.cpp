// Unit + property tests: the lock-free mailbox fast path (MPMC ring) and
// the zero-copy payload arena. The concurrent property tests pin the MPI
// non-overtaking guarantee — per-(source, tag) FIFO — across BOTH delivery
// paths and across ring overflow into the deque; they are part of the TSan
// CI tier, which verifies the ring's acquire/release protocol has no data
// races.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rtm/comm.hpp"
#include "rtm/mailbox.hpp"
#include "rtm_test_seed.hpp"
#include "rtm/message.hpp"
#include "rtm/ring.hpp"

namespace reptile::rtm {
namespace {

// Prints the base seed + a one-line replay command on any failure
// (interleaving-sensitive suites share the RTM_TEST_SEED contract).
const bool kSeedReporter = rtm_test::install_seed_reporter("test_rtm_ring");

using namespace std::chrono_literals;

Message msg(int src, int tag, std::uint64_t value = 0) {
  return Message::of_value(src, tag, value);
}

// ---- MpmcMessageRing --------------------------------------------------------

TEST(Ring, RoundTripInOrderAndFullDetection) {
  MpmcMessageRing ring(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    Message m = msg(1, 2, i);
    EXPECT_TRUE(ring.try_push(m));
  }
  Message overflow = msg(1, 2, 99);
  EXPECT_FALSE(ring.try_push(overflow));
  EXPECT_EQ(overflow.as_value<std::uint64_t>(), 99u);  // intact on failure
  EXPECT_EQ(ring.approx_size(), 8u);
  Message out;
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_EQ(ring.try_pop_exact(pack_envelope(1, 2), out),
              MpmcMessageRing::PopResult::kOk);
    EXPECT_EQ(out.as_value<std::uint64_t>(), i);
  }
  EXPECT_EQ(ring.try_pop_exact(pack_envelope(1, 2), out),
            MpmcMessageRing::PopResult::kEmpty);
}

TEST(Ring, MismatchedHeadIsNeverConsumed) {
  MpmcMessageRing ring(8);
  Message a = msg(1, 5, 10);
  ASSERT_TRUE(ring.try_push(a));
  Message out;
  EXPECT_EQ(ring.try_pop_exact(pack_envelope(2, 6), out),
            MpmcMessageRing::PopResult::kMismatch);
  EXPECT_EQ(ring.approx_size(), 1u);
  EXPECT_EQ(ring.try_pop_exact(pack_envelope(1, 5), out),
            MpmcMessageRing::PopResult::kOk);
  EXPECT_EQ(out.as_value<std::uint64_t>(), 10u);
}

TEST(Ring, ConsumerLockBlocksFastPopsAndGuardsDrain) {
  MpmcMessageRing ring(8);
  for (std::uint64_t i = 0; i < 3; ++i) {
    Message m = msg(0, 1, i);
    ASSERT_TRUE(ring.try_push(m));
  }
  ring.set_consumer_lock(true);
  Message out;
  EXPECT_EQ(ring.try_pop_exact(pack_envelope(0, 1), out),
            MpmcMessageRing::PopResult::kLocked);
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(ring.pop_head_locked(out));
    EXPECT_EQ(out.as_value<std::uint64_t>(), i);
  }
  EXPECT_FALSE(ring.pop_head_locked(out));
  ring.set_consumer_lock(false);
  EXPECT_EQ(ring.try_pop_exact(pack_envelope(0, 1), out),
            MpmcMessageRing::PopResult::kEmpty);
}

// ---- PayloadArena / Payload -------------------------------------------------

TEST(PayloadArena, SlabReuseAndExactAccounting) {
  PayloadArena arena;
  EXPECT_EQ(arena.memory_bytes(), 0u);
  {
    // Two allocations that together overflow one slab force a second slab;
    // freeing everything recycles both.
    Payload a = arena.allocate(PayloadArena::kSlabBytes - 64);
    Payload b = arena.allocate(1024);
    EXPECT_TRUE(a.arena_backed());
    EXPECT_TRUE(b.arena_backed());
    EXPECT_EQ(arena.memory_bytes(), 2 * PayloadArena::kSlabBytes);
  }
  // Slab 1 was retired (bump target moved on) and its last payload died:
  // it must be on the free list. Slab 2 is still the bump target.
  EXPECT_EQ(arena.free_slabs(), 1u);
  const auto before = arena.stats();
  EXPECT_EQ(before.slabs_allocated, 2u);
  // Steady state: repeatedly filling and freeing must reuse, not allocate.
  for (int round = 0; round < 8; ++round) {
    std::vector<Payload> chunk;
    for (int i = 0; i < 3; ++i) {
      chunk.push_back(arena.allocate(PayloadArena::kSlabBytes / 2));
    }
  }
  const auto after = arena.stats();
  EXPECT_EQ(after.slabs_allocated, before.slabs_allocated);
  EXPECT_GT(after.slabs_reused, 0u);
  EXPECT_EQ(arena.memory_bytes(), 2 * PayloadArena::kSlabBytes);
}

TEST(PayloadArena, OversizeFallsBackToHeap) {
  PayloadArena arena;
  Payload p = arena.allocate(PayloadArena::kSlabBytes + 1);
  EXPECT_FALSE(p.arena_backed());
  EXPECT_EQ(p.size(), PayloadArena::kSlabBytes + 1);
  EXPECT_EQ(arena.stats().oversize_allocs, 1u);
  EXPECT_EQ(arena.memory_bytes(), 0u);  // no slab was reserved for it
}

TEST(Payload, CopyIsDeepAndSelfContained) {
  PayloadArena arena;
  Payload original = arena.allocate(16);
  original.data()[0] = std::byte{42};
  Payload copy = original;  // chaos duplication path
  EXPECT_FALSE(copy.arena_backed());
  EXPECT_EQ(copy.size(), 16u);
  EXPECT_EQ(copy.data()[0], std::byte{42});
  copy.data()[0] = std::byte{7};
  EXPECT_EQ(original.data()[0], std::byte{42});
}

TEST(Payload, ResizeShrinksInPlaceAndGrowMigratesToHeap) {
  PayloadArena arena;
  Payload p = arena.allocate(32);
  for (int i = 0; i < 32; ++i) p.data()[i] = static_cast<std::byte>(i);
  p.resize(8);  // chaos truncation path
  EXPECT_TRUE(p.arena_backed());
  EXPECT_EQ(p.size(), 8u);
  EXPECT_EQ(p.data()[7], std::byte{7});
  p.resize(64);  // growth releases the slab chunk and keeps the prefix
  EXPECT_FALSE(p.arena_backed());
  EXPECT_EQ(p.size(), 64u);
  EXPECT_EQ(p.data()[7], std::byte{7});
}

TEST(PayloadArena, CrossThreadReleaseIsSafe) {
  // Sender-side allocation, receiver-side release — the normal message
  // lifecycle. Hammer it from several threads to expose slab refcount
  // races (and data races, under TSan).
  PayloadArena arena;
  constexpr int kThreads = 4;
  constexpr int kRounds = 2000;
  Mailbox mb;
  std::vector<std::thread> senders;
  senders.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&arena, &mb, t] {
      for (int i = 0; i < kRounds; ++i) {
        Message m;
        m.source = t;
        m.tag = 7;
        m.payload = arena.allocate(64 + static_cast<std::size_t>(i % 191));
        mb.push(std::move(m));
      }
    });
  }
  int received = 0;
  while (received < kThreads * kRounds) {
    if (auto m = mb.try_pop(kAnySource, 7)) ++received;  // payload dies here
  }
  for (auto& t : senders) t.join();
  EXPECT_LT(arena.memory_bytes(), 64u * PayloadArena::kSlabBytes);
  // Every payload above is dead, so the retired slabs all sit on the free
  // list now; one more single-threaded wave must recycle instead of grow.
  const auto before = arena.stats();
  for (int i = 0; i < 8; ++i) {
    const Payload p = arena.allocate(PayloadArena::kSlabBytes / 2);
  }
  const auto after = arena.stats();
  EXPECT_GT(after.slabs_reused, before.slabs_reused);
  EXPECT_EQ(after.slabs_allocated, before.slabs_allocated);
}

// ---- Mailbox fast path ------------------------------------------------------

TEST(MailboxFastPath, StatsCountFastOperations) {
  Mailbox mb;
  mb.push(msg(0, 1, 11));
  EXPECT_EQ(mb.try_pop(0, 1)->as_value<std::uint64_t>(), 11u);
  const MailboxStats s = mb.stats();
  EXPECT_EQ(s.fast_pushes, 1u);
  EXPECT_EQ(s.fast_pops, 1u);
  EXPECT_EQ(s.slow_pushes, 0u);
}

TEST(MailboxFastPath, DisablingForcesSlowPath) {
  Mailbox mb;
  mb.set_fast_path(false);
  mb.push(msg(0, 1, 11));
  EXPECT_EQ(mb.try_pop(0, 1)->as_value<std::uint64_t>(), 11u);
  const MailboxStats s = mb.stats();
  EXPECT_EQ(s.fast_pushes, 0u);
  EXPECT_EQ(s.fast_pops, 0u);
  EXPECT_EQ(s.slow_pushes, 1u);
}

TEST(MailboxFastPath, OverflowSpillsToDequeAndKeepsStreamFifo) {
  // Push far beyond the ring capacity without popping: the overflow drains
  // the ring into the deque. Subsequent pops must still see 0..N-1 in
  // order, crossing the deque/ring boundary (deque holds the OLDER half).
  Mailbox mb;
  constexpr std::uint64_t kN = Mailbox::kRingCapacity * 3 + 17;
  for (std::uint64_t i = 0; i < kN; ++i) mb.push(msg(2, 9, i));
  const MailboxStats after_push = mb.stats();
  EXPECT_GT(after_push.fast_pushes, 0u);
  EXPECT_GT(after_push.slow_pushes, 0u);  // overflow took the mutex path
  EXPECT_EQ(mb.size(), kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto m = mb.try_pop(2, 9);
    ASSERT_TRUE(m);
    ASSERT_EQ(m->as_value<std::uint64_t>(), i);
  }
  EXPECT_TRUE(mb.empty());
  // Once the deque drained, exact pops return to the lock-free path.
  mb.push(msg(2, 9, 1000));
  EXPECT_EQ(mb.try_pop(2, 9)->as_value<std::uint64_t>(), 1000u);
  EXPECT_GT(mb.stats().fast_pops, 0u);
}

// Concurrent producers/consumers on distinct streams: every stream must be
// received in push order regardless of which path each message took.
void run_fifo_property(bool fast_path) {
  Mailbox mb;
  mb.set_fast_path(fast_path);
  constexpr int kStreams = 4;
  constexpr std::uint64_t kEach = 20000;
  std::vector<std::thread> producers;
  producers.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    producers.emplace_back([&mb, s] {
      for (std::uint64_t i = 0; i < kEach; ++i) {
        mb.push(msg(s, 100 + s, i));
      }
    });
  }
  std::vector<std::thread> consumers;
  std::atomic<int> failures{0};
  consumers.reserve(kStreams);
  for (int s = 0; s < kStreams; ++s) {
    consumers.emplace_back([&mb, &failures, s] {
      for (std::uint64_t i = 0; i < kEach; ++i) {
        const Message m = mb.pop(s, 100 + s);  // blocking exact-match
        if (m.as_value<std::uint64_t>() != i) {
          failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(mb.empty());
}

TEST(MailboxFastPath, ConcurrentStreamsKeepFifoOnFastPath) {
  run_fifo_property(/*fast_path=*/true);
}

TEST(MailboxFastPath, ConcurrentStreamsKeepFifoOnSlowPath) {
  run_fifo_property(/*fast_path=*/false);
}

TEST(MailboxFastPath, ExactAndPredicateConsumersCoexist) {
  // The real pipeline shape: a worker doing exact pops of replies while
  // the communication thread predicate-matches requests on the same
  // mailbox. Both streams must stay FIFO and neither may steal.
  Mailbox mb;
  constexpr std::uint64_t kEach = 10000;
  std::thread producer([&mb] {
    for (std::uint64_t i = 0; i < kEach; ++i) {
      mb.push(msg(1, 1, i));  // "requests"
      mb.push(msg(1, 2, i));  // "replies"
    }
  });
  std::thread service([&mb] {
    for (std::uint64_t i = 0; i < kEach; ++i) {
      std::optional<Message> m;
      while (!m) {
        m = mb.pop_match_for([](const Message& m) { return m.tag == 1; }, 1s);
      }
      ASSERT_EQ(m->as_value<std::uint64_t>(), i);
    }
  });
  for (std::uint64_t i = 0; i < kEach; ++i) {
    const Message m = mb.pop(1, 2);
    ASSERT_EQ(m.as_value<std::uint64_t>(), i);
  }
  producer.join();
  service.join();
  EXPECT_TRUE(mb.empty());
}

// ---- pop_match_for scan resume / targeted wakeup ----------------------------

TEST(MailboxWakeup, PopMatchForResumesAfterConsumedBacklog) {
  // A backlog of non-matching messages, some of which get consumed from
  // the middle while the predicate receive waits: the late matching push
  // must still be found (scan resume must not skip new arrivals or trip
  // over erased entries).
  Mailbox mb;
  for (std::uint64_t i = 0; i < 64; ++i) {
    mb.push(msg(3, static_cast<int>(10 + i % 4), i));
  }
  std::thread interferer([&mb] {
    std::this_thread::sleep_for(5ms);
    for (int i = 0; i < 8; ++i) (void)mb.try_pop(3, 11);
    std::this_thread::sleep_for(5ms);
    mb.push(msg(9, 99, 1234));
  });
  const auto m = mb.pop_match_for(
      [](const Message& m) { return m.tag == 99; }, 5s);
  ASSERT_TRUE(m);
  EXPECT_EQ(m->as_value<std::uint64_t>(), 1234u);
  interferer.join();
  EXPECT_EQ(mb.size(), 64u - 8u);
}

TEST(MailboxWakeup, PushSkipsNotifyWhenNoWaiterFilterMatches) {
  Mailbox mb;
  std::atomic<bool> got{false};
  std::thread waiter([&mb, &got] {
    const Message m = mb.pop(0, 1);  // registers filter (0, 1)
    EXPECT_EQ(m.as_value<std::uint64_t>(), 5u);
    got.store(true);
  });
  // Let the waiter park (spin phase + registration + cv wait).
  std::this_thread::sleep_for(20ms);
  const std::uint64_t skipped_before = mb.stats().notifies_skipped;
  mb.push(msg(5, 5, 0));  // matches no waiter: must not notify
  std::this_thread::sleep_for(5ms);
  EXPECT_FALSE(got.load());
  EXPECT_GT(mb.stats().notifies_skipped, skipped_before);
  mb.push(msg(0, 1, 5));  // matches the waiter's filter
  waiter.join();
  EXPECT_TRUE(got.load());
  EXPECT_EQ(mb.try_pop(5, 5)->as_value<std::uint64_t>(), 0u);
}

// ---- end to end through Comm/World ------------------------------------------

TEST(MailboxFastPath, UncheckedPingPongUsesRingAndArena) {
  RunOptions options;
  options.check.enabled = false;  // fast path only arms without a checker
  constexpr int kRounds = 500;
  auto world = run_world(
      {2, 1},
      [](Comm& comm) {
        if (comm.rank() == 0) {
          for (std::uint64_t i = 0; i < kRounds; ++i) {
            comm.send_value(1, 3, i);
            const Message echo = comm.recv(1, 4);
            ASSERT_EQ(echo.as_value<std::uint64_t>(), i);
          }
        } else {
          for (std::uint64_t i = 0; i < kRounds; ++i) {
            Message m = comm.recv(0, 3);
            ASSERT_TRUE(m.payload.arena_backed());  // zero-copy send path
            comm.send_value(0, 4, m.as_value<std::uint64_t>());
          }
        }
        comm.barrier();
      },
      options);
  const MailboxStats s0 = world->mailbox(0).stats();
  const MailboxStats s1 = world->mailbox(1).stats();
  EXPECT_EQ(s0.fast_pushes + s1.fast_pushes,
            static_cast<std::uint64_t>(2 * kRounds));
  EXPECT_GT(s0.fast_pops + s1.fast_pops, 0u);
  EXPECT_GT(world->arena(0).stats().slabs_allocated, 0u);
}

TEST(MailboxFastPath, CheckedRunForcesAuditedPathAndStaysClean) {
  // With rtm-check attached every push/pop is audited under the mutex;
  // messages still flow through the ring internally (drained by locked
  // consumers), so this exercises the drain machinery under the FIFO
  // audit. finalize() throws on any violation.
  RunOptions options;  // check.enabled defaults to true
  auto world = run_world({2, 1}, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < 200; ++i) comm.send_value(1, 3, i);
    } else {
      for (std::uint64_t i = 0; i < 200; ++i) {
        ASSERT_EQ(comm.recv(0, 3).as_value<std::uint64_t>(), i);
      }
    }
    comm.barrier();
  });
  EXPECT_EQ(world->mailbox(1).stats().fast_pops, 0u);  // audit forced slow
}

}  // namespace
}  // namespace reptile::rtm
