// Integration tests: the runtime's communicator — point-to-point,
// collectives, topology-aware traffic accounting, phase completion.
#include "rtm/comm.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <numeric>

namespace reptile::rtm {
namespace {

TEST(Comm, RunsEveryRankExactlyOnce) {
  std::vector<int> visits(8, 0);
  run_world({8, 4}, [&](Comm& comm) {
    ++visits[static_cast<std::size_t>(comm.rank())];
    EXPECT_EQ(comm.size(), 8);
  });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(Comm, PointToPointRoundTrip) {
  run_world({2, 2}, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 7, std::uint64_t{123});
      const Message reply = comm.recv(1, 8);
      EXPECT_EQ(reply.as_value<std::uint64_t>(), 246u);
    } else {
      const Message m = comm.recv(0, 7);
      comm.send_value(0, 8, m.as_value<std::uint64_t>() * 2);
    }
  });
}

TEST(Comm, RankExceptionPropagates) {
  EXPECT_THROW(
      run_world({3, 1},
                [](Comm& comm) {
                  if (comm.rank() == 1) throw std::runtime_error("boom");
                }),
      std::runtime_error);
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  run_world({6, 2}, [&](Comm& comm) {
    before.fetch_add(1);
    comm.barrier();
    if (before.load() != 6) violated = true;
  });
  EXPECT_FALSE(violated);
}

TEST(Comm, BarrierGenerationReuseAcrossRepeatedPhases) {
  // The Barrier recycles one generation counter across phases. Run many
  // back-to-back phases where each rank bumps a per-phase counter before
  // the barrier and checks the full count after: a generation mix-up
  // (releasing a waiter early, or stranding one in a stale generation)
  // shows up as a torn count or a hang.
  constexpr int kRanks = 5;
  constexpr int kPhases = 64;
  std::array<std::atomic<int>, kPhases> arrived{};
  std::atomic<bool> violated{false};
  run_world({kRanks, 2}, [&](Comm& comm) {
    for (int phase = 0; phase < kPhases; ++phase) {
      arrived[static_cast<std::size_t>(phase)].fetch_add(1);
      comm.barrier();
      if (arrived[static_cast<std::size_t>(phase)].load() != kRanks) {
        violated = true;
      }
      // A second barrier per phase doubles the generation churn and makes
      // sure the wait predicate survives an immediate re-entry.
      comm.barrier();
    }
  });
  EXPECT_FALSE(violated);
  for (int phase = 0; phase < kPhases; ++phase) {
    EXPECT_EQ(arrived[static_cast<std::size_t>(phase)].load(), kRanks);
  }
}

TEST(Comm, AlltoallvRoutesPerDestination) {
  constexpr int kRanks = 4;
  run_world({kRanks, 2}, [](Comm& comm) {
    // Rank r sends {r*10 + d} to rank d.
    std::vector<std::vector<int>> send(kRanks);
    for (int d = 0; d < kRanks; ++d) {
      send[static_cast<std::size_t>(d)] = {comm.rank() * 10 + d};
    }
    const auto recv = comm.alltoallv(send);
    ASSERT_EQ(recv.size(), static_cast<std::size_t>(kRanks));
    for (int s = 0; s < kRanks; ++s) {
      ASSERT_EQ(recv[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(recv[static_cast<std::size_t>(s)][0], s * 10 + comm.rank());
    }
  });
}

TEST(Comm, AlltoallvWithRaggedAndEmptyBuffers) {
  constexpr int kRanks = 3;
  run_world({kRanks, 1}, [](Comm& comm) {
    // Rank r sends r copies of its rank to every destination.
    std::vector<std::vector<std::uint64_t>> send(kRanks);
    for (auto& part : send) {
      part.assign(static_cast<std::size_t>(comm.rank()),
                  static_cast<std::uint64_t>(comm.rank()));
    }
    const auto recv = comm.alltoallv(send);
    for (int s = 0; s < kRanks; ++s) {
      EXPECT_EQ(recv[static_cast<std::size_t>(s)].size(),
                static_cast<std::size_t>(s));
    }
  });
}

TEST(Comm, ConsecutiveAlltoallvCallsDoNotInterfere) {
  constexpr int kRanks = 4;
  run_world({kRanks, 1}, [](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      std::vector<std::vector<int>> send(
          kRanks, std::vector<int>{round * 100 + comm.rank()});
      const auto recv = comm.alltoallv(send);
      for (int s = 0; s < kRanks; ++s) {
        ASSERT_EQ(recv[static_cast<std::size_t>(s)][0], round * 100 + s);
      }
    }
  });
}

TEST(Comm, AllgathervConcatenatesInRankOrder) {
  constexpr int kRanks = 4;
  run_world({kRanks, 2}, [](Comm& comm) {
    const std::vector<int> mine(static_cast<std::size_t>(comm.rank() + 1),
                                comm.rank());
    const auto all =
        comm.allgatherv(std::span<const int>(mine.data(), mine.size()));
    // Expect 1 zero, 2 ones, 3 twos, 4 threes, in order.
    std::vector<int> expected;
    for (int r = 0; r < kRanks; ++r) {
      expected.insert(expected.end(), static_cast<std::size_t>(r + 1), r);
    }
    EXPECT_EQ(all, expected);
  });
}

TEST(Comm, AllreduceVariants) {
  constexpr int kRanks = 5;
  run_world({kRanks, 1}, [](Comm& comm) {
    const auto r = static_cast<std::uint64_t>(comm.rank());
    EXPECT_EQ(comm.allreduce_sum(r), 0u + 1 + 2 + 3 + 4);
    EXPECT_EQ(comm.allreduce_max(r), 4u);
    EXPECT_EQ(comm.allreduce_min(r), 0u);
    EXPECT_DOUBLE_EQ(comm.allreduce_sum(0.5), 2.5);
  });
}

TEST(Comm, DoneCountingProtocol) {
  run_world({4, 1}, [](Comm& comm) {
    comm.reset_done();
    EXPECT_FALSE(comm.all_done());
    comm.signal_done();
    comm.barrier();
    EXPECT_TRUE(comm.all_done());
    // Second phase reuses the counter after reset.
    comm.reset_done();
    EXPECT_FALSE(comm.all_done());
    comm.signal_done();
    comm.barrier();
    EXPECT_TRUE(comm.all_done());
  });
}

TEST(Comm, TrafficClassifiesIntraVsInterNode) {
  // 4 ranks, 2 per node: 0,1 on node 0; 2,3 on node 1.
  auto world = run_world({4, 2}, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, 1, std::uint64_t{0});  // intra-node
      comm.send_value(2, 1, std::uint64_t{0});  // inter-node
      comm.send_value(3, 1, std::uint64_t{0});  // inter-node
    }
    comm.barrier();
    // Drain so nothing leaks between tests (not strictly needed).
    while (comm.try_recv()) {
    }
  });
  const auto t0 = world->traffic().snapshot(0);
  EXPECT_EQ(t0.sent_msgs_intra, 1u);
  EXPECT_EQ(t0.sent_msgs_inter, 2u);
  EXPECT_EQ(t0.sent_bytes_intra, 8u);
  EXPECT_EQ(t0.sent_bytes_inter, 16u);
  const auto t1 = world->traffic().snapshot(1);
  EXPECT_EQ(t1.sent_msgs(), 0u);
}

TEST(Comm, TrafficCountsCollectives) {
  auto world = run_world({2, 1}, [](Comm& comm) {
    std::vector<std::vector<std::uint64_t>> send(2);
    send[0] = {1, 2};
    send[1] = {3};
    comm.alltoallv(send);
  });
  const auto t = world->traffic().snapshot(0);
  EXPECT_EQ(t.collective_calls, 1u);
  EXPECT_EQ(t.collective_bytes_out, 24u);
}

TEST(Topology, NodeMapping) {
  const Topology t{8, 4};
  EXPECT_EQ(t.nodes(), 2);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(3), 0);
  EXPECT_EQ(t.node_of(4), 1);
  EXPECT_TRUE(t.same_node(0, 3));
  EXPECT_FALSE(t.same_node(3, 4));
  const Topology uneven{10, 4};
  EXPECT_EQ(uneven.nodes(), 3);
}

TEST(Comm, ManyRanksStress) {
  // 32 ranks ping-ponging with their neighbor under one barrier cycle.
  run_world({32, 8}, [](Comm& comm) {
    const int peer = comm.rank() ^ 1;
    comm.send_value(peer, 5, static_cast<std::uint64_t>(comm.rank()));
    const Message m = comm.recv(peer, 5);
    EXPECT_EQ(m.as_value<std::uint64_t>(), static_cast<std::uint64_t>(peer));
    comm.barrier();
  });
}

}  // namespace
}  // namespace reptile::rtm
