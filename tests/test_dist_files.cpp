// Integration tests: the file-based pipeline (Step I from real FASTA +
// quality files) matches the in-memory pipeline and the sequential baseline.
#include "parallel/dist_pipeline.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "core/pipeline.hpp"
#include "seq/dataset.hpp"
#include "seq/fasta_io.hpp"

namespace reptile::parallel {
namespace {

namespace fs = std::filesystem;

class DistFilesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "reptile_dist_files";
    fs::create_directories(dir_);
    seq::DatasetSpec spec{"mini", 800, 60, 2000};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.005;
    errors.error_rate_end = 0.012;
    ds_ = seq::SyntheticDataset::generate(spec, errors, 55);
    seq::write_read_files(fasta(), qual(), ds_.reads);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path fasta() const { return dir_ / "reads.fa"; }
  fs::path qual() const { return dir_ / "reads.qual"; }

  static DistConfig config(int ranks, bool load_balance) {
    DistConfig c;
    c.params.k = 10;
    c.params.tile_overlap = 4;
    c.params.chunk_size = 100;
    c.ranks = ranks;
    c.ranks_per_node = 2;
    c.heuristics.load_balance = load_balance;
    return c;
  }

  fs::path dir_;
  seq::SyntheticDataset ds_;
};

TEST_F(DistFilesTest, MatchesInMemoryPipeline) {
  for (int ranks : {1, 2, 5}) {
    const auto cfg = config(ranks, true);
    const auto from_files = run_distributed_files(fasta(), qual(), cfg);
    const auto in_memory = run_distributed(ds_.reads, cfg);
    ASSERT_EQ(from_files.corrected.size(), in_memory.corrected.size())
        << "ranks=" << ranks;
    EXPECT_EQ(from_files.corrected, in_memory.corrected) << "ranks=" << ranks;
  }
}

TEST_F(DistFilesTest, MatchesSequentialBaseline) {
  const auto cfg = config(4, true);
  const auto from_files = run_distributed_files(fasta(), qual(), cfg);
  const auto ref = core::run_sequential(ds_.reads, cfg.params);
  ASSERT_EQ(from_files.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(from_files.corrected[i].bases, ref.corrected[i].bases)
        << "read " << ref.corrected[i].number;
  }
}

TEST_F(DistFilesTest, StreamingModeWithoutLoadBalance) {
  // Without load balancing, ranks stream their byte partition directly
  // from the files (no in-memory materialization); results must still be
  // identical to the baseline.
  const auto cfg = config(3, false);
  const auto from_files = run_distributed_files(fasta(), qual(), cfg);
  const auto ref = core::run_sequential(ds_.reads, cfg.params);
  ASSERT_EQ(from_files.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(from_files.corrected[i].bases, ref.corrected[i].bases);
  }
}

TEST_F(DistFilesTest, MoreRanksThanNeededStillWorks) {
  // Some ranks may receive an empty byte partition.
  seq::DatasetSpec tiny{"tiny", 5, 60, 500};
  const auto small = seq::SyntheticDataset::generate(tiny, {}, 1);
  const auto f = dir_ / "tiny.fa";
  const auto q = dir_ / "tiny.qual";
  seq::write_read_files(f, q, small.reads);
  const auto cfg = config(8, true);
  const auto result = run_distributed_files(f, q, cfg);
  EXPECT_EQ(result.corrected.size(), 5u);
}

}  // namespace
}  // namespace reptile::parallel
