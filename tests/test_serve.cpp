// Integration tests: the resident correction server (parallel/serve.hpp).
//
// The serve contract under test:
//   * N jobs streamed through a resident server are byte-identical to N
//     one-shot run_distributed runs of the same dataset and config — across
//     dataset seeds, scalar/batched/filtered/add-remote lookup paths, and
//     rank counts (the spectrum is built once, from the same reads, so the
//     distribution of the build must not matter);
//   * job N's report is independent of job N-1 (reset_for_job pins the
//     cross-job state: RemoteSpectrumView caches, LookupStats, batch/dedup
//     counters);
//   * the spectrum is built exactly once per rank for the server's life;
//   * per-job overrides apply to exactly one job and validation rejects bad
//     overrides at submit;
//   * a blown deadline degrades that job only — it never miscorrects.
#include "parallel/serve.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <vector>

#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"
#include "seq/fasta_io.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams test_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 64;
  return p;
}

std::vector<seq::Read> dataset(std::uint64_t seed, int reads = 800) {
  seq::DatasetSpec spec{"serve", reads, 70, 1500};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.004;
  errors.error_rate_end = 0.012;
  return seq::SyntheticDataset::generate(spec, errors, seed).reads;
}

DistConfig base_config(int ranks, Heuristics heur = {}) {
  DistConfig config;
  config.params = test_params();
  config.ranks = ranks;
  config.heuristics = heur;
  return config;
}

void expect_same_reads(const std::vector<seq::Read>& got,
                       const std::vector<seq::Read>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(got[i].number, want[i].number);
    ASSERT_EQ(got[i].bases, want[i].bases) << "read " << want[i].number;
  }
}

// ---- byte-identity sweep: seeds x lookup paths x ranks ---------------------

struct ServeCase {
  const char* name;
  std::uint64_t seed;
  int ranks;
  Heuristics heur;
};

class ServeIdentity : public ::testing::TestWithParam<ServeCase> {};

TEST_P(ServeIdentity, StreamedJobsMatchOneShotRuns) {
  const ServeCase& tc = GetParam();
  const std::vector<seq::Read> reads = dataset(tc.seed);
  const DistConfig config = base_config(tc.ranks, tc.heur);

  const DistResult reference = run_distributed(reads, config);

  CorrectionServer server(reads, config);
  constexpr int kJobs = 3;
  std::vector<std::future<JobReport>> futures;
  for (int j = 0; j < kJobs; ++j) {
    JobRequest request;
    request.reads = reads;
    futures.push_back(server.submit(std::move(request)));
  }
  for (std::future<JobReport>& f : futures) {
    JobReport report = f.get();
    EXPECT_FALSE(report.degraded);
    EXPECT_FALSE(report.deadline_missed);
    expect_same_reads(report.corrected, reference.corrected);
    EXPECT_EQ(report.total_substitutions(), reference.total_substitutions());
    EXPECT_EQ(report.total_reads_changed(), reference.total_reads_changed());
  }
  server.shutdown();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.jobs_completed, static_cast<std::uint64_t>(kJobs));
  EXPECT_EQ(stats.jobs_degraded, 0u);
  EXPECT_EQ(stats.spectrum_builds, static_cast<std::uint64_t>(tc.ranks));
}

Heuristics make_heur(bool batch, bool filter, bool remote) {
  Heuristics h;
  h.batch_lookups = batch;
  h.filter_lookups = filter;
  if (remote) {
    h.read_kmers = true;
    h.add_remote = true;
  }
  return h;
}

INSTANTIATE_TEST_SUITE_P(
    Paths, ServeIdentity,
    ::testing::Values(
        ServeCase{"scalar_s77_r2", 77, 2, make_heur(false, false, false)},
        ServeCase{"scalar_s123_r2", 123, 2, make_heur(false, false, false)},
        ServeCase{"batched_s77_r2", 77, 2, make_heur(true, false, false)},
        ServeCase{"batched_s123_r3", 123, 3, make_heur(true, false, false)},
        ServeCase{"filtered_s77_r2", 77, 2, make_heur(true, true, false)},
        ServeCase{"filtered_s123_r2", 123, 2, make_heur(true, true, false)},
        ServeCase{"add_remote_s77_r2", 77, 2, make_heur(false, false, true)},
        ServeCase{"batched_s77_r4", 77, 4, make_heur(true, false, false)}),
    [](const ::testing::TestParamInfo<ServeCase>& info) {
      return info.param.name;
    });

// ---- cross-job state leaks -------------------------------------------------

// add_remote is the sharpest leak detector: it caches remote replies into
// the rank-lifetime reads tables during correction, so without
// reset_for_job job 2 would see job 1's cache as local hits and its remote
// lookup counters (and with a stale LookupStats, everything else) would
// drift from job 1's.
TEST(ServeState, JobReportsAreIndependentOfEarlierJobs) {
  const std::vector<seq::Read> reads = dataset(77);
  const DistConfig config = base_config(2, make_heur(false, false, true));

  CorrectionServer server(reads, config);
  std::vector<JobReport> reports;
  for (int j = 0; j < 3; ++j) {
    JobRequest request;
    request.reads = reads;
    reports.push_back(server.submit(std::move(request)).get());
  }
  server.shutdown();

  const JobReport& first = reports.front();
  for (std::size_t j = 1; j < reports.size(); ++j) {
    const JobReport& later = reports[j];
    ASSERT_EQ(later.ranks.size(), first.ranks.size());
    expect_same_reads(later.corrected, first.corrected);
    for (std::size_t r = 0; r < first.ranks.size(); ++r) {
      const RankReport& a = first.ranks[r];
      const RankReport& b = later.ranks[r];
      EXPECT_EQ(b.substitutions, a.substitutions) << "job " << j;
      EXPECT_EQ(b.reads_changed, a.reads_changed) << "job " << j;
      EXPECT_EQ(b.reads_processed, a.reads_processed) << "job " << j;
      EXPECT_EQ(b.lookups.kmer_lookups, a.lookups.kmer_lookups) << "job " << j;
      EXPECT_EQ(b.lookups.tile_lookups, a.lookups.tile_lookups) << "job " << j;
      // The remote counters are where a leaked cache would show first.
      EXPECT_EQ(b.remote.remote_kmer_lookups, a.remote.remote_kmer_lookups)
          << "job " << j;
      EXPECT_EQ(b.remote.remote_tile_lookups, a.remote.remote_tile_lookups)
          << "job " << j;
      EXPECT_EQ(b.remote.batch_kmer_ids_raw, a.remote.batch_kmer_ids_raw)
          << "job " << j;
      EXPECT_EQ(b.remote.batch_tile_ids_raw, a.remote.batch_tile_ids_raw)
          << "job " << j;
      EXPECT_EQ(b.remote.filter_neg_hits, a.remote.filter_neg_hits)
          << "job " << j;
    }
  }
}

TEST(ServeState, SpectrumBuiltExactlyOncePerRank) {
  const std::vector<seq::Read> reads = dataset(77);
  CorrectionServer server(reads, base_config(2));
  for (int j = 0; j < 4; ++j) {
    JobRequest request;
    request.reads = reads;
    JobReport report = server.submit(std::move(request)).get();
    // Jobs run only the correction slice of the graph: no construction
    // time, no spectrum churn, on any job.
    for (const RankReport& rank : report.ranks) {
      EXPECT_EQ(rank.construct_seconds, 0.0) << "job " << j;
    }
    EXPECT_EQ(server.stats().spectrum_builds, 2u) << "after job " << j;
  }
  server.shutdown();
  EXPECT_EQ(server.stats().spectrum_builds, 2u);
  ASSERT_EQ(server.build_reports().size(), 2u);
  for (const stats::PhaseTimeline& build : server.build_reports()) {
    EXPECT_GT(build.construct_seconds, 0.0);
  }
}

// ---- per-job overrides -----------------------------------------------------

TEST(ServeOverrides, ApplyToExactlyOneJob) {
  const std::vector<seq::Read> reads = dataset(77);
  const DistConfig config = base_config(2);

  const DistResult plain = run_distributed(reads, config);
  DistConfig capped_config = config;
  capped_config.params.max_corrections_per_read = 1;
  const DistResult capped = run_distributed(reads, capped_config);
  // The override must be observable, or this test pins nothing.
  ASSERT_LT(capped.total_substitutions(), plain.total_substitutions());

  CorrectionServer server(reads, config);
  JobRequest first;
  first.reads = reads;
  JobRequest second;
  second.reads = reads;
  second.overrides.max_corrections_per_read = 1;
  JobRequest third;
  third.reads = reads;
  auto f1 = server.submit(std::move(first));
  auto f2 = server.submit(std::move(second));
  auto f3 = server.submit(std::move(third));

  expect_same_reads(f1.get().corrected, plain.corrected);
  expect_same_reads(f2.get().corrected, capped.corrected);
  // Job 3 runs with the build config again: the override did not stick.
  expect_same_reads(f3.get().corrected, plain.corrected);
  server.shutdown();
}

TEST(ServeOverrides, InvalidOverridesThrowAtSubmit) {
  const std::vector<seq::Read> reads = dataset(77, 200);
  CorrectionServer server(reads, base_config(2));  // built without read_kmers

  JobRequest bad;
  bad.reads = reads;
  bad.overrides.add_remote = true;  // needs build-time reads tables
  EXPECT_THROW(server.submit(std::move(bad)), std::invalid_argument);

  JobRequest negative;
  negative.reads = reads;
  negative.overrides.deadline_seconds = -1.0;
  EXPECT_THROW(server.submit(std::move(negative)), std::invalid_argument);

  // The server is unharmed: a good job still round-trips.
  JobRequest good;
  good.reads = reads;
  EXPECT_EQ(server.submit(std::move(good)).get().corrected.size(),
            reads.size());
  server.shutdown();
  EXPECT_EQ(server.stats().jobs_completed, 1u);
}

// ---- deadlines -------------------------------------------------------------

TEST(ServeDeadline, BlownDeadlineDegradesOnlyThatJob) {
  const std::vector<seq::Read> reads = dataset(77);
  const DistConfig config = base_config(2);
  const DistResult reference = run_distributed(reads, config);

  CorrectionServer server(reads, config);
  JobRequest rushed;
  rushed.reads = reads;
  rushed.overrides.deadline_seconds = 1e-9;  // unmeetable
  JobRequest relaxed;
  relaxed.reads = reads;
  auto f1 = server.submit(std::move(rushed));
  auto f2 = server.submit(std::move(relaxed));

  JobReport missed = f1.get();
  EXPECT_TRUE(missed.deadline_missed);
  EXPECT_TRUE(missed.degraded);
  EXPECT_GT(missed.total_deadline_skipped(), 0u);
  // Conservative, never wrong: every read comes back (skipped ones
  // unmodified), and any read it did change matches the reference.
  ASSERT_EQ(missed.corrected.size(), reads.size());
  for (std::size_t i = 0; i < missed.corrected.size(); ++i) {
    const seq::Read& got = missed.corrected[i];
    if (got.bases != reads[i].bases) {
      EXPECT_EQ(got.bases, reference.corrected[i].bases)
          << "read " << got.number;
    }
  }

  JobReport clean = f2.get();
  EXPECT_FALSE(clean.degraded);
  EXPECT_FALSE(clean.deadline_missed);
  expect_same_reads(clean.corrected, reference.corrected);

  server.shutdown();
  EXPECT_EQ(server.stats().jobs_completed, 2u);
  EXPECT_EQ(server.stats().jobs_degraded, 1u);
}

// ---- inputs and lifecycle --------------------------------------------------

TEST(ServeInputs, FileJobsMatchInMemoryJobs) {
  namespace fs = std::filesystem;
  const std::vector<seq::Read> reads = dataset(77, 400);
  const fs::path dir = fs::temp_directory_path() / "reptile_serve_test";
  fs::create_directories(dir);
  seq::write_read_files(dir / "job.fa", dir / "job.qual", reads);

  CorrectionServer server(reads, base_config(2));
  JobRequest memory_job;
  memory_job.reads = reads;
  JobRequest file_job;
  file_job.fasta = dir / "job.fa";
  file_job.qual = dir / "job.qual";
  auto f1 = server.submit(std::move(memory_job));
  auto f2 = server.submit(std::move(file_job));
  const JobReport from_memory = f1.get();
  const JobReport from_files = f2.get();
  expect_same_reads(from_files.corrected, from_memory.corrected);
  server.shutdown();
}

TEST(ServeInputs, FastaWithoutQualIsRejected) {
  const std::vector<seq::Read> reads = dataset(77, 200);
  CorrectionServer server(reads, base_config(2));
  JobRequest bad;
  bad.fasta = "only.fa";
  EXPECT_THROW(server.submit(std::move(bad)), std::invalid_argument);
  server.shutdown();
}

TEST(ServeInputs, EmptyJobCompletes) {
  const std::vector<seq::Read> reads = dataset(77, 200);
  CorrectionServer server(reads, base_config(2));
  JobRequest empty;
  const JobReport report = server.submit(std::move(empty)).get();
  EXPECT_TRUE(report.corrected.empty());
  EXPECT_FALSE(report.degraded);
  server.shutdown();
}

TEST(ServeLifecycle, SubmitAfterShutdownIsRefused) {
  const std::vector<seq::Read> reads = dataset(77, 200);
  CorrectionServer server(reads, base_config(2));
  server.shutdown();
  server.shutdown();  // idempotent

  JobRequest late;
  late.reads = reads;
  EXPECT_THROW(server.submit(std::move(late)), std::runtime_error);

  JobRequest probed;
  probed.reads = reads;
  EXPECT_FALSE(server.try_submit(probed).has_value());
  EXPECT_EQ(probed.reads.size(), reads.size());  // handed back intact
  EXPECT_EQ(server.stats().jobs_rejected, 1u);
}

TEST(ServeLifecycle, DestructorDrainsSubmittedJobs) {
  const std::vector<seq::Read> reads = dataset(77, 400);
  std::future<JobReport> pending;
  {
    CorrectionServer server(reads, base_config(2));
    JobRequest request;
    request.reads = reads;
    pending = server.submit(std::move(request));
  }  // dtor: close, drain, shutdown announce, join
  EXPECT_EQ(pending.get().corrected.size(), reads.size());
}

TEST(ServeLifecycle, LossyChaosPlanIsRejected) {
  DistConfig config = base_config(2);
  config.run_options.chaos.seed = 7;
  config.run_options.chaos.drop_rate = 0.01;
  config.retry.timeout_ticks = 2;  // valid for one-shot...
  EXPECT_THROW(CorrectionServer(dataset(77, 100), config),
               std::invalid_argument);  // ...but not for serve control tags
}

TEST(ServeLifecycle, SingleRankServerWorks) {
  const std::vector<seq::Read> reads = dataset(77, 400);
  const DistConfig config = base_config(1);
  const DistResult reference = run_distributed(reads, config);
  CorrectionServer server(reads, config);
  JobRequest request;
  request.reads = reads;
  expect_same_reads(server.submit(std::move(request)).get().corrected,
                    reference.corrected);
  server.shutdown();
  EXPECT_EQ(server.stats().spectrum_builds, 1u);
}

}  // namespace
}  // namespace reptile::parallel
