// Unit tests: summary statistics, accuracy scoring, text tables.
#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "stats/accuracy.hpp"
#include "stats/table.hpp"

namespace reptile::stats {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize(std::span<const double>{});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, BasicMoments) {
  const double v[] = {2, 4, 4, 4, 5, 5, 7, 9};
  const Summary s = summarize(std::span<const double>(v));
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);
}

TEST(Summary, SpreadAndImbalance) {
  const std::uint64_t v[] = {90, 100, 110};
  const Summary s = summarize(std::span<const std::uint64_t>(v));
  EXPECT_NEAR(s.relative_spread(), 0.2, 1e-9);
  EXPECT_NEAR(s.imbalance(), 1.1, 1e-9);
}

TEST(Accuracy, PerfectCorrection) {
  std::vector<seq::Read> observed{{1, "ACGA", {30, 30, 30, 30}}};
  std::vector<seq::Read> corrected{{1, "ACGT", {30, 30, 30, 30}}};
  std::vector<std::string> truth{"ACGT"};
  const auto rep = score_correction(observed, corrected, truth);
  EXPECT_EQ(rep.true_positives, 1u);
  EXPECT_EQ(rep.false_positives, 0u);
  EXPECT_EQ(rep.false_negatives, 0u);
  EXPECT_EQ(rep.reads_fully_fixed, 1u);
  EXPECT_DOUBLE_EQ(rep.sensitivity(), 1.0);
  EXPECT_DOUBLE_EQ(rep.gain(), 1.0);
}

TEST(Accuracy, MiscorrectionCountsAsFalsePositive) {
  std::vector<seq::Read> observed{{1, "ACGT", {30, 30, 30, 30}}};
  std::vector<seq::Read> corrected{{1, "ACGA", {30, 30, 30, 30}}};
  std::vector<std::string> truth{"ACGT"};
  const auto rep = score_correction(observed, corrected, truth);
  EXPECT_EQ(rep.true_positives, 0u);
  EXPECT_EQ(rep.false_positives, 1u);
  EXPECT_EQ(rep.reads_changed, 1u);
  EXPECT_DOUBLE_EQ(rep.gain(), -1.0);  // only breaking things
}

TEST(Accuracy, UncorrectedErrorIsFalseNegative) {
  std::vector<seq::Read> observed{{1, "ACGA", {30, 30, 30, 30}}};
  std::vector<seq::Read> corrected{{1, "ACGA", {30, 30, 30, 30}}};
  std::vector<std::string> truth{"ACGT"};
  const auto rep = score_correction(observed, corrected, truth);
  EXPECT_EQ(rep.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(rep.sensitivity(), 0.0);
  EXPECT_EQ(rep.reads_changed, 0u);
}

TEST(Accuracy, NoErrorsNoChangesIsPerfect) {
  std::vector<seq::Read> observed{{1, "ACGT", {30, 30, 30, 30}}};
  const auto rep = score_correction(observed, observed, {"ACGT"});
  EXPECT_DOUBLE_EQ(rep.sensitivity(), 1.0);
  EXPECT_DOUBLE_EQ(rep.gain(), 1.0);
}

TEST(TextTable, AlignsColumnsAndRendersCsv) {
  TextTable t({"name", "value"});
  t.row().cell("alpha").cell(12);
  t.row().cell("b").cell_fixed(3.14159, 2);
  std::ostringstream os;
  t.print(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_csv(), "name,value\nalpha,12\nb,3.14\n");
}

}  // namespace
}  // namespace reptile::stats
