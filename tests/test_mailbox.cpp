// Unit tests: mailbox matching semantics (the MPI envelope model).
#include "rtm/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace reptile::rtm {
namespace {

Message msg(int src, int tag, std::uint64_t value = 0) {
  return Message::of_value(src, tag, value);
}

TEST(Message, PayloadRoundTrip) {
  const std::vector<std::uint64_t> items{1, 2, 3};
  const Message m =
      Message::of<std::uint64_t>(3, 7, std::span<const std::uint64_t>(items));
  EXPECT_EQ(m.source, 3);
  EXPECT_EQ(m.tag, 7);
  EXPECT_EQ(m.as<std::uint64_t>(), items);
  EXPECT_EQ(m.info().bytes, 24u);
}

TEST(Message, SingleValueRoundTrip) {
  const Message m = Message::of_value(0, 1, 0xDEADBEEFull);
  EXPECT_EQ(m.as_value<std::uint64_t>(), 0xDEADBEEFull);
}

TEST(Mailbox, FifoWithinMatch) {
  Mailbox mb;
  mb.push(msg(1, 5, 10));
  mb.push(msg(1, 5, 11));
  EXPECT_EQ(mb.try_pop(1, 5)->as_value<std::uint64_t>(), 10u);
  EXPECT_EQ(mb.try_pop(1, 5)->as_value<std::uint64_t>(), 11u);
  EXPECT_FALSE(mb.try_pop(1, 5));
}

TEST(Mailbox, SelectiveMatchSkipsNonMatching) {
  Mailbox mb;
  mb.push(msg(1, 5));
  mb.push(msg(2, 6, 42));
  // Pop (2, 6) first even though (1, 5) arrived earlier.
  const auto m = mb.try_pop(2, 6);
  ASSERT_TRUE(m);
  EXPECT_EQ(m->as_value<std::uint64_t>(), 42u);
  EXPECT_EQ(mb.size(), 1u);
}

TEST(Mailbox, WildcardsMatchAnything) {
  Mailbox mb;
  mb.push(msg(3, 9));
  EXPECT_TRUE(mb.probe(kAnySource, kAnyTag));
  EXPECT_TRUE(mb.probe(3, kAnyTag));
  EXPECT_TRUE(mb.probe(kAnySource, 9));
  EXPECT_FALSE(mb.probe(4, kAnyTag));
  EXPECT_FALSE(mb.probe(kAnySource, 8));
  EXPECT_TRUE(mb.try_pop(kAnySource, kAnyTag));
}

TEST(Mailbox, WildcardPopsInterleavedWithSelectiveKeepStreamFifo) {
  // The non-overtaking guarantee is per (source, tag) stream. Mixing
  // wildcard pops with selective ones must still deliver each stream in
  // push order: a wildcard pop takes the overall-oldest matching message,
  // so it can never skip ahead within a stream.
  Mailbox mb;
  mb.push(msg(1, 5, 10));  // stream A
  mb.push(msg(2, 6, 20));  // stream B
  mb.push(msg(1, 5, 11));  // stream A
  mb.push(msg(2, 6, 21));  // stream B
  mb.push(msg(1, 7, 30));  // stream C

  // Wildcard-any takes the overall head: stream A's first message.
  EXPECT_EQ(mb.try_pop(kAnySource, kAnyTag)->as_value<std::uint64_t>(), 10u);
  // Selective pop on stream B takes B's head, leaving stream A untouched.
  EXPECT_EQ(mb.try_pop(2, 6)->as_value<std::uint64_t>(), 20u);
  // Source-wildcard on tag 5 now finds stream A's second message.
  EXPECT_EQ(mb.try_pop(kAnySource, 5)->as_value<std::uint64_t>(), 11u);
  // Tag-wildcard on source 2 finds stream B's second message.
  EXPECT_EQ(mb.try_pop(2, kAnyTag)->as_value<std::uint64_t>(), 21u);
  // The stragglers drain in order with a final full wildcard.
  EXPECT_EQ(mb.try_pop(kAnySource, kAnyTag)->as_value<std::uint64_t>(), 30u);
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, WildcardDrainObservesPerStreamOrder) {
  // Two interleaved streams drained purely by wildcard pops: each stream's
  // values must appear in increasing order even though the streams mix.
  Mailbox mb;
  for (int i = 0; i < 8; ++i) {
    mb.push(msg(i % 2, 40 + i % 2, static_cast<std::uint64_t>(i)));
  }
  std::uint64_t last_even = 0, last_odd = 0;
  bool first_even = true, first_odd = true;
  for (int i = 0; i < 8; ++i) {
    const auto m = mb.try_pop(kAnySource, kAnyTag);
    ASSERT_TRUE(m);
    const auto v = m->as_value<std::uint64_t>();
    if (m->source == 0) {
      if (!first_even) {
        EXPECT_GT(v, last_even);
      }
      last_even = v;
      first_even = false;
    } else {
      if (!first_odd) {
        EXPECT_GT(v, last_odd);
      }
      last_odd = v;
      first_odd = false;
    }
  }
  EXPECT_EQ(mb.size(), 0u);
}

TEST(Mailbox, ProbeDoesNotConsume) {
  Mailbox mb;
  mb.push(msg(1, 2));
  EXPECT_TRUE(mb.probe(1, 2));
  EXPECT_TRUE(mb.probe(1, 2));
  EXPECT_EQ(mb.size(), 1u);
  const auto info = mb.probe(1, 2);
  EXPECT_EQ(info->source, 1);
  EXPECT_EQ(info->tag, 2);
}

TEST(Mailbox, BlockingPopWakesOnPush) {
  Mailbox mb;
  std::thread producer([&mb] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    mb.push(msg(0, 1, 77));
  });
  const Message m = mb.pop(0, 1);
  EXPECT_EQ(m.as_value<std::uint64_t>(), 77u);
  producer.join();
}

TEST(Mailbox, PopMatchForTimesOut) {
  Mailbox mb;
  mb.push(msg(0, 99));
  const auto m = mb.pop_match_for(
      [](const Message& m) { return m.tag == 1; },
      std::chrono::milliseconds(10));
  EXPECT_FALSE(m);
  EXPECT_EQ(mb.size(), 1u);  // non-matching message untouched
}

TEST(Mailbox, PopMatchForFindsLaterArrival) {
  Mailbox mb;
  std::thread producer([&mb] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    mb.push(msg(2, 42, 5));
  });
  const auto m = mb.pop_match_for(
      [](const Message& m) { return m.tag == 42; },
      std::chrono::seconds(5));
  ASSERT_TRUE(m);
  EXPECT_EQ(m->source, 2);
  producer.join();
}

TEST(Mailbox, ConcurrentSelectivePopsDoNotSteal) {
  // A "worker" popping replies and a "server" popping requests must never
  // take each other's messages.
  Mailbox mb;
  constexpr int kEach = 2000;
  constexpr int kReqTag = 1, kRepTag = 2;
  std::thread pusher([&mb] {
    for (int i = 0; i < kEach; ++i) {
      mb.push(msg(0, kReqTag, static_cast<std::uint64_t>(i)));
      mb.push(msg(0, kRepTag, static_cast<std::uint64_t>(i)));
    }
  });
  int reqs = 0, reps = 0;
  std::thread server([&] {
    while (reqs < kEach) {
      if (auto m = mb.try_pop(kAnySource, kReqTag)) {
        EXPECT_EQ(m->tag, kReqTag);
        ++reqs;
      }
    }
  });
  while (reps < kEach) {
    if (auto m = mb.try_pop(kAnySource, kRepTag)) {
      EXPECT_EQ(m->tag, kRepTag);
      ++reps;
    }
  }
  pusher.join();
  server.join();
  EXPECT_TRUE(mb.empty());
}

}  // namespace
}  // namespace reptile::rtm
