// Integration tests: sequential Reptile end to end on synthetic datasets —
// the corrector must actually remove most injected errors without breaking
// correct bases.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "seq/dataset.hpp"
#include "stats/accuracy.hpp"

namespace reptile::core {
namespace {

CorrectorParams default_params() {
  CorrectorParams p;
  p.k = 12;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  return p;
}

seq::SyntheticDataset high_coverage_dataset(std::uint64_t seed) {
  seq::DatasetSpec spec{"mini", 4000, 80, 4000};  // 80X coverage
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.003;
  errors.error_rate_end = 0.01;
  return seq::SyntheticDataset::generate(spec, errors, seed);
}

TEST(SequentialPipeline, CorrectsMostErrorsAtHighCoverage) {
  const auto ds = high_coverage_dataset(1);
  ASSERT_GT(ds.total_errors, 100u);
  const auto result = run_sequential(ds.reads, default_params());
  const auto acc =
      stats::score_correction(ds.reads, result.corrected, ds.truth);
  EXPECT_GT(acc.sensitivity(), 0.80);
  EXPECT_GT(acc.gain(), 0.75);
  EXPECT_GT(result.reads_changed, 0u);
}

TEST(SequentialPipeline, ErrorFreeInputStaysUntouched) {
  seq::DatasetSpec spec{"clean", 2000, 80, 3000};
  seq::ErrorModelParams no_errors;
  no_errors.error_rate_start = 0;
  no_errors.error_rate_end = 0;
  const auto ds = seq::SyntheticDataset::generate(spec, no_errors, 2);
  const auto result = run_sequential(ds.reads, default_params());
  const auto acc =
      stats::score_correction(ds.reads, result.corrected, ds.truth);
  EXPECT_EQ(acc.false_positives, 0u);
  EXPECT_EQ(result.substitutions, 0u);
}

TEST(SequentialPipeline, PreservesReadOrderAndCount) {
  const auto ds = high_coverage_dataset(3);
  const auto result = run_sequential(ds.reads, default_params());
  ASSERT_EQ(result.corrected.size(), ds.reads.size());
  for (std::size_t i = 0; i < ds.reads.size(); ++i) {
    EXPECT_EQ(result.corrected[i].number, ds.reads[i].number);
    EXPECT_EQ(result.corrected[i].bases.size(), ds.reads[i].bases.size());
  }
}

TEST(SequentialPipeline, ReportsSpectrumAndLookupStats) {
  const auto ds = high_coverage_dataset(4);
  const auto result = run_sequential(ds.reads, default_params());
  EXPECT_GT(result.kmer_entries, 0u);
  EXPECT_GT(result.tile_entries, 0u);
  EXPECT_GT(result.spectrum_bytes, 0u);
  EXPECT_GT(result.lookups.tile_lookups, ds.reads.size());
  // Most candidate tiles do not exist in the spectrum — the effect the
  // paper blames for the dominant tile-communication time.
  EXPECT_GT(result.lookups.tile_misses, result.lookups.tile_lookups / 4);
}

TEST(SequentialPipeline, ChunkSizeDoesNotChangeOutput) {
  const auto ds = high_coverage_dataset(5);
  auto p1 = default_params();
  p1.chunk_size = 64;
  auto p2 = default_params();
  p2.chunk_size = 4096;
  const auto r1 = run_sequential(ds.reads, p1);
  const auto r2 = run_sequential(ds.reads, p2);
  EXPECT_EQ(r1.corrected, r2.corrected);
}

TEST(SequentialPipeline, CanonicalModeAlsoCorrects) {
  auto p = default_params();
  p.canonical = true;
  const auto ds = high_coverage_dataset(6);
  const auto result = run_sequential(ds.reads, p);
  const auto acc =
      stats::score_correction(ds.reads, result.corrected, ds.truth);
  EXPECT_GT(acc.sensitivity(), 0.7);
  EXPECT_GT(acc.gain(), 0.6);
}

TEST(SequentialPipeline, HigherThresholdShrinksSpectrum) {
  const auto ds = high_coverage_dataset(7);
  auto lo = default_params();
  lo.kmer_threshold = 2;
  lo.tile_threshold = 2;
  auto hi = default_params();
  hi.kmer_threshold = 8;
  hi.tile_threshold = 8;
  const auto rlo = run_sequential(ds.reads, lo);
  const auto rhi = run_sequential(ds.reads, hi);
  EXPECT_LT(rhi.kmer_entries, rlo.kmer_entries);
  EXPECT_LT(rhi.tile_entries, rlo.tile_entries);
}

}  // namespace
}  // namespace reptile::core
