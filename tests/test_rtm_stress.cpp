// Stress tests: the runtime under adversarial interleavings — heavy
// cross-traffic, collectives mixed with point-to-point, repeated phase
// cycles, and termination at scale.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "rtm/comm.hpp"
#include "rtm_test_seed.hpp"
#include "seq/rng.hpp"

namespace reptile::rtm {
namespace {

// Prints the base seed + a one-line replay command on any failure.
const bool kSeedReporter = rtm_test::install_seed_reporter("test_rtm_stress");

TEST(RtmStress, AllToAllPointToPointStorm) {
  // Every rank sends a numbered message stream to every other rank, then
  // receives and validates all streams (per-source FIFO must hold).
  constexpr int kRanks = 12;
  constexpr int kMessages = 120;
  run_world({kRanks, 4}, [](Comm& comm) {
    for (int dst = 0; dst < comm.size(); ++dst) {
      if (dst == comm.rank()) continue;
      for (int m = 0; m < kMessages; ++m) {
        comm.send_value(dst, 7, static_cast<std::uint64_t>(m));
      }
    }
    for (int src = 0; src < comm.size(); ++src) {
      if (src == comm.rank()) continue;
      for (int m = 0; m < kMessages; ++m) {
        const Message msg = comm.recv(src, 7);
        ASSERT_EQ(msg.as_value<std::uint64_t>(),
                  static_cast<std::uint64_t>(m))
            << "src " << src;
      }
    }
    comm.barrier();
    EXPECT_EQ(comm.pending(), 0u);
  });
}

TEST(RtmStress, CollectivesInterleavedWithPointToPoint) {
  // Queued p2p messages must survive collectives untouched.
  constexpr int kRanks = 6;
  run_world({kRanks, 2}, [](Comm& comm) {
    const int peer = (comm.rank() + 1) % comm.size();
    comm.send_value(peer, 42, static_cast<std::uint64_t>(comm.rank()));
    for (int round = 0; round < 8; ++round) {
      const auto sum = comm.allreduce_sum<std::uint64_t>(1);
      ASSERT_EQ(sum, static_cast<std::uint64_t>(kRanks));
      std::vector<std::vector<int>> send(kRanks,
                                         std::vector<int>{round});
      const auto recv = comm.alltoallv(send);
      for (const auto& part : recv) ASSERT_EQ(part[0], round);
    }
    const int prev = (comm.rank() + comm.size() - 1) % comm.size();
    const Message m = comm.recv(prev, 42);
    EXPECT_EQ(m.as_value<std::uint64_t>(), static_cast<std::uint64_t>(prev));
  });
}

TEST(RtmStress, ManyPhaseCyclesWithServerThreads) {
  // Repeated correction-phase lifecycles: reset -> serve -> done -> join.
  constexpr int kRanks = 6;
  run_world({kRanks, 2}, [](Comm& comm) {
    for (int phase = 0; phase < 10; ++phase) {
      comm.reset_done();
      std::atomic<int> served{0};
      std::thread server([&comm, &served] {
        while (!comm.all_done()) {
          if (auto m = comm.try_recv(kAnySource, 5)) {
            comm.send_value(m->source, 6,
                            m->as_value<std::uint64_t>() + 1);
            served.fetch_add(1);
          } else {
            std::this_thread::yield();
          }
        }
        while (auto m = comm.try_recv(kAnySource, 5)) {
          comm.send_value(m->source, 6, m->as_value<std::uint64_t>() + 1);
          served.fetch_add(1);
        }
      });
      // Each rank queries a few random peers.
      seq::Rng rng(rtm_test::derive(
          static_cast<std::uint64_t>(comm.rank() * 100 + phase)));
      for (int q = 0; q < 20; ++q) {
        const int peer = static_cast<int>(
            rng.below(static_cast<std::uint64_t>(comm.size())));
        if (peer == comm.rank()) continue;
        comm.send_value(peer, 5, static_cast<std::uint64_t>(q));
        const Message reply = comm.recv(peer, 6);
        ASSERT_EQ(reply.as_value<std::uint64_t>(),
                  static_cast<std::uint64_t>(q + 1));
      }
      comm.signal_done();
      server.join();
      comm.barrier();
      ASSERT_EQ(comm.pending(), 0u) << "phase " << phase;
    }
  });
}

TEST(RtmStress, LargePayloadsSurviveIntact) {
  run_world({2, 1}, [](Comm& comm) {
    constexpr std::size_t kWords = 1 << 18;  // 2 MB payload
    if (comm.rank() == 0) {
      std::vector<std::uint64_t> payload(kWords);
      seq::Rng rng(rtm_test::derive(1));
      for (auto& w : payload) w = rng.next();
      comm.send<std::uint64_t>(1, 9,
                               std::span<const std::uint64_t>(payload));
      const Message echo = comm.recv(1, 10);
      EXPECT_EQ(echo.as<std::uint64_t>(), payload);
    } else {
      const Message m = comm.recv(0, 9);
      const auto words = m.as<std::uint64_t>();
      ASSERT_EQ(words.size(), kWords);
      comm.send<std::uint64_t>(0, 10, std::span<const std::uint64_t>(words));
    }
  });
}

TEST(RtmStress, SixtyFourRanksBarrierAndReduce) {
  // The largest functional configuration the test suite exercises.
  run_world({64, 32}, [](Comm& comm) {
    for (int round = 0; round < 3; ++round) {
      const auto sum = comm.allreduce_sum<std::uint64_t>(
          static_cast<std::uint64_t>(comm.rank()));
      ASSERT_EQ(sum, 64ull * 63 / 2);
      comm.barrier();
    }
  });
}

}  // namespace
}  // namespace reptile::rtm
