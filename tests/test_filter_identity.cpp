// End-to-end identity for the filter exchange (filter_lookups heuristic):
// consulting a peer's Bloom filter before the wire may only change WHERE a
// definitive absence is discovered, never a single corrected byte. The
// sweep runs filtered corrections across dataset seeds x scalar/batched x
// 1-4 ranks against the sequential oracle (which the unfiltered runs
// already match, so agreement here IS filtered==unfiltered byte-identity),
// then pins the counters: definite absences answered locally, fewer remote
// requests, zero cost when the flag is off.
#include <gtest/gtest.h>

#include <map>

#include "core/pipeline.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams test_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 64;
  return p;
}

const seq::SyntheticDataset& dataset(std::uint64_t seed) {
  static std::map<std::uint64_t, seq::SyntheticDataset> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    seq::DatasetSpec spec{"filter", 1000, 70, 1800};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.005;
    errors.error_rate_end = 0.012;
    it = cache
             .emplace(seed,
                      seq::SyntheticDataset::generate(spec, errors, seed))
             .first;
  }
  return it->second;
}

const core::SequentialResult& sequential_reference(std::uint64_t seed) {
  static std::map<std::uint64_t, core::SequentialResult> cache;
  auto it = cache.find(seed);
  if (it == cache.end()) {
    it = cache
             .emplace(seed, core::run_sequential(dataset(seed).reads,
                                                 test_params()))
             .first;
  }
  return it->second;
}

void expect_identical_to_sequential(const DistResult& result,
                                    std::uint64_t seed) {
  const auto& ref = sequential_reference(seed);
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].number, ref.corrected[i].number);
    ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases)
        << "read " << ref.corrected[i].number;
  }
  EXPECT_EQ(result.total_substitutions(), ref.substitutions);
}

// ---- the identity sweep ----------------------------------------------------

struct FilterCase {
  const char* name;
  std::uint64_t seed;
  int ranks;
  bool batched;
};

class FilteredIdentity : public ::testing::TestWithParam<FilterCase> {};

TEST_P(FilteredIdentity, MatchesSequential) {
  const FilterCase& c = GetParam();
  DistConfig config;
  config.params = test_params();
  config.ranks = c.ranks;
  config.ranks_per_node = 2;
  config.heuristics.batch_lookups = c.batched;
  config.heuristics.filter_lookups = true;
  const auto result = run_distributed(dataset(c.seed).reads, config);
  expect_identical_to_sequential(result, c.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FilteredIdentity,
    ::testing::Values(
        FilterCase{"s1_r1_scalar", 4242, 1, false},
        FilterCase{"s1_r2_scalar", 4242, 2, false},
        FilterCase{"s1_r4_scalar", 4242, 4, false},
        FilterCase{"s1_r2_batched", 4242, 2, true},
        FilterCase{"s1_r4_batched", 4242, 4, true},
        FilterCase{"s2_r2_scalar", 97, 2, false},
        FilterCase{"s2_r4_scalar", 97, 4, false},
        FilterCase{"s2_r4_batched", 97, 4, true},
        FilterCase{"s3_r3_scalar", 12345, 3, false},
        FilterCase{"s3_r3_batched", 12345, 3, true}),
    [](const ::testing::TestParamInfo<FilterCase>& info) {
      return info.param.name;
    });

// The filter must also compose with every lookup heuristic it can meet.
TEST(FilteredIdentity, ComposesWithLookupHeuristics) {
  struct Combo {
    const char* name;
    Heuristics heur;
  };
  std::vector<Combo> combos;
  {
    Heuristics h;
    h.read_kmers = true;
    combos.push_back({"read_kmers", h});
  }
  {
    Heuristics h;
    h.universal = true;
    combos.push_back({"universal", h});
  }
  {
    Heuristics h;
    h.read_kmers = true;
    h.add_remote = true;
    combos.push_back({"add_remote", h});
  }
  {
    Heuristics h;
    h.partial_replication_group = 2;
    combos.push_back({"partial_repl", h});
  }
  {
    // Fully replicated k-mers: only the tile filter is exchanged.
    Heuristics h;
    h.allgather_kmers = true;
    combos.push_back({"allgather_kmers", h});
  }
  for (const auto& combo : combos) {
    DistConfig config;
    config.params = test_params();
    config.ranks = 4;
    config.ranks_per_node = 2;
    config.heuristics = combo.heur;
    config.heuristics.filter_lookups = true;
    const auto result = run_distributed(dataset(4242).reads, config);
    expect_identical_to_sequential(result, 4242);
  }
}

// ---- counters --------------------------------------------------------------

TEST(FilterCounters, AbsencesAnsweredLocallyAndTrafficDrops) {
  for (const bool batched : {false, true}) {
    DistConfig config;
    config.params = test_params();
    config.ranks = 4;
    config.heuristics.batch_lookups = batched;
    const auto plain = run_distributed(dataset(4242).reads, config);
    config.heuristics.filter_lookups = true;
    const auto filtered = run_distributed(dataset(4242).reads, config);

    std::uint64_t plain_remote = 0, filtered_remote = 0;
    std::uint64_t neg_hits = 0, false_positives = 0;
    std::uint64_t plain_ids = 0, filtered_ids = 0;
    std::size_t filter_bytes = 0;
    for (const auto& r : plain.ranks) {
      plain_remote += r.remote.remote_lookups();
      plain_ids += r.remote.batch_ids();
      EXPECT_EQ(r.remote.filter_neg_hits, 0u);
      EXPECT_EQ(r.remote.filter_false_positives, 0u);
      EXPECT_EQ(r.footprint_after_correction.filter_bytes, 0u);
    }
    for (const auto& r : filtered.ranks) {
      filtered_remote += r.remote.remote_lookups();
      filtered_ids += r.remote.batch_ids();
      neg_hits += r.remote.filter_neg_hits;
      false_positives += r.remote.filter_false_positives;
      filter_bytes += r.footprint_after_correction.filter_bytes;
    }
    // Definite absences are caught locally...
    EXPECT_GT(neg_hits, 0u) << (batched ? "batched" : "scalar");
    // ...so remote traffic shrinks: scalar round trips always, and in
    // batched mode the vectored ID streams shrink too.
    EXPECT_LT(filtered_remote, plain_remote);
    if (batched) {
      EXPECT_LT(filtered_ids, plain_ids);
    }
    // A false positive is a wasted round trip, never an absence answered
    // wrongly — there must be far fewer of them than local absences.
    EXPECT_LT(false_positives, neg_hits);
    // Peer filters occupy accounted memory on at least one rank.
    EXPECT_GT(filter_bytes, 0u);
  }
}

TEST(FilterCounters, OffByDefaultCostsNothing) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 2;
  EXPECT_FALSE(config.heuristics.filter_lookups);
  const auto result = run_distributed(dataset(97).reads, config);
  expect_identical_to_sequential(result, 97);
  for (const auto& r : result.ranks) {
    EXPECT_EQ(r.remote.filter_neg_hits, 0u);
    EXPECT_EQ(r.remote.filter_false_positives, 0u);
    EXPECT_EQ(r.footprint_after_correction.filter_bytes, 0u);
    EXPECT_EQ(r.service.filter_stragglers, 0u);
  }
}

TEST(FilterCounters, SingleRankExchangesNothing) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 1;
  config.heuristics.filter_lookups = true;
  const auto result = run_distributed(dataset(4242).reads, config);
  expect_identical_to_sequential(result, 4242);
  for (const auto& r : result.ranks) {
    EXPECT_EQ(r.remote.filter_neg_hits, 0u);
    EXPECT_EQ(r.footprint_after_correction.filter_bytes, 0u);
  }
}

// ---- configuration surface -------------------------------------------------

TEST(FilterConfig, FpRateValidatedAndLabelled) {
  Heuristics h;
  h.filter_lookups = true;
  EXPECT_NO_THROW(h.validate());
  EXPECT_NE(h.label().find("filter"), std::string::npos);
  h.filter_lookups = false;
  EXPECT_EQ(h.label().find("filter"), std::string::npos);

  h.filter_fp_rate = 0.0;
  EXPECT_THROW(h.validate(), std::invalid_argument);
  h.filter_fp_rate = 0.5;
  EXPECT_THROW(h.validate(), std::invalid_argument);
  h.filter_fp_rate = 0.25;
  EXPECT_NO_THROW(h.validate());
}

}  // namespace
}  // namespace reptile::parallel
