// Chaos tier for the filter exchange: the exchange is BEST EFFORT, so every
// fault the injector can deal it — dropped frames, truncated payloads,
// stalls — may only push a peer back onto the unfiltered wire path. The
// failure mode that must be impossible is a garbled filter being *trusted*:
// that could fake a false negative and silently miscorrect a read. The unit
// tests drive the exchange itself under total loss/corruption; the pipeline
// tests rerun the fault-injection never-miscorrect contract with filters on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/pipeline.hpp"
#include "parallel/dist_pipeline.hpp"
#include "parallel/dist_spectrum.hpp"
#include "rtm/comm.hpp"
#include "seq/dataset.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams chaos_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.chunk_size = 64;
  return p;
}

const seq::SyntheticDataset& chaos_dataset() {
  static const seq::SyntheticDataset ds = [] {
    seq::DatasetSpec spec{"filter-chaos", 500, 60, 1000};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.005;
    errors.error_rate_end = 0.012;
    return seq::SyntheticDataset::generate(spec, errors, 29);
  }();
  return ds;
}

// ---- exchange under total corruption / loss --------------------------------

TEST(FilterChaos, TruncatedExchangeDegradesToUnfilteredWirePath) {
  // truncate_rate = 1.0 garbles EVERY filter frame to a strict prefix.
  // Every prefix is rejected by the decoder (test_owner_filter pins this),
  // so each slot must stay null — kNoFilter, meaning "ask the owner" — and
  // the exchange must still terminate on the blocking no-retry path,
  // because truncated frames are delivered, not lost.
  rtm::RunOptions options;
  options.chaos.seed = 31;
  options.chaos.truncate_rate = 1.0;
  rtm::run_world(
      {2, 1},
      [&](rtm::Comm& comm) {
        Heuristics h;
        h.filter_lookups = true;
        DistSpectrum spectrum(chaos_params(), h, comm);
        // Local adds only: the Step-III alltoallv would be garbled by the
        // same total-truncation plan, and the exchange under test builds
        // its filters from whatever the owned tables hold.
        for (std::size_t i = 0; i < 100; ++i) {
          spectrum.add_read(chaos_dataset().reads[i].bases);
        }
        spectrum.exchange_filters(RetryPolicy{});
        EXPECT_EQ(spectrum.filter_bytes(), 0u);
        const int peer = 1 - comm.rank();
        for (std::uint64_t id = 0; id < 64; ++id) {
          EXPECT_EQ(spectrum.filter_kmer(id, peer),
                    DistSpectrum::FilterAnswer::kNoFilter);
          EXPECT_EQ(spectrum.filter_tile(id, peer),
                    DistSpectrum::FilterAnswer::kNoFilter);
        }
        comm.barrier();
      },
      options);
}

TEST(FilterChaos, DroppedExchangeTimesOutAndLeavesSlotsNull) {
  // drop_rate = 1.0 loses every frame. Best effort means no retransmit:
  // the retry-armed collection must give up within its shared budget and
  // leave every slot null instead of hanging the rank.
  rtm::RunOptions options;
  options.chaos.seed = 37;
  options.chaos.drop_rate = 1.0;
  rtm::run_world(
      {2, 1},
      [&](rtm::Comm& comm) {
        Heuristics h;
        h.filter_lookups = true;
        DistSpectrum spectrum(chaos_params(), h, comm);
        for (std::size_t i = 0; i < 100; ++i) {
          spectrum.add_read(chaos_dataset().reads[i].bases);
        }
        RetryPolicy retry;
        retry.timeout_ticks = 2;
        retry.max_retries = 2;
        spectrum.exchange_filters(retry);
        EXPECT_EQ(spectrum.filter_bytes(), 0u);
        const int peer = 1 - comm.rank();
        EXPECT_EQ(spectrum.filter_kmer(1, peer),
                  DistSpectrum::FilterAnswer::kNoFilter);
        comm.barrier();
      },
      options);
}

// ---- full pipeline under a lossy plan --------------------------------------

/// The fault-injection contract (DESIGN.md §4d) with filters in the mix:
/// degraded evidence may make the corrector SKIP a substitution the
/// sequential baseline applies, never invent one it does not.
void expect_never_miscorrects(const DistResult& result,
                              const core::SequentialResult& ref) {
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  std::uint64_t degraded_tiles = 0;
  for (const auto& r : result.ranks) {
    degraded_tiles += r.tiles_degraded;
    EXPECT_EQ(r.check.fifo_violations, 0u) << "rank " << r.rank;
    // Best-effort filter frames lost to chaos are audited as stale leaks,
    // never as protocol leaks or orphans.
    EXPECT_EQ(r.check.leaked_messages, 0u) << "rank " << r.rank;
    EXPECT_EQ(r.check.orphaned_replies, 0u) << "rank " << r.rank;
  }
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].number, ref.corrected[i].number);
    if (result.corrected[i].bases == ref.corrected[i].bases) continue;
    ++divergent;
    const std::string& original = chaos_dataset().reads[i].bases;
    const std::string& seq_fixed = ref.corrected[i].bases;
    const std::string& dist = result.corrected[i].bases;
    ASSERT_EQ(dist.size(), seq_fixed.size());
    for (std::size_t b = 0; b < dist.size(); ++b) {
      if (dist[b] != seq_fixed[b]) {
        EXPECT_EQ(dist[b], original[b])
            << "read " << ref.corrected[i].number << " base " << b
            << ": filtered chaos run invented a substitution";
      }
    }
  }
  if (degraded_tiles == 0) {
    EXPECT_EQ(divergent, 0u);
    EXPECT_EQ(result.total_substitutions(), ref.substitutions);
  }
  EXPECT_LE(result.total_substitutions(), ref.substitutions);
}

TEST(FilterChaos, LossyPipelineWithFiltersNeverMiscorrects) {
  const auto ref = core::run_sequential(chaos_dataset().reads, chaos_params());
  for (const bool batched : {false, true}) {
    DistConfig config;
    config.params = chaos_params();
    config.ranks = 4;
    config.heuristics.filter_lookups = true;
    config.heuristics.batch_lookups = batched;
    config.run_options.chaos.seed = 101;
    config.run_options.chaos.max_delay_us = 150;
    config.run_options.chaos.drop_rate = 0.08;
    config.run_options.chaos.duplicate_rate = 0.05;
    config.run_options.chaos.truncate_rate = 0.03;
    config.run_options.chaos.stall_rate = 0.002;
    config.run_options.chaos.stall_us = 2000;
    config.retry.timeout_ticks = 5;
    config.retry.max_retries = 12;

    const auto result = run_distributed(chaos_dataset().reads, config);
    expect_never_miscorrects(result, ref);

    // The plan fired (seeded, so stable), and some filter frames were
    // among the casualties or survivors — either way the run terminated
    // with the degradation accounted, which is the whole contract.
    std::uint64_t dropped = 0;
    for (const auto& r : result.ranks) dropped += r.traffic.dropped_msgs;
    EXPECT_GT(dropped, 0u) << (batched ? "batched" : "scalar");
  }
}

TEST(FilterChaos, DelayOnlyChaosKeepsFilteredRunIdentical) {
  // Reordering/delay without loss: every filter arrives (eventually), and
  // the filtered output must stay byte-identical to the sequential
  // baseline — delays must not be able to corrupt the exchange.
  const auto ref = core::run_sequential(chaos_dataset().reads, chaos_params());
  DistConfig config;
  config.params = chaos_params();
  config.ranks = 4;
  config.heuristics.filter_lookups = true;
  config.heuristics.batch_lookups = true;
  config.run_options.chaos.seed = 7;
  config.run_options.chaos.max_delay_us = 300;
  const auto result = run_distributed(chaos_dataset().reads, config);
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases)
        << "read " << ref.corrected[i].number;
  }
  EXPECT_EQ(result.total_substitutions(), ref.substitutions);
}

}  // namespace
}  // namespace reptile::parallel
