// The central integration property: every distributed configuration —
// any rank count, any heuristic combination — produces corrected reads
// bit-identical to the sequential baseline, and sensible per-rank stats.
#include "parallel/dist_pipeline.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "seq/dataset.hpp"
#include "stats/accuracy.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams test_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;  // tile length 16
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 64;
  return p;
}

const seq::SyntheticDataset& shared_dataset() {
  static const seq::SyntheticDataset ds = [] {
    seq::DatasetSpec spec{"mini", 1500, 70, 2500};  // 42X coverage
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.004;
    errors.error_rate_end = 0.012;
    errors.burst_fraction = 0.15;
    errors.burst_regions = 2;
    errors.burst_multiplier = 6.0;
    return seq::SyntheticDataset::generate(spec, errors, 77);
  }();
  return ds;
}

const core::SequentialResult& sequential_reference() {
  static const core::SequentialResult ref =
      core::run_sequential(shared_dataset().reads, test_params());
  return ref;
}

void expect_identical_to_sequential(const DistResult& result) {
  const auto& ref = sequential_reference();
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].number, ref.corrected[i].number);
    ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases)
        << "read " << ref.corrected[i].number;
  }
  EXPECT_EQ(result.total_substitutions(), ref.substitutions);
}

// ---- rank-count sweep (base heuristics) -----------------------------------

class DistIdentityRanks : public ::testing::TestWithParam<int> {};

TEST_P(DistIdentityRanks, MatchesSequential) {
  DistConfig config;
  config.params = test_params();
  config.ranks = GetParam();
  config.ranks_per_node = 2;
  config.heuristics.load_balance = true;
  const auto result = run_distributed(shared_dataset().reads, config);
  expect_identical_to_sequential(result);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistIdentityRanks,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

// ---- heuristics sweep ------------------------------------------------------

struct HeuristicsCase {
  const char* name;
  Heuristics heur;
};

class DistIdentityHeuristics
    : public ::testing::TestWithParam<HeuristicsCase> {};

TEST_P(DistIdentityHeuristics, MatchesSequential) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  config.ranks_per_node = 2;
  config.heuristics = GetParam().heur;
  const auto result = run_distributed(shared_dataset().reads, config);
  expect_identical_to_sequential(result);
}

Heuristics make(bool universal, bool read_kmers, bool ag_k, bool ag_t,
                bool add_remote, bool batch, bool balance) {
  Heuristics h;
  h.universal = universal;
  h.read_kmers = read_kmers;
  h.allgather_kmers = ag_k;
  h.allgather_tiles = ag_t;
  h.add_remote = add_remote;
  h.batch_reads = batch;
  h.load_balance = balance;
  return h;
}

Heuristics batched(Heuristics h) {
  h.batch_lookups = true;
  return h;
}

INSTANTIATE_TEST_SUITE_P(
    Heuristics, DistIdentityHeuristics,
    ::testing::Values(
        HeuristicsCase{"base_imbalanced",
                       make(false, false, false, false, false, false, false)},
        HeuristicsCase{"base_balanced",
                       make(false, false, false, false, false, false, true)},
        HeuristicsCase{"universal",
                       make(true, false, false, false, false, false, true)},
        HeuristicsCase{"read_kmers",
                       make(false, true, false, false, false, false, true)},
        HeuristicsCase{"add_remote",
                       make(false, true, false, false, true, false, true)},
        HeuristicsCase{"allgather_kmers",
                       make(false, false, true, false, false, false, true)},
        HeuristicsCase{"allgather_tiles",
                       make(false, false, false, true, false, false, true)},
        HeuristicsCase{"allgather_both",
                       make(false, false, true, true, false, false, true)},
        HeuristicsCase{"batch_reads",
                       make(false, false, false, false, false, true, true)},
        HeuristicsCase{"paper_production",
                       make(true, false, false, false, false, true, true)},
        HeuristicsCase{"everything_cacheable",
                       make(true, true, false, false, true, true, true)},
        HeuristicsCase{"batched_lookups",
                       batched(make(false, false, false, false, false, false,
                                    true))},
        HeuristicsCase{"batched_read_kmers",
                       batched(make(false, true, false, false, false, false,
                                    true))},
        HeuristicsCase{"batched_universal",
                       batched(make(true, false, false, false, false, false,
                                    true))},
        HeuristicsCase{"batched_add_remote",
                       batched(make(false, true, false, false, true, false,
                                    true))},
        HeuristicsCase{"batched_everything",
                       batched(make(true, true, false, false, true, true,
                                    true))}),
    [](const ::testing::TestParamInfo<HeuristicsCase>& info) {
      return info.param.name;
    });

// ---- behavioural assertions beyond identity --------------------------------

TEST(DistPipeline, CorrectionAccuracyMatchesSequential) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  const auto result = run_distributed(shared_dataset().reads, config);
  const auto acc = stats::score_correction(
      shared_dataset().reads, result.corrected, shared_dataset().truth);
  // The shared dataset is deliberately bursty (multi-error reads that are
  // hard to correct) to exercise load balancing; the cleaner accuracy bar
  // lives in test_sequential_pipeline. Here we only require useful net
  // correction, identical to the sequential baseline.
  EXPECT_GT(acc.sensitivity(), 0.5);
  EXPECT_GT(acc.gain(), 0.45);
}

TEST(DistPipeline, LoadBalanceEvensErrorsPerRank) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 8;
  config.heuristics.load_balance = false;
  const auto imbalanced = run_distributed(shared_dataset().reads, config);
  config.heuristics.load_balance = true;
  const auto balanced = run_distributed(shared_dataset().reads, config);

  // Work per rank is what the paper's Fig. 4 measures (slowest vs fastest
  // rank, remote tile lookups per rank); untrusted tiles is the direct
  // work driver here.
  auto spread = [](const DistResult& r) {
    std::uint64_t lo = ~0ull, hi = 0;
    for (const auto& rank : r.ranks) {
      lo = std::min(lo, rank.tiles_untrusted);
      hi = std::max(hi, rank.tiles_untrusted);
    }
    return std::pair(lo, hi);
  };
  const auto [ilo, ihi] = spread(imbalanced);
  const auto [blo, bhi] = spread(balanced);
  // The bursty dataset must produce a visible gap without balancing, and
  // balancing must shrink it (paper Fig. 4: 33886..47927 -> 39127..39997).
  EXPECT_GT(ihi - ilo, 2 * (bhi - blo));
}

TEST(DistPipeline, RemoteLookupsVanishWhenFullyReplicated) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  config.heuristics.allgather_kmers = true;
  config.heuristics.allgather_tiles = true;
  const auto result = run_distributed(shared_dataset().reads, config);
  for (const auto& rank : result.ranks) {
    EXPECT_EQ(rank.remote.remote_lookups(), 0u);
    EXPECT_EQ(rank.service.requests_served, 0u);
  }
}

TEST(DistPipeline, TileRequestsDominateRemoteTraffic) {
  // Paper: "the majority of the communication time is spent in
  // communication of tiles especially tiles which are not part of the tile
  // spectrum".
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  const auto result = run_distributed(shared_dataset().reads, config);
  std::uint64_t kmer_remote = 0, tile_remote = 0, tile_absent = 0;
  for (const auto& rank : result.ranks) {
    kmer_remote += rank.remote.remote_kmer_lookups;
    tile_remote += rank.remote.remote_tile_lookups;
    tile_absent += rank.remote.remote_tile_absent;
  }
  EXPECT_GT(tile_remote, kmer_remote);
  EXPECT_GT(tile_absent, tile_remote / 2);
}

TEST(DistPipeline, ReadKmersReducesRemoteLookups) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  const auto base = run_distributed(shared_dataset().reads, config);
  config.heuristics.read_kmers = true;
  const auto cached = run_distributed(shared_dataset().reads, config);
  std::uint64_t base_remote = 0, cached_remote = 0, hits = 0;
  for (const auto& r : base.ranks) base_remote += r.remote.remote_lookups();
  for (const auto& r : cached.ranks) {
    cached_remote += r.remote.remote_lookups();
    hits += r.remote.reads_table_hits;
  }
  EXPECT_LT(cached_remote, base_remote);
  EXPECT_GT(hits, 0u);
}

TEST(DistPipeline, AddRemoteCachesRepeatLookups) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  config.heuristics.read_kmers = true;
  const auto without = run_distributed(shared_dataset().reads, config);
  config.heuristics.add_remote = true;
  const auto with = run_distributed(shared_dataset().reads, config);
  std::uint64_t remote_without = 0, remote_with = 0;
  std::size_t mem_without = 0, mem_with = 0;
  for (const auto& r : without.ranks) {
    remote_without += r.remote.remote_lookups();
    mem_without = std::max(mem_without, r.footprint_after_correction.bytes);
  }
  for (const auto& r : with.ranks) {
    remote_with += r.remote.remote_lookups();
    mem_with = std::max(mem_with, r.footprint_after_correction.bytes);
  }
  EXPECT_LE(remote_with, remote_without);
  // Caching absences costs memory — the paper's 119 MB -> 199 MB effect.
  EXPECT_GT(mem_with, mem_without);
}

TEST(DistPipeline, BatchReadsCapsConstructionMemory) {
  DistConfig config;
  config.params = test_params();
  config.params.chunk_size = 50;
  config.ranks = 4;
  const auto unbatched = run_distributed(shared_dataset().reads, config);
  config.heuristics.batch_reads = true;
  const auto batched = run_distributed(shared_dataset().reads, config);
  std::size_t peak_unbatched = 0, peak_batched = 0;
  for (const auto& r : unbatched.ranks) {
    peak_unbatched = std::max(peak_unbatched, r.construction_peak_bytes);
  }
  for (const auto& r : batched.ranks) {
    peak_batched = std::max(peak_batched, r.construction_peak_bytes);
  }
  EXPECT_LT(peak_batched, peak_unbatched);
}

TEST(DistPipeline, UniversalModeSkipsProbes) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  const auto tagged = run_distributed(shared_dataset().reads, config);
  config.heuristics.universal = true;
  const auto universal = run_distributed(shared_dataset().reads, config);
  std::uint64_t probes_tagged = 0, probes_universal = 0, served = 0;
  for (const auto& r : tagged.ranks) probes_tagged += r.service.probe_calls;
  for (const auto& r : universal.ranks) {
    probes_universal += r.service.probe_calls;
    served += r.service.requests_served;
  }
  EXPECT_GT(probes_tagged, 0u);
  EXPECT_EQ(probes_universal, 0u);
  EXPECT_GT(served, 0u);
}

TEST(DistPipeline, RanksReportConsistentTotals) {
  DistConfig config;
  config.params = test_params();
  config.ranks = 4;
  const auto result = run_distributed(shared_dataset().reads, config);
  std::uint64_t reads_total = 0;
  for (const auto& r : result.ranks) {
    reads_total += r.reads_processed;
    EXPECT_GE(r.correct_seconds, 0.0);
    EXPECT_GE(r.comm_seconds, 0.0);
    EXPECT_LE(r.comm_seconds, r.correct_seconds + 1.0);
  }
  EXPECT_EQ(reads_total, shared_dataset().reads.size());
}

}  // namespace
}  // namespace reptile::parallel
