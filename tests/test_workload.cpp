// Unit + integration tests: workload measurement and synthesis.
#include "perfmodel/workload.hpp"

#include <gtest/gtest.h>

#include "seq/error_model.hpp"

namespace reptile::perfmodel {
namespace {

core::CorrectorParams small_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  return p;
}

struct Fixture {
  seq::DatasetSpec spec{"mini", 3000, 70, 5000};
  seq::ErrorModelParams errors;
  seq::SyntheticDataset ds;
  DatasetTraits traits;

  Fixture() {
    errors.error_rate_start = 0.003;
    errors.error_rate_end = 0.01;
    errors.burst_fraction = 0.2;
    errors.burst_regions = 2;
    errors.burst_multiplier = 8.0;
    ds = seq::SyntheticDataset::generate(spec, errors, 31);
    traits = measure_traits(ds, small_params(), errors, /*np_ref=*/32);
  }
};

const Fixture& fixture() {
  static const Fixture f;
  return f;
}

TEST(CountBurstReads, MatchesErrorModelExactly) {
  constexpr std::uint64_t kTotal = 977;
  seq::ErrorModelParams errors;
  errors.burst_fraction = 0.23;
  errors.burst_regions = 3;
  const seq::IlluminaErrorModel model(errors, kTotal);
  std::uint64_t brute = 0;
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    if (model.in_burst(i)) ++brute;
  }
  EXPECT_EQ(count_burst_reads(0, kTotal, kTotal, 0.23, 3), brute);
  // Arbitrary sub-ranges match a brute-force count too.
  for (auto [b, e] : {std::pair<std::uint64_t, std::uint64_t>{0, 100},
                      {317, 711},
                      {650, 977}}) {
    std::uint64_t expect = 0;
    for (std::uint64_t i = b; i < e; ++i) {
      if (model.in_burst(i)) ++expect;
    }
    EXPECT_EQ(count_burst_reads(b, e, kTotal, 0.23, 3), expect)
        << b << ".." << e;
  }
}

TEST(CountBurstReads, EdgeCases) {
  EXPECT_EQ(count_burst_reads(0, 100, 100, 0.0, 4), 0u);
  EXPECT_EQ(count_burst_reads(0, 100, 100, 0.5, 0), 0u);
  EXPECT_EQ(count_burst_reads(50, 50, 100, 0.5, 2), 0u);
  EXPECT_EQ(count_burst_reads(0, 100, 100, 1.0, 1), 100u);
}

TEST(MeasureTraits, BurstReadsCostMoreWork) {
  const auto& t = fixture().traits;
  EXPECT_GT(t.burst_reads, 0u);
  EXPECT_GT(t.quiet_reads, 0u);
  // Burst reads trigger more untrusted tiles, hence more candidate lookups
  // of both species. (Substitutions do NOT scale the same way — heavily
  // corrupted reads are often uncorrectable, which is exactly why work, not
  // output, drives the paper's load imbalance.)
  EXPECT_GT(t.burst.tile_lookups, 2 * t.quiet.tile_lookups);
  EXPECT_GT(t.burst.kmer_lookups, t.quiet.kmer_lookups);
}

TEST(MeasureTraits, GeometryAndCensusPopulated) {
  const auto& t = fixture().traits;
  EXPECT_DOUBLE_EQ(t.kmers_per_read, 70 - 10 + 1);
  EXPECT_GT(t.tiles_per_read, 5);
  EXPECT_GT(t.kept_kmers, 0u);
  EXPECT_GT(t.dropped_kmers, 0u);
  EXPECT_GT(t.kept_tiles, 0u);
  EXPECT_GE(t.repeat_remote_fraction, 0.0);
  EXPECT_LE(t.repeat_remote_fraction, 1.0);
}

TEST(MeasureTraits, TileChecksAtLeastTilePositions) {
  const auto& t = fixture().traits;
  // Every read pays one trusted-check per tile position; candidate lookups
  // add more tile lookups on top.
  EXPECT_GE(t.quiet.tile_lookups, t.quiet.tile_checks * 0.99);
  EXPECT_GE(t.burst.tile_lookups, t.burst.tile_checks);
}

TEST(MeasureTraits, OwnSetHitsBoundedByLookups) {
  const auto& t = fixture().traits;
  EXPECT_LE(t.quiet.own_tile_hits, t.quiet.tile_lookups);
  EXPECT_LE(t.burst.own_kmer_hits, t.burst.kmer_lookups);
  // The read's own trusted tiles are in the rank's reads-table, so hits
  // must be substantial.
  EXPECT_GT(t.quiet.own_tile_hits, 0.0);
}

TEST(Synthesize, ConservesReadsAndSpreadsUniformlyWhenBalanced) {
  const auto& f = fixture();
  parallel::Heuristics heur;  // load_balance on by default
  const auto ranks =
      synthesize_workload(f.traits, f.spec, 16, 8, heur);
  ASSERT_EQ(ranks.size(), 16u);
  std::uint64_t reads = 0;
  for (const auto& w : ranks) reads += w.reads;
  EXPECT_EQ(reads, f.spec.n_reads);
  // Balanced: per-rank tile lookups within ~1%.
  double lo = ranks[0].tile_lookups, hi = ranks[0].tile_lookups;
  for (const auto& w : ranks) {
    lo = std::min(lo, w.tile_lookups);
    hi = std::max(hi, w.tile_lookups);
  }
  EXPECT_LT((hi - lo) / hi, 0.02);
}

TEST(Synthesize, ImbalancedModeConcentratesBurstWork) {
  const auto& f = fixture();
  parallel::Heuristics heur;
  heur.load_balance = false;
  const auto ranks = synthesize_workload(f.traits, f.spec, 16, 8, heur);
  double lo = ranks[0].tile_lookups, hi = ranks[0].tile_lookups;
  for (const auto& w : ranks) {
    lo = std::min(lo, w.tile_lookups);
    hi = std::max(hi, w.tile_lookups);
  }
  // Some ranks hold entire burst regions, others none.
  EXPECT_GT(hi / lo, 1.5);
}

TEST(Synthesize, RemoteFractionFollowsRankCount) {
  const auto& f = fixture();
  parallel::Heuristics heur;
  const auto at = [&](int np) {
    const auto ranks = synthesize_workload(f.traits, f.spec, np, 8, heur);
    double remote = 0, total = 0;
    for (const auto& w : ranks) {
      remote += w.remote_lookups();
      total += w.kmer_lookups + w.tile_lookups;
    }
    return remote / total;
  };
  EXPECT_NEAR(at(2), 0.5, 0.02);
  EXPECT_NEAR(at(8), 7.0 / 8.0, 0.02);
  EXPECT_GT(at(128), at(8));
}

TEST(Synthesize, HeuristicsShrinkRemoteTraffic) {
  const auto& f = fixture();
  parallel::Heuristics base;
  const auto remote_of = [&](const parallel::Heuristics& h) {
    const auto ranks = synthesize_workload(f.traits, f.spec, 32, 8, h);
    double r = 0;
    for (const auto& w : ranks) r += w.remote_lookups();
    return r;
  };
  const double base_remote = remote_of(base);

  parallel::Heuristics rk = base;
  rk.read_kmers = true;
  EXPECT_LT(remote_of(rk), base_remote);

  parallel::Heuristics ar = rk;
  ar.add_remote = true;
  EXPECT_LE(remote_of(ar), remote_of(rk));

  parallel::Heuristics agt = base;
  agt.allgather_tiles = true;
  const auto ranks_agt = synthesize_workload(f.traits, f.spec, 32, 8, agt);
  for (const auto& w : ranks_agt) {
    EXPECT_EQ(w.remote_tile_lookups, 0.0);
    EXPECT_GT(w.remote_kmer_lookups, 0.0);
    EXPECT_GT(w.replica_bytes, 0.0);
  }

  parallel::Heuristics both = base;
  both.allgather_kmers = both.allgather_tiles = true;
  EXPECT_EQ(remote_of(both), 0.0);
}

TEST(Synthesize, IntraNodeShareFollowsTopology) {
  const auto& f = fixture();
  parallel::Heuristics heur;
  const auto ranks32 = synthesize_workload(f.traits, f.spec, 64, 32, heur);
  const auto ranks1 = synthesize_workload(f.traits, f.spec, 64, 1, heur);
  // 32 ranks/node: 31/63 of partners are local; 1 rank/node: none.
  EXPECT_NEAR(ranks32[0].remote_intra /
                  (ranks32[0].remote_intra + ranks32[0].remote_inter),
              31.0 / 63.0, 0.01);
  EXPECT_EQ(ranks1[0].remote_intra, 0.0);
}

TEST(Synthesize, BatchModeCapsConstructionPeak) {
  const auto& f = fixture();
  parallel::Heuristics base;
  parallel::Heuristics batched = base;
  batched.batch_reads = true;
  // At full scale each rank handles far more reads than one chunk, which is
  // when batching pays (the paper used it for the human dataset).
  seq::DatasetSpec big = f.spec;
  big.n_reads *= 100;
  big.genome_size *= 100;
  const auto normal = synthesize_workload(f.traits, big, 8, 8, base);
  const auto capped = synthesize_workload(f.traits, big, 8, 8, batched);
  EXPECT_LT(capped[0].construction_peak_bytes,
            normal[0].construction_peak_bytes);
  // With reads-per-rank below one chunk, batching changes nothing.
  const auto small_normal = synthesize_workload(f.traits, f.spec, 8, 8, base);
  const auto small_capped =
      synthesize_workload(f.traits, f.spec, 8, 8, batched);
  EXPECT_NEAR(small_capped[0].construction_peak_bytes,
              small_normal[0].construction_peak_bytes,
              0.01 * small_normal[0].construction_peak_bytes);
}

TEST(Synthesize, SpectrumScalesWithFullDataset) {
  const auto& f = fixture();
  parallel::Heuristics heur;
  // Model the same dataset at 10x the geometry: owned entries grow, but by
  // less than 10x for the genome-driven part only when genome also grows.
  seq::DatasetSpec big = f.spec;
  big.n_reads *= 10;
  big.genome_size *= 10;
  const auto small = synthesize_workload(f.traits, f.spec, 8, 8, heur);
  const auto large = synthesize_workload(f.traits, big, 8, 8, heur);
  EXPECT_NEAR(large[0].owned_entries / small[0].owned_entries, 10.0, 0.5);
  EXPECT_GT(large[0].spectrum_bytes, small[0].spectrum_bytes);
}

TEST(WorkloadFromReport, ProjectsTheMeasuredTimelineOntoRankWorkload) {
  stats::PhaseTimeline report;
  report.reads_processed = 1000;
  report.substitutions = 42;
  report.lookups.kmer_lookups = 5000;
  report.lookups.tile_lookups = 3000;
  report.remote.remote_kmer_lookups = 700;
  report.remote.remote_tile_lookups = 300;
  report.service.requests_served = 900;
  report.footprint_after_construction.hash_kmer_entries = 10'000;
  report.footprint_after_construction.hash_tile_entries = 8'000;
  report.footprint_after_construction.bytes = 1 << 20;
  report.construction_peak_bytes = 2 << 20;

  const RankWorkload w = workload_from_report(report);
  EXPECT_EQ(w.reads, 1000u);
  EXPECT_DOUBLE_EQ(w.substitutions, 42.0);
  EXPECT_DOUBLE_EQ(w.kmer_lookups, 5000.0);
  EXPECT_DOUBLE_EQ(w.tile_lookups, 3000.0);
  EXPECT_DOUBLE_EQ(w.remote_lookups(), 1000.0);
  EXPECT_DOUBLE_EQ(w.requests_served, 900.0);
  EXPECT_DOUBLE_EQ(w.owned_entries, 18'000.0);
  EXPECT_DOUBLE_EQ(w.spectrum_bytes, static_cast<double>(1 << 20));
  EXPECT_DOUBLE_EQ(w.construction_peak_bytes, static_cast<double>(2 << 20));
}

}  // namespace
}  // namespace reptile::perfmodel
