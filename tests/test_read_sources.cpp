// Unit tests: ReadSource implementations (chunking, reset, ownership).
#include <gtest/gtest.h>

#include "seq/read.hpp"

namespace reptile::seq {
namespace {

std::vector<Read> make_reads(std::size_t n) {
  std::vector<Read> out;
  for (std::size_t i = 0; i < n; ++i) {
    Read r;
    r.number = i + 1;
    r.bases = std::string(10, "ACGT"[i % 4]);
    r.quals.assign(10, static_cast<qual_t>(30));
    out.push_back(std::move(r));
  }
  return out;
}

template <class Source>
std::vector<Read> drain(Source& src, std::size_t chunk) {
  std::vector<Read> out;
  ReadBatch batch;
  while (src.next_chunk(chunk, batch)) {
    out.insert(out.end(), batch.begin(), batch.end());
  }
  return out;
}

TEST(VectorReadSource, DeliversEverythingInOrder) {
  const auto reads = make_reads(23);
  VectorReadSource src(reads);
  EXPECT_EQ(src.size(), 23u);
  EXPECT_EQ(drain(src, 5), reads);
}

TEST(VectorReadSource, ChunkBoundariesExact) {
  const auto reads = make_reads(10);
  VectorReadSource src(reads);
  ReadBatch batch;
  ASSERT_TRUE(src.next_chunk(4, batch));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(src.next_chunk(4, batch));
  EXPECT_EQ(batch.size(), 4u);
  ASSERT_TRUE(src.next_chunk(4, batch));
  EXPECT_EQ(batch.size(), 2u);  // final partial chunk
  EXPECT_FALSE(src.next_chunk(4, batch));
  EXPECT_TRUE(batch.empty());
}

TEST(VectorReadSource, ResetReplays) {
  const auto reads = make_reads(7);
  VectorReadSource src(reads);
  const auto first = drain(src, 3);
  src.reset();
  const auto second = drain(src, 7);
  EXPECT_EQ(first, second);
}

TEST(VectorReadSource, EmptySource) {
  const std::vector<Read> none;
  VectorReadSource src(none);
  ReadBatch batch;
  EXPECT_EQ(src.size(), 0u);
  EXPECT_FALSE(src.next_chunk(8, batch));
  src.reset();
  EXPECT_FALSE(src.next_chunk(8, batch));
}

TEST(OwningReadSource, OwnsItsReads) {
  auto reads = make_reads(5);
  const auto copy = reads;
  OwningReadSource src(std::move(reads));
  EXPECT_EQ(src.size(), 5u);
  EXPECT_EQ(src.reads(), copy);
  EXPECT_EQ(drain(src, 2), copy);
  src.reset();
  EXPECT_EQ(drain(src, 100), copy);
}

TEST(OwningReadSource, ChunkLargerThanContent) {
  OwningReadSource src(make_reads(3));
  ReadBatch batch;
  ASSERT_TRUE(src.next_chunk(1000, batch));
  EXPECT_EQ(batch.size(), 3u);
  EXPECT_FALSE(src.next_chunk(1000, batch));
}

}  // namespace
}  // namespace reptile::seq
