// Unit tests: FASTQ parsing and the Reptile preprocessing conversion.
#include "seq/fastq_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "seq/dataset.hpp"
#include "seq/fasta_io.hpp"

namespace reptile::seq {
namespace {

namespace fs = std::filesystem;

TEST(Fastq, ParsesWellFormedRecords) {
  const std::string text =
      "@SRR001.1 some description\n"
      "ACGT\n"
      "+\n"
      "IIII\n"
      "@SRR001.2\n"
      "TTGGCA\n"
      "+SRR001.2\n"
      "!!IIII\n";
  const auto reads = parse_fastq(text);
  ASSERT_EQ(reads.size(), 2u);
  EXPECT_EQ(reads[0].number, 1u);   // renumbered, names discarded
  EXPECT_EQ(reads[0].bases, "ACGT");
  EXPECT_EQ(reads[0].quals, (std::vector<qual_t>{40, 40, 40, 40}));
  EXPECT_EQ(reads[1].number, 2u);
  EXPECT_EQ(reads[1].bases, "TTGGCA");
  EXPECT_EQ(reads[1].quals[0], 0u);  // '!' = phred 0
}

TEST(Fastq, LowercaseAndNBasesAreSanitized) {
  const std::string text = "@r\nacgNn\n+\nIIIII\n";
  FastqStats stats;
  const auto reads = parse_fastq(text, {}, &stats);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].bases, "ACGAA");
  EXPECT_EQ(stats.bases_sanitized, 2u);
}

TEST(Fastq, Phred64Offset) {
  FastqOptions options;
  options.phred_offset = 64;
  const std::string text = "@r\nAC\n+\nhh\n";  // 'h' = 104 -> q40
  const auto reads = parse_fastq(text, options);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].quals, (std::vector<qual_t>{40, 40}));
}

TEST(Fastq, MinLengthFilter) {
  FastqOptions options;
  options.min_length = 5;
  const std::string text = "@a\nACGT\n+\nIIII\n@b\nACGTA\n+\nIIIII\n";
  FastqStats stats;
  const auto reads = parse_fastq(text, options, &stats);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].bases, "ACGTA");
  EXPECT_EQ(reads[0].number, 1u);  // renumbering is post-filter
  EXPECT_EQ(stats.reads_dropped, 1u);
  EXPECT_EQ(stats.reads_in, 2u);
  EXPECT_EQ(stats.reads_out, 1u);
}

TEST(Fastq, ToleratesCrlfAndTrailingBlankLines) {
  const std::string text = "@r\r\nACGT\r\n+\r\nIIII\r\n\n\n";
  const auto reads = parse_fastq(text);
  ASSERT_EQ(reads.size(), 1u);
  EXPECT_EQ(reads[0].bases, "ACGT");
}

TEST(Fastq, MalformedInputsThrowWithLineNumbers) {
  EXPECT_THROW(parse_fastq("ACGT\n+\nIIII\n"), std::runtime_error);  // no @
  EXPECT_THROW(parse_fastq("@r\nACGT\n"), std::runtime_error);       // truncated
  EXPECT_THROW(parse_fastq("@r\nACGT\nIIII\nIIII\n"), std::runtime_error);
  EXPECT_THROW(parse_fastq("@r\nACGT\n+\nIII\n"), std::runtime_error);
  try {
    parse_fastq("@r\nACGT\n+\nIII\n");
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos);
  }
}

TEST(Fastq, QualityOutOfRangeThrows) {
  FastqOptions options;
  options.phred_offset = 64;
  // ' ' (32) is below offset 64.
  EXPECT_THROW(parse_fastq("@r\nAC\n+\n  \n", options), std::runtime_error);
}

TEST(Fastq, FileRoundTrip) {
  const auto dir = fs::temp_directory_path() / "reptile_fastq";
  fs::create_directories(dir);
  seq::DatasetSpec spec{"t", 50, 40, 500};
  const auto ds = SyntheticDataset::generate(spec, {}, 4);
  write_fastq(dir / "r.fq", ds.reads);
  const auto back = read_fastq(dir / "r.fq");
  EXPECT_EQ(back, ds.reads);
  fs::remove_all(dir);
}

TEST(Fastq, ConvertProducesReptileInputs) {
  const auto dir = fs::temp_directory_path() / "reptile_fastq_conv";
  fs::create_directories(dir);
  seq::DatasetSpec spec{"t", 80, 50, 800};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.01;
  errors.error_rate_end = 0.01;
  const auto ds = SyntheticDataset::generate(spec, errors, 5);
  write_fastq(dir / "in.fq", ds.reads);

  const auto stats =
      convert_fastq(dir / "in.fq", dir / "out.fa", dir / "out.qual");
  EXPECT_EQ(stats.reads_out, 80u);

  // The converted pair is exactly what the Step I reader consumes.
  const auto back = read_all(dir / "out.fa", dir / "out.qual");
  EXPECT_EQ(back, ds.reads);
  fs::remove_all(dir);
}

TEST(Fastq, MissingFileThrows) {
  EXPECT_THROW(read_fastq("/nonexistent/path.fq"), std::runtime_error);
}

}  // namespace
}  // namespace reptile::seq
