// Unit tests: the prior art's spectrum stores — sorted arrays and the
// cache-aware (B+1)-ary layout — plus the FrozenSpectrum equivalence.
#include "hash/sorted_spectrum.hpp"

#include <gtest/gtest.h>

#include <map>

#include "core/corrector.hpp"
#include "core/frozen_spectrum.hpp"
#include "seq/dataset.hpp"
#include "seq/rng.hpp"

namespace reptile::hash {
namespace {

std::vector<std::pair<std::uint64_t, std::uint32_t>> random_entries(
    std::size_t n, std::uint64_t seed, std::uint64_t key_space = ~0ull) {
  seq::Rng rng(seed);
  std::vector<std::pair<std::uint64_t, std::uint32_t>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(key_space == ~0ull ? rng.next() : rng.below(key_space),
                     static_cast<std::uint32_t>(1 + rng.below(100)));
  }
  return out;
}

TEST(SortedCountArray, FindsEveryInsertedKey) {
  const auto entries = random_entries(5000, 1);
  std::map<std::uint64_t, std::uint64_t> reference;
  for (const auto& [k, c] : entries) reference[k] += c;
  const auto arr = SortedCountArray::from_entries(entries);
  EXPECT_EQ(arr.size(), reference.size());
  for (const auto& [k, c] : reference) {
    ASSERT_EQ(arr.find(k), static_cast<std::uint32_t>(c)) << k;
  }
}

TEST(SortedCountArray, MissesAbsentKeys) {
  const auto arr = SortedCountArray::from_entries(random_entries(1000, 2));
  seq::Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t probe = rng.next();
    if (!arr.find(probe)) SUCCEED();
  }
  EXPECT_FALSE(SortedCountArray{}.find(42));
}

TEST(SortedCountArray, KeysAreSortedAscending) {
  const auto arr = SortedCountArray::from_entries(random_entries(2000, 4));
  for (std::size_t i = 1; i < arr.keys().size(); ++i) {
    ASSERT_LT(arr.keys()[i - 1], arr.keys()[i]);
  }
}

TEST(SortedCountArray, DuplicateKeysMerge) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries = {
      {5, 2}, {5, 3}, {7, 1}, {5, 10}};
  const auto arr = SortedCountArray::from_entries(entries);
  EXPECT_EQ(arr.size(), 2u);
  EXPECT_EQ(arr.find(5), 15u);
  EXPECT_EQ(arr.find(7), 1u);
}

class CacheAwareProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheAwareProperty, AgreesWithSortedArray) {
  const std::size_t n = GetParam();
  const auto entries = random_entries(n, 10 + n);
  const auto sorted = SortedCountArray::from_entries(entries);
  const auto cache = CacheAwareCountArray::from_sorted(sorted);
  EXPECT_EQ(cache.size(), sorted.size());
  // Every key present with the same count.
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_EQ(cache.find(sorted.keys()[i]), sorted.counts()[i])
        << "n=" << n << " i=" << i;
  }
  // Absent keys miss.
  seq::Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t probe = rng.next();
    EXPECT_EQ(cache.find(probe).has_value(), sorted.find(probe).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheAwareProperty,
                         ::testing::Values(0, 1, 7, 8, 9, 63, 64, 65, 511,
                                           4096, 50000),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(CacheAwareCountArray, HandlesMaxSentinelKeyAsRealEntry) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> entries = {
      {~std::uint64_t{0}, 7}, {1, 2}, {2, 3}};
  const auto cache = CacheAwareCountArray::from_entries(entries);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.find(~std::uint64_t{0}), 7u);
  EXPECT_EQ(cache.find(1), 2u);
  // And the sentinel is not reported present when absent.
  const auto without = CacheAwareCountArray::from_entries(
      {{1, 2}, {2, 3}});
  EXPECT_FALSE(without.find(~std::uint64_t{0}));
}

TEST(CacheAwareCountArray, BlocksAreCacheLineSized) {
  static_assert(CacheAwareCountArray::kBlock * sizeof(std::uint64_t) == 64,
                "one block of keys = one cache line");
  const auto cache = CacheAwareCountArray::from_entries(random_entries(100, 5));
  EXPECT_EQ(cache.blocks(), (100 + 7) / 8u);
}

}  // namespace
}  // namespace reptile::hash

namespace reptile::core {
namespace {

TEST(FrozenSpectrum, AllBackendsAnswerIdentically) {
  CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  seq::DatasetSpec spec{"fz", 800, 60, 1500};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.005;
  errors.error_rate_end = 0.012;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 77);

  LocalSpectrum live(p);
  for (const auto& r : ds.reads) live.add_read(r.bases);
  live.prune();

  FrozenSpectrum hash_backend(live, SpectrumBackend::kHashTable);
  FrozenSpectrum sorted_backend(live, SpectrumBackend::kSortedArray);
  FrozenSpectrum cache_backend(live, SpectrumBackend::kCacheAware);

  // Probe every live entry plus neighbors.
  live.kmers().for_each([&](std::uint64_t id, std::uint32_t c) {
    ASSERT_EQ(hash_backend.kmer_count(id), c);
    ASSERT_EQ(sorted_backend.kmer_count(id), c);
    ASSERT_EQ(cache_backend.kmer_count(id), c);
    const std::uint64_t probe = id ^ 0x5;
    const auto expect = hash_backend.kmer_count(probe);
    ASSERT_EQ(sorted_backend.kmer_count(probe), expect);
    ASSERT_EQ(cache_backend.kmer_count(probe), expect);
  });
}

TEST(FrozenSpectrum, CorrectorDecisionsIdenticalAcrossBackends) {
  CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  seq::DatasetSpec spec{"fz2", 1200, 70, 1500};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.004;
  errors.error_rate_end = 0.012;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 78);

  LocalSpectrum live(p);
  for (const auto& r : ds.reads) live.add_read(r.bases);
  live.prune();

  TileCorrector corrector(p);
  auto run_with = [&](SpectrumBackend backend) {
    FrozenSpectrum frozen(live, backend);
    std::vector<seq::Read> out = ds.reads;
    for (auto& r : out) corrector.correct(r, frozen);
    return out;
  };
  const auto via_hash = run_with(SpectrumBackend::kHashTable);
  const auto via_sorted = run_with(SpectrumBackend::kSortedArray);
  const auto via_cache = run_with(SpectrumBackend::kCacheAware);
  EXPECT_EQ(via_hash, via_sorted);
  EXPECT_EQ(via_hash, via_cache);
}

TEST(FrozenSpectrum, PriorArtLayoutsAreDenser) {
  CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  seq::DatasetSpec spec{"fz3", 1000, 60, 2000};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 79);
  LocalSpectrum live(p);
  for (const auto& r : ds.reads) live.add_read(r.bases);
  live.prune();

  const FrozenSpectrum hash_backend(live, SpectrumBackend::kHashTable);
  const FrozenSpectrum sorted_backend(live, SpectrumBackend::kSortedArray);
  // Sorted arrays carry no empty slots; the hash table holds load-factor
  // headroom (the prior art's memory advantage, which the paper trades for
  // lookup speed and in-place construction).
  EXPECT_LT(sorted_backend.memory_bytes(), hash_backend.memory_bytes());
}

}  // namespace
}  // namespace reptile::core
