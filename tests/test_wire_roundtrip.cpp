// Property-based round-trip tests for every wire struct the lookup protocol
// and the load balancer put on the wire (parallel/protocol.hpp +
// parallel/wire.hpp): encode -> decode identity over seeded random inputs,
// layout/size pins, and rejection of every truncated form. The fault
// injector truncates payloads to arbitrary prefixes, so "every strict prefix
// is rejected" is a load-bearing property, not an edge case.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "parallel/protocol.hpp"
#include "parallel/wire.hpp"
#include "seq/read.hpp"
#include "seq/rng.hpp"

namespace reptile::parallel {
namespace {

// Layout pins: these structs ARE the wire format (memcpy'd), so their sizes
// and field offsets are protocol constants. A drifting size silently breaks
// the size-validation the service and the views rely on under truncation.
static_assert(sizeof(LookupRequest) == 24);
static_assert(sizeof(UniversalLookupRequest) == 24);
static_assert(sizeof(LookupReply) == 16);
static_assert(sizeof(BatchLookupHeader) == 24);
static_assert(sizeof(BatchReplyHeader) == 16);
static_assert(sizeof(FilterExchangeHeader) == 8);
static_assert(sizeof(hash::OwnerFilter::Header) == 32);
static_assert(offsetof(LookupReply, seq) == 0,
              "reply_seq() reads the leading 8 bytes");
static_assert(offsetof(BatchReplyHeader, seq) == 0,
              "reply_seq() reads the leading 8 bytes");

template <class T>
T byte_roundtrip(const T& value) {
  std::vector<std::uint8_t> buf(sizeof(T));
  std::memcpy(buf.data(), &value, sizeof(T));
  T out{};
  std::memcpy(&out, buf.data(), sizeof(T));
  return out;
}

TEST(WireRoundTrip, ScalarRequestStructs) {
  seq::Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    LookupRequest req;
    req.id = rng.next();
    req.seq = rng.next();
    req.reply_to = static_cast<std::int32_t>(rng.below(1 << 16));
    const LookupRequest back = byte_roundtrip(req);
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.seq, req.seq);
    EXPECT_EQ(back.reply_to, req.reply_to);

    UniversalLookupRequest uni;
    uni.kind = rng.chance(0.5) ? LookupKind::kKmer : LookupKind::kTile;
    uni.reply_to = static_cast<std::int32_t>(rng.below(1 << 16));
    uni.id = rng.next();
    uni.seq = rng.next();
    const UniversalLookupRequest uback = byte_roundtrip(uni);
    EXPECT_EQ(uback.kind, uni.kind);
    EXPECT_EQ(uback.reply_to, uni.reply_to);
    EXPECT_EQ(uback.id, uni.id);
    EXPECT_EQ(uback.seq, uni.seq);

    LookupReply rep;
    rep.seq = rng.next();
    rep.count = static_cast<std::int32_t>(rng.below(1u << 31)) - 1;
    const LookupReply rback = byte_roundtrip(rep);
    EXPECT_EQ(rback.seq, rep.seq);
    EXPECT_EQ(rback.count, rep.count);
  }
}

TEST(WireRoundTrip, AggregateInitKeepsLegacyFieldOrder) {
  // Call sites (and the microbenchmarks) build requests as
  // `LookupRequest{id}`: the id must stay the first member and every later
  // member must default to the unsequenced/base-tag values.
  const LookupRequest req{0xabcdeful};
  EXPECT_EQ(req.id, 0xabcdeful);
  EXPECT_EQ(req.seq, 0u);
  EXPECT_EQ(req.reply_to, kTagKmerReply);
}

TEST(WireRoundTrip, BatchRequestIdentity) {
  seq::Rng rng(2);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = rng.below(300);
    std::vector<std::uint64_t> ids(n);
    for (auto& id : ids) id = rng.next();
    const auto kind = rng.chance(0.5) ? LookupKind::kKmer : LookupKind::kTile;
    const int reply_to =
        batch_reply_tag(kind, static_cast<int>(rng.below(8)));
    const std::uint64_t seq = rng.next();

    std::vector<std::uint8_t> buf;
    encode_batch_request(
        kind, reply_to,
        std::span<const std::uint64_t>(ids.data(), ids.size()), buf, seq);
    // Size bound: header + 8 bytes per ID, nothing else.
    ASSERT_EQ(buf.size(), sizeof(BatchLookupHeader) + 8 * n);

    const BatchLookupRequest req = decode_batch_request(buf.data(), buf.size());
    EXPECT_EQ(req.kind, kind);
    EXPECT_EQ(req.reply_to, reply_to);
    EXPECT_EQ(req.seq, seq);
    EXPECT_EQ(req.ids, ids);
  }
}

TEST(WireRoundTrip, BatchReplyIdentity) {
  seq::Rng rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    const std::size_t n = rng.below(300);
    std::vector<std::int32_t> counts(n);
    for (auto& c : counts) {
      c = rng.chance(0.2) ? -1 : static_cast<std::int32_t>(rng.below(1000));
    }
    const std::uint64_t seq = rng.next();

    std::vector<std::uint8_t> buf;
    encode_batch_reply(
        seq, std::span<const std::int32_t>(counts.data(), counts.size()), buf);
    ASSERT_EQ(buf.size(), sizeof(BatchReplyHeader) + 4 * n);

    const BatchLookupReply reply = decode_batch_reply(buf.data(), buf.size());
    EXPECT_EQ(reply.seq, seq);
    EXPECT_EQ(reply.counts, counts);
  }
}

TEST(WireRoundTrip, BatchRequestRejectsEveryTruncation) {
  seq::Rng rng(4);
  std::vector<std::uint64_t> ids(17);
  for (auto& id : ids) id = rng.next();
  std::vector<std::uint8_t> buf;
  encode_batch_request(LookupKind::kTile, kTagBatchReplyBase + 1,
                       std::span<const std::uint64_t>(ids.data(), ids.size()),
                       buf, 42);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_THROW(decode_batch_request(buf.data(), len), std::runtime_error)
        << "prefix of " << len << " bytes decoded";
  }
  // Over-long buffers are rejected too (count must match exactly).
  buf.push_back(0);
  EXPECT_THROW(decode_batch_request(buf.data(), buf.size()),
               std::runtime_error);
}

TEST(WireRoundTrip, BatchReplyRejectsEveryTruncation) {
  std::vector<std::int32_t> counts(23, -1);
  std::vector<std::uint8_t> buf;
  encode_batch_reply(
      7, std::span<const std::int32_t>(counts.data(), counts.size()), buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_THROW(decode_batch_reply(buf.data(), len), std::runtime_error)
        << "prefix of " << len << " bytes decoded";
  }
  buf.push_back(0);
  EXPECT_THROW(decode_batch_reply(buf.data(), buf.size()),
               std::runtime_error);
}

TEST(WireRoundTrip, FilterExchangeIdentity) {
  seq::Rng rng(6);
  for (const std::size_t n : {0u, 1u, 512u, 9000u}) {
    hash::OwnerFilter filter(n, 0.01);
    for (std::size_t i = 0; i < n; ++i) filter.insert(rng.next());
    const auto kind = rng.chance(0.5) ? LookupKind::kKmer : LookupKind::kTile;

    std::vector<std::uint8_t> buf;
    encode_filter_exchange(kind, filter, buf);
    ASSERT_EQ(buf.size(), filter_exchange_bytes(filter));
    ASSERT_EQ(buf.size(), sizeof(FilterExchangeHeader) + filter.wire_bytes());

    const FilterExchange back = decode_filter_exchange(buf.data(), buf.size());
    EXPECT_EQ(back.kind, kind);
    // The carried filter round-trips byte-for-byte, so it answers exactly
    // like the one the owner built.
    EXPECT_EQ(back.filter.serialize(), filter.serialize());
    EXPECT_EQ(back.filter.key_count(), filter.key_count());
  }
}

TEST(WireRoundTrip, FilterExchangeRejectsEveryTruncation) {
  seq::Rng rng(7);
  hash::OwnerFilter filter(600, 0.01);
  for (int i = 0; i < 600; ++i) filter.insert(rng.next());
  std::vector<std::uint8_t> buf;
  encode_filter_exchange(LookupKind::kTile, filter, buf);
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_THROW(decode_filter_exchange(buf.data(), len), std::runtime_error)
        << "prefix of " << len << " bytes decoded";
  }
  buf.push_back(0);
  EXPECT_THROW(decode_filter_exchange(buf.data(), buf.size()),
               std::runtime_error);
  buf.pop_back();
  // Unknown lookup kind in the frame header.
  buf[0] = 9;
  EXPECT_THROW(decode_filter_exchange(buf.data(), buf.size()),
               std::runtime_error);
}

TEST(WireRoundTrip, ReadRecordsIdentity) {
  seq::Rng rng(5);
  const char bases[] = {'A', 'C', 'G', 'T'};
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<seq::Read> reads(1 + rng.below(8));
    for (auto& r : reads) {
      r.number = rng.next();
      const std::size_t len = rng.below(200);
      r.bases.resize(len);
      r.quals.resize(len);
      for (std::size_t i = 0; i < len; ++i) {
        r.bases[i] = bases[rng.below(4)];
        r.quals[i] = static_cast<seq::qual_t>(rng.below(42));
      }
    }
    std::vector<std::uint8_t> buf;
    for (const auto& r : reads) encode_read(r, buf);
    std::vector<seq::Read> back;
    decode_reads(buf, back);
    EXPECT_EQ(back, reads);
  }
}

TEST(WireRoundTrip, ReadRecordsRejectTruncation) {
  seq::Read r;
  r.number = 9;
  r.bases = "ACGTACGT";
  r.quals.assign(8, 30);
  std::vector<std::uint8_t> buf;
  encode_read(r, buf);
  for (std::size_t len = 1; len < buf.size(); ++len) {
    std::vector<seq::Read> out;
    EXPECT_THROW(decode_reads(buf.data(), len, out), std::runtime_error)
        << "prefix of " << len << " bytes decoded";
  }
}

}  // namespace
}  // namespace reptile::parallel
