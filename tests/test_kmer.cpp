// Unit tests: packed k-mer codec.
#include "seq/kmer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "seq/rng.hpp"

namespace reptile::seq {
namespace {

TEST(KmerCodec, PackUnpackRoundTrip) {
  const KmerCodec codec(7);
  const std::string s = "GATTACA";
  EXPECT_EQ(codec.unpack(codec.pack(s)), s);
}

TEST(KmerCodec, PackedOrderMatchesLexicographic) {
  const KmerCodec codec(4);
  EXPECT_LT(codec.pack("AAAA"), codec.pack("AAAC"));
  EXPECT_LT(codec.pack("ACGT"), codec.pack("CAAA"));
  EXPECT_LT(codec.pack("GGGG"), codec.pack("TTTT"));
}

TEST(KmerCodec, RejectsInvalidK) {
  EXPECT_THROW(KmerCodec(0), std::invalid_argument);
  EXPECT_THROW(KmerCodec(33), std::invalid_argument);
  EXPECT_NO_THROW(KmerCodec(32));
}

TEST(KmerCodec, MaskCoversExactBits) {
  EXPECT_EQ(KmerCodec(1).mask(), 0x3u);
  EXPECT_EQ(KmerCodec(4).mask(), 0xFFu);
  EXPECT_EQ(KmerCodec(32).mask(), ~kmer_id_t{0});
}

TEST(KmerCodec, BaseAtReadsEveryPosition) {
  const KmerCodec codec(6);
  const kmer_id_t id = codec.pack("ACGTCA");
  EXPECT_EQ(codec.base_at(id, 0), kBaseA);
  EXPECT_EQ(codec.base_at(id, 1), kBaseC);
  EXPECT_EQ(codec.base_at(id, 2), kBaseG);
  EXPECT_EQ(codec.base_at(id, 3), kBaseT);
  EXPECT_EQ(codec.base_at(id, 4), kBaseC);
  EXPECT_EQ(codec.base_at(id, 5), kBaseA);
}

TEST(KmerCodec, SubstituteChangesOnlyTarget) {
  const KmerCodec codec(8);
  const kmer_id_t id = codec.pack("AACCGGTT");
  const kmer_id_t sub = codec.substitute(id, 3, kBaseT);
  EXPECT_EQ(codec.unpack(sub), "AACTGGTT");
  EXPECT_EQ(codec.substitute(sub, 3, kBaseC), id);
}

TEST(KmerCodec, RollSlidesWindow) {
  const KmerCodec codec(4);
  kmer_id_t id = codec.pack("ACGT");
  id = codec.roll(id, kBaseA);
  EXPECT_EQ(codec.unpack(id), "CGTA");
  id = codec.roll(id, kBaseG);
  EXPECT_EQ(codec.unpack(id), "GTAG");
}

TEST(KmerCodec, ReverseComplementMatchesStringVersion) {
  const KmerCodec codec(9);
  const std::string s = "ACGGTTACG";
  EXPECT_EQ(codec.unpack(codec.reverse_complement(codec.pack(s))),
            reverse_complement(s));
}

TEST(KmerCodec, CanonicalIsStrandInvariant) {
  const KmerCodec codec(9);
  const kmer_id_t id = codec.pack("ACGGTTACG");
  EXPECT_EQ(codec.canonical(id), codec.canonical(codec.reverse_complement(id)));
}

TEST(KmerCodec, HammingDistance) {
  const KmerCodec codec(8);
  const kmer_id_t a = codec.pack("AACCGGTT");
  EXPECT_EQ(codec.hamming_distance(a, a), 0);
  EXPECT_EQ(codec.hamming_distance(a, codec.pack("AACCGGTA")), 1);
  EXPECT_EQ(codec.hamming_distance(a, codec.pack("TACCGGTA")), 2);
  EXPECT_EQ(codec.hamming_distance(codec.pack("AAAAAAAA"),
                                   codec.pack("TTTTTTTT")),
            8);
}

TEST(KmerCodec, Neighbors1AreExactlyDistanceOne) {
  const KmerCodec codec(5);
  const kmer_id_t id = codec.pack("ACGTA");
  std::vector<kmer_id_t> neighbors;
  codec.neighbors1(id, neighbors);
  EXPECT_EQ(neighbors.size(), 15u);  // 3 * k
  const std::set<kmer_id_t> unique(neighbors.begin(), neighbors.end());
  EXPECT_EQ(unique.size(), neighbors.size());
  for (kmer_id_t n : neighbors) {
    EXPECT_EQ(codec.hamming_distance(id, n), 1);
  }
}

TEST(KmerCodec, ExtractProducesAllWindows) {
  const KmerCodec codec(3);
  std::vector<kmer_id_t> out;
  EXPECT_EQ(codec.extract("ACGTA", out), 3u);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(codec.unpack(out[0]), "ACG");
  EXPECT_EQ(codec.unpack(out[1]), "CGT");
  EXPECT_EQ(codec.unpack(out[2]), "GTA");
}

TEST(KmerCodec, ExtractOnShortReadIsEmpty) {
  const KmerCodec codec(10);
  std::vector<kmer_id_t> out;
  EXPECT_EQ(codec.extract("ACGT", out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(KmerCodec, ExtractMatchesDirectPackOnRandomSequences) {
  Rng rng(42);
  for (int k : {4, 12, 16, 31}) {
    const KmerCodec codec(k);
    std::string s(64, 'A');
    for (auto& c : s) c = char_from_base(static_cast<base_t>(rng.below(4)));
    std::vector<kmer_id_t> rolled;
    codec.extract(s, rolled);
    ASSERT_EQ(rolled.size(), s.size() - static_cast<std::size_t>(k) + 1);
    for (std::size_t i = 0; i < rolled.size(); ++i) {
      EXPECT_EQ(rolled[i], codec.pack(std::string_view(s).substr(i)))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST(KmerCodec, K32UsesFullWord) {
  const KmerCodec codec(32);
  const std::string s(32, 'T');
  EXPECT_EQ(codec.pack(s), ~kmer_id_t{0});
  EXPECT_EQ(codec.unpack(~kmer_id_t{0}), s);
}

TEST(KmerHelpers, PackUnpackConvenience) {
  EXPECT_EQ(unpack_kmer(pack_kmer("ACGT"), 4), "ACGT");
}

}  // namespace
}  // namespace reptile::seq
