// Fault injection: the chaos layer's drop/duplicate/truncate/stall faults
// and the lookup protocol's timeout/retry machinery that survives them.
//
// The contract under test (DESIGN.md §4d): with any seeded fault plan whose
// loss rate the retry budget covers, the pipeline terminates and every
// correction it applies is one the sequential baseline would apply — faults
// may only make the corrector SKIP positions (counted as degraded), never
// miscorrect them.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/pipeline.hpp"
#include "parallel/dist_pipeline.hpp"
#include "parallel/dist_spectrum.hpp"
#include "parallel/lookup_service.hpp"
#include "parallel/remote_spectrum.hpp"
#include "rtm/comm.hpp"
#include "seq/dataset.hpp"

namespace reptile {
namespace {

using namespace std::chrono_literals;

// ---- FaultPlan / config validation -----------------------------------------

TEST(FaultPlan, ValidatesRates) {
  rtm::FaultPlan plan;
  plan.seed = 1;
  plan.drop_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.drop_rate = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.drop_rate = 0.5;
  plan.stall_us = -1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan.stall_us = 0;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(plan.active());
  EXPECT_TRUE(plan.lossy());
  plan.drop_rate = 0;
  plan.duplicate_rate = 0.5;  // duplication loses nothing
  EXPECT_FALSE(plan.lossy());
  plan.truncate_rate = 0.1;
  EXPECT_TRUE(plan.lossy());
}

TEST(FaultPlan, LossyPlanWithoutRetriesIsRejected) {
  // A dropped lookup with no timeout can only hang the worker forever, so
  // the pipeline refuses the combination up front.
  seq::DatasetSpec spec{"rej", 20, 40, 200};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 3);
  parallel::DistConfig config;
  config.params.k = 8;
  config.params.tile_overlap = 2;
  config.ranks = 2;
  config.run_options.chaos.seed = 5;
  config.run_options.chaos.drop_rate = 0.1;
  EXPECT_THROW(parallel::run_distributed(ds.reads, config),
               std::invalid_argument);
  // The same plan with retries armed is accepted (and terminates).
  config.retry.timeout_ticks = 5;
  config.retry.max_retries = 10;
  EXPECT_NO_THROW(parallel::run_distributed(ds.reads, config));
}

// ---- chaos layer unit behaviour --------------------------------------------

TEST(FaultInjection, DropsAreSeededCountedAndAttributed) {
  rtm::RunOptions options;
  options.check.enabled = false;  // receivers never consume; no leak audit
  options.chaos.seed = 17;
  options.chaos.max_delay_us = 50;
  options.chaos.drop_rate = 0.3;
  static constexpr int kMessages = 300;
  auto world = rtm::run_world(
      {2, 1},
      [](rtm::Comm& comm) {
        if (comm.rank() == 0) {
          for (int m = 0; m < kMessages; ++m) {
            comm.send_value(1, 5, static_cast<std::uint64_t>(m));
          }
        }
        comm.barrier();
      },
      options);
  // The delivery thread may still be flushing; wait for the queues to empty.
  for (int i = 0; i < 1000 && !world->chaos()->idle(); ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_TRUE(world->chaos()->idle());
  const rtm::ChaosStats stats = world->chaos()->stats();
  EXPECT_EQ(stats.delivered + stats.dropped, kMessages);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_LT(stats.dropped, kMessages);  // 0.3 drop rate loses ~90 of 300
  // Drops are attributed to the sending rank's traffic counters.
  const auto traffic = world->traffic().snapshot(0);
  EXPECT_EQ(traffic.dropped_msgs, stats.dropped);
  EXPECT_EQ(world->traffic().snapshot(1).dropped_msgs, 0u);
}

TEST(FaultInjection, DuplicatesArriveBehindTheOriginalInFifoOrder) {
  rtm::RunOptions options;
  options.chaos.seed = 23;
  options.chaos.max_delay_us = 200;
  options.chaos.duplicate_rate = 0.4;
  static constexpr int kMessages = 200;
  auto world = rtm::run_world(
      {2, 1},
      [](rtm::Comm& comm) {
        if (comm.rank() == 0) {
          for (int m = 0; m < kMessages; ++m) {
            comm.send_value(1, 5, static_cast<std::uint64_t>(m));
          }
        } else {
          // With duplication the receiver sees each value once or twice, but
          // never out of order and never beyond one extra copy.
          std::uint64_t last = 0;
          int received = 0;
          int same = 0;
          while (received < kMessages || same > 0) {
            const auto m = comm.recv_match_for(
                [](const rtm::Message&) { return true; }, 50ms);
            if (!m) break;
            const auto v = m->as_value<std::uint64_t>();
            if (received > 0 && v == last) {
              --same;
              continue;  // the duplicate copy
            }
            ASSERT_EQ(v, static_cast<std::uint64_t>(received));
            last = v;
            ++received;
            same = 1;
          }
          ASSERT_EQ(received, kMessages);
        }
        comm.barrier();
      },
      options);
  const rtm::ChaosStats stats = world->chaos()->stats();
  EXPECT_GT(stats.duplicated, 0u);
  EXPECT_EQ(stats.delivered, kMessages + stats.duplicated);
  EXPECT_EQ(world->traffic().snapshot(0).duplicated_msgs, stats.duplicated);
}

TEST(FaultInjection, StallHoldsDeliveryAndWatchdogStaysQuiet) {
  // A stall window freezes ALL delivery to the destination. The blocked
  // receiver must not be diagnosed as deadlocked: the chaos layer reports
  // the held message through idle(), which the watchdog treats as progress
  // in flight. Watchdog grace (250ms) < stall (600ms), so this test fails
  // with a DeadlockError if idle() and the watchdog ever disagree.
  rtm::RunOptions options;
  options.chaos.seed = 31;
  options.chaos.max_delay_us = 0;
  options.chaos.stall_rate = 1.0;
  options.chaos.stall_us = 600000;
  auto world = rtm::run_world(
      {2, 1},
      [](rtm::Comm& comm) {
        comm.barrier();
        if (comm.rank() == 0) {
          comm.send_value(1, 5, std::uint64_t{42});
          // The message is stalled, not lost: the chaos layer is not idle
          // while it holds it.
          std::this_thread::sleep_for(100ms);
          EXPECT_FALSE(comm.world().chaos()->idle());
        } else {
          const auto t0 = std::chrono::steady_clock::now();
          EXPECT_EQ(comm.recv(0, 5).as_value<std::uint64_t>(), 42u);
          // Delivery waited out the stall window.
          EXPECT_GE(std::chrono::steady_clock::now() - t0, 400ms);
        }
        comm.barrier();
      },
      options);
  const rtm::ChaosStats stats = world->chaos()->stats();
  EXPECT_GE(stats.stalls_opened, 1u);
  EXPECT_EQ(stats.delivered, 1u);
}

TEST(FaultInjection, DestructorDrainsHeldMessagesInstantly) {
  // Shutdown guarantee: ~ChaosDelayer delivers everything still queued
  // immediately, ignoring release times and stall windows. With 2-second
  // delays on every message, a run that exits right after sending must
  // still tear down in a fraction of that.
  rtm::RunOptions options;
  options.check.enabled = false;  // drained messages are never consumed
  options.chaos.seed = 41;
  options.chaos.max_delay_us = 2000000;
  options.chaos.stall_rate = 1.0;
  options.chaos.stall_us = 2000000;
  auto world = rtm::run_world(
      {2, 1},
      [](rtm::Comm& comm) {
        if (comm.rank() == 0) {
          for (int m = 0; m < 50; ++m) {
            comm.send_value(1, 5, static_cast<std::uint64_t>(m));
          }
        }
        comm.barrier();
      },
      options);
  EXPECT_FALSE(world->chaos()->idle());  // held behind delays + stalls
  const auto t0 = std::chrono::steady_clock::now();
  world.reset();  // ~World -> ~ChaosDelayer drain
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1s);
}

// ---- lookup protocol under faults ------------------------------------------

core::CorrectorParams small_params() {
  core::CorrectorParams p;
  p.k = 8;
  p.tile_overlap = 2;
  p.kmer_threshold = 1;
  p.tile_threshold = 1;
  return p;
}

TEST(FaultInjection, StaleRepliesAreSuppressedBySequenceNumber) {
  // A reply whose echoed seq does not match the outstanding request must be
  // discarded, not consumed as the answer. Rank 0 forges a stale reply and
  // parks it in rank 1's mailbox ahead of the real one.
  seq::DatasetSpec spec{"stale", 80, 40, 300};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 11);
  const auto params = small_params();
  rtm::run_world({2, 1}, [&](rtm::Comm& comm) {
    parallel::DistSpectrum spectrum(params, parallel::Heuristics{}, comm);
    for (const auto& r : ds.reads) spectrum.add_read(r.bases);
    spectrum.exchange_to_owners();

    // Rank 0 picks a k-mer it owns and tells rank 1 its count.
    std::uint64_t probe_id = 0;
    std::uint32_t probe_count = 0;
    if (comm.rank() == 0) {
      spectrum.hash_kmers().for_each([&](std::uint64_t id, std::uint32_t c) {
        if (probe_count == 0) {
          probe_id = id;
          probe_count = c;
        }
      });
      ASSERT_GT(probe_count, 0u);
      comm.send_value(1, 99, probe_id);
      comm.send_value(1, 98, static_cast<std::uint64_t>(probe_count));
      // The forged stale reply: FIFO puts it ahead of the service's real
      // reply to the same (source, tag) stream.
      parallel::LookupReply stale;
      stale.seq = 9999;
      stale.count = 77777;
      comm.send_value(1, parallel::reply_tag(parallel::LookupKind::kKmer),
                      stale);
    }
    comm.barrier();

    comm.reset_done();
    if (comm.rank() == 0) {
      parallel::LookupService service(comm, spectrum);
      std::thread server([&service] { service.serve(); });
      comm.signal_done();
      server.join();
    } else {
      probe_id = comm.recv(0, 99).as_value<std::uint64_t>();
      probe_count = static_cast<std::uint32_t>(
          comm.recv(0, 98).as_value<std::uint64_t>());
      parallel::RemoteSpectrumView view(comm, spectrum);
      EXPECT_EQ(view.kmer_count(probe_id), probe_count);
      EXPECT_EQ(view.remote_stats().stale_replies_suppressed, 1u);
      EXPECT_EQ(view.degraded_lookups(), 0u);
      comm.signal_done();
    }
    comm.barrier();
  });
}

TEST(FaultInjection, RetriesRecoverDroppedLookups) {
  // Scalar lookups against a live service through a lossy link: every
  // lookup either returns the true count or degrades to a conservative 0
  // after the retry budget — it never returns a wrong nonzero count.
  seq::DatasetSpec spec{"drop", 100, 40, 400};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 19);
  const auto params = small_params();

  rtm::RunOptions options;
  options.chaos.seed = 77;
  options.chaos.max_delay_us = 100;
  options.chaos.drop_rate = 0.25;
  parallel::RetryPolicy retry;
  retry.timeout_ticks = 5;   // 500us base timeout, doubling per attempt
  retry.max_retries = 12;
  rtm::run_world(
      {2, 1},
      [&](rtm::Comm& comm) {
        parallel::DistSpectrum spectrum(params, parallel::Heuristics{}, comm);
        for (const auto& r : ds.reads) spectrum.add_read(r.bases);
        spectrum.exchange_to_owners();
        comm.reset_done();
        if (comm.rank() == 0) {
          parallel::LookupService service(comm, spectrum);
          std::thread server([&service] { service.serve(); });
          comm.signal_done();
          server.join();
        } else {
          parallel::RemoteSpectrumView view(comm, spectrum, 0, false, retry);
          core::SpectrumExtractor extractor(params);
          std::vector<seq::kmer_id_t> kmers;
          std::vector<seq::tile_id_t> tiles;
          extractor.extract(ds.reads[0].bases, kmers, tiles);
          core::LocalSpectrum local(params);
          for (const auto& r : ds.reads) local.add_read(r.bases);
          for (auto id : kmers) {
            const std::uint64_t degraded_before = view.degraded_lookups();
            const std::uint32_t got = view.kmer_count(id);
            // Both ranks ingested every read, so owners hold 2x the local
            // count. A degraded lookup reports 0, anything else must be
            // exact.
            if (view.degraded_lookups() == degraded_before) {
              ASSERT_EQ(got, 2 * local.kmer_count(id));
            } else {
              ASSERT_EQ(got, 0u);
            }
          }
          const auto& rs = view.remote_stats();
          EXPECT_GT(rs.lookup_timeouts + rs.lookup_retries, 0u);
          comm.signal_done();
        }
        comm.barrier();
      },
      options);
}

// ---- full pipeline: degradation may skip, never miscorrect -----------------

TEST(FaultInjection, PipelineUnderLossyChaosNeverMiscorrects) {
  seq::DatasetSpec spec{"lossy", 500, 60, 1000};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.005;
  errors.error_rate_end = 0.012;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 29);
  core::CorrectorParams params;
  params.k = 10;
  params.tile_overlap = 4;
  params.chunk_size = 64;
  const auto ref = core::run_sequential(ds.reads, params);

  parallel::DistConfig config;
  config.params = params;
  config.ranks = 4;
  config.run_options.chaos.seed = 101;
  config.run_options.chaos.max_delay_us = 150;
  config.run_options.chaos.drop_rate = 0.08;
  config.run_options.chaos.duplicate_rate = 0.05;
  config.run_options.chaos.truncate_rate = 0.03;
  config.run_options.chaos.stall_rate = 0.002;
  config.run_options.chaos.stall_us = 2000;
  config.retry.timeout_ticks = 5;
  config.retry.max_retries = 12;

  const auto result = parallel::run_distributed(ds.reads, config);
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  std::uint64_t degraded_tiles = 0;
  std::uint64_t degraded_lookups = 0;
  for (const auto& r : result.ranks) {
    degraded_tiles += r.tiles_degraded;
    degraded_lookups += r.remote.degraded_lookups;
    // The audit layer understands the retry protocol: retransmissions and
    // duplicate replies are classified, not reported as leaks or orphans.
    EXPECT_EQ(r.check.fifo_violations, 0u) << "rank " << r.rank;
    EXPECT_EQ(r.check.leaked_messages, 0u) << "rank " << r.rank;
    EXPECT_EQ(r.check.orphaned_replies, 0u) << "rank " << r.rank;
  }
  // Conservative identity: every read is either corrected exactly as the
  // sequential baseline corrects it, or (when its evidence degraded) left
  // with strictly fewer substitutions applied — never different ones.
  std::size_t divergent = 0;
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].number, ref.corrected[i].number);
    if (result.corrected[i].bases == ref.corrected[i].bases) continue;
    ++divergent;
    // A divergent read must differ from the reference only where the
    // reference corrected the ORIGINAL read: the distributed run may have
    // skipped that substitution (kept the original base), never invented
    // a new one.
    const std::string& original = ds.reads[i].bases;
    const std::string& seq_fixed = ref.corrected[i].bases;
    const std::string& dist = result.corrected[i].bases;
    ASSERT_EQ(dist.size(), seq_fixed.size());
    for (std::size_t b = 0; b < dist.size(); ++b) {
      if (dist[b] != seq_fixed[b]) {
        EXPECT_EQ(dist[b], original[b])
            << "read " << ref.corrected[i].number << " base " << b
            << ": distributed run invented a substitution the sequential "
               "baseline never applied";
      }
    }
  }
  // Skips only happen when something actually degraded.
  if (degraded_tiles == 0) {
    EXPECT_EQ(divergent, 0u);
    EXPECT_EQ(result.total_substitutions(), ref.substitutions);
  }
  EXPECT_LE(result.total_substitutions(), ref.substitutions);
  // The fault plan did fire (seeded, so this is stable).
  std::uint64_t dropped = 0;
  for (const auto& r : result.ranks) dropped += r.check.chaos_dropped;
  EXPECT_GT(dropped, 0u);
  (void)degraded_lookups;
}

TEST(FaultInjection, FaultFreeRunHasZeroFaultCounters) {
  // With chaos off and retries off, every new counter must stay zero and
  // the output must be bit-identical to the sequential baseline — the
  // protocol extension is invisible on the fault-free path.
  seq::DatasetSpec spec{"clean", 300, 50, 700};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.005;
  errors.error_rate_end = 0.01;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 57);
  core::CorrectorParams params;
  params.k = 10;
  params.tile_overlap = 4;
  params.chunk_size = 64;
  const auto ref = core::run_sequential(ds.reads, params);

  parallel::DistConfig config;
  config.params = params;
  config.ranks = 4;
  const auto result = parallel::run_distributed(ds.reads, config);
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases);
  }
  EXPECT_EQ(result.total_substitutions(), ref.substitutions);
  for (const auto& r : result.ranks) {
    EXPECT_EQ(r.tiles_degraded, 0u);
    EXPECT_EQ(r.remote.lookup_retries, 0u);
    EXPECT_EQ(r.remote.lookup_timeouts, 0u);
    EXPECT_EQ(r.remote.degraded_lookups, 0u);
    EXPECT_EQ(r.remote.stale_replies_suppressed, 0u);
    EXPECT_EQ(r.remote.malformed_replies, 0u);
    EXPECT_EQ(r.remote.batch_retries, 0u);
    EXPECT_EQ(r.remote.batch_abandoned, 0u);
    EXPECT_EQ(r.service.malformed_requests, 0u);
    EXPECT_EQ(r.check.retransmits, 0u);
    EXPECT_EQ(r.check.stale_reply_sends, 0u);
    EXPECT_EQ(r.check.chaos_dropped, 0u);
    EXPECT_EQ(r.check.chaos_duplicated, 0u);
    EXPECT_EQ(r.check.chaos_truncated, 0u);
    EXPECT_EQ(r.check.stale_leaks, 0u);
    EXPECT_EQ(r.traffic.dropped_msgs, 0u);
    EXPECT_EQ(r.traffic.duplicated_msgs, 0u);
  }
}

}  // namespace
}  // namespace reptile
