#pragma once
// Deterministic failure replay for the seeded concurrency tests
// (test_rtm_ring / test_rtm_stress / test_chaos_ring).
//
// Every randomized schedule in those suites derives its seed through
// derive(local): with the default base seed (no RTM_TEST_SEED set) that
// is the identity, so unseeded runs keep their historical schedules;
// RTM_TEST_SEED=n deterministically shifts every derived seed, which is
// how CI re-rolls the dice and how a failure is replayed bit-for-bit.
//
// install_seed_reporter() hooks a gtest listener that, on any failing
// test, prints the base seed and the exact one-line command reproducing
// that test under it.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

namespace rtm_test {

inline std::uint64_t base_seed() {
  static const std::uint64_t s = [] {
    const char* v = std::getenv("RTM_TEST_SEED");
    return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10)
                                        : std::uint64_t{0};
  }();
  return s;
}

/// Folds the run's base seed into a test's fixed local seed (splitmix64
/// finalizer, so nearby locals stay decorrelated). Base 0 = identity.
inline std::uint64_t derive(std::uint64_t local) {
  const std::uint64_t base = base_seed();
  if (base == 0) return local;
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * (local + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace detail {

class SeedReporter : public ::testing::EmptyTestEventListener {
 public:
  explicit SeedReporter(std::string binary) : binary_(std::move(binary)) {}

  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() == nullptr || !info.result()->Failed()) return;
    std::cerr << "[rtm-test] base seed " << base_seed()
              << "; replay: RTM_TEST_SEED=" << base_seed() << " ./" << binary_
              << " --gtest_filter=" << info.test_suite_name() << "."
              << info.name() << "\n";
  }

 private:
  std::string binary_;
};

}  // namespace detail

/// Registers the failure reporter once; call from a namespace-scope
/// initializer so it precedes RUN_ALL_TESTS:
///   const bool kSeedReporter = rtm_test::install_seed_reporter("test_x");
inline bool install_seed_reporter(const char* binary) {
  static const bool once = [binary] {
    ::testing::UnitTest::GetInstance()->listeners().Append(
        new detail::SeedReporter(binary));
    return true;
  }();
  return once;
}

}  // namespace rtm_test
