// Unit tests: FASTA + quality IO and Step I partitioned reading.
#include "seq/fasta_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "seq/dataset.hpp"

namespace reptile::seq {
namespace {

namespace fs = std::filesystem;

class FastaIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "reptile_fasta_test";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::vector<Read> make_reads(std::size_t n, int len = 30) {
    DatasetSpec spec{"t", n, len, n * 10};
    auto ds = SyntheticDataset::generate(spec, {}, 77);
    return std::move(ds.reads);
  }

  fs::path dir_;
};

TEST_F(FastaIoTest, WriteReadRoundTrip) {
  const auto reads = make_reads(25);
  write_read_files(dir_ / "r.fa", dir_ / "r.qual", reads);
  const auto back = read_all(dir_ / "r.fa", dir_ / "r.qual");
  EXPECT_EQ(back, reads);
}

TEST_F(FastaIoTest, ParseHeaderAcceptsOnlyNumericHeaders) {
  EXPECT_EQ(detail::parse_header(">12"), 12u);
  EXPECT_EQ(detail::parse_header(">1"), 1u);
  EXPECT_FALSE(detail::parse_header("ACGT"));
  EXPECT_FALSE(detail::parse_header(">abc"));
  EXPECT_FALSE(detail::parse_header(">"));
  EXPECT_FALSE(detail::parse_header(""));
  EXPECT_EQ(detail::parse_header(">7\r"), 7u);  // CRLF tolerance
}

TEST_F(FastaIoTest, SinglePartitionSeesEverything) {
  const auto reads = make_reads(40);
  write_read_files(dir_ / "r.fa", dir_ / "r.qual", reads);
  PartitionedReadSource src(dir_ / "r.fa", dir_ / "r.qual", 0, 1);
  EXPECT_EQ(src.size(), 40u);
  ReadBatch batch;
  std::vector<Read> got;
  while (src.next_chunk(7, batch)) {
    got.insert(got.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(got, reads);
}

TEST_F(FastaIoTest, PartitionsAreDisjointAndComplete) {
  const auto reads = make_reads(101);
  write_read_files(dir_ / "r.fa", dir_ / "r.qual", reads);
  for (int np : {2, 3, 5, 8}) {
    std::vector<Read> got;
    std::size_t total = 0;
    for (int rank = 0; rank < np; ++rank) {
      PartitionedReadSource src(dir_ / "r.fa", dir_ / "r.qual", rank, np);
      total += src.size();
      ReadBatch batch;
      while (src.next_chunk(13, batch)) {
        got.insert(got.end(), batch.begin(), batch.end());
      }
    }
    EXPECT_EQ(total, reads.size()) << "np=" << np;
    ASSERT_EQ(got.size(), reads.size()) << "np=" << np;
    // Ranks cover ascending, contiguous, disjoint subsets.
    EXPECT_EQ(got, reads) << "np=" << np;
  }
}

TEST_F(FastaIoTest, PartitionBoundariesAreContiguous) {
  const auto reads = make_reads(64);
  write_read_files(dir_ / "r.fa", dir_ / "r.qual", reads);
  const int np = 4;
  seq_num_t expected_first = 1;
  for (int rank = 0; rank < np; ++rank) {
    PartitionedReadSource src(dir_ / "r.fa", dir_ / "r.qual", rank, np);
    EXPECT_EQ(src.first_sequence(), expected_first);
    expected_first = src.end_sequence();
  }
  EXPECT_EQ(expected_first, 65u);
}

TEST_F(FastaIoTest, MorePartitionsThanReads) {
  const auto reads = make_reads(3);
  write_read_files(dir_ / "r.fa", dir_ / "r.qual", reads);
  std::size_t total = 0;
  for (int rank = 0; rank < 8; ++rank) {
    PartitionedReadSource src(dir_ / "r.fa", dir_ / "r.qual", rank, 8);
    total += src.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST_F(FastaIoTest, ResetReplaysTheSameReads) {
  const auto reads = make_reads(30);
  write_read_files(dir_ / "r.fa", dir_ / "r.qual", reads);
  PartitionedReadSource src(dir_ / "r.fa", dir_ / "r.qual", 1, 3);
  ReadBatch batch;
  std::vector<Read> first_pass, second_pass;
  while (src.next_chunk(4, batch)) {
    first_pass.insert(first_pass.end(), batch.begin(), batch.end());
  }
  src.reset();
  while (src.next_chunk(9, batch)) {
    second_pass.insert(second_pass.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(first_pass, second_pass);
  EXPECT_FALSE(first_pass.empty());
}

TEST_F(FastaIoTest, SeekToRecordFindsTargets) {
  const auto reads = make_reads(200);
  write_qual(dir_ / "r.qual", reads);
  std::ifstream in(dir_ / "r.qual", std::ios::binary);
  for (seq_num_t target : {1u, 2u, 57u, 100u, 199u, 200u}) {
    const auto pos = detail::seek_to_record(in, target, 200);
    in.clear();
    in.seekg(pos);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(detail::parse_header(line), target);
  }
}

TEST_F(FastaIoTest, SeekToMissingRecordThrows) {
  const auto reads = make_reads(10);
  write_qual(dir_ / "r.qual", reads);
  std::ifstream in(dir_ / "r.qual", std::ios::binary);
  EXPECT_THROW(detail::seek_to_record(in, 11, 10), std::runtime_error);
}

TEST_F(FastaIoTest, MismatchedQualityLengthThrows) {
  auto reads = make_reads(5);
  write_fasta(dir_ / "r.fa", reads);
  reads[2].quals.pop_back();
  write_qual(dir_ / "r.qual", reads);
  EXPECT_THROW(read_all(dir_ / "r.fa", dir_ / "r.qual"), std::runtime_error);
}

TEST_F(FastaIoTest, MissingFileThrows) {
  EXPECT_THROW(read_all(dir_ / "nope.fa", dir_ / "nope.qual"),
               std::runtime_error);
}

}  // namespace
}  // namespace reptile::seq
