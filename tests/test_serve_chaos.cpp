// Chaos tests: the resident correction server under fault injection.
//
// Serve mode only accepts LOSSLESS chaos plans (stalls/duplicates/delays —
// the job announce/complete control messages are not retransmitted), so
// these rows pin the serve contract under the adversarial-but-lossless
// schedules: a stalled rank slows a job, a blown deadline degrades exactly
// that job, and the server survives to run the next job clean.
#include "parallel/serve.hpp"

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams test_params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 32;
  return p;
}

std::vector<seq::Read> dataset(int reads = 400) {
  seq::DatasetSpec spec{"serve-chaos", reads, 70, 1200};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.004;
  errors.error_rate_end = 0.012;
  return seq::SyntheticDataset::generate(spec, errors, 99).reads;
}

/// Lossless adversarial delivery: every message arrives, some very late.
rtm::FaultPlan stall_plan(std::uint64_t seed) {
  rtm::FaultPlan plan;
  plan.seed = seed;
  plan.max_delay_us = 300;
  plan.stall_rate = 0.05;
  plan.stall_us = 2000;
  plan.duplicate_rate = 0.02;
  return plan;
}

TEST(ServeChaos, StalledMessagesNeverChangeServedBytes) {
  const std::vector<seq::Read> reads = dataset();
  DistConfig config;
  config.params = test_params();
  config.ranks = 2;

  // Clean reference, no chaos.
  const DistResult reference = run_distributed(reads, config);

  // Same config under stalls; retries stay off, so every lookup simply
  // waits the stall out — bytes must not move.
  config.run_options.chaos = stall_plan(4242);
  CorrectionServer server(reads, config);
  for (int j = 0; j < 2; ++j) {
    JobRequest request;
    request.reads = reads;
    const JobReport report = server.submit(std::move(request)).get();
    EXPECT_FALSE(report.degraded) << "job " << j;
    ASSERT_EQ(report.corrected.size(), reference.corrected.size());
    for (std::size_t i = 0; i < reference.corrected.size(); ++i) {
      ASSERT_EQ(report.corrected[i].bases, reference.corrected[i].bases)
          << "read " << reference.corrected[i].number << " job " << j;
    }
  }
  server.shutdown();
  EXPECT_EQ(server.stats().jobs_degraded, 0u);
}

TEST(ServeChaos, StalledRankDegradesTheJobServerSurvivesNextJobClean) {
  const std::vector<seq::Read> reads = dataset();
  DistConfig config;
  config.params = test_params();
  config.ranks = 2;
  const DistResult reference = run_distributed(reads, config);

  config.run_options.chaos = stall_plan(31415);
  CorrectionServer server(reads, config);

  // Job 1: the stalls plus an unmeetable deadline — the rank that is being
  // stalled cannot finish in time, the job finishes conservatively and is
  // marked degraded. The server must survive it.
  JobRequest rushed;
  rushed.reads = reads;
  rushed.overrides.deadline_seconds = 1e-9;
  const JobReport degraded = server.submit(std::move(rushed)).get();
  EXPECT_TRUE(degraded.deadline_missed);
  EXPECT_TRUE(degraded.degraded);
  ASSERT_EQ(degraded.corrected.size(), reads.size());
  // Conservative means never wrong: anything it did change matches the
  // clean reference; skipped reads pass through untouched.
  for (std::size_t i = 0; i < reads.size(); ++i) {
    const seq::Read& got = degraded.corrected[i];
    if (got.bases != reads[i].bases) {
      EXPECT_EQ(got.bases, reference.corrected[i].bases)
          << "read " << got.number;
    }
  }

  // Job 2, same server, no deadline: clean and byte-identical.
  JobRequest relaxed;
  relaxed.reads = reads;
  const JobReport clean = server.submit(std::move(relaxed)).get();
  EXPECT_FALSE(clean.degraded);
  EXPECT_FALSE(clean.deadline_missed);
  ASSERT_EQ(clean.corrected.size(), reference.corrected.size());
  for (std::size_t i = 0; i < reference.corrected.size(); ++i) {
    ASSERT_EQ(clean.corrected[i].bases, reference.corrected[i].bases)
        << "read " << reference.corrected[i].number;
  }

  server.shutdown();
  EXPECT_EQ(server.stats().jobs_completed, 2u);
  EXPECT_EQ(server.stats().jobs_degraded, 1u);
  EXPECT_EQ(server.stats().spectrum_builds, 2u);
}

TEST(ServeChaos, RetryDegradedEvidenceIsAccountedPerJob) {
  const std::vector<seq::Read> reads = dataset(150);
  DistConfig config;
  config.params = test_params();
  config.ranks = 2;
  // Heavy stalls + an aggressive per-job retry budget: lookups that give
  // up degrade the evidence, the corrector skips conservatively, and the
  // job's degraded flag must agree with the per-rank counters. (The stall
  // magnitude is kept moderate because the follow-up no-retry job must
  // block through every stall.)
  config.run_options.chaos = stall_plan(2718);
  config.run_options.chaos.stall_rate = 0.25;
  config.run_options.chaos.stall_us = 3000;

  CorrectionServer server(reads, config);
  JobRequest request;
  request.reads = reads;
  request.overrides.retry = RetryPolicy{/*timeout_ticks=*/1,
                                        /*max_retries=*/0};
  const JobReport report = server.submit(std::move(request)).get();

  std::uint64_t degraded_evidence = 0;
  for (const RankReport& rank : report.ranks) {
    degraded_evidence += rank.remote.degraded_lookups + rank.tiles_degraded +
                         rank.reads_deadline_skipped;
  }
  EXPECT_EQ(report.degraded, degraded_evidence > 0);
  EXPECT_FALSE(report.deadline_missed);
  EXPECT_EQ(report.corrected.size(), reads.size());

  // The retry override was job-lifetime: a follow-up job with no retry
  // budget blocks through the stalls and comes back clean.
  JobRequest patient;
  patient.reads = reads;
  const JobReport second = server.submit(std::move(patient)).get();
  EXPECT_FALSE(second.degraded);

  server.shutdown();
  EXPECT_EQ(server.stats().jobs_completed, 2u);
}

}  // namespace
}  // namespace reptile::parallel
