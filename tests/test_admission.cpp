// Unit tests: the bounded admission queue of the correction server
// (parallel/admission.hpp) — depth bound, blocking backpressure, refusal
// semantics, and drain-on-close ordering.
#include "parallel/admission.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

namespace reptile::parallel {
namespace {

TEST(AdmissionQueue, RejectsZeroDepth) {
  EXPECT_THROW(AdmissionQueue<int>(0), std::invalid_argument);
}

TEST(AdmissionQueue, FifoWithinDepth) {
  AdmissionQueue<int> q(4);
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_TRUE(q.submit(1));
  EXPECT_TRUE(q.submit(2));
  EXPECT_TRUE(q.submit(3));
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
  EXPECT_EQ(q.size(), 0u);
}

TEST(AdmissionQueue, TrySubmitRefusesWhenFull) {
  AdmissionQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_submit(a));
  EXPECT_TRUE(q.try_submit(b));
  EXPECT_FALSE(q.try_submit(c));
  EXPECT_EQ(c, 3);  // refused item is untouched
  ASSERT_EQ(q.pop(), 1);
  EXPECT_TRUE(q.try_submit(c));  // a pop frees a slot
}

TEST(AdmissionQueue, SubmitBlocksUntilPopFreesASlot) {
  AdmissionQueue<int> q(1);
  ASSERT_TRUE(q.submit(1));
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.submit(2));  // must block: queue is full
    admitted.store(true);
  });
  // The producer stays blocked while the queue is full. (A sleep cannot
  // prove "never admitted", but a racing pass would show up as flaky.)
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(q.pop(), 1);
  producer.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(q.pop(), 2);
}

TEST(AdmissionQueue, CloseRefusesNewButDrainsQueued) {
  AdmissionQueue<int> q(4);
  ASSERT_TRUE(q.submit(1));
  ASSERT_TRUE(q.submit(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.submit(3));
  int x = 4;
  EXPECT_FALSE(q.try_submit(x));
  // Already-admitted items still drain, in order, before the nullopt.
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // terminal state is sticky
}

TEST(AdmissionQueue, CloseUnblocksABlockedSubmitter) {
  AdmissionQueue<int> q(1);
  ASSERT_TRUE(q.submit(1));
  std::thread producer([&] {
    EXPECT_FALSE(q.submit(2));  // blocked on full, then refused by close
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(AdmissionQueue, CloseUnblocksABlockedConsumer) {
  AdmissionQueue<int> q(1);
  std::thread consumer([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(AdmissionQueue, ManyProducersOneConsumerLosesNothing) {
  AdmissionQueue<int> q(3);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.submit(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    std::optional<int> item = q.pop();
    ASSERT_TRUE(item.has_value());
    seen.push_back(*item);
  }
  for (std::thread& t : producers) t.join();
  q.close();
  EXPECT_EQ(q.pop(), std::nullopt);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kProducers * kPerProducer; ++i) {
    ASSERT_EQ(seen[static_cast<std::size_t>(i)], i);  // no loss, no dup
  }
}

TEST(AdmissionQueue, MoveOnlyPayload) {
  AdmissionQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.submit(std::make_unique<int>(7)));
  auto popped = q.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(**popped, 7);
}

}  // namespace
}  // namespace reptile::parallel
