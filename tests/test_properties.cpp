// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// invariants that must hold across the whole parameter space, not just the
// defaults the other suites use.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/pipeline.hpp"
#include "hash/count_table.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"
#include "seq/kmer.hpp"
#include "seq/rng.hpp"
#include "seq/tile.hpp"

namespace reptile {
namespace {

// --- k-mer codec properties over every supported k ---------------------------

class KmerCodecProperty : public ::testing::TestWithParam<int> {};

TEST_P(KmerCodecProperty, RoundTripSubstituteRollCanonical) {
  const int k = GetParam();
  const seq::KmerCodec codec(k);
  seq::Rng rng(static_cast<std::uint64_t>(k));
  for (int trial = 0; trial < 50; ++trial) {
    const seq::kmer_id_t id = rng.next() & codec.mask();
    // Pack/unpack round trip.
    EXPECT_EQ(codec.pack(codec.unpack(id)), id);
    // Substitution at a random position writes exactly that base.
    const int pos = static_cast<int>(rng.below(static_cast<std::uint64_t>(k)));
    const auto b = static_cast<seq::base_t>(rng.below(4));
    const seq::kmer_id_t sub = codec.substitute(id, pos, b);
    EXPECT_EQ(codec.base_at(sub, pos), b);
    EXPECT_LE(codec.hamming_distance(id, sub), 1);
    // Reverse complement is an involution; canonical is strand-invariant.
    EXPECT_EQ(codec.reverse_complement(codec.reverse_complement(id)), id);
    EXPECT_EQ(codec.canonical(id),
              codec.canonical(codec.reverse_complement(id)));
    // Rolling keeps the window inside the mask.
    EXPECT_EQ(codec.roll(id, b) & ~codec.mask(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllK, KmerCodecProperty,
                         ::testing::Values(1, 2, 4, 8, 12, 15, 16, 21, 31, 32));

// --- tile codec properties over the (k, overlap) grid -------------------------

struct TileGeometry {
  int k;
  int overlap;
};

class TileCodecProperty : public ::testing::TestWithParam<TileGeometry> {};

TEST_P(TileCodecProperty, GeometryAndChainInvariants) {
  const auto [k, overlap] = GetParam();
  const seq::TileCodec codec(k, overlap);
  EXPECT_EQ(codec.tile_len(), 2 * k - overlap);
  EXPECT_LE(codec.tile_len(), 32);

  // Random reads: tiles cover the read, consecutive strided tiles chain
  // through a shared k-mer, and combine() inverts the split.
  seq::Rng rng(static_cast<std::uint64_t>(k * 100 + overlap));
  for (int len : {codec.tile_len(), codec.tile_len() + 3, 60, 101}) {
    std::string read(static_cast<std::size_t>(len), 'A');
    for (auto& c : read) {
      c = seq::char_from_base(static_cast<seq::base_t>(rng.below(4)));
    }
    const auto positions = codec.tile_positions(len);
    ASSERT_FALSE(positions.empty());
    EXPECT_EQ(positions.front(), 0);
    EXPECT_EQ(positions.back() + codec.tile_len(), len);
    std::vector<seq::tile_id_t> tiles;
    codec.extract(read, tiles);
    ASSERT_EQ(tiles.size(), positions.size());
    for (std::size_t i = 0; i < tiles.size(); ++i) {
      EXPECT_EQ(codec.combine(codec.first_kmer(tiles[i]),
                              codec.second_kmer(tiles[i])),
                tiles[i]);
      // Strided neighbors share a k-mer (tail tile may not be strided).
      if (i + 1 < tiles.size() &&
          positions[i + 1] - positions[i] == codec.step()) {
        EXPECT_EQ(codec.second_kmer(tiles[i]), codec.first_kmer(tiles[i + 1]));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TileCodecProperty,
    ::testing::Values(TileGeometry{4, 0}, TileGeometry{4, 3},
                      TileGeometry{8, 2}, TileGeometry{10, 4},
                      TileGeometry{12, 4}, TileGeometry{12, 8},
                      TileGeometry{16, 0}, TileGeometry{16, 15}),
    [](const ::testing::TestParamInfo<TileGeometry>& info) {
      return "k" + std::to_string(info.param.k) + "_o" +
             std::to_string(info.param.overlap);
    });

// --- count table vs reference map, across load patterns ----------------------

class CountTableProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CountTableProperty, AgreesWithReferenceUnderMixedWorkload) {
  const std::uint64_t key_space = GetParam();
  hash::CountTable<> table;
  std::map<std::uint64_t, std::uint32_t> reference;
  seq::Rng rng(key_space);
  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.below(key_space);
    const double dice = rng.uniform();
    if (dice < 0.70) {
      const auto delta = static_cast<std::uint32_t>(1 + rng.below(3));
      table.increment(key, delta);
      reference[key] += delta;
    } else if (dice < 0.85) {
      EXPECT_EQ(table.erase(key), reference.erase(key) > 0);
    } else {
      const auto got = table.find(key);
      const auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  EXPECT_EQ(table.size(), reference.size());
  std::size_t visited = 0;
  table.for_each([&](std::uint64_t k, std::uint32_t c) {
    ++visited;
    const auto it = reference.find(k);
    ASSERT_NE(it, reference.end());
    EXPECT_EQ(c, it->second);
  });
  EXPECT_EQ(visited, reference.size());
}

INSTANTIATE_TEST_SUITE_P(KeySpaces, CountTableProperty,
                         ::testing::Values(8, 64, 1024, 1 << 20),
                         [](const auto& info) {
                           return "keys_" + std::to_string(info.param);
                         });

// --- distributed identity across corrector geometries -------------------------

struct GeometryCase {
  int k;
  int overlap;
  unsigned threshold;
  bool canonical;
};

class DistIdentityGeometry : public ::testing::TestWithParam<GeometryCase> {};

TEST_P(DistIdentityGeometry, DistributedMatchesSequential) {
  const auto gc = GetParam();
  core::CorrectorParams params;
  params.k = gc.k;
  params.tile_overlap = gc.overlap;
  params.kmer_threshold = gc.threshold;
  params.tile_threshold = gc.threshold;
  params.canonical = gc.canonical;
  params.chunk_size = 128;

  seq::DatasetSpec spec{"geom", 700, 60, 1500};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.005;
  errors.error_rate_end = 0.01;
  const auto ds = seq::SyntheticDataset::generate(
      spec, errors, 1000 + static_cast<std::uint64_t>(gc.k));

  const auto ref = core::run_sequential(ds.reads, params);
  parallel::DistConfig config;
  config.params = params;
  config.ranks = 4;
  config.ranks_per_node = 2;
  const auto dist = parallel::run_distributed(ds.reads, config);
  ASSERT_EQ(dist.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(dist.corrected[i].bases, ref.corrected[i].bases)
        << "read " << ref.corrected[i].number;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DistIdentityGeometry,
    ::testing::Values(GeometryCase{8, 0, 2, false},
                      GeometryCase{8, 4, 3, false},
                      GeometryCase{12, 4, 3, false},
                      GeometryCase{12, 4, 3, true},
                      GeometryCase{14, 8, 2, false},
                      GeometryCase{16, 8, 4, true}),
    [](const ::testing::TestParamInfo<GeometryCase>& info) {
      return "k" + std::to_string(info.param.k) + "_o" +
             std::to_string(info.param.overlap) + "_t" +
             std::to_string(info.param.threshold) +
             (info.param.canonical ? "_canon" : "");
    });

// --- ownership partition property ---------------------------------------------

class OwnershipProperty : public ::testing::TestWithParam<int> {};

TEST_P(OwnershipProperty, EveryIdHasExactlyOneOwner) {
  const int np = GetParam();
  seq::Rng rng(static_cast<std::uint64_t>(np));
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t id = rng.next();
    const int owner = hash::owner_of(id, np);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, np);
    // Determinism: the owner never depends on who asks.
    EXPECT_EQ(owner, hash::owner_of(id, np));
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, OwnershipProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 128, 8192, 32768));

}  // namespace
}  // namespace reptile
