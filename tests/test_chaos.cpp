// Chaos tests: the full protocol stack under randomized message delays.
// Every guarantee must hold no matter how long the "network" sits on a
// message: per-destination FIFO, request/reply matching, termination, and
// bit-identical pipeline output.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "parallel/dist_pipeline.hpp"
#include "parallel/dist_spectrum.hpp"
#include "parallel/lookup_service.hpp"
#include "parallel/rebalance.hpp"
#include "parallel/remote_spectrum.hpp"
#include "rtm/comm.hpp"
#include "seq/dataset.hpp"

#include <algorithm>
#include <mutex>
#include <thread>

namespace reptile {
namespace {

TEST(Chaos, PerDestinationFifoSurvivesDelays) {
  rtm::RunOptions chaos;
  chaos.chaos.seed = 42;
  chaos.chaos.max_delay_us = 400;
  rtm::run_world(
      {4, 2},
      [](rtm::Comm& comm) {
        constexpr int kMessages = 150;
        for (int dst = 0; dst < comm.size(); ++dst) {
          if (dst == comm.rank()) continue;
          for (int m = 0; m < kMessages; ++m) {
            comm.send_value(dst, 3, static_cast<std::uint64_t>(m));
          }
        }
        for (int src = 0; src < comm.size(); ++src) {
          if (src == comm.rank()) continue;
          for (int m = 0; m < kMessages; ++m) {
            ASSERT_EQ(comm.recv(src, 3).as_value<std::uint64_t>(),
                      static_cast<std::uint64_t>(m))
                << "src " << src;
          }
        }
      },
      chaos);
}

TEST(Chaos, NoMessageIsEverLost) {
  rtm::RunOptions chaos;
  chaos.chaos.seed = 7;
  chaos.chaos.max_delay_us = 800;
  auto world = rtm::run_world(
      {3, 1},
      [](rtm::Comm& comm) {
        constexpr int kMessages = 200;
        const int dst = (comm.rank() + 1) % comm.size();
        for (int m = 0; m < kMessages; ++m) {
          comm.send_value(dst, 1, static_cast<std::uint64_t>(m));
        }
        const int src = (comm.rank() + comm.size() - 1) % comm.size();
        for (int m = 0; m < kMessages; ++m) {
          (void)comm.recv(src, 1);
        }
      },
      chaos);
  EXPECT_EQ(world->chaos()->delivered(), 3u * 200u);
}

TEST(Chaos, LookupProtocolUnderDelays) {
  // A live lookup service answering delayed requests with delayed replies,
  // hammered by pipelined bursts from every other rank.
  seq::DatasetSpec spec{"chaos", 120, 40, 400};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 5);
  core::CorrectorParams params;
  params.k = 8;
  params.tile_overlap = 2;
  params.kmer_threshold = 1;
  params.tile_threshold = 1;

  rtm::RunOptions chaos;
  chaos.chaos.seed = 13;
  chaos.chaos.max_delay_us = 300;
  rtm::run_world(
      {3, 1},
      [&](rtm::Comm& comm) {
        parallel::Heuristics heur;
        parallel::DistSpectrum spectrum(params, heur, comm);
        for (const auto& r : ds.reads) spectrum.add_read(r.bases);
        spectrum.exchange_to_owners();

        comm.reset_done();
        parallel::LookupService service(comm, spectrum);
        std::thread server([&service] { service.serve(); });

        parallel::RemoteSpectrumView view(comm, spectrum);
        // Query the IDs of every read's k-mers; counts must match what a
        // local full spectrum reports (every rank ingested all reads, so
        // the owner's counts are simply 3x... no — each rank ingested all
        // reads, so global counts are np x local; owners aggregate all).
        core::SpectrumExtractor extractor(params);
        std::vector<seq::kmer_id_t> kmers;
        std::vector<seq::tile_id_t> tiles;
        extractor.extract(ds.reads[0].bases, kmers, tiles);
        core::LocalSpectrum local(params);
        for (const auto& r : ds.reads) local.add_read(r.bases);
        for (auto id : kmers) {
          // Every rank added every read once; owners sum all 3 ranks.
          ASSERT_EQ(view.kmer_count(id), 3 * local.kmer_count(id));
        }
        comm.signal_done();
        server.join();
        comm.barrier();
      },
      chaos);
}

TEST(Chaos, FullPipelineIdenticalUnderDelays) {
  // The whole distributed pipeline — load balancing, spectrum exchange,
  // request/reply correction with multiple workers, termination — must
  // produce the sequential output no matter the delivery timing.
  seq::DatasetSpec spec{"cp", 600, 60, 1200};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.005;
  errors.error_rate_end = 0.012;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 29);
  core::CorrectorParams params;
  params.k = 10;
  params.tile_overlap = 4;
  params.chunk_size = 64;
  const auto ref = core::run_sequential(ds.reads, params);

  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    parallel::DistConfig config;
    config.params = params;
    config.ranks = 4;
    config.worker_threads = 2;
    config.heuristics.universal = seed % 2 == 0;
    config.run_options.chaos.seed = seed;
    config.run_options.chaos.max_delay_us = 200;
    const auto result = parallel::run_distributed(ds.reads, config);
    ASSERT_EQ(result.corrected.size(), ref.corrected.size()) << seed;
    for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
      ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases)
          << "seed " << seed << " read " << ref.corrected[i].number;
    }
  }
}

TEST(Chaos, RebalanceDeterministicUnderDelays) {
  seq::DatasetSpec spec{"cb", 300, 40, 900};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 6);
  auto run_once = [&](std::uint64_t seed) {
    constexpr int kRanks = 4;
    std::vector<std::vector<seq::Read>> per_rank(kRanks);
    std::mutex m;
    rtm::RunOptions chaos;
    chaos.chaos.seed = seed;
    rtm::run_world(
        {kRanks, 1},
        [&](rtm::Comm& comm) {
          const std::size_t begin =
              ds.reads.size() * static_cast<std::size_t>(comm.rank()) / kRanks;
          const std::size_t end =
              ds.reads.size() * static_cast<std::size_t>(comm.rank() + 1) /
              kRanks;
          std::vector<seq::Read> mine(
              ds.reads.begin() + static_cast<long>(begin),
              ds.reads.begin() + static_cast<long>(end));
          auto balanced = parallel::rebalance_reads(comm, mine);
          std::lock_guard lock(m);
          per_rank[static_cast<std::size_t>(comm.rank())] = std::move(balanced);
        },
        chaos);
    return per_rank;
  };
  // Collectives use staging, so chaos timing cannot change the result.
  EXPECT_EQ(run_once(1), run_once(99));
}

}  // namespace
}  // namespace reptile
