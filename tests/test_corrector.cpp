// Unit tests: the tile corrector on hand-constructed spectra.
#include "core/corrector.hpp"

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "seq/dataset.hpp"

namespace reptile::core {
namespace {

CorrectorParams tiny_params() {
  CorrectorParams p;
  p.k = 6;
  p.tile_overlap = 2;       // tile length 10, step 4
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.max_positions_per_tile = 4;
  p.max_hamming = 2;
  return p;
}

/// Builds a spectrum from `coverage` copies of the given genome-like
/// string's reads (here: the string itself, repeated).
LocalSpectrum make_spectrum(const CorrectorParams& p, const std::string& truth,
                            int coverage) {
  LocalSpectrum s(p);
  for (int i = 0; i < coverage; ++i) s.add_read(truth);
  s.prune();
  return s;
}

seq::Read make_read(const std::string& bases, seq::qual_t q = 30) {
  seq::Read r;
  r.number = 1;
  r.bases = bases;
  r.quals.assign(bases.size(), q);
  return r;
}

TEST(TileCorrector, LeavesCorrectReadsAlone) {
  const auto p = tiny_params();
  const std::string truth = "ACGGTTAACCGGATCGGATTAC";
  auto spectrum = make_spectrum(p, truth, 5);
  seq::Read read = make_read(truth);
  TileCorrector corrector(p);
  const auto rc = corrector.correct(read, spectrum);
  EXPECT_EQ(rc.substitutions, 0);
  EXPECT_EQ(rc.tiles_untrusted, 0);
  EXPECT_EQ(read.bases, truth);
}

TEST(TileCorrector, FixesSingleSubstitution) {
  const auto p = tiny_params();
  const std::string truth = "ACGGTTAACCGGATCGGATTAC";
  auto spectrum = make_spectrum(p, truth, 5);
  std::string corrupted = truth;
  corrupted[5] = corrupted[5] == 'A' ? 'C' : 'A';
  seq::Read read = make_read(corrupted);
  read.quals[5] = 5;  // the erroneous base reports low quality
  TileCorrector corrector(p);
  const auto rc = corrector.correct(read, spectrum);
  EXPECT_EQ(read.bases, truth);
  EXPECT_GE(rc.substitutions, 1);
  EXPECT_GE(rc.tiles_fixed, 1);
}

TEST(TileCorrector, FixesErrorEvenWithUniformQualities) {
  // Quality ordering helps but must not be required: with uniform scores
  // the corrector still explores positions (bounded by
  // max_positions_per_tile per tile, distance 2 pairs included).
  CorrectorParams p = tiny_params();
  p.max_positions_per_tile = 10;  // allow the full tile
  const std::string truth = "ACGGTTAACCGGATCGGATTAC";
  auto spectrum = make_spectrum(p, truth, 5);
  std::string corrupted = truth;
  corrupted[6] = corrupted[6] == 'G' ? 'T' : 'G';
  seq::Read read = make_read(corrupted);
  TileCorrector corrector(p);
  corrector.correct(read, spectrum);
  EXPECT_EQ(read.bases, truth);
}

TEST(TileCorrector, DoesNotTouchShortReads) {
  const auto p = tiny_params();
  auto spectrum = make_spectrum(p, "ACGGTTAACCGGATCGGATTAC", 5);
  seq::Read read = make_read("ACGGTTAAC");  // 9 < tile length 10
  TileCorrector corrector(p);
  const auto rc = corrector.correct(read, spectrum);
  EXPECT_EQ(rc.substitutions, 0);
}

TEST(TileCorrector, AmbiguousCandidatesAreNotApplied) {
  // Two equally supported alternatives -> dominance fails -> no correction.
  const auto p = tiny_params();
  LocalSpectrum spectrum(p);
  const std::string variant_a = "ACGGTTAACCGGATCGGATTAC";
  std::string variant_b = variant_a;
  variant_b[1] = 'T';  // ATGG... vs ACGG...
  for (int i = 0; i < 5; ++i) {
    spectrum.add_read(variant_a);
    spectrum.add_read(variant_b);
  }
  spectrum.prune();
  std::string ambiguous = variant_a;
  ambiguous[1] = 'G';  // AGGG...: equally distant from both variants
  seq::Read read = make_read(ambiguous);
  read.quals[1] = 5;
  TileCorrector corrector(p);
  corrector.correct(read, spectrum);
  // The first tile's fix is ambiguous; base 1 must remain unchanged.
  EXPECT_EQ(read.bases[1], 'G');
}

TEST(TileCorrector, RespectsCorrectionBudget) {
  CorrectorParams p = tiny_params();
  p.max_corrections_per_read = 1;
  const std::string truth = "ACGGTTAACCGGATCGGATTACGGACCATT";
  auto spectrum = make_spectrum(p, truth, 5);
  std::string corrupted = truth;
  corrupted[2] = corrupted[2] == 'G' ? 'A' : 'G';
  corrupted[20] = corrupted[20] == 'T' ? 'C' : 'T';
  seq::Read read = make_read(corrupted);
  read.quals[2] = 4;
  read.quals[20] = 4;
  TileCorrector corrector(p);
  const auto rc = corrector.correct(read, spectrum);
  EXPECT_LE(rc.substitutions, 1);
}

TEST(TileCorrector, FixesTwoErrorsInOneTileAtDistanceTwo) {
  const auto p = tiny_params();
  const std::string truth = "ACGGTTAACCGGATCGGATTAC";
  auto spectrum = make_spectrum(p, truth, 6);
  std::string corrupted = truth;
  corrupted[2] = corrupted[2] == 'G' ? 'C' : 'G';
  corrupted[7] = corrupted[7] == 'A' ? 'T' : 'A';
  seq::Read read = make_read(corrupted);
  read.quals[2] = 4;
  read.quals[7] = 4;
  TileCorrector corrector(p);
  const auto rc = corrector.correct(read, spectrum);
  EXPECT_EQ(read.bases, truth);
  EXPECT_EQ(rc.substitutions, 2);
}

TEST(TileCorrector, DeterministicAcrossRuns) {
  const auto p = tiny_params();
  seq::DatasetSpec spec{"t", 400, 60, 2500};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.01;
  errors.error_rate_end = 0.02;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 21);
  const auto r1 = run_sequential(ds.reads, p);
  const auto r2 = run_sequential(ds.reads, p);
  EXPECT_EQ(r1.corrected, r2.corrected);
  EXPECT_EQ(r1.substitutions, r2.substitutions);
}

}  // namespace
}  // namespace reptile::core
