// Integration tests: multi-threaded correction workers per rank.
//
// The paper's ranks run one correction thread plus one communication
// thread; the fully-replicated Fig. 5 run used 64 threads per rank. With
// multiple workers, concurrent remote lookups from one rank are routed by
// per-worker reply tags — these tests pin that no replies are ever crossed
// (which would silently corrupt counts and with them correction decisions).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;
  p.kmer_threshold = 3;
  p.tile_threshold = 3;
  p.chunk_size = 32;  // small chunks -> plenty of worker interleaving
  return p;
}

const seq::SyntheticDataset& dataset() {
  static const seq::SyntheticDataset ds = [] {
    seq::DatasetSpec spec{"mt", 1200, 70, 2000};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.005;
    errors.error_rate_end = 0.012;
    return seq::SyntheticDataset::generate(spec, errors, 333);
  }();
  return ds;
}

class ThreadedWorkers : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ThreadedWorkers, OutputIdenticalToSequential) {
  const auto [ranks, workers] = GetParam();
  const auto ref = core::run_sequential(dataset().reads, params());
  DistConfig config;
  config.params = params();
  config.ranks = ranks;
  config.ranks_per_node = 2;
  config.worker_threads = workers;
  const auto result = run_distributed(dataset().reads, config);
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].number, ref.corrected[i].number);
    ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases)
        << "ranks=" << ranks << " workers=" << workers << " read "
        << ref.corrected[i].number;
  }
  EXPECT_EQ(result.total_substitutions(), ref.substitutions);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ThreadedWorkers,
    ::testing::Values(std::pair{1, 2}, std::pair{2, 2}, std::pair{2, 4},
                      std::pair{4, 2}, std::pair{4, 4}),
    [](const auto& info) {
      return "r" + std::to_string(info.param.first) + "_w" +
             std::to_string(info.param.second);
    });

TEST(ThreadedWorkersChecks, LookupTotalsMatchSingleThreaded) {
  DistConfig config;
  config.params = params();
  config.ranks = 2;
  const auto single = run_distributed(dataset().reads, config);
  config.worker_threads = 4;
  const auto threaded = run_distributed(dataset().reads, config);
  // Per-read decisions are deterministic, so the aggregate lookup volume
  // must be identical no matter how reads are spread over workers.
  auto totals = [](const DistResult& r) {
    std::uint64_t lookups = 0, remote = 0;
    for (const auto& rank : r.ranks) {
      lookups += rank.lookups.kmer_lookups + rank.lookups.tile_lookups;
      remote += rank.remote.remote_lookups();
    }
    return std::pair(lookups, remote);
  };
  EXPECT_EQ(totals(single), totals(threaded));
}

TEST(ThreadedWorkersChecks, UniversalModeAlsoSafe) {
  const auto ref = core::run_sequential(dataset().reads, params());
  DistConfig config;
  config.params = params();
  config.ranks = 3;
  config.worker_threads = 3;
  config.heuristics.universal = true;
  config.heuristics.batch_reads = true;
  const auto result = run_distributed(dataset().reads, config);
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases);
  }
}

TEST(ThreadedWorkersChecks, InvalidConfigsRejected) {
  DistConfig config;
  config.params = params();
  config.worker_threads = 0;
  EXPECT_THROW(run_distributed(dataset().reads, config),
               std::invalid_argument);
  config.worker_threads = 2;
  config.heuristics.read_kmers = true;
  config.heuristics.add_remote = true;
  EXPECT_THROW(run_distributed(dataset().reads, config),
               std::invalid_argument);
}

}  // namespace
}  // namespace reptile::parallel
