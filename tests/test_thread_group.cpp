// Unit tests: rtm::ScopedThreadGroup — the RAII thread lifecycle the stage
// graph relies on for Step IV's worker/communication threads. The contract
// under test: no escaping exception ever reaches std::thread's terminate
// path, the first error wins, before_join runs exactly once (normal path,
// unwind, and the zero-thread case alike), and every scope exit joins.
#include "rtm/thread_group.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

namespace reptile::rtm {
namespace {

TEST(ScopedThreadGroup, BeforeJoinRunsExactlyOnceWithZeroThreads) {
  int calls = 0;
  {
    ScopedThreadGroup group([&calls] { ++calls; });
    group.join();
    group.join();  // idempotent
    EXPECT_EQ(calls, 1);
  }  // destructor joins again
  EXPECT_EQ(calls, 1);
}

TEST(ScopedThreadGroup, BeforeJoinRunsBeforeThreadsAreJoined) {
  // The drivers hang on this ordering: before_join delivers the "done"
  // signal the spawned service loop waits for.
  std::atomic<bool> done{false};
  std::atomic<bool> saw_done{false};
  {
    ScopedThreadGroup group([&done] { done.store(true); });
    group.spawn([&done, &saw_done] {
      while (!done.load()) std::this_thread::yield();
      saw_done.store(true);
    });
  }
  EXPECT_TRUE(saw_done.load());
}

TEST(ScopedThreadGroup, SpawnedExceptionIsCapturedAndRethrown) {
  ScopedThreadGroup group;
  group.spawn([] { throw std::runtime_error("worker failed"); });
  try {
    group.join_and_rethrow();
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "worker failed");
  }
  // The error was consumed: further joins are quiet.
  group.join_and_rethrow();
  EXPECT_EQ(group.first_error(), nullptr);
}

TEST(ScopedThreadGroup, RunInlineCapturesLikeSpawn) {
  ScopedThreadGroup group;
  group.run_inline([] { throw std::logic_error("inline failed"); });
  EXPECT_NE(group.first_error(), nullptr);
  EXPECT_THROW(group.join_and_rethrow(), std::logic_error);
}

TEST(ScopedThreadGroup, FirstErrorWins) {
  ScopedThreadGroup group;
  group.run_inline([] { throw std::runtime_error("first"); });
  group.run_inline([] { throw std::runtime_error("second"); });
  try {
    group.join_and_rethrow();
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
}

TEST(ScopedThreadGroup, AllSiblingsJoinedWhenOneThrows) {
  // A throwing worker must not strand its siblings: join_and_rethrow joins
  // everything first, so by the time the error surfaces all side effects of
  // the healthy threads are visible.
  constexpr int kHealthy = 4;
  std::atomic<int> finished{0};
  ScopedThreadGroup group;
  group.spawn([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < kHealthy; ++i) {
    group.spawn([&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      finished.fetch_add(1);
    });
  }
  EXPECT_THROW(group.join_and_rethrow(), std::runtime_error);
  EXPECT_EQ(finished.load(), kHealthy);
}

TEST(ScopedThreadGroup, UnwindJoinsAndFiresBeforeJoinOnce) {
  // The CorrectStage pattern: a stage body throws while the group holds a
  // live thread. Unwind must join the thread and fire before_join exactly
  // once — and the destructor swallowing the captured thread error (if any)
  // must not terminate.
  int announced = 0;
  std::atomic<bool> joined{false};
  try {
    ScopedThreadGroup group([&announced] { ++announced; });
    group.spawn([&joined] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      joined.store(true);
    });
    throw std::runtime_error("stage body failed");
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "stage body failed");
  }
  EXPECT_TRUE(joined.load());
  EXPECT_EQ(announced, 1);
}

TEST(ScopedThreadGroup, DestructorSwallowsCapturedError) {
  // A captured-but-never-rethrown error must die with the group, quietly.
  {
    ScopedThreadGroup group;
    group.spawn([] { throw std::runtime_error("ignored"); });
  }
  SUCCEED();
}

}  // namespace
}  // namespace reptile::rtm
