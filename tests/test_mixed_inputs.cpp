// Robustness: irregular inputs — mixed read lengths (including reads too
// short for a single k-mer or tile), empty datasets, single-read datasets —
// through every pipeline.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "parallel/baseline_replicated.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"

namespace reptile {
namespace {

core::CorrectorParams params() {
  core::CorrectorParams p;
  p.k = 10;
  p.tile_overlap = 4;  // tile length 16
  p.chunk_size = 32;
  return p;
}

/// A dataset mixing normal reads with ones shorter than a tile, shorter
/// than a k-mer, and a giant one.
std::vector<seq::Read> mixed_reads() {
  seq::DatasetSpec spec{"mix", 400, 60, 1200};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.005;
  errors.error_rate_end = 0.01;
  auto ds = seq::SyntheticDataset::generate(spec, errors, 61);
  auto reads = std::move(ds.reads);
  auto inject = [&](std::size_t at, int len) {
    seq::Read r;
    r.bases = ds.genome.substr(at % 600, static_cast<std::size_t>(len));
    r.quals.assign(r.bases.size(), 30);
    reads.insert(reads.begin() + static_cast<long>(at % reads.size()),
                 std::move(r));
  };
  inject(13, 12);   // shorter than one tile (16) but >= k
  inject(71, 6);    // shorter than one k-mer
  inject(140, 1);   // single base
  inject(222, 300); // much longer than the rest
  // Renumber 1..n, as the preprocessed input guarantees.
  for (std::size_t i = 0; i < reads.size(); ++i) reads[i].number = i + 1;
  return reads;
}

TEST(MixedInputs, SequentialHandlesIrregularLengths) {
  const auto reads = mixed_reads();
  const auto result = core::run_sequential(reads, params());
  ASSERT_EQ(result.corrected.size(), reads.size());
  for (std::size_t i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(result.corrected[i].bases.size(), reads[i].bases.size());
  }
}

TEST(MixedInputs, DistributedIdenticalOnIrregularLengths) {
  const auto reads = mixed_reads();
  const auto ref = core::run_sequential(reads, params());
  parallel::DistConfig config;
  config.params = params();
  config.ranks = 4;
  config.heuristics.batch_reads = true;
  const auto result = parallel::run_distributed(reads, config);
  ASSERT_EQ(result.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases);
  }
}

TEST(MixedInputs, BaselineIdenticalOnIrregularLengths) {
  const auto reads = mixed_reads();
  const auto ref = core::run_sequential(reads, params());
  parallel::BaselineConfig config;
  config.params = params();
  config.ranks = 4;
  config.work_chunk = 25;
  const auto result = parallel::run_replicated_baseline(reads, config);
  EXPECT_EQ(result.corrected.size(), ref.corrected.size());
  for (std::size_t i = 0; i < ref.corrected.size(); ++i) {
    ASSERT_EQ(result.corrected[i].bases, ref.corrected[i].bases);
  }
}

TEST(MixedInputs, EmptyAndTinyDatasets) {
  const std::vector<seq::Read> none;
  const auto empty_result = core::run_sequential(none, params());
  EXPECT_TRUE(empty_result.corrected.empty());
  EXPECT_EQ(empty_result.substitutions, 0u);

  std::vector<seq::Read> one{{1, std::string(40, 'A'),
                              std::vector<seq::qual_t>(40, 30)}};
  const auto single = core::run_sequential(one, params());
  EXPECT_EQ(single.corrected.size(), 1u);

  parallel::DistConfig config;
  config.params = params();
  config.ranks = 4;
  const auto dist_empty = parallel::run_distributed(none, config);
  EXPECT_TRUE(dist_empty.corrected.empty());
  const auto dist_single = parallel::run_distributed(one, config);
  EXPECT_EQ(dist_single.corrected.size(), 1u);
}

TEST(MixedInputs, MoreRanksThanReads) {
  std::vector<seq::Read> few;
  for (int i = 0; i < 3; ++i) {
    few.push_back({static_cast<seq::seq_num_t>(i + 1), std::string(40, 'C'),
                   std::vector<seq::qual_t>(40, 30)});
  }
  parallel::DistConfig config;
  config.params = params();
  config.ranks = 8;
  const auto result = parallel::run_distributed(few, config);
  EXPECT_EQ(result.corrected.size(), 3u);
}

}  // namespace
}  // namespace reptile
