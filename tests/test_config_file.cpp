// Unit tests: Reptile-style configuration file parsing.
#include "parallel/config_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace reptile::parallel {
namespace {

TEST(ConfigFile, ParsesFullConfiguration) {
  const std::string text = R"(
# a comment
fasta_file   reads.fa
qual_file    reads.qual
output_file  corrected.fa
kmer_length  14
tile_overlap 6
kmer_threshold 4
tile_threshold 5
canonical    1
chunk_size   2000    # trailing comment
universal    yes
read_kmers   0
batch_reads  true
load_balance 1
)";
  const auto c = parse_config_text(text);
  EXPECT_EQ(c.fasta_file, "reads.fa");
  EXPECT_EQ(c.qual_file, "reads.qual");
  EXPECT_EQ(c.output_file, "corrected.fa");
  EXPECT_EQ(c.params.k, 14);
  EXPECT_EQ(c.params.tile_overlap, 6);
  EXPECT_EQ(c.params.kmer_threshold, 4u);
  EXPECT_EQ(c.params.tile_threshold, 5u);
  EXPECT_TRUE(c.params.canonical);
  EXPECT_EQ(c.params.chunk_size, 2000u);
  EXPECT_TRUE(c.heuristics.universal);
  EXPECT_FALSE(c.heuristics.read_kmers);
  EXPECT_TRUE(c.heuristics.batch_reads);
  EXPECT_TRUE(c.heuristics.load_balance);
}

TEST(ConfigFile, DefaultsWhenOmitted) {
  const auto c = parse_config_text("kmer_length 12\n");
  EXPECT_EQ(c.params.k, 12);
  EXPECT_EQ(c.params.tile_overlap, core::CorrectorParams{}.tile_overlap);
  EXPECT_FALSE(c.heuristics.universal);
  EXPECT_TRUE(c.heuristics.load_balance);  // heuristics default
}

TEST(ConfigFile, RejectsUnknownKey) {
  EXPECT_THROW(parse_config_text("frobnicate 1\n"), std::runtime_error);
}

TEST(ConfigFile, UnknownKeySuggestsNearestValidKey) {
  try {
    parse_config_text("chunk_sz 128\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown key 'chunk_sz'"), std::string::npos) << what;
    EXPECT_NE(what.find("'chunk_size'"), std::string::npos) << what;
  }
  try {
    parse_config_text("chaos_drop_rte 0.1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'chaos_drop_rate'"),
              std::string::npos)
        << e.what();
  }
  try {
    parse_config_text("lookup_max_retry 2\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'lookup_max_retries'"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigFile, RejectsMissingValue) {
  EXPECT_THROW(parse_config_text("kmer_length\n"), std::runtime_error);
}

TEST(ConfigFile, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_config_text("kmer_length 12 13\n"), std::runtime_error);
}

TEST(ConfigFile, RejectsBadBoolean) {
  EXPECT_THROW(parse_config_text("universal maybe\n"), std::runtime_error);
}

TEST(ConfigFile, RejectsBadNumber) {
  EXPECT_THROW(parse_config_text("kmer_length twelve\n"), std::runtime_error);
  EXPECT_THROW(parse_config_text("kmer_length 12x\n"), std::runtime_error);
}

TEST(ConfigFile, ValidatesResult) {
  // k out of range is caught by CorrectorParams::validate.
  EXPECT_THROW(parse_config_text("kmer_length 2\n"), std::invalid_argument);
  // add_remote without read_kmers is caught by Heuristics::validate.
  EXPECT_THROW(parse_config_text("add_remote 1\n"), std::invalid_argument);
}

TEST(ConfigFile, ErrorsCarryLineNumbers) {
  try {
    parse_config_text("kmer_length 12\nbogus_key 1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConfigFile, RoundTripsThroughText) {
  RunConfigFile config;
  config.fasta_file = "a.fa";
  config.qual_file = "a.qual";
  config.params.k = 16;
  config.params.tile_overlap = 8;
  config.params.chunk_size = 512;
  config.heuristics.universal = true;
  config.heuristics.batch_reads = true;
  const auto back = parse_config_text(to_config_text(config));
  EXPECT_EQ(back.fasta_file, config.fasta_file);
  EXPECT_EQ(back.params.k, config.params.k);
  EXPECT_EQ(back.params.tile_overlap, config.params.tile_overlap);
  EXPECT_EQ(back.params.chunk_size, config.params.chunk_size);
  EXPECT_EQ(back.heuristics.universal, config.heuristics.universal);
  EXPECT_EQ(back.heuristics.batch_reads, config.heuristics.batch_reads);
}

// Every key the parser accepts must survive serialize -> parse unchanged,
// including the chaos_* fault-plan and lookup_* retry keys.
TEST(ConfigFile, RoundTripsFullKeySet) {
  RunConfigFile config;
  config.fasta_file = "full.fa";
  config.qual_file = "full.qual";
  config.output_file = "full.out";
  config.params.k = 15;
  config.params.tile_overlap = 7;
  config.params.kmer_threshold = 5;
  config.params.tile_threshold = 6;
  config.params.canonical = false;
  config.params.qual_threshold = 20;
  config.params.restrict_to_low_quality = true;
  config.params.max_positions_per_tile = 3;
  config.params.max_hamming = 2;
  config.params.dominance_ratio = 2.5;
  config.params.max_corrections_per_read = 9;
  config.params.chunk_size = 333;
  config.params.prefetch_capacity = 44;
  config.params.remote_cache_capacity = 555;
  config.heuristics.universal = true;
  config.heuristics.read_kmers = true;
  config.heuristics.allgather_kmers = true;
  config.heuristics.allgather_tiles = false;
  config.heuristics.add_remote = true;
  config.heuristics.batch_reads = true;
  config.heuristics.batch_lookups = true;
  config.heuristics.load_balance = false;
  config.heuristics.partial_replication_group = 4;
  config.heuristics.bloom_construction = true;
  config.rtm_check = false;
  config.mailbox_fast_path = false;
  config.chaos.seed = 12345;
  config.chaos.max_delay_us = 150;
  config.chaos.drop_rate = 0.25;
  config.chaos.duplicate_rate = 0.125;
  config.chaos.truncate_rate = 0.0625;
  config.chaos.stall_rate = 0.5;
  config.chaos.stall_us = 200;
  config.retry.timeout_ticks = 8;
  config.retry.max_retries = 5;

  const auto back = parse_config_text(to_config_text(config));
  EXPECT_EQ(back.fasta_file, config.fasta_file);
  EXPECT_EQ(back.qual_file, config.qual_file);
  EXPECT_EQ(back.output_file, config.output_file);
  EXPECT_EQ(back.params.k, config.params.k);
  EXPECT_EQ(back.params.tile_overlap, config.params.tile_overlap);
  EXPECT_EQ(back.params.kmer_threshold, config.params.kmer_threshold);
  EXPECT_EQ(back.params.tile_threshold, config.params.tile_threshold);
  EXPECT_EQ(back.params.canonical, config.params.canonical);
  EXPECT_EQ(back.params.qual_threshold, config.params.qual_threshold);
  EXPECT_EQ(back.params.restrict_to_low_quality,
            config.params.restrict_to_low_quality);
  EXPECT_EQ(back.params.max_positions_per_tile,
            config.params.max_positions_per_tile);
  EXPECT_EQ(back.params.max_hamming, config.params.max_hamming);
  EXPECT_DOUBLE_EQ(back.params.dominance_ratio, config.params.dominance_ratio);
  EXPECT_EQ(back.params.max_corrections_per_read,
            config.params.max_corrections_per_read);
  EXPECT_EQ(back.params.chunk_size, config.params.chunk_size);
  EXPECT_EQ(back.params.prefetch_capacity, config.params.prefetch_capacity);
  EXPECT_EQ(back.params.remote_cache_capacity,
            config.params.remote_cache_capacity);
  EXPECT_EQ(back.heuristics.universal, config.heuristics.universal);
  EXPECT_EQ(back.heuristics.read_kmers, config.heuristics.read_kmers);
  EXPECT_EQ(back.heuristics.allgather_kmers,
            config.heuristics.allgather_kmers);
  EXPECT_EQ(back.heuristics.allgather_tiles,
            config.heuristics.allgather_tiles);
  EXPECT_EQ(back.heuristics.add_remote, config.heuristics.add_remote);
  EXPECT_EQ(back.heuristics.batch_reads, config.heuristics.batch_reads);
  EXPECT_EQ(back.heuristics.batch_lookups, config.heuristics.batch_lookups);
  EXPECT_EQ(back.heuristics.load_balance, config.heuristics.load_balance);
  EXPECT_EQ(back.heuristics.partial_replication_group,
            config.heuristics.partial_replication_group);
  EXPECT_EQ(back.heuristics.bloom_construction,
            config.heuristics.bloom_construction);
  EXPECT_EQ(back.rtm_check, config.rtm_check);
  EXPECT_EQ(back.mailbox_fast_path, config.mailbox_fast_path);
  EXPECT_EQ(back.chaos.seed, config.chaos.seed);
  EXPECT_EQ(back.chaos.max_delay_us, config.chaos.max_delay_us);
  EXPECT_DOUBLE_EQ(back.chaos.drop_rate, config.chaos.drop_rate);
  EXPECT_DOUBLE_EQ(back.chaos.duplicate_rate, config.chaos.duplicate_rate);
  EXPECT_DOUBLE_EQ(back.chaos.truncate_rate, config.chaos.truncate_rate);
  EXPECT_DOUBLE_EQ(back.chaos.stall_rate, config.chaos.stall_rate);
  EXPECT_EQ(back.chaos.stall_us, config.chaos.stall_us);
  EXPECT_EQ(back.retry.timeout_ticks, config.retry.timeout_ticks);
  EXPECT_EQ(back.retry.max_retries, config.retry.max_retries);
}

// ---- serve-mode job.* namespace -------------------------------------------

TEST(ConfigFile, ParsesJobOverrides) {
  const auto c = parse_config_text(R"(
job.qual_threshold 25
job.max_hamming 1
job.chunk_size 256
job.universal 1
job.batch_lookups yes
job.deadline_ms 1500
job.lookup_timeout_ticks 4
job.lookup_max_retries 2
)");
  ASSERT_TRUE(c.job.any_set());
  EXPECT_EQ(c.job.qual_threshold, 25);
  EXPECT_EQ(c.job.max_hamming, 1);
  EXPECT_EQ(c.job.chunk_size, 256u);
  EXPECT_EQ(c.job.universal, true);
  EXPECT_EQ(c.job.batch_lookups, true);
  ASSERT_TRUE(c.job.deadline_seconds.has_value());
  EXPECT_DOUBLE_EQ(*c.job.deadline_seconds, 1.5);
  ASSERT_TRUE(c.job.retry.has_value());
  EXPECT_EQ(c.job.retry->timeout_ticks, 4);
  EXPECT_EQ(c.job.retry->max_retries, 2);
  // Unset overrides stay unset: empty overrides = the build config.
  EXPECT_FALSE(c.job.dominance_ratio.has_value());
  EXPECT_FALSE(c.job.add_remote.has_value());
}

TEST(ConfigFile, JobOverridesDefaultToUnset) {
  const auto c = parse_config_text("kmer_length 12\n");
  EXPECT_FALSE(c.job.any_set());
  // ...and an override-free config emits no job.* lines.
  EXPECT_EQ(to_config_text(c).find("job."), std::string::npos);
}

TEST(ConfigFile, RoundTripsJobOverrides) {
  RunConfigFile config;
  config.job.qual_threshold = 30;
  config.job.restrict_to_low_quality = true;
  config.job.max_positions_per_tile = 2;
  config.job.max_hamming = 1;
  config.job.dominance_ratio = 3.5;
  config.job.max_corrections_per_read = 4;
  config.job.chunk_size = 128;
  config.job.prefetch_capacity = 16;
  config.job.universal = true;
  config.job.batch_lookups = true;
  config.job.filter_lookups = false;  // set-to-false must survive too
  config.job.deadline_seconds = 0.25;
  config.job.retry = RetryPolicy{6, 1};

  const auto back = parse_config_text(to_config_text(config));
  EXPECT_EQ(back.job.qual_threshold, config.job.qual_threshold);
  EXPECT_EQ(back.job.restrict_to_low_quality,
            config.job.restrict_to_low_quality);
  EXPECT_EQ(back.job.max_positions_per_tile,
            config.job.max_positions_per_tile);
  EXPECT_EQ(back.job.max_hamming, config.job.max_hamming);
  ASSERT_TRUE(back.job.dominance_ratio.has_value());
  EXPECT_DOUBLE_EQ(*back.job.dominance_ratio, *config.job.dominance_ratio);
  EXPECT_EQ(back.job.max_corrections_per_read,
            config.job.max_corrections_per_read);
  EXPECT_EQ(back.job.chunk_size, config.job.chunk_size);
  EXPECT_EQ(back.job.prefetch_capacity, config.job.prefetch_capacity);
  EXPECT_EQ(back.job.universal, config.job.universal);
  EXPECT_EQ(back.job.batch_lookups, config.job.batch_lookups);
  EXPECT_EQ(back.job.filter_lookups, config.job.filter_lookups);
  ASSERT_TRUE(back.job.deadline_seconds.has_value());
  EXPECT_DOUBLE_EQ(*back.job.deadline_seconds, *config.job.deadline_seconds);
  ASSERT_TRUE(back.job.retry.has_value());
  EXPECT_EQ(back.job.retry->timeout_ticks, config.job.retry->timeout_ticks);
  EXPECT_EQ(back.job.retry->max_retries, config.job.retry->max_retries);
  EXPECT_FALSE(back.job.add_remote.has_value());  // still unset
}

TEST(ConfigFile, JobKeyTyposSuggestTheJobKey) {
  try {
    parse_config_text("job.deadline_s 100\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'job.deadline_ms'"),
              std::string::npos)
        << e.what();
  }
  try {
    parse_config_text("job.chunk_sz 128\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'job.chunk_size'"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigFile, ValidatesJobOverrides) {
  // Effective-config validation: a job override that breaks the corrector
  // parameters is rejected at parse time.
  EXPECT_THROW(parse_config_text("job.max_hamming -2\n"),
               std::invalid_argument);
  EXPECT_THROW(parse_config_text("job.deadline_ms -5\n"),
               std::invalid_argument);
  // add_remote needs the build-time reads tables.
  EXPECT_THROW(parse_config_text("job.add_remote 1\n"),
               std::invalid_argument);
  EXPECT_NO_THROW(parse_config_text("read_kmers 1\njob.add_remote 1\n"));
}

TEST(ConfigFile, ReadsFromDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "reptile_cfg";
  std::filesystem::create_directories(dir);
  const auto path = dir / "run.cfg";
  {
    std::ofstream out(path);
    out << "fasta_file x.fa\nqual_file x.qual\nkmer_length 10\n";
  }
  const auto c = parse_config_file(path);
  EXPECT_EQ(c.params.k, 10);
  std::filesystem::remove_all(dir);
  EXPECT_THROW(parse_config_file(path), std::runtime_error);
}

}  // namespace
}  // namespace reptile::parallel
