// Unit tests: Reptile-style configuration file parsing.
#include "parallel/config_file.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace reptile::parallel {
namespace {

TEST(ConfigFile, ParsesFullConfiguration) {
  const std::string text = R"(
# a comment
fasta_file   reads.fa
qual_file    reads.qual
output_file  corrected.fa
kmer_length  14
tile_overlap 6
kmer_threshold 4
tile_threshold 5
canonical    1
chunk_size   2000    # trailing comment
universal    yes
read_kmers   0
batch_reads  true
load_balance 1
)";
  const auto c = parse_config_text(text);
  EXPECT_EQ(c.fasta_file, "reads.fa");
  EXPECT_EQ(c.qual_file, "reads.qual");
  EXPECT_EQ(c.output_file, "corrected.fa");
  EXPECT_EQ(c.params.k, 14);
  EXPECT_EQ(c.params.tile_overlap, 6);
  EXPECT_EQ(c.params.kmer_threshold, 4u);
  EXPECT_EQ(c.params.tile_threshold, 5u);
  EXPECT_TRUE(c.params.canonical);
  EXPECT_EQ(c.params.chunk_size, 2000u);
  EXPECT_TRUE(c.heuristics.universal);
  EXPECT_FALSE(c.heuristics.read_kmers);
  EXPECT_TRUE(c.heuristics.batch_reads);
  EXPECT_TRUE(c.heuristics.load_balance);
}

TEST(ConfigFile, DefaultsWhenOmitted) {
  const auto c = parse_config_text("kmer_length 12\n");
  EXPECT_EQ(c.params.k, 12);
  EXPECT_EQ(c.params.tile_overlap, core::CorrectorParams{}.tile_overlap);
  EXPECT_FALSE(c.heuristics.universal);
  EXPECT_TRUE(c.heuristics.load_balance);  // heuristics default
}

TEST(ConfigFile, RejectsUnknownKey) {
  EXPECT_THROW(parse_config_text("frobnicate 1\n"), std::runtime_error);
}

TEST(ConfigFile, RejectsMissingValue) {
  EXPECT_THROW(parse_config_text("kmer_length\n"), std::runtime_error);
}

TEST(ConfigFile, RejectsTrailingGarbage) {
  EXPECT_THROW(parse_config_text("kmer_length 12 13\n"), std::runtime_error);
}

TEST(ConfigFile, RejectsBadBoolean) {
  EXPECT_THROW(parse_config_text("universal maybe\n"), std::runtime_error);
}

TEST(ConfigFile, RejectsBadNumber) {
  EXPECT_THROW(parse_config_text("kmer_length twelve\n"), std::runtime_error);
  EXPECT_THROW(parse_config_text("kmer_length 12x\n"), std::runtime_error);
}

TEST(ConfigFile, ValidatesResult) {
  // k out of range is caught by CorrectorParams::validate.
  EXPECT_THROW(parse_config_text("kmer_length 2\n"), std::invalid_argument);
  // add_remote without read_kmers is caught by Heuristics::validate.
  EXPECT_THROW(parse_config_text("add_remote 1\n"), std::invalid_argument);
}

TEST(ConfigFile, ErrorsCarryLineNumbers) {
  try {
    parse_config_text("kmer_length 12\nbogus_key 1\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(ConfigFile, RoundTripsThroughText) {
  RunConfigFile config;
  config.fasta_file = "a.fa";
  config.qual_file = "a.qual";
  config.params.k = 16;
  config.params.tile_overlap = 8;
  config.params.chunk_size = 512;
  config.heuristics.universal = true;
  config.heuristics.batch_reads = true;
  const auto back = parse_config_text(to_config_text(config));
  EXPECT_EQ(back.fasta_file, config.fasta_file);
  EXPECT_EQ(back.params.k, config.params.k);
  EXPECT_EQ(back.params.tile_overlap, config.params.tile_overlap);
  EXPECT_EQ(back.params.chunk_size, config.params.chunk_size);
  EXPECT_EQ(back.heuristics.universal, config.heuristics.universal);
  EXPECT_EQ(back.heuristics.batch_reads, config.heuristics.batch_reads);
}

TEST(ConfigFile, ReadsFromDisk) {
  const auto dir = std::filesystem::temp_directory_path() / "reptile_cfg";
  std::filesystem::create_directories(dir);
  const auto path = dir / "run.cfg";
  {
    std::ofstream out(path);
    out << "fasta_file x.fa\nqual_file x.qual\nkmer_length 10\n";
  }
  const auto c = parse_config_file(path);
  EXPECT_EQ(c.params.k, 10);
  std::filesystem::remove_all(dir);
  EXPECT_THROW(parse_config_file(path), std::runtime_error);
}

}  // namespace
}  // namespace reptile::parallel
