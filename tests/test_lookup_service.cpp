// Protocol-level tests: the communication thread's request/reply contract,
// exercised directly (no corrector in the loop).
#include "parallel/lookup_service.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "parallel/protocol.hpp"
#include "seq/dataset.hpp"

namespace reptile::parallel {
namespace {

core::CorrectorParams params() {
  core::CorrectorParams p;
  p.k = 8;
  p.tile_overlap = 2;
  p.kmer_threshold = 1;
  p.tile_threshold = 1;
  return p;
}

/// Builds a 2-rank world where rank 0 owns a populated spectrum shard and
/// runs a LookupService; rank 1 is the test driver issuing raw protocol
/// messages. `driver` receives (comm, an id owned by rank 0 with its count).
void run_protocol_test(
    const Heuristics& heur,
    const std::function<void(rtm::Comm&, std::uint64_t, std::uint32_t)>&
        driver,
    ServiceStats* stats_out = nullptr) {
  seq::DatasetSpec spec{"svc", 100, 40, 400};
  const auto ds = seq::SyntheticDataset::generate(spec, {}, 123);

  rtm::run_world({2, 1}, [&](rtm::Comm& comm) {
    DistSpectrum spectrum(params(), heur, comm);
    if (comm.rank() == 0) {
      for (const auto& r : ds.reads) spectrum.add_read(r.bases);
    }
    spectrum.exchange_to_owners();  // collective: both ranks participate

    // Pick a k-mer owned by rank 0 for the driver to query.
    std::uint64_t probe_id = 0;
    std::uint32_t probe_count = 0;
    if (comm.rank() == 0) {
      spectrum.hash_kmers().for_each([&](std::uint64_t id, std::uint32_t c) {
        if (probe_count == 0) {
          probe_id = id;
          probe_count = c;
        }
      });
      comm.send_value(1, 99, probe_id);
      comm.send_value(1, 98, static_cast<std::uint64_t>(probe_count));
    } else {
      probe_id = comm.recv(0, 99).as_value<std::uint64_t>();
      probe_count = static_cast<std::uint32_t>(
          comm.recv(0, 98).as_value<std::uint64_t>());
    }

    comm.reset_done();
    if (comm.rank() == 0) {
      LookupService service(comm, spectrum);
      std::thread server([&service] { service.serve(); });
      comm.signal_done();  // rank 0 has no correction work of its own
      server.join();
      if (stats_out) *stats_out = service.stats();
    } else {
      driver(comm, probe_id, probe_count);
      comm.signal_done();
    }
    comm.barrier();
  });
}

TEST(LookupService, AnswersKmerRequestWithCount) {
  run_protocol_test({}, [](rtm::Comm& comm, std::uint64_t id,
                           std::uint32_t count) {
    comm.send_value(0, kTagKmerRequest, LookupRequest{id});
    const auto reply =
        comm.recv(0, kTagKmerReply).as_value<LookupReply>();
    EXPECT_EQ(reply.count, static_cast<std::int32_t>(count));
  });
}

TEST(LookupService, AbsentIdYieldsMinusOne) {
  // Paper: "The response is either the count ... or a response like (-1)
  // implying that the k-mer or tile does not exist."
  run_protocol_test({}, [](rtm::Comm& comm, std::uint64_t, std::uint32_t) {
    // An ID that cannot be in an 8-mer spectrum shard: beyond the mask.
    LookupRequest req;
    req.id = ~std::uint64_t{0};
    req.reply_to = kTagTileReply;
    comm.send_value(0, kTagTileRequest, req);
    const auto reply =
        comm.recv(0, kTagTileReply).as_value<LookupReply>();
    EXPECT_EQ(reply.count, -1);
  });
}

TEST(LookupService, UniversalModeCarriesKindInPayload) {
  Heuristics heur;
  heur.universal = true;
  ServiceStats stats;
  run_protocol_test(
      heur,
      [](rtm::Comm& comm, std::uint64_t id, std::uint32_t count) {
        UniversalLookupRequest kmer_req;
        kmer_req.kind = LookupKind::kKmer;
        kmer_req.id = id;
        comm.send_value(0, kTagUniversalRequest, kmer_req);
        EXPECT_EQ(comm.recv(0, kTagKmerReply).as_value<LookupReply>().count,
                  static_cast<std::int32_t>(count));

        UniversalLookupRequest tile_req;
        tile_req.kind = LookupKind::kTile;
        tile_req.reply_to = kTagTileReply;
        tile_req.id = id;  // k-mer id is (almost surely) not a tile
        comm.send_value(0, kTagUniversalRequest, tile_req);
        const auto r = comm.recv(0, kTagTileReply).as_value<LookupReply>();
        EXPECT_TRUE(r.count == -1 || r.count > 0);
      },
      &stats);
  EXPECT_EQ(stats.probe_calls, 0u);  // universal mode never probes
  EXPECT_EQ(stats.requests_served, 2u);
  EXPECT_EQ(stats.kmer_requests, 1u);
  EXPECT_EQ(stats.tile_requests, 1u);
}

TEST(LookupService, TaggedModeCountsProbes) {
  ServiceStats stats;
  run_protocol_test(
      {},
      [](rtm::Comm& comm, std::uint64_t id, std::uint32_t) {
        for (int i = 0; i < 10; ++i) {
          comm.send_value(0, kTagKmerRequest, LookupRequest{id});
          (void)comm.recv(0, kTagKmerReply);
        }
      },
      &stats);
  EXPECT_EQ(stats.requests_served, 10u);
  EXPECT_GT(stats.probe_calls, 0u);
}

TEST(LookupService, ServesManyInterleavedRequests) {
  ServiceStats stats;
  run_protocol_test(
      {},
      [](rtm::Comm& comm, std::uint64_t id, std::uint32_t count) {
        // Fire a burst of pipelined requests before reading any reply; the
        // reply stream must preserve per-(source, tag) FIFO order.
        constexpr int kBurst = 200;
        for (int i = 0; i < kBurst; ++i) {
          comm.send_value(0, kTagKmerRequest, LookupRequest{id});
          LookupRequest tile_req;
          tile_req.id = ~std::uint64_t{0};
          tile_req.reply_to = kTagTileReply;
          comm.send_value(0, kTagTileRequest, tile_req);
        }
        for (int i = 0; i < kBurst; ++i) {
          EXPECT_EQ(
              comm.recv(0, kTagKmerReply).as_value<LookupReply>().count,
              static_cast<std::int32_t>(count));
          EXPECT_EQ(
              comm.recv(0, kTagTileReply).as_value<LookupReply>().count, -1);
        }
      },
      &stats);
  EXPECT_EQ(stats.requests_served, 400u);
  EXPECT_EQ(stats.absent_replies, 200u);
}

TEST(LookupService, DrainsRequestsQueuedAtShutdown) {
  // Requests already queued when the last rank signals done must still be
  // answered (the service's final drain loop).
  ServiceStats stats;
  run_protocol_test(
      {},
      [](rtm::Comm& comm, std::uint64_t id, std::uint32_t) {
        for (int i = 0; i < 50; ++i) {
          comm.send_value(0, kTagKmerRequest, LookupRequest{id});
        }
        for (int i = 0; i < 50; ++i) {
          (void)comm.recv(0, kTagKmerReply);
        }
      },
      &stats);
  EXPECT_EQ(stats.requests_served, 50u);
}

}  // namespace
}  // namespace reptile::parallel
