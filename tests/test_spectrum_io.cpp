// Unit tests: spectrum checkpoint save/load.
#include "core/spectrum_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "core/corrector.hpp"
#include "seq/dataset.hpp"

namespace reptile::core {
namespace {

namespace fs = std::filesystem;

class SpectrumIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "reptile_spectrum_io";
    fs::create_directories(dir_);
    params_.k = 10;
    params_.tile_overlap = 4;
    params_.kmer_threshold = 3;
    params_.tile_threshold = 3;
    seq::DatasetSpec spec{"sp", 600, 60, 1200};
    seq::ErrorModelParams errors;
    errors.error_rate_start = 0.005;
    errors.error_rate_end = 0.01;
    ds_ = seq::SyntheticDataset::generate(spec, errors, 44);
  }
  void TearDown() override { fs::remove_all(dir_); }

  LocalSpectrum build() {
    LocalSpectrum s(params_);
    for (const auto& r : ds_.reads) s.add_read(r.bases);
    s.prune();
    return s;
  }

  fs::path dir_;
  CorrectorParams params_;
  seq::SyntheticDataset ds_;
};

TEST_F(SpectrumIoTest, RoundTripPreservesEveryEntry) {
  auto original = build();
  save_spectrum(dir_ / "s.rptl", original, params_);
  auto loaded = load_spectrum(dir_ / "s.rptl", params_);
  EXPECT_EQ(loaded.kmer_entries(), original.kmer_entries());
  EXPECT_EQ(loaded.tile_entries(), original.tile_entries());
  original.kmers().for_each([&](std::uint64_t id, std::uint32_t c) {
    ASSERT_EQ(loaded.kmer_count(id), c);
  });
  original.tiles().for_each([&](std::uint64_t id, std::uint32_t c) {
    ASSERT_EQ(loaded.tile_count(id), c);
  });
}

TEST_F(SpectrumIoTest, CorrectionFromLoadedSpectrumIsIdentical) {
  auto original = build();
  save_spectrum(dir_ / "s.rptl", original, params_);
  auto loaded = load_spectrum(dir_ / "s.rptl", params_);
  TileCorrector corrector(params_);
  auto via_original = ds_.reads;
  auto via_loaded = ds_.reads;
  for (auto& r : via_original) corrector.correct(r, original);
  for (auto& r : via_loaded) corrector.correct(r, loaded);
  EXPECT_EQ(via_original, via_loaded);
}

TEST_F(SpectrumIoTest, ParameterMismatchRejected) {
  auto original = build();
  save_spectrum(dir_ / "s.rptl", original, params_);
  CorrectorParams other = params_;
  other.k = 12;
  other.tile_overlap = 6;
  EXPECT_THROW(load_spectrum(dir_ / "s.rptl", other), std::invalid_argument);
  other = params_;
  other.kmer_threshold = 5;
  EXPECT_THROW(load_spectrum(dir_ / "s.rptl", other), std::invalid_argument);
  other = params_;
  other.canonical = true;
  EXPECT_THROW(load_spectrum(dir_ / "s.rptl", other), std::invalid_argument);
}

TEST_F(SpectrumIoTest, CorruptFilesRejected) {
  EXPECT_THROW(load_spectrum(dir_ / "missing.rptl", params_),
               std::runtime_error);
  {
    std::ofstream out(dir_ / "bad.rptl", std::ios::binary);
    out << "not a spectrum";
  }
  EXPECT_THROW(load_spectrum(dir_ / "bad.rptl", params_), std::runtime_error);

  // Truncated: valid header then cut off mid-table.
  auto original = build();
  save_spectrum(dir_ / "s.rptl", original, params_);
  const auto full_size = fs::file_size(dir_ / "s.rptl");
  fs::resize_file(dir_ / "s.rptl", full_size / 2);
  EXPECT_THROW(load_spectrum(dir_ / "s.rptl", params_), std::runtime_error);
}

TEST_F(SpectrumIoTest, EmptySpectrumRoundTrips) {
  LocalSpectrum empty(params_);
  save_spectrum(dir_ / "e.rptl", empty, params_);
  auto loaded = load_spectrum(dir_ / "e.rptl", params_);
  EXPECT_EQ(loaded.kmer_entries(), 0u);
  EXPECT_EQ(loaded.tile_entries(), 0u);
}

}  // namespace
}  // namespace reptile::core
