#!/usr/bin/env python3
"""Lint memory-order annotations in the concurrency layers.

Every use of a non-seq_cst ``std::memory_order`` in ``src/rtm/`` and
``src/obs/`` (the lock-free trace rings and the resource ledger's relaxed
statistics) must carry a ``// mo:`` rationale comment on the same line or
the line directly above. seq_cst is the safe default and needs no
justification; anything weaker is an optimization whose correctness
argument lives next to the code, where the model checker (DESIGN.md S8)
and reviewers can audit it.

Exit status: 0 clean, 1 violations found, 2 usage error.

Usage:
    tools/atomics_lint.py [--root DIR] [paths...]

With no paths, lints every .hpp/.cpp under src/rtm/ and src/obs/
(recursively).
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Weaker-than-seq_cst orders that demand a rationale. seq_cst itself and
# the plain type name `std::memory_order` (e.g. in a template parameter
# list) are exempt.
WEAK_ORDERS = (
    "relaxed",
    "acquire",
    "release",
    "acq_rel",
    "consume",
)

ORDER_RE = re.compile(
    r"(?:std::)?memory_order(?:::|_)(" + "|".join(WEAK_ORDERS) + r")\b"
)
RATIONALE_RE = re.compile(r"//\s*mo:")
LINE_COMMENT_RE = re.compile(r"//.*$")

# A line whose code ends with one of these continues on the next line, so
# the order token may sit several lines below the statement's start (and
# its rationale comment).
CONTINUATION_ENDINGS = (",", "(", "=", "&&", "||", "+", "-", "?", ":", "<<")


def strip_strings(line: str) -> str:
    """Blank out string/char literals so orders named in text don't count."""
    out = []
    quote = None
    prev = ""
    for ch in line:
        if quote:
            out.append(" ")
            if ch == quote and prev != "\\":
                quote = None
        elif ch in "\"'":
            out.append(" ")
            quote = ch
        else:
            out.append(ch)
        prev = ch if prev != "\\" else ""
    return "".join(out)


def code_only(line: str) -> str:
    """The line with string literals and // comments blanked out."""
    return LINE_COMMENT_RE.sub("", strip_strings(line))


def rationale_above(lines: list[str], idx: int) -> bool:
    """True if a ``// mo:`` comment covers ``lines[idx]`` from above.

    Walks upward through (a) earlier lines of the same multi-line
    statement — a line above whose code ends in a continuation token like
    ``,`` or ``(`` — and (b) the contiguous block of pure ``//`` comment
    lines that sits directly on top of the statement, which is where
    multi-sentence rationales naturally wrap.
    """
    j = idx - 1
    while j >= 0:
        raw = lines[j]
        if RATIONALE_RE.search(raw):
            return True
        code = code_only(raw).rstrip()
        if code == "" and raw.strip().startswith("//"):
            j -= 1  # comment block above the statement
            continue
        if code != "" and code.endswith(CONTINUATION_ENDINGS):
            j -= 1  # still inside the statement; its start is higher up
            continue
        return False
    return False


def lint_file(path: pathlib.Path) -> list[tuple[int, str]]:
    violations = []
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        return [(0, f"unreadable: {e}")]
    lines = text.splitlines()

    in_block_comment = False
    for idx, raw in enumerate(lines):
        line = raw
        # Track /* ... */ blocks coarsely; orders mentioned inside prose
        # comments are not uses.
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2 :]
            in_block_comment = False
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2 :]

        code = code_only(line)
        m = ORDER_RE.search(code)
        if not m:
            continue
        # Comparisons and switch labels (e.g. mapping an order enum in
        # the atomics policy) are inspections, not uses.
        before = code[: m.start()].rstrip()
        is_compare = before.endswith(("==", "!=")) or code[
            m.end() :
        ].lstrip().startswith(("==", "!="))
        is_case = bool(re.search(r"\bcase\s*$", before))
        has_rationale = RATIONALE_RE.search(raw) or rationale_above(
            lines, idx
        )
        if not (is_compare or is_case or has_rationale):
            violations.append(
                (
                    idx + 1,
                    f"memory_order_{m.group(1)} without a `// mo:` "
                    "rationale (same line or comment above)",
                )
            )
    return violations


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of tools/)",
    )
    parser.add_argument("paths", nargs="*", type=pathlib.Path)
    args = parser.parse_args()

    if args.paths:
        files = args.paths
    else:
        files = []
        for sub in ("rtm", "obs"):
            root = args.root / "src" / sub
            if not root.is_dir():
                print(f"atomics_lint: no such directory {root}",
                      file=sys.stderr)
                return 2
            files.extend(
                p
                for p in root.rglob("*")
                if p.suffix in (".hpp", ".cpp") and p.is_file()
            )
        files.sort()

    total = 0
    for path in files:
        for lineno, msg in lint_file(path):
            try:
                shown = path.relative_to(args.root)
            except ValueError:
                shown = path
            print(f"{shown}:{lineno}: {msg}")
            total += 1

    if total:
        print(
            f"atomics_lint: {total} unannotated weak memory-order use(s); "
            "add `// mo: <why this order is sufficient>`",
            file=sys.stderr,
        )
        return 1
    print(f"atomics_lint: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
