// rtm_model: command-line front end of the rtm model checker
// (DESIGN.md §8). Explores schedules of one named scenario and, on a
// failure, prints the happens-before verdict, the replay token, and the
// event trace — the same text a failing test prints, produced by the same
// code. Exit 0 clean, 1 on a model failure, 2 on usage errors.
//
//   rtm_model --list
//   rtm_model --scenario ring_fifo_small --mode dfs --preemptions 2
//   rtm_model --scenario mailbox_overflow --schedules 100000 --seed 9
//   rtm_model --scenario waiter_gate --replay 7:0.1.0.0.2
//   rtm_model --scenario slab_gate --trace-out failing_trace.txt
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "rtm/model/scenarios.hpp"

namespace {

using namespace reptile::rtm::model;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --scenario NAME [options]\n"
      "       %s --list\n"
      "options:\n"
      "  --mode dfs|random      exploration strategy (default random)\n"
      "  --schedules N          schedule budget (default 100000)\n"
      "  --seed S               random-walk seed (default 1)\n"
      "  --preemptions N        preemption bound, -1 = unbounded\n"
      "                         (default: 2 for dfs, unbounded for random)\n"
      "  --replay SEED:D.D...   re-run one recorded schedule with tracing\n"
      "  --trace-out FILE       also write a failing trace to FILE\n",
      argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string scenario_name;
  std::string trace_out;
  Options opts;
  opts.mode = Mode::kRandom;
  opts.max_schedules = 100000;
  bool preemptions_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--list") {
      for (const scenarios::Named& s : scenarios::all()) {
        std::printf("%-18s %s\n", s.name.c_str(), s.description.c_str());
      }
      return 0;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      scenario_name = v;
    } else if (arg == "--mode") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "dfs") == 0) {
        opts.mode = Mode::kDfs;
      } else if (std::strcmp(v, "random") == 0) {
        opts.mode = Mode::kRandom;
      } else {
        return usage(argv[0]);
      }
    } else if (arg == "--schedules") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opts.max_schedules = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--preemptions") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      opts.max_preemptions = std::atoi(v);
      preemptions_set = true;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      if (!parse_replay(v, &opts.seed, &opts.replay)) {
        std::fprintf(stderr, "malformed replay token: %s\n", v);
        return 2;
      }
      opts.mode = Mode::kReplay;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      trace_out = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (scenario_name.empty()) return usage(argv[0]);
  const scenarios::Named* sc = scenarios::find(scenario_name);
  if (sc == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s' (try --list)\n",
                 scenario_name.c_str());
    return 2;
  }
  // DFS without an explicit bound gets the CHESS default: most
  // concurrency bugs need <= 2 preemptions, and the bound keeps the tree
  // enumerable. Random walks stay unbounded.
  if (opts.mode == Mode::kDfs && !preemptions_set) opts.max_preemptions = 2;

  const Result r = explore(opts, sc->fn);
  if (!r.failed) {
    std::printf("%s: clean after %llu schedule(s)%s\n", scenario_name.c_str(),
                static_cast<unsigned long long>(r.schedules),
                r.exhausted ? " (bounded space exhausted)" : "");
    return 0;
  }
  const std::string report = describe_failure(r, scenario_name);
  std::fputs(report.c_str(), stdout);
  if (!trace_out.empty()) {
    std::ofstream out(trace_out);
    out << report;
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  return 1;
}
