#!/usr/bin/env python3
"""Perf-regression gate for the rtm runtime baseline (BENCH_rtm.json).

Compares a freshly measured BENCH_rtm.json against the checked-in baseline
in bench/baselines/ and fails CI when the lock-free mailbox fast path stops
paying for itself. Three classes of checks:

  hard floors    Invariants of the optimization itself, independent of host
                 speed: the ping-pong reduction must stay >= 25% (the PR's
                 acceptance bar), every ping-pong push must take the ring,
                 and the kill switch must still force the locked path.

  exact matches  Workload shape is deterministic (message and byte counts
                 from the traffic matrix, lookup counts). Any drift means an
                 accounting or protocol regression, not noise.

  tolerance      Reduction percentages are compared against the baseline
                 with a band wide enough for shared-runner noise. Absolute
                 ns/msg numbers are host-dependent and only warn.

Stdlib only; exit code 0 = pass, 1 = regression.
"""

from __future__ import annotations

import argparse
import json
import sys

# Acceptance bar from the PR that introduced the fast path: per-message
# ping-pong cost must be at least this much cheaper than the locked path.
HARD_MIN_PINGPONG_REDUCTION_PCT = 25.0

# How far a reduction ratio may fall below the checked-in baseline before
# the gate fails. The two-thread ping-pong is structurally robust (wide
# locked-vs-fast gap); the single-thread loop is noisier on shared runners.
PINGPONG_REDUCTION_BAND_PCT = 15.0
LOOP_REDUCTION_BAND_PCT = 25.0

EXACT_KEYS = [
    ("pingpong", "rounds"),
    ("pingpong", "msgs"),
    ("pingpong", "bytes"),
    ("lookup", "lookups"),
    ("lookup", "msgs"),
    ("lookup", "bytes"),
]

WARN_KEYS = [
    ("mailbox_loop", "locked_ns_per_msg"),
    ("mailbox_loop", "fast_ns_per_msg"),
    ("pingpong", "locked_ns_per_msg"),
    ("pingpong", "fast_ns_per_msg"),
    ("lookup_rtt_us", "p50_us"),
    ("lookup_rtt_us", "p99_us"),
]


def get(doc: dict, section: str, key: str):
    try:
        return doc[section][key]
    except KeyError:
        return None


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="BENCH_rtm.json produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="checked-in bench/baselines/BENCH_rtm.json")
    args = parser.parse_args()

    with open(args.current, encoding="utf-8") as f:
        cur = json.load(f)
    with open(args.baseline, encoding="utf-8") as f:
        base = json.load(f)

    failures: list[str] = []
    warnings: list[str] = []

    if cur.get("schema") != base.get("schema"):
        failures.append(
            f"schema mismatch: current {cur.get('schema')} vs "
            f"baseline {base.get('schema')}")

    # -- hard floors ------------------------------------------------------
    pp_red = get(cur, "pingpong", "reduction_pct")
    if pp_red is None or pp_red < HARD_MIN_PINGPONG_REDUCTION_PCT:
        failures.append(
            f"pingpong.reduction_pct = {pp_red} is below the hard floor "
            f"{HARD_MIN_PINGPONG_REDUCTION_PCT}")

    rounds = get(cur, "pingpong", "rounds")
    fast_pushes = get(cur, "pingpong", "fast_pushes")
    if fast_pushes != rounds:
        failures.append(
            f"pingpong.fast_pushes = {fast_pushes}, expected every push "
            f"({rounds}) to take the ring fast path")
    locked_fast = get(cur, "pingpong", "locked_run_fast_pushes")
    if locked_fast != 0:
        failures.append(
            f"pingpong.locked_run_fast_pushes = {locked_fast}, the "
            f"mailbox_fast_path=false kill switch leaked ring pushes")

    # -- exact workload shape --------------------------------------------
    for section, key in EXACT_KEYS:
        c, b = get(cur, section, key), get(base, section, key)
        if c != b:
            failures.append(
                f"{section}.{key} = {c} differs from baseline {b} "
                f"(workload is deterministic; this is an accounting or "
                f"protocol change, not noise)")

    # -- tolerance bands vs baseline -------------------------------------
    for section, band in (("pingpong", PINGPONG_REDUCTION_BAND_PCT),
                          ("mailbox_loop", LOOP_REDUCTION_BAND_PCT)):
        c = get(cur, section, "reduction_pct")
        b = get(base, section, "reduction_pct")
        if c is None or b is None:
            failures.append(f"{section}.reduction_pct missing")
        elif c < b - band:
            failures.append(
                f"{section}.reduction_pct = {c:.1f} fell more than "
                f"{band:.0f} points below baseline {b:.1f}")

    # -- informational drift ---------------------------------------------
    for section, key in WARN_KEYS:
        c, b = get(cur, section, key), get(base, section, key)
        if c is None or b is None or b == 0:
            continue
        ratio = c / b
        if ratio > 2.0 or ratio < 0.5:
            warnings.append(
                f"{section}.{key} = {c} vs baseline {b} "
                f"({ratio:.2f}x; host-dependent, not gated)")

    print(f"bench_gate: current={args.current} baseline={args.baseline}")
    print(f"  pingpong reduction : {pp_red:.1f}% "
          f"(baseline {get(base, 'pingpong', 'reduction_pct'):.1f}%, "
          f"hard floor {HARD_MIN_PINGPONG_REDUCTION_PCT:.0f}%)")
    loop_red = get(cur, "mailbox_loop", "reduction_pct")
    if loop_red is not None:
        print(f"  loop reduction     : {loop_red:.1f}% "
              f"(baseline {get(base, 'mailbox_loop', 'reduction_pct'):.1f}%)")
    for w in warnings:
        print(f"  WARN: {w}")
    if failures:
        for f_ in failures:
            print(f"  FAIL: {f_}")
        print(f"bench_gate: {len(failures)} regression(s)")
        return 1
    print("bench_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
