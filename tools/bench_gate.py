#!/usr/bin/env python3
"""Perf-regression gate for the checked-in bench baselines.

Compares a freshly measured bench JSON against its baseline in
bench/baselines/ and fails CI on regression. The gate dispatches on the
document's `schema` field:

  rtm (schema 1, BENCH_rtm.json)
    The lock-free mailbox fast path. Three classes of checks:

      hard floors    Invariants of the optimization itself, independent of
                     host speed: the ping-pong reduction must stay >= 25%
                     (the PR's acceptance bar), every ping-pong push must
                     take the ring, and the kill switch must still force
                     the locked path.

      exact matches  Workload shape is deterministic (message and byte
                     counts from the traffic matrix, lookup counts). Any
                     drift means an accounting or protocol regression, not
                     noise.

      tolerance      Reduction percentages are compared against the
                     baseline with a band wide enough for shared-runner
                     noise. Absolute ns/msg numbers are host-dependent and
                     only warn.

  fig5 (schema "reptile-bench-fig5-v1", BENCH_fig5.json)
    The heuristics ablation counters, all deterministic (seeded dataset,
    fixed topology, fault-free run), so everything is exact-matched against
    the baseline. On top of that, structural invariants of the run itself:
    every heuristic row must produce identical corrected output
    (substitutions / reads_changed equal across rows), the filtered rows
    must answer definite absences locally (filter_neg_hits > 0) while the
    unfiltered rows must not, and filtering must strictly reduce remote
    round trips versus the same row without filters.

  scaling (schema "reptile-bench-scaling-v1", BENCH_scaling.json)
    The fig6/fig7/fig8 scaling trajectory. Functional rows come from the
    real runtime on a seeded dataset with fixed topology, so their work
    counters (max_remote_lookups, substitutions, reads_changed,
    construction_peak_bytes) are exact-matched per rank count; the
    baseline must keep at least two rank counts or the trajectory
    degenerates to a point. Wall times and ledger/RSS peaks are
    host-dependent and only warn, as do all modeled (perfmodel) rows —
    the model is calibrated from host-measured traits, so its absolute
    seconds drift with the runner.

  serve (schema "reptile-bench-serve-v1", BENCH_serve.json)
    The resident correction server. One hard invariant independent of the
    baseline: spectrum_builds_per_rank == 1 — the whole point of the serve
    refactor is that LoadBalance/BuildSpectrum run once per rank and jobs
    reuse the resident spectrum. The functional counters (jobs, ranks,
    degraded_jobs, substitutions, reads_changed) come from a seeded
    fault-free run and are exact-matched; jobs/sec and the latency
    percentiles are host-dependent and only warn on large drift.

Stdlib only; exit code 0 = pass, 1 = regression.
"""

from __future__ import annotations

import argparse
import json
import sys

# Acceptance bar from the PR that introduced the fast path: per-message
# ping-pong cost must be at least this much cheaper than the locked path.
HARD_MIN_PINGPONG_REDUCTION_PCT = 25.0

# How far a reduction ratio may fall below the checked-in baseline before
# the gate fails. The two-thread ping-pong is structurally robust (wide
# locked-vs-fast gap); the single-thread loop is noisier on shared runners.
PINGPONG_REDUCTION_BAND_PCT = 15.0
LOOP_REDUCTION_BAND_PCT = 25.0

EXACT_KEYS = [
    ("pingpong", "rounds"),
    ("pingpong", "msgs"),
    ("pingpong", "bytes"),
    ("lookup", "lookups"),
    ("lookup", "msgs"),
    ("lookup", "bytes"),
]

WARN_KEYS = [
    ("mailbox_loop", "locked_ns_per_msg"),
    ("mailbox_loop", "fast_ns_per_msg"),
    ("pingpong", "locked_ns_per_msg"),
    ("pingpong", "fast_ns_per_msg"),
    ("lookup_rtt_us", "p50_us"),
    ("lookup_rtt_us", "p99_us"),
]

FIG5_SCHEMA = "reptile-bench-fig5-v1"
SERVE_SCHEMA = "reptile-bench-serve-v1"
SCALING_SCHEMA = "reptile-bench-scaling-v1"

# Deterministic serve counters (seeded dataset, fault-free run): any drift
# vs the baseline is a functional regression.
SERVE_EXACT = ["ranks", "jobs", "degraded_jobs", "substitutions",
               "reads_changed"]

# Host-dependent serve numbers: warn outside a 2x band, never fail.
SERVE_WARN = ["jobs_per_sec", "latency_p50_ms", "latency_p99_ms",
              "latency_max_ms"]

# Counters every fig5 row carries; all deterministic, all exact-matched.
FIG5_COUNTERS = [
    "remote_lookups",
    "filter_neg_hits",
    "filter_false_positives",
    "substitutions",
    "reads_changed",
    "sent_msgs",
]

# (filtered row, its unfiltered counterpart) pairs: the filter point must
# strictly reduce scalar remote round trips against the same configuration.
FIG5_FILTER_PAIRS = [
    ("filtered", "base"),
    ("filtered_batched", "batched_lookups"),
]

# Deterministic scaling counters (seeded dataset, fixed topology): exact
# per functional rank-count row.
SCALING_EXACT = ["max_remote_lookups", "substitutions", "reads_changed",
                 "construction_peak_bytes"]

# Host-dependent functional numbers: warn outside a 2x band, never fail.
# Ledger/RSS peaks are zero unless the run armed --ledger.
SCALING_WARN = ["construct_seconds", "correct_seconds",
                "ledger_total_peak_bytes", "rss_peak_bytes"]

# Every modeled number is warn-only: perfmodel calibrates on host-measured
# traits, so absolute seconds drift with the runner.
SCALING_MODELED_WARN = ["construct_seconds", "correct_seconds",
                        "total_seconds", "mb_per_rank", "efficiency"]


def get(doc: dict, section: str, key: str):
    try:
        return doc[section][key]
    except KeyError:
        return None


def gate_rtm(cur: dict, base: dict) -> tuple[list[str], list[str]]:
    failures: list[str] = []
    warnings: list[str] = []

    # -- hard floors ------------------------------------------------------
    pp_red = get(cur, "pingpong", "reduction_pct")
    if pp_red is None or pp_red < HARD_MIN_PINGPONG_REDUCTION_PCT:
        failures.append(
            f"pingpong.reduction_pct = {pp_red} is below the hard floor "
            f"{HARD_MIN_PINGPONG_REDUCTION_PCT}")

    rounds = get(cur, "pingpong", "rounds")
    fast_pushes = get(cur, "pingpong", "fast_pushes")
    if fast_pushes != rounds:
        failures.append(
            f"pingpong.fast_pushes = {fast_pushes}, expected every push "
            f"({rounds}) to take the ring fast path")
    locked_fast = get(cur, "pingpong", "locked_run_fast_pushes")
    if locked_fast != 0:
        failures.append(
            f"pingpong.locked_run_fast_pushes = {locked_fast}, the "
            f"mailbox_fast_path=false kill switch leaked ring pushes")

    # -- exact workload shape --------------------------------------------
    for section, key in EXACT_KEYS:
        c, b = get(cur, section, key), get(base, section, key)
        if c != b:
            failures.append(
                f"{section}.{key} = {c} differs from baseline {b} "
                f"(workload is deterministic; this is an accounting or "
                f"protocol change, not noise)")

    # -- tolerance bands vs baseline -------------------------------------
    for section, band in (("pingpong", PINGPONG_REDUCTION_BAND_PCT),
                          ("mailbox_loop", LOOP_REDUCTION_BAND_PCT)):
        c = get(cur, section, "reduction_pct")
        b = get(base, section, "reduction_pct")
        if c is None or b is None:
            failures.append(f"{section}.reduction_pct missing")
        elif c < b - band:
            failures.append(
                f"{section}.reduction_pct = {c:.1f} fell more than "
                f"{band:.0f} points below baseline {b:.1f}")

    # -- informational drift ---------------------------------------------
    for section, key in WARN_KEYS:
        c, b = get(cur, section, key), get(base, section, key)
        if c is None or b is None or b == 0:
            continue
        ratio = c / b
        if ratio > 2.0 or ratio < 0.5:
            warnings.append(
                f"{section}.{key} = {c} vs baseline {b} "
                f"({ratio:.2f}x; host-dependent, not gated)")

    print(f"  pingpong reduction : {pp_red:.1f}% "
          f"(baseline {get(base, 'pingpong', 'reduction_pct'):.1f}%, "
          f"hard floor {HARD_MIN_PINGPONG_REDUCTION_PCT:.0f}%)")
    loop_red = get(cur, "mailbox_loop", "reduction_pct")
    if loop_red is not None:
        print(f"  loop reduction     : {loop_red:.1f}% "
              f"(baseline {get(base, 'mailbox_loop', 'reduction_pct'):.1f}%)")
    return failures, warnings


def gate_fig5(cur: dict, base: dict) -> tuple[list[str], list[str]]:
    failures: list[str] = []
    rows = cur.get("rows", {})
    base_rows = base.get("rows", {})

    # -- structural invariants of the current run ------------------------
    # Every heuristic row corrects the same reads the same way: the ablation
    # varies WHERE counts are found, never WHAT the corrector decides.
    for key in ("substitutions", "reads_changed"):
        values = {name: row.get(key) for name, row in rows.items()}
        if len(set(values.values())) > 1:
            failures.append(
                f"{key} differs across heuristic rows: {values} "
                f"(every heuristic must produce identical output)")

    for name, row in rows.items():
        is_filtered = name.startswith("filtered")
        neg = row.get("filter_neg_hits", 0)
        if is_filtered and not neg > 0:
            failures.append(
                f"rows.{name}.filter_neg_hits = {neg}: the filter point "
                f"answered no definite absences locally")
        if not is_filtered and neg != 0:
            failures.append(
                f"rows.{name}.filter_neg_hits = {neg} on an unfiltered "
                f"row: the default-off contract is broken")

    for filtered, plain in FIG5_FILTER_PAIRS:
        f_remote = get(cur, "rows", filtered)
        p_remote = get(cur, "rows", plain)
        if f_remote is None or p_remote is None:
            failures.append(
                f"rows missing for filter pair ({filtered}, {plain})")
            continue
        if not f_remote["remote_lookups"] < p_remote["remote_lookups"]:
            failures.append(
                f"rows.{filtered}.remote_lookups = "
                f"{f_remote['remote_lookups']} did not drop below "
                f"rows.{plain}.remote_lookups = "
                f"{p_remote['remote_lookups']}")

    # -- exact match against the baseline --------------------------------
    if set(rows) != set(base_rows):
        failures.append(
            f"row set changed: current {sorted(rows)} vs baseline "
            f"{sorted(base_rows)} (regenerate the baseline deliberately)")
    for name in sorted(set(rows) & set(base_rows)):
        for key in FIG5_COUNTERS:
            c, b = rows[name].get(key), base_rows[name].get(key)
            if c != b:
                failures.append(
                    f"rows.{name}.{key} = {c} differs from baseline {b} "
                    f"(counters are deterministic; regenerate the baseline "
                    f"only for a deliberate behaviour change)")

    if "filtered" in rows and "base" in rows:
        print(f"  base remote lookups    : {rows['base']['remote_lookups']}")
        print(f"  filtered remote lookups: "
              f"{rows['filtered']['remote_lookups']} "
              f"(neg hits {rows['filtered']['filter_neg_hits']}, "
              f"false positives "
              f"{rows['filtered']['filter_false_positives']})")
    return failures, []


def gate_scaling(cur: dict, base: dict) -> tuple[list[str], list[str]]:
    failures: list[str] = []
    warnings: list[str] = []

    if cur.get("figure") != base.get("figure"):
        failures.append(
            f"figure mismatch: current {cur.get('figure')} vs baseline "
            f"{base.get('figure')} (compare a driver against its own "
            f"baseline)")
        return failures, warnings

    fn = cur.get("functional", {})
    base_fn = base.get("functional", {})

    # -- trajectory shape -------------------------------------------------
    # A scaling baseline with fewer than two rank counts is a point, not a
    # trajectory; only enforced where the baseline itself has functional
    # rows (fig7/fig8 are modeled-only).
    if base_fn and len(base_fn) < 2:
        failures.append(
            f"baseline functional section has {len(base_fn)} rank count(s), "
            f"need >= 2 for a scaling trajectory")
    if set(fn) != set(base_fn):
        failures.append(
            f"functional rank counts changed: current {sorted(fn)} vs "
            f"baseline {sorted(base_fn)} (regenerate the baseline "
            f"deliberately)")

    # -- structural invariant of the current run --------------------------
    # Rank count changes WHERE reads are corrected, never WHAT the
    # corrector decides: every functional row must produce identical
    # corrected output.
    for key in ("substitutions", "reads_changed"):
        values = {ranks: row.get(key) for ranks, row in fn.items()}
        if len(set(values.values())) > 1:
            failures.append(
                f"functional.{key} differs across rank counts: {values} "
                f"(correction output must be rank-count invariant)")

    # -- exact functional counters vs baseline ----------------------------
    for ranks in sorted(set(fn) & set(base_fn), key=int):
        for key in SCALING_EXACT:
            c, b = fn[ranks].get(key), base_fn[ranks].get(key)
            if c != b:
                failures.append(
                    f"functional.{ranks}.{key} = {c} differs from baseline "
                    f"{b} (counters are deterministic; regenerate the "
                    f"baseline only for a deliberate behaviour change)")
        for key in SCALING_WARN:
            c, b = fn[ranks].get(key), base_fn[ranks].get(key)
            if c is None or b is None or b == 0:
                continue
            ratio = c / b
            if ratio > 2.0 or ratio < 0.5:
                warnings.append(
                    f"functional.{ranks}.{key} = {c} vs baseline {b} "
                    f"({ratio:.2f}x; host-dependent, not gated)")

    # -- modeled rows: drift is informational only ------------------------
    modeled = cur.get("modeled", {})
    base_modeled = base.get("modeled", {})
    for ranks in sorted(set(modeled) & set(base_modeled), key=int):
        for key in SCALING_MODELED_WARN:
            c = modeled[ranks].get(key)
            b = base_modeled[ranks].get(key)
            if c is None or b is None or b == 0:
                continue
            ratio = c / b
            if ratio > 2.0 or ratio < 0.5:
                warnings.append(
                    f"modeled.{ranks}.{key} = {c} vs baseline {b} "
                    f"({ratio:.2f}x; model is trait-calibrated, not gated)")

    if fn:
        counts = {ranks: fn[ranks].get("max_remote_lookups")
                  for ranks in sorted(fn, key=int)}
        print(f"  functional rank counts : {sorted(fn, key=int)}")
        print(f"  max remote lookups     : {counts}")
    print(f"  modeled rank counts    : {sorted(modeled, key=int)}")
    return failures, warnings


def gate_serve(cur: dict, base: dict) -> tuple[list[str], list[str]]:
    failures: list[str] = []
    warnings: list[str] = []

    # -- hard invariant of the serve refactor ----------------------------
    builds = get(cur, "serve", "spectrum_builds_per_rank")
    if builds != 1:
        failures.append(
            f"serve.spectrum_builds_per_rank = {builds}, expected exactly 1 "
            f"(the resident spectrum must be built once and reused by every "
            f"job)")

    # -- exact functional counters vs baseline ---------------------------
    for key in SERVE_EXACT:
        c, b = get(cur, "serve", key), get(base, "serve", key)
        if c != b:
            failures.append(
                f"serve.{key} = {c} differs from baseline {b} "
                f"(counters are deterministic; regenerate the baseline only "
                f"for a deliberate behaviour change)")

    # -- informational perf drift ----------------------------------------
    for key in SERVE_WARN:
        c, b = get(cur, "serve", key), get(base, "serve", key)
        if c is None or b is None or b == 0:
            continue
        ratio = c / b
        if ratio > 2.0 or ratio < 0.5:
            warnings.append(
                f"serve.{key} = {c} vs baseline {b} "
                f"({ratio:.2f}x; host-dependent, not gated)")

    jps = get(cur, "serve", "jobs_per_sec")
    p50 = get(cur, "serve", "latency_p50_ms")
    p99 = get(cur, "serve", "latency_p99_ms")
    if jps is not None:
        print(f"  throughput : {jps:.2f} jobs/sec "
              f"(baseline {get(base, 'serve', 'jobs_per_sec'):.2f})")
    if p50 is not None and p99 is not None:
        print(f"  latency    : p50 {p50:.1f} ms, p99 {p99:.1f} ms")
    print(f"  spectrum builds per rank: {builds} (hard: must be 1)")
    return failures, warnings


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="bench JSON produced by this run")
    parser.add_argument("--baseline", required=True,
                        help="checked-in bench/baselines/ counterpart")
    args = parser.parse_args()

    with open(args.current, encoding="utf-8") as f:
        cur = json.load(f)
    with open(args.baseline, encoding="utf-8") as f:
        base = json.load(f)

    print(f"bench_gate: current={args.current} baseline={args.baseline}")

    failures: list[str] = []
    warnings: list[str] = []
    if cur.get("schema") != base.get("schema"):
        failures.append(
            f"schema mismatch: current {cur.get('schema')} vs "
            f"baseline {base.get('schema')}")
    elif cur.get("schema") == FIG5_SCHEMA:
        failures, warnings = gate_fig5(cur, base)
    elif cur.get("schema") == SERVE_SCHEMA:
        failures, warnings = gate_serve(cur, base)
    elif cur.get("schema") == SCALING_SCHEMA:
        failures, warnings = gate_scaling(cur, base)
    else:
        failures, warnings = gate_rtm(cur, base)

    for w in warnings:
        print(f"  WARN: {w}")
    if failures:
        for f_ in failures:
            print(f"  FAIL: {f_}")
        print(f"bench_gate: {len(failures)} regression(s)")
        return 1
    print("bench_gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
