// trace_merge: validate and merge per-rank Chrome trace shards.
//
//   $ trace_merge --check shard.rank0.json shard.rank1.json ...
//   $ trace_merge -o merged.json shard.rank0.json shard.rank1.json ...
//
// Each distributed run writes one trace shard per rank
// (<prefix>.rankN.json, see obs/trace.hpp). A shard is a complete Chrome
// trace-event document on its own; this tool combines them into one file
// loadable in Perfetto / chrome://tracing with all ranks side by side, and
// (--check) validates the format contract the tests pin:
//
//   * every shard parses as strict JSON with a traceEvents array,
//   * every event carries name/cat/ph/pid/tid (plus ts for non-metadata
//     phases and dur for complete spans),
//   * every "stage" span carries a numeric args.job (which job the stage
//     ran for; 0 = a rank-lifetime build phase), so serve-mode traces stay
//     attributable per job,
//   * flow events pair up: across ALL shards, each flow id seen on a start
//     ('s') event is also seen on a finish ('f') event — a requester's
//     lookup flow starts on its worker thread and finishes on the owning
//     rank's comm thread, i.e. in a different shard,
//   * counter ('C') events carry a numeric, non-negative args.bytes, each
//     (pid, tid, name) counter stream is monotone-timestamped (single-
//     writer rings record in order), and when any ledger counters exist at
//     all, the count_table account is among them — every run builds
//     spectrum tables, so its absence means the account wiring regressed.
//
// Exit status: 0 ok, 1 validation/merge failure, 2 usage error.

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

using reptile::obs::JsonValue;

struct FlowIds {
  std::set<std::string> starts;
  std::set<std::string> finishes;
};

/// Cross-event state for counter ('C') validation.
struct CounterStreams {
  /// Last timestamp per (pid, tid, name) stream (monotonicity check).
  std::map<std::string, double> last_ts;
  /// Every counter name seen, across all shards.
  std::set<std::string> names;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error(path + ": cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool has_string(const JsonValue& event, const char* key) {
  const JsonValue* v = event.find(key);
  return v != nullptr && v->is_string();
}

bool has_number(const JsonValue& event, const char* key) {
  const JsonValue* v = event.find(key);
  return v != nullptr && v->is_number();
}

/// Validates one event against the contract; throws with a description.
void check_event(const JsonValue& event, std::size_t index, FlowIds& flows,
                 CounterStreams& counters) {
  const auto fail = [index](const std::string& what) {
    throw std::runtime_error("traceEvents[" + std::to_string(index) +
                             "]: " + what);
  };
  if (!event.is_object()) fail("not an object");
  if (!has_string(event, "name")) fail("missing string \"name\"");
  if (!has_string(event, "ph")) fail("missing string \"ph\"");
  if (!has_number(event, "pid")) fail("missing number \"pid\"");
  if (!has_number(event, "tid")) fail("missing number \"tid\"");
  const std::string& ph = event.find("ph")->as_string();
  if (ph == "M") return;  // metadata: name/pid/tid/args only
  if (!has_string(event, "cat")) fail("missing string \"cat\"");
  if (!has_number(event, "ts")) fail("missing number \"ts\"");
  if (ph == "X") {
    if (!has_number(event, "dur")) fail("complete span missing \"dur\"");
    if (event.find("dur")->as_number() < 0) fail("negative \"dur\"");
    // Serve-mode attributability: every stage span says which job it ran
    // for (args.job; 0 = the rank-lifetime build phase), so a merged trace
    // from a resident server can be filtered per job.
    if (event.find("cat")->as_string() == "stage") {
      const JsonValue* args = event.find("args");
      const JsonValue* job =
          args != nullptr && args->is_object() ? args->find("job") : nullptr;
      if (job == nullptr || !job->is_number()) {
        fail("stage span missing numeric \"args.job\"");
      }
    }
  } else if (ph == "C") {
    // Ledger counters: the tracked value is always bytes, never negative
    // (the ledger's balances are unsigned and sub() saturates at zero).
    const JsonValue* args = event.find("args");
    const JsonValue* bytes =
        args != nullptr && args->is_object() ? args->find("bytes") : nullptr;
    if (bytes == nullptr || !bytes->is_number()) {
      fail("counter missing numeric \"args.bytes\"");
    }
    if (bytes->as_number() < 0) fail("negative counter \"args.bytes\"");
    const std::string& name = event.find("name")->as_string();
    const std::string stream =
        std::to_string(event.find("pid")->as_number()) + "/" +
        std::to_string(event.find("tid")->as_number()) + "/" + name;
    const double ts = event.find("ts")->as_number();
    const auto [it, inserted] = counters.last_ts.emplace(stream, ts);
    if (!inserted) {
      if (ts < it->second) {
        fail("counter stream \"" + stream + "\" not monotone-timestamped");
      }
      it->second = ts;
    }
    counters.names.insert(name);
  } else if (ph == "i") {
    if (!has_string(event, "s")) fail("instant missing scope \"s\"");
  } else if (ph == "s" || ph == "f") {
    if (!has_string(event, "id")) fail("flow event missing string \"id\"");
    const std::string& id = event.find("id")->as_string();
    if (ph == "s") {
      flows.starts.insert(id);
    } else {
      flows.finishes.insert(id);
      if (!has_string(event, "bp") ||
          event.find("bp")->as_string() != "e") {
        fail("flow finish missing \"bp\":\"e\" (binds to enclosing slice)");
      }
    }
  } else {
    fail("unknown phase \"" + ph + "\"");
  }
}

int run(bool check_only, const std::string& out_path,
        const std::vector<std::string>& shards) {
  JsonValue merged_events = JsonValue::array();
  FlowIds flows;
  CounterStreams counters;
  std::string display_unit = "ms";
  for (const std::string& path : shards) {
    try {
      const JsonValue doc = reptile::obs::json_parse(read_file(path));
      if (!doc.is_object()) throw std::runtime_error("root is not an object");
      const JsonValue* events = doc.find("traceEvents");
      if (events == nullptr || !events->is_array()) {
        throw std::runtime_error("missing \"traceEvents\" array");
      }
      if (const JsonValue* unit = doc.find("displayTimeUnit");
          unit != nullptr && unit->is_string()) {
        display_unit = unit->as_string();
      }
      std::size_t index = 0;
      for (const JsonValue& event : events->as_array()) {
        check_event(event, index++, flows, counters);
        if (!check_only) merged_events.push_back(event);
      }
      std::fprintf(stderr, "%s: ok, %zu events\n", path.c_str(), index);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(), e.what());
      return 1;
    }
  }
  // Flow pairing is a cross-shard property: a lookup's 's' lives in the
  // requester rank's shard, its 'f' in the owner rank's shard. Unmatched
  // starts are legal mid-protocol states (a retransmitted request emits a
  // fresh 's' per attempt; only one reply arrives), but a finish without
  // any start means the id derivation diverged between requester and
  // service — exactly the bug this check exists to catch.
  for (const std::string& id : flows.finishes) {
    if (!flows.starts.count(id)) {
      std::fprintf(stderr,
                   "flow finish %s has no matching start in any shard\n",
                   id.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "flows: %zu starts, %zu finishes, all finishes bound\n",
               flows.starts.size(), flows.finishes.size());
  // Cross-shard account-presence check: a run that emitted ANY ledger
  // counters must have charged the count_table account (every run builds
  // spectrum tables), or the account wiring regressed.
  bool any_ledger = false;
  for (const std::string& name : counters.names) {
    if (name.rfind("ledger:", 0) == 0) any_ledger = true;
  }
  if (any_ledger && !counters.names.count("ledger:count_table")) {
    std::fprintf(stderr,
                 "ledger counters present but ledger:count_table missing\n");
    return 1;
  }
  if (!counters.names.empty()) {
    std::fprintf(stderr, "counters: %zu distinct, streams monotone\n",
                 counters.names.size());
  }
  if (check_only) return 0;

  JsonValue merged = JsonValue::object();
  merged.set("displayTimeUnit", JsonValue::string(display_unit));
  merged.set("traceEvents", std::move(merged_events));
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out << merged.dump() << '\n';
  if (!out.flush()) {
    std::fprintf(stderr, "%s: write failed\n", out_path.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s: merged %zu shard(s)\n", out_path.c_str(),
               shards.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool check_only = false;
  std::string out_path;
  std::vector<std::string> shards;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      check_only = true;
    } else if (arg == "-o" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return 2;
    } else {
      shards.push_back(arg);
    }
  }
  const bool one_mode = check_only ? out_path.empty() : !out_path.empty();
  if (shards.empty() || !one_mode) {
    std::fprintf(stderr,
                 "usage: %s --check SHARD...        validate shards\n"
                 "       %s -o MERGED.json SHARD... validate and merge\n",
                 argv[0], argv[0]);
    return 2;
  }
  return run(check_only, out_path, shards);
}
