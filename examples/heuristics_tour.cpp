// Tour of the paper's heuristics (Section III-B) on one dataset.
//
//   $ ./examples/heuristics_tour [reads] [ranks]
//
// Runs the same dataset through every heuristic configuration Fig. 5
// evaluates and prints what each one trades: remote lookups and probe calls
// (communication) against table memory. All configurations produce
// IDENTICAL corrected reads — the knobs only move where the spectrum lives
// and how messages are shaped.

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"
#include "stats/table.hpp"

namespace {

struct Mode {
  const char* name;
  reptile::parallel::Heuristics heur;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace reptile;

  const std::uint64_t n_reads =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 3000;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 8;

  seq::DatasetSpec spec{"tour", n_reads, 80, n_reads / 2};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.004;
  errors.error_rate_end = 0.012;
  errors.burst_fraction = 0.15;
  errors.burst_regions = 3;
  errors.burst_multiplier = 6.0;
  const auto dataset = seq::SyntheticDataset::generate(spec, errors, 99);

  parallel::DistConfig base;
  base.params.k = 12;
  base.params.tile_overlap = 4;
  base.params.chunk_size = 256;
  base.ranks = ranks;
  base.ranks_per_node = 4;

  auto with = [&](auto setup) {
    parallel::Heuristics h;  // load_balance defaults on
    setup(h);
    return h;
  };
  const Mode modes[] = {
      {"base", with([](auto&) {})},
      {"universal", with([](auto& h) { h.universal = true; })},
      {"read_kmers", with([](auto& h) { h.read_kmers = true; })},
      {"add_remote", with([](auto& h) { h.read_kmers = h.add_remote = true; })},
      {"allgather_kmers", with([](auto& h) { h.allgather_kmers = true; })},
      {"allgather_tiles", with([](auto& h) { h.allgather_tiles = true; })},
      {"allgather_both",
       with([](auto& h) { h.allgather_kmers = h.allgather_tiles = true; })},
      {"batch_reads", with([](auto& h) { h.batch_reads = true; })},
      {"no_load_balance", with([](auto& h) { h.load_balance = false; })},
      // Extensions beyond the paper's Fig. 5 matrix:
      {"partial_repl(4)",
       with([](auto& h) { h.partial_replication_group = 4; })},
      {"bloom_construction",
       with([](auto& h) { h.bloom_construction = true; })},
  };

  std::printf("dataset: %llu reads, %d ranks — identical output expected in "
              "every mode\n\n",
              static_cast<unsigned long long>(n_reads), ranks);

  stats::TextTable table({"mode", "remote kmer", "remote tile", "reads-table hits",
                          "probes", "peak table MB", "identical"});
  std::vector<seq::Read> reference;
  for (const Mode& mode : modes) {
    parallel::DistConfig config = base;
    config.heuristics = mode.heur;
    const auto result = parallel::run_distributed(dataset.reads, config);
    // Bloom construction is deliberately approximate; every other mode
    // must be bit-identical to the first run.
    const bool approximate = mode.heur.bloom_construction;
    if (reference.empty()) reference = result.corrected;

    std::uint64_t rk = 0, rt = 0, hits = 0, probes = 0;
    std::size_t peak = 0;
    for (const auto& r : result.ranks) {
      rk += r.remote.remote_kmer_lookups;
      rt += r.remote.remote_tile_lookups;
      hits += r.remote.reads_table_hits;
      probes += r.service.probe_calls;
      peak = std::max(
          {peak, r.construction_peak_bytes, r.footprint_after_correction.bytes});
    }
    table.row()
        .cell(mode.name)
        .cell(rk)
        .cell(rt)
        .cell(hits)
        .cell(probes)
        .cell_fixed(static_cast<double>(peak) / (1 << 20), 2)
        .cell(result.corrected == reference ? "yes"
              : approximate                 ? "approx (by design)"
                                            : "NO");
  }
  table.print(std::cout);
  std::printf(
      "\nReading the table like the paper's Fig. 5:\n"
      " - universal removes every probe at no memory cost;\n"
      " - read_kmers/add_remote trade reads-table memory for fewer remote "
      "lookups;\n"
      " - allgather_tiles kills the dominant tile traffic, allgather_both "
      "kills all of it, both at a large memory cost;\n"
      " - batch_reads caps the construction-phase peak memory.\n");
  return 0;
}
