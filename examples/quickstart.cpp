// Quickstart: correct a small synthetic dataset, sequentially and with the
// distributed pipeline, and check both against the known ground truth.
//
//   $ ./examples/quickstart
//
// This is the five-minute tour of the public API:
//   seq::SyntheticDataset  — make a genome + error-injected reads
//   core::run_sequential   — the single-process Reptile baseline
//   parallel::run_distributed — the paper's distributed pipeline
//   stats::score_correction   — accuracy against ground truth
//   obs::Registry          — the run's metrics, as a Prometheus text dump

#include <cstdio>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"
#include "stats/accuracy.hpp"

int main() {
  using namespace reptile;

  // 1. A small synthetic dataset: 60X coverage of a 5 kb genome with an
  //    Illumina-like substitution error profile.
  seq::DatasetSpec spec{"quickstart", 4000, 75, 5000};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.003;
  errors.error_rate_end = 0.012;
  const auto dataset = seq::SyntheticDataset::generate(spec, errors, /*seed=*/7);
  std::printf("dataset: %zu reads of %d bp, %.0fX coverage, %llu errors\n",
              dataset.reads.size(), spec.read_length, spec.coverage(),
              static_cast<unsigned long long>(dataset.total_errors));

  // 2. Reptile parameters: 12-mers, tiles of two 12-mers overlapping by 4
  //    (20 bp tiles), spectrum threshold 3.
  core::CorrectorParams params;
  params.k = 12;
  params.tile_overlap = 4;
  params.kmer_threshold = 3;
  params.tile_threshold = 3;

  // 3. Sequential baseline.
  const auto seq_result = core::run_sequential(dataset.reads, params);
  const auto seq_acc =
      stats::score_correction(dataset.reads, seq_result.corrected, dataset.truth);
  std::printf("sequential: %llu reads changed, %llu substitutions, "
              "sensitivity %.3f, gain %.3f\n",
              static_cast<unsigned long long>(seq_result.reads_changed),
              static_cast<unsigned long long>(seq_result.substitutions),
              seq_acc.sensitivity(), seq_acc.gain());

  // 4. Distributed run: 8 ranks, 4 per (virtual) node, the paper's
  //    production heuristics (universal + batch reads + load balancing).
  parallel::DistConfig config;
  config.params = params;
  config.ranks = 8;
  config.ranks_per_node = 4;
  config.heuristics.universal = true;
  config.heuristics.batch_reads = true;
  config.heuristics.load_balance = true;
  config.trace.metrics = true;  // collect the metrics registry for step 6
  const auto dist_result = parallel::run_distributed(dataset.reads, config);
  const auto dist_acc = stats::score_correction(
      dataset.reads, dist_result.corrected, dataset.truth);
  std::printf("distributed (8 ranks): %llu substitutions, sensitivity %.3f\n",
              static_cast<unsigned long long>(dist_result.total_substitutions()),
              dist_acc.sensitivity());

  // 5. The paper's headline property: the distributed pipeline corrects
  //    exactly what the sequential algorithm corrects.
  bool identical = dist_result.corrected.size() == seq_result.corrected.size();
  for (std::size_t i = 0; identical && i < seq_result.corrected.size(); ++i) {
    identical = dist_result.corrected[i].bases == seq_result.corrected[i].bases;
  }
  std::printf("distributed output identical to sequential: %s\n",
              identical ? "yes" : "NO (bug!)");

  std::uint64_t remote = 0;
  for (const auto& r : dist_result.ranks) {
    remote += r.remote.remote_kmer_lookups + r.remote.remote_tile_lookups;
  }
  std::printf("remote spectrum lookups across ranks: %llu\n",
              static_cast<unsigned long long>(remote));

  // 6. Everything the run measured, as a Prometheus-style text dump: the
  //    per-rank pipeline counters plus the latency histograms (lookup RTT,
  //    batch prefetch, service handling, mailbox waits).
  std::printf("\n--- metrics (Prometheus text exposition) ---\n%s",
              obs::Registry::global().prometheus_text().c_str());
  return identical ? 0 : 1;
}
