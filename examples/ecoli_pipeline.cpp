// End-to-end file pipeline on an E.Coli-like dataset.
//
//   $ ./examples/ecoli_pipeline [scale] [ranks]
//
// Recreates the paper's operational flow:
//   1. generate a scaled E.Coli dataset (Table I geometry at `scale`,
//      default 1/2000) and write the pre-processed FASTA + quality files
//      with numeric headers, exactly the input format Reptile consumes;
//   2. write a Reptile-style configuration file and parse it back;
//   3. run the distributed pipeline from the files (Step I byte-range
//      partitioning, Steps II-III spectrum exchange, Step IV correction
//      with communication threads);
//   4. write the corrected FASTA and print per-rank statistics.

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "parallel/config_file.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"
#include "seq/fasta_io.hpp"
#include "stats/accuracy.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  namespace fs = std::filesystem;

  const double scale = argc > 1 ? std::atof(argv[1]) : 1.0 / 2000.0;
  const int ranks = argc > 2 ? std::atoi(argv[2]) : 8;

  const auto dir = fs::temp_directory_path() / "reptile_ecoli_example";
  fs::create_directories(dir);

  // 1. Dataset with E.Coli geometry.
  const auto spec = seq::DatasetSpec::ecoli().scaled(scale);
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.002;
  errors.error_rate_end = 0.01;
  errors.burst_fraction = 0.1;
  errors.burst_regions = 4;
  errors.burst_multiplier = 6.0;
  std::printf("generating %llu reads (%d bp) from a %llu bp genome...\n",
              static_cast<unsigned long long>(spec.n_reads), spec.read_length,
              static_cast<unsigned long long>(spec.genome_size));
  const auto dataset = seq::SyntheticDataset::generate(spec, errors, 2016);
  seq::write_read_files(dir / "ecoli.fa", dir / "ecoli.qual", dataset.reads);

  // 2. Configuration file, as the paper's Step I expects.
  parallel::RunConfigFile file_config;
  file_config.fasta_file = dir / "ecoli.fa";
  file_config.qual_file = dir / "ecoli.qual";
  file_config.output_file = dir / "ecoli.corrected.fa";
  file_config.params.k = 12;
  file_config.params.tile_overlap = 4;
  file_config.params.chunk_size = 2000;  // the paper's human-run batch size
  file_config.heuristics.universal = true;
  file_config.heuristics.batch_reads = true;
  file_config.heuristics.load_balance = true;
  {
    std::FILE* f = std::fopen((dir / "run.cfg").c_str(), "w");
    const auto text = parallel::to_config_text(file_config);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
  }
  const auto config_back = parallel::parse_config_file(dir / "run.cfg");

  // 3. Distributed run from the files.
  parallel::DistConfig run;
  run.params = config_back.params;
  run.heuristics = config_back.heuristics;
  run.ranks = ranks;
  run.ranks_per_node = 4;
  std::printf("running %d ranks (%d per node), heuristics: %s\n", run.ranks,
              run.ranks_per_node, run.heuristics.label().c_str());
  const auto result = parallel::run_distributed_files(
      config_back.fasta_file, config_back.qual_file, run);

  // 4. Output + per-rank report.
  seq::write_fasta(config_back.output_file, result.corrected);
  const auto acc =
      stats::score_correction(dataset.reads, result.corrected, dataset.truth);
  std::printf("corrected file: %s\n", config_back.output_file.c_str());
  std::printf("sensitivity %.3f, gain %.3f, %llu reads fully fixed\n",
              acc.sensitivity(), acc.gain(),
              static_cast<unsigned long long>(acc.reads_fully_fixed));

  stats::TextTable table({"rank", "reads", "substitutions", "remote lookups",
                          "served", "spectrum MB", "construct s", "correct s",
                          "comm s"});
  for (const auto& r : result.ranks) {
    table.row()
        .cell(r.rank)
        .cell(r.reads_processed)
        .cell(r.substitutions)
        .cell(r.remote.remote_kmer_lookups + r.remote.remote_tile_lookups)
        .cell(r.service.requests_served)
        .cell_fixed(static_cast<double>(r.footprint_after_correction.bytes) /
                        (1 << 20),
                    2)
        .cell_fixed(r.construct_seconds, 3)
        .cell_fixed(r.correct_seconds, 3)
        .cell_fixed(r.comm_seconds, 3);
  }
  table.print(std::cout);
  return 0;
}
