// Preprocessing tool: FASTQ -> Reptile's FASTA + quality-file inputs.
//
//   $ ./examples/fastq_convert reads.fastq out_prefix [--phred64] [--min-len N]
//
// Implements the paper's assumed preprocessing ("the names have been
// pre-processed to be sequence numbers"; "Reptile is not capable of reading
// the fastq format"): reads the FASTQ, renumbers reads 1..N, sanitizes
// non-ACGT bases, and writes <out_prefix>.fa and <out_prefix>.qual.
//
// With no arguments, runs a self-contained demo on a generated FASTQ.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "seq/dataset.hpp"
#include "seq/fastq_io.hpp"

int main(int argc, char** argv) {
  using namespace reptile;
  namespace fs = std::filesystem;

  fs::path input;
  std::string prefix;
  seq::FastqOptions options;

  if (argc < 3) {
    std::printf("usage: %s reads.fastq out_prefix [--phred64] [--min-len N]\n"
                "no input given; running the built-in demo...\n\n",
                argv[0]);
    const auto dir = fs::temp_directory_path() / "reptile_fastq_demo";
    fs::create_directories(dir);
    seq::DatasetSpec spec{"demo", 1000, 80, 5000};
    seq::ErrorModelParams errors;
    const auto ds = seq::SyntheticDataset::generate(spec, errors, 3);
    input = dir / "demo.fastq";
    seq::write_fastq(input, ds.reads);
    prefix = (dir / "demo").string();
  } else {
    input = argv[1];
    prefix = argv[2];
    for (int i = 3; i < argc; ++i) {
      if (std::strcmp(argv[i], "--phred64") == 0) {
        options.phred_offset = 64;
      } else if (std::strcmp(argv[i], "--min-len") == 0 && i + 1 < argc) {
        options.min_length = std::atoi(argv[++i]);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
        return 2;
      }
    }
  }

  try {
    const auto stats = seq::convert_fastq(input, prefix + ".fa",
                                          prefix + ".qual", options);
    std::printf("converted %s\n", input.c_str());
    std::printf("  reads in:        %llu\n",
                static_cast<unsigned long long>(stats.reads_in));
    std::printf("  reads written:   %llu\n",
                static_cast<unsigned long long>(stats.reads_out));
    std::printf("  reads dropped:   %llu (below min length)\n",
                static_cast<unsigned long long>(stats.reads_dropped));
    std::printf("  bases sanitized: %llu (non-ACGT)\n",
                static_cast<unsigned long long>(stats.bases_sanitized));
    std::printf("outputs: %s.fa, %s.qual\n", prefix.c_str(), prefix.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
