// reptile_correct: the operational CLI, mirroring the original parallel
// Reptile invocation — a configuration file in, a corrected FASTA out.
//
//   $ ./examples/reptile_correct run.cfg [--ranks N] [--ranks-per-node M]
//                                        [--trace PREFIX]
//
// The configuration file format is documented in
// src/parallel/config_file.hpp (fasta_file / qual_file / output_file paths,
// algorithm parameters, heuristic flags). --trace PREFIX enables span
// tracing + metrics for the run (equivalent to trace_enabled/metrics_enabled
// config keys) and writes one Chrome-trace shard per rank to
// PREFIX.rankN.json; merge them with tools/trace_merge. With no arguments,
// generates a demo dataset + config under /tmp and runs on that.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "obs/metrics.hpp"
#include "parallel/config_file.hpp"
#include "parallel/dist_pipeline.hpp"
#include "seq/dataset.hpp"
#include "seq/fasta_io.hpp"
#include "stats/summary.hpp"

namespace {

std::filesystem::path write_demo_config() {
  using namespace reptile;
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "reptile_correct_demo";
  fs::create_directories(dir);
  seq::DatasetSpec spec{"demo", 3000, 80, 4000};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.004;
  errors.error_rate_end = 0.012;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 31337);
  seq::write_read_files(dir / "reads.fa", dir / "reads.qual", ds.reads);

  parallel::RunConfigFile config;
  config.fasta_file = dir / "reads.fa";
  config.qual_file = dir / "reads.qual";
  config.output_file = dir / "corrected.fa";
  config.heuristics.universal = true;
  config.heuristics.batch_reads = true;
  const auto path = dir / "run.cfg";
  std::ofstream out(path);
  out << parallel::to_config_text(config);
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reptile;

  std::filesystem::path config_path;
  int ranks = 8;
  int ranks_per_node = 4;
  std::string trace_prefix;
  if (argc < 2) {
    std::printf("usage: %s run.cfg [--ranks N] [--ranks-per-node M] "
                "[--trace PREFIX]\n"
                "no config given; running the built-in demo...\n\n",
                argv[0]);
    config_path = write_demo_config();
  } else {
    config_path = argv[1];
    for (int i = 2; i < argc; ++i) {
      if (std::strcmp(argv[i], "--ranks") == 0 && i + 1 < argc) {
        ranks = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--ranks-per-node") == 0 &&
                 i + 1 < argc) {
        ranks_per_node = std::atoi(argv[++i]);
      } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
        trace_prefix = argv[++i];
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
        return 2;
      }
    }
  }

  try {
    const auto file_config = parallel::parse_config_file(config_path);
    parallel::DistConfig run;
    run.params = file_config.params;
    run.heuristics = file_config.heuristics;
    run.ranks = ranks;
    run.ranks_per_node = ranks_per_node;
    run.run_options.check.enabled = file_config.rtm_check;
    run.run_options.mailbox_fast_path = file_config.mailbox_fast_path;
    run.run_options.chaos = file_config.chaos;
    run.retry = file_config.retry;
    run.trace = file_config.trace;
    if (!trace_prefix.empty()) {
      run.trace.enabled = true;
      run.trace.metrics = true;
      run.trace.path = trace_prefix;
    }

    std::printf("config:  %s\n", config_path.c_str());
    std::printf("input:   %s + %s\n", file_config.fasta_file.c_str(),
                file_config.qual_file.c_str());
    std::printf("ranks:   %d (%d per node), heuristics: %s\n", run.ranks,
                run.ranks_per_node, run.heuristics.label().c_str());

    const auto result = parallel::run_distributed_files(
        file_config.fasta_file, file_config.qual_file, run);

    if (!file_config.output_file.empty()) {
      seq::write_fasta(file_config.output_file, result.corrected);
      std::printf("output:  %s\n", file_config.output_file.c_str());
    }
    std::printf("reads corrected: %llu of %zu (%llu substitutions)\n",
                static_cast<unsigned long long>(result.total_reads_changed()),
                result.corrected.size(),
                static_cast<unsigned long long>(result.total_substitutions()));

    std::vector<double> times;
    std::vector<std::uint64_t> remote;
    for (const auto& r : result.ranks) {
      times.push_back(r.construct_seconds + r.correct_seconds);
      remote.push_back(r.remote.remote_kmer_lookups +
                       r.remote.remote_tile_lookups);
    }
    const auto ts = stats::summarize(std::span<const double>(times));
    const auto rs = stats::summarize(std::span<const std::uint64_t>(remote));
    std::printf("rank times: %.3f .. %.3f s (imbalance %.2f)\n", ts.min,
                ts.max, ts.imbalance());
    std::printf("remote lookups per rank: %.0f .. %.0f\n", rs.min, rs.max);
    if (run.trace.enabled && !run.trace.path.empty()) {
      std::printf("trace:   %s.rank0.json .. %s.rank%d.json\n",
                  run.trace.path.c_str(), run.trace.path.c_str(),
                  run.ranks - 1);
    }
    for (const auto& h : obs::Registry::global().histogram_summaries()) {
      std::printf("latency %s rank %d: n=%llu p50=%lluus p99=%lluus "
                  "max=%lluus\n",
                  h.name.c_str(), h.rank,
                  static_cast<unsigned long long>(h.count),
                  static_cast<unsigned long long>(h.p50),
                  static_cast<unsigned long long>(h.p99),
                  static_cast<unsigned long long>(h.max));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
