// Spectrum checkpointing: build once, sweep correction parameters.
//
//   $ ./examples/spectrum_reuse
//
// Spectrum construction dominates setup cost (it streams the whole read
// set); the correction-side knobs (search width, Hamming radius, dominance
// rule, quality restriction) don't affect the spectrum at all. This example
// builds and checkpoints the spectrum once (core::save_spectrum), then
// reloads it for each corrector configuration and reports accuracy —
// the workflow a parameter study over the paper's datasets would use.

#include <cstdio>
#include <filesystem>
#include <iostream>

#include "core/corrector.hpp"
#include "core/spectrum_io.hpp"
#include "seq/dataset.hpp"
#include "stats/accuracy.hpp"
#include "stats/stopwatch.hpp"
#include "stats/table.hpp"

int main() {
  using namespace reptile;
  namespace fs = std::filesystem;

  const auto dir = fs::temp_directory_path() / "reptile_spectrum_reuse";
  fs::create_directories(dir);
  const auto checkpoint = dir / "ecoli.rptl";

  // Construction-side parameters: fixed for the whole study.
  core::CorrectorParams build_params;
  build_params.k = 12;
  build_params.tile_overlap = 4;
  build_params.kmer_threshold = 3;
  build_params.tile_threshold = 3;

  seq::DatasetSpec spec{"reuse", 6000, 80, 6000};  // 80X coverage
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.003;
  errors.error_rate_end = 0.012;
  const auto ds = seq::SyntheticDataset::generate(spec, errors, 2024);

  stats::Stopwatch clock;
  {
    core::LocalSpectrum spectrum(build_params);
    for (const auto& r : ds.reads) spectrum.add_read(r.bases);
    spectrum.prune();
    core::save_spectrum(checkpoint, spectrum, build_params);
  }
  std::printf("built + checkpointed spectrum in %.2f s -> %s (%.2f MB)\n",
              clock.seconds(), checkpoint.c_str(),
              static_cast<double>(fs::file_size(checkpoint)) / (1 << 20));

  struct Variant {
    const char* name;
    int max_positions;
    int max_hamming;
    double dominance;
    bool low_quality_only;
  };
  const Variant variants[] = {
      {"narrow (2 pos, d1)", 2, 1, 2.0, false},
      {"default (4 pos, d2)", 4, 2, 2.0, false},
      {"wide (6 pos, d2)", 6, 2, 2.0, false},
      {"greedy (ratio 1.0)", 4, 2, 1.0, false},
      {"strict (ratio 4.0)", 4, 2, 4.0, false},
      {"low-quality only", 4, 2, 2.0, true},
  };

  stats::TextTable table({"corrector variant", "load s", "correct s",
                          "sensitivity", "gain", "false positives"});
  for (const Variant& v : variants) {
    core::CorrectorParams params = build_params;
    params.max_positions_per_tile = v.max_positions;
    params.max_hamming = v.max_hamming;
    params.dominance_ratio = v.dominance;
    params.restrict_to_low_quality = v.low_quality_only;

    clock.restart();
    auto spectrum = core::load_spectrum(checkpoint, params);
    const double load_s = clock.seconds();

    clock.restart();
    core::TileCorrector corrector(params);
    auto corrected = ds.reads;
    for (auto& r : corrected) corrector.correct(r, spectrum);
    const double correct_s = clock.seconds();

    const auto acc = stats::score_correction(ds.reads, corrected, ds.truth);
    table.row()
        .cell(v.name)
        .cell_fixed(load_s, 3)
        .cell_fixed(correct_s, 3)
        .cell_fixed(acc.sensitivity(), 3)
        .cell_fixed(acc.gain(), 3)
        .cell(acc.false_positives);
  }
  table.print(std::cout);
  std::printf("\nloading the checkpoint skips construction entirely; only the\n"
              "correction pass repeats per variant.\n");
  fs::remove_all(dir);
  return 0;
}
