// Modeling a BlueGene/Q campaign: the perfmodel API end to end.
//
//   $ ./examples/cluster_scaling [dataset: ecoli|drosophila|human]
//
// Shows how the library projects laptop-scale measurements to the paper's
// cluster scale: measure per-read workload traits on a scaled synthetic
// replica, then model the full Table I dataset on 32-ranks-per-node
// BlueGene/Q nodes across the paper's node counts.

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "perfmodel/phase_model.hpp"
#include "seq/dataset.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
  using namespace reptile;

  const std::string which = argc > 1 ? argv[1] : "ecoli";
  seq::DatasetSpec full = seq::DatasetSpec::ecoli();
  std::vector<int> node_counts = {32, 64, 128, 256};
  if (which == "drosophila") {
    full = seq::DatasetSpec::drosophila();
    node_counts = {128, 256, 512};
  } else if (which == "human") {
    full = seq::DatasetSpec::human();
    node_counts = {128, 256, 512, 1024};
  }

  // 1. Measure workload traits on a scaled replica (same geometry).
  const auto scaled = full.scaled(4000.0 / static_cast<double>(full.n_reads));
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.003;
  errors.error_rate_end = 0.01;
  errors.burst_fraction = 0.2;
  errors.burst_regions = 4;
  errors.burst_multiplier = 8.0;

  core::CorrectorParams params;
  params.k = 12;
  params.tile_overlap = 4;
  params.max_positions_per_tile = 6;
  params.chunk_size = 2000;

  std::printf("measuring per-read workload on a %llu-read replica of %s...\n",
              static_cast<unsigned long long>(scaled.n_reads),
              full.name.c_str());
  const auto dataset = seq::SyntheticDataset::generate(scaled, errors, 4242);
  const auto traits = perfmodel::measure_traits(dataset, params, errors, 64);

  // 2. Model the paper's scaling campaign (32 ranks/node, balanced and
  //    imbalanced, as in Figs. 6-8).
  const auto machine = perfmodel::MachineModel::bluegene_q();
  constexpr int kRanksPerNode = 32;
  parallel::Heuristics balanced;
  parallel::Heuristics imbalanced;
  imbalanced.load_balance = false;
  if (which == "human") {
    balanced.batch_reads = true;  // the paper's human runs used batch mode
    imbalanced.batch_reads = true;
  }

  stats::TextTable table({"nodes", "ranks", "construct s", "correct s",
                          "total s", "imbalanced s", "MB/rank", "efficiency"});
  perfmodel::RunEstimate baseline;
  for (int nodes : node_counts) {
    const int np = nodes * kRanksPerNode;
    const auto run = perfmodel::model_run(machine, traits, full, np,
                                          kRanksPerNode, balanced);
    const auto run_imb = perfmodel::model_run(machine, traits, full, np,
                                              kRanksPerNode, imbalanced);
    if (baseline.ranks.empty()) baseline = run;
    table.row()
        .cell(nodes)
        .cell(np)
        .cell_fixed(run.construct_seconds(), 1)
        .cell_fixed(run.correct_seconds(), 1)
        .cell_fixed(run.total_seconds(), 1)
        .cell_fixed(run_imb.total_seconds(), 1)
        .cell_fixed(run.max_memory_mb(), 1)
        .cell_fixed(perfmodel::RunEstimate::parallel_efficiency(baseline, run),
                    2);
  }
  std::printf("\nmodeled BlueGene/Q campaign for %s (%llu reads):\n",
              full.name.c_str(),
              static_cast<unsigned long long>(full.n_reads));
  table.print(std::cout);
  std::printf("\ncolumns mirror the paper's Figs. 6-8: strong scaling of the\n"
              "balanced pipeline, the imbalanced comparison, and the per-rank\n"
              "memory footprint staying far below the 512 MB budget.\n");
  return 0;
}
