// reptile_serve: correction-as-a-service demo and smoke driver.
//
//   $ ./examples/reptile_serve [run.cfg] [--ranks N] [--jobs K]
//                              [--deadline-ms D] [--miss-job J]
//                              [--depth Q] [--trace PREFIX]
//
// Boots a resident CorrectionServer (spectrum built once from the input
// dataset), streams K correction jobs through it, and verifies the serve
// contract as it goes:
//
//   * spectrum_builds == ranks after all jobs (build-once),
//   * job J (--miss-job, given a sub-microsecond deadline) comes back
//     degraded with deadline_missed set,
//   * every other job is clean AND byte-identical to a one-shot
//     run_distributed of the same dataset and config,
//   * the server shuts down cleanly with exact degraded accounting.
//
// Any violated check exits nonzero — CI runs this as the serve smoke. With
// no config, generates a synthetic demo dataset. `job.*` keys in the config
// become the default overrides of every streamed job; --deadline-ms /
// --miss-job layer on top.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <vector>

#include "parallel/config_file.hpp"
#include "parallel/dist_pipeline.hpp"
#include "parallel/serve.hpp"
#include "seq/dataset.hpp"
#include "seq/fasta_io.hpp"

namespace {

std::vector<reptile::seq::Read> demo_reads() {
  using namespace reptile;
  seq::DatasetSpec spec{"serve-demo", 2000, 80, 3000};
  seq::ErrorModelParams errors;
  errors.error_rate_start = 0.004;
  errors.error_rate_end = 0.012;
  return seq::SyntheticDataset::generate(spec, errors, 31337).reads;
}

int fail(const char* what) {
  std::fprintf(stderr, "serve check FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace reptile;

  std::filesystem::path config_path;
  int ranks = 2;
  int jobs = 3;
  double deadline_ms = 0.0;  // 0 = no deadline on regular jobs
  int miss_job = 0;          // 1-based job forced to blow its deadline; 0 = none
  std::size_t depth = 4;
  std::string trace_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ranks") == 0 && i + 1 < argc) {
      ranks = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--miss-job") == 0 && i + 1 < argc) {
      miss_job = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--depth") == 0 && i + 1 < argc) {
      depth = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_prefix = argv[++i];
    } else if (argv[i][0] != '-' && config_path.empty()) {
      config_path = argv[i];
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  try {
    parallel::RunConfigFile file_config;
    std::vector<seq::Read> reads;
    if (config_path.empty()) {
      std::printf("no config given; running the built-in demo...\n");
      file_config.heuristics.universal = true;
      file_config.heuristics.batch_reads = true;
      reads = demo_reads();
    } else {
      file_config = parallel::parse_config_file(config_path);
      reads = seq::read_all(file_config.fasta_file, file_config.qual_file);
    }

    parallel::DistConfig config;
    config.params = file_config.params;
    config.heuristics = file_config.heuristics;
    config.ranks = ranks;
    config.run_options.check.enabled = file_config.rtm_check;
    config.run_options.mailbox_fast_path = file_config.mailbox_fast_path;
    config.run_options.chaos = file_config.chaos;
    config.retry = file_config.retry;
    config.trace = file_config.trace;
    if (!trace_prefix.empty()) {
      config.trace.enabled = true;
      config.trace.metrics = true;
      config.trace.path = trace_prefix;
    }

    std::printf("serving %zu reads on %d ranks, %d jobs, queue depth %zu\n",
                reads.size(), ranks, jobs, depth);

    // The one-shot reference every clean job must match byte for byte.
    const parallel::DistResult reference =
        parallel::run_distributed(reads, config);

    parallel::CorrectionServer server(reads, config, depth);

    std::vector<std::future<parallel::JobReport>> futures;
    for (int j = 1; j <= jobs; ++j) {
      parallel::JobRequest request;
      request.reads = reads;
      request.overrides = file_config.job;
      if (j == miss_job) {
        request.overrides.deadline_seconds = 1e-9;  // unmeetable: forced miss
      } else if (deadline_ms > 0.0) {
        request.overrides.deadline_seconds = deadline_ms / 1000.0;
      }
      futures.push_back(server.submit(std::move(request)));
    }

    int degraded_jobs = 0;
    int job_index = 0;
    for (std::future<parallel::JobReport>& f : futures) {
      ++job_index;
      parallel::JobReport report = f.get();
      std::printf(
          "job %llu: %.3fs, %llu substitutions, %llu reads changed, "
          "%llu deadline-skipped%s%s\n",
          static_cast<unsigned long long>(report.job_id), report.seconds,
          static_cast<unsigned long long>(report.total_substitutions()),
          static_cast<unsigned long long>(report.total_reads_changed()),
          static_cast<unsigned long long>(report.total_deadline_skipped()),
          report.degraded ? " [degraded]" : "",
          report.deadline_missed ? " [deadline missed]" : "");
      if (report.degraded) ++degraded_jobs;
      if (job_index == miss_job) {
        if (!report.deadline_missed || !report.degraded) {
          return fail("forced-miss job did not report a missed deadline");
        }
      } else if (deadline_ms == 0.0) {
        if (report.degraded) return fail("clean job reported degraded");
        if (report.corrected != reference.corrected) {
          return fail("served job output differs from the one-shot run");
        }
      }
    }

    server.shutdown();
    const parallel::ServerStats stats = server.stats();
    std::printf(
        "server: %llu jobs (%llu degraded), %llu spectrum builds on %d ranks\n",
        static_cast<unsigned long long>(stats.jobs_completed),
        static_cast<unsigned long long>(stats.jobs_degraded),
        static_cast<unsigned long long>(stats.spectrum_builds), ranks);
    if (stats.spectrum_builds != static_cast<std::uint64_t>(ranks)) {
      return fail("spectrum was not built exactly once per rank");
    }
    if (stats.jobs_completed != static_cast<std::uint64_t>(jobs)) {
      return fail("completed-job accounting is wrong");
    }
    if (stats.jobs_degraded != static_cast<std::uint64_t>(degraded_jobs)) {
      return fail("degraded-job accounting is wrong");
    }
    std::printf("all serve checks passed\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
