#pragma once
// Spectrum checkpointing: save a constructed (pruned) spectrum to disk and
// load it back.
//
// Spectrum construction streams the entire read set; on the paper's
// datasets that is minutes to hours of I/O and exchange. Checkpointing the
// pruned spectrum lets repeated correction runs (e.g. parameter studies on
// the correction side) skip Steps I-III entirely.
//
// File format (little-endian, versioned):
//   magic "RPTL" | u32 version | u32 k | u32 tile_overlap | u8 canonical |
//   u32 kmer_threshold | u32 tile_threshold |
//   u64 kmer_entries | (u64 id, u32 count) * kmer_entries |
//   u64 tile_entries | (u64 id, u32 count) * tile_entries

#include <filesystem>

#include "core/params.hpp"
#include "core/spectrum.hpp"

namespace reptile::core {

/// Writes `spectrum` (typically post-prune) with its construction
/// parameters. Throws std::runtime_error on IO failure.
void save_spectrum(const std::filesystem::path& path,
                   const LocalSpectrum& spectrum,
                   const CorrectorParams& params);

/// Loads a spectrum saved by save_spectrum. Throws std::runtime_error on a
/// malformed file, and std::invalid_argument when the file's construction
/// parameters are incompatible with `params` (k, overlap, canonical and
/// thresholds must match — a spectrum built for different geometry answers
/// wrong questions silently).
LocalSpectrum load_spectrum(const std::filesystem::path& path,
                            const CorrectorParams& params);

}  // namespace reptile::core
