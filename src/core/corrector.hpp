#pragma once
// Reptile's per-read tile-based substitution corrector.
//
// Reptile "corrects tiles instead of k-mers. Since a tile has almost twice
// the character count as the k-mer, error correction at the tile level has
// far fewer candidates than at the k-mer level" (paper Section II-A). The
// corrector walks a read's tiles left to right; an *untrusted* tile (count
// below threshold) triggers candidate enumeration: substitutions at the
// tile's lowest-quality positions, up to Hamming distance max_hamming. A
// candidate is acceptable when the substituted tile is in the tile spectrum
// above threshold AND both of its constituent k-mers are solid; the best
// candidate is applied only when it dominates the runner-up (unambiguity).
//
// Corrections are applied to the read in place, so later tiles see earlier
// fixes — the second k-mer of tile i is the first k-mer of tile i+1, which
// is how tile-chain consistency propagates along the read.
//
// All tie-breaks are deterministic (count desc, then tile ID asc), so the
// sequential baseline and every distributed configuration produce
// bit-identical corrected reads — the property the integration tests pin.

#include <cstdint>

#include "core/params.hpp"
#include "core/spectrum.hpp"
#include "seq/read.hpp"

namespace reptile::core {

/// Outcome of correcting one read.
struct ReadCorrection {
  int substitutions = 0;    ///< bases changed
  int tiles_untrusted = 0;  ///< tiles found below threshold
  int tiles_fixed = 0;      ///< untrusted tiles resolved by a correction
  /// Tiles left unmodified because a lookup backing the decision degraded
  /// (SpectrumView::degraded_lookups advanced): with evidence possibly
  /// missing, the corrector skips the tile rather than risk a miscorrection.
  int tiles_degraded = 0;

  bool changed() const noexcept { return substitutions > 0; }
};

class TileCorrector {
 public:
  explicit TileCorrector(const CorrectorParams& params);

  const CorrectorParams& params() const noexcept { return params_; }
  const seq::TileCodec& tile_codec() const noexcept { return tile_codec_; }

  /// Corrects `read` in place against `spectrum`. The read's qualities are
  /// left untouched (Reptile emits corrected bases only).
  ReadCorrection correct(seq::Read& read, SpectrumView& spectrum) const;

 private:
  /// One enumeration candidate that passed acceptance.
  struct Candidate {
    seq::tile_id_t tile = 0;
    std::uint32_t count = 0;
    // Up to two substitutions (offset within tile, new base code).
    int off1 = -1;
    seq::base_t base1 = 0;
    int off2 = -1;
    seq::base_t base2 = 0;
  };

  /// Attempts to fix the untrusted tile `tile` at read offset `tile_pos`.
  /// On success applies the substitutions to `read` and returns the number
  /// of bases changed (0 = no unambiguous fix found). `degraded_before` is
  /// the spectrum's degraded_lookups() value from before the tile's gate
  /// lookup: if any lookup degraded since then, the candidate evidence is
  /// unreliable and no substitution is applied.
  int try_fix_tile(seq::Read& read, int tile_pos, seq::tile_id_t tile,
                   SpectrumView& spectrum,
                   std::uint64_t degraded_before) const;

  /// True when `tile` is supported: tile count above threshold and both
  /// constituent k-mers solid. Returns the tile count through `count`.
  bool acceptable(seq::tile_id_t tile, SpectrumView& spectrum,
                  std::uint32_t& count) const;

  /// Selects up to max_positions_per_tile tile offsets, lowest quality
  /// first (ties by offset).
  void pick_positions(const seq::Read& read, int tile_pos,
                      std::vector<int>& out) const;

  CorrectorParams params_;
  seq::TileCodec tile_codec_;
};

}  // namespace reptile::core
