#include "core/frozen_spectrum.hpp"

namespace reptile::core {

FrozenSpectrum::FrozenSpectrum(const LocalSpectrum& source,
                               SpectrumBackend backend)
    : backend_(backend),
      source_for_canon_(&source),
      kmer_entries_(source.kmer_entries()),
      tile_entries_(source.tile_entries()) {
  switch (backend_) {
    case SpectrumBackend::kHashTable:
      source.kmers().for_each([this](std::uint64_t id, std::uint32_t c) {
        hash_kmers_.increment(id, c);
      });
      source.tiles().for_each([this](std::uint64_t id, std::uint32_t c) {
        hash_tiles_.increment(id, c);
      });
      break;
    case SpectrumBackend::kSortedArray:
      sorted_kmers_ = hash::SortedCountArray::from_entries(
          source.kmers().entries());
      sorted_tiles_ = hash::SortedCountArray::from_entries(
          source.tiles().entries());
      break;
    case SpectrumBackend::kCacheAware:
      cache_kmers_ = hash::CacheAwareCountArray::from_entries(
          source.kmers().entries());
      cache_tiles_ = hash::CacheAwareCountArray::from_entries(
          source.tiles().entries());
      break;
  }
}

std::uint32_t FrozenSpectrum::lookup(std::uint64_t id, bool is_kmer) const {
  std::optional<std::uint32_t> found;
  switch (backend_) {
    case SpectrumBackend::kHashTable:
      found = is_kmer ? hash_kmers_.find(id) : hash_tiles_.find(id);
      break;
    case SpectrumBackend::kSortedArray:
      found = is_kmer ? sorted_kmers_.find(id) : sorted_tiles_.find(id);
      break;
    case SpectrumBackend::kCacheAware:
      found = is_kmer ? cache_kmers_.find(id) : cache_tiles_.find(id);
      break;
  }
  return found.value_or(0);
}

std::uint32_t FrozenSpectrum::kmer_count(seq::kmer_id_t id) {
  ++stats_.kmer_lookups;
  const std::uint32_t c = lookup(source_for_canon_->canon_kmer(id), true);
  if (c == 0) ++stats_.kmer_misses;
  return c;
}

std::uint32_t FrozenSpectrum::tile_count(seq::tile_id_t id) {
  ++stats_.tile_lookups;
  const std::uint32_t c = lookup(source_for_canon_->canon_tile(id), false);
  if (c == 0) ++stats_.tile_misses;
  return c;
}

std::size_t FrozenSpectrum::memory_bytes() const noexcept {
  switch (backend_) {
    case SpectrumBackend::kHashTable:
      return hash_kmers_.memory_bytes() + hash_tiles_.memory_bytes();
    case SpectrumBackend::kSortedArray:
      return sorted_kmers_.memory_bytes() + sorted_tiles_.memory_bytes();
    case SpectrumBackend::kCacheAware:
      return cache_kmers_.memory_bytes() + cache_tiles_.memory_bytes();
  }
  return 0;
}

}  // namespace reptile::core
