#pragma once
// Reptile algorithm parameters.
//
// These mirror the knobs of the original Reptile configuration file (k-mer
// length, tile overlap, frequency thresholds, quality handling, chunk size)
// plus the correction-search limits that bound candidate enumeration.

#include <stdexcept>

namespace reptile::core {

struct CorrectorParams {
  /// k-mer length (bases). Tile length is 2k - tile_overlap <= 32.
  int k = 12;
  /// Bases shared by the two k-mers of a tile.
  int tile_overlap = 4;

  /// A k-mer is *solid* when its global count >= kmer_threshold; entries
  /// below the threshold are pruned from the spectrum (paper Step III).
  unsigned kmer_threshold = 3;
  /// Same for tiles.
  unsigned tile_threshold = 3;

  /// Build the spectra over canonical (strand-independent) IDs.
  bool canonical = false;

  /// Bases with Phred quality below this are preferred candidate error
  /// positions inside an untrusted tile.
  int qual_threshold = 20;
  /// When true (the original Reptile's behaviour), substitution candidates
  /// are restricted to positions with quality < qual_threshold; an
  /// untrusted tile whose bases are all high-quality is left alone. When
  /// false, the qual_threshold is only an ordering hint and the
  /// lowest-quality positions are searched regardless.
  bool restrict_to_low_quality = false;
  /// At most this many positions of a tile are considered for substitution
  /// (lowest quality first).
  int max_positions_per_tile = 4;
  /// Maximum Hamming distance explored per tile (1 = single substitutions,
  /// 2 = also pairs).
  int max_hamming = 2;
  /// A correction is applied only when the best candidate tile's count is
  /// at least this multiple of the runner-up's (Reptile's unambiguity
  /// requirement; ties are never corrected).
  double dominance_ratio = 2.0;
  /// Upper bound on substitutions applied to one read.
  int max_corrections_per_read = 8;

  /// Reads are streamed in chunks of this many reads (the paper's
  /// configuration-file chunk size).
  std::size_t chunk_size = 1024;

  /// Upper bound on entries held in a correction worker's chunk-local
  /// prefetch cache (the batched-lookup extension). The cache is cleared at
  /// every chunk boundary; within a chunk at most this many IDs are
  /// prefetched or cached from scalar replies, so correction-phase memory
  /// stays capped no matter the chunk contents.
  std::size_t prefetch_capacity = std::size_t{1} << 20;

  /// Upper bound on entries the add_remote heuristic may append to the
  /// shared reads tables. Beyond it the oldest cached reply is evicted
  /// (FIFO), bounding the paper's unbounded 119 MB -> 199 MB growth.
  std::size_t remote_cache_capacity = std::size_t{1} << 20;

  int tile_length() const noexcept { return 2 * k - tile_overlap; }
  int tile_step() const noexcept { return k - tile_overlap; }

  /// Throws std::invalid_argument when the parameter set is inconsistent.
  void validate() const {
    if (k < 4 || k > 32) throw std::invalid_argument("k must be in [4, 32]");
    if (tile_overlap < 0 || tile_overlap >= k) {
      throw std::invalid_argument("tile_overlap must be in [0, k)");
    }
    if (tile_length() > 32) {
      throw std::invalid_argument("tile length 2k - overlap must be <= 32");
    }
    if (max_hamming < 1 || max_hamming > 2) {
      throw std::invalid_argument("max_hamming must be 1 or 2");
    }
    if (max_positions_per_tile < 1) {
      throw std::invalid_argument("max_positions_per_tile must be >= 1");
    }
    if (dominance_ratio < 1.0) {
      throw std::invalid_argument("dominance_ratio must be >= 1");
    }
    if (chunk_size == 0) throw std::invalid_argument("chunk_size must be > 0");
    if (prefetch_capacity == 0) {
      throw std::invalid_argument("prefetch_capacity must be > 0");
    }
    if (remote_cache_capacity == 0) {
      throw std::invalid_argument("remote_cache_capacity must be > 0");
    }
  }
};

}  // namespace reptile::core
