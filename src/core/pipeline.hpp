#pragma once
// Sequential Reptile pipeline: the single-process reference implementation.
//
// This is the baseline every distributed configuration is validated against
// (identical corrected output) and the anchor of the per-operation cost
// calibration in src/perfmodel.

#include <cstdint>
#include <vector>

#include "core/corrector.hpp"
#include "core/params.hpp"
#include "core/spectrum.hpp"
#include "seq/read.hpp"

namespace reptile::core {

/// Outcome of a sequential run.
struct SequentialResult {
  std::vector<seq::Read> corrected;  ///< reads in input order, bases fixed
  std::uint64_t reads_changed = 0;
  std::uint64_t substitutions = 0;
  std::uint64_t tiles_untrusted = 0;
  std::uint64_t tiles_fixed = 0;
  std::size_t kmer_entries = 0;   ///< spectrum size after pruning
  std::size_t tile_entries = 0;
  std::size_t spectrum_bytes = 0; ///< spectrum memory after pruning
  LookupStats lookups;            ///< correction-phase lookups
  double construct_seconds = 0;   ///< k-mer construction time
  double correct_seconds = 0;     ///< error correction time
};

/// Runs spectrum construction, pruning and correction over `reads`,
/// streaming through the given source in chunks of params.chunk_size.
SequentialResult run_sequential(seq::ReadSource& source,
                                const CorrectorParams& params);

/// Convenience overload over an in-memory read vector.
SequentialResult run_sequential(const std::vector<seq::Read>& reads,
                                const CorrectorParams& params);

}  // namespace reptile::core
