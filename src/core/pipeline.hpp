#pragma once
// Sequential Reptile pipeline: the single-process reference implementation.
//
// This is the baseline every distributed configuration is validated against
// (identical corrected output) and the anchor of the per-operation cost
// calibration in src/perfmodel.

#include <cstdint>
#include <vector>

#include "core/corrector.hpp"
#include "core/params.hpp"
#include "core/spectrum.hpp"
#include "seq/read.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::core {

/// Outcome of a sequential run: the shared PhaseTimeline core (counters,
/// lookup stats, per-stage wall times) plus the corrected reads and the
/// pruned-spectrum sizes.
struct SequentialResult : stats::PhaseTimeline {
  std::vector<seq::Read> corrected;  ///< reads in input order, bases fixed
  std::size_t kmer_entries = 0;   ///< spectrum size after pruning
  std::size_t tile_entries = 0;
  std::size_t spectrum_bytes = 0; ///< spectrum memory after pruning
};

/// Runs spectrum construction, pruning and correction over `reads`,
/// streaming through the given source in chunks of params.chunk_size.
SequentialResult run_sequential(seq::ReadSource& source,
                                const CorrectorParams& params);

/// Convenience overload over an in-memory read vector.
SequentialResult run_sequential(const std::vector<seq::Read>& reads,
                                const CorrectorParams& params);

}  // namespace reptile::core
