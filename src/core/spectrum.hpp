#pragma once
// The k-mer + tile spectrum: construction and the lookup interface the
// corrector is written against.
//
// SpectrumView is the seam between Reptile's per-read correction logic and
// where the spectrum physically lives: LocalSpectrum answers from in-memory
// tables (the sequential baseline and the fully replicated "allgather both"
// heuristic), while parallel::RemoteSpectrumView (src/parallel) answers via
// the owned-table / reads-table / remote-request chain of the paper.

#include <cstdint>
#include <string_view>
#include <vector>

#include "core/params.hpp"
#include "hash/count_table.hpp"
#include "seq/kmer.hpp"
#include "seq/read.hpp"
#include "seq/tile.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::core {

/// Lookup-side instrumentation; the definition lives in the unified report
/// core (stats/phase_timeline.hpp), re-exported under its historical name.
using LookupStats = stats::LookupStats;

/// Count-lookup interface over the two spectra. A count of 0 means the ID
/// is not in the (pruned) spectrum.
class SpectrumView {
 public:
  virtual ~SpectrumView() = default;

  /// Global count of the k-mer, 0 when absent.
  virtual std::uint32_t kmer_count(seq::kmer_id_t id) = 0;

  /// Global count of the tile, 0 when absent.
  virtual std::uint32_t tile_count(seq::tile_id_t id) = 0;

  /// Lookup counters accumulated so far.
  virtual const LookupStats& stats() const = 0;

  /// Monotone count of lookups that could NOT be resolved and returned a
  /// conservative 0 instead (remote views giving up after timeout retries,
  /// see parallel::RetryPolicy). Local views never degrade. The corrector
  /// snapshots this around every tile decision: a position whose evidence
  /// involved a degraded lookup is skipped, never corrected on a guess.
  virtual std::uint64_t degraded_lookups() const { return 0; }
};

/// Both spectra in local memory, with construction helpers.
class LocalSpectrum final : public SpectrumView {
 public:
  explicit LocalSpectrum(const CorrectorParams& params);

  /// Adds every k-mer and tile of `bases` to the spectra (Step II of the
  /// paper, without the ownership split).
  void add_read(std::string_view bases);

  /// Drops entries below the thresholds (Step III pruning). Returns the
  /// number of entries removed.
  std::size_t prune();

  /// Direct count insertion (checkpoint loading and merges). IDs must
  /// already be canonicalized consistently with this spectrum's params.
  void add_kmer_count(seq::kmer_id_t id, std::uint32_t count) {
    kmers_.increment(id, count);
  }
  void add_tile_count(seq::tile_id_t id, std::uint32_t count) {
    tiles_.increment(id, count);
  }

  std::uint32_t kmer_count(seq::kmer_id_t id) override;
  std::uint32_t tile_count(seq::tile_id_t id) override;
  const LookupStats& stats() const override { return stats_; }

  std::size_t kmer_entries() const noexcept { return kmers_.size(); }
  std::size_t tile_entries() const noexcept { return tiles_.size(); }
  std::size_t memory_bytes() const noexcept {
    return kmers_.memory_bytes() + tiles_.memory_bytes();
  }

  const hash::CountTable<>& kmers() const noexcept { return kmers_; }
  const hash::CountTable<>& tiles() const noexcept { return tiles_; }

  /// Canonicalizes an ID exactly as construction did (identity when the
  /// canonical option is off). Exposed so distributed lookups canonicalize
  /// before computing the owning rank.
  seq::kmer_id_t canon_kmer(seq::kmer_id_t id) const;
  seq::tile_id_t canon_tile(seq::tile_id_t id) const;

 private:
  CorrectorParams params_;
  seq::KmerCodec kmer_codec_;
  seq::TileCodec tile_codec_;
  hash::CountTable<> kmers_;
  hash::CountTable<> tiles_;
  LookupStats stats_;
  // Scratch buffers reused across add_read calls.
  std::vector<seq::kmer_id_t> kmer_scratch_;
  std::vector<seq::tile_id_t> tile_scratch_;
};

/// Extracts the (optionally canonical) k-mer and tile IDs of one read;
/// shared by LocalSpectrum and the distributed builder.
class SpectrumExtractor {
 public:
  explicit SpectrumExtractor(const CorrectorParams& params);

  /// Appends the read's k-mer IDs to `kmers` and tile IDs to `tiles`.
  void extract(std::string_view bases, std::vector<seq::kmer_id_t>& kmers,
               std::vector<seq::tile_id_t>& tiles) const;

  const seq::KmerCodec& kmer_codec() const noexcept { return kmer_codec_; }
  const seq::TileCodec& tile_codec() const noexcept { return tile_codec_; }
  bool canonical() const noexcept { return canonical_; }

  seq::kmer_id_t canon_kmer(seq::kmer_id_t id) const {
    return canonical_ ? kmer_codec_.canonical(id) : id;
  }
  seq::tile_id_t canon_tile(seq::tile_id_t id) const {
    return canonical_ ? tile_codec_.as_kmer_codec().canonical(id) : id;
  }

 private:
  seq::KmerCodec kmer_codec_;
  seq::TileCodec tile_codec_;
  bool canonical_;
};

}  // namespace reptile::core
