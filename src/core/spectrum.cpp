#include "core/spectrum.hpp"

namespace reptile::core {

SpectrumExtractor::SpectrumExtractor(const CorrectorParams& params)
    : kmer_codec_(params.k),
      tile_codec_(params.k, params.tile_overlap),
      canonical_(params.canonical) {}

void SpectrumExtractor::extract(std::string_view bases,
                                std::vector<seq::kmer_id_t>& kmers,
                                std::vector<seq::tile_id_t>& tiles) const {
  const std::size_t kmer_start = kmers.size();
  kmer_codec_.extract(bases, kmers);
  const std::size_t tile_start = tiles.size();
  tile_codec_.extract(bases, tiles);
  if (canonical_) {
    for (std::size_t i = kmer_start; i < kmers.size(); ++i) {
      kmers[i] = kmer_codec_.canonical(kmers[i]);
    }
    const seq::KmerCodec& tc = tile_codec_.as_kmer_codec();
    for (std::size_t i = tile_start; i < tiles.size(); ++i) {
      tiles[i] = tc.canonical(tiles[i]);
    }
  }
}

LocalSpectrum::LocalSpectrum(const CorrectorParams& params)
    : params_(params),
      kmer_codec_(params.k),
      tile_codec_(params.k, params.tile_overlap) {
  params_.validate();
}

void LocalSpectrum::add_read(std::string_view bases) {
  kmer_scratch_.clear();
  tile_scratch_.clear();
  SpectrumExtractor extractor(params_);
  extractor.extract(bases, kmer_scratch_, tile_scratch_);
  for (seq::kmer_id_t id : kmer_scratch_) kmers_.increment(id);
  for (seq::tile_id_t id : tile_scratch_) tiles_.increment(id);
}

std::size_t LocalSpectrum::prune() {
  return kmers_.prune_below(params_.kmer_threshold) +
         tiles_.prune_below(params_.tile_threshold);
}

seq::kmer_id_t LocalSpectrum::canon_kmer(seq::kmer_id_t id) const {
  return params_.canonical ? kmer_codec_.canonical(id) : id;
}

seq::tile_id_t LocalSpectrum::canon_tile(seq::tile_id_t id) const {
  return params_.canonical ? tile_codec_.as_kmer_codec().canonical(id) : id;
}

std::uint32_t LocalSpectrum::kmer_count(seq::kmer_id_t id) {
  ++stats_.kmer_lookups;
  const auto c = kmers_.find(canon_kmer(id));
  if (!c) {
    ++stats_.kmer_misses;
    return 0;
  }
  return *c;
}

std::uint32_t LocalSpectrum::tile_count(seq::tile_id_t id) {
  ++stats_.tile_lookups;
  const auto c = tiles_.find(canon_tile(id));
  if (!c) {
    ++stats_.tile_misses;
    return 0;
  }
  return *c;
}

}  // namespace reptile::core
