#pragma once
// Read-only spectrum with a selectable storage backend.
//
// The paper's Section II-B design contrast: the prior Reptile
// parallelizations (Shah 2012, Jammula 2015) stored the spectra as sorted
// arrays searched by repeated binary search, later improved to a
// cache-aware (B+1)-ary layout; this work stores them in hash tables.
// FrozenSpectrum lets the corrector run against any of the three backends
// so the contrast is testable (identical correction decisions) and
// measurable (bench/microbench).
//
// "Frozen" because the prior art's structures are immutable after
// construction: build a LocalSpectrum (with pruning), then freeze it into
// the backend of interest.

#include <cstdint>

#include "core/spectrum.hpp"
#include "hash/count_table.hpp"
#include "hash/sorted_spectrum.hpp"

namespace reptile::core {

/// Storage layout of a frozen spectrum.
enum class SpectrumBackend {
  kHashTable,   ///< this paper's choice: robin-hood hash tables
  kSortedArray, ///< Shah et al.: sorted lists + binary search
  kCacheAware,  ///< Jammula et al.: (B+1)-ary cache-line blocked layout
};

/// Immutable spectrum view over one of the three layouts.
class FrozenSpectrum final : public SpectrumView {
 public:
  /// Copies the (pruned) contents of `source` into the chosen backend.
  FrozenSpectrum(const LocalSpectrum& source, SpectrumBackend backend);

  std::uint32_t kmer_count(seq::kmer_id_t id) override;
  std::uint32_t tile_count(seq::tile_id_t id) override;
  const LookupStats& stats() const override { return stats_; }

  SpectrumBackend backend() const noexcept { return backend_; }
  std::size_t kmer_entries() const noexcept { return kmer_entries_; }
  std::size_t tile_entries() const noexcept { return tile_entries_; }

  /// Bytes of the backend structures (the prior art's layouts are denser
  /// per entry than an open-addressed table at low load).
  std::size_t memory_bytes() const noexcept;

 private:
  std::uint32_t lookup(std::uint64_t canonical_id, bool is_kmer) const;

  SpectrumBackend backend_;
  // Canonicalization must match the source spectrum's construction.
  const LocalSpectrum* source_for_canon_;
  LookupStats stats_;
  std::size_t kmer_entries_ = 0;
  std::size_t tile_entries_ = 0;

  // Exactly one pair is populated, per backend.
  hash::CountTable<> hash_kmers_;
  hash::CountTable<> hash_tiles_;
  hash::SortedCountArray sorted_kmers_;
  hash::SortedCountArray sorted_tiles_;
  hash::CacheAwareCountArray cache_kmers_;
  hash::CacheAwareCountArray cache_tiles_;
};

}  // namespace reptile::core
