#include "core/corrector.hpp"

#include <algorithm>
#include <cassert>

namespace reptile::core {

TileCorrector::TileCorrector(const CorrectorParams& params)
    : params_(params), tile_codec_(params.k, params.tile_overlap) {
  params_.validate();
}

void TileCorrector::pick_positions(const seq::Read& read, int tile_pos,
                                   std::vector<int>& out) const {
  const int tlen = tile_codec_.tile_len();
  out.clear();
  out.reserve(static_cast<std::size_t>(tlen));
  for (int off = 0; off < tlen; ++off) out.push_back(off);
  std::stable_sort(out.begin(), out.end(), [&](int a, int b) {
    const auto qa = read.quals[static_cast<std::size_t>(tile_pos + a)];
    const auto qb = read.quals[static_cast<std::size_t>(tile_pos + b)];
    if (qa != qb) return qa < qb;
    return a < b;
  });
  if (params_.restrict_to_low_quality) {
    // Original Reptile: only low-quality bases are suspected; drop every
    // position at or above the quality threshold.
    const auto first_high = std::find_if(out.begin(), out.end(), [&](int off) {
      return read.quals[static_cast<std::size_t>(tile_pos + off)] >=
             params_.qual_threshold;
    });
    out.erase(first_high, out.end());
  }
  if (static_cast<int>(out.size()) > params_.max_positions_per_tile) {
    out.resize(static_cast<std::size_t>(params_.max_positions_per_tile));
  }
}

bool TileCorrector::acceptable(seq::tile_id_t tile, SpectrumView& spectrum,
                               std::uint32_t& count) const {
  count = spectrum.tile_count(tile);
  if (count < params_.tile_threshold) return false;
  // Tile passed; require solid constituent k-mers as well (Reptile uses
  // both spectra — this is where the k-mer lookup traffic comes from).
  const seq::kmer_id_t first = tile_codec_.first_kmer(tile);
  if (spectrum.kmer_count(first) < params_.kmer_threshold) return false;
  const seq::kmer_id_t second = tile_codec_.second_kmer(tile);
  return spectrum.kmer_count(second) >= params_.kmer_threshold;
}

int TileCorrector::try_fix_tile(seq::Read& read, int tile_pos,
                                seq::tile_id_t tile, SpectrumView& spectrum,
                                std::uint64_t degraded_before) const {
  std::vector<int> positions;
  pick_positions(read, tile_pos, positions);

  Candidate best;
  std::uint32_t second_best = 0;
  auto consider = [&](const Candidate& c) {
    if (c.count > best.count ||
        (c.count == best.count && c.tile < best.tile)) {
      if (best.count != 0) second_best = std::max(second_best, best.count);
      best = c;
    } else {
      second_best = std::max(second_best, c.count);
    }
  };

  // Hamming distance 1: one substitution at one chosen position.
  for (int off : positions) {
    const seq::base_t current = tile_codec_.base_at(tile, off);
    for (seq::base_t b = 0; b < seq::kAlphabetSize; ++b) {
      if (b == current) continue;
      const seq::tile_id_t cand = tile_codec_.substitute(tile, off, b);
      std::uint32_t count = 0;
      if (acceptable(cand, spectrum, count)) {
        consider({cand, count, off, b, -1, 0});
      }
    }
  }

  // Hamming distance 2 only when no single substitution was acceptable.
  if (best.count == 0 && params_.max_hamming >= 2) {
    for (std::size_t i = 0; i < positions.size(); ++i) {
      for (std::size_t j = i + 1; j < positions.size(); ++j) {
        const int o1 = std::min(positions[i], positions[j]);
        const int o2 = std::max(positions[i], positions[j]);
        const seq::base_t c1 = tile_codec_.base_at(tile, o1);
        const seq::base_t c2 = tile_codec_.base_at(tile, o2);
        for (seq::base_t b1 = 0; b1 < seq::kAlphabetSize; ++b1) {
          if (b1 == c1) continue;
          const seq::tile_id_t partial = tile_codec_.substitute(tile, o1, b1);
          for (seq::base_t b2 = 0; b2 < seq::kAlphabetSize; ++b2) {
            if (b2 == c2) continue;
            const seq::tile_id_t cand = tile_codec_.substitute(partial, o2, b2);
            std::uint32_t count = 0;
            if (acceptable(cand, spectrum, count)) {
              consider({cand, count, o1, b1, o2, b2});
            }
          }
        }
      }
    }
  }

  if (best.count == 0) return 0;
  // Unambiguity: the winner must dominate every other acceptable candidate.
  if (second_best != 0 &&
      static_cast<double>(best.count) <
          params_.dominance_ratio * static_cast<double>(second_best)) {
    return 0;
  }
  // Degradation guard: if any lookup since the tile's gate check gave up
  // and returned a conservative 0 (remote timeout after max retries), the
  // candidate comparison above may have missed evidence. Never correct on
  // possibly-incomplete evidence — skip the tile instead.
  if (spectrum.degraded_lookups() != degraded_before) return 0;

  int applied = 0;
  read.bases[static_cast<std::size_t>(tile_pos + best.off1)] =
      seq::char_from_base(best.base1);
  ++applied;
  if (best.off2 >= 0) {
    read.bases[static_cast<std::size_t>(tile_pos + best.off2)] =
        seq::char_from_base(best.base2);
    ++applied;
  }
  return applied;
}

ReadCorrection TileCorrector::correct(seq::Read& read,
                                      SpectrumView& spectrum) const {
  ReadCorrection result;
  const int tlen = tile_codec_.tile_len();
  if (read.length() < tlen) return result;
  assert(read.quals.size() == read.bases.size());

  const std::vector<int> tile_positions =
      tile_codec_.tile_positions(read.length());
  const seq::KmerCodec& tc = tile_codec_.as_kmer_codec();

  for (int pos : tile_positions) {
    if (result.substitutions >= params_.max_corrections_per_read) break;
    const seq::tile_id_t tile = tc.pack(
        std::string_view(read.bases).substr(static_cast<std::size_t>(pos)));
    // Snapshot the degradation counter BEFORE the gate lookup: a degraded
    // gate can make a trusted tile look untrusted, so the whole decision
    // (gate + candidate evaluation) must be covered by the guard.
    const std::uint64_t degraded_before = spectrum.degraded_lookups();
    if (spectrum.tile_count(tile) >= params_.tile_threshold) continue;
    ++result.tiles_untrusted;
    const int applied = try_fix_tile(read, pos, tile, spectrum, degraded_before);
    if (applied > 0) {
      result.substitutions += applied;
      ++result.tiles_fixed;
    } else if (spectrum.degraded_lookups() != degraded_before) {
      ++result.tiles_degraded;
    }
  }
  return result;
}

}  // namespace reptile::core
