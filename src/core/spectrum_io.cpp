#include "core/spectrum_io.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace reptile::core {

namespace {

constexpr char kMagic[4] = {'R', 'P', 'T', 'L'};
constexpr std::uint32_t kVersion = 1;

void write_bytes(std::ofstream& out, const void* data, std::size_t n) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
}

template <class T>
void write_value(std::ofstream& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  write_bytes(out, &v, sizeof(T));
}

template <class T>
T read_value(std::ifstream& in, const char* what) {
  T v;
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) {
    throw std::runtime_error(std::string("spectrum file truncated at ") +
                             what);
  }
  return v;
}

void write_table(std::ofstream& out, const hash::CountTable<>& table) {
  write_value<std::uint64_t>(out, table.size());
  table.for_each([&out](std::uint64_t id, std::uint32_t count) {
    write_value(out, id);
    write_value(out, count);
  });
}

}  // namespace

void save_spectrum(const std::filesystem::path& path,
                   const LocalSpectrum& spectrum,
                   const CorrectorParams& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("spectrum: cannot open for writing " +
                             path.string());
  }
  write_bytes(out, kMagic, 4);
  write_value(out, kVersion);
  write_value(out, static_cast<std::uint32_t>(params.k));
  write_value(out, static_cast<std::uint32_t>(params.tile_overlap));
  write_value(out, static_cast<std::uint8_t>(params.canonical ? 1 : 0));
  write_value(out, static_cast<std::uint32_t>(params.kmer_threshold));
  write_value(out, static_cast<std::uint32_t>(params.tile_threshold));
  write_table(out, spectrum.kmers());
  write_table(out, spectrum.tiles());
  if (!out) {
    throw std::runtime_error("spectrum: write failed: " + path.string());
  }
}

LocalSpectrum load_spectrum(const std::filesystem::path& path,
                            const CorrectorParams& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("spectrum: cannot open " + path.string());
  }
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0) {
    throw std::runtime_error("spectrum: bad magic in " + path.string());
  }
  const auto version = read_value<std::uint32_t>(in, "version");
  if (version != kVersion) {
    throw std::runtime_error("spectrum: unsupported version " +
                             std::to_string(version));
  }
  const auto k = read_value<std::uint32_t>(in, "k");
  const auto overlap = read_value<std::uint32_t>(in, "tile_overlap");
  const auto canonical = read_value<std::uint8_t>(in, "canonical");
  const auto kmer_thr = read_value<std::uint32_t>(in, "kmer_threshold");
  const auto tile_thr = read_value<std::uint32_t>(in, "tile_threshold");
  if (static_cast<int>(k) != params.k ||
      static_cast<int>(overlap) != params.tile_overlap ||
      (canonical != 0) != params.canonical ||
      kmer_thr != params.kmer_threshold ||
      tile_thr != params.tile_threshold) {
    throw std::invalid_argument(
        "spectrum: file was built with incompatible parameters (k=" +
        std::to_string(k) + ", overlap=" + std::to_string(overlap) + ")");
  }

  LocalSpectrum spectrum(params);
  const auto n_kmers = read_value<std::uint64_t>(in, "kmer count");
  for (std::uint64_t i = 0; i < n_kmers; ++i) {
    const auto id = read_value<std::uint64_t>(in, "kmer id");
    const auto count = read_value<std::uint32_t>(in, "kmer value");
    spectrum.add_kmer_count(id, count);
  }
  const auto n_tiles = read_value<std::uint64_t>(in, "tile count");
  for (std::uint64_t i = 0; i < n_tiles; ++i) {
    const auto id = read_value<std::uint64_t>(in, "tile id");
    const auto count = read_value<std::uint32_t>(in, "tile value");
    spectrum.add_tile_count(id, count);
  }
  return spectrum;
}

}  // namespace reptile::core
