#include "core/pipeline.hpp"

#include "stats/stopwatch.hpp"

namespace reptile::core {

SequentialResult run_sequential(seq::ReadSource& source,
                                const CorrectorParams& params) {
  params.validate();
  SequentialResult result;
  LocalSpectrum spectrum(params);

  stats::Stopwatch clock;
  seq::ReadBatch batch;
  source.reset();
  while (source.next_chunk(params.chunk_size, batch)) {
    for (const seq::Read& r : batch) spectrum.add_read(r.bases);
  }
  spectrum.prune();
  result.construct_seconds = clock.seconds();
  result.kmer_entries = spectrum.kmer_entries();
  result.tile_entries = spectrum.tile_entries();
  result.spectrum_bytes = spectrum.memory_bytes();

  // Correction phase: stream the reads again (the paper re-reads the file
  // rather than keeping reads resident) and correct each in place.
  clock.restart();
  const LookupStats before_correction = spectrum.stats();
  TileCorrector corrector(params);
  result.corrected.reserve(source.size());
  source.reset();
  while (source.next_chunk(params.chunk_size, batch)) {
    for (seq::Read& r : batch) {
      const ReadCorrection rc = corrector.correct(r, spectrum);
      if (rc.changed()) ++result.reads_changed;
      result.substitutions += static_cast<std::uint64_t>(rc.substitutions);
      result.tiles_untrusted += static_cast<std::uint64_t>(rc.tiles_untrusted);
      result.tiles_fixed += static_cast<std::uint64_t>(rc.tiles_fixed);
      result.corrected.push_back(std::move(r));
    }
  }
  result.correct_seconds = clock.seconds();

  result.lookups = spectrum.stats();
  result.lookups.kmer_lookups -= before_correction.kmer_lookups;
  result.lookups.kmer_misses -= before_correction.kmer_misses;
  result.lookups.tile_lookups -= before_correction.tile_lookups;
  result.lookups.tile_misses -= before_correction.tile_misses;
  return result;
}

SequentialResult run_sequential(const std::vector<seq::Read>& reads,
                                const CorrectorParams& params) {
  seq::VectorReadSource source(reads);
  return run_sequential(source, params);
}

}  // namespace reptile::core
