#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <utility>

namespace reptile::obs {

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::Bool) {
    throw std::logic_error("json: not a bool");
  }
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::Number) {
    throw std::logic_error("json: not a number");
  }
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::String) {
    throw std::logic_error("json: not a string");
  }
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::Array) {
    throw std::logic_error("json: not an array");
  }
  return array_;
}

std::vector<JsonValue>& JsonValue::as_array() {
  if (kind_ != Kind::Array) {
    throw std::logic_error("json: not an array");
  }
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object()
    const {
  if (kind_ != Kind::Object) {
    throw std::logic_error("json: not an object");
  }
  return object_;
}

std::vector<std::pair<std::string, JsonValue>>& JsonValue::as_object() {
  if (kind_ != Kind::Object) {
    throw std::logic_error("json: not an object");
  }
  return object_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) {
    return nullptr;
  }
  for (const auto& [k, v] : object_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  if (kind_ == Kind::Null) {
    kind_ = Kind::Array;
  }
  as_array().push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (kind_ == Kind::Null) {
    kind_ = Kind::Object;
  }
  for (auto& [k, existing] : as_object()) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
}

namespace {

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void dump_number(std::string& out, double d) {
  // Integers (the common case: pids, tids, counters) print without a
  // fraction so round-trips stay byte-stable.
  const auto as_int = static_cast<long long>(d);
  char buf[40];
  if (static_cast<double>(as_int) == d) {
    std::snprintf(buf, sizeof(buf), "%lld", as_int);
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  out += buf;
}

}  // namespace

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number:
      dump_number(out, number_);
      break;
    case Kind::String:
      dump_string(out, string_);
      break;
    case Kind::Array: {
      out.push_back('[');
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        v.dump_to(out);
      }
      out.push_back(']');
      break;
    }
    case Kind::Object: {
      out.push_back('{');
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) {
          out.push_back(',');
        }
        first = false;
        dump_string(out, k);
        out.push_back(':');
        v.dump_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      throw JsonError("trailing content", pos_);
    }
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError(what, pos_);
  }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw JsonError("unexpected end of input", pos_);
    }
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) {
          fail("bad literal");
        }
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) {
          fail("bad literal");
        }
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) {
          fail("bad literal");
        }
        return JsonValue::null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj.as_object().emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') {
        return obj;
      }
      if (c != ',') {
        fail("expected ',' or '}'");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') {
        return arr;
      }
      if (c != ',') {
        fail("expected ',' or ']'");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          fail("raw control character in string");
        }
        out.push_back(c);
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by the tracer; decode them as-is to keep it simple).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_) {
      throw JsonError("bad number", start);
    }
    return JsonValue::number(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace reptile::obs
