#pragma once
// reptile-obs span tracing: per-thread ring buffers of timeline events,
// serialized to Chrome trace-event / Perfetto-compatible JSON.
//
// Two modes, one mechanism:
//
//   * Flight recorder (ALWAYS on). Every thread keeps the most recent
//     `flight_capacity` events in a small ring. Recording is one branch, a
//     struct store and a release increment — no locks, no allocation — so
//     the hot paths (scalar lookup RTTs, chunk spans) stay instrumented in
//     production runs. When rtm-check diagnoses a deadlock or the mailbox
//     audit fails, each involved thread's tail is attached to the report, so
//     a hang comes with a timeline, not just a wait-for chain.
//
//   * Full tracing (per run, `trace_enabled`). The rings grow to
//     `ring_capacity` events and the whole timeline is serialized at run end
//     to one JSON shard per rank (`<prefix>.rankN.json`), loadable directly
//     in Perfetto / chrome://tracing; tools/trace_merge combines shards.
//
// Event vocabulary (cat / name):
//   stage   / stage:<name>       one pipeline stage of one rank ('X')
//   chunk   / chunk:build|correct one chunk through a stage ('X')
//   lookup  / lookup_rtt         scalar remote lookup round trip ('X')
//   lookup  / batch_prefetch     one vectored prefetch round trip ('X')
//   service / serve:<kind>       one request handled by a comm thread ('X')
//   mailbox / mailbox:wait       a blocking receive that actually blocked
//   chaos   / chaos:<fault>      fault-injection decision ('i', instant)
//   ledger  / ledger:<account>   byte-account balance after a charge, plus
//                                ledger:rss from the sampler ('C', counter)
//   flow    / lookup|batch       's' at the requester's send, 'f' at the
//                                owning rank's service thread — the same
//                                id on both sides draws the cross-rank
//                                arrow in Perfetto.
//
// Threading model: each thread owns its ring (single writer); the head
// index is a release-store atomic. Cross-thread reads happen only (a) after
// the writing threads joined (shard serialization) or (b) for threads that
// are provably blocked (flight-recorder tails of deadlocked ranks), whose
// last writes happen-before the checker observed their wait — both give the
// reader a happens-before edge, keeping the tracer TSan-clean without
// locking the record path.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace reptile::obs {

/// Per-run tracing configuration (carried by parallel::DistConfig and the
/// trace_* / metrics_* config-file keys).
struct TraceConfig {
  /// Full tracing: big rings + JSON shard serialization at run end.
  bool enabled = false;
  /// Publish the metrics registry (obs/metrics.hpp) for this run: latency
  /// histograms recorded live, counter mirror at harvest, report columns.
  bool metrics = false;
  /// Arm the resource ledger (obs/ledger.hpp) for this run: byte accounts,
  /// high-water marks, the RSS sampler thread, and — when `enabled` is also
  /// set — 'C' counter events in the trace shards.
  bool ledger = false;
  /// Ring capacity per thread while full tracing is on (events).
  std::size_t ring_capacity = 1 << 18;
  /// Ring capacity per thread while only the flight recorder runs.
  std::size_t flight_capacity = 256;
  /// Shard path prefix; run drivers write `<path>.rankN.json` at run end
  /// when tracing is enabled and this is non-empty.
  std::string path;
};

/// One recorded event. Name/category/arg-name strings must outlive the
/// tracer (string literals, or obs::intern() for dynamic names).
struct TraceEvent {
  std::int64_t ts_ns = 0;   ///< start time, tracer clock (steady)
  std::int64_t dur_ns = 0;  ///< 'X' events only
  const char* name = "";
  const char* cat = "";
  char phase = 'X';          ///< 'X' complete, 'i' instant, 's'/'f' flow
  std::int32_t rank = -1;    ///< owning rank; -1 = driver/runtime threads
  std::uint64_t flow = 0;    ///< flow binding id ('s'/'f' events)
  const char* arg_name = nullptr;
  std::uint64_t arg = 0;
  const char* arg2_name = nullptr;
  std::uint64_t arg2 = 0;
};

/// Stable globally-unique flow id for one (re)transmitted lookup: both the
/// requester ('s') and the serving comm thread ('f') can derive it from the
/// wire fields alone (requester rank, reply tag, protocol seq).
std::uint64_t flow_id(int requester_rank, int reply_tag,
                      std::uint64_t seq) noexcept;

/// Interns a dynamic string, returning a pointer valid for the process
/// lifetime (for names not known at compile time, e.g. stage names).
const char* intern(std::string_view s);

class Tracer {
 public:
  /// The process-wide tracer. Runs are sequential within a process; each
  /// run (re)configures it.
  static Tracer& instance();

  /// Applies `config` and drops every previously recorded event (a run
  /// owns the rings). Threads re-register lazily on their next event.
  void configure(const TraceConfig& config);

  TraceConfig config() const;  ///< by value: configure() may replace it

  /// Full tracing active? (The flight recorder needs no check: recording
  /// is unconditional, only the ring size differs.)
  bool enabled() const noexcept {
    // mo: relaxed — configure() happens-before any instrumented thread
    // exists (between-runs contract).
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds since the tracer epoch (steady clock; reset by
  /// configure()).
  std::int64_t now_ns() const noexcept;

  /// Labels the calling thread for trace metadata and flight-recorder
  /// dumps ("rank3/worker1"); `rank` attributes its future events.
  void set_thread(int rank, const char* role);

  /// Rank the calling thread registered with (-1 when unregistered).
  /// Non-const: lazily registers the calling thread's buffer.
  int current_rank();

  // --- recording (called on the hot paths) -------------------------------

  /// 'X' complete event: [start_ns, start_ns + dur).
  void complete(const char* cat, const char* name, std::int64_t start_ns,
                const char* arg_name = nullptr, std::uint64_t arg = 0,
                const char* arg2_name = nullptr, std::uint64_t arg2 = 0);

  /// 'i' instant event. `rank_override` != INT32_MIN attributes the event
  /// to that rank instead of the calling thread's.
  void instant(const char* cat, const char* name,
               std::int32_t rank_override = kThreadRank,
               const char* arg_name = nullptr, std::uint64_t arg = 0);

  /// Flow binding: 's' on the sending side, 'f' (bind-enclosing) on the
  /// receiving side; the same `id` on both sides links them.
  void flow_start(const char* cat, const char* name, std::uint64_t id);
  void flow_end(const char* cat, const char* name, std::uint64_t id);

  /// 'C' counter event: Perfetto draws a value-over-time track per
  /// (thread, name). `value` is reported under the arg name "bytes" (the
  /// ledger is the only producer; see obs/ledger.hpp).
  void counter(const char* cat, const char* name, std::uint64_t value);

  // --- serialization ------------------------------------------------------

  /// Chrome trace JSON of every recorded event with rank == `rank`
  /// (`rank == kAllRanks` keeps everything; rank-(-1) runtime/driver events
  /// ride along in rank 0's shard so no event is ever lost). Call only
  /// when the writing threads have joined.
  std::string to_json(int rank = kAllRanks) const;

  /// Writes one shard per rank: `<prefix>.rankN.json`. Returns the shard
  /// paths. Call only when the writing threads have joined.
  std::vector<std::string> write_shards(const std::string& prefix,
                                        int nranks) const;

  /// Human-readable tail of the flight recorder: up to `max_events` most
  /// recent events per thread, newest last. With a non-empty `ranks`
  /// filter only threads of those ranks are dumped — the rtm-check
  /// deadlock path uses this, because only the frozen ranks' threads are
  /// provably quiescent while the rest of the run is still hot.
  std::string tail_text(std::size_t max_events,
                        std::span<const int> ranks = {}) const;

  /// Total events currently held across all rings (diagnostics/tests).
  std::uint64_t events_recorded() const;

  static constexpr std::int32_t kThreadRank =
      std::numeric_limits<std::int32_t>::min();
  static constexpr int kAllRanks = -2;

 private:
  struct ThreadBuf {
    explicit ThreadBuf(std::size_t capacity) : ring(capacity) {}
    std::vector<TraceEvent> ring;
    std::atomic<std::uint64_t> head{0};  ///< total events ever pushed
    std::int32_t rank = -1;   ///< guarded by Tracer::mutex_
    std::string label;        ///< guarded by Tracer::mutex_
    int tid = 0;
  };

  Tracer();

  ThreadBuf& local_buf();
  void record(const TraceEvent& event);
  /// Copies the tail (oldest first) of one ring; caller must hold a
  /// happens-before edge with the writer (joined or provably blocked).
  static std::vector<TraceEvent> snapshot(const ThreadBuf& buf);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mutex_;  ///< registry, labels, config — not the rings
  TraceConfig config_;
  std::vector<std::unique_ptr<ThreadBuf>> buffers_;

  friend class SpanScope;
};

/// RAII span: times its scope and emits one 'X' event on destruction.
class SpanScope {
 public:
  SpanScope(const char* cat, const char* name)
      : cat_(cat), name_(name), start_(Tracer::instance().now_ns()) {}

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attaches up to two integer args reported with the event.
  void arg(const char* arg_name, std::uint64_t value) noexcept {
    if (arg_name_ == nullptr) {
      arg_name_ = arg_name;
      arg_ = value;
    } else {
      arg2_name_ = arg_name;
      arg2_ = value;
    }
  }

  ~SpanScope() {
    Tracer::instance().complete(cat_, name_, start_, arg_name_, arg_,
                                arg2_name_, arg2_);
  }

 private:
  const char* cat_;
  const char* name_;
  std::int64_t start_;
  const char* arg_name_ = nullptr;
  std::uint64_t arg_ = 0;
  const char* arg2_name_ = nullptr;
  std::uint64_t arg2_ = 0;
};

}  // namespace reptile::obs
