#include "obs/ledger.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace reptile::obs {

namespace {

/// Counter-event names, interned for the process lifetime (TraceEvent name
/// pointers must outlive the rings). Index = LedgerAccount.
constexpr const char* kAccountNames[kLedgerAccounts] = {
    "count_table",  "sorted_spectrum", "owner_filters", "payload_arena",
    "mailbox_rings", "remote_cache",   "read_buffers",  "admission_queue",
};

constexpr const char* kCounterNames[kLedgerAccounts] = {
    "ledger:count_table",   "ledger:sorted_spectrum",
    "ledger:owner_filters", "ledger:payload_arena",
    "ledger:mailbox_rings", "ledger:remote_cache",
    "ledger:read_buffers",  "ledger:admission_queue",
};

void raise_max(std::atomic<std::uint64_t>& max, std::uint64_t value) {
  // mo: relaxed — the hwm is a statistic; no payload is published through
  // it, and the reader (snapshot after quiesce) holds a stronger edge.
  std::uint64_t prev = max.load(std::memory_order_relaxed);
  while (prev < value &&
         // mo: relaxed CAS — hwm maintenance, same statistics argument.
         !max.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

/// Subtracts min(bytes, balance) — a balanced charge never underflows, but
/// a wrapped balance would poison every later peak, so clamp defensively.
std::uint64_t saturating_sub(std::atomic<std::uint64_t>& balance,
                             std::uint64_t bytes) {
  // mo: relaxed — statistics, see raise_max.
  std::uint64_t prev = balance.load(std::memory_order_relaxed);
  std::uint64_t take;
  do {
    take = bytes < prev ? bytes : prev;
    // mo: relaxed CAS — statistics, see raise_max.
  } while (!balance.compare_exchange_weak(prev, prev - take,
                                          std::memory_order_relaxed));
  return prev - take;
}

}  // namespace

const char* ledger_account_name(LedgerAccount account) noexcept {
  return kAccountNames[static_cast<std::size_t>(account)];
}

ResourceLedger& ResourceLedger::global() {
  static auto* ledger = new ResourceLedger;  // leaky, mirrors Tracer
  return *ledger;
}

void ResourceLedger::configure(bool enabled) {
  for (Account& account : accounts_) {
    // mo: relaxed — configure() runs between runs, with no charger alive.
    account.bytes.store(0, std::memory_order_relaxed);
    account.peak.store(0, std::memory_order_relaxed);  // mo: same as above
  }
  total_.store(0, std::memory_order_relaxed);       // mo: same as above
  total_peak_.store(0, std::memory_order_relaxed);  // mo: same as above
  rss_peak_.store(0, std::memory_order_relaxed);    // mo: same as above
  enabled_.store(enabled, std::memory_order_relaxed);  // mo: same as above
  // mo: relaxed — charges observe the new generation on their next apply;
  // the between-runs contract provides the ordering.
  generation_.fetch_add(1, std::memory_order_relaxed);
}

void ResourceLedger::add(LedgerAccount account, std::uint64_t bytes) {
  if (!enabled() || bytes == 0) {
    return;
  }
  Account& a = accounts_[static_cast<std::size_t>(account)];
  // mo: relaxed — statistics, see raise_max.
  const std::uint64_t after =
      a.bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_max(a.peak, after);
  const std::uint64_t total_after =
      // mo: relaxed — statistics, see raise_max.
      total_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_max(total_peak_, total_after);
  emit_counter(account, after);
}

void ResourceLedger::sub(LedgerAccount account, std::uint64_t bytes) {
  if (!enabled() || bytes == 0) {
    return;
  }
  Account& a = accounts_[static_cast<std::size_t>(account)];
  const std::uint64_t after = saturating_sub(a.bytes, bytes);
  saturating_sub(total_, bytes);
  emit_counter(account, after);
}

void ResourceLedger::emit_counter(LedgerAccount account, std::uint64_t value) {
  // Counters ride the full-tracing rings only: the always-on flight
  // recorder is tiny and must keep its span tail for deadlock reports.
  Tracer& tracer = Tracer::instance();
  if (tracer.enabled()) {
    tracer.counter("ledger", kCounterNames[static_cast<std::size_t>(account)],
                   value);
  }
}

std::uint64_t ResourceLedger::bytes(LedgerAccount account) const noexcept {
  // mo: relaxed — statistics read.
  return accounts_[static_cast<std::size_t>(account)].bytes.load(
      std::memory_order_relaxed);
}

std::uint64_t ResourceLedger::peak_bytes(LedgerAccount account) const noexcept {
  // mo: relaxed — statistics read.
  return accounts_[static_cast<std::size_t>(account)].peak.load(
      std::memory_order_relaxed);
}

std::uint64_t ResourceLedger::total_bytes() const noexcept {
  // mo: relaxed — statistics read.
  return total_.load(std::memory_order_relaxed);
}

std::uint64_t ResourceLedger::total_peak_bytes() const noexcept {
  // mo: relaxed — statistics read.
  return total_peak_.load(std::memory_order_relaxed);
}

void ResourceLedger::note_rss(std::uint64_t bytes) noexcept {
  raise_max(rss_peak_, bytes);
}

std::uint64_t ResourceLedger::rss_peak_bytes() const noexcept {
  // mo: relaxed — statistics read.
  return rss_peak_.load(std::memory_order_relaxed);
}

LedgerSnapshot ResourceLedger::snapshot() const {
  LedgerSnapshot snap;
  for (std::size_t i = 0; i < kLedgerAccounts; ++i) {
    snap.accounts[i].bytes = bytes(static_cast<LedgerAccount>(i));
    snap.accounts[i].peak_bytes = peak_bytes(static_cast<LedgerAccount>(i));
  }
  snap.total_bytes = total_bytes();
  snap.total_peak_bytes = total_peak_bytes();
  snap.rss_peak_bytes = rss_peak_bytes();
  return snap;
}

std::uint64_t read_rss_bytes() noexcept {
  // /proc/self/statm: "size resident shared text lib data dt", in pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int fields = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (fields != 2) {
    return 0;
  }
  const long page = ::sysconf(_SC_PAGESIZE);
  return resident * static_cast<std::uint64_t>(page > 0 ? page : 4096);
}

void RssSampler::run(const std::function<void()>& idle_poll) {
  ResourceLedger& ledger = ResourceLedger::global();
  Tracer& tracer = Tracer::instance();
  const auto sample = [&] {
    const std::uint64_t rss = read_rss_bytes();
    if (rss != 0) {
      ledger.note_rss(rss);
      if (tracer.enabled()) {
        tracer.counter("ledger", "ledger:rss", rss);
      }
    }
    // mo: relaxed — test-only progress counter.
    samples_.fetch_add(1, std::memory_order_relaxed);
  };
  std::unique_lock lock(mutex_);
  while (!stop_) {
    lock.unlock();
    sample();
    if (idle_poll) {
      idle_poll();  // deadlock-watchdog registration: this thread is idle
    }
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(period_ms_),
                 [this] { return stop_; });
  }
  lock.unlock();
  sample();  // final sample: short runs still record a peak
}

void RssSampler::stop() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
}

void publish_ledger_metrics(const LedgerSnapshot& snapshot) {
  Registry& registry = Registry::global();
  if (!registry.enabled()) {
    return;
  }
  for (std::size_t i = 0; i < kLedgerAccounts; ++i) {
    const std::string label =
        std::string("account=\"") + kAccountNames[i] + "\"";
    if (Gauge* g = registry.gauge_labelled("reptile_ledger_bytes", label)) {
      g->set(static_cast<double>(snapshot.accounts[i].bytes));
    }
    if (Gauge* g =
            registry.gauge_labelled("reptile_ledger_peak_bytes", label)) {
      g->set(static_cast<double>(snapshot.accounts[i].peak_bytes));
    }
  }
  if (Gauge* g = registry.gauge("reptile_ledger_total_peak_bytes")) {
    g->set(static_cast<double>(snapshot.total_peak_bytes));
  }
  if (Gauge* g = registry.gauge("reptile_rss_peak_bytes")) {
    g->set(static_cast<double>(snapshot.rss_peak_bytes));
  }
}

}  // namespace reptile::obs
