#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace reptile::obs {

namespace {

/// splitmix64 finalizer: cheap, well-distributed, and identical on both
/// sides of the wire.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

void append_escaped(std::string& out, const char* s) {
  out.push_back('"');
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

/// Appends `ns` nanoseconds as a microsecond decimal ("123.456") — the
/// trace-event format's native unit.
void append_us(std::string& out, std::int64_t ns) {
  const std::int64_t clamped = std::max<std::int64_t>(ns, 0);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(clamped / 1000),
                static_cast<long long>(clamped % 1000));
  out += buf;
}

void append_args(std::string& out, const TraceEvent& e) {
  if (e.arg_name == nullptr && e.arg2_name == nullptr) {
    return;
  }
  out += ",\"args\":{";
  bool first = true;
  if (e.arg_name != nullptr) {
    append_escaped(out, e.arg_name);
    out += ':';
    out += std::to_string(e.arg);
    first = false;
  }
  if (e.arg2_name != nullptr) {
    if (!first) {
      out += ',';
    }
    append_escaped(out, e.arg2_name);
    out += ':';
    out += std::to_string(e.arg2);
  }
  out += '}';
}

void append_metadata(std::string& out, const char* what, int pid, int tid,
                     const std::string& value) {
  out += "{\"ph\":\"M\",\"name\":\"";
  out += what;
  out += "\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"args\":{\"name\":";
  append_escaped(out, value.c_str());
  out += "}}";
}

}  // namespace

std::uint64_t flow_id(int requester_rank, int reply_tag,
                      std::uint64_t seq) noexcept {
  std::uint64_t x =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(requester_rank))
       << 32) ^
      static_cast<std::uint32_t>(reply_tag);
  const std::uint64_t id = mix64(x ^ mix64(seq + 0x9e3779b97f4a7c15ull));
  return id == 0 ? 1 : id;  // 0 is "no flow" in TraceEvent
}

const char* intern(std::string_view s) {
  // Leaky singletons: interned names may be referenced from TLS ring
  // buffers that outlive static destruction order.
  static auto* mutex = new std::mutex;
  static auto* pool = new std::unordered_set<std::string>;
  std::lock_guard<std::mutex> lock(*mutex);
  return pool->emplace(s).first->c_str();
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::instance() {
  static auto* tracer = new Tracer;  // leaky: TLS may outlive statics
  return *tracer;
}

void Tracer::configure(const TraceConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  if (config_.ring_capacity < 2) {
    config_.ring_capacity = 2;
  }
  if (config_.flight_capacity < 2) {
    config_.flight_capacity = 2;
  }
  // Dropping the buffers while an instrumented thread is recording would
  // be a use-after-free; configure() is only legal between runs, when the
  // caller is the sole instrumented thread (run drivers uphold this).
  buffers_.clear();
  // mo: relaxed — between-runs contract above; no instrumented thread
  // races this store.
  enabled_.store(config_.enabled, std::memory_order_relaxed);
  epoch_ = std::chrono::steady_clock::now();
  // Invalidate every thread's cached buffer pointer (threads that persist
  // across runs, e.g. the driver itself, re-register lazily).
  // mo: release — pairs with the acquire in local_buf() so a thread that
  // sees the new generation also sees the cleared buffer list.
  generation_.fetch_add(1, std::memory_order_release);
}

TraceConfig Tracer::config() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

std::int64_t Tracer::now_ns() const noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Tracer::ThreadBuf& Tracer::local_buf() {
  thread_local ThreadBuf* cached = nullptr;
  thread_local std::uint64_t cached_generation =
      std::numeric_limits<std::uint64_t>::max();
  // mo: acquire — pairs with configure()'s release bump; a stale
  // generation means the cached pointer may dangle, so re-register.
  if (cached == nullptr ||
      cached_generation != generation_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(mutex_);
    // mo: relaxed — read under mutex_, which configure() also holds.
    const std::size_t capacity = enabled_.load(std::memory_order_relaxed)
                                     ? config_.ring_capacity
                                     : config_.flight_capacity;
    buffers_.push_back(std::make_unique<ThreadBuf>(capacity));
    cached = buffers_.back().get();
    cached->tid = static_cast<int>(buffers_.size());
    // mo: relaxed — same mutex_ critical section as the bump's publisher.
    cached_generation = generation_.load(std::memory_order_relaxed);
  }
  return *cached;
}

void Tracer::set_thread(int rank, const char* role) {
  ThreadBuf& buf = local_buf();
  std::lock_guard<std::mutex> lock(mutex_);
  buf.rank = rank;
  buf.label = rank >= 0 ? "rank" + std::to_string(rank) : "runtime";
  if (role != nullptr && *role != '\0') {
    buf.label += '/';
    buf.label += role;
  }
}

int Tracer::current_rank() { return local_buf().rank; }

void Tracer::record(const TraceEvent& event) {
  ThreadBuf& buf = local_buf();
  // mo: relaxed — single writer: head is only advanced by this thread.
  const std::uint64_t head = buf.head.load(std::memory_order_relaxed);
  TraceEvent& slot = buf.ring[static_cast<std::size_t>(head % buf.ring.size())];
  slot = event;
  if (slot.rank == kThreadRank) {
    slot.rank = buf.rank;
  }
  // mo: release — publishes the slot write; snapshot()'s acquire load of
  // head makes the event visible before it is read.
  buf.head.store(head + 1, std::memory_order_release);
}

void Tracer::complete(const char* cat, const char* name, std::int64_t start_ns,
                      const char* arg_name, std::uint64_t arg,
                      const char* arg2_name, std::uint64_t arg2) {
  TraceEvent e;
  e.ts_ns = start_ns;
  e.dur_ns = std::max<std::int64_t>(now_ns() - start_ns, 0);
  e.name = name;
  e.cat = cat;
  e.phase = 'X';
  e.rank = kThreadRank;
  e.arg_name = arg_name;
  e.arg = arg;
  e.arg2_name = arg2_name;
  e.arg2 = arg2;
  record(e);
}

void Tracer::instant(const char* cat, const char* name,
                     std::int32_t rank_override, const char* arg_name,
                     std::uint64_t arg) {
  TraceEvent e;
  e.ts_ns = now_ns();
  e.name = name;
  e.cat = cat;
  e.phase = 'i';
  e.rank = rank_override;
  e.arg_name = arg_name;
  e.arg = arg;
  record(e);
}

void Tracer::flow_start(const char* cat, const char* name, std::uint64_t id) {
  TraceEvent e;
  e.ts_ns = now_ns();
  e.name = name;
  e.cat = cat;
  e.phase = 's';
  e.rank = kThreadRank;
  e.flow = id;
  record(e);
}

void Tracer::flow_end(const char* cat, const char* name, std::uint64_t id) {
  TraceEvent e;
  e.ts_ns = now_ns();
  e.name = name;
  e.cat = cat;
  e.phase = 'f';
  e.rank = kThreadRank;
  e.flow = id;
  record(e);
}

void Tracer::counter(const char* cat, const char* name, std::uint64_t value) {
  TraceEvent e;
  e.ts_ns = now_ns();
  e.name = name;
  e.cat = cat;
  e.phase = 'C';
  e.rank = kThreadRank;
  e.arg_name = "bytes";
  e.arg = value;
  record(e);
}

std::vector<TraceEvent> Tracer::snapshot(const ThreadBuf& buf) {
  // mo: acquire — pairs with record()'s release store; events below head
  // are fully written.
  const std::uint64_t head = buf.head.load(std::memory_order_acquire);
  const auto capacity = static_cast<std::uint64_t>(buf.ring.size());
  const std::uint64_t n = std::min(head, capacity);
  std::vector<TraceEvent> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = head - n; i < head; ++i) {
    out.push_back(buf.ring[static_cast<std::size_t>(i % capacity)]);
  }
  return out;
}

std::string Tracer::to_json(int rank) const {
  struct Source {
    const ThreadBuf* buf;
    std::string label;
    int tid;
  };
  std::vector<Source> sources;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    sources.reserve(buffers_.size());
    for (const auto& buf : buffers_) {
      sources.push_back({buf.get(),
                         buf->label.empty() ? "thread" + std::to_string(buf->tid)
                                            : buf->label,
                         buf->tid});
    }
  }

  struct Row {
    TraceEvent e;
    int pid;
    int tid;
  };
  std::vector<Row> rows;
  std::map<std::pair<int, int>, std::string> thread_names;
  for (const Source& src : sources) {
    for (const TraceEvent& e : snapshot(*src.buf)) {
      // Runtime threads (rank < 0: driver, chaos delivery, watchdog) ride
      // along in rank 0's shard so no event is ever dropped.
      const int pid = e.rank >= 0 ? e.rank : 0;
      if (rank != kAllRanks && pid != rank) {
        continue;
      }
      rows.push_back({e, pid, src.tid});
      auto& name = thread_names[{pid, src.tid}];
      if (name.empty()) {
        name = src.label;
      }
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.e.ts_ns < b.e.ts_ns; });

  std::string out;
  out.reserve(rows.size() * 96 + 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  std::unordered_set<int> pids;
  for (const auto& [key, label] : thread_names) {
    if (pids.insert(key.first).second) {
      if (!first) {
        out += ',';
      }
      first = false;
      append_metadata(out, "process_name", key.first, 0,
                      "rank" + std::to_string(key.first));
    }
    out += ',';
    append_metadata(out, "thread_name", key.first, key.second, label);
  }
  for (const Row& row : rows) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"ph\":\"";
    out.push_back(row.e.phase);
    out += "\",\"pid\":";
    out += std::to_string(row.pid);
    out += ",\"tid\":";
    out += std::to_string(row.tid);
    out += ",\"ts\":";
    append_us(out, row.e.ts_ns);
    if (row.e.phase == 'X') {
      out += ",\"dur\":";
      append_us(out, row.e.dur_ns);
    }
    out += ",\"cat\":";
    append_escaped(out, row.e.cat);
    out += ",\"name\":";
    append_escaped(out, row.e.name);
    if (row.e.phase == 's' || row.e.phase == 'f') {
      char idbuf[32];
      std::snprintf(idbuf, sizeof(idbuf), "\"0x%llx\"",
                    static_cast<unsigned long long>(row.e.flow));
      out += ",\"id\":";
      out += idbuf;
      if (row.e.phase == 'f') {
        out += ",\"bp\":\"e\"";  // bind to the enclosing service span
      }
    }
    if (row.e.phase == 'i') {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    append_args(out, row.e);
    out += '}';
  }
  out += "]}";
  return out;
}

std::vector<std::string> Tracer::write_shards(const std::string& prefix,
                                              int nranks) const {
  std::vector<std::string> paths;
  paths.reserve(static_cast<std::size_t>(std::max(nranks, 0)));
  for (int rank = 0; rank < nranks; ++rank) {
    std::string path = prefix + ".rank" + std::to_string(rank) + ".json";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw std::runtime_error("obs: cannot write trace shard " + path);
    }
    out << to_json(rank);
    paths.push_back(std::move(path));
  }
  return paths;
}

std::string Tracer::tail_text(std::size_t max_events,
                              std::span<const int> ranks) const {
  struct Source {
    const ThreadBuf* buf;
    std::string label;
    int rank;
  };
  std::vector<Source> sources;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& buf : buffers_) {
      if (!ranks.empty() &&
          std::find(ranks.begin(), ranks.end(), buf->rank) == ranks.end()) {
        continue;
      }
      sources.push_back({buf.get(),
                         buf->label.empty() ? "thread" + std::to_string(buf->tid)
                                            : buf->label,
                         buf->rank});
    }
  }

  std::string out;
  for (const Source& src : sources) {
    std::vector<TraceEvent> events = snapshot(*src.buf);
    if (events.size() > max_events) {
      events.erase(events.begin(),
                   events.end() - static_cast<std::ptrdiff_t>(max_events));
    }
    if (events.empty()) {
      continue;
    }
    out += "  [" + src.label + "] flight recorder tail (" +
           std::to_string(events.size()) + " events, newest last):\n";
    for (const TraceEvent& e : events) {
      char line[160];
      std::snprintf(line, sizeof(line), "    +%.3fms %c %s %s",
                    static_cast<double>(e.ts_ns) * 1e-6, e.phase, e.cat,
                    e.name);
      out += line;
      if (e.phase == 'X') {
        std::snprintf(line, sizeof(line), " dur=%.3fms",
                      static_cast<double>(e.dur_ns) * 1e-6);
        out += line;
      }
      if (e.flow != 0) {
        std::snprintf(line, sizeof(line), " flow=0x%llx",
                      static_cast<unsigned long long>(e.flow));
        out += line;
      }
      if (e.arg_name != nullptr) {
        std::snprintf(line, sizeof(line), " %s=%llu", e.arg_name,
                      static_cast<unsigned long long>(e.arg));
        out += line;
      }
      if (e.arg2_name != nullptr) {
        std::snprintf(line, sizeof(line), " %s=%llu", e.arg2_name,
                      static_cast<unsigned long long>(e.arg2));
        out += line;
      }
      out += '\n';
    }
  }
  return out;
}

std::uint64_t Tracer::events_recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& buf : buffers_) {
    // mo: acquire — same pairing as snapshot(); count only published events.
    total += std::min(buf->head.load(std::memory_order_acquire),
                      static_cast<std::uint64_t>(buf->ring.size()));
  }
  return total;
}

}  // namespace reptile::obs
