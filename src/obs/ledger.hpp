#pragma once
// obs::ResourceLedger — named byte accounts for every structure that owns
// a meaningful share of process memory, so the paper's *memory* scalability
// claim is measurable per phase instead of inferred from one ad-hoc field.
//
// Design (DESIGN.md §14):
//
//   * Accounts. Each instrumented owner class charges its exact
//     `memory_bytes()` to one named account (count_table, owner_filters,
//     payload_arena, ...). add/sub are relaxed atomic RMWs; every account
//     and the process total keep a CAS-maintained high-water mark, so peak
//     attribution survives any interleaving of growers and shrinkers.
//
//   * LedgerCharge. The RAII handle an instrumented structure owns. It
//     tracks the structure's current bytes UNCONDITIONALLY (recorded()
//     always equals the owner's memory_bytes(), ledger on or off — the
//     construction-peak fold reads it), and mirrors deltas into the global
//     ledger only while the ledger is enabled. Charges are generation-
//     stamped: ResourceLedger::configure() bumps a generation and zeroes
//     the balances, so a structure that outlives a run (a resident server's
//     tables) re-bases instead of corrupting the next run's balances.
//
//   * RSS cross-check. RssSampler periodically reads /proc/self/statm and
//     folds the observed resident set into the snapshot, so self-reported
//     bytes can be sanity-checked against the OS (self-reported <= RSS peak
//     within allocator slack; the bench JSON records both).
//
//   * Zero overhead when disabled. Disabled add/sub return after one
//     relaxed load; no counter events are emitted; no sampler thread runs.
//     Corrected output is byte-identical either way (pinned in
//     test_obs_trace.cpp).
//
// Thread model: ResourceLedger is shared and lock-free (relaxed atomics —
// accounts are statistics, not synchronization). A LedgerCharge belongs to
// exactly one structure and inherits that structure's synchronization;
// configure() is only legal between runs, like Tracer::configure().

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>

namespace reptile::obs {

/// The instrumented memory owners. Order is the reporting order everywhere
/// (trace counters, Prometheus labels, bench JSON, report columns).
enum class LedgerAccount : std::uint8_t {
  kCountTable = 0,   ///< hash::CountTable cells (spectrum + reads tables)
  kSortedSpectrum,   ///< prior-art sorted/cache-aware count arrays
  kOwnerFilters,     ///< hash::OwnerFilter blocks (built + exchanged)
  kPayloadArena,     ///< rtm::PayloadArena slabs
  kMailboxRings,     ///< rtm::Mailbox ring cells
  kRemoteCache,      ///< RemoteSpectrumView prefetch/reply caches
  kReadBuffers,      ///< seq::ChunkStream batch buffers
  kAdmissionQueue,   ///< serve-mode admission queue entries
};

inline constexpr std::size_t kLedgerAccounts = 8;

/// Stable snake_case name ("count_table", ...) used by counter events,
/// gauge labels and the scaling bench JSON.
const char* ledger_account_name(LedgerAccount account) noexcept;

/// Point-in-time view of every account (taken with relaxed loads; exact
/// once the charging threads have quiesced, e.g. after the world join).
struct LedgerSnapshot {
  struct Account {
    std::uint64_t bytes = 0;       ///< current balance
    std::uint64_t peak_bytes = 0;  ///< high-water mark since configure()
  };
  std::array<Account, kLedgerAccounts> accounts{};
  std::uint64_t total_bytes = 0;       ///< sum of balances, tracked live
  std::uint64_t total_peak_bytes = 0;  ///< hwm of the live total
  std::uint64_t rss_peak_bytes = 0;    ///< OS cross-check (0: no sample yet)

  const Account& account(LedgerAccount a) const noexcept {
    return accounts[static_cast<std::size_t>(a)];
  }
};

class ResourceLedger {
 public:
  /// The process-wide ledger (leaky, mirrors Tracer::instance()).
  static ResourceLedger& global();

  /// Arms or disarms the ledger for the coming run: zeroes every balance
  /// and high-water mark and bumps the generation so charges held by
  /// structures that survived the previous run re-base themselves. Only
  /// legal between runs (no concurrent chargers), like Tracer::configure.
  void configure(bool enabled);

  bool enabled() const noexcept {
    // mo: relaxed — a flag checked on hot paths; configure() happens-before
    // any charging thread exists.
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Generation of the current configure() epoch (LedgerCharge re-basing).
  std::uint64_t generation() const noexcept {
    // mo: relaxed — read together with enabled() under the same
    // between-runs configure contract.
    return generation_.load(std::memory_order_relaxed);
  }

  /// Charges `bytes` to `account`, raising the account and total
  /// high-water marks; emits a Chrome-trace 'C' counter event when full
  /// tracing is on. No-op while disabled.
  void add(LedgerAccount account, std::uint64_t bytes);

  /// Releases `bytes` from `account` (clamped at zero defensively; a
  /// balanced charge never underflows). No-op while disabled.
  void sub(LedgerAccount account, std::uint64_t bytes);

  std::uint64_t bytes(LedgerAccount account) const noexcept;
  std::uint64_t peak_bytes(LedgerAccount account) const noexcept;
  std::uint64_t total_bytes() const noexcept;
  std::uint64_t total_peak_bytes() const noexcept;

  /// Folds one OS resident-set sample into the rss peak (RssSampler).
  void note_rss(std::uint64_t bytes) noexcept;
  std::uint64_t rss_peak_bytes() const noexcept;

  LedgerSnapshot snapshot() const;

 private:
  struct Account {
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> peak{0};
  };

  void emit_counter(LedgerAccount account, std::uint64_t value);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> generation_{0};
  std::array<Account, kLedgerAccounts> accounts_{};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> total_peak_{0};
  std::atomic<std::uint64_t> rss_peak_{0};
};

/// RAII charge handle owned by one instrumented structure. Local tracking
/// (recorded/local_peak) is unconditional so `recorded()` always equals the
/// owner's memory_bytes(); the global ledger sees deltas only while
/// enabled. NOT thread-safe by itself — it shares the owner's mutation
/// synchronization.
class LedgerCharge {
 public:
  LedgerCharge() = default;
  explicit LedgerCharge(LedgerAccount account) { bind(account); }
  ~LedgerCharge() { settle(0); }

  LedgerCharge(const LedgerCharge&) = delete;
  LedgerCharge& operator=(const LedgerCharge&) = delete;

  LedgerCharge(LedgerCharge&& other) noexcept { steal(other); }
  LedgerCharge& operator=(LedgerCharge&& other) noexcept {
    if (this != &other) {
      settle(0);
      steal(other);
    }
    return *this;
  }

  /// Binds (or re-binds) the account; any bytes already recorded follow
  /// the handle to the new account.
  void bind(LedgerAccount account) {
    if (bound_ && account_ != account) {
      const std::uint64_t keep = recorded_;  // before settle() zeroes it
      settle(0);
      account_ = account;
      bound_ = true;
      apply(keep);
      recorded_ = keep;
      return;
    }
    account_ = account;
    bound_ = true;
    apply(recorded_);
  }

  bool bound() const noexcept { return bound_; }

  /// Sets the owner's current footprint to `bytes`, charging/releasing the
  /// delta. Call after every mutation that changes memory_bytes().
  void set(std::uint64_t bytes) {
    local_peak_ = bytes > local_peak_ ? bytes : local_peak_;
    if (bound_) {
      apply(bytes);
    }
    recorded_ = bytes;
  }

  /// Bytes currently recorded — always equals the owner's memory_bytes()
  /// after the owner's last set(), ledger enabled or not.
  std::uint64_t recorded() const noexcept { return recorded_; }

  /// Largest value ever set() on this handle (local, unconditional).
  std::uint64_t local_peak() const noexcept { return local_peak_; }

 private:
  /// Drives the ledger-visible balance to `target`, re-basing first if the
  /// ledger was reconfigured since our last apply.
  void apply(std::uint64_t target) {
    ResourceLedger& ledger = ResourceLedger::global();
    const std::uint64_t gen = ledger.generation();
    if (gen != generation_) {
      charged_ = 0;  // previous epoch's balance was zeroed by configure()
      generation_ = gen;
    }
    if (!ledger.enabled()) {
      return;  // charged_ stays 0: disabled epochs never accumulate
    }
    if (target > charged_) {
      ledger.add(account_, target - charged_);
    } else if (target < charged_) {
      ledger.sub(account_, charged_ - target);
    }
    charged_ = target;
  }

  void settle(std::uint64_t target) {
    if (bound_) {
      apply(target);
    }
    recorded_ = target;
  }

  void steal(LedgerCharge& other) noexcept {
    account_ = other.account_;
    bound_ = other.bound_;
    recorded_ = other.recorded_;
    local_peak_ = other.local_peak_;
    charged_ = other.charged_;
    generation_ = other.generation_;
    other.bound_ = false;
    other.recorded_ = 0;
    other.local_peak_ = 0;
    other.charged_ = 0;
  }

  LedgerAccount account_{LedgerAccount::kCountTable};
  bool bound_ = false;
  std::uint64_t recorded_ = 0;    ///< mirrors the owner's memory_bytes()
  std::uint64_t local_peak_ = 0;  ///< max recorded_ ever
  std::uint64_t charged_ = 0;     ///< ledger-visible balance (generation_)
  std::uint64_t generation_ = 0;
};

/// Current resident set in bytes from /proc/self/statm (0 when the file is
/// unavailable, e.g. non-Linux).
std::uint64_t read_rss_bytes() noexcept;

/// Background RSS sampler: periodically reads /proc/self/statm, folds the
/// sample into the ledger's rss peak and emits a 'C' counter event. The
/// caller owns the thread (ScopedThreadGroup) and passes an idle hook so
/// the loop can register with the deadlock watchdog (rtm-check
/// thread_idle_poll) without obs depending on rtm.
class RssSampler {
 public:
  explicit RssSampler(std::uint32_t period_ms = 5) : period_ms_(period_ms) {}

  /// Samples until stop(); takes one final sample on the way out so short
  /// runs still record a peak. `idle_poll` (may be empty) runs every tick.
  void run(const std::function<void()>& idle_poll = {});

  /// Releases run() promptly (safe from any thread, any number of times).
  void stop();

  /// Samples taken so far (tests).
  std::uint64_t samples() const noexcept {
    // mo: relaxed — test-only progress counter.
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;  ///< guarded by mutex_
  std::uint32_t period_ms_;
  std::atomic<std::uint64_t> samples_{0};
};

/// Publishes the snapshot as Prometheus gauges:
/// reptile_ledger_bytes{account=...}, reptile_ledger_peak_bytes{account=...},
/// reptile_ledger_total_peak_bytes, reptile_rss_peak_bytes. No-op when the
/// metrics registry is disabled.
void publish_ledger_metrics(const LedgerSnapshot& snapshot);

}  // namespace reptile::obs
