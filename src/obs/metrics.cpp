#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>

#include "stats/phase_timeline.hpp"

namespace reptile::obs {

std::uint64_t Histogram::quantile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(n) + 0.5);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    cumulative += bucket_count(b);
    if (cumulative >= target) {
      // The true sample is somewhere in [2^b, 2^(b+1)); report the upper
      // bound, clamped to the largest sample actually seen.
      return std::min(bucket_upper(b), max());
    }
  }
  return max();
}

Registry& Registry::global() {
  static auto* registry = new Registry;  // leaky, mirrors Tracer::instance
  return *registry;
}

void Registry::configure(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
  // mo: relaxed — configure() runs between runs; the thread spawn orders
  // the flag for every later instrument user.
  enabled_.store(enabled, std::memory_order_relaxed);
}

template <typename T>
T* Registry::find_or_add(std::vector<Entry<T>>& entries, std::string_view name,
                         int rank, std::int64_t job, std::string_view label) {
  for (auto& entry : entries) {
    if (entry.rank == rank && entry.job == job && entry.name == name &&
        entry.label == label) {
      return entry.value.get();
    }
  }
  entries.push_back(Entry<T>{std::string(name), rank, job, std::string(label),
                             std::make_unique<T>()});
  return entries.back().value.get();
}

Counter* Registry::counter(std::string_view name, int rank, std::int64_t job) {
  if (!enabled()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_add(counters_, name, rank, job);
}

Gauge* Registry::gauge(std::string_view name, int rank, std::int64_t job) {
  if (!enabled()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_add(gauges_, name, rank, job);
}

Histogram* Registry::histogram(std::string_view name, int rank,
                               std::int64_t job) {
  if (!enabled()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_add(histograms_, name, rank, job);
}

Gauge* Registry::gauge_labelled(std::string_view name, std::string_view label) {
  if (!enabled()) {
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return find_or_add(gauges_, name, -1, -1, label);
}

void Registry::publish_timeline(const stats::PhaseTimeline& t, int rank,
                                std::int64_t job) {
  if (!enabled()) {
    return;
  }
  const auto set_counter = [&](const char* name, std::uint64_t value) {
    if (value != 0) {
      counter(name, rank, job)->add(value);
    }
  };
  const auto set_gauge = [&](const char* name, double value) {
    gauge(name, rank, job)->set(value);
  };

  set_counter("reptile_reads_processed", t.reads_processed);
  set_counter("reptile_reads_changed", t.reads_changed);
  set_counter("reptile_substitutions", t.substitutions);
  set_counter("reptile_tiles_untrusted", t.tiles_untrusted);
  set_counter("reptile_tiles_fixed", t.tiles_fixed);
  set_counter("reptile_tiles_degraded", t.tiles_degraded);
  set_counter("reptile_reads_deadline_skipped", t.reads_deadline_skipped);
  set_counter("reptile_chunks_built", t.batches);

  set_counter("reptile_lookup_kmer_total", t.lookups.kmer_lookups);
  set_counter("reptile_lookup_kmer_miss", t.lookups.kmer_misses);
  set_counter("reptile_lookup_tile_total", t.lookups.tile_lookups);
  set_counter("reptile_lookup_tile_miss", t.lookups.tile_misses);

  set_counter("reptile_remote_kmer_lookups", t.remote.remote_kmer_lookups);
  set_counter("reptile_remote_tile_lookups", t.remote.remote_tile_lookups);
  set_counter("reptile_remote_kmer_absent", t.remote.remote_kmer_absent);
  set_counter("reptile_remote_tile_absent", t.remote.remote_tile_absent);
  set_counter("reptile_reads_table_hits", t.remote.reads_table_hits);
  set_counter("reptile_group_lookups", t.remote.group_lookups);
  set_counter("reptile_batch_requests", t.remote.batch_requests);
  set_counter("reptile_batch_ids", t.remote.batch_ids());
  set_counter("reptile_prefetch_hits", t.remote.prefetch_hits);
  set_counter("reptile_prefetch_misses", t.remote.prefetch_misses);
  set_counter("reptile_filter_neg_hits", t.remote.filter_neg_hits);
  set_counter("reptile_filter_false_positives",
              t.remote.filter_false_positives);
  set_counter("reptile_lookup_retries", t.remote.lookup_retries);
  set_counter("reptile_lookup_timeouts", t.remote.lookup_timeouts);
  set_counter("reptile_degraded_lookups", t.remote.degraded_lookups);
  set_counter("reptile_stale_replies_suppressed",
              t.remote.stale_replies_suppressed);
  set_counter("reptile_batch_retries", t.remote.batch_retries);
  set_counter("reptile_batch_abandoned", t.remote.batch_abandoned);

  set_counter("reptile_service_requests", t.service.requests_served);
  set_counter("reptile_service_kmer_requests", t.service.kmer_requests);
  set_counter("reptile_service_tile_requests", t.service.tile_requests);
  set_counter("reptile_service_absent_replies", t.service.absent_replies);
  set_counter("reptile_service_batch_requests", t.service.batch_requests);
  set_counter("reptile_service_batch_ids", t.service.batch_ids_served);
  set_counter("reptile_service_malformed_requests",
              t.service.malformed_requests);
  set_counter("reptile_service_filter_stragglers",
              t.service.filter_stragglers);

  set_gauge("reptile_construct_seconds", t.construct_seconds);
  set_gauge("reptile_correct_seconds", t.correct_seconds);
  set_gauge("reptile_comm_seconds", t.comm_seconds);
  set_gauge("reptile_spectrum_bytes",
            static_cast<double>(t.footprint_after_construction.bytes));
  set_gauge("reptile_filter_bytes",
            static_cast<double>(t.footprint_after_correction.filter_bytes));
  set_gauge("reptile_construction_peak_bytes",
            static_cast<double>(t.construction_peak_bytes));
}

namespace {

void append_double(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

void append_label(std::string& out, int rank, std::int64_t job,
                  const std::string& label = {}) {
  if (rank < 0 && job < 0 && label.empty()) {
    return;
  }
  out += '{';
  bool first = true;
  if (!label.empty()) {
    out += label;
    first = false;
  }
  if (rank >= 0) {
    if (!first) {
      out += ',';
    }
    out += "rank=\"" + std::to_string(rank) + "\"";
    first = false;
  }
  if (job >= 0) {
    if (!first) {
      out += ',';
    }
    out += "job=\"" + std::to_string(job) + "\"";
  }
  out += '}';
}

void append_bucket_label(std::string& out, int rank, std::int64_t job,
                         const std::string& le) {
  out += "{";
  if (rank >= 0) {
    out += "rank=\"" + std::to_string(rank) + "\",";
  }
  if (job >= 0) {
    out += "job=\"" + std::to_string(job) + "\",";
  }
  out += "le=\"" + le + "\"}";
}

}  // namespace

std::string Registry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;

  // Group by name so each `# TYPE` header appears once; entries are stored
  // in registration order, so sort a view by (name, rank).
  const auto sorted_view = [](const auto& entries) {
    std::vector<const typename std::decay_t<decltype(entries)>::value_type*>
        view;
    view.reserve(entries.size());
    for (const auto& entry : entries) {
      view.push_back(&entry);
    }
    std::sort(view.begin(), view.end(), [](const auto* a, const auto* b) {
      if (a->name != b->name) return a->name < b->name;
      if (a->label != b->label) return a->label < b->label;
      if (a->rank != b->rank) return a->rank < b->rank;
      return a->job < b->job;
    });
    return view;
  };

  const char* previous = nullptr;
  for (const auto* entry : sorted_view(counters_)) {
    if (previous == nullptr || entry->name != previous) {
      out += "# TYPE " + entry->name + " counter\n";
      previous = entry->name.c_str();
    }
    out += entry->name;
    append_label(out, entry->rank, entry->job, entry->label);
    out += ' ';
    out += std::to_string(entry->value->value());
    out += '\n';
  }
  previous = nullptr;
  for (const auto* entry : sorted_view(gauges_)) {
    if (previous == nullptr || entry->name != previous) {
      out += "# TYPE " + entry->name + " gauge\n";
      previous = entry->name.c_str();
    }
    out += entry->name;
    append_label(out, entry->rank, entry->job, entry->label);
    out += ' ';
    append_double(out, entry->value->value());
    out += '\n';
  }
  previous = nullptr;
  for (const auto* entry : sorted_view(histograms_)) {
    if (previous == nullptr || entry->name != previous) {
      out += "# TYPE " + entry->name + " histogram\n";
      previous = entry->name.c_str();
    }
    const Histogram& h = *entry->value;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t in_bucket = h.bucket_count(b);
      if (in_bucket == 0) {
        continue;  // log2 buckets are sparse; elide empties
      }
      cumulative += in_bucket;
      out += entry->name + "_bucket";
      append_bucket_label(out, entry->rank, entry->job,
                          std::to_string(Histogram::bucket_upper(b)));
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += entry->name + "_bucket";
    append_bucket_label(out, entry->rank, entry->job, "+Inf");
    out += ' ';
    out += std::to_string(h.count());
    out += '\n';
    out += entry->name + "_sum";
    append_label(out, entry->rank, entry->job, entry->label);
    out += ' ';
    out += std::to_string(h.sum());
    out += '\n';
    out += entry->name + "_count";
    append_label(out, entry->rank, entry->job, entry->label);
    out += ' ';
    out += std::to_string(h.count());
    out += '\n';
  }
  return out;
}

std::vector<HistogramSummary> Registry::histogram_summaries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSummary> out;
  out.reserve(histograms_.size());
  for (const auto& entry : histograms_) {
    const Histogram& h = *entry.value;
    out.push_back({entry.name, entry.rank, entry.job, h.count(), h.sum(),
                   h.max(), h.quantile(0.5), h.quantile(0.99)});
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSummary& a, const HistogramSummary& b) {
              if (a.name != b.name) return a.name < b.name;
              if (a.rank != b.rank) return a.rank < b.rank;
              return a.job < b.job;
            });
  return out;
}

HistogramSummary Registry::histogram_summary(std::string_view name, int rank,
                                             std::int64_t job) const {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& entry : histograms_) {
    if (entry.rank == rank && entry.job == job && entry.name == name) {
      const Histogram& h = *entry.value;
      return {entry.name, entry.rank,      entry.job,       h.count(),
              h.sum(),    h.max(),         h.quantile(0.5), h.quantile(0.99)};
    }
  }
  HistogramSummary none;
  none.name = std::string(name);
  none.rank = rank;
  none.job = job;
  return none;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace reptile::obs
