#pragma once
// Minimal JSON DOM: parse + serialize, just enough for trace shards.
//
// The tracer emits Chrome trace-event JSON; tools/trace_merge and the trace
// tests need to read it back (validate shards, merge event arrays, pin
// required keys). The repo deliberately has no third-party deps, so this is
// a small, strict, recursive-descent parser over the full JSON grammar —
// objects, arrays, strings (with \uXXXX), numbers, booleans, null. Numbers
// are kept as doubles, which is lossless for every value the tracer writes
// (timestamps in microseconds with fixed 3-decimal fractions, small ints).

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace reptile::obs {

/// Thrown on malformed input, with a byte offset for context.
class JsonError : public std::runtime_error {
 public:
  JsonError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at byte " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }

  /// Typed accessors; throw std::logic_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  std::vector<JsonValue>& as_array();
  /// Insertion-ordered (vector of pairs): trace tooling wants stable output.
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const;
  std::vector<std::pair<std::string, JsonValue>>& as_object();

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  bool has(std::string_view key) const { return find(key) != nullptr; }

  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

  /// Compact serialization (no whitespace). Round-trips parse().
  std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
JsonValue json_parse(std::string_view text);

}  // namespace reptile::obs
