#pragma once
// reptile-obs metrics registry: named counters, gauges and log2-bucket
// latency histograms behind one seam.
//
// The pipeline's existing per-phase counters (stats::LookupStats /
// RemoteLookupStats / ServiceStats) stay where they are — they are plain
// per-thread struct increments and already race-free. The registry adds
// what those cannot express:
//
//   * latency *distributions* (lookup RTT, mailbox wait, stage duration)
//     with fixed log2 buckets, so p50/p99 survive aggregation, and
//   * one uniform, named, rank-labelled view of everything, rendered as a
//     Prometheus-style text dump and as extra stats::RunReport columns.
//
// `publish_timeline()` is the single bridge that mirrors the struct
// counters into the registry at harvest time, so no hot-path increment is
// ever duplicated.
//
// Overhead contract: when metrics are disabled, `Registry::histogram()`
// etc. return nullptr; call sites cache the pointer per chunk/loop and the
// per-event cost is a null check. When enabled, one record() is a handful
// of relaxed atomic RMWs (bucket + count + sum + max).

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace reptile::stats {
struct PhaseTimeline;  // bridge target; defined in stats/phase_timeline.hpp
}  // namespace reptile::stats

namespace reptile::obs {

class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    // mo: relaxed — a statistic; no payload is published through it, and
    // readers harvest after the run's join.
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    // mo: relaxed — statistics read, see add().
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double value) noexcept {
    // mo: relaxed — a statistic; see Counter::add().
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const noexcept {
    // mo: relaxed — statistics read.
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Histogram with fixed log2 buckets: bucket b counts samples in
/// [2^b, 2^(b+1)) (bucket 0 additionally holds 0). Unit-agnostic; by
/// convention the registry's latency histograms record microseconds.
/// Thread-safe: record() is relaxed atomics only, so worker/service
/// threads share one histogram without coordination.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;  // covers [0, 2^40) ~ 12 days in us

  void record(std::uint64_t sample) noexcept {
    // mo: relaxed throughout — each field is an independent statistic;
    // cross-field exactness only matters after the recording threads have
    // quiesced (the reader holds the run's join edge).
    buckets_[bucket_index(sample)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);  // mo: same as above
    sum_.fetch_add(sample, std::memory_order_relaxed);  // mo: same as above
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    // mo: relaxed CAS — hwm maintenance, same statistics argument.
    while (prev < sample &&
           !max_.compare_exchange_weak(prev, sample,
                                       std::memory_order_relaxed)) {
    }
  }

  std::uint64_t count() const noexcept {
    // mo: relaxed — statistics read, see record().
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const noexcept {
    // mo: relaxed — statistics read, see record().
    return sum_.load(std::memory_order_relaxed);
  }
  std::uint64_t max() const noexcept {
    // mo: relaxed — statistics read, see record().
    return max_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  std::uint64_t bucket_count(std::size_t index) const noexcept {
    // mo: relaxed — statistics read, see record().
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Upper bound of the log2 bucket holding quantile `q` (0 < q <= 1) —
  /// an upper estimate, never below the true quantile's bucket.
  std::uint64_t quantile(double q) const noexcept;

  static std::size_t bucket_index(std::uint64_t sample) noexcept {
    if (sample < 2) {
      return sample;  // 0 -> bucket 0, 1 -> bucket 1
    }
    const auto log2 = static_cast<std::size_t>(std::bit_width(sample)) - 1;
    return log2 >= kBuckets ? kBuckets - 1 : log2;
  }

  /// Inclusive upper bound of bucket `index` (2^(index+1) - 1).
  static std::uint64_t bucket_upper(std::size_t index) noexcept {
    return index + 1 >= 64 ? std::uint64_t(-1)
                           : (std::uint64_t{1} << (index + 1)) - 1;
  }

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Compact summary of one histogram, for report columns and tests.
struct HistogramSummary {
  std::string name;
  int rank = -1;
  std::int64_t job = -1;  ///< serve-mode job id; -1 = not job-scoped
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
};

/// Process-wide registry of named, rank-labelled instruments. Lookup
/// (`counter()`/`gauge()`/`histogram()`) takes a mutex and returns a
/// stable pointer — cache it outside loops; when the registry is disabled
/// the lookup returns nullptr and recording costs one branch.
class Registry {
 public:
  static Registry& global();

  /// Enables/disables the registry for the coming run; disabling clears
  /// every instrument (a run owns its metrics, mirroring Tracer).
  void configure(bool enabled);
  bool enabled() const noexcept {
    // mo: relaxed — configure() runs between runs, before any instrument
    // user exists; the thread spawn provides the ordering.
    return enabled_.load(std::memory_order_relaxed);
  }

  /// rank < 0 registers an unlabelled (process-wide) instrument; job >= 0
  /// additionally scopes the instrument to one serve-mode job, so a
  /// resident server's per-job counters stay attributable after N jobs.
  Counter* counter(std::string_view name, int rank = -1,
                   std::int64_t job = -1);
  Gauge* gauge(std::string_view name, int rank = -1, std::int64_t job = -1);
  Histogram* histogram(std::string_view name, int rank = -1,
                       std::int64_t job = -1);

  /// Gauge carrying a pre-rendered extra label (`account="count_table"`),
  /// merged before rank/job in the exposition — the ledger's
  /// reptile_ledger_bytes{account=...} family uses this.
  Gauge* gauge_labelled(std::string_view name, std::string_view label);

  /// Mirrors one rank's harvested stats::PhaseTimeline counters into
  /// named registry counters/gauges — the single seam absorbing
  /// LookupStats/RemoteLookupStats/ServiceStats. job >= 0 publishes the
  /// counters under the (rank, job) pair (serve mode); -1 keeps the
  /// one-shot rank-only labelling.
  void publish_timeline(const stats::PhaseTimeline& timeline, int rank,
                        std::int64_t job = -1);

  /// Prometheus text exposition (`# TYPE` comments, `{rank="N"}` /
  /// `{rank="N",job="J"}` labels, `_bucket{le=...}` per histogram) of
  /// every instrument.
  std::string prometheus_text() const;

  /// Summaries of every histogram, sorted by (name, rank, job).
  std::vector<HistogramSummary> histogram_summaries() const;

  /// Summary of one (name, rank[, job]) histogram; count==0 when absent.
  HistogramSummary histogram_summary(std::string_view name, int rank,
                                     std::int64_t job = -1) const;

  /// Number of registered instruments (tests; 0 when disabled).
  std::size_t size() const;

 private:
  template <typename T>
  struct Entry {
    std::string name;
    int rank;
    std::int64_t job;   ///< -1 = not job-scoped
    std::string label;  ///< pre-rendered extra label ("" = none)
    std::unique_ptr<T> value;
  };

  template <typename T>
  T* find_or_add(std::vector<Entry<T>>& entries, std::string_view name,
                 int rank, std::int64_t job, std::string_view label = {});

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

}  // namespace reptile::obs
