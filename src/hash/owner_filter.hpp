#pragma once
// Serializable blocked Bloom filter over packed k-mer/tile IDs.
//
// The filter-exchange extension (DESIGN.md §9): after Step III every rank
// owns a pruned, immutable spectrum shard, and most remote lookups against
// it come back "definitively absent" (-1) — a full round trip to learn
// nothing. An OwnerFilter is a compact membership summary of one shard that
// the owner broadcasts once; peers then answer definite absences locally
// and only pay the wire for probable hits. A Bloom false positive costs one
// redundant round trip; a false negative would silently miscorrect reads,
// which is why possibly_contains never errs on that side (property-tested).
//
// Unlike the construction-time hash::BloomFilter (whose probes stride the
// whole bit array), this filter is *blocked*: every key's probes land in one
// 512-bit (cache-line) block, so a lookup touches exactly one line — it sits
// on the correction hot path — and the layout serializes to a stable wire
// format: a fixed header followed by the block words.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "hash/count_table.hpp"
#include "hash/hashing.hpp"

namespace reptile::hash {

class OwnerFilter {
 public:
  /// 8 x u64 = 512 bits: one cache line per key.
  static constexpr std::size_t kBlockWords = 8;
  static constexpr std::size_t kBlockBits = kBlockWords * 64;

  /// Sizes the filter for `expected` distinct keys at roughly `fp_rate`.
  /// The standard m = -n ln p / (ln 2)^2 sizing is inflated by a small
  /// factor because confining probes to one block costs accuracy (the
  /// blocked-Bloom FP inflation); the property tests pin the measured rate
  /// within 2x of the configured one.
  explicit OwnerFilter(std::size_t expected, double fp_rate = 0.01) {
    if (fp_rate <= 0.0 || fp_rate >= 1.0) {
      throw std::invalid_argument("OwnerFilter: fp_rate must be in (0, 1)");
    }
    expected = expected == 0 ? 1 : expected;
    const double ln2 = 0.6931471805599453;
    const double m = -static_cast<double>(expected) * std::log(fp_rate) /
                     (ln2 * ln2) * kBlockedInflation;
    const std::size_t nbits =
        std::max(kBlockBits, static_cast<std::size_t>(m));
    nblocks_ = (nbits + kBlockBits - 1) / kBlockBits;
    blocks_.assign(nblocks_ * kBlockWords, 0);
    charge_.set(blocks_.size() * sizeof(std::uint64_t));
    const int k = static_cast<int>(std::lround(
        m / static_cast<double>(expected) * ln2));
    nhashes_ = k < 1 ? 1 : (k > kMaxHashes ? kMaxHashes : k);
  }

  /// Builds a filter over every key of a pruned owned table.
  template <class Count, class Hash>
  static OwnerFilter build_from(const CountTable<Count, Hash>& table,
                                double fp_rate = 0.01) {
    OwnerFilter f(table.size(), fp_rate);
    table.for_each([&f](std::uint64_t id, Count) { f.insert(id); });
    return f;
  }

  void insert(std::uint64_t key) {
    std::uint64_t* block = block_of(key);
    std::uint64_t h = probe_seed(key);
    const std::uint64_t step = probe_step(key);
    for (int i = 0; i < nhashes_; ++i, h += step) {
      const std::size_t bit = static_cast<std::size_t>(h % kBlockBits);
      block[bit >> 6] |= std::uint64_t{1} << (bit & 63);
    }
    ++key_count_;
  }

  /// True when `key` may be in the set the filter was built over. False
  /// positives happen at ~fp_rate; false negatives are structurally
  /// impossible (insert sets exactly the bits this probes).
  bool possibly_contains(std::uint64_t key) const {
    const std::uint64_t* block = block_of(key);
    std::uint64_t h = probe_seed(key);
    const std::uint64_t step = probe_step(key);
    for (int i = 0; i < nhashes_; ++i, h += step) {
      const std::size_t bit = static_cast<std::size_t>(h % kBlockBits);
      if (!(block[bit >> 6] & (std::uint64_t{1} << (bit & 63)))) return false;
    }
    return true;
  }

  std::size_t block_count() const noexcept { return nblocks_; }
  std::size_t bit_count() const noexcept { return nblocks_ * kBlockBits; }
  int hash_count() const noexcept { return nhashes_; }
  std::uint64_t key_count() const noexcept { return key_count_; }

  /// Exact heap footprint of the bit array (the object header is
  /// negligible); feeds the per-rank memory accounting the paper tracks.
  std::size_t memory_bytes() const noexcept {
    return blocks_.size() * sizeof(std::uint64_t);
  }

  /// Fraction of bits set; a sizing-health metric for the property tests.
  double fill_ratio() const noexcept {
    std::size_t set = 0;
    for (std::uint64_t w : blocks_) {
      set += static_cast<std::size_t>(__builtin_popcountll(w));
    }
    return static_cast<double>(set) / static_cast<double>(bit_count());
  }

  // --- wire format --------------------------------------------------------
  // Header | nblocks x kBlockWords x u64, little-endian host order (the
  // in-process runtime never crosses endianness). deserialize() rejects
  // every truncated prefix and any over-long buffer, like the lookup wire
  // structs in parallel/wire.hpp.

  struct Header {
    std::uint32_t magic = kMagic;
    std::uint32_t version = kVersion;
    std::uint32_t nhashes = 0;
    std::uint32_t reserved = 0;  // explicit padding for a stable layout
    std::uint64_t nblocks = 0;
    std::uint64_t key_count = 0;
  };
  static_assert(sizeof(Header) == 32);

  static constexpr std::uint32_t kMagic = 0x544C4652;  // "RFLT"
  static constexpr std::uint32_t kVersion = 1;

  /// Serialized size in bytes.
  std::size_t wire_bytes() const noexcept {
    return sizeof(Header) + blocks_.size() * sizeof(std::uint64_t);
  }

  /// Writes the wire encoding into a caller-sized buffer of exactly
  /// wire_bytes() — the zero-copy path into an arena payload.
  void serialize_into(std::byte* out) const {
    Header h;
    h.nhashes = static_cast<std::uint32_t>(nhashes_);
    h.nblocks = nblocks_;
    h.key_count = key_count_;
    std::memcpy(out, &h, sizeof(h));
    std::memcpy(out + sizeof(h), blocks_.data(),
                blocks_.size() * sizeof(std::uint64_t));
  }

  std::vector<std::uint8_t> serialize() const {
    std::vector<std::uint8_t> out(wire_bytes());
    serialize_into(reinterpret_cast<std::byte*>(out.data()));
    return out;
  }

  /// Decodes one filter. Throws on a truncated or over-long buffer, a bad
  /// magic/version, or out-of-range parameters — a garbled filter must be
  /// discarded (the peer then takes the unfiltered wire path), never
  /// trusted: trusting garbage could manufacture false negatives.
  static OwnerFilter deserialize(std::span<const std::byte> buffer) {
    Header h;
    if (buffer.size() < sizeof(h)) {
      throw std::runtime_error("OwnerFilter: truncated header");
    }
    std::memcpy(&h, buffer.data(), sizeof(h));
    if (h.magic != kMagic) {
      throw std::runtime_error("OwnerFilter: bad magic");
    }
    if (h.version != kVersion) {
      throw std::runtime_error("OwnerFilter: unknown version");
    }
    if (h.nhashes < 1 || h.nhashes > static_cast<std::uint32_t>(kMaxHashes)) {
      throw std::runtime_error("OwnerFilter: hash count out of range");
    }
    if (h.nblocks == 0 ||
        h.nblocks > buffer.size() / (kBlockWords * sizeof(std::uint64_t))) {
      throw std::runtime_error("OwnerFilter: block count out of range");
    }
    const std::size_t body =
        static_cast<std::size_t>(h.nblocks) * kBlockWords *
        sizeof(std::uint64_t);
    if (buffer.size() - sizeof(h) != body) {
      throw std::runtime_error("OwnerFilter: body/header size mismatch");
    }
    OwnerFilter f;
    f.nblocks_ = h.nblocks;
    f.nhashes_ = static_cast<int>(h.nhashes);
    f.key_count_ = h.key_count;
    f.blocks_.resize(static_cast<std::size_t>(h.nblocks) * kBlockWords);
    std::memcpy(f.blocks_.data(), buffer.data() + sizeof(h), body);
    f.charge_.set(f.blocks_.size() * sizeof(std::uint64_t));
    return f;
  }

 private:
  /// Blocked-Bloom FP inflation compensation: probes confined to 512 bits
  /// lose ~15% accuracy vs a flat filter at 1% target rates (Putze et al.),
  /// so the bit budget is padded to keep the measured rate near the
  /// configured one.
  static constexpr double kBlockedInflation = 1.3;
  static constexpr int kMaxHashes = 16;

  OwnerFilter() = default;

  std::uint64_t* block_of(std::uint64_t key) noexcept {
    return blocks_.data() + (mix64(key) % nblocks_) * kBlockWords;
  }
  const std::uint64_t* block_of(std::uint64_t key) const noexcept {
    return blocks_.data() + (mix64(key) % nblocks_) * kBlockWords;
  }

  /// Intra-block double hashing; derived from a second independent mix so
  /// keys colliding on the block index still probe different bits.
  static std::uint64_t probe_seed(std::uint64_t key) noexcept {
    return mix64(key ^ 0x9E3779B97F4A7C15ull);
  }
  static std::uint64_t probe_step(std::uint64_t key) noexcept {
    return mix64(key ^ 0xC2B2AE3D27D4EB4Full) | 1;  // odd: full cycle mod 512
  }

  std::vector<std::uint64_t> blocks_;
  // Charged when the block array is sized (construction or deserialize);
  // filters are move-only so the balance follows the blocks.
  obs::LedgerCharge charge_{obs::LedgerAccount::kOwnerFilters};
  std::size_t nblocks_ = 0;
  int nhashes_ = 1;
  std::uint64_t key_count_ = 0;
};

}  // namespace reptile::hash
