#pragma once
// The prior art's spectrum stores: sorted arrays with binary search, and the
// cache-aware (B+1)-ary layout.
//
// Paper Section II-B, describing Jammula et al.: "K-mer and tile spectrums
// are stored as sorted lists with look-up operations involving repeated
// binary searches over the spectrum. A cache-aware layout of k-mer spectrum
// was presented which lowered the search time from the original O(log2 N)
// to O(log(B+1) N) where B represents the number of elements that can fit
// into a cache line."
//
// Both structures are implemented here as baselines so the paper's design
// contrast (hash tables, "prevent[ing] any need for sorting the arrays or
// for repeated binary searches") can be measured — see bench/microbench and
// core::FrozenSpectrum.

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "obs/ledger.hpp"

namespace reptile::hash {

/// Sorted (id, count) arrays searched by std::lower_bound — the Shah et
/// al. layout. Immutable once built.
class SortedCountArray {
 public:
  SortedCountArray() = default;

  /// Builds from arbitrary-order entries (sorted internally). Duplicate
  /// keys have their counts summed.
  static SortedCountArray from_entries(
      std::vector<std::pair<std::uint64_t, std::uint32_t>> entries);

  std::optional<std::uint32_t> find(std::uint64_t key) const {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) return std::nullopt;
    return counts_[static_cast<std::size_t>(it - keys_.begin())];
  }

  std::size_t size() const noexcept { return keys_.size(); }
  bool empty() const noexcept { return keys_.empty(); }
  std::size_t memory_bytes() const noexcept {
    return keys_.capacity() * sizeof(std::uint64_t) +
           counts_.capacity() * sizeof(std::uint32_t);
  }

  /// Sorted key sequence (tests and the cache-aware builder).
  const std::vector<std::uint64_t>& keys() const noexcept { return keys_; }
  const std::vector<std::uint32_t>& counts() const noexcept { return counts_; }

 private:
  std::vector<std::uint64_t> keys_;    // ascending
  std::vector<std::uint32_t> counts_;  // parallel to keys_
  // Charged once at build (immutable afterwards); moves carry the balance.
  obs::LedgerCharge charge_{obs::LedgerAccount::kSortedSpectrum};
};

/// Cache-aware static search tree: keys are grouped into blocks of B = 8
/// (one 64-byte cache line of 8-byte keys) arranged as an implicit
/// (B+1)-ary tree in level order. A lookup touches O(log_{B+1} N) cache
/// lines instead of binary search's O(log2 N).
class CacheAwareCountArray {
 public:
  /// Keys per block: 8 x 8-byte keys = one cache line.
  static constexpr int kBlock = 8;

  CacheAwareCountArray() = default;

  /// Builds the level-order layout from a sorted array.
  static CacheAwareCountArray from_sorted(const SortedCountArray& sorted);

  /// Convenience: sort + layout in one step.
  static CacheAwareCountArray from_entries(
      std::vector<std::pair<std::uint64_t, std::uint32_t>> entries) {
    return from_sorted(SortedCountArray::from_entries(std::move(entries)));
  }

  std::optional<std::uint32_t> find(std::uint64_t key) const;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t memory_bytes() const noexcept {
    return keys_.capacity() * sizeof(std::uint64_t) +
           counts_.capacity() * sizeof(std::uint32_t);
  }

  /// Number of blocks (tests).
  std::size_t blocks() const noexcept { return keys_.size() / kBlock; }

 private:
  /// Sentinel padding key for partially filled blocks; greater than every
  /// real key, so in-block scans stop naturally. (~0 is itself a valid
  /// packed ID only for the all-T 32-mer; it is stored out of line.)
  static constexpr std::uint64_t kPad = std::numeric_limits<std::uint64_t>::max();

  std::vector<std::uint64_t> keys_;    // m * kBlock, level-order blocks
  std::vector<std::uint32_t> counts_;  // parallel to keys_
  // Charged once at build (immutable afterwards); moves carry the balance.
  obs::LedgerCharge charge_{obs::LedgerAccount::kSortedSpectrum};
  std::size_t size_ = 0;
  // The sentinel collision case: a real entry with key == ~0.
  bool has_max_key_ = false;
  std::uint32_t max_key_count_ = 0;
};

}  // namespace reptile::hash
