#pragma once
// Bloom filter over packed 64-bit IDs.
//
// The paper notes (Section III, Step III) that "a memory-efficient
// alternative to this step [threshold pruning with exact counts] is usage of
// a Bloom filter". This filter supports that mode: a first pass inserts
// every k-mer into the filter, and only k-mers seen at least twice (i.e.
// already present on insert) are added to the exact table, discarding the
// singleton noise that dominates the spectrum's memory.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "hash/hashing.hpp"

namespace reptile::hash {

/// Blocked double-hashing Bloom filter for std::uint64_t keys.
class BloomFilter {
 public:
  /// Sizes the filter for `expected` distinct keys at the given
  /// false-positive rate.
  explicit BloomFilter(std::size_t expected, double fp_rate = 0.01) {
    expected = expected == 0 ? 1 : expected;
    // m = -n ln p / (ln 2)^2, k = m/n ln 2 (standard optimal sizing).
    const double ln2 = 0.6931471805599453;
    const double m = -static_cast<double>(expected) * std::log(fp_rate) /
                     (ln2 * ln2);
    nbits_ = std::max<std::size_t>(64, static_cast<std::size_t>(m));
    nbits_ = (nbits_ + 63) / 64 * 64;
    bits_.assign(nbits_ / 64, 0);
    nhashes_ = std::max(1, static_cast<int>(std::lround(
                               m / static_cast<double>(expected) * ln2)));
  }

  /// Inserts `key`; returns true when the key was *possibly already
  /// present* (all probed bits were set), which is the "seen before" signal
  /// used for singleton suppression.
  bool insert(std::uint64_t key) {
    const std::uint64_t h1 = mix64(key);
    const std::uint64_t h2 = mix64(key ^ 0x9E3779B97F4A7C15ull) | 1;
    bool all_set = true;
    std::uint64_t h = h1;
    for (int i = 0; i < nhashes_; ++i, h += h2) {
      const std::size_t bit = static_cast<std::size_t>(h % nbits_);
      const std::uint64_t word_mask = std::uint64_t{1} << (bit & 63);
      std::uint64_t& word = bits_[bit >> 6];
      if (!(word & word_mask)) {
        all_set = false;
        word |= word_mask;
      }
    }
    return all_set;
  }

  /// True when `key` may be present (false positives possible, never false
  /// negatives).
  bool possibly_contains(std::uint64_t key) const {
    const std::uint64_t h1 = mix64(key);
    const std::uint64_t h2 = mix64(key ^ 0x9E3779B97F4A7C15ull) | 1;
    std::uint64_t h = h1;
    for (int i = 0; i < nhashes_; ++i, h += h2) {
      const std::size_t bit = static_cast<std::size_t>(h % nbits_);
      if (!(bits_[bit >> 6] & (std::uint64_t{1} << (bit & 63)))) return false;
    }
    return true;
  }

  std::size_t bit_count() const noexcept { return nbits_; }
  int hash_count() const noexcept { return nhashes_; }
  std::size_t memory_bytes() const noexcept { return bits_.size() * 8; }

  /// Fraction of bits set; a health metric for sizing tests.
  double fill_ratio() const noexcept {
    std::size_t set = 0;
    for (std::uint64_t w : bits_) set += static_cast<std::size_t>(__builtin_popcountll(w));
    return static_cast<double>(set) / static_cast<double>(nbits_);
  }

 private:
  std::vector<std::uint64_t> bits_;
  std::size_t nbits_ = 0;
  int nhashes_ = 1;
};

}  // namespace reptile::hash
