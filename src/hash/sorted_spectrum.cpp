#include "hash/sorted_spectrum.hpp"

#include <cassert>

namespace reptile::hash {

SortedCountArray SortedCountArray::from_entries(
    std::vector<std::pair<std::uint64_t, std::uint32_t>> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  SortedCountArray out;
  out.keys_.reserve(entries.size());
  out.counts_.reserve(entries.size());
  for (const auto& [key, count] : entries) {
    if (!out.keys_.empty() && out.keys_.back() == key) {
      // Merge duplicates (saturating).
      const std::uint64_t sum =
          static_cast<std::uint64_t>(out.counts_.back()) + count;
      out.counts_.back() = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(sum, std::numeric_limits<std::uint32_t>::max()));
    } else {
      out.keys_.push_back(key);
      out.counts_.push_back(count);
    }
  }
  out.charge_.set(out.memory_bytes());
  return out;
}

namespace {

/// Recursive in-order fill of the implicit (B+1)-ary tree: children of
/// block `node` are node*(B+1)+1+i. Visiting child i, then slot i, then
/// child i+1 reproduces the sorted order.
struct TreeBuilder {
  const std::vector<std::uint64_t>& keys;
  const std::vector<std::uint32_t>& counts;
  std::vector<std::uint64_t>& tree_keys;
  std::vector<std::uint32_t>& tree_counts;
  std::size_t blocks;
  std::size_t next = 0;  // next sorted element to place

  void fill(std::size_t node) {
    if (node >= blocks) return;
    for (int slot = 0; slot < CacheAwareCountArray::kBlock; ++slot) {
      fill(node * (CacheAwareCountArray::kBlock + 1) + 1 +
           static_cast<std::size_t>(slot));
      if (next < keys.size()) {
        tree_keys[node * CacheAwareCountArray::kBlock +
                  static_cast<std::size_t>(slot)] = keys[next];
        tree_counts[node * CacheAwareCountArray::kBlock +
                    static_cast<std::size_t>(slot)] = counts[next];
        ++next;
      }
    }
    fill(node * (CacheAwareCountArray::kBlock + 1) + 1 +
         CacheAwareCountArray::kBlock);
  }
};

}  // namespace

CacheAwareCountArray CacheAwareCountArray::from_sorted(
    const SortedCountArray& sorted) {
  CacheAwareCountArray out;

  // Pull a possible ~0 key out of line: it would be indistinguishable from
  // block padding.
  std::vector<std::uint64_t> keys = sorted.keys();
  std::vector<std::uint32_t> counts = sorted.counts();
  if (!keys.empty() && keys.back() == kPad) {
    out.has_max_key_ = true;
    out.max_key_count_ = counts.back();
    keys.pop_back();
    counts.pop_back();
  }

  out.size_ = keys.size() + (out.has_max_key_ ? 1 : 0);
  const std::size_t blocks = (keys.size() + kBlock - 1) / kBlock;
  out.keys_.assign(blocks * kBlock, kPad);
  out.counts_.assign(blocks * kBlock, 0);
  TreeBuilder builder{keys, counts, out.keys_, out.counts_, blocks};
  builder.fill(0);
  assert(builder.next == keys.size());
  out.charge_.set(out.memory_bytes());
  return out;
}

std::optional<std::uint32_t> CacheAwareCountArray::find(
    std::uint64_t key) const {
  if (key == kPad) {
    if (has_max_key_) return max_key_count_;
    return std::nullopt;
  }
  const std::size_t blocks = keys_.size() / kBlock;
  std::size_t node = 0;
  while (node < blocks) {
    const std::uint64_t* block = keys_.data() + node * kBlock;
    // In-block scan: find the first slot with block[slot] >= key. Padding
    // slots hold kPad, which is greater than every real key.
    int slot = 0;
    while (slot < kBlock && block[slot] < key) ++slot;
    if (slot < kBlock && block[slot] == key) {
      return counts_[node * kBlock + static_cast<std::size_t>(slot)];
    }
    node = node * (kBlock + 1) + 1 + static_cast<std::size_t>(slot);
  }
  return std::nullopt;
}

}  // namespace reptile::hash
