#pragma once
// Hash functions shared by the spectrum tables and the ownership mapping.
//
// The paper relies on "the inbuilt hashing function of the C++ standard
// templates library" and observes that it spreads k-mers and tiles within
// 1-2% across ranks. libstdc++'s std::hash<uint64_t> is the identity, which
// would make `id % np` catastrophically non-uniform for DNA k-mer IDs, so we
// use a proper 64-bit finalizer (the MurmurHash3 fmix64 avalanche) and the
// classic FNV-1a for byte strings. Both are deterministic across platforms,
// which keeps ownership assignments reproducible.

#include <cstdint>
#include <string_view>

namespace reptile::hash {

/// MurmurHash3 fmix64 finalizer: a full-avalanche 64-bit mixer. Bijective,
/// so distinct k-mer IDs never collide at this stage.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDull;
  x ^= x >> 33;
  x *= 0xC4CEB9FE1A85EC53ull;
  x ^= x >> 33;
  return x;
}

/// FNV-1a over a byte string; used to hash read sequences for the static
/// load-balancing redistribution (paper Section III-A).
constexpr std::uint64_t fnv1a(std::string_view bytes) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Hash functor for packed k-mer/tile IDs, usable as a table policy.
struct Mix64Hash {
  constexpr std::uint64_t operator()(std::uint64_t x) const noexcept {
    return mix64(x);
  }
};

/// Owning rank of a k-mer or tile ID: the paper's
/// `hashFunction(kmer) % np == p` (Section III, Step II).
constexpr int owner_of(std::uint64_t id, int nranks) noexcept {
  return static_cast<int>(mix64(id) % static_cast<std::uint64_t>(nranks));
}

/// Owning rank of a read sequence, used by the static load balancer: "a
/// sequence is designated to be owned by a rank p if
/// hashFunction(seq) % np == p" (Section III-A).
constexpr int owner_of_sequence(std::string_view bases, int nranks) noexcept {
  return static_cast<int>(fnv1a(bases) % static_cast<std::uint64_t>(nranks));
}

}  // namespace reptile::hash
