#pragma once
// Open-addressing counting hash table for the k-mer and tile spectra.
//
// The paper stores both spectra "in hash tables instead of arrays; this
// prevents any need for sorting the arrays or for repeated binary searches"
// (Section II-B contrast with Jammula et al.). This table is the structure
// behind hashKmer/readsKmer/hashTile/readsTile.
//
// Implementation: robin-hood hashing on power-of-two capacity, with an
// 8-bit probe-distance array (0 = empty slot), flat key and count arrays
// (no per-node allocation), backward-shift deletion, and exact
// memory-footprint accounting — the paper's evaluation tracks MB/rank, so
// the table must be able to report its own bytes.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "hash/hashing.hpp"
#include "obs/ledger.hpp"

namespace reptile::hash {

/// Counting map keyed by packed 64-bit IDs.
///
/// Count is saturating at its numeric maximum (frequencies beyond the
/// threshold scale never matter to Reptile).
template <class Count = std::uint32_t, class Hash = Mix64Hash>
class CountTable {
 public:
  using key_type = std::uint64_t;
  using count_type = Count;

  /// Creates a table with capacity for at least `expected` entries before
  /// the first rehash.
  explicit CountTable(std::size_t expected = 0) { rehash_for(expected); }

  // Move-only: the ledger charge is an ownership handle (moves carry the
  // charged balance to the new table; see obs/ledger.hpp).
  CountTable(CountTable&&) noexcept = default;
  CountTable& operator=(CountTable&&) noexcept = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t capacity() const noexcept { return cap_; }

  /// Current heap footprint in bytes (slot arrays only; the object header
  /// is negligible). Used for the paper's per-rank memory accounting.
  /// Reads the ledger charge, which every (re)size keeps equal to
  /// cap_ * (key + count + probe) — one source of truth for the byte bill.
  std::size_t memory_bytes() const noexcept {
    return static_cast<std::size_t>(charge_.recorded());
  }

  /// Re-attributes this table's bytes to a different ledger account —
  /// e.g. RemoteSpectrumView's prefetch caches bill remote_cache, not
  /// count_table. The current balance follows the handle.
  void bind_ledger_account(obs::LedgerAccount account) {
    charge_.bind(account);
  }

  /// Adds `delta` to the count of `key`, inserting it when absent.
  /// Returns the new count.
  count_type increment(key_type key, count_type delta = 1) {
    if ((size_ + 1) * 8 >= cap_ * 7) rehash_for(size_ * 2 + 8);
    while (true) {
      const auto r = try_increment(key, delta);
      if (r) return *r;
      // Probe distance overflowed its 8-bit budget: grow and retry.
      rehash_for(cap_);
    }
  }

  /// Count of `key`, or std::nullopt when absent.
  std::optional<count_type> find(key_type key) const {
    if (cap_ == 0) return std::nullopt;
    std::size_t slot = index_of(key);
    std::uint8_t dist = 1;
    while (true) {
      const std::uint8_t d = probe_[slot];
      if (d == 0 || d < dist) return std::nullopt;
      if (d == dist && keys_[slot] == key) return counts_[slot];
      slot = (slot + 1) & mask_;
      ++dist;
      if (dist == 0) return std::nullopt;  // wrapped: cannot exist
    }
  }

  bool contains(key_type key) const { return find(key).has_value(); }

  /// Removes `key`; returns true when it was present.
  bool erase(key_type key) {
    if (cap_ == 0) return false;
    std::size_t slot = index_of(key);
    std::uint8_t dist = 1;
    while (true) {
      const std::uint8_t d = probe_[slot];
      if (d == 0 || d < dist) return false;
      if (d == dist && keys_[slot] == key) break;
      slot = (slot + 1) & mask_;
      ++dist;
      if (dist == 0) return false;
    }
    // Backward-shift deletion keeps probe distances tight.
    std::size_t next = (slot + 1) & mask_;
    while (probe_[next] > 1) {
      keys_[slot] = keys_[next];
      counts_[slot] = counts_[next];
      probe_[slot] = static_cast<std::uint8_t>(probe_[next] - 1);
      slot = next;
      next = (next + 1) & mask_;
    }
    probe_[slot] = 0;
    --size_;
    return true;
  }

  /// Drops every entry whose count is strictly below `threshold` (the
  /// paper's Step III pruning). Returns the number of entries removed.
  std::size_t prune_below(count_type threshold) {
    // Rebuild into a fresh table: simpler and cache-friendlier than chained
    // backward-shift erasure over a full scan.
    CountTable kept(size_);
    std::size_t removed = 0;
    for (std::size_t i = 0; i < cap_; ++i) {
      if (probe_[i] == 0) continue;
      if (counts_[i] >= threshold) {
        kept.increment(keys_[i], counts_[i]);
      } else {
        ++removed;
      }
    }
    *this = std::move(kept);
    return removed;
  }

  /// Applies `fn(key, count)` to every entry (unspecified order).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < cap_; ++i) {
      if (probe_[i] != 0) fn(keys_[i], counts_[i]);
    }
  }

  /// Extracts all entries as a vector of pairs (unspecified order);
  /// convenience for the alltoallv exchange code.
  std::vector<std::pair<key_type, count_type>> entries() const {
    std::vector<std::pair<key_type, count_type>> out;
    out.reserve(size_);
    for_each([&](key_type k, count_type c) { out.emplace_back(k, c); });
    return out;
  }

  /// Removes all entries, releasing slot storage (the batch-reads-table
  /// heuristic empties the reads tables after every chunk).
  void clear() {
    keys_.clear();
    keys_.shrink_to_fit();
    counts_.clear();
    counts_.shrink_to_fit();
    probe_.clear();
    probe_.shrink_to_fit();
    cap_ = 0;
    mask_ = 0;
    size_ = 0;
    charge_.set(0);
  }

 private:
  std::size_t index_of(key_type key) const noexcept {
    return Hash{}(key) & mask_;
  }

  /// Robin-hood insert-or-increment; returns nullopt when the required
  /// probe distance would exceed the 8-bit budget (caller grows the table).
  std::optional<count_type> try_increment(key_type key, count_type delta) {
    key_type k = key;
    count_type c = delta;
    std::size_t slot = index_of(key);
    std::uint8_t dist = 1;
    bool carrying_original = true;  // still looking for `key` itself
    count_type result = 0;
    while (true) {
      const std::uint8_t d = probe_[slot];
      if (d == 0) {
        keys_[slot] = k;
        counts_[slot] = c;
        probe_[slot] = dist;
        ++size_;
        return carrying_original ? c : result;
      }
      if (carrying_original && d == dist && keys_[slot] == key) {
        const count_type room =
            std::numeric_limits<count_type>::max() - counts_[slot];
        counts_[slot] += (delta < room ? delta : room);
        return counts_[slot];
      }
      if (d < dist) {
        // Rob the rich: swap the carried entry with the resident one.
        std::swap(k, keys_[slot]);
        std::swap(c, counts_[slot]);
        std::swap(dist, probe_[slot]);
        if (carrying_original) {
          // The original (key, delta) just landed in this slot; from here on
          // we are only re-homing displaced residents.
          carrying_original = false;
          result = delta;
        }
      }
      slot = (slot + 1) & mask_;
      ++dist;
      if (dist == 0) return std::nullopt;  // 8-bit probe budget exhausted
    }
  }

  void rehash_for(std::size_t expected) {
    std::size_t want = 16;
    while (want * 7 < (expected + 1) * 8) want *= 2;  // keep load <= 7/8
    if (want <= cap_ && size_ != 0) want = cap_ * 2;
    std::vector<key_type> old_keys = std::move(keys_);
    std::vector<count_type> old_counts = std::move(counts_);
    std::vector<std::uint8_t> old_probe = std::move(probe_);
    const std::size_t old_cap = cap_;

    keys_.assign(want, 0);
    counts_.assign(want, 0);
    probe_.assign(want, 0);
    cap_ = want;
    mask_ = want - 1;
    size_ = 0;
    charge_.set(
        cap_ * (sizeof(key_type) + sizeof(count_type) + sizeof(std::uint8_t)));
    for (std::size_t i = 0; i < old_cap; ++i) {
      if (old_probe[i] != 0) increment(old_keys[i], old_counts[i]);
    }
  }

  std::vector<key_type> keys_;
  std::vector<count_type> counts_;
  std::vector<std::uint8_t> probe_;
  std::size_t cap_ = 0;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  obs::LedgerCharge charge_{obs::LedgerAccount::kCountTable};
};

}  // namespace reptile::hash
