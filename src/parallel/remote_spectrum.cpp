#include "parallel/remote_spectrum.hpp"

#include "hash/hashing.hpp"

namespace reptile::parallel {

RemoteSpectrumView::RemoteSpectrumView(rtm::Comm& comm, DistSpectrum& spectrum,
                                       int worker_slot)
    : comm_(&comm),
      spectrum_(&spectrum),
      heur_(spectrum.heuristics()),
      worker_slot_(worker_slot) {}

std::uint32_t RemoteSpectrumView::remote_lookup(int owner, std::uint64_t id,
                                                LookupKind kind) {
  const int reply_to = reply_tag(kind, worker_slot_);
  comm_wait_.start();
  if (heur_.universal) {
    UniversalLookupRequest req;
    req.kind = kind;
    req.id = id;
    req.reply_to = reply_to;
    comm_->send_value(owner, kTagUniversalRequest, req);
  } else {
    LookupRequest req;
    req.id = id;
    req.reply_to = reply_to;
    comm_->send_value(
        owner, kind == LookupKind::kKmer ? kTagKmerRequest : kTagTileRequest,
        req);
  }
  const rtm::Message msg = comm_->recv(owner, reply_to);
  comm_wait_.stop();
  const auto reply = msg.as_value<LookupReply>();

  if (kind == LookupKind::kKmer) {
    ++remote_.remote_kmer_lookups;
    if (reply.count < 0) ++remote_.remote_kmer_absent;
  } else {
    ++remote_.remote_tile_lookups;
    if (reply.count < 0) ++remote_.remote_tile_absent;
  }
  const std::uint32_t count =
      reply.count < 0 ? 0 : static_cast<std::uint32_t>(reply.count);
  if (heur_.add_remote) {
    // Cache the reply — absences included — so a future lookup of the same
    // ID stays local ("this mode will be useful if the k-mers or tiles
    // needed from remote ranks will be needed in the future").
    if (kind == LookupKind::kKmer) {
      spectrum_->cache_remote_kmer(id, count);
    } else {
      spectrum_->cache_remote_tile(id, count);
    }
  }
  return count;
}

std::uint32_t RemoteSpectrumView::lookup(std::uint64_t id, LookupKind kind) {
  const bool is_kmer = kind == LookupKind::kKmer;

  if (is_kmer ? heur_.allgather_kmers : heur_.allgather_tiles) {
    const auto c = is_kmer ? spectrum_->replica_kmer(id)
                           : spectrum_->replica_tile(id);
    return c.value_or(0);
  }

  const int owner = hash::owner_of(id, comm_->size());
  if (owner == comm_->rank()) {
    // We are the owner: a miss in our shard is a definitive global absence.
    const auto c = is_kmer ? spectrum_->owned_kmer(id)
                           : spectrum_->owned_tile(id);
    return c.value_or(0);
  }

  if (spectrum_->owner_in_my_group(owner)) {
    // Partial replication: we hold the owner's shard; a miss is definitive.
    ++remote_.group_lookups;
    const auto c = is_kmer ? spectrum_->group_kmer(id)
                           : spectrum_->group_tile(id);
    return c.value_or(0);
  }

  if (heur_.read_kmers) {
    const auto c = is_kmer ? spectrum_->reads_kmer(id)
                           : spectrum_->reads_tile(id);
    if (c) {
      ++remote_.reads_table_hits;
      return *c;
    }
  }

  return remote_lookup(owner, id, kind);
}

std::uint32_t RemoteSpectrumView::kmer_count(seq::kmer_id_t id) {
  ++stats_.kmer_lookups;
  const std::uint32_t c =
      lookup(spectrum_->extractor().canon_kmer(id), LookupKind::kKmer);
  if (c == 0) ++stats_.kmer_misses;
  return c;
}

std::uint32_t RemoteSpectrumView::tile_count(seq::tile_id_t id) {
  ++stats_.tile_lookups;
  const std::uint32_t c =
      lookup(spectrum_->extractor().canon_tile(id), LookupKind::kTile);
  if (c == 0) ++stats_.tile_misses;
  return c;
}

}  // namespace reptile::parallel
