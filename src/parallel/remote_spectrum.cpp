#include "parallel/remote_spectrum.hpp"

#include <algorithm>
#include <chrono>
#include <optional>

#include "hash/hashing.hpp"
#include "obs/trace.hpp"
#include "parallel/wire.hpp"

namespace reptile::parallel {

RemoteSpectrumView::RemoteSpectrumView(rtm::Comm& comm, DistSpectrum& spectrum,
                                       int worker_slot,
                                       bool cache_remote_locally,
                                       RetryPolicy retry,
                                       const Heuristics* heur_override)
    : comm_(&comm),
      spectrum_(&spectrum),
      heur_(heur_override == nullptr ? spectrum.heuristics() : *heur_override),
      worker_slot_(worker_slot),
      cache_remote_locally_(cache_remote_locally),
      retry_(retry) {
  retry_.validate();
  // Prefetch caches hold verbatim remote replies, not spectrum shards —
  // bill them to the remote_cache ledger account.
  prefetch_kmer_.bind_ledger_account(obs::LedgerAccount::kRemoteCache);
  prefetch_tile_.bind_ledger_account(obs::LedgerAccount::kRemoteCache);
}

void RemoteSpectrumView::cache_local(std::uint64_t id, LookupKind kind,
                                     std::uint32_t count) {
  const std::size_t cap = spectrum_->params().prefetch_capacity;
  if (prefetch_kmer_.size() + prefetch_tile_.size() >= cap) return;
  if (kind == LookupKind::kKmer) {
    prefetch_kmer_.increment(id, count);
  } else {
    prefetch_tile_.increment(id, count);
  }
}

obs::Histogram* RemoteSpectrumView::latency_histogram(const char* name,
                                                      obs::Histogram*& slot,
                                                      bool& resolved) {
  if (!resolved) {
    resolved = true;
    slot = obs::Registry::global().histogram(name, comm_->rank());
  }
  return slot;
}

bool RemoteSpectrumView::needs_remote(std::uint64_t id, LookupKind kind,
                                      int& owner) const {
  const bool is_kmer = kind == LookupKind::kKmer;
  if (is_kmer ? heur_.allgather_kmers : heur_.allgather_tiles) return false;
  owner = hash::owner_of(id, comm_->size());
  if (owner == comm_->rank()) return false;
  if (spectrum_->owner_in_my_group(owner)) return false;
  if (heur_.read_kmers) {
    const auto c = is_kmer ? spectrum_->reads_kmer(id)
                           : spectrum_->reads_tile(id);
    if (c) return false;
  }
  return true;
}

void RemoteSpectrumView::prefetch_chunk(const seq::ReadBatch& batch) {
  if (!heur_.batch_lookups) return;
  prefetch_kmer_.clear();
  prefetch_tile_.clear();
  const int np = comm_->size();
  if (np <= 1 || heur_.fully_replicated()) return;

  kmer_scratch_.clear();
  tile_scratch_.clear();
  for (const seq::Read& r : batch) {
    spectrum_->extractor().extract(r.bases, kmer_scratch_, tile_scratch_);
  }

  // Filter to the remote-needing IDs, dedupe (the cache doubles as the
  // seen-set: a sentinel entry marks "requested, reply pending" and is
  // overwritten — CountTable::increment — by the real count on arrival).
  // Buckets hold each owner's deduped ID vector.
  const std::size_t cap = spectrum_->params().prefetch_capacity;
  std::vector<std::vector<std::uint64_t>> kmer_buckets(
      static_cast<std::size_t>(np));
  std::vector<std::vector<std::uint64_t>> tile_buckets(
      static_cast<std::size_t>(np));
  hash::CountTable<> seen_kmer;
  hash::CountTable<> seen_tile;
  std::size_t total = 0;
  auto collect = [&](std::uint64_t id, LookupKind kind) {
    int owner = 0;
    if (!needs_remote(id, kind, owner)) return;
    if (heur_.filter_lookups) {
      // Filter-definite absences never reach the wire; lookup() answers
      // them (and counts filter_neg_hits) from the same immutable filter.
      // Skipped before the raw counter so dedup_ratio keeps measuring
      // dedup alone, unchanged by filtering.
      const auto fa = kind == LookupKind::kKmer
                          ? spectrum_->filter_kmer(id, owner)
                          : spectrum_->filter_tile(id, owner);
      if (fa == DistSpectrum::FilterAnswer::kDefinitelyAbsent) return;
    }
    if (kind == LookupKind::kKmer) {
      ++remote_.batch_kmer_ids_raw;
    } else {
      ++remote_.batch_tile_ids_raw;
    }
    if (total >= cap) return;  // bound the chunk cache; rest go scalar
    auto& seen = kind == LookupKind::kKmer ? seen_kmer : seen_tile;
    if (seen.contains(id)) return;
    seen.increment(id);
    auto& buckets = kind == LookupKind::kKmer ? kmer_buckets : tile_buckets;
    buckets[static_cast<std::size_t>(owner)].push_back(id);
    ++total;
  };
  for (seq::kmer_id_t id : kmer_scratch_) collect(id, LookupKind::kKmer);
  for (seq::tile_id_t id : tile_scratch_) collect(id, LookupKind::kTile);
  if (total == 0) return;

  // One vectored request per owner per kind, all sent before any reply is
  // awaited so the owners' communication threads overlap their work.
  struct Pending {
    int owner;
    LookupKind kind;
    const std::vector<std::uint64_t>* ids;
    std::uint64_t seq;
  };
  std::vector<Pending> pending;
  obs::SpanScope span("lookup", "batch_prefetch");
  const std::int64_t prefetch_start = obs::Tracer::instance().now_ns();
  const auto send_batch = [&](const Pending& p) {
    // Zero-copy request: encode the header + ID vector straight into an
    // arena payload and transfer ownership — no scratch vector, no send
    // copy.
    rtm::Payload payload =
        comm_->make_payload(batch_request_bytes(p.ids->size()));
    encode_batch_request_into(payload.data(), p.kind,
                              batch_reply_tag(p.kind, worker_slot_),
                              std::span<const std::uint64_t>(p.ids->data(),
                                                             p.ids->size()),
                              p.seq);
    comm_->send_payload(p.owner, kTagBatchRequest, std::move(payload));
    // Links this request to its handling on p.owner's comm thread; the
    // service derives the same id from the wire fields alone.
    obs::Tracer::instance().flow_start(
        "flow", "batch",
        obs::flow_id(comm_->rank(), batch_reply_tag(p.kind, worker_slot_),
                     p.seq));
  };
  auto send_buckets = [&](const std::vector<std::vector<std::uint64_t>>& bks,
                          LookupKind kind) {
    for (int owner = 0; owner < np; ++owner) {
      const auto& ids = bks[static_cast<std::size_t>(owner)];
      if (ids.empty()) continue;
      pending.push_back({owner, kind, &ids, next_seq_++});
      send_batch(pending.back());
      ++remote_.batch_requests;
      if (kind == LookupKind::kKmer) {
        remote_.batch_kmer_ids += ids.size();
      } else {
        remote_.batch_tile_ids += ids.size();
      }
    }
  };
  send_buckets(kmer_buckets, LookupKind::kKmer);
  send_buckets(tile_buckets, LookupKind::kTile);
  span.arg("requests", pending.size());
  span.arg("ids", total);

  rtm::check::RunChecker* check = comm_->world().checker();
  comm_wait_.start();
  for (const Pending& p : pending) {
    const int tag = batch_reply_tag(p.kind, worker_slot_);
    // Validates and consumes one candidate reply; false = not ours (stale
    // retransmission leftovers, malformed bytes), keep waiting.
    const auto consume = [&](const rtm::Message& msg) {
      BatchLookupReply reply;
      try {
        reply = decode_batch_reply(msg.payload);
      } catch (const std::runtime_error&) {
        ++remote_.malformed_replies;
        return false;
      }
      if (reply.seq != p.seq) {
        ++remote_.stale_replies_suppressed;
        return false;
      }
      if (reply.counts.size() != p.ids->size()) {
        throw std::runtime_error(
            "batched lookup reply length does not match the request");
      }
      for (std::size_t i = 0; i < reply.counts.size(); ++i) {
        const std::uint32_t c = reply.counts[i] < 0
                                    ? 0
                                    : static_cast<std::uint32_t>(
                                          reply.counts[i]);
        if (heur_.filter_lookups && reply.counts[i] < 0) {
          // Every batched ID the filter let through that the owner reports
          // absent was a wasted wire slot: a filter false positive. (IDs
          // with no usable filter don't count — there was nothing to ask.)
          const auto fa = p.kind == LookupKind::kKmer
                              ? spectrum_->filter_kmer((*p.ids)[i], p.owner)
                              : spectrum_->filter_tile((*p.ids)[i], p.owner);
          if (fa == DistSpectrum::FilterAnswer::kMaybePresent) {
            ++remote_.filter_false_positives;
          }
        }
        if (p.kind == LookupKind::kKmer) {
          prefetch_kmer_.increment((*p.ids)[i], c);
        } else {
          prefetch_tile_.increment((*p.ids)[i], c);
        }
      }
      return true;
    };

    if (!retry_.enabled()) {
      while (!consume(comm_->recv(p.owner, tag))) {
      }
      continue;
    }
    bool got = false;
    for (int attempt = 0; !got; ++attempt) {
      if (attempt > 0) {
        ++remote_.batch_retries;
        send_batch(p);
      }
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(retry_.attempt_timeout_us(attempt));
      while (!got) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        const auto msg = comm_->recv_match_for(
            [&](const rtm::Message& m) {
              return m.source == p.owner && m.tag == tag;
            },
            deadline - now);
        if (!msg) {
          if (check != nullptr && check->aborted()) {
            comm_wait_.stop();
            check->throw_abort();
          }
          continue;  // either the deadline passed or a spurious wake
        }
        got = consume(*msg);
      }
      if (got) break;
      ++remote_.lookup_timeouts;
      if (attempt >= retry_.max_retries) {
        // Abandon this batch: its IDs simply miss the prefetch cache and
        // fall through to the (individually retried) scalar path.
        ++remote_.batch_abandoned;
        break;
      }
    }
  }
  comm_wait_.stop();
  if (obs::Histogram* h = latency_histogram("reptile_batch_prefetch_us",
                                            batch_hist_,
                                            batch_hist_resolved_)) {
    h->record(static_cast<std::uint64_t>(
        std::max<std::int64_t>(
            obs::Tracer::instance().now_ns() - prefetch_start, 0) /
        1000));
  }
}

std::uint32_t RemoteSpectrumView::remote_lookup(int owner, std::uint64_t id,
                                                LookupKind kind,
                                                bool filter_said_maybe) {
  const int reply_to = reply_tag(kind, worker_slot_);
  const std::uint64_t seq = next_seq_++;
  // One scalar round trip = one span; retransmissions stay inside it.
  obs::SpanScope span("lookup", "lookup_rtt");
  span.arg("owner", static_cast<std::uint64_t>(owner));
  const std::int64_t rtt_start = obs::Tracer::instance().now_ns();
  const auto send_request = [&] {
    obs::Tracer::instance().flow_start("flow", "lookup",
                                       obs::flow_id(comm_->rank(), reply_to,
                                                    seq));
    if (heur_.universal) {
      UniversalLookupRequest req;
      req.kind = kind;
      req.id = id;
      req.reply_to = reply_to;
      req.seq = seq;
      comm_->send_value(owner, kTagUniversalRequest, req);
    } else {
      LookupRequest req;
      req.id = id;
      req.seq = seq;
      req.reply_to = reply_to;
      comm_->send_value(
          owner,
          kind == LookupKind::kKmer ? kTagKmerRequest : kTagTileRequest, req);
    }
  };
  // Validates one candidate reply; nullopt = not ours (duplicate or stale
  // retransmission leftovers, truncated bytes), keep waiting. Runs even
  // with retries disabled: a chaos-duplicated reply must never be read as
  // the answer to the NEXT lookup on this tag.
  const auto consume =
      [&](const rtm::Message& msg) -> std::optional<LookupReply> {
    if (msg.payload.size() != sizeof(LookupReply)) {
      ++remote_.malformed_replies;
      return std::nullopt;
    }
    const auto r = msg.as_value<LookupReply>();
    if (r.seq != seq) {
      ++remote_.stale_replies_suppressed;
      return std::nullopt;
    }
    return r;
  };

  comm_wait_.start();
  std::optional<LookupReply> reply;
  if (!retry_.enabled()) {
    send_request();
    while (!reply) reply = consume(comm_->recv(owner, reply_to));
  } else {
    rtm::check::RunChecker* check = comm_->world().checker();
    for (int attempt = 0; !reply; ++attempt) {
      if (attempt > 0) ++remote_.lookup_retries;
      send_request();  // idempotent: every attempt carries the same seq
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(retry_.attempt_timeout_us(attempt));
      while (!reply) {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) break;
        const auto msg = comm_->recv_match_for(
            [&](const rtm::Message& m) {
              return m.source == owner && m.tag == reply_to;
            },
            deadline - now);
        if (!msg) {
          if (check != nullptr && check->aborted()) {
            comm_wait_.stop();
            check->throw_abort();
          }
          continue;  // either the deadline passed or a spurious wake
        }
        reply = consume(*msg);
      }
      if (reply) break;
      ++remote_.lookup_timeouts;
      if (attempt >= retry_.max_retries) {
        // Graceful degradation: give up on this ID and report a
        // conservative 0 WITHOUT caching it anywhere. The bump of
        // degraded_lookups() tells the corrector the evidence is
        // incomplete, so it skips the position instead of acting on it.
        comm_wait_.stop();
        if (kind == LookupKind::kKmer) {
          ++remote_.remote_kmer_lookups;
        } else {
          ++remote_.remote_tile_lookups;
        }
        ++remote_.degraded_lookups;
        return 0;
      }
    }
  }
  comm_wait_.stop();
  if (obs::Histogram* h = latency_histogram("reptile_lookup_rtt_us",
                                            rtt_hist_, rtt_hist_resolved_)) {
    h->record(static_cast<std::uint64_t>(
        std::max<std::int64_t>(
            obs::Tracer::instance().now_ns() - rtt_start, 0) /
        1000));
  }

  if (kind == LookupKind::kKmer) {
    ++remote_.remote_kmer_lookups;
    if (reply->count < 0) ++remote_.remote_kmer_absent;
  } else {
    ++remote_.remote_tile_lookups;
    if (reply->count < 0) ++remote_.remote_tile_absent;
  }
  if (filter_said_maybe && reply->count < 0) {
    // The peer filter let this ID through and the owner reports it absent:
    // a false positive — the round trip the filter exists to avoid.
    ++remote_.filter_false_positives;
  }
  const std::uint32_t count =
      reply->count < 0 ? 0 : static_cast<std::uint32_t>(reply->count);
  if (heur_.add_remote) {
    // Cache the reply — absences included — so a future lookup of the same
    // ID stays local ("this mode will be useful if the k-mers or tiles
    // needed from remote ranks will be needed in the future"). With
    // concurrent workers the shared reads tables are off limits, so the
    // reply lands in this worker's chunk-local cache instead.
    if (cache_remote_locally_) {
      cache_local(id, kind, count);
    } else if (kind == LookupKind::kKmer) {
      spectrum_->cache_remote_kmer(id, count);
    } else {
      spectrum_->cache_remote_tile(id, count);
    }
  }
  return count;
}

std::uint32_t RemoteSpectrumView::lookup(std::uint64_t id, LookupKind kind) {
  const bool is_kmer = kind == LookupKind::kKmer;

  if (is_kmer ? heur_.allgather_kmers : heur_.allgather_tiles) {
    const auto c = is_kmer ? spectrum_->replica_kmer(id)
                           : spectrum_->replica_tile(id);
    return c.value_or(0);
  }

  const int owner = hash::owner_of(id, comm_->size());
  if (owner == comm_->rank()) {
    // We are the owner: a miss in our shard is a definitive global absence.
    const auto c = is_kmer ? spectrum_->owned_kmer(id)
                           : spectrum_->owned_tile(id);
    return c.value_or(0);
  }

  if (spectrum_->owner_in_my_group(owner)) {
    // Partial replication: we hold the owner's shard; a miss is definitive.
    ++remote_.group_lookups;
    const auto c = is_kmer ? spectrum_->group_kmer(id)
                           : spectrum_->group_tile(id);
    return c.value_or(0);
  }

  if (heur_.read_kmers) {
    const auto c = is_kmer ? spectrum_->reads_kmer(id)
                           : spectrum_->reads_tile(id);
    if (c) {
      ++remote_.reads_table_hits;
      return *c;
    }
  }

  bool filter_said_maybe = false;
  if (heur_.filter_lookups) {
    // The owner's exchanged membership filter. "Definitely absent" is
    // exact: the owner's pruned shard cannot contain the ID, so the wire
    // reply would be -1 and the count 0 — answer locally. Checked before
    // the prefetch cache so the filter/prefetch counters stay identical
    // between scalar and batched runs (prefetch_chunk excluded
    // filter-definite IDs with the same immutable filter).
    const auto fa = is_kmer ? spectrum_->filter_kmer(id, owner)
                            : spectrum_->filter_tile(id, owner);
    if (fa == DistSpectrum::FilterAnswer::kDefinitelyAbsent) {
      ++remote_.filter_neg_hits;
      return 0;
    }
    filter_said_maybe = fa == DistSpectrum::FilterAnswer::kMaybePresent;
  }

  if (heur_.batch_lookups || cache_remote_locally_) {
    // Chunk-local prefetch cache: counts are verbatim remote replies, so a
    // hit is exactly what the scalar round trip would have returned.
    const auto c = is_kmer ? prefetch_kmer_.find(id) : prefetch_tile_.find(id);
    if (c) {
      ++remote_.prefetch_hits;
      return *c;
    }
    ++remote_.prefetch_misses;
  }

  return remote_lookup(owner, id, kind, filter_said_maybe);
}

std::uint32_t RemoteSpectrumView::kmer_count(seq::kmer_id_t id) {
  ++stats_.kmer_lookups;
  const std::uint32_t c =
      lookup(spectrum_->extractor().canon_kmer(id), LookupKind::kKmer);
  if (c == 0) ++stats_.kmer_misses;
  return c;
}

std::uint32_t RemoteSpectrumView::tile_count(seq::tile_id_t id) {
  ++stats_.tile_lookups;
  const std::uint32_t c =
      lookup(spectrum_->extractor().canon_tile(id), LookupKind::kTile);
  if (c == 0) ++stats_.tile_misses;
  return c;
}

}  // namespace reptile::parallel
