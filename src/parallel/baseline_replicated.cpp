#include "parallel/baseline_replicated.hpp"

#include <algorithm>
#include <thread>

#include "core/corrector.hpp"
#include "core/spectrum.hpp"
#include "hash/count_table.hpp"
#include "rtm/comm.hpp"
#include "stats/stopwatch.hpp"

namespace reptile::parallel {

namespace {

// Work-queue protocol tags (disjoint from the lookup protocol's).
constexpr int kTagWorkRequest = 31;
constexpr int kTagWorkGrant = 32;

/// One grant from the master: the half-open read-index range [begin, end).
/// begin == end means the queue is exhausted.
struct WorkGrant {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
};
static_assert(std::is_trivially_copyable_v<WorkGrant>);

/// Full spectrum replica with canonical-aware lookups.
class ReplicatedSpectrum final : public core::SpectrumView {
 public:
  ReplicatedSpectrum(const core::CorrectorParams& params)
      : extractor_(params), params_(params) {}

  /// Step II over this rank's slice: local (canonical) counts.
  void add_read(std::string_view bases) {
    kmer_scratch_.clear();
    tile_scratch_.clear();
    extractor_.extract(bases, kmer_scratch_, tile_scratch_);
    for (auto id : kmer_scratch_) kmers_.increment(id);
    for (auto id : tile_scratch_) tiles_.increment(id);
  }

  /// Replication: allgather every rank's local counts and merge — after
  /// this, each rank holds the full global spectrum.
  void replicate(rtm::Comm& comm) {
    auto merge = [&comm](hash::CountTable<>& table) {
      struct IdCount {
        std::uint64_t id;
        std::uint32_t count;
      };
      std::vector<IdCount> flat;
      flat.reserve(table.size());
      table.for_each([&flat](std::uint64_t id, std::uint32_t c) {
        flat.push_back({id, c});
      });
      const auto all =
          comm.allgatherv(std::span<const IdCount>(flat.data(), flat.size()));
      hash::CountTable<> merged(all.size());
      for (const auto& e : all) merged.increment(e.id, e.count);
      table = std::move(merged);
    };
    merge(kmers_);
    merge(tiles_);
  }

  void prune() {
    kmers_.prune_below(params_.kmer_threshold);
    tiles_.prune_below(params_.tile_threshold);
  }

  std::uint32_t kmer_count(seq::kmer_id_t id) override {
    ++stats_.kmer_lookups;
    const auto c = kmers_.find(extractor_.canon_kmer(id));
    if (!c) ++stats_.kmer_misses;
    return c.value_or(0);
  }
  std::uint32_t tile_count(seq::tile_id_t id) override {
    ++stats_.tile_lookups;
    const auto c = tiles_.find(extractor_.canon_tile(id));
    if (!c) ++stats_.tile_misses;
    return c.value_or(0);
  }
  const core::LookupStats& stats() const override { return stats_; }

  std::size_t memory_bytes() const noexcept {
    return kmers_.memory_bytes() + tiles_.memory_bytes();
  }

 private:
  core::SpectrumExtractor extractor_;
  core::CorrectorParams params_;
  hash::CountTable<> kmers_;
  hash::CountTable<> tiles_;
  core::LookupStats stats_;
  std::vector<seq::kmer_id_t> kmer_scratch_;
  std::vector<seq::tile_id_t> tile_scratch_;
};

/// The global master (a thread on rank 0): answers work requests with the
/// next chunk of read indices until the queue is empty, then hands every
/// rank one empty grant.
void run_master(rtm::Comm& comm, std::uint64_t total_reads,
                std::uint64_t chunk) {
  std::uint64_t next = 0;
  int retired = 0;
  while (retired < comm.size()) {
    const rtm::Message request = comm.recv(rtm::kAnySource, kTagWorkRequest);
    WorkGrant grant;
    if (next < total_reads) {
      grant.begin = next;
      grant.end = std::min(total_reads, next + chunk);
      next = grant.end;
    } else {
      ++retired;  // empty grant retires the requesting worker
    }
    comm.send_value(request.source, kTagWorkGrant, grant);
  }
}

}  // namespace

BaselineResult run_replicated_baseline(const std::vector<seq::Read>& reads,
                                       const BaselineConfig& config) {
  config.params.validate();

  std::vector<std::vector<seq::Read>> corrected_per_rank(
      static_cast<std::size_t>(config.ranks));
  std::vector<BaselineRankReport> reports(
      static_cast<std::size_t>(config.ranks));

  rtm::run_world(
      {config.ranks, config.ranks_per_node}, [&](rtm::Comm& comm) {
        const int rank = comm.rank();
        const int np = comm.size();
        BaselineRankReport report;
        report.rank = rank;

        // --- replicated spectrum construction --------------------------
        stats::Stopwatch clock;
        ReplicatedSpectrum spectrum(config.params);
        const std::size_t begin =
            reads.size() * static_cast<std::size_t>(rank) /
            static_cast<std::size_t>(np);
        const std::size_t end =
            reads.size() * static_cast<std::size_t>(rank + 1) /
            static_cast<std::size_t>(np);
        for (std::size_t i = begin; i < end; ++i) {
          spectrum.add_read(reads[i].bases);
        }
        spectrum.replicate(comm);
        spectrum.prune();
        report.construct_seconds = clock.seconds();
        report.spectrum_bytes = spectrum.memory_bytes();

        // --- dynamic master-worker correction ---------------------------
        std::thread master;
        if (rank == 0) {
          master = std::thread([&comm, &reads, &config] {
            run_master(comm, reads.size(), config.work_chunk);
          });
        }
        clock.restart();
        core::TileCorrector corrector(config.params);
        std::vector<seq::Read> corrected;
        while (true) {
          comm.send_value(0, kTagWorkRequest, std::uint32_t{0});
          const WorkGrant grant =
              comm.recv(0, kTagWorkGrant).as_value<WorkGrant>();
          if (grant.begin == grant.end) break;
          ++report.chunks_granted;
          for (std::uint64_t i = grant.begin; i < grant.end; ++i) {
            seq::Read read = reads[i];
            const auto rc = corrector.correct(read, spectrum);
            report.substitutions +=
                static_cast<std::uint64_t>(rc.substitutions);
            ++report.reads_processed;
            corrected.push_back(std::move(read));
          }
        }
        if (master.joinable()) master.join();
        report.correct_seconds = clock.seconds();
        comm.barrier();

        corrected_per_rank[static_cast<std::size_t>(rank)] =
            std::move(corrected);
        reports[static_cast<std::size_t>(rank)] = report;
      });

  BaselineResult result;
  result.ranks = std::move(reports);
  std::size_t total = 0;
  for (const auto& part : corrected_per_rank) total += part.size();
  result.corrected.reserve(total);
  for (auto& part : corrected_per_rank) {
    for (auto& r : part) result.corrected.push_back(std::move(r));
  }
  std::sort(result.corrected.begin(), result.corrected.end(),
            [](const seq::Read& a, const seq::Read& b) {
              return a.number < b.number;
            });
  return result;
}

}  // namespace reptile::parallel
