#pragma once
// The prior-art baseline: fully replicated spectrum with dynamic
// master-worker work allocation.
//
// Paper Section II-B describes the previous Reptile parallelizations this
// work supersedes: Shah et al. (2012) replicated the k-mer and tile
// spectrum per process; Jammula et al. (2015) replicated per node and used
// "a dynamic work allocation scheme that depends upon a global master which
// coordinates the entire work allocation mechanism ... The actual error
// correction is performed by worker threads ... who fetch chunks of
// sequences from the work-queue."
//
// This module implements that baseline so the paper's comparisons are
// runnable: every rank holds the whole (pruned) spectrum, correction does
// no spectrum communication at all, and reads are handed out dynamically by
// a master thread on rank 0 in fixed-size chunks. Output is bit-identical
// to the sequential pipeline (work allocation cannot change per-read
// decisions); what differs from the paper's approach is the memory
// footprint (full spectrum per rank — the very limitation the paper
// removes) and the load-balancing mechanism (demand-driven vs static
// hashing).

#include <cstdint>
#include <vector>

#include "core/params.hpp"
#include "seq/read.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::parallel {

struct BaselineConfig {
  core::CorrectorParams params;
  int ranks = 4;
  int ranks_per_node = 1;
  /// Reads per work-queue grant (the prior art's chunk size).
  std::size_t work_chunk = 200;
};

/// One rank's measurements: the shared stats::PhaseTimeline core plus the
/// work-queue fields specific to the dynamic-allocation scheme.
struct BaselineRankReport : stats::PhaseTimeline {
  int rank = 0;
  std::uint64_t chunks_granted = 0;   ///< non-empty grants received
  std::size_t spectrum_bytes = 0;     ///< full replicated spectrum
};

struct BaselineResult {
  std::vector<seq::Read> corrected;   ///< sorted by sequence number
  std::vector<BaselineRankReport> ranks;

  std::uint64_t total_substitutions() const {
    return stats::field_total(ranks, &stats::PhaseTimeline::substitutions);
  }
  std::uint64_t total_chunks() const {
    return stats::field_total(ranks, &BaselineRankReport::chunks_granted);
  }
};

/// Runs the replicated-spectrum baseline over the in-process runtime.
BaselineResult run_replicated_baseline(const std::vector<seq::Read>& reads,
                                       const BaselineConfig& config);

}  // namespace reptile::parallel
