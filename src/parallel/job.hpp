#pragma once
// Per-job configuration of a resident correction server (DESIGN.md §13).
//
// The rank-vs-job lifetime split (pipeline/context.hpp) pins which knobs a
// streamed job may override: anything the spectrum was built from — k,
// tile_overlap, the thresholds, canonical IDs, and the construction-phase
// heuristics (read_kmers, allgather_*, batch_reads, bloom_construction,
// partial_replication_group) — is RANK-lifetime and fixed at server start.
// Everything that only steers the correction phase is fair game per job:
// the corrector search knobs, chunking, the lookup-path heuristics
// (universal / batch_lookups / filter_lookups / add_remote), the retry
// policy, and the deadline. Every member is an optional: unset keeps the
// server's build-time value, so an empty JobOverrides reproduces a one-shot
// run bit for bit.

#include <cstddef>
#include <optional>
#include <stdexcept>

#include "core/params.hpp"
#include "parallel/heuristics.hpp"
#include "parallel/protocol.hpp"

namespace reptile::parallel {

/// Correction-phase overrides of one streamed job; unset = the server's
/// build-time value. Parsed from the config `job.*` namespace
/// (parallel/config_file.hpp) or filled programmatically per JobRequest.
struct JobOverrides {
  // --- corrector search knobs (core::CorrectorParams) -------------------
  std::optional<int> qual_threshold;
  std::optional<bool> restrict_to_low_quality;
  std::optional<int> max_positions_per_tile;
  std::optional<int> max_hamming;
  std::optional<double> dominance_ratio;
  std::optional<int> max_corrections_per_read;
  std::optional<std::size_t> chunk_size;
  std::optional<std::size_t> prefetch_capacity;

  // --- correction-phase lookup heuristics -------------------------------
  std::optional<bool> universal;
  std::optional<bool> batch_lookups;
  std::optional<bool> filter_lookups;
  std::optional<bool> add_remote;

  // --- SLO --------------------------------------------------------------
  /// Wall-clock budget for the job's correction phase, in seconds;
  /// unset/0 = no deadline. A job that blows it finishes conservatively
  /// (remaining reads pass through uncorrected) and is marked degraded.
  std::optional<double> deadline_seconds;
  /// Timeout/retry policy override for the job's remote lookups.
  std::optional<RetryPolicy> retry;

  bool any_set() const noexcept {
    return qual_threshold || restrict_to_low_quality ||
           max_positions_per_tile || max_hamming || dominance_ratio ||
           max_corrections_per_read || chunk_size || prefetch_capacity ||
           universal || batch_lookups || filter_lookups || add_remote ||
           deadline_seconds || retry;
  }

  /// The job's effective parameters: the build parameters with this job's
  /// overrides applied. Build-lifetime fields pass through untouched.
  core::CorrectorParams apply_to(const core::CorrectorParams& build) const {
    core::CorrectorParams p = build;
    if (qual_threshold) p.qual_threshold = *qual_threshold;
    if (restrict_to_low_quality) {
      p.restrict_to_low_quality = *restrict_to_low_quality;
    }
    if (max_positions_per_tile) {
      p.max_positions_per_tile = *max_positions_per_tile;
    }
    if (max_hamming) p.max_hamming = *max_hamming;
    if (dominance_ratio) p.dominance_ratio = *dominance_ratio;
    if (max_corrections_per_read) {
      p.max_corrections_per_read = *max_corrections_per_read;
    }
    if (chunk_size) p.chunk_size = *chunk_size;
    if (prefetch_capacity) p.prefetch_capacity = *prefetch_capacity;
    return p;
  }

  /// The job's effective heuristics: build heuristics with the correction-
  /// phase flags swapped. Construction-phase flags pass through untouched —
  /// the spectrum they shaped already exists.
  Heuristics apply_to(const Heuristics& build) const {
    Heuristics h = build;
    if (universal) h.universal = *universal;
    if (batch_lookups) h.batch_lookups = *batch_lookups;
    if (filter_lookups) h.filter_lookups = *filter_lookups;
    if (add_remote) h.add_remote = *add_remote;
    return h;
  }

  /// Validates the overrides against the server's build configuration;
  /// throws std::invalid_argument with the same messages a one-shot run of
  /// the effective config would produce, plus the serve-specific
  /// constraints (add_remote needs the build-time reads tables; concurrent
  /// workers with add_remote need batch_lookups).
  void validate(const core::CorrectorParams& build_params,
                const Heuristics& build_heur, int worker_threads) const {
    apply_to(build_params).validate();
    const Heuristics h = apply_to(build_heur);
    h.validate();  // catches add_remote without read_kmers
    if (h.add_remote && !build_heur.read_kmers) {
      throw std::invalid_argument(
          "job: add_remote needs the reads tables, which exist only when "
          "the server was built with heuristics.read_kmers");
    }
    if (worker_threads > 1 && h.add_remote && !h.batch_lookups) {
      throw std::invalid_argument(
          "job: add_remote with worker_threads > 1 requires batch_lookups "
          "(shared reads tables are not thread-safe to write)");
    }
    if (deadline_seconds && *deadline_seconds < 0.0) {
      throw std::invalid_argument("job: deadline_seconds must be >= 0");
    }
    if (retry) retry->validate();
  }
};

}  // namespace reptile::parallel
