#include "parallel/rebalance.hpp"

#include "hash/hashing.hpp"
#include "parallel/wire.hpp"

namespace reptile::parallel {

std::vector<seq::Read> rebalance_reads(rtm::Comm& comm,
                                       const std::vector<seq::Read>& mine) {
  const int np = comm.size();
  std::vector<std::vector<std::uint8_t>> buckets(
      static_cast<std::size_t>(np));
  for (const seq::Read& r : mine) {
    const int owner = hash::owner_of_sequence(r.bases, np);
    encode_read(r, buckets[static_cast<std::size_t>(owner)]);
  }
  const auto received = comm.alltoallv(buckets);
  std::vector<seq::Read> out;
  for (const auto& part : received) decode_reads(part, out);
  return out;
}

}  // namespace reptile::parallel
