#pragma once
// Correction-as-a-service: a resident server over the distributed pipeline
// (DESIGN.md §13).
//
// One-shot drivers pay spectrum construction (Steps I-III plus the filter
// exchange) on every run. CorrectionServer pays it once: the ranks build
// the sharded spectrum from a build dataset at construction and stay
// resident, streaming correction jobs through the rank-lifetime state
// (World, mailboxes, spectrum tables, owner filters) with only job-lifetime
// state (source, effective config, stats, output) cycled per job.
//
// Control plane: submitters enqueue into a bounded AdmissionQueue (submit
// blocks on backpressure, try_submit refuses). Rank 0 pops jobs and
// announces each to the peer ranks over the rtm wire (kTagJobAnnounce);
// every rank runs the job's LoadBalance -> Correct graph; peers acknowledge
// with kTagJobComplete; rank 0 merges, publishes job-labelled metrics, and
// fulfills the job's future. shutdown() closes the queue, drains what was
// admitted, then announces JobOp::kShutdown.
//
// SLO semantics: a job may carry a deadline; blowing it finishes the job
// conservatively (remaining reads pass through uncorrected, counted in
// reads_deadline_skipped) and marks the job degraded — it NEVER
// miscorrects. Degraded-evidence lookups (the PR 3 retry protocol) feed
// the same flag.

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <future>
#include <memory>
#include <optional>
#include <vector>

#include "parallel/dist_pipeline.hpp"
#include "parallel/job.hpp"
#include "seq/read.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::parallel {

/// One streamed correction job: exactly one input (in-memory reads, or a
/// FASTA/quality file pair — FASTQ/gzip-converted inputs go through the
/// same seq readers as the one-shot drivers) plus this job's overrides.
struct JobRequest {
  /// In-memory input (used when `fasta` is empty). Sliced across ranks
  /// exactly like run_distributed slices its dataset.
  std::vector<seq::Read> reads;
  /// File input: every rank performs the paper's Step I over the pair.
  std::filesystem::path fasta;
  std::filesystem::path qual;
  /// Correction-phase overrides; empty = the server's build configuration.
  JobOverrides overrides;
};

/// What one job produced, fulfilled through the future submit() returned.
struct JobReport {
  std::uint64_t job_id = 0;
  /// True when any rank corrected on degraded evidence: a blown deadline,
  /// degraded (timed-out) lookups, or conservatively skipped tiles. A
  /// degraded job may be under-corrected, never miscorrected.
  bool degraded = false;
  /// True specifically when the job's deadline expired before every read
  /// was corrected (implies degraded).
  bool deadline_missed = false;
  /// Announce-to-merge wall time on the serving rank (queue wait excluded).
  double seconds = 0.0;
  /// Corrected reads in original file order (MergeStage).
  std::vector<seq::Read> corrected;
  /// Per-rank measurements for this job alone (reset_for_job pins the
  /// independence from earlier jobs).
  std::vector<RankReport> ranks;
  /// Resource-ledger total balance change across this job, as seen by the
  /// serving rank (signed: a job that leaves caches warmer than it found
  /// them is positive). 0 when the ledger is disabled.
  std::int64_t ledger_delta_bytes = 0;
  /// Process-wide ledger high-water mark when the job completed (0 when
  /// the ledger is disabled).
  std::uint64_t ledger_peak_bytes = 0;

  std::uint64_t total_substitutions() const {
    return stats::field_total(ranks, &stats::PhaseTimeline::substitutions);
  }
  std::uint64_t total_reads_changed() const {
    return stats::field_total(ranks, &stats::PhaseTimeline::reads_changed);
  }
  std::uint64_t total_deadline_skipped() const {
    return stats::field_total(ranks,
                              &stats::PhaseTimeline::reads_deadline_skipped);
  }
};

/// Server-lifetime counters (all monotonic).
struct ServerStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_degraded = 0;
  std::uint64_t jobs_rejected = 0;  ///< try_submit refusals (backpressure)
  /// BuildSpectrum stage runs summed over ranks; stays == ranks() for the
  /// server's whole life — the build-once counter the bench gate asserts.
  std::uint64_t spectrum_builds = 0;
};

class CorrectionServer {
 public:
  /// Builds the sharded spectrum from `build_reads` under `config` (same
  /// validation and run options as run_distributed; lossy chaos plans are
  /// additionally rejected because the job control messages are not
  /// retried) and leaves the ranks resident. Blocks until the spectrum is
  /// built; construction-time errors throw here. `admission_depth` bounds
  /// the queue (backpressure past it).
  CorrectionServer(std::vector<seq::Read> build_reads, DistConfig config,
                   std::size_t admission_depth = 8);

  /// shutdown() if the caller did not.
  ~CorrectionServer();

  CorrectionServer(const CorrectionServer&) = delete;
  CorrectionServer& operator=(const CorrectionServer&) = delete;

  /// Admits a job, blocking while the queue is full (backpressure). The
  /// overrides are validated against the build configuration here, in the
  /// submitter's thread — a bad job throws std::invalid_argument and never
  /// reaches the ranks. Throws std::runtime_error after shutdown().
  std::future<JobReport> submit(JobRequest request);

  /// Non-blocking admission: nullopt when the queue is full or the server
  /// is shut down (`request` is then untouched and may be resubmitted).
  std::optional<std::future<JobReport>> try_submit(JobRequest& request);

  /// Closes admission, drains every already-admitted job, announces
  /// shutdown to the ranks, and joins the world. Idempotent.
  void shutdown();

  ServerStats stats() const;
  int ranks() const noexcept;
  std::size_t admission_depth() const noexcept;
  /// Jobs currently queued (admitted, not yet announced).
  std::size_t queued() const;
  /// The rank-lifetime build measurements (construct_seconds, footprints),
  /// one per rank. Valid once the constructor returned.
  const std::vector<stats::PhaseTimeline>& build_reports() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace reptile::parallel
