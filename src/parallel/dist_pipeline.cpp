#include "parallel/dist_pipeline.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>

#include "seq/fasta_io.hpp"

#include "parallel/protocol_table.hpp"
#include "parallel/rebalance.hpp"
#include "rtm/check/check.hpp"
#include "rtm/comm.hpp"
#include "stats/stopwatch.hpp"

namespace reptile::parallel {

std::uint64_t DistResult::total_substitutions() const {
  std::uint64_t n = 0;
  for (const auto& r : ranks) n += r.substitutions;
  return n;
}

std::uint64_t DistResult::total_reads_changed() const {
  std::uint64_t n = 0;
  for (const auto& r : ranks) n += r.reads_changed;
  return n;
}

double DistResult::max_construct_seconds() const {
  double m = 0;
  for (const auto& r : ranks) m = std::max(m, r.construct_seconds);
  return m;
}

double DistResult::max_correct_seconds() const {
  double m = 0;
  for (const auto& r : ranks) m = std::max(m, r.correct_seconds);
  return m;
}

namespace {

/// ReadSource over a contiguous slice of a shared in-memory read vector —
/// the in-memory equivalent of the Step I byte-range file partition.
class SliceReadSource final : public seq::ReadSource {
 public:
  SliceReadSource(const std::vector<seq::Read>& reads, std::size_t begin,
                  std::size_t end)
      : reads_(&reads), begin_(begin), end_(end), pos_(begin) {}

  bool next_chunk(std::size_t max_reads, seq::ReadBatch& out) override {
    out.clear();
    while (pos_ < end_ && out.size() < max_reads) {
      out.push_back((*reads_)[pos_++]);
    }
    return !out.empty();
  }
  void reset() override { pos_ = begin_; }
  std::size_t size() const override { return end_ - begin_; }

 private:
  const std::vector<seq::Read>* reads_;
  std::size_t begin_, end_, pos_;
};

/// One rank's run over its Step I partition `raw_source`; writes its slice
/// of the shared output arrays.
void rank_main(rtm::Comm& comm, seq::ReadSource& raw_source,
               const DistConfig& config,
               std::vector<std::vector<seq::Read>>& corrected_per_rank,
               std::vector<RankReport>& reports) {
  const int rank = comm.rank();
  const int np = comm.size();
  RankReport report;
  report.rank = rank;

  // --- Load balance (Section III-A): re-home reads by sequence hash. -----
  // With balancing on, the rank's working set becomes the reads it owns;
  // without it, the raw Step I partition is streamed directly (never
  // materialized — the paper re-reads the file to keep the footprint low).
  std::unique_ptr<seq::OwningReadSource> balanced;
  seq::ReadSource* source = &raw_source;
  if (config.heuristics.load_balance) {
    std::vector<seq::Read> mine;
    mine.reserve(raw_source.size());
    seq::ReadBatch batch;
    raw_source.reset();
    while (raw_source.next_chunk(config.params.chunk_size, batch)) {
      mine.insert(mine.end(), batch.begin(), batch.end());
    }
    balanced =
        std::make_unique<seq::OwningReadSource>(rebalance_reads(comm, mine));
    source = balanced.get();
  }
  report.reads_processed = source->size();

  // --- Steps II-III: distributed spectrum construction. ------------------
  stats::Stopwatch clock;
  DistSpectrum spectrum(config.params, config.heuristics, comm);
  const std::size_t chunk = config.params.chunk_size;
  seq::ReadBatch batch;
  source->reset();
  if (config.heuristics.batch_reads) {
    // All ranks must join every exchange, so run to the global maximum
    // batch count (the paper's MPI_Reduce over batch counts).
    const std::uint64_t my_batches =
        (source->size() + chunk - 1) / chunk;
    const std::uint64_t max_batches = comm.allreduce_max(my_batches);
    for (std::uint64_t b = 0; b < max_batches; ++b) {
      source->next_chunk(chunk, batch);  // possibly empty near the end
      for (const seq::Read& r : batch) spectrum.add_read(r.bases);
      spectrum.exchange_to_owners();
      ++report.batches;
      report.construction_peak_bytes =
          std::max(report.construction_peak_bytes, spectrum.footprint().bytes);
    }
  } else {
    while (source->next_chunk(chunk, batch)) {
      for (const seq::Read& r : batch) spectrum.add_read(r.bases);
      ++report.batches;
      report.construction_peak_bytes =
          std::max(report.construction_peak_bytes, spectrum.footprint().bytes);
    }
    spectrum.exchange_to_owners();
    report.construction_peak_bytes =
        std::max(report.construction_peak_bytes, spectrum.footprint().bytes);
  }
  spectrum.prune();
  if (config.heuristics.read_kmers) {
    spectrum.fetch_global_reads_tables();
  } else {
    spectrum.drop_reads_tables();
  }
  if (config.heuristics.allgather_kmers) spectrum.replicate_kmers();
  if (config.heuristics.allgather_tiles) spectrum.replicate_tiles();
  spectrum.replicate_group();  // no-op unless partial replication is on
  comm.barrier();
  report.construct_seconds = clock.seconds();
  report.footprint_after_construction = spectrum.footprint();
  report.construction_peak_bytes = std::max(
      report.construction_peak_bytes, report.footprint_after_construction.bytes);

  // --- Step IV: error correction with a communication thread. ------------
  comm.reset_done();
  LookupService service(comm, spectrum);
  std::thread comm_thread;
  std::exception_ptr service_error;
  const bool needs_service = np > 1 && !config.heuristics.fully_replicated();
  if (needs_service) {
    comm_thread = std::thread([&service, &service_error] {
      try {
        service.serve();
      } catch (...) {
        service_error = std::current_exception();
      }
    });
  }
  // If a worker throws below (a check::ProtocolError at a send site, a
  // check::DeadlockError out of a blocked receive), this guard still
  // signals completion and joins the communication thread before the
  // exception leaves rank_main — destroying a joinable std::thread would
  // terminate the process. Under a deadlock abort the service exits on the
  // checker's abort flag, so the join completes.
  bool done_signaled = false;
  struct ServiceJoiner {
    rtm::Comm& comm;
    std::thread& thread;
    bool& signaled;
    ~ServiceJoiner() {
      if (!signaled) {
        comm.signal_done();
        signaled = true;
      }
      if (thread.joinable()) thread.join();
    }
  } service_joiner{comm, comm_thread, done_signaled};

  clock.restart();
  const int workers = std::max(1, config.worker_threads);
  source->reset();
  std::mutex source_mutex;
  std::vector<std::vector<seq::Read>> per_worker_corrected(
      static_cast<std::size_t>(workers));
  struct WorkerStats {
    std::uint64_t reads_changed = 0;
    std::uint64_t substitutions = 0;
    std::uint64_t tiles_untrusted = 0;
    std::uint64_t tiles_fixed = 0;
    std::uint64_t tiles_degraded = 0;
    core::LookupStats lookups;
    RemoteLookupStats remote;
    double comm_seconds = 0;
  };
  std::vector<WorkerStats> worker_stats(static_cast<std::size_t>(workers));

  // With concurrent workers, add_remote must not write the shared reads
  // tables; each view then caches replies into its own chunk-local cache.
  const bool cache_remote_locally =
      workers > 1 && config.heuristics.add_remote;
  auto worker_body = [&](int slot) {
    RemoteSpectrumView view(comm, spectrum, slot, cache_remote_locally,
                            config.retry);
    core::TileCorrector corrector(config.params);
    WorkerStats& ws = worker_stats[static_cast<std::size_t>(slot)];
    auto& corrected = per_worker_corrected[static_cast<std::size_t>(slot)];
    seq::ReadBatch local_batch;
    while (true) {
      {
        std::lock_guard lock(source_mutex);
        if (!source->next_chunk(chunk, local_batch)) break;
      }
      view.prefetch_chunk(local_batch);
      for (seq::Read& r : local_batch) {
        const core::ReadCorrection rc = corrector.correct(r, view);
        if (rc.changed()) ++ws.reads_changed;
        ws.substitutions += static_cast<std::uint64_t>(rc.substitutions);
        ws.tiles_untrusted += static_cast<std::uint64_t>(rc.tiles_untrusted);
        ws.tiles_fixed += static_cast<std::uint64_t>(rc.tiles_fixed);
        ws.tiles_degraded += static_cast<std::uint64_t>(rc.tiles_degraded);
        corrected.push_back(std::move(r));
      }
    }
    ws.lookups = view.stats();
    ws.remote = view.remote_stats();
    ws.comm_seconds = view.comm_seconds();
  };

  // Workers run with errors captured, not thrown: an escaping exception on
  // a std::thread would terminate the process, and the sibling threads
  // must be joined before rank_main rethrows.
  std::mutex worker_error_mutex;
  std::exception_ptr worker_error;
  auto guarded_worker = [&](int slot) {
    try {
      std::optional<rtm::check::ThreadScope> scope;
      if (rtm::check::RunChecker* check = comm.world().checker()) {
        scope.emplace(*check, rank, rtm::check::ThreadRole::kWorker);
      }
      worker_body(slot);
    } catch (...) {
      std::lock_guard lock(worker_error_mutex);
      if (!worker_error) worker_error = std::current_exception();
    }
  };
  std::vector<std::thread> extra_workers;
  struct WorkerJoiner {
    std::vector<std::thread>& threads;
    ~WorkerJoiner() {
      for (auto& t : threads) {
        if (t.joinable()) t.join();
      }
    }
  } worker_joiner{extra_workers};
  for (int slot = 1; slot < workers; ++slot) {
    extra_workers.emplace_back(guarded_worker, slot);
  }
  guarded_worker(0);
  for (auto& t : extra_workers) t.join();
  if (worker_error) std::rethrow_exception(worker_error);
  comm.signal_done();
  done_signaled = true;
  if (comm_thread.joinable()) comm_thread.join();
  if (service_error) std::rethrow_exception(service_error);
  report.correct_seconds = clock.seconds();

  std::vector<seq::Read> corrected;
  corrected.reserve(source->size());
  for (auto& part : per_worker_corrected) {
    for (auto& r : part) corrected.push_back(std::move(r));
  }
  for (const WorkerStats& ws : worker_stats) {
    report.reads_changed += ws.reads_changed;
    report.substitutions += ws.substitutions;
    report.tiles_untrusted += ws.tiles_untrusted;
    report.tiles_fixed += ws.tiles_fixed;
    report.tiles_degraded += ws.tiles_degraded;
    report.lookups += ws.lookups;
    report.remote += ws.remote;
    // The per-rank communication time is the wall time any worker spent
    // blocked; with concurrent workers we report the maximum.
    report.comm_seconds = std::max(report.comm_seconds, ws.comm_seconds);
  }
  report.service = service.stats();
  report.footprint_after_correction = spectrum.footprint();
  comm.barrier();
  report.traffic = comm.world().traffic().snapshot(rank);

  corrected_per_rank[static_cast<std::size_t>(rank)] = std::move(corrected);
  reports[static_cast<std::size_t>(rank)] = report;
}

}  // namespace

namespace {

DistResult merge_results(std::vector<std::vector<seq::Read>> corrected_per_rank,
                         std::vector<RankReport> reports) {
  DistResult result;
  result.ranks = std::move(reports);
  std::size_t total = 0;
  for (const auto& part : corrected_per_rank) total += part.size();
  result.corrected.reserve(total);
  for (auto& part : corrected_per_rank) {
    for (auto& r : part) result.corrected.push_back(std::move(r));
  }
  std::sort(result.corrected.begin(), result.corrected.end(),
            [](const seq::Read& a, const seq::Read& b) {
              return a.number < b.number;
            });
  return result;
}

}  // namespace

namespace {

/// The run options actually handed to the runtime: when checking is on and
/// the caller supplied no custom tag table, arm the linter with the lookup
/// protocol table and strict tags — the lookup protocol is the only
/// point-to-point traffic the pipelines send, so any stray tag is a bug.
rtm::RunOptions run_options_for(const DistConfig& config) {
  rtm::RunOptions options = config.run_options;
  if (options.check.enabled && options.check.lint &&
      options.check.tags.empty()) {
    options.check.tags = lookup_tag_table();
    options.check.strict_tags = true;
  }
  return options;
}

/// Copies the finalized per-rank audit counters into the reports.
void apply_check_snapshots(rtm::World& world,
                           std::vector<RankReport>& reports) {
  rtm::check::RunChecker* check = world.checker();
  if (check == nullptr) return;
  for (RankReport& report : reports) {
    report.check = check->snapshot(report.rank);
  }
}

void validate_config(const DistConfig& config) {
  config.params.validate();
  config.heuristics.validate();
  if (config.worker_threads < 1) {
    throw std::invalid_argument("worker_threads must be >= 1");
  }
  if (config.worker_threads > 1 && config.heuristics.add_remote &&
      !config.heuristics.batch_lookups) {
    throw std::invalid_argument(
        "add_remote caches into the shared reads tables, which is not "
        "thread-safe with worker_threads > 1: enable "
        "heuristics.batch_lookups (replies then land in each worker's "
        "chunk-local prefetch cache) or use worker_threads == 1");
  }
  config.run_options.chaos.validate();
  config.retry.validate();
  if (config.run_options.chaos.lossy() && !config.retry.enabled()) {
    throw std::invalid_argument(
        "chaos plan drops or truncates messages but the retry protocol is "
        "disabled: a lost lookup would block its worker forever. Set "
        "retry.timeout_ticks > 0 (see parallel::RetryPolicy)");
  }
}
}  // namespace

DistResult run_distributed(const std::vector<seq::Read>& reads,
                           const DistConfig& config) {
  validate_config(config);

  std::vector<std::vector<seq::Read>> corrected_per_rank(
      static_cast<std::size_t>(config.ranks));
  std::vector<RankReport> reports(static_cast<std::size_t>(config.ranks));

  const auto world = rtm::run_world(config.topology(), [&](rtm::Comm& comm) {
    const std::size_t begin = reads.size() *
                              static_cast<std::size_t>(comm.rank()) /
                              static_cast<std::size_t>(comm.size());
    const std::size_t end = reads.size() *
                            static_cast<std::size_t>(comm.rank() + 1) /
                            static_cast<std::size_t>(comm.size());
    SliceReadSource source(reads, begin, end);
    rank_main(comm, source, config, corrected_per_rank, reports);
  }, run_options_for(config));
  apply_check_snapshots(*world, reports);

  return merge_results(std::move(corrected_per_rank), std::move(reports));
}

DistResult run_distributed_files(const std::filesystem::path& fasta,
                                 const std::filesystem::path& qual,
                                 const DistConfig& config) {
  validate_config(config);

  std::vector<std::vector<seq::Read>> corrected_per_rank(
      static_cast<std::size_t>(config.ranks));
  std::vector<RankReport> reports(static_cast<std::size_t>(config.ranks));

  const auto world = rtm::run_world(config.topology(), [&](rtm::Comm& comm) {
    // Step I proper: every rank opens both files and takes its byte range.
    seq::PartitionedReadSource source(fasta, qual, comm.rank(), comm.size());
    rank_main(comm, source, config, corrected_per_rank, reports);
  }, run_options_for(config));
  apply_check_snapshots(*world, reports);

  return merge_results(std::move(corrected_per_rank), std::move(reports));
}

}  // namespace reptile::parallel
