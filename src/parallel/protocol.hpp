#pragma once
// Wire protocol of the correction-phase lookup messages.
//
// Non-universal mode (paper default): the requesting rank tags the message
// as a k-mer or a tile request; the owner's communication thread probes by
// tag to learn the request kind before receiving. Universal mode: one tag,
// and the kind travels inside the payload ("the message is itself a
// structure with the tag included as part of the message"), trading a
// slightly larger message for skipping the probe.
//
// Replies carry the count as int32, with -1 meaning the ID is not in the
// owner's (pruned) spectrum — the paper's "response like (-1) implying that
// the k-mer or tile does not exist ... at all in the entire spectrum".
//
// Sequence numbers (an extension beyond the paper, see DESIGN.md §4d):
// every request carries a per-worker-view sequence number which the owner
// echoes in the reply. Requesters use it to suppress duplicate/stale
// replies and to retransmit idempotently after a timeout (RetryPolicy), so
// the protocol survives the fault injector's drops, duplicates, truncations
// and stalls (rtm/chaos.hpp). seq == 0 is reserved for legacy unsequenced
// traffic (hand-rolled tests); the views allocate from 1.

#include <cstdint>
#include <stdexcept>

namespace reptile::parallel {

/// Message tags. Values are arbitrary but stable.
enum Tag : int {
  kTagKmerRequest = 11,
  kTagTileRequest = 12,
  kTagUniversalRequest = 13,
  kTagBatchRequest = 14,
  kTagFilterExchange = 15,
  kTagJobAnnounce = 16,
  kTagJobComplete = 17,
  kTagKmerReply = 21,
  kTagTileReply = 22,
};

/// Request kinds carried inside universal-mode payloads.
enum class LookupKind : std::uint32_t { kKmer = 0, kTile = 1 };

/// Non-universal request payload: the ID (the kind is the tag) plus the
/// tag the reply must carry. Multiple correction worker threads on one
/// rank (the paper's full-replication runs used 64 threads per rank) each
/// use a distinct reply tag so concurrent outstanding requests to the same
/// owner cannot steal each other's replies.
struct LookupRequest {
  std::uint64_t id = 0;
  std::uint64_t seq = 0;  ///< echoed in the reply; 0 = unsequenced
  std::int32_t reply_to = kTagKmerReply;
  std::uint32_t reserved = 0;  // explicit padding for a stable layout
};

/// Universal request payload: kind + ID + reply tag in one self-describing
/// message.
struct UniversalLookupRequest {
  LookupKind kind = LookupKind::kKmer;
  std::int32_t reply_to = kTagKmerReply;
  std::uint64_t id = 0;
  std::uint64_t seq = 0;  ///< echoed in the reply; 0 = unsequenced
};

/// Reply payload: the global count, or -1 when absent from the spectrum.
/// The request's sequence number leads the struct so auditors (and the
/// requester) can match a reply without knowing anything else about it.
struct LookupReply {
  std::uint64_t seq = 0;  ///< echo of the request's seq
  std::int32_t count = -1;
  std::uint32_t reserved = 0;  // explicit padding for a stable layout
};

/// Reply tag for request kind `kind` issued by worker `slot` (slot 0 uses
/// the base tags).
constexpr int reply_tag(LookupKind kind, int slot = 0) noexcept {
  return (kind == LookupKind::kKmer ? kTagKmerReply : kTagTileReply) +
         2 * slot;
}

/// Header of a vectored (batched) lookup request: `count` packed 64-bit IDs
/// of one kind follow the header on the wire (see wire.hpp for the byte
/// layout). Batch requests are self-describing like universal mode — one
/// tag, kind in the payload — because the message is vectored anyway and a
/// per-kind probe would buy nothing.
struct BatchLookupHeader {
  std::uint32_t kind = 0;       ///< LookupKind as uint32
  std::int32_t reply_to = 0;    ///< tag the framed count vector must carry
  std::uint32_t count = 0;      ///< number of IDs following the header
  std::uint32_t reserved = 0;   ///< explicit padding for a stable layout
  std::uint64_t seq = 0;        ///< echoed in the reply; 0 = unsequenced
};

/// Header of a batched reply: `count` packed int32 counts (index-aligned
/// with the request's IDs, -1 = absent) follow on the wire. The echoed
/// sequence number leads the struct, like LookupReply.
struct BatchReplyHeader {
  std::uint64_t seq = 0;       ///< echo of the batch request's seq
  std::uint32_t count = 0;     ///< number of int32 counts following
  std::uint32_t reserved = 0;  ///< explicit padding for a stable layout
};

/// Header of a filter-exchange message (filter_lookups extension): after
/// Step III each rank broadcasts a serialized hash::OwnerFilter over its
/// owned table of `kind` to every out-of-group peer, exactly once, before
/// the correction phase starts. The filter bytes follow the header (see
/// wire.hpp). Fire-and-forget best effort: a peer that never receives (or
/// cannot decode) a filter simply keeps the unfiltered wire path for that
/// owner — losing a filter can cost traffic, never correctness.
struct FilterExchangeHeader {
  std::uint32_t kind = 0;      ///< LookupKind as uint32
  std::uint32_t reserved = 0;  ///< explicit padding for a stable layout
};

/// Serve-mode control messages (DESIGN.md §13). Rank 0 owns the admission
/// queue; it announces each admitted job to every peer rank with one
/// kTagJobAnnounce message, the peers run the job's correction graph, and
/// each peer acknowledges with one kTagJobComplete back to rank 0. The job
/// payload itself (read source, overrides) travels out of band through the
/// server's shared job table — the wire only carries the id and control
/// word, so the announce can never stall behind a large dataset.
enum class JobOp : std::uint32_t {
  kRun = 0,       ///< run the announced job
  kShutdown = 1,  ///< no more jobs; leave the serve loop
};

/// Rank 0 -> peers: run job `job_id` (or shut down; job_id then 0).
struct JobAnnounce {
  std::uint64_t job_id = 0;
  std::uint32_t op = 0;        ///< JobOp as uint32
  std::uint32_t reserved = 0;  ///< explicit padding for a stable layout
};

/// Peer -> rank 0: job `job_id` finished on this rank. `degraded` is 1 when
/// the rank's correction involved degraded evidence (deadline skips,
/// degraded lookups, or degraded tiles) — the per-rank input to the job's
/// overall degraded flag.
struct JobComplete {
  std::uint64_t job_id = 0;
  std::uint32_t degraded = 0;
  std::uint32_t reserved = 0;  ///< explicit padding for a stable layout
};

/// Base of the batch-reply tag space. Scalar reply tags grow as 21 + 2*slot
/// / 22 + 2*slot, so the spaces stay disjoint for any worker slot < 501 —
/// far beyond the paper's 64 threads/rank.
inline constexpr int kTagBatchReplyBase = 1024;

/// Reply tag of a batched request of `kind` issued by worker `slot`.
constexpr int batch_reply_tag(LookupKind kind, int slot = 0) noexcept {
  return kTagBatchReplyBase + 2 * slot +
         (kind == LookupKind::kTile ? 1 : 0);
}

/// Length of one runtime tick for retry timeouts, in microseconds. Chosen
/// to match the runtime's internal poll cadence (chaos delivery thread,
/// service wait slices) so a one-tick timeout is already meaningful.
inline constexpr int kRetryTickUs = 100;

/// Requester-side timeout/retry policy for the lookup protocol. Disabled
/// by default (timeout_ticks == 0): requesters block forever, exactly the
/// paper's protocol. Enabling it arms, per lookup: a timeout of
/// `timeout_ticks` runtime ticks, doubled on every retransmission
/// (exponential backoff, capped at 64x), and at most `max_retries`
/// idempotent retransmissions before the lookup degrades (the corrector
/// then conservatively skips that position — it never miscorrects).
struct RetryPolicy {
  int timeout_ticks = 0;  ///< 0 = wait forever (retries off)
  int max_retries = 3;    ///< retransmissions after the first attempt

  bool enabled() const noexcept { return timeout_ticks > 0; }

  /// Timeout of attempt `attempt` (0 = first send) in microseconds.
  long long attempt_timeout_us(int attempt) const noexcept {
    const int shift = attempt < 6 ? attempt : 6;
    return static_cast<long long>(timeout_ticks) * kRetryTickUs * (1LL << shift);
  }

  /// Throws std::invalid_argument on out-of-range members.
  void validate() const {
    if (timeout_ticks < 0) {
      throw std::invalid_argument("lookup_timeout_ticks must be >= 0");
    }
    if (max_retries < 0) {
      throw std::invalid_argument("lookup_max_retries must be >= 0");
    }
  }
};

}  // namespace reptile::parallel
