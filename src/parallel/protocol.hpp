#pragma once
// Wire protocol of the correction-phase lookup messages.
//
// Non-universal mode (paper default): the requesting rank tags the message
// as a k-mer or a tile request; the owner's communication thread probes by
// tag to learn the request kind before receiving. Universal mode: one tag,
// and the kind travels inside the payload ("the message is itself a
// structure with the tag included as part of the message"), trading a
// slightly larger message for skipping the probe.
//
// Replies carry the count as int32, with -1 meaning the ID is not in the
// owner's (pruned) spectrum — the paper's "response like (-1) implying that
// the k-mer or tile does not exist ... at all in the entire spectrum".

#include <cstdint>

namespace reptile::parallel {

/// Message tags. Values are arbitrary but stable.
enum Tag : int {
  kTagKmerRequest = 11,
  kTagTileRequest = 12,
  kTagUniversalRequest = 13,
  kTagBatchRequest = 14,
  kTagKmerReply = 21,
  kTagTileReply = 22,
};

/// Request kinds carried inside universal-mode payloads.
enum class LookupKind : std::uint32_t { kKmer = 0, kTile = 1 };

/// Non-universal request payload: the ID (the kind is the tag) plus the
/// tag the reply must carry. Multiple correction worker threads on one
/// rank (the paper's full-replication runs used 64 threads per rank) each
/// use a distinct reply tag so concurrent outstanding requests to the same
/// owner cannot steal each other's replies.
struct LookupRequest {
  std::uint64_t id = 0;
  std::int32_t reply_to = kTagKmerReply;
  std::uint32_t reserved = 0;  // explicit padding for a stable layout
};

/// Universal request payload: kind + ID + reply tag in one self-describing
/// message.
struct UniversalLookupRequest {
  LookupKind kind = LookupKind::kKmer;
  std::int32_t reply_to = kTagKmerReply;
  std::uint64_t id = 0;
};

/// Reply payload: the global count, or -1 when absent from the spectrum.
struct LookupReply {
  std::int32_t count = -1;
};

/// Reply tag for request kind `kind` issued by worker `slot` (slot 0 uses
/// the base tags).
constexpr int reply_tag(LookupKind kind, int slot = 0) noexcept {
  return (kind == LookupKind::kKmer ? kTagKmerReply : kTagTileReply) +
         2 * slot;
}

/// Header of a vectored (batched) lookup request: `count` packed 64-bit IDs
/// of one kind follow the header on the wire (see wire.hpp for the byte
/// layout). Batch requests are self-describing like universal mode — one
/// tag, kind in the payload — because the message is vectored anyway and a
/// per-kind probe would buy nothing.
struct BatchLookupHeader {
  std::uint32_t kind = 0;       ///< LookupKind as uint32
  std::int32_t reply_to = 0;    ///< tag the packed count vector must carry
  std::uint32_t count = 0;      ///< number of IDs following the header
  std::uint32_t reserved = 0;   ///< explicit padding for a stable layout
};

/// Base of the batch-reply tag space. Scalar reply tags grow as 21 + 2*slot
/// / 22 + 2*slot, so the spaces stay disjoint for any worker slot < 501 —
/// far beyond the paper's 64 threads/rank.
inline constexpr int kTagBatchReplyBase = 1024;

/// Reply tag of a batched request of `kind` issued by worker `slot`.
constexpr int batch_reply_tag(LookupKind kind, int slot = 0) noexcept {
  return kTagBatchReplyBase + 2 * slot +
         (kind == LookupKind::kTile ? 1 : 0);
}

}  // namespace reptile::parallel
