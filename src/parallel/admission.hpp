#pragma once
// Bounded admission queue of a resident correction server (DESIGN.md §13).
//
// The backpressure seam between submitters (any driver thread) and the
// serving rank 0: depth is fixed at construction, submit() blocks while the
// queue is full, try_submit() refuses instead — a caller that must not
// block (an RPC edge shedding load) gets an immediate "queue full" answer
// it can turn into a 429. close() starts the drain: queued jobs are still
// popped and served, new submissions are refused, and once the queue is
// empty pop() returns nullopt exactly once per waiting consumer — the
// server's signal to announce shutdown to the peer ranks.
//
// Plain mutex + two condition variables: admission is seconds-scale work
// per item (a whole correction job), so lock-free cleverness would buy
// nothing here — the rtm mailbox fast path (rtm/ring.hpp) exists for the
// microsecond-scale path.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

#include "obs/ledger.hpp"

namespace reptile::parallel {

template <class T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t depth) : depth_(depth) {
    if (depth == 0) {
      throw std::invalid_argument("admission queue depth must be > 0");
    }
  }

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Blocks while the queue is full (backpressure); returns false without
  /// enqueueing when the queue was closed (before or while waiting).
  bool submit(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < depth_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    charge_.set(items_.size() * sizeof(T));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking admission: false when full or closed (`item` untouched
  /// in the caller — it is only moved from on success).
  bool try_submit(T& item) {
    std::lock_guard lock(mutex_);
    if (closed_ || items_.size() >= depth_) return false;
    items_.push_back(std::move(item));
    charge_.set(items_.size() * sizeof(T));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed AND drained;
  /// nullopt means "no more jobs ever" (the shutdown signal).
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    charge_.set(items_.size() * sizeof(T));
    not_full_.notify_one();
    return item;
  }

  /// Refuses all future submissions; already-queued items still drain
  /// through pop(). Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t depth() const noexcept { return depth_; }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  /// Bytes held by queued (not yet popped) items' slots.
  std::size_t memory_bytes() const {
    std::lock_guard lock(mutex_);
    return static_cast<std::size_t>(charge_.recorded());
  }

  bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t depth_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  // Bills queued item slots to the ledger; mutated only under mutex_.
  obs::LedgerCharge charge_{obs::LedgerAccount::kAdmissionQueue};
  bool closed_ = false;
};

}  // namespace reptile::parallel
