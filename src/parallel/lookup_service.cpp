#include "parallel/lookup_service.hpp"

#include <chrono>
#include <cstring>
#include <optional>
#include <vector>

#include "obs/trace.hpp"
#include "parallel/wire.hpp"

namespace reptile::parallel {

namespace {
constexpr auto kServiceWait = std::chrono::microseconds(200);

bool is_request_tag(int tag) noexcept {
  return tag == kTagKmerRequest || tag == kTagTileRequest ||
         tag == kTagUniversalRequest || tag == kTagBatchRequest;
}
}  // namespace

LookupService::LookupService(rtm::Comm& comm, const DistSpectrum& spectrum)
    : comm_(&comm),
      spectrum_(&spectrum),
      universal_(spectrum.heuristics().universal) {}

void LookupService::reply(int requester, LookupKind kind, std::uint64_t id,
                          int reply_to, std::uint64_t seq) {
  // Closes the requester's flow arrow: same (rank, tag, seq)-derived id as
  // the 's' event emitted at the send site on `requester`.
  obs::Tracer::instance().flow_end("flow", "lookup",
                                   obs::flow_id(requester, reply_to, seq));
  LookupReply r;
  r.seq = seq;
  if (kind == LookupKind::kKmer) {
    const auto c = spectrum_->owned_kmer(id);
    r.count = c ? static_cast<std::int32_t>(*c) : -1;
    ++stats_.kmer_requests;
  } else {
    const auto c = spectrum_->owned_tile(id);
    r.count = c ? static_cast<std::int32_t>(*c) : -1;
    ++stats_.tile_requests;
  }
  if (r.count < 0) ++stats_.absent_replies;
  comm_->send_value(requester, reply_to, r);
  ++stats_.requests_served;
}

void LookupService::reply_batch(const rtm::Message& msg) {
  BatchLookupRequest req;
  try {
    req = decode_batch_request(msg.payload);
  } catch (const std::runtime_error&) {
    // Truncated/garbled by fault injection: drop unanswered, the
    // requester's timeout retry recovers.
    ++stats_.malformed_requests;
    return;
  }
  obs::Tracer::instance().flow_end(
      "flow", "batch", obs::flow_id(msg.source, req.reply_to, req.seq));
  // Zero-copy reply: frame the header in an arena payload and write each
  // i32 count straight into the wire buffer as the lookups happen — no
  // intermediate count vector, no encode copy, no send copy.
  rtm::Payload payload = comm_->make_payload(batch_reply_bytes(req.ids.size()));
  encode_batch_reply_header_into(payload.data(), req.seq,
                                 static_cast<std::uint32_t>(req.ids.size()));
  std::byte* counts = batch_reply_counts_at(payload.data());
  for (std::size_t i = 0; i < req.ids.size(); ++i) {
    const std::uint64_t id = req.ids[i];
    const auto c = req.kind == LookupKind::kKmer ? spectrum_->owned_kmer(id)
                                                 : spectrum_->owned_tile(id);
    const std::int32_t count = c ? static_cast<std::int32_t>(*c) : -1;
    std::memcpy(counts + i * sizeof(count), &count, sizeof(count));
    if (!c) ++stats_.absent_replies;
  }
  comm_->send_payload(msg.source, req.reply_to, std::move(payload));
  ++stats_.batch_requests;
  stats_.batch_ids_served += req.ids.size();
  ++stats_.requests_served;
}

void LookupService::handle(const rtm::Message& msg) {
  const char* span_name = msg.tag == kTagBatchRequest       ? "serve:batch"
                          : msg.tag == kTagUniversalRequest ? "serve:universal"
                          : msg.tag == kTagKmerRequest      ? "serve:kmer"
                                                            : "serve:tile";
  obs::SpanScope span("service", span_name);
  span.arg("source", static_cast<std::uint64_t>(msg.source));
  const std::int64_t handle_start = obs::Tracer::instance().now_ns();
  struct RecordLatency {
    obs::Histogram* hist;
    std::int64_t start;
    ~RecordLatency() {
      if (hist != nullptr) {
        const std::int64_t ns = obs::Tracer::instance().now_ns() - start;
        hist->record(static_cast<std::uint64_t>(ns < 0 ? 0 : ns) / 1000);
      }
    }
  } record_latency{handle_hist_, handle_start};
  // Size-validate every request before trusting its bytes: the fault
  // injector can truncate payloads, and a malformed request must be
  // dropped unanswered (the requester's timeout retry recovers) rather
  // than decoded into garbage.
  if (msg.tag == kTagBatchRequest) {
    reply_batch(msg);
  } else if (msg.tag == kTagUniversalRequest) {
    if (msg.payload.size() != sizeof(UniversalLookupRequest)) {
      ++stats_.malformed_requests;
      return;
    }
    const auto req = msg.as_value<UniversalLookupRequest>();
    reply(msg.source, req.kind, req.id, req.reply_to, req.seq);
  } else {
    if (msg.payload.size() != sizeof(LookupRequest)) {
      ++stats_.malformed_requests;
      return;
    }
    const auto req = msg.as_value<LookupRequest>();
    const LookupKind kind =
        msg.tag == kTagKmerRequest ? LookupKind::kKmer : LookupKind::kTile;
    reply(msg.source, kind, req.id, req.reply_to, req.seq);
  }
}

void LookupService::serve() {
  // Register with rtm-check as this rank's communication thread: the
  // deadlock watchdog must distinguish "service idle-polling because no
  // request will ever come" from "rank making progress".
  rtm::check::RunChecker* check = comm_->world().checker();
  std::optional<rtm::check::ThreadScope> scope;
  if (check != nullptr) {
    scope.emplace(*check, comm_->rank(), rtm::check::ThreadRole::kService);
  }
  obs::Tracer::instance().set_thread(comm_->rank(), "comm");
  handle_hist_ = obs::Registry::global().histogram("reptile_service_handle_us",
                                                   comm_->rank());
  // Non-universal mode mirrors the paper's probe-then-receive protocol: the
  // thread probes for each request tag to learn the request kind before
  // receiving. Universal mode accepts any request message directly.
  while (!comm_->all_done()) {
    // Once the watchdog aborts the run, unwind quietly — the blocked
    // worker threads carry the DeadlockError to run_ranks.
    if (check != nullptr && check->aborted()) return;
    if (!universal_) {
      // MPI_Iprobe per request tag; counted so the performance model can
      // price the probe overhead universal mode removes.
      ++stats_.probe_calls;
      if (!comm_->iprobe(rtm::kAnySource, kTagKmerRequest)) {
        ++stats_.probe_calls;
        (void)comm_->iprobe(rtm::kAnySource, kTagTileRequest);
      }
    }
    const auto msg = comm_->recv_match_for(
        [](const rtm::Message& m) { return is_request_tag(m.tag); },
        kServiceWait);
    if (msg) {
      if (check != nullptr) check->thread_active();
      handle(*msg);
    } else if (check != nullptr) {
      check->thread_idle_poll();
    }
  }
  // Drain any requests already queued when the last rank signalled done.
  while (true) {
    auto msg = comm_->try_recv(rtm::kAnySource, kTagKmerRequest);
    if (!msg) msg = comm_->try_recv(rtm::kAnySource, kTagTileRequest);
    if (!msg) msg = comm_->try_recv(rtm::kAnySource, kTagUniversalRequest);
    if (!msg) msg = comm_->try_recv(rtm::kAnySource, kTagBatchRequest);
    if (!msg) break;
    handle(*msg);
  }
  // Discard stall-delayed filter-exchange stragglers (chaos only: the
  // exchange itself finished — or timed out — before this service
  // started). They carry no reply obligation; leaving them queued would
  // only clutter the end-of-run audit.
  while (comm_->try_recv(rtm::kAnySource, kTagFilterExchange)) {
    ++stats_.filter_stragglers;
  }
}

}  // namespace reptile::parallel
