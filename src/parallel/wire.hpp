#pragma once
// Flat serialization of the variable-length wire payloads.
//
// 1. Reads for the load-balancing alltoallv: the static load balancer
//    (paper Section III-A) moves whole reads — bases and quality scores —
//    between ranks. Layout per read, little-endian host order:
//
//      u64 sequence_number | u32 length | length x base char | length x qual
//
// 2. Batched lookup requests (batch_lookups extension): one vectored
//    request carries every ID a chunk needs from one owner. Layout:
//
//      BatchLookupHeader | count x u64 id
//
//    The reply frames its packed i32 count vector (index-aligned with the
//    request, -1 = absent) behind a BatchReplyHeader carrying the echoed
//    sequence number, so requesters can match replies to (re)transmissions
//    under fault injection:
//
//      BatchReplyHeader | count x i32 count
//
// 3. Filter-exchange messages (filter_lookups extension): one message per
//    (owner, kind) carrying the owner's serialized membership filter:
//
//      FilterExchangeHeader | OwnerFilter wire encoding (header + blocks)

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "hash/owner_filter.hpp"
#include "parallel/protocol.hpp"
#include "seq/read.hpp"

namespace reptile::parallel {

/// Appends the wire encoding of `read` to `out`.
inline void encode_read(const seq::Read& read, std::vector<std::uint8_t>& out) {
  const auto len = static_cast<std::uint32_t>(read.bases.size());
  if (read.quals.size() != read.bases.size()) {
    throw std::invalid_argument("encode_read: quals/bases length mismatch");
  }
  const std::size_t start = out.size();
  out.resize(start + 8 + 4 + 2 * static_cast<std::size_t>(len));
  std::uint8_t* p = out.data() + start;
  std::memcpy(p, &read.number, 8);
  p += 8;
  std::memcpy(p, &len, 4);
  p += 4;
  std::memcpy(p, read.bases.data(), len);
  p += len;
  std::memcpy(p, read.quals.data(), len);
}

/// Decodes every read of a wire buffer, appending to `out`. Throws on a
/// truncated buffer.
inline void decode_reads(const std::uint8_t* data, std::size_t size,
                         std::vector<seq::Read>& out) {
  std::size_t pos = 0;
  while (pos < size) {
    if (size - pos < 12) throw std::runtime_error("decode_reads: truncated header");
    seq::Read r;
    std::memcpy(&r.number, data + pos, 8);
    pos += 8;
    std::uint32_t len = 0;
    std::memcpy(&len, data + pos, 4);
    pos += 4;
    if (size - pos < 2 * static_cast<std::size_t>(len)) {
      throw std::runtime_error("decode_reads: truncated body");
    }
    r.bases.assign(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    r.quals.assign(data + pos, data + pos + len);
    pos += len;
    out.push_back(std::move(r));
  }
}

inline void decode_reads(const std::vector<std::uint8_t>& buffer,
                         std::vector<seq::Read>& out) {
  decode_reads(buffer.data(), buffer.size(), out);
}

/// Decoded form of a vectored lookup request.
struct BatchLookupRequest {
  LookupKind kind = LookupKind::kKmer;
  std::int32_t reply_to = 0;
  std::uint64_t seq = 0;
  std::vector<std::uint64_t> ids;
};

/// Wire size of a batched request carrying `count` IDs.
inline std::size_t batch_request_bytes(std::size_t count) {
  return sizeof(BatchLookupHeader) + count * 8;
}

/// Writes one batched request into a caller-sized buffer of exactly
/// batch_request_bytes(ids.size()) — the zero-copy path: requesters encode
/// straight into an arena payload (rtm::Comm::make_payload).
inline void encode_batch_request_into(std::byte* out, LookupKind kind,
                                      int reply_to,
                                      std::span<const std::uint64_t> ids,
                                      std::uint64_t seq = 0) {
  BatchLookupHeader h;
  h.kind = static_cast<std::uint32_t>(kind);
  h.reply_to = static_cast<std::int32_t>(reply_to);
  h.count = static_cast<std::uint32_t>(ids.size());
  h.seq = seq;
  std::memcpy(out, &h, sizeof(h));
  if (!ids.empty()) {
    std::memcpy(out + sizeof(h), ids.data(), ids.size_bytes());
  }
}

/// Appends the wire encoding of one batched request to `out`.
inline void encode_batch_request(LookupKind kind, int reply_to,
                                 std::span<const std::uint64_t> ids,
                                 std::vector<std::uint8_t>& out,
                                 std::uint64_t seq = 0) {
  const std::size_t start = out.size();
  out.resize(start + batch_request_bytes(ids.size()));
  encode_batch_request_into(reinterpret_cast<std::byte*>(out.data() + start),
                            kind, reply_to, ids, seq);
}

/// Decodes one batched request. Throws on a truncated or over-long buffer
/// and on an unknown kind — a malformed message must never be answered.
inline BatchLookupRequest decode_batch_request(const std::uint8_t* data,
                                               std::size_t size) {
  BatchLookupHeader h;
  if (size < sizeof(h)) {
    throw std::runtime_error("decode_batch_request: truncated header");
  }
  std::memcpy(&h, data, sizeof(h));
  if (h.kind > static_cast<std::uint32_t>(LookupKind::kTile)) {
    throw std::runtime_error("decode_batch_request: unknown lookup kind");
  }
  if (size - sizeof(h) != static_cast<std::size_t>(h.count) * 8) {
    throw std::runtime_error("decode_batch_request: body/count mismatch");
  }
  BatchLookupRequest req;
  req.kind = static_cast<LookupKind>(h.kind);
  req.reply_to = h.reply_to;
  req.seq = h.seq;
  req.ids.resize(h.count);
  if (h.count != 0) {
    std::memcpy(req.ids.data(), data + sizeof(h),
                static_cast<std::size_t>(h.count) * 8);
  }
  return req;
}

inline BatchLookupRequest decode_batch_request(
    std::span<const std::byte> payload) {
  return decode_batch_request(
      reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size());
}

/// Decoded form of a framed batch reply.
struct BatchLookupReply {
  std::uint64_t seq = 0;
  std::vector<std::int32_t> counts;
};

/// Wire size of a batched reply carrying `count` counts.
inline std::size_t batch_reply_bytes(std::size_t count) {
  return sizeof(BatchReplyHeader) + count * 4;
}

/// Writes the reply header into a caller-sized buffer of exactly
/// batch_reply_bytes(count); the i32 count vector follows at
/// batch_reply_counts_at(out) and may be filled in place by the service
/// as it performs the lookups — no intermediate vector at all.
inline void encode_batch_reply_header_into(std::byte* out, std::uint64_t seq,
                                           std::uint32_t count) {
  BatchReplyHeader h;
  h.seq = seq;
  h.count = count;
  std::memcpy(out, &h, sizeof(h));
}

/// Start of the count vector inside an encode_batch_reply_header_into
/// buffer.
inline std::byte* batch_reply_counts_at(std::byte* out) {
  return out + sizeof(BatchReplyHeader);
}

/// Appends the wire encoding of one batched reply to `out`.
inline void encode_batch_reply(std::uint64_t seq,
                               std::span<const std::int32_t> counts,
                               std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  out.resize(start + batch_reply_bytes(counts.size()));
  auto* p = reinterpret_cast<std::byte*>(out.data() + start);
  encode_batch_reply_header_into(p, seq,
                                 static_cast<std::uint32_t>(counts.size()));
  if (!counts.empty()) {
    std::memcpy(batch_reply_counts_at(p), counts.data(), counts.size_bytes());
  }
}

/// Decodes one batched reply. Throws on a truncated or over-long buffer —
/// a requester must treat a malformed reply as lost, never as counts.
inline BatchLookupReply decode_batch_reply(const std::uint8_t* data,
                                           std::size_t size) {
  BatchReplyHeader h;
  if (size < sizeof(h)) {
    throw std::runtime_error("decode_batch_reply: truncated header");
  }
  std::memcpy(&h, data, sizeof(h));
  if (size - sizeof(h) != static_cast<std::size_t>(h.count) * 4) {
    throw std::runtime_error("decode_batch_reply: body/count mismatch");
  }
  BatchLookupReply reply;
  reply.seq = h.seq;
  reply.counts.resize(h.count);
  if (h.count != 0) {
    std::memcpy(reply.counts.data(), data + sizeof(h),
                static_cast<std::size_t>(h.count) * 4);
  }
  return reply;
}

inline BatchLookupReply decode_batch_reply(std::span<const std::byte> payload) {
  return decode_batch_reply(
      reinterpret_cast<const std::uint8_t*>(payload.data()), payload.size());
}

/// Decoded form of a filter-exchange message. Not default-constructible:
/// an OwnerFilter only exists sized (constructor) or decoded (deserialize),
/// never empty-but-queryable.
struct FilterExchange {
  LookupKind kind;
  hash::OwnerFilter filter;
};

/// Wire size of a filter-exchange message carrying `filter`.
inline std::size_t filter_exchange_bytes(const hash::OwnerFilter& filter) {
  return sizeof(FilterExchangeHeader) + filter.wire_bytes();
}

/// Writes one filter-exchange message into a caller-sized buffer of exactly
/// filter_exchange_bytes(filter) — the zero-copy path into an arena payload.
inline void encode_filter_exchange_into(std::byte* out, LookupKind kind,
                                        const hash::OwnerFilter& filter) {
  FilterExchangeHeader h;
  h.kind = static_cast<std::uint32_t>(kind);
  std::memcpy(out, &h, sizeof(h));
  filter.serialize_into(out + sizeof(h));
}

/// Appends the wire encoding of one filter-exchange message to `out`.
inline void encode_filter_exchange(LookupKind kind,
                                   const hash::OwnerFilter& filter,
                                   std::vector<std::uint8_t>& out) {
  const std::size_t start = out.size();
  out.resize(start + filter_exchange_bytes(filter));
  encode_filter_exchange_into(reinterpret_cast<std::byte*>(out.data() + start),
                              kind, filter);
}

/// Decodes one filter-exchange message. Throws on a truncated or over-long
/// buffer and on an unknown kind — receivers drop malformed filters and
/// keep the unfiltered wire path for that owner (never trust garbage bits:
/// they could manufacture false negatives).
inline FilterExchange decode_filter_exchange(std::span<const std::byte> payload) {
  FilterExchangeHeader h;
  if (payload.size() < sizeof(h)) {
    throw std::runtime_error("decode_filter_exchange: truncated header");
  }
  std::memcpy(&h, payload.data(), sizeof(h));
  if (h.kind > static_cast<std::uint32_t>(LookupKind::kTile)) {
    throw std::runtime_error("decode_filter_exchange: unknown lookup kind");
  }
  return FilterExchange{
      static_cast<LookupKind>(h.kind),
      hash::OwnerFilter::deserialize(payload.subspan(sizeof(h)))};
}

inline FilterExchange decode_filter_exchange(const std::uint8_t* data,
                                             std::size_t size) {
  return decode_filter_exchange(
      std::span<const std::byte>(reinterpret_cast<const std::byte*>(data), size));
}

}  // namespace reptile::parallel
