#pragma once
// Flat serialization of reads for the load-balancing alltoallv.
//
// The static load balancer (paper Section III-A) moves whole reads — bases
// and quality scores — between ranks, so reads must cross the message layer
// as byte buffers. Layout per read, little-endian host order:
//
//   u64 sequence_number | u32 length | length x base char | length x qual

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "seq/read.hpp"

namespace reptile::parallel {

/// Appends the wire encoding of `read` to `out`.
inline void encode_read(const seq::Read& read, std::vector<std::uint8_t>& out) {
  const auto len = static_cast<std::uint32_t>(read.bases.size());
  if (read.quals.size() != read.bases.size()) {
    throw std::invalid_argument("encode_read: quals/bases length mismatch");
  }
  const std::size_t start = out.size();
  out.resize(start + 8 + 4 + 2 * static_cast<std::size_t>(len));
  std::uint8_t* p = out.data() + start;
  std::memcpy(p, &read.number, 8);
  p += 8;
  std::memcpy(p, &len, 4);
  p += 4;
  std::memcpy(p, read.bases.data(), len);
  p += len;
  std::memcpy(p, read.quals.data(), len);
}

/// Decodes every read of a wire buffer, appending to `out`. Throws on a
/// truncated buffer.
inline void decode_reads(const std::uint8_t* data, std::size_t size,
                         std::vector<seq::Read>& out) {
  std::size_t pos = 0;
  while (pos < size) {
    if (size - pos < 12) throw std::runtime_error("decode_reads: truncated header");
    seq::Read r;
    std::memcpy(&r.number, data + pos, 8);
    pos += 8;
    std::uint32_t len = 0;
    std::memcpy(&len, data + pos, 4);
    pos += 4;
    if (size - pos < 2 * static_cast<std::size_t>(len)) {
      throw std::runtime_error("decode_reads: truncated body");
    }
    r.bases.assign(reinterpret_cast<const char*>(data + pos), len);
    pos += len;
    r.quals.assign(data + pos, data + pos + len);
    pos += len;
    out.push_back(std::move(r));
  }
}

inline void decode_reads(const std::vector<std::uint8_t>& buffer,
                         std::vector<seq::Read>& out) {
  decode_reads(buffer.data(), buffer.size(), out);
}

}  // namespace reptile::parallel
