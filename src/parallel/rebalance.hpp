#pragma once
// Static load balancing through sequence-hash redistribution.
//
// Paper Section III-A: errors are localized in parts of the read file, so
// contiguous byte-range partitioning gives some ranks far more erroneous
// (expensive) reads than others. The fix is static: "a sequence is
// designated to be owned by a rank p if hashFunction(seq) % np == p"; after
// the partitioned read, each rank buckets its reads by owning rank and one
// MPI_Alltoallv re-homes every read — "the same effect as the randomization
// of the file".

#include <vector>

#include "rtm/comm.hpp"
#include "seq/read.hpp"

namespace reptile::parallel {

/// Collectively redistributes reads: each rank passes the reads of its file
/// partition and receives exactly the reads it owns (by sequence hash).
/// Order within the result follows (source rank, source order), which is
/// deterministic for a fixed input partitioning.
std::vector<seq::Read> rebalance_reads(rtm::Comm& comm,
                                       const std::vector<seq::Read>& mine);

}  // namespace reptile::parallel
