#pragma once
// End-to-end distributed Reptile: the paper's full pipeline (Steps I-IV
// plus load balancing and heuristics), driven over the in-process runtime.
//
// Every functional configuration produces corrected reads bit-identical to
// core::run_sequential on the same input — the integration tests pin this
// for all heuristic combinations and rank counts.

#include <cstdint>
#include <filesystem>
#include <vector>

#include "core/corrector.hpp"
#include "core/params.hpp"
#include "obs/trace.hpp"
#include "parallel/dist_spectrum.hpp"
#include "parallel/heuristics.hpp"
#include "parallel/lookup_service.hpp"
#include "parallel/remote_spectrum.hpp"
#include "rtm/check/check.hpp"
#include "rtm/topology.hpp"
#include "rtm/traffic.hpp"
#include "seq/read.hpp"

namespace reptile::parallel {

/// Configuration of one distributed run.
struct DistConfig {
  core::CorrectorParams params;
  Heuristics heuristics;
  int ranks = 4;
  int ranks_per_node = 1;
  /// Correction worker threads per rank (besides the communication
  /// thread). The paper runs 1 worker + 1 communication thread per rank in
  /// the distributed modes, and many workers per rank in the
  /// fully-replicated mode (64 threads/rank on BlueGene/Q). Each worker
  /// uses its own reply tags, so remote lookups from concurrent workers
  /// never mix. Combining >1 workers with the add_remote heuristic
  /// additionally requires batch_lookups: replies are then cached in each
  /// worker's private chunk-local cache instead of the shared reads tables
  /// (which are not thread-safe to write during correction).
  int worker_threads = 1;
  /// Runtime options: chaos delivery (see rtm/chaos.hpp) and rtm-check
  /// (see rtm/check/check.hpp). Checking defaults to on; when it is on,
  /// the linter is armed with the lookup protocol table + strict tags
  /// unless a custom table was supplied, since the lookup protocol is the
  /// only point-to-point traffic these pipelines generate.
  rtm::RunOptions run_options;
  /// Timeout/retry protocol for remote lookups (see parallel/protocol.hpp).
  /// Disabled by default (lookups block forever, the paper's behaviour);
  /// REQUIRED whenever run_options.chaos is lossy (drops or truncation) —
  /// validate_config rejects a lossy plan without retries, which could only
  /// deadlock.
  RetryPolicy retry;
  /// Observability for this run (see obs/trace.hpp): full span tracing
  /// (per-rank JSON shards written to `trace.path` at run end) and the
  /// metrics registry. Applied by run_distributed before ranks start —
  /// including the default-disabled state, so a traced run never leaks
  /// tracing into the next run in the same process. The flight recorder
  /// stays on either way.
  obs::TraceConfig trace;

  rtm::Topology topology() const { return {ranks, ranks_per_node}; }
};

/// Everything one rank measured; the unit of the paper's per-rank figures
/// (errors corrected per rank, fastest/slowest rank times, remote tile
/// lookups per rank, MB per rank, ...). The measurement fields are the
/// shared stats::PhaseTimeline core; this adds the rank id and the
/// runtime-side traffic/check snapshots.
struct RankReport : stats::PhaseTimeline {
  int rank = 0;
  rtm::TrafficSnapshot traffic;
  /// rtm-check counters (all-zero when checking was off for the run).
  rtm::check::CheckSnapshot check;
};

/// Result of a distributed run.
struct DistResult {
  /// Corrected reads, merged from all ranks and sorted by sequence number
  /// (i.e. in original file order, regardless of load balancing).
  std::vector<seq::Read> corrected;
  std::vector<RankReport> ranks;

  std::uint64_t total_substitutions() const {
    return stats::field_total(ranks, &stats::PhaseTimeline::substitutions);
  }
  std::uint64_t total_reads_changed() const {
    return stats::field_total(ranks, &stats::PhaseTimeline::reads_changed);
  }
  double max_construct_seconds() const {
    return stats::field_max(ranks, &stats::PhaseTimeline::construct_seconds);
  }
  double max_correct_seconds() const {
    return stats::field_max(ranks, &stats::PhaseTimeline::correct_seconds);
  }
};

/// Validates a DistConfig exactly as run_distributed would before starting
/// ranks; throws std::invalid_argument on any inconsistency (bad params or
/// heuristics, add_remote without batch_lookups under concurrent workers,
/// a lossy chaos plan with retries disabled). Exposed so other drivers over
/// the same config (the resident server in parallel/serve.hpp) reject bad
/// configs with identical messages.
void validate_dist_config(const DistConfig& config);

/// The run options actually handed to the runtime: when checking is on and
/// the caller supplied no custom tag table, arms the linter with the lookup
/// protocol table (which includes the serve-mode job tags) and strict tags —
/// that protocol is the only point-to-point traffic the pipelines send, so
/// any stray tag is a bug.
rtm::RunOptions resolve_run_options(const DistConfig& config);

/// Runs the full distributed pipeline over an in-memory dataset. Step I is
/// emulated by slicing `reads` into np contiguous partitions (the byte-range
/// file partitioning applied to in-memory data); file-based runs use
/// seq::PartitionedReadSource via the example binaries.
DistResult run_distributed(const std::vector<seq::Read>& reads,
                           const DistConfig& config);

/// Runs the full distributed pipeline from a FASTA + quality file pair:
/// every rank performs the paper's Step I itself (opens both files, takes
/// its byte range, aligns to record boundaries, seeks the quality file to
/// the same starting sequence number).
DistResult run_distributed_files(const std::filesystem::path& fasta,
                                 const std::filesystem::path& qual,
                                 const DistConfig& config);

}  // namespace reptile::parallel
