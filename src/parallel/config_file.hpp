#pragma once
// Reptile-style configuration file.
//
// The paper's Step I: "The input to parallel Reptile consists of a
// configuration file, which specifies the fasta file and the quality file to
// be used for the error correction" plus the chunk size and algorithm
// knobs. Format: one `key value` pair per line, '#' starts a comment.
//
//   fasta_file        reads.fa
//   qual_file         reads.qual
//   kmer_length       12
//   tile_overlap      4
//   kmer_threshold    3
//   tile_threshold    3
//   chunk_size        2000
//   universal         1
//   batch_reads       1
//   load_balance      1
//   ...

#include <filesystem>
#include <string>

#include "core/params.hpp"
#include "obs/trace.hpp"
#include "parallel/heuristics.hpp"
#include "parallel/job.hpp"
#include "parallel/protocol.hpp"
#include "rtm/chaos.hpp"

namespace reptile::parallel {

/// Fully parsed run configuration.
struct RunConfigFile {
  std::filesystem::path fasta_file;
  std::filesystem::path qual_file;
  std::filesystem::path output_file;  ///< corrected FASTA (optional)
  core::CorrectorParams params;
  Heuristics heuristics;
  /// Run with rtm-check armed (deadlock watchdog, mailbox audit, protocol
  /// linter — see rtm/check/check.hpp). On by default; benchmark configs
  /// turn it off to keep hooks off the hot path.
  bool rtm_check = true;
  /// Lock-free mailbox fast path (rtm/mailbox.hpp). Only effective while
  /// rtm_check is off; disable to A/B against the legacy locked mailbox.
  bool mailbox_fast_path = true;
  /// Fault-injection plan (chaos_* keys; inactive unless chaos_seed != 0).
  /// A lossy plan (drops/truncation) additionally requires the retry
  /// protocol below — validate_config enforces this at run time.
  rtm::FaultPlan chaos;
  /// Timeout/retry protocol for remote lookups (lookup_timeout_ticks /
  /// lookup_max_retries keys; disabled by default).
  RetryPolicy retry;
  /// Observability (trace_* / metrics_* keys; see obs/trace.hpp): full
  /// tracing to per-rank JSON shards, metrics registry, ring capacity.
  /// The flight recorder is always on regardless.
  obs::TraceConfig trace;
  /// Per-job overrides for serve mode (`job.*` keys; see parallel/job.hpp
  /// and parallel/serve.hpp). Only the correction-phase knobs exist in this
  /// namespace; a key is emitted by to_config_text only when set, so an
  /// override-free config round-trips without any job.* lines.
  JobOverrides job;
};

/// Parses a configuration file. Throws std::runtime_error with the line
/// number on malformed input or unknown keys, and validates the result.
RunConfigFile parse_config_file(const std::filesystem::path& path);

/// Parses configuration text (used by tests and string-based setup).
RunConfigFile parse_config_text(const std::string& text);

/// Serializes a configuration back to file text (round-trips through
/// parse_config_text).
std::string to_config_text(const RunConfigFile& config);

}  // namespace reptile::parallel
