#pragma once
// Execution-mode flags: the paper's heuristics (Section III-B).
//
// Every flag corresponds to one heuristic evaluated in Fig. 5; the default
// configuration (all off except load_balance) is the paper's base mode,
// and the paper's preferred production setting is
// {universal, batch_reads, load_balance}.

#include <stdexcept>
#include <string>

namespace reptile::parallel {

struct Heuristics {
  /// "Universal": lookup requests carry their own kind tag in the payload,
  /// so the communication thread accepts any message without probing per
  /// tag first. Bigger messages, no MPI_Probe.
  bool universal = false;

  /// "Read K-mers/Tiles": after construction, the rank keeps the k-mers and
  /// tiles extracted from its own reads (readsKmer/readsTile) with their
  /// *global* counts (fetched via one extra alltoallv) and consults them
  /// before sending a remote request.
  bool read_kmers = false;

  /// "Allgather k-mers": replicate the entire k-mer spectrum on every rank;
  /// k-mer lookups never leave the rank.
  bool allgather_kmers = false;

  /// "Allgather tiles": replicate the entire tile spectrum on every rank.
  bool allgather_tiles = false;

  /// "Add remote k-mer/tile lookups": cache every remote reply (including
  /// definitive absences) into the reads tables. Requires read_kmers.
  bool add_remote = false;

  /// "Batch Reads Table": run the Step III alltoallv after every chunk of
  /// reads and empty the reads tables, capping construction memory.
  bool batch_reads = false;

  /// Batched remote lookups (extension beyond the paper, see DESIGN.md):
  /// before correcting a chunk, every non-locally-resolvable k-mer/tile ID
  /// of the chunk's reads is deduplicated, bucketed by owning rank, and
  /// fetched with one vectored request per owner. Replies fill a bounded
  /// chunk-local prefetch cache consulted before the scalar remote
  /// fallback, so the correction inner loop is latency-bound only on the
  /// rare mid-correction candidate miss. Output is bit-identical to the
  /// scalar protocol.
  bool batch_lookups = false;

  /// Filter-accelerated remote lookups (extension beyond the paper, see
  /// DESIGN.md §9): after Step III every rank broadcasts a blocked-Bloom
  /// membership filter over each owned table to its out-of-group peers;
  /// requesters answer filter-definite absences locally (count 0, exactly
  /// what the owner's -1 reply would produce) and only pay the wire for
  /// probable hits. False positives cost one redundant round trip; false
  /// negatives are structurally impossible, so corrected output stays
  /// byte-identical to the unfiltered run. Composes with scalar, batched,
  /// and retry/chaos paths unchanged.
  bool filter_lookups = false;

  /// Target false-positive rate of the exchanged filters: lower rate =
  /// bigger filters = fewer redundant remote round trips. The memory-vs-
  /// traffic knob of the filter point on the fig5 curve.
  double filter_fp_rate = 0.01;

  /// Static load balancing (Section III-A): redistribute reads to their
  /// owning ranks (hash of the sequence) before both phases.
  bool load_balance = true;

  /// Partial replication (the paper's Section V future-work proposal):
  /// "each rank to store the k-mers and tiles of a subset of other ranks,
  /// besides the k-mers and the tiles the rank owns". Ranks are grouped in
  /// blocks of this size ([0..g), [g..2g), ...); every rank replicates the
  /// owned spectra of its whole group, so lookups owned within the group
  /// never leave the rank. 1 disables; ranks_per_node replicates per node.
  int partial_replication_group = 1;

  /// Bloom-filter construction (the paper's Step III note: "a memory-
  /// efficient alternative to this step is usage of a Bloom filter").
  /// Owners admit an ID into the exact table only on its second sighting;
  /// singletons — the bulk of the error-noise spectrum — cost only Bloom
  /// bits. APPROXIMATE: admitted counts can be off by one and Bloom false
  /// positives can admit a few singletons, so this mode trades exactness
  /// of sub-threshold counts for memory; above-threshold behaviour is
  /// statistically unchanged but not bit-identical to the exact mode.
  bool bloom_construction = false;

  /// True when both spectra are replicated ("allgather both"): the
  /// correction phase then needs no communication at all.
  bool fully_replicated() const noexcept {
    return allgather_kmers && allgather_tiles;
  }

  void validate() const {
    if (add_remote && !read_kmers) {
      throw std::invalid_argument(
          "heuristics: add_remote can only be run with read_kmers "
          "(remote replies are cached into the reads tables)");
    }
    if (partial_replication_group < 1) {
      throw std::invalid_argument(
          "heuristics: partial_replication_group must be >= 1");
    }
    if (filter_fp_rate <= 0.0 || filter_fp_rate >= 0.5) {
      throw std::invalid_argument(
          "heuristics: filter_fp_rate must be in (0, 0.5)");
    }
  }

  /// Short human-readable label for reports, e.g. "universal+batch_reads".
  std::string label() const {
    std::string out;
    auto add = [&out](bool on, const char* name) {
      if (!on) return;
      if (!out.empty()) out += '+';
      out += name;
    };
    add(universal, "universal");
    add(read_kmers, "read_kmers");
    add(allgather_kmers, "allgather_kmers");
    add(allgather_tiles, "allgather_tiles");
    add(add_remote, "add_remote");
    add(batch_reads, "batch_reads");
    add(batch_lookups, "batch_lookups");
    add(filter_lookups, "filter");
    add(load_balance, "load_balance");
    add(bloom_construction, "bloom");
    if (partial_replication_group > 1) {
      if (!out.empty()) out += '+';
      out += "partial_repl(" + std::to_string(partial_replication_group) + ")";
    }
    return out.empty() ? "base" : out;
  }
};

}  // namespace reptile::parallel
