#pragma once
// SpectrumView over the distributed spectrum: the worker thread's lookup
// chain.
//
// Paper Step IV lookup strategy: "If a rank during error correction does not
// have a k-mer (or tile), it first finds out if it is the owning rank. In
// case the processing rank p is the owning rank, this implies that the k-mer
// or tile does not exist; in case the processing rank is not the owning
// rank, it looks up its readsKmer hash table (in case of the corresponding
// mode of execution). If the k-mer is not found, it sends a message to the
// owning rank, requesting the count."
//
// Chain, in order (first hit wins):
//   1. replicated table        (allgather_* heuristics; never remote)
//   2. owned table             (when this rank is the owner — a miss here is
//                               a definitive global absence)
//   3. group table             (partial replication, the paper's Section V
//                               future work: definitive for owners inside
//                               this rank's replication group)
//   4. reads table             (read_kmers heuristic; holds global counts)
//   5. peer filter             (filter_lookups extension: the owner's
//                               exchanged membership filter; "definitely
//                               absent" is exact — the owner would reply -1
//                               — and answers locally; "maybe" falls
//                               through and pays the wire)
//   6. prefetch cache          (batch_lookups extension: chunk-local counts
//                               fetched ahead of correction with one
//                               vectored request per owner; counts here are
//                               verbatim remote replies, so hits are exact)
//   7. remote request/reply    (blocking; reply -1 maps to count 0);
//      with add_remote the reply is cached into the reads table (shared,
//      single worker) or this worker's prefetch cache (multi-worker).

#include <cstdint>
#include <vector>

#include "core/spectrum.hpp"
#include "hash/count_table.hpp"
#include "obs/metrics.hpp"
#include "parallel/dist_spectrum.hpp"
#include "parallel/protocol.hpp"
#include "rtm/comm.hpp"
#include "seq/read.hpp"
#include "stats/phase_timeline.hpp"
#include "stats/stopwatch.hpp"

namespace reptile::parallel {

/// Remote-side counters for one rank's correction phase; the definition
/// lives in the unified report core (stats/phase_timeline.hpp).
using RemoteLookupStats = stats::RemoteLookupStats;

class RemoteSpectrumView final : public core::SpectrumView {
 public:
  /// `worker_slot` distinguishes concurrent correction worker threads of
  /// one rank: each slot's remote requests carry their own reply tag so
  /// replies route back to the right thread. Slot 0 is the single-threaded
  /// default. With `cache_remote_locally` the add_remote heuristic caches
  /// scalar replies into this worker's chunk-local prefetch cache instead
  /// of the shared reads tables — the thread-safe variant used when
  /// several workers share one rank. `retry` arms the timeout/retry
  /// protocol (see protocol.hpp); the default (disabled) blocks forever,
  /// exactly the paper's behaviour. `heur_override` substitutes the
  /// correction-phase heuristics (universal / batch_lookups /
  /// filter_lookups / add_remote) for the spectrum's build heuristics —
  /// the serve-mode per-job override seam; nullptr keeps the build values.
  RemoteSpectrumView(rtm::Comm& comm, DistSpectrum& spectrum,
                     int worker_slot = 0, bool cache_remote_locally = false,
                     RetryPolicy retry = {},
                     const Heuristics* heur_override = nullptr);

  /// Batched-lookup prefetch (batch_lookups heuristic; no-op otherwise):
  /// scans `batch` once, extracts every k-mer and tile ID, filters out the
  /// locally resolvable ones (same chain as lookup()), dedupes, buckets by
  /// owning rank, and issues one vectored request per owner per kind.
  /// Replies repopulate the chunk-local prefetch cache (cleared first, and
  /// capped at core::CorrectorParams::prefetch_capacity IDs per chunk).
  /// Call once per chunk, before correcting its reads.
  void prefetch_chunk(const seq::ReadBatch& batch);

  std::uint32_t kmer_count(seq::kmer_id_t id) override;
  std::uint32_t tile_count(seq::tile_id_t id) override;
  const core::LookupStats& stats() const override { return stats_; }

  /// Lookups that gave up after max_retries and returned a conservative 0.
  /// The corrector snapshots this around each tile decision and refuses to
  /// apply corrections whose evidence involved a degraded lookup.
  std::uint64_t degraded_lookups() const override {
    return remote_.degraded_lookups;
  }

  const RemoteLookupStats& remote_stats() const noexcept { return remote_; }

  /// Wall-clock time the worker spent blocked on remote replies — the
  /// paper's per-rank "communication time".
  double comm_seconds() const noexcept { return comm_wait_.seconds(); }

 private:
  std::uint32_t lookup(std::uint64_t id, LookupKind kind);
  /// `filter_said_maybe` marks a lookup the peer filter let through, so an
  /// absent reply is counted as a filter false positive.
  std::uint32_t remote_lookup(int owner, std::uint64_t id, LookupKind kind,
                              bool filter_said_maybe = false);

  /// True when `id` of `kind` can only be resolved by messaging `owner`
  /// (i.e. it would reach step 5+ of the lookup chain).
  bool needs_remote(std::uint64_t id, LookupKind kind, int& owner) const;

  /// Inserts into the chunk-local cache, respecting prefetch_capacity.
  void cache_local(std::uint64_t id, LookupKind kind, std::uint32_t count);

  /// Lazily resolved latency histogram (nullptr when metrics are off).
  /// Cached per view: registry lookups lock a mutex, which a per-lookup
  /// fetch would put on the hot path. Valid for the whole run — the
  /// registry only invalidates instruments between runs.
  obs::Histogram* latency_histogram(const char* name, obs::Histogram*& slot,
                                    bool& resolved);

  rtm::Comm* comm_;
  DistSpectrum* spectrum_;
  Heuristics heur_;
  int worker_slot_;
  bool cache_remote_locally_;
  RetryPolicy retry_;
  /// Per-view request sequence numbers; 0 is reserved for unsequenced
  /// traffic, so allocation starts at 1. Worker-private (no locking).
  std::uint64_t next_seq_ = 1;
  core::LookupStats stats_;
  RemoteLookupStats remote_;
  stats::Accumulator comm_wait_;

  obs::Histogram* rtt_hist_ = nullptr;
  bool rtt_hist_resolved_ = false;
  obs::Histogram* batch_hist_ = nullptr;
  bool batch_hist_resolved_ = false;

  /// Chunk-local prefetch cache: verbatim remote counts (0 = definitive
  /// absence), cleared by every prefetch_chunk. Worker-private, so no
  /// locking is ever needed.
  hash::CountTable<> prefetch_kmer_;
  hash::CountTable<> prefetch_tile_;

  // Scratch reused across prefetch_chunk calls. (Request encoding needs no
  // scratch anymore: batches are built in place in arena payloads.)
  std::vector<seq::kmer_id_t> kmer_scratch_;
  std::vector<seq::tile_id_t> tile_scratch_;
};

}  // namespace reptile::parallel
