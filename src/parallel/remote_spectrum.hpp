#pragma once
// SpectrumView over the distributed spectrum: the worker thread's lookup
// chain.
//
// Paper Step IV lookup strategy: "If a rank during error correction does not
// have a k-mer (or tile), it first finds out if it is the owning rank. In
// case the processing rank p is the owning rank, this implies that the k-mer
// or tile does not exist; in case the processing rank is not the owning
// rank, it looks up its readsKmer hash table (in case of the corresponding
// mode of execution). If the k-mer is not found, it sends a message to the
// owning rank, requesting the count."
//
// Chain, in order (first hit wins):
//   1. replicated table        (allgather_* heuristics; never remote)
//   2. owned table             (when this rank is the owner — a miss here is
//                               a definitive global absence)
//   3. group table             (partial replication, the paper's Section V
//                               future work: definitive for owners inside
//                               this rank's replication group)
//   4. reads table             (read_kmers heuristic; holds global counts)
//   5. remote request/reply    (blocking; reply -1 maps to count 0);
//      with add_remote the reply is cached into the reads table.

#include <cstdint>

#include "core/spectrum.hpp"
#include "parallel/dist_spectrum.hpp"
#include "parallel/protocol.hpp"
#include "rtm/comm.hpp"
#include "stats/stopwatch.hpp"

namespace reptile::parallel {

/// Remote-side counters for one rank's correction phase.
struct RemoteLookupStats {
  std::uint64_t remote_kmer_lookups = 0;
  std::uint64_t remote_tile_lookups = 0;
  std::uint64_t remote_kmer_absent = 0;  ///< replies that said "not in spectrum"
  std::uint64_t remote_tile_absent = 0;
  std::uint64_t reads_table_hits = 0;    ///< resolved by the reads tables
  std::uint64_t group_lookups = 0;       ///< resolved by partial replication

  std::uint64_t remote_lookups() const noexcept {
    return remote_kmer_lookups + remote_tile_lookups;
  }
};

class RemoteSpectrumView final : public core::SpectrumView {
 public:
  /// `worker_slot` distinguishes concurrent correction worker threads of
  /// one rank: each slot's remote requests carry their own reply tag so
  /// replies route back to the right thread. Slot 0 is the single-threaded
  /// default.
  RemoteSpectrumView(rtm::Comm& comm, DistSpectrum& spectrum,
                     int worker_slot = 0);

  std::uint32_t kmer_count(seq::kmer_id_t id) override;
  std::uint32_t tile_count(seq::tile_id_t id) override;
  const core::LookupStats& stats() const override { return stats_; }

  const RemoteLookupStats& remote_stats() const noexcept { return remote_; }

  /// Wall-clock time the worker spent blocked on remote replies — the
  /// paper's per-rank "communication time".
  double comm_seconds() const noexcept { return comm_wait_.seconds(); }

 private:
  std::uint32_t lookup(std::uint64_t id, LookupKind kind);
  std::uint32_t remote_lookup(int owner, std::uint64_t id, LookupKind kind);

  rtm::Comm* comm_;
  DistSpectrum* spectrum_;
  Heuristics heur_;
  int worker_slot_;
  core::LookupStats stats_;
  RemoteLookupStats remote_;
  stats::Accumulator comm_wait_;
};

}  // namespace reptile::parallel
