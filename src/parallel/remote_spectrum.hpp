#pragma once
// SpectrumView over the distributed spectrum: the worker thread's lookup
// chain.
//
// Paper Step IV lookup strategy: "If a rank during error correction does not
// have a k-mer (or tile), it first finds out if it is the owning rank. In
// case the processing rank p is the owning rank, this implies that the k-mer
// or tile does not exist; in case the processing rank is not the owning
// rank, it looks up its readsKmer hash table (in case of the corresponding
// mode of execution). If the k-mer is not found, it sends a message to the
// owning rank, requesting the count."
//
// Chain, in order (first hit wins):
//   1. replicated table        (allgather_* heuristics; never remote)
//   2. owned table             (when this rank is the owner — a miss here is
//                               a definitive global absence)
//   3. group table             (partial replication, the paper's Section V
//                               future work: definitive for owners inside
//                               this rank's replication group)
//   4. reads table             (read_kmers heuristic; holds global counts)
//   5. prefetch cache          (batch_lookups extension: chunk-local counts
//                               fetched ahead of correction with one
//                               vectored request per owner; counts here are
//                               verbatim remote replies, so hits are exact)
//   6. remote request/reply    (blocking; reply -1 maps to count 0);
//      with add_remote the reply is cached into the reads table (shared,
//      single worker) or this worker's prefetch cache (multi-worker).

#include <cstdint>
#include <vector>

#include "core/spectrum.hpp"
#include "hash/count_table.hpp"
#include "parallel/dist_spectrum.hpp"
#include "parallel/protocol.hpp"
#include "rtm/comm.hpp"
#include "seq/read.hpp"
#include "stats/stopwatch.hpp"

namespace reptile::parallel {

/// Remote-side counters for one rank's correction phase.
struct RemoteLookupStats {
  std::uint64_t remote_kmer_lookups = 0;
  std::uint64_t remote_tile_lookups = 0;
  std::uint64_t remote_kmer_absent = 0;  ///< replies that said "not in spectrum"
  std::uint64_t remote_tile_absent = 0;
  std::uint64_t reads_table_hits = 0;    ///< resolved by the reads tables
  std::uint64_t group_lookups = 0;       ///< resolved by partial replication

  // batch_lookups extension counters.
  std::uint64_t batch_requests = 0;   ///< vectored prefetch messages sent
  std::uint64_t batch_ids = 0;        ///< deduped IDs those messages carried
  std::uint64_t batch_ids_raw = 0;    ///< remote-needing IDs before dedup
  std::uint64_t prefetch_hits = 0;    ///< lookups answered by the chunk cache
  std::uint64_t prefetch_misses = 0;  ///< fell through the cache to scalar

  // Timeout/retry protocol counters (RetryPolicy; all 0 on fault-free runs
  // with retries disabled).
  std::uint64_t lookup_retries = 0;   ///< scalar requests retransmitted
  std::uint64_t lookup_timeouts = 0;  ///< reply waits that expired
  std::uint64_t degraded_lookups = 0; ///< scalar lookups given up after
                                      ///< max_retries (corrector skips)
  std::uint64_t stale_replies_suppressed = 0;  ///< seq-mismatched replies
  std::uint64_t malformed_replies = 0;  ///< undecodable replies discarded
  std::uint64_t batch_retries = 0;    ///< batch requests retransmitted
  std::uint64_t batch_abandoned = 0;  ///< batches given up (IDs go scalar)

  std::uint64_t remote_lookups() const noexcept {
    return remote_kmer_lookups + remote_tile_lookups;
  }

  /// Average IDs per vectored request (0 when none were sent).
  double avg_batch_size() const noexcept {
    return batch_requests == 0
               ? 0.0
               : static_cast<double>(batch_ids) /
                     static_cast<double>(batch_requests);
  }

  /// Fraction of remote-needing IDs removed by per-chunk deduplication.
  double dedup_ratio() const noexcept {
    return batch_ids_raw == 0
               ? 0.0
               : 1.0 - static_cast<double>(batch_ids) /
                           static_cast<double>(batch_ids_raw);
  }

  /// Fraction of would-be remote lookups answered by the prefetch cache.
  double prefetch_hit_rate() const noexcept {
    const std::uint64_t total = prefetch_hits + prefetch_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(prefetch_hits) /
                            static_cast<double>(total);
  }

  RemoteLookupStats& operator+=(const RemoteLookupStats& o) noexcept {
    remote_kmer_lookups += o.remote_kmer_lookups;
    remote_tile_lookups += o.remote_tile_lookups;
    remote_kmer_absent += o.remote_kmer_absent;
    remote_tile_absent += o.remote_tile_absent;
    reads_table_hits += o.reads_table_hits;
    group_lookups += o.group_lookups;
    batch_requests += o.batch_requests;
    batch_ids += o.batch_ids;
    batch_ids_raw += o.batch_ids_raw;
    prefetch_hits += o.prefetch_hits;
    prefetch_misses += o.prefetch_misses;
    lookup_retries += o.lookup_retries;
    lookup_timeouts += o.lookup_timeouts;
    degraded_lookups += o.degraded_lookups;
    stale_replies_suppressed += o.stale_replies_suppressed;
    malformed_replies += o.malformed_replies;
    batch_retries += o.batch_retries;
    batch_abandoned += o.batch_abandoned;
    return *this;
  }
};

class RemoteSpectrumView final : public core::SpectrumView {
 public:
  /// `worker_slot` distinguishes concurrent correction worker threads of
  /// one rank: each slot's remote requests carry their own reply tag so
  /// replies route back to the right thread. Slot 0 is the single-threaded
  /// default. With `cache_remote_locally` the add_remote heuristic caches
  /// scalar replies into this worker's chunk-local prefetch cache instead
  /// of the shared reads tables — the thread-safe variant used when
  /// several workers share one rank. `retry` arms the timeout/retry
  /// protocol (see protocol.hpp); the default (disabled) blocks forever,
  /// exactly the paper's behaviour.
  RemoteSpectrumView(rtm::Comm& comm, DistSpectrum& spectrum,
                     int worker_slot = 0, bool cache_remote_locally = false,
                     RetryPolicy retry = {});

  /// Batched-lookup prefetch (batch_lookups heuristic; no-op otherwise):
  /// scans `batch` once, extracts every k-mer and tile ID, filters out the
  /// locally resolvable ones (same chain as lookup()), dedupes, buckets by
  /// owning rank, and issues one vectored request per owner per kind.
  /// Replies repopulate the chunk-local prefetch cache (cleared first, and
  /// capped at core::CorrectorParams::prefetch_capacity IDs per chunk).
  /// Call once per chunk, before correcting its reads.
  void prefetch_chunk(const seq::ReadBatch& batch);

  std::uint32_t kmer_count(seq::kmer_id_t id) override;
  std::uint32_t tile_count(seq::tile_id_t id) override;
  const core::LookupStats& stats() const override { return stats_; }

  /// Lookups that gave up after max_retries and returned a conservative 0.
  /// The corrector snapshots this around each tile decision and refuses to
  /// apply corrections whose evidence involved a degraded lookup.
  std::uint64_t degraded_lookups() const override {
    return remote_.degraded_lookups;
  }

  const RemoteLookupStats& remote_stats() const noexcept { return remote_; }

  /// Wall-clock time the worker spent blocked on remote replies — the
  /// paper's per-rank "communication time".
  double comm_seconds() const noexcept { return comm_wait_.seconds(); }

 private:
  std::uint32_t lookup(std::uint64_t id, LookupKind kind);
  std::uint32_t remote_lookup(int owner, std::uint64_t id, LookupKind kind);

  /// True when `id` of `kind` can only be resolved by messaging `owner`
  /// (i.e. it would reach step 5+ of the lookup chain).
  bool needs_remote(std::uint64_t id, LookupKind kind, int& owner) const;

  /// Inserts into the chunk-local cache, respecting prefetch_capacity.
  void cache_local(std::uint64_t id, LookupKind kind, std::uint32_t count);

  rtm::Comm* comm_;
  DistSpectrum* spectrum_;
  Heuristics heur_;
  int worker_slot_;
  bool cache_remote_locally_;
  RetryPolicy retry_;
  /// Per-view request sequence numbers; 0 is reserved for unsequenced
  /// traffic, so allocation starts at 1. Worker-private (no locking).
  std::uint64_t next_seq_ = 1;
  core::LookupStats stats_;
  RemoteLookupStats remote_;
  stats::Accumulator comm_wait_;

  /// Chunk-local prefetch cache: verbatim remote counts (0 = definitive
  /// absence), cleared by every prefetch_chunk. Worker-private, so no
  /// locking is ever needed.
  hash::CountTable<> prefetch_kmer_;
  hash::CountTable<> prefetch_tile_;

  // Scratch reused across prefetch_chunk calls.
  std::vector<seq::kmer_id_t> kmer_scratch_;
  std::vector<seq::tile_id_t> tile_scratch_;
  std::vector<std::uint8_t> encode_scratch_;
};

}  // namespace reptile::parallel
