#pragma once
// Flattening a distributed run into a machine-readable report.

#include "obs/metrics.hpp"
#include "parallel/dist_pipeline.hpp"
#include "stats/report.hpp"

namespace reptile::parallel {

/// One record per rank with the quantities the paper's figures track.
/// When the metrics registry is enabled for the run, each record also
/// carries the latency-histogram summaries (lookup RTT, batch prefetch,
/// service handle, mailbox wait) — gated on the registry rather than
/// per-histogram presence so every rank's record has the same columns
/// (RunReport::add enforces one schema per report).
inline stats::RunReport to_report(const DistResult& result,
                                  const std::string& title) {
  const bool metrics = obs::Registry::global().enabled();
  const auto add_latency = [](stats::RunReport& rec, const std::string& column,
                              const obs::HistogramSummary& h) {
    rec.add(column + "_count", static_cast<double>(h.count))
        .add(column + "_p50_us", static_cast<double>(h.p50))
        .add(column + "_p99_us", static_cast<double>(h.p99))
        .add(column + "_max_us", static_cast<double>(h.max));
  };
  stats::RunReport report(title);
  for (const RankReport& r : result.ranks) {
    report.record()
        .add("rank", r.rank)
        .add("reads", static_cast<double>(r.reads_processed))
        .add("reads_changed", static_cast<double>(r.reads_changed))
        .add("substitutions", static_cast<double>(r.substitutions))
        .add("tiles_untrusted", static_cast<double>(r.tiles_untrusted))
        .add("kmer_lookups", static_cast<double>(r.lookups.kmer_lookups))
        .add("tile_lookups", static_cast<double>(r.lookups.tile_lookups))
        .add("remote_kmer_lookups",
             static_cast<double>(r.remote.remote_kmer_lookups))
        .add("remote_tile_lookups",
             static_cast<double>(r.remote.remote_tile_lookups))
        .add("requests_served",
             static_cast<double>(r.service.requests_served))
        .add("probe_calls", static_cast<double>(r.service.probe_calls))
        .add("batch_requests", static_cast<double>(r.remote.batch_requests))
        .add("batch_kmer_ids", static_cast<double>(r.remote.batch_kmer_ids))
        .add("batch_tile_ids", static_cast<double>(r.remote.batch_tile_ids))
        .add("avg_batch_size", r.remote.avg_batch_size())
        .add("dedup_ratio", r.remote.dedup_ratio())
        .add("prefetch_hits", static_cast<double>(r.remote.prefetch_hits))
        .add("prefetch_hit_rate", r.remote.prefetch_hit_rate())
        .add("filter_neg_hits",
             static_cast<double>(r.remote.filter_neg_hits))
        .add("filter_false_positives",
             static_cast<double>(r.remote.filter_false_positives))
        .add("filter_bytes",
             static_cast<double>(r.footprint_after_correction.filter_bytes))
        .add("batch_requests_served",
             static_cast<double>(r.service.batch_requests))
        .add("construct_seconds", r.construct_seconds)
        .add("correct_seconds", r.correct_seconds)
        .add("comm_seconds", r.comm_seconds)
        .add("spectrum_bytes",
             static_cast<double>(r.footprint_after_correction.bytes))
        .add("construction_peak_bytes",
             static_cast<double>(r.construction_peak_bytes))
        .add("sent_msgs", static_cast<double>(r.traffic.sent_msgs()))
        .add("sent_bytes", static_cast<double>(r.traffic.sent_bytes()))
        .add("largest_msg_bytes",
             static_cast<double>(r.traffic.largest_msg_bytes))
        .add("check_lint_msgs", static_cast<double>(r.check.lint_checked))
        .add("check_fifo_violations",
             static_cast<double>(r.check.fifo_violations))
        .add("check_leaked_msgs",
             static_cast<double>(r.check.leaked_messages))
        .add("check_orphan_replies",
             static_cast<double>(r.check.orphaned_replies))
        .add("check_unanswered",
             static_cast<double>(r.check.unanswered_requests))
        .add("check_max_pending_at_barrier",
             static_cast<double>(r.check.max_pending_at_barrier))
        // Fault-injection / retry-protocol columns (all 0 on fault-free
        // runs with retries disabled).
        .add("tiles_degraded", static_cast<double>(r.tiles_degraded))
        .add("lookup_retries", static_cast<double>(r.remote.lookup_retries))
        .add("lookup_timeouts",
             static_cast<double>(r.remote.lookup_timeouts))
        .add("degraded_lookups",
             static_cast<double>(r.remote.degraded_lookups))
        .add("stale_replies_suppressed",
             static_cast<double>(r.remote.stale_replies_suppressed))
        .add("batch_retries", static_cast<double>(r.remote.batch_retries))
        .add("batch_abandoned",
             static_cast<double>(r.remote.batch_abandoned))
        .add("malformed_requests",
             static_cast<double>(r.service.malformed_requests))
        .add("chaos_dropped_msgs",
             static_cast<double>(r.traffic.dropped_msgs))
        .add("chaos_duplicated_msgs",
             static_cast<double>(r.traffic.duplicated_msgs))
        .add("check_retransmits", static_cast<double>(r.check.retransmits))
        .add("check_stale_leaks", static_cast<double>(r.check.stale_leaks));
    if (metrics) {
      const auto& reg = obs::Registry::global();
      add_latency(report, "lookup_rtt",
                  reg.histogram_summary("reptile_lookup_rtt_us", r.rank));
      add_latency(report, "batch_prefetch",
                  reg.histogram_summary("reptile_batch_prefetch_us", r.rank));
      add_latency(report, "service_handle",
                  reg.histogram_summary("reptile_service_handle_us", r.rank));
      add_latency(report, "mailbox_wait",
                  reg.histogram_summary("reptile_mailbox_wait_us", r.rank));
    }
    // Resource-ledger columns, present only when the run armed the ledger
    // (same schema-gating idea as the histogram block above).
    if (!r.ledger.empty()) {
      for (const stats::LedgerAccountSample& row : r.ledger) {
        report.add(std::string("ledger_peak_") + row.account,
                   static_cast<double>(row.peak_bytes));
      }
      report
          .add("ledger_total_peak_bytes",
               static_cast<double>(r.ledger_total_peak_bytes))
          .add("rss_peak_bytes",
               static_cast<double>(r.ledger_rss_peak_bytes));
    }
  }
  return report;
}

}  // namespace reptile::parallel
