#pragma once
// The communication thread: serves remote k-mer/tile count requests.
//
// Paper Step IV: "Each rank at the beginning of this step forks two separate
// threads — one thread is responsible for the error correction of the reads
// in its part of the file, while the other thread acts as a communication
// thread. ... The communication thread of each rank probes any incoming
// messages; based on the probe, it first finds out the nature of the request
// (if it is a k-mer or a tile lookup) ... and sends the appropriate
// response."
//
// Termination: every rank announces completion of its own correction work
// via Comm::signal_done(); the service loops until all ranks are done and
// its request queue is drained (a requester is never "done" while it has an
// outstanding request, so no request can arrive after that point).

#include <cstdint>

#include "obs/metrics.hpp"
#include "parallel/dist_spectrum.hpp"
#include "parallel/protocol.hpp"
#include "rtm/comm.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::parallel {

/// Per-service counters, read after the thread is joined; the definition
/// lives in the unified report core (stats/phase_timeline.hpp).
using ServiceStats = stats::ServiceStats;

class LookupService {
 public:
  /// The service answers from `spectrum`'s owned tables; `comm` is the
  /// rank's communicator (shared with the worker thread — all mailbox
  /// operations are thread-safe, and the service touches no collectives).
  LookupService(rtm::Comm& comm, const DistSpectrum& spectrum);

  /// Runs until every rank has signalled done and the request queue is
  /// empty. Call on a dedicated thread.
  void serve();

  const ServiceStats& stats() const noexcept { return stats_; }

 private:
  /// Services one request message; updates counters.
  void handle(const rtm::Message& msg);

  /// `seq` is echoed into the reply so the requester can match it to the
  /// (re)transmission it answers.
  void reply(int requester, LookupKind kind, std::uint64_t id, int reply_to,
             std::uint64_t seq);

  /// Answers a vectored request with a BatchReplyHeader-framed i32 count
  /// vector, aligned with the request's ID order (-1 = absent).
  void reply_batch(const rtm::Message& msg);

  rtm::Comm* comm_;
  const DistSpectrum* spectrum_;
  bool universal_;
  ServiceStats stats_;
  /// Handle-latency histogram, resolved once in serve() (nullptr when
  /// metrics are off; registry lookups lock a mutex, so never per message).
  obs::Histogram* handle_hist_ = nullptr;
};

}  // namespace reptile::parallel
