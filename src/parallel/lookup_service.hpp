#pragma once
// The communication thread: serves remote k-mer/tile count requests.
//
// Paper Step IV: "Each rank at the beginning of this step forks two separate
// threads — one thread is responsible for the error correction of the reads
// in its part of the file, while the other thread acts as a communication
// thread. ... The communication thread of each rank probes any incoming
// messages; based on the probe, it first finds out the nature of the request
// (if it is a k-mer or a tile lookup) ... and sends the appropriate
// response."
//
// Termination: every rank announces completion of its own correction work
// via Comm::signal_done(); the service loops until all ranks are done and
// its request queue is drained (a requester is never "done" while it has an
// outstanding request, so no request can arrive after that point).

#include <cstdint>

#include "parallel/dist_spectrum.hpp"
#include "parallel/protocol.hpp"
#include "rtm/comm.hpp"

namespace reptile::parallel {

/// Per-service counters, read after the thread is joined.
struct ServiceStats {
  std::uint64_t requests_served = 0;  ///< messages answered (scalar + batch)
  std::uint64_t kmer_requests = 0;    ///< scalar k-mer requests
  std::uint64_t tile_requests = 0;    ///< scalar tile requests
  std::uint64_t probe_calls = 0;  ///< tag probes (non-universal mode only)
  std::uint64_t absent_replies = 0;   ///< -1 answers, scalar or batched
  std::uint64_t batch_requests = 0;   ///< vectored requests answered
  std::uint64_t batch_ids_served = 0; ///< IDs looked up across all batches
  /// Requests dropped unanswered because the payload was malformed (wrong
  /// size / truncated by fault injection). The requester's timeout retry
  /// recovers; answering garbage would be worse than staying silent.
  std::uint64_t malformed_requests = 0;
};

class LookupService {
 public:
  /// The service answers from `spectrum`'s owned tables; `comm` is the
  /// rank's communicator (shared with the worker thread — all mailbox
  /// operations are thread-safe, and the service touches no collectives).
  LookupService(rtm::Comm& comm, const DistSpectrum& spectrum);

  /// Runs until every rank has signalled done and the request queue is
  /// empty. Call on a dedicated thread.
  void serve();

  const ServiceStats& stats() const noexcept { return stats_; }

 private:
  /// Services one request message; updates counters.
  void handle(const rtm::Message& msg);

  /// `seq` is echoed into the reply so the requester can match it to the
  /// (re)transmission it answers.
  void reply(int requester, LookupKind kind, std::uint64_t id, int reply_to,
             std::uint64_t seq);

  /// Answers a vectored request with a BatchReplyHeader-framed i32 count
  /// vector, aligned with the request's ID order (-1 = absent).
  void reply_batch(const rtm::Message& msg);

  rtm::Comm* comm_;
  const DistSpectrum* spectrum_;
  bool universal_;
  ServiceStats stats_;
};

}  // namespace reptile::parallel
