#pragma once
// The distributed k-mer + tile spectrum: paper Steps II and III.
//
// Each rank keeps four hash tables:
//   hashKmer  / hashTile  — entries this rank OWNS (hash(id) % np == rank),
//                           holding true global counts after the exchange;
//   readsKmer / readsTile — entries extracted from the rank's own reads that
//                           it does not own, holding local counts until the
//                           exchange routes them to their owners.
//
// Step III is an alltoallv of (id, count) pairs to owners followed by a
// merge; in batch mode (the "Batch Reads Table" heuristic) the exchange runs
// after every chunk of reads and the reads tables are emptied, bounding the
// construction-phase memory footprint.

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/params.hpp"
#include "core/spectrum.hpp"
#include "hash/bloom_filter.hpp"
#include "hash/count_table.hpp"
#include "hash/hashing.hpp"
#include "hash/owner_filter.hpp"
#include "parallel/heuristics.hpp"
#include "parallel/protocol.hpp"
#include "rtm/comm.hpp"
#include "seq/kmer.hpp"
#include "seq/tile.hpp"
#include "stats/phase_timeline.hpp"

namespace reptile::parallel {

/// (id, count) pair exchanged in Step III.
struct IdCount {
  std::uint64_t id = 0;
  std::uint32_t count = 0;
};
static_assert(std::is_trivially_copyable_v<IdCount>);

/// Sizes/memory snapshot of the four tables (plus replicas); the definition
/// lives in the unified report core (stats/phase_timeline.hpp).
using SpectrumFootprint = stats::SpectrumFootprint;

class DistSpectrum {
 public:
  DistSpectrum(const core::CorrectorParams& params, const Heuristics& heur,
               rtm::Comm& comm);

  /// Step II for one read: k-mers/tiles the rank owns go to hashKmer /
  /// hashTile, the rest to readsKmer / readsTile.
  void add_read(std::string_view bases);

  /// Step III: alltoallv the reads tables to their owners, merge received
  /// counts into the owned tables, and clear the reads tables. Collective.
  /// Safe to call repeatedly (batch mode runs it once per chunk; ranks that
  /// exhausted their reads keep participating with empty sends).
  void exchange_to_owners();

  /// Prunes the owned tables below the thresholds (end of Step III).
  /// Collective only in that every rank should do it at the same point.
  void prune();

  /// Read-kmers heuristic: replaces the local counts of readsKmer/readsTile
  /// (the non-owned IDs seen in this rank's reads) with *global* counts
  /// fetched from the owners; IDs pruned from the global spectrum are kept
  /// with count 0, i.e. known-absent. Collective (two alltoallv rounds per
  /// spectrum). Call after prune().
  void fetch_global_reads_tables();

  /// Allgather replication heuristics: replicate the full k-mer (tile)
  /// spectrum on every rank. Collective.
  void replicate_kmers();
  void replicate_tiles();

  /// Partial replication (paper Section V future work): every rank
  /// receives the owned spectra of all ranks in its replication group
  /// (blocks of heuristics().partial_replication_group consecutive ranks),
  /// merged with its own shard into the group tables. Collective; call
  /// after prune(). No-op when the group size is 1.
  void replicate_group();

  /// Frees the reads tables (default mode does not keep them for
  /// correction).
  void drop_reads_tables();

  /// Filter exchange (filter_lookups heuristic, DESIGN.md §9): builds a
  /// blocked-Bloom OwnerFilter over each still-owned table (kinds resolved
  /// by allgather replication are skipped — their owned shards were
  /// cleared) and sends it to every out-of-group peer; then collects the
  /// peers' filters. Collective; call after prune()/replicate_* on the rank
  /// main thread, before the correction service starts (kTagFilterExchange
  /// is the only tagged traffic in flight). Best effort when `retry` is
  /// armed: filters not received within the retry budget stay null and
  /// those owners keep the unfiltered wire path — a lost filter can cost
  /// traffic, never correctness. No-op unless filter_lookups is on.
  void exchange_filters(const RetryPolicy& retry);

  // --- lookups (all local; messaging lives in RemoteSpectrumView) --------

  /// Count in the owned table; nullopt when this rank is not the owner or
  /// the entry was pruned/absent. Pass canonical IDs.
  std::optional<std::uint32_t> owned_kmer(seq::kmer_id_t id) const;
  std::optional<std::uint32_t> owned_tile(seq::tile_id_t id) const;

  /// Count in the reads table; nullopt when absent.
  std::optional<std::uint32_t> reads_kmer(seq::kmer_id_t id) const;
  std::optional<std::uint32_t> reads_tile(seq::tile_id_t id) const;

  /// Count in the replicated table (only meaningful after replicate_*).
  std::optional<std::uint32_t> replica_kmer(seq::kmer_id_t id) const;
  std::optional<std::uint32_t> replica_tile(seq::tile_id_t id) const;

  /// Count in the group table (after replicate_group()); a miss is a
  /// definitive absence when owner_in_my_group(owner_of(id)) holds.
  std::optional<std::uint32_t> group_kmer(seq::kmer_id_t id) const;
  std::optional<std::uint32_t> group_tile(seq::tile_id_t id) const;

  /// True when `owner` belongs to this rank's replication group.
  bool owner_in_my_group(int owner) const noexcept {
    const int g = heur_.partial_replication_group;
    return g > 1 && owner / g == comm_->rank() / g;
  }

  /// What a peer's exchanged filter says about an ID owned by `owner`.
  /// kNoFilter = no usable filter for that owner (feature off, exchange
  /// lost, or the owner's kind is allgather-replicated) — take the wire
  /// path. kDefinitelyAbsent is exact: the owner's pruned table cannot
  /// contain the ID, so the reply would be -1 (count 0).
  enum class FilterAnswer { kNoFilter, kDefinitelyAbsent, kMaybePresent };
  FilterAnswer filter_kmer(seq::kmer_id_t id, int owner) const;
  FilterAnswer filter_tile(seq::tile_id_t id, int owner) const;

  /// Total bytes of peer filters held after exchange_filters().
  std::size_t filter_bytes() const noexcept { return filter_bytes_; }

  /// Caches a remote reply (add_remote heuristic); count 0 records a
  /// definitive absence. The cache is bounded by
  /// core::CorrectorParams::remote_cache_capacity entries per table: beyond
  /// it the oldest cached reply is evicted (FIFO). Entries placed in the
  /// reads tables by fetch_global_reads_tables are never evicted — eviction
  /// only ever costs a redundant remote lookup, never a wrong count.
  void cache_remote_kmer(seq::kmer_id_t id, std::uint32_t count);
  void cache_remote_tile(seq::tile_id_t id, std::uint32_t count);

  /// Serve-mode seam: evicts every add_remote-cached reply from the reads
  /// tables (the only correction-phase mutation of the spectrum), restoring
  /// the end-of-construction state so job N's lookups cannot be answered by
  /// job N-1's caches. Local (no communication); every rank calls it when
  /// starting a job.
  void reset_for_job();

  bool owns_kmer(seq::kmer_id_t id) const {
    return hash::owner_of(id, comm_->size()) == comm_->rank();
  }
  bool owns_tile(seq::tile_id_t id) const {
    return hash::owner_of(id, comm_->size()) == comm_->rank();
  }

  const core::SpectrumExtractor& extractor() const noexcept {
    return extractor_;
  }
  const Heuristics& heuristics() const noexcept { return heur_; }
  const core::CorrectorParams& params() const noexcept { return params_; }

  SpectrumFootprint footprint() const;

  const hash::CountTable<>& hash_kmers() const noexcept { return hash_kmer_; }
  const hash::CountTable<>& hash_tiles() const noexcept { return hash_tile_; }

 private:
  /// Buckets a table's entries by owning rank for the alltoallv.
  template <class Table>
  std::vector<std::vector<IdCount>> bucket_by_owner(const Table& table) const;

  /// One spectrum's exchange-and-merge round.
  void exchange_one(hash::CountTable<>& pending_table,
                    hash::CountTable<>& owned_table,
                    std::unique_ptr<hash::BloomFilter>& bloom);

  /// Owner-side insert; with bloom_construction, singletons are parked in
  /// the Bloom filter and admitted to the exact table on second sighting.
  void owner_add(hash::CountTable<>& owned_table,
                 std::unique_ptr<hash::BloomFilter>& bloom, std::uint64_t id,
                 std::uint32_t count);

  /// One spectrum's global-count fetch (read-kmers heuristic).
  void fetch_one(hash::CountTable<>& reads_table,
                 const hash::CountTable<>& owned_table);

  /// Shared bounded-insert path of cache_remote_kmer/tile.
  void cache_into(hash::CountTable<>& table,
                  std::deque<std::uint64_t>& order, std::uint64_t id,
                  std::uint32_t count);

  core::CorrectorParams params_;
  Heuristics heur_;
  rtm::Comm* comm_;
  core::SpectrumExtractor extractor_;

  hash::CountTable<> hash_kmer_;
  hash::CountTable<> hash_tile_;
  /// Non-owned entries staged since the last exchange (what the paper calls
  /// readsKmer/readsTile during Step II); cleared by every exchange.
  hash::CountTable<> pending_kmer_;
  hash::CountTable<> pending_tile_;
  /// Persistent reads tables of the read-kmers heuristic (union of all
  /// non-owned IDs of this rank's reads, later refreshed to global counts).
  hash::CountTable<> reads_kmer_;
  hash::CountTable<> reads_tile_;
  /// Insertion order of add_remote-cached entries, for FIFO eviction once
  /// remote_cache_capacity is reached. Holds only cached replies, never the
  /// fetch_global_reads_tables base entries.
  std::deque<std::uint64_t> remote_cache_order_kmer_;
  std::deque<std::uint64_t> remote_cache_order_tile_;
  hash::CountTable<> replica_kmer_;
  hash::CountTable<> replica_tile_;
  /// Group tables of the partial-replication mode: the merged owned shards
  /// of this rank's replication group.
  hash::CountTable<> group_kmer_;
  hash::CountTable<> group_tile_;
  bool kmers_replicated_ = false;
  bool tiles_replicated_ = false;
  /// Bloom filters of the bloom_construction mode (owner-side singleton
  /// suppression); sized lazily on first use.
  std::unique_ptr<hash::BloomFilter> bloom_kmer_;
  std::unique_ptr<hash::BloomFilter> bloom_tile_;
  /// Peer membership filters of the filter_lookups mode, indexed by owning
  /// rank; a null slot means "no filter — ask over the wire". Written once
  /// by exchange_filters() on the rank main thread before the worker and
  /// service threads start, read-only afterwards.
  std::vector<std::unique_ptr<hash::OwnerFilter>> peer_filter_kmer_;
  std::vector<std::unique_ptr<hash::OwnerFilter>> peer_filter_tile_;
  std::size_t filter_bytes_ = 0;
  /// Makes exchange_filters() one-shot: the filters are rank-lifetime, and
  /// a resident server calls prepare_correction once per job.
  bool filters_exchanged_ = false;

  // Scratch buffers reused across add_read calls.
  std::vector<seq::kmer_id_t> kmer_scratch_;
  std::vector<seq::tile_id_t> tile_scratch_;
};

}  // namespace reptile::parallel
