#include "parallel/config_file.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace reptile::parallel {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("config line " + std::to_string(line) + ": " + what);
}

bool parse_bool(const std::string& v, int line) {
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  fail(line, "expected boolean, got '" + v + "'");
}

long parse_int(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const long x = std::stol(v, &pos);
    if (pos != v.size()) fail(line, "trailing characters in number '" + v + "'");
    return x;
  } catch (const std::logic_error&) {
    fail(line, "expected integer, got '" + v + "'");
  }
}

double parse_double(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const double x = std::stod(v, &pos);
    if (pos != v.size()) fail(line, "trailing characters in number '" + v + "'");
    return x;
  } catch (const std::logic_error&) {
    fail(line, "expected number, got '" + v + "'");
  }
}

}  // namespace

RunConfigFile parse_config_text(const std::string& text) {
  RunConfigFile config;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key, value;
    if (!(ls >> key)) continue;  // blank or comment-only line
    if (!(ls >> value)) fail(lineno, "key '" + key + "' has no value");
    std::string extra;
    if (ls >> extra) fail(lineno, "unexpected trailing token '" + extra + "'");

    if (key == "fasta_file") {
      config.fasta_file = value;
    } else if (key == "qual_file") {
      config.qual_file = value;
    } else if (key == "output_file") {
      config.output_file = value;
    } else if (key == "kmer_length") {
      config.params.k = static_cast<int>(parse_int(value, lineno));
    } else if (key == "tile_overlap") {
      config.params.tile_overlap = static_cast<int>(parse_int(value, lineno));
    } else if (key == "kmer_threshold") {
      config.params.kmer_threshold =
          static_cast<unsigned>(parse_int(value, lineno));
    } else if (key == "tile_threshold") {
      config.params.tile_threshold =
          static_cast<unsigned>(parse_int(value, lineno));
    } else if (key == "canonical") {
      config.params.canonical = parse_bool(value, lineno);
    } else if (key == "qual_threshold") {
      config.params.qual_threshold =
          static_cast<int>(parse_int(value, lineno));
    } else if (key == "restrict_to_low_quality") {
      config.params.restrict_to_low_quality = parse_bool(value, lineno);
    } else if (key == "max_positions_per_tile") {
      config.params.max_positions_per_tile =
          static_cast<int>(parse_int(value, lineno));
    } else if (key == "max_hamming") {
      config.params.max_hamming = static_cast<int>(parse_int(value, lineno));
    } else if (key == "dominance_ratio") {
      config.params.dominance_ratio = parse_double(value, lineno);
    } else if (key == "max_corrections_per_read") {
      config.params.max_corrections_per_read =
          static_cast<int>(parse_int(value, lineno));
    } else if (key == "chunk_size") {
      config.params.chunk_size =
          static_cast<std::size_t>(parse_int(value, lineno));
    } else if (key == "prefetch_capacity") {
      config.params.prefetch_capacity =
          static_cast<std::size_t>(parse_int(value, lineno));
    } else if (key == "remote_cache_capacity") {
      config.params.remote_cache_capacity =
          static_cast<std::size_t>(parse_int(value, lineno));
    } else if (key == "universal") {
      config.heuristics.universal = parse_bool(value, lineno);
    } else if (key == "read_kmers") {
      config.heuristics.read_kmers = parse_bool(value, lineno);
    } else if (key == "allgather_kmers") {
      config.heuristics.allgather_kmers = parse_bool(value, lineno);
    } else if (key == "allgather_tiles") {
      config.heuristics.allgather_tiles = parse_bool(value, lineno);
    } else if (key == "add_remote") {
      config.heuristics.add_remote = parse_bool(value, lineno);
    } else if (key == "batch_reads") {
      config.heuristics.batch_reads = parse_bool(value, lineno);
    } else if (key == "batch_lookups") {
      config.heuristics.batch_lookups = parse_bool(value, lineno);
    } else if (key == "load_balance") {
      config.heuristics.load_balance = parse_bool(value, lineno);
    } else if (key == "partial_replication_group") {
      config.heuristics.partial_replication_group =
          static_cast<int>(parse_int(value, lineno));
    } else if (key == "bloom_construction") {
      config.heuristics.bloom_construction = parse_bool(value, lineno);
    } else if (key == "rtm_check") {
      config.rtm_check = parse_bool(value, lineno);
    } else if (key == "chaos_seed") {
      config.chaos.seed = static_cast<std::uint64_t>(parse_int(value, lineno));
    } else if (key == "chaos_max_delay_us") {
      config.chaos.max_delay_us = static_cast<int>(parse_int(value, lineno));
    } else if (key == "chaos_drop_rate") {
      config.chaos.drop_rate = parse_double(value, lineno);
    } else if (key == "chaos_duplicate_rate") {
      config.chaos.duplicate_rate = parse_double(value, lineno);
    } else if (key == "chaos_truncate_rate") {
      config.chaos.truncate_rate = parse_double(value, lineno);
    } else if (key == "chaos_stall_rate") {
      config.chaos.stall_rate = parse_double(value, lineno);
    } else if (key == "chaos_stall_us") {
      config.chaos.stall_us = static_cast<int>(parse_int(value, lineno));
    } else if (key == "lookup_timeout_ticks") {
      config.retry.timeout_ticks = static_cast<int>(parse_int(value, lineno));
    } else if (key == "lookup_max_retries") {
      config.retry.max_retries = static_cast<int>(parse_int(value, lineno));
    } else {
      fail(lineno, "unknown key '" + key + "'");
    }
  }
  config.params.validate();
  config.heuristics.validate();
  config.chaos.validate();
  config.retry.validate();
  return config;
}

RunConfigFile parse_config_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("config: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_config_text(buffer.str());
}

std::string to_config_text(const RunConfigFile& config) {
  std::ostringstream out;
  out << "# reptile-dist run configuration\n";
  if (!config.fasta_file.empty()) {
    out << "fasta_file " << config.fasta_file.string() << '\n';
  }
  if (!config.qual_file.empty()) {
    out << "qual_file " << config.qual_file.string() << '\n';
  }
  if (!config.output_file.empty()) {
    out << "output_file " << config.output_file.string() << '\n';
  }
  const auto& p = config.params;
  out << "kmer_length " << p.k << '\n'
      << "tile_overlap " << p.tile_overlap << '\n'
      << "kmer_threshold " << p.kmer_threshold << '\n'
      << "tile_threshold " << p.tile_threshold << '\n'
      << "canonical " << (p.canonical ? 1 : 0) << '\n'
      << "qual_threshold " << p.qual_threshold << '\n'
      << "restrict_to_low_quality " << (p.restrict_to_low_quality ? 1 : 0)
      << '\n'
      << "max_positions_per_tile " << p.max_positions_per_tile << '\n'
      << "max_hamming " << p.max_hamming << '\n'
      << "dominance_ratio " << p.dominance_ratio << '\n'
      << "max_corrections_per_read " << p.max_corrections_per_read << '\n'
      << "chunk_size " << p.chunk_size << '\n'
      << "prefetch_capacity " << p.prefetch_capacity << '\n'
      << "remote_cache_capacity " << p.remote_cache_capacity << '\n';
  const auto& h = config.heuristics;
  out << "universal " << (h.universal ? 1 : 0) << '\n'
      << "read_kmers " << (h.read_kmers ? 1 : 0) << '\n'
      << "allgather_kmers " << (h.allgather_kmers ? 1 : 0) << '\n'
      << "allgather_tiles " << (h.allgather_tiles ? 1 : 0) << '\n'
      << "add_remote " << (h.add_remote ? 1 : 0) << '\n'
      << "batch_reads " << (h.batch_reads ? 1 : 0) << '\n'
      << "batch_lookups " << (h.batch_lookups ? 1 : 0) << '\n'
      << "load_balance " << (h.load_balance ? 1 : 0) << '\n'
      << "partial_replication_group " << h.partial_replication_group << '\n'
      << "bloom_construction " << (h.bloom_construction ? 1 : 0) << '\n';
  out << "rtm_check " << (config.rtm_check ? 1 : 0) << '\n';
  const auto& c = config.chaos;
  out << "chaos_seed " << c.seed << '\n'
      << "chaos_max_delay_us " << c.max_delay_us << '\n'
      << "chaos_drop_rate " << c.drop_rate << '\n'
      << "chaos_duplicate_rate " << c.duplicate_rate << '\n'
      << "chaos_truncate_rate " << c.truncate_rate << '\n'
      << "chaos_stall_rate " << c.stall_rate << '\n'
      << "chaos_stall_us " << c.stall_us << '\n';
  out << "lookup_timeout_ticks " << config.retry.timeout_ticks << '\n'
      << "lookup_max_retries " << config.retry.max_retries << '\n';
  return out.str();
}

}  // namespace reptile::parallel
