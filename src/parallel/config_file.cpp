#include "parallel/config_file.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

namespace reptile::parallel {

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw std::runtime_error("config line " + std::to_string(line) + ": " + what);
}

bool parse_bool(const std::string& v, int line) {
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  fail(line, "expected boolean, got '" + v + "'");
}

long parse_int(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const long x = std::stol(v, &pos);
    if (pos != v.size()) fail(line, "trailing characters in number '" + v + "'");
    return x;
  } catch (const std::logic_error&) {
    fail(line, "expected integer, got '" + v + "'");
  }
}

double parse_double(const std::string& v, int line) {
  try {
    std::size_t pos = 0;
    const double x = std::stod(v, &pos);
    if (pos != v.size()) fail(line, "trailing characters in number '" + v + "'");
    return x;
  } catch (const std::logic_error&) {
    fail(line, "expected number, got '" + v + "'");
  }
}

/// One recognized key: its name and how its value lands in the config.
/// The table is the single source of truth for the key set — the parser,
/// the unknown-key suggestion, and (by construction) to_config_text all
/// cover exactly these keys.
struct KeySpec {
  std::string_view key;
  void (*apply)(RunConfigFile&, const std::string& value, int line);
};

constexpr KeySpec kKeys[] = {
    {"fasta_file",
     [](RunConfigFile& c, const std::string& v, int) { c.fasta_file = v; }},
    {"qual_file",
     [](RunConfigFile& c, const std::string& v, int) { c.qual_file = v; }},
    {"output_file",
     [](RunConfigFile& c, const std::string& v, int) { c.output_file = v; }},
    {"kmer_length",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.k = static_cast<int>(parse_int(v, l));
     }},
    {"tile_overlap",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.tile_overlap = static_cast<int>(parse_int(v, l));
     }},
    {"kmer_threshold",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.kmer_threshold = static_cast<unsigned>(parse_int(v, l));
     }},
    {"tile_threshold",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.tile_threshold = static_cast<unsigned>(parse_int(v, l));
     }},
    {"canonical",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.canonical = parse_bool(v, l);
     }},
    {"qual_threshold",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.qual_threshold = static_cast<int>(parse_int(v, l));
     }},
    {"restrict_to_low_quality",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.restrict_to_low_quality = parse_bool(v, l);
     }},
    {"max_positions_per_tile",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.max_positions_per_tile = static_cast<int>(parse_int(v, l));
     }},
    {"max_hamming",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.max_hamming = static_cast<int>(parse_int(v, l));
     }},
    {"dominance_ratio",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.dominance_ratio = parse_double(v, l);
     }},
    {"max_corrections_per_read",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.max_corrections_per_read = static_cast<int>(parse_int(v, l));
     }},
    {"chunk_size",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.chunk_size = static_cast<std::size_t>(parse_int(v, l));
     }},
    {"prefetch_capacity",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.prefetch_capacity = static_cast<std::size_t>(parse_int(v, l));
     }},
    {"remote_cache_capacity",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.params.remote_cache_capacity =
           static_cast<std::size_t>(parse_int(v, l));
     }},
    {"universal",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.universal = parse_bool(v, l);
     }},
    {"read_kmers",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.read_kmers = parse_bool(v, l);
     }},
    {"allgather_kmers",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.allgather_kmers = parse_bool(v, l);
     }},
    {"allgather_tiles",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.allgather_tiles = parse_bool(v, l);
     }},
    {"add_remote",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.add_remote = parse_bool(v, l);
     }},
    {"batch_reads",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.batch_reads = parse_bool(v, l);
     }},
    {"batch_lookups",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.batch_lookups = parse_bool(v, l);
     }},
    {"filter_lookups",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.filter_lookups = parse_bool(v, l);
     }},
    {"filter_fp_rate",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.filter_fp_rate = parse_double(v, l);
     }},
    {"load_balance",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.load_balance = parse_bool(v, l);
     }},
    {"partial_replication_group",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.partial_replication_group =
           static_cast<int>(parse_int(v, l));
     }},
    {"bloom_construction",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.heuristics.bloom_construction = parse_bool(v, l);
     }},
    {"rtm_check",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.rtm_check = parse_bool(v, l);
     }},
    {"mailbox_fast_path",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.mailbox_fast_path = parse_bool(v, l);
     }},
    {"chaos_seed",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.chaos.seed = static_cast<std::uint64_t>(parse_int(v, l));
     }},
    {"chaos_max_delay_us",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.chaos.max_delay_us = static_cast<int>(parse_int(v, l));
     }},
    {"chaos_drop_rate",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.chaos.drop_rate = parse_double(v, l);
     }},
    {"chaos_duplicate_rate",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.chaos.duplicate_rate = parse_double(v, l);
     }},
    {"chaos_truncate_rate",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.chaos.truncate_rate = parse_double(v, l);
     }},
    {"chaos_stall_rate",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.chaos.stall_rate = parse_double(v, l);
     }},
    {"chaos_stall_us",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.chaos.stall_us = static_cast<int>(parse_int(v, l));
     }},
    {"lookup_timeout_ticks",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.retry.timeout_ticks = static_cast<int>(parse_int(v, l));
     }},
    {"lookup_max_retries",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.retry.max_retries = static_cast<int>(parse_int(v, l));
     }},
    {"trace_enabled",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.trace.enabled = parse_bool(v, l);
     }},
    {"trace_path",
     [](RunConfigFile& c, const std::string& v, int) { c.trace.path = v; }},
    {"trace_ring_capacity",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.trace.ring_capacity = static_cast<std::size_t>(parse_int(v, l));
     }},
    {"metrics_enabled",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.trace.metrics = parse_bool(v, l);
     }},
    {"ledger_enabled",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.trace.ledger = parse_bool(v, l);
     }},
    // Serve-mode per-job overrides (parallel/job.hpp): the `job.*` namespace
    // mirrors the correction-phase subset of the top-level keys. Unset keys
    // keep the server's build-time value.
    {"job.qual_threshold",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.qual_threshold = static_cast<int>(parse_int(v, l));
     }},
    {"job.restrict_to_low_quality",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.restrict_to_low_quality = parse_bool(v, l);
     }},
    {"job.max_positions_per_tile",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.max_positions_per_tile = static_cast<int>(parse_int(v, l));
     }},
    {"job.max_hamming",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.max_hamming = static_cast<int>(parse_int(v, l));
     }},
    {"job.dominance_ratio",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.dominance_ratio = parse_double(v, l);
     }},
    {"job.max_corrections_per_read",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.max_corrections_per_read = static_cast<int>(parse_int(v, l));
     }},
    {"job.chunk_size",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.chunk_size = static_cast<std::size_t>(parse_int(v, l));
     }},
    {"job.prefetch_capacity",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.prefetch_capacity = static_cast<std::size_t>(parse_int(v, l));
     }},
    {"job.universal",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.universal = parse_bool(v, l);
     }},
    {"job.batch_lookups",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.batch_lookups = parse_bool(v, l);
     }},
    {"job.filter_lookups",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.filter_lookups = parse_bool(v, l);
     }},
    {"job.add_remote",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.add_remote = parse_bool(v, l);
     }},
    {"job.deadline_ms",
     [](RunConfigFile& c, const std::string& v, int l) {
       c.job.deadline_seconds = parse_double(v, l) / 1000.0;
     }},
    {"job.lookup_timeout_ticks",
     [](RunConfigFile& c, const std::string& v, int l) {
       if (!c.job.retry) c.job.retry.emplace();
       c.job.retry->timeout_ticks = static_cast<int>(parse_int(v, l));
     }},
    {"job.lookup_max_retries",
     [](RunConfigFile& c, const std::string& v, int l) {
       if (!c.job.retry) c.job.retry.emplace();
       c.job.retry->max_retries = static_cast<int>(parse_int(v, l));
     }},
};

/// Levenshtein distance, for the unknown-key suggestion. The key set is
/// tiny, so the quadratic DP is fine.
std::size_t edit_distance(std::string_view a, std::string_view b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

/// The valid key closest to `key` in edit distance (ties: table order).
std::string_view nearest_key(std::string_view key) {
  std::string_view best = kKeys[0].key;
  std::size_t best_distance = edit_distance(key, best);
  for (const KeySpec& spec : kKeys) {
    const std::size_t d = edit_distance(key, spec.key);
    if (d < best_distance) {
      best_distance = d;
      best = spec.key;
    }
  }
  return best;
}

}  // namespace

RunConfigFile parse_config_text(const std::string& text) {
  RunConfigFile config;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::string key, value;
    if (!(ls >> key)) continue;  // blank or comment-only line
    if (!(ls >> value)) fail(lineno, "key '" + key + "' has no value");
    std::string extra;
    if (ls >> extra) fail(lineno, "unexpected trailing token '" + extra + "'");

    const auto spec =
        std::find_if(std::begin(kKeys), std::end(kKeys),
                     [&key](const KeySpec& s) { return s.key == key; });
    if (spec == std::end(kKeys)) {
      fail(lineno, "unknown key '" + key + "' (nearest valid key: '" +
                       std::string(nearest_key(key)) + "')");
    }
    spec->apply(config, value, lineno);
  }
  config.params.validate();
  config.heuristics.validate();
  config.chaos.validate();
  config.retry.validate();
  // Validate the job overrides against this file's own build config (the
  // serve driver re-validates per submit with its actual worker count).
  config.job.validate(config.params, config.heuristics, /*worker_threads=*/1);
  return config;
}

RunConfigFile parse_config_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("config: cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_config_text(buffer.str());
}

std::string to_config_text(const RunConfigFile& config) {
  std::ostringstream out;
  out << "# reptile-dist run configuration\n";
  if (!config.fasta_file.empty()) {
    out << "fasta_file " << config.fasta_file.string() << '\n';
  }
  if (!config.qual_file.empty()) {
    out << "qual_file " << config.qual_file.string() << '\n';
  }
  if (!config.output_file.empty()) {
    out << "output_file " << config.output_file.string() << '\n';
  }
  const auto& p = config.params;
  out << "kmer_length " << p.k << '\n'
      << "tile_overlap " << p.tile_overlap << '\n'
      << "kmer_threshold " << p.kmer_threshold << '\n'
      << "tile_threshold " << p.tile_threshold << '\n'
      << "canonical " << (p.canonical ? 1 : 0) << '\n'
      << "qual_threshold " << p.qual_threshold << '\n'
      << "restrict_to_low_quality " << (p.restrict_to_low_quality ? 1 : 0)
      << '\n'
      << "max_positions_per_tile " << p.max_positions_per_tile << '\n'
      << "max_hamming " << p.max_hamming << '\n'
      << "dominance_ratio " << p.dominance_ratio << '\n'
      << "max_corrections_per_read " << p.max_corrections_per_read << '\n'
      << "chunk_size " << p.chunk_size << '\n'
      << "prefetch_capacity " << p.prefetch_capacity << '\n'
      << "remote_cache_capacity " << p.remote_cache_capacity << '\n';
  const auto& h = config.heuristics;
  out << "universal " << (h.universal ? 1 : 0) << '\n'
      << "read_kmers " << (h.read_kmers ? 1 : 0) << '\n'
      << "allgather_kmers " << (h.allgather_kmers ? 1 : 0) << '\n'
      << "allgather_tiles " << (h.allgather_tiles ? 1 : 0) << '\n'
      << "add_remote " << (h.add_remote ? 1 : 0) << '\n'
      << "batch_reads " << (h.batch_reads ? 1 : 0) << '\n'
      << "batch_lookups " << (h.batch_lookups ? 1 : 0) << '\n'
      << "filter_lookups " << (h.filter_lookups ? 1 : 0) << '\n'
      << "filter_fp_rate " << h.filter_fp_rate << '\n'
      << "load_balance " << (h.load_balance ? 1 : 0) << '\n'
      << "partial_replication_group " << h.partial_replication_group << '\n'
      << "bloom_construction " << (h.bloom_construction ? 1 : 0) << '\n';
  out << "rtm_check " << (config.rtm_check ? 1 : 0) << '\n';
  out << "mailbox_fast_path " << (config.mailbox_fast_path ? 1 : 0) << '\n';
  const auto& c = config.chaos;
  out << "chaos_seed " << c.seed << '\n'
      << "chaos_max_delay_us " << c.max_delay_us << '\n'
      << "chaos_drop_rate " << c.drop_rate << '\n'
      << "chaos_duplicate_rate " << c.duplicate_rate << '\n'
      << "chaos_truncate_rate " << c.truncate_rate << '\n'
      << "chaos_stall_rate " << c.stall_rate << '\n'
      << "chaos_stall_us " << c.stall_us << '\n';
  out << "lookup_timeout_ticks " << config.retry.timeout_ticks << '\n'
      << "lookup_max_retries " << config.retry.max_retries << '\n';
  const auto& t = config.trace;
  out << "trace_enabled " << (t.enabled ? 1 : 0) << '\n';
  if (!t.path.empty()) out << "trace_path " << t.path << '\n';
  out << "trace_ring_capacity " << t.ring_capacity << '\n'
      << "metrics_enabled " << (t.metrics ? 1 : 0) << '\n'
      << "ledger_enabled " << (t.ledger ? 1 : 0) << '\n';
  const JobOverrides& j = config.job;
  if (j.qual_threshold) out << "job.qual_threshold " << *j.qual_threshold << '\n';
  if (j.restrict_to_low_quality) {
    out << "job.restrict_to_low_quality " << (*j.restrict_to_low_quality ? 1 : 0)
        << '\n';
  }
  if (j.max_positions_per_tile) {
    out << "job.max_positions_per_tile " << *j.max_positions_per_tile << '\n';
  }
  if (j.max_hamming) out << "job.max_hamming " << *j.max_hamming << '\n';
  if (j.dominance_ratio) {
    out << "job.dominance_ratio " << *j.dominance_ratio << '\n';
  }
  if (j.max_corrections_per_read) {
    out << "job.max_corrections_per_read " << *j.max_corrections_per_read
        << '\n';
  }
  if (j.chunk_size) out << "job.chunk_size " << *j.chunk_size << '\n';
  if (j.prefetch_capacity) {
    out << "job.prefetch_capacity " << *j.prefetch_capacity << '\n';
  }
  if (j.universal) out << "job.universal " << (*j.universal ? 1 : 0) << '\n';
  if (j.batch_lookups) {
    out << "job.batch_lookups " << (*j.batch_lookups ? 1 : 0) << '\n';
  }
  if (j.filter_lookups) {
    out << "job.filter_lookups " << (*j.filter_lookups ? 1 : 0) << '\n';
  }
  if (j.add_remote) out << "job.add_remote " << (*j.add_remote ? 1 : 0) << '\n';
  if (j.deadline_seconds) {
    out << "job.deadline_ms " << (*j.deadline_seconds * 1000.0) << '\n';
  }
  if (j.retry) {
    out << "job.lookup_timeout_ticks " << j.retry->timeout_ticks << '\n'
        << "job.lookup_max_retries " << j.retry->max_retries << '\n';
  }
  return out.str();
}

}  // namespace reptile::parallel
