#include "parallel/dist_spectrum.hpp"

#include <algorithm>
#include <chrono>

#include "parallel/wire.hpp"

namespace reptile::parallel {

DistSpectrum::DistSpectrum(const core::CorrectorParams& params,
                           const Heuristics& heur, rtm::Comm& comm)
    : params_(params), heur_(heur), comm_(&comm), extractor_(params) {
  params_.validate();
  heur_.validate();
}

void DistSpectrum::owner_add(hash::CountTable<>& owned_table,
                             std::unique_ptr<hash::BloomFilter>& bloom,
                             std::uint64_t id, std::uint32_t count) {
  if (!heur_.bloom_construction) {
    owned_table.increment(id, count);
    return;
  }
  // Bloom-filter construction (paper Step III note): singletons stay in
  // the filter; the exact table only holds IDs sighted at least twice.
  if (owned_table.contains(id)) {
    owned_table.increment(id, count);
    return;
  }
  if (!bloom) {
    // Lazy sizing: a generous default; fill ratio is tested separately.
    bloom = std::make_unique<hash::BloomFilter>(1 << 20, 0.01);
  }
  if (count >= 2) {
    owned_table.increment(id, count);
    bloom->insert(id);
    return;
  }
  if (bloom->insert(id)) {
    // Second sighting (or a rare false positive): admit, crediting the
    // first sighting parked in the filter.
    owned_table.increment(id, count + 1);
  }
}

void DistSpectrum::add_read(std::string_view bases) {
  kmer_scratch_.clear();
  tile_scratch_.clear();
  extractor_.extract(bases, kmer_scratch_, tile_scratch_);
  const int me = comm_->rank();
  const int np = comm_->size();
  for (seq::kmer_id_t id : kmer_scratch_) {
    if (hash::owner_of(id, np) == me) {
      owner_add(hash_kmer_, bloom_kmer_, id, 1);
    } else {
      pending_kmer_.increment(id);
      if (heur_.read_kmers) reads_kmer_.increment(id);
    }
  }
  for (seq::tile_id_t id : tile_scratch_) {
    if (hash::owner_of(id, np) == me) {
      owner_add(hash_tile_, bloom_tile_, id, 1);
    } else {
      pending_tile_.increment(id);
      if (heur_.read_kmers) reads_tile_.increment(id);
    }
  }
}

template <class Table>
std::vector<std::vector<IdCount>> DistSpectrum::bucket_by_owner(
    const Table& table) const {
  const int np = comm_->size();
  std::vector<std::vector<IdCount>> buckets(static_cast<std::size_t>(np));
  table.for_each([&](std::uint64_t id, std::uint32_t count) {
    buckets[static_cast<std::size_t>(hash::owner_of(id, np))].push_back(
        {id, count});
  });
  return buckets;
}

void DistSpectrum::exchange_one(hash::CountTable<>& pending_table,
                                hash::CountTable<>& owned_table,
                                std::unique_ptr<hash::BloomFilter>& bloom) {
  const auto buckets = bucket_by_owner(pending_table);
  const auto received = comm_->alltoallv(buckets);
  for (const auto& part : received) {
    for (const IdCount& e : part) owner_add(owned_table, bloom, e.id, e.count);
  }
  pending_table.clear();
}

void DistSpectrum::exchange_to_owners() {
  exchange_one(pending_kmer_, hash_kmer_, bloom_kmer_);
  exchange_one(pending_tile_, hash_tile_, bloom_tile_);
}

void DistSpectrum::prune() {
  hash_kmer_.prune_below(params_.kmer_threshold);
  hash_tile_.prune_below(params_.tile_threshold);
}

void DistSpectrum::fetch_one(hash::CountTable<>& reads_table,
                             const hash::CountTable<>& owned_table) {
  const int np = comm_->size();
  // Round 1: send the IDs we want counted to their owners.
  std::vector<std::vector<std::uint64_t>> asks(static_cast<std::size_t>(np));
  reads_table.for_each([&](std::uint64_t id, std::uint32_t) {
    asks[static_cast<std::size_t>(hash::owner_of(id, np))].push_back(id);
  });
  const auto questions = comm_->alltoallv(asks);

  // Answer from the (pruned) owned table, order-aligned with the request.
  std::vector<std::vector<std::uint32_t>> answers(
      static_cast<std::size_t>(np));
  for (int src = 0; src < np; ++src) {
    const auto& q = questions[static_cast<std::size_t>(src)];
    auto& a = answers[static_cast<std::size_t>(src)];
    a.reserve(q.size());
    for (std::uint64_t id : q) {
      a.push_back(owned_table.find(id).value_or(0));
    }
  }
  const auto replies = comm_->alltoallv(answers);

  // Rebuild the reads table with global counts, in the same per-owner order
  // the asks were issued.
  hash::CountTable<> rebuilt(reads_table.size());
  for (int owner = 0; owner < np; ++owner) {
    const auto& sent = asks[static_cast<std::size_t>(owner)];
    const auto& got = replies[static_cast<std::size_t>(owner)];
    for (std::size_t i = 0; i < sent.size(); ++i) {
      rebuilt.increment(sent[i], got[i]);  // count 0 marks known-absent
    }
  }
  reads_table = std::move(rebuilt);
}

void DistSpectrum::fetch_global_reads_tables() {
  fetch_one(reads_kmer_, hash_kmer_);
  fetch_one(reads_tile_, hash_tile_);
}

void DistSpectrum::replicate_kmers() {
  const auto mine = hash_kmer_.entries();
  std::vector<IdCount> flat;
  flat.reserve(mine.size());
  for (const auto& [id, count] : mine) flat.push_back({id, count});
  const auto all =
      comm_->allgatherv(std::span<const IdCount>(flat.data(), flat.size()));
  replica_kmer_ = hash::CountTable<>(all.size());
  for (const IdCount& e : all) replica_kmer_.increment(e.id, e.count);
  kmers_replicated_ = true;
  // Every rank now resolves k-mers from the replica; the owned shard is
  // redundant (no rank will request k-mers remotely in this mode).
  hash_kmer_.clear();
}

void DistSpectrum::replicate_tiles() {
  const auto mine = hash_tile_.entries();
  std::vector<IdCount> flat;
  flat.reserve(mine.size());
  for (const auto& [id, count] : mine) flat.push_back({id, count});
  const auto all =
      comm_->allgatherv(std::span<const IdCount>(flat.data(), flat.size()));
  replica_tile_ = hash::CountTable<>(all.size());
  for (const IdCount& e : all) replica_tile_.increment(e.id, e.count);
  tiles_replicated_ = true;
  hash_tile_.clear();
}

void DistSpectrum::replicate_group() {
  const int g = heur_.partial_replication_group;
  if (g <= 1) return;
  const int np = comm_->size();
  const int me = comm_->rank();
  const int my_group = me / g;

  auto replicate_one = [&](const hash::CountTable<>& owned,
                           hash::CountTable<>& group_table) {
    // Send my owned shard to every other member of my group; everyone must
    // participate in the alltoallv regardless of group membership.
    const auto mine = owned.entries();
    std::vector<IdCount> flat;
    flat.reserve(mine.size());
    for (const auto& [id, count] : mine) flat.push_back({id, count});
    std::vector<std::vector<IdCount>> buckets(static_cast<std::size_t>(np));
    for (int dst = 0; dst < np; ++dst) {
      if (dst != me && dst / g == my_group) {
        buckets[static_cast<std::size_t>(dst)] = flat;
      }
    }
    const auto received = comm_->alltoallv(buckets);
    group_table = hash::CountTable<>(owned.size() * static_cast<std::size_t>(g));
    for (const auto& [id, count] : mine) group_table.increment(id, count);
    for (const auto& part : received) {
      for (const IdCount& e : part) group_table.increment(e.id, e.count);
    }
  };
  replicate_one(hash_kmer_, group_kmer_);
  replicate_one(hash_tile_, group_tile_);
}

void DistSpectrum::exchange_filters(const RetryPolicy& retry) {
  // Idempotent across jobs: the filters are RANK-lifetime (built over the
  // pruned owned tables, which never change after construction), so a
  // resident server pays the exchange exactly once. Every rank takes this
  // branch deterministically — no rank can be left waiting on a peer.
  if (filters_exchanged_) return;
  filters_exchanged_ = true;
  if (!heur_.filter_lookups) return;
  const int np = comm_->size();
  const int me = comm_->rank();
  peer_filter_kmer_.clear();
  peer_filter_kmer_.resize(static_cast<std::size_t>(np));
  peer_filter_tile_.clear();
  peer_filter_tile_.resize(static_cast<std::size_t>(np));
  filter_bytes_ = 0;
  if (np <= 1 || heur_.fully_replicated()) return;

  // Kinds resolved by allgather replication never go remote, and their
  // owned shards were cleared by replicate_* anyway — no filter to build.
  std::vector<std::pair<LookupKind, const hash::CountTable<>*>> kinds;
  if (!heur_.allgather_kmers) kinds.emplace_back(LookupKind::kKmer, &hash_kmer_);
  if (!heur_.allgather_tiles) kinds.emplace_back(LookupKind::kTile, &hash_tile_);
  if (kinds.empty()) return;

  // Out-of-group peers only: in-group lookups resolve from the replicated
  // group tables and never reach the wire.
  std::vector<int> peers;
  for (int dst = 0; dst < np; ++dst) {
    if (dst != me && !owner_in_my_group(dst)) peers.push_back(dst);
  }
  if (peers.empty()) return;

  // Phase 1: every rank posts all its (buffered, non-blocking) sends before
  // any rank starts receiving, so the blocking collection below cannot
  // deadlock even without retry timeouts.
  for (const auto& [kind, table] : kinds) {
    const hash::OwnerFilter filter =
        hash::OwnerFilter::build_from(*table, heur_.filter_fp_rate);
    for (int dst : peers) {
      rtm::Payload payload = comm_->make_payload(filter_exchange_bytes(filter));
      encode_filter_exchange_into(payload.data(), kind, filter);
      comm_->send_payload(dst, kTagFilterExchange, std::move(payload));
    }
  }

  // Phase 2: collect one message per (peer, kind). A filter that cannot be
  // decoded (chaos truncation) or never arrives within the retry budget
  // leaves its slot null — that owner keeps the unfiltered wire path.
  const std::size_t expected = peers.size() * kinds.size();
  const auto accept = [&](const rtm::Message& m) {
    try {
      FilterExchange fx = decode_filter_exchange(m.payload);
      auto& slot = (fx.kind == LookupKind::kKmer ? peer_filter_kmer_
                                                 : peer_filter_tile_)
          [static_cast<std::size_t>(m.source)];
      filter_bytes_ += fx.filter.memory_bytes();
      slot = std::make_unique<hash::OwnerFilter>(std::move(fx.filter));
    } catch (const std::exception&) {
      // Malformed: drop. Trusting garbled bits could fake false negatives.
    }
  };
  if (!retry.enabled()) {
    for (std::size_t i = 0; i < expected; ++i) {
      accept(comm_->recv(rtm::kAnySource, kTagFilterExchange));
    }
  } else {
    // One overall deadline shared by all expected messages: the exchange is
    // best effort, so there is nothing to retransmit — just stop waiting.
    auto budget = std::chrono::microseconds(
        retry.attempt_timeout_us(retry.max_retries));
    const auto is_filter = [](const rtm::Message& m) {
      return m.tag == kTagFilterExchange;
    };
    for (std::size_t i = 0; i < expected; ++i) {
      const auto start = std::chrono::steady_clock::now();
      std::optional<rtm::Message> m = comm_->recv_match_for(is_filter, budget);
      if (!m.has_value()) break;  // budget exhausted: remaining slots stay null
      accept(*m);
      const auto spent = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - start);
      budget = budget > spent ? budget - spent : std::chrono::microseconds(0);
    }
  }
}

DistSpectrum::FilterAnswer DistSpectrum::filter_kmer(seq::kmer_id_t id,
                                                     int owner) const {
  if (owner < 0 || static_cast<std::size_t>(owner) >= peer_filter_kmer_.size()) {
    return FilterAnswer::kNoFilter;
  }
  const auto& filter = peer_filter_kmer_[static_cast<std::size_t>(owner)];
  if (!filter) return FilterAnswer::kNoFilter;
  return filter->possibly_contains(id) ? FilterAnswer::kMaybePresent
                                       : FilterAnswer::kDefinitelyAbsent;
}

DistSpectrum::FilterAnswer DistSpectrum::filter_tile(seq::tile_id_t id,
                                                     int owner) const {
  if (owner < 0 || static_cast<std::size_t>(owner) >= peer_filter_tile_.size()) {
    return FilterAnswer::kNoFilter;
  }
  const auto& filter = peer_filter_tile_[static_cast<std::size_t>(owner)];
  if (!filter) return FilterAnswer::kNoFilter;
  return filter->possibly_contains(id) ? FilterAnswer::kMaybePresent
                                       : FilterAnswer::kDefinitelyAbsent;
}

void DistSpectrum::drop_reads_tables() {
  pending_kmer_.clear();
  pending_tile_.clear();
  reads_kmer_.clear();
  reads_tile_.clear();
  remote_cache_order_kmer_.clear();
  remote_cache_order_tile_.clear();
}

std::optional<std::uint32_t> DistSpectrum::owned_kmer(seq::kmer_id_t id) const {
  return hash_kmer_.find(id);
}
std::optional<std::uint32_t> DistSpectrum::owned_tile(seq::tile_id_t id) const {
  return hash_tile_.find(id);
}
std::optional<std::uint32_t> DistSpectrum::reads_kmer(seq::kmer_id_t id) const {
  return reads_kmer_.find(id);
}
std::optional<std::uint32_t> DistSpectrum::reads_tile(seq::tile_id_t id) const {
  return reads_tile_.find(id);
}
std::optional<std::uint32_t> DistSpectrum::replica_kmer(
    seq::kmer_id_t id) const {
  return replica_kmer_.find(id);
}
std::optional<std::uint32_t> DistSpectrum::replica_tile(
    seq::tile_id_t id) const {
  return replica_tile_.find(id);
}

std::optional<std::uint32_t> DistSpectrum::group_kmer(seq::kmer_id_t id) const {
  return group_kmer_.find(id);
}
std::optional<std::uint32_t> DistSpectrum::group_tile(seq::tile_id_t id) const {
  return group_tile_.find(id);
}

void DistSpectrum::cache_into(hash::CountTable<>& table,
                              std::deque<std::uint64_t>& order,
                              std::uint64_t id, std::uint32_t count) {
  if (table.contains(id)) return;  // fetched or already cached
  while (order.size() >= params_.remote_cache_capacity) {
    table.erase(order.front());
    order.pop_front();
  }
  table.increment(id, count);
  order.push_back(id);
}

void DistSpectrum::cache_remote_kmer(seq::kmer_id_t id, std::uint32_t count) {
  cache_into(reads_kmer_, remote_cache_order_kmer_, id, count);
}
void DistSpectrum::cache_remote_tile(seq::tile_id_t id, std::uint32_t count) {
  cache_into(reads_tile_, remote_cache_order_tile_, id, count);
}

void DistSpectrum::reset_for_job() {
  // The order deques hold exactly the add_remote-cached reply IDs — never
  // the fetch_global_reads_tables base entries — so erasing them restores
  // the reads tables to their end-of-construction state bit for bit.
  for (const std::uint64_t id : remote_cache_order_kmer_) {
    reads_kmer_.erase(id);
  }
  remote_cache_order_kmer_.clear();
  for (const std::uint64_t id : remote_cache_order_tile_) {
    reads_tile_.erase(id);
  }
  remote_cache_order_tile_.clear();
}

SpectrumFootprint DistSpectrum::footprint() const {
  SpectrumFootprint f;
  f.hash_kmer_entries = hash_kmer_.size();
  f.hash_tile_entries = hash_tile_.size();
  f.reads_kmer_entries = reads_kmer_.size() + pending_kmer_.size();
  f.reads_tile_entries = reads_tile_.size() + pending_tile_.size();
  f.replica_kmer_entries = replica_kmer_.size();
  f.replica_tile_entries = replica_tile_.size();
  f.replica_kmer_entries += group_kmer_.size();
  f.replica_tile_entries += group_tile_.size();
  f.bytes = hash_kmer_.memory_bytes() + hash_tile_.memory_bytes() +
            pending_kmer_.memory_bytes() + pending_tile_.memory_bytes() +
            reads_kmer_.memory_bytes() + reads_tile_.memory_bytes() +
            replica_kmer_.memory_bytes() + replica_tile_.memory_bytes() +
            group_kmer_.memory_bytes() + group_tile_.memory_bytes();
  f.bytes += (remote_cache_order_kmer_.size() +
              remote_cache_order_tile_.size()) *
             sizeof(std::uint64_t);
  if (bloom_kmer_) f.bytes += bloom_kmer_->memory_bytes();
  if (bloom_tile_) f.bytes += bloom_tile_->memory_bytes();
  f.filter_bytes = filter_bytes_;
  f.bytes += filter_bytes_;
  return f;
}

}  // namespace reptile::parallel
