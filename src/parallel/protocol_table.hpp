#pragma once
// Declarative rtm-check tag table for the correction-phase lookup protocol.
//
// One row per tag (or tag range) of protocol.hpp, giving the linter the
// message direction, payload size bounds, and — for requests — the reply
// envelope the receiver must answer with. Derived from the structs in
// protocol.hpp / wire.hpp: keep all three in sync when the protocol grows
// a message kind. run_distributed installs this table (with strict tags)
// whenever checking is on and no custom table was supplied, because the
// lookup protocol is the only point-to-point traffic the pipelines send.

#include <cstddef>
#include <cstring>
#include <limits>
#include <span>
#include <string>

#include "parallel/protocol.hpp"
#include "rtm/check/check.hpp"

namespace reptile::parallel {

namespace table_detail {

inline bool check_reply_to(std::int32_t reply_to, int first, int last,
                           std::string* err) {
  if (reply_to >= first && reply_to < last) return true;
  *err = "reply_to tag " + std::to_string(reply_to) +
         " outside the reply tag space [" + std::to_string(first) + ", " +
         std::to_string(last) + ")";
  return false;
}

inline bool pair_scalar(std::span<const std::byte> payload, int* reply_tag,
                        std::size_t* reply_bytes, std::uint64_t* seq,
                        std::string* err) {
  LookupRequest req;
  std::memcpy(&req, payload.data(), sizeof(req));  // size bound pre-checked
  if (!check_reply_to(req.reply_to, kTagKmerReply, kTagBatchReplyBase, err)) {
    return false;
  }
  *reply_tag = req.reply_to;
  *reply_bytes = sizeof(LookupReply);
  *seq = req.seq;
  return true;
}

inline bool pair_universal(std::span<const std::byte> payload, int* reply_tag,
                           std::size_t* reply_bytes, std::uint64_t* seq,
                           std::string* err) {
  UniversalLookupRequest req;
  std::memcpy(&req, payload.data(), sizeof(req));
  if (static_cast<std::uint32_t>(req.kind) >
      static_cast<std::uint32_t>(LookupKind::kTile)) {
    *err = "unknown lookup kind " +
           std::to_string(static_cast<std::uint32_t>(req.kind));
    return false;
  }
  if (!check_reply_to(req.reply_to, kTagKmerReply, kTagBatchReplyBase, err)) {
    return false;
  }
  *reply_tag = req.reply_to;
  *reply_bytes = sizeof(LookupReply);
  *seq = req.seq;
  return true;
}

inline bool pair_batch(std::span<const std::byte> payload, int* reply_tag,
                       std::size_t* reply_bytes, std::uint64_t* seq,
                       std::string* err) {
  BatchLookupHeader h;
  std::memcpy(&h, payload.data(), sizeof(h));  // min_bytes covers the header
  if (h.kind > static_cast<std::uint32_t>(LookupKind::kTile)) {
    *err = "unknown lookup kind " + std::to_string(h.kind);
    return false;
  }
  const std::size_t body = payload.size() - sizeof(h);
  if (body != static_cast<std::size_t>(h.count) * 8) {
    *err = "header declares " + std::to_string(h.count) +
           " ids but the body carries " + std::to_string(body) + " bytes";
    return false;
  }
  if (h.reply_to < kTagBatchReplyBase) {
    *err = "batch reply_to tag " + std::to_string(h.reply_to) +
           " below kTagBatchReplyBase";
    return false;
  }
  *reply_tag = h.reply_to;
  *reply_bytes =
      sizeof(BatchReplyHeader) +
      static_cast<std::size_t>(h.count) * sizeof(std::int32_t);
  *seq = h.seq;
  return true;
}

/// Both reply layouts (LookupReply, BatchReplyHeader) lead with the echoed
/// u64 sequence number, so one extractor serves every reply rule.
inline bool reply_seq(std::span<const std::byte> payload, std::uint64_t* seq) {
  if (payload.size() < sizeof(std::uint64_t)) return false;
  std::memcpy(seq, payload.data(), sizeof(std::uint64_t));
  return true;
}

}  // namespace table_detail

/// The linter table covering everything the distributed pipelines send
/// point to point. Scalar reply tags grow as 21/22 + 2*slot and batch reply
/// tags as kTagBatchReplyBase + 2*slot (+1 for tiles), so both reply
/// directions are ranges rather than single tags.
inline rtm::check::TagTable lookup_tag_table() {
  using rtm::check::TagDir;
  using rtm::check::TagRule;
  constexpr std::size_t kNoMax = std::numeric_limits<std::size_t>::max();
  return rtm::check::TagTable{
      TagRule{kTagKmerRequest, kTagKmerRequest, "kmer-request",
              TagDir::kRequest, sizeof(LookupRequest), sizeof(LookupRequest),
              &table_detail::pair_scalar, nullptr},
      TagRule{kTagTileRequest, kTagTileRequest, "tile-request",
              TagDir::kRequest, sizeof(LookupRequest), sizeof(LookupRequest),
              &table_detail::pair_scalar, nullptr},
      TagRule{kTagUniversalRequest, kTagUniversalRequest, "universal-request",
              TagDir::kRequest, sizeof(UniversalLookupRequest),
              sizeof(UniversalLookupRequest), &table_detail::pair_universal,
              nullptr},
      TagRule{kTagBatchRequest, kTagBatchRequest, "batch-request",
              TagDir::kRequest, sizeof(BatchLookupHeader), kNoMax,
              &table_detail::pair_batch, nullptr},
      // Fire-and-forget broadcast, no reply envelope (pair == nullptr keeps
      // it out of the unanswered-request ledger); best_effort because chaos
      // may deliver a stall-delayed copy after the receivers stopped
      // listening — a leftover is stale, not a leak.
      TagRule{kTagFilterExchange, kTagFilterExchange, "filter-exchange",
              TagDir::kRequest, sizeof(FilterExchangeHeader), kNoMax, nullptr,
              nullptr, /*best_effort=*/true},
      // Serve-mode control plane (DESIGN.md §13): rank 0 announces each job
      // to every peer and each peer acknowledges completion. Fixed-size,
      // always consumed (the serve loop blocks on them), and answered out
      // of band through the shared job table — no reply envelope to pair.
      TagRule{kTagJobAnnounce, kTagJobAnnounce, "job-announce",
              TagDir::kRequest, sizeof(JobAnnounce), sizeof(JobAnnounce),
              nullptr, nullptr},
      TagRule{kTagJobComplete, kTagJobComplete, "job-complete",
              TagDir::kRequest, sizeof(JobComplete), sizeof(JobComplete),
              nullptr, nullptr},
      TagRule{kTagKmerReply, kTagBatchReplyBase - 1, "scalar-reply",
              TagDir::kReply, sizeof(LookupReply), sizeof(LookupReply),
              nullptr, &table_detail::reply_seq},
      TagRule{kTagBatchReplyBase, std::numeric_limits<int>::max(),
              "batch-reply", TagDir::kReply, sizeof(BatchReplyHeader), kNoMax,
              nullptr, &table_detail::reply_seq},
  };
}

}  // namespace reptile::parallel
