#pragma once
// Policy-templated kernel of the mailbox's two delivery paths.
//
// BasicMailboxCore owns the lock-free ring plus the overflow deque and the
// discipline that keeps per-(source, tag) FIFO true across both: locked
// consumers set the ring's consumer-lock bit and drain the ring into the
// deque (so the deque is always the OLDER half of the queue), and the
// locked push path never parks a message in the deque while an older,
// not-yet-drained message is still in the ring. The surrounding Mailbox
// (rtm/mailbox.hpp) contributes the mutex, condvar, waiter registry,
// rtm-check hooks and stats; everything here that is suffixed `_locked`
// requires that external mutex.
//
// WaiterGate owns the waiter-count word and the Dekker (store-buffering)
// fence handshake that closes the lost-wakeup window between a lock-free
// publication and a receiver parking on the condvar (DESIGN.md §7).
//
// Both templates are instantiated with StdAtomics in production and with
// the instrumented model policy by tests/test_rtm_model.cpp, which explores
// their interleavings and weak-memory behaviors exhaustively for small
// configurations (DESIGN.md §8).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

#include "rtm/atomics_policy.hpp"
#include "rtm/message.hpp"
#include "rtm/ring.hpp"

namespace reptile::rtm {

#ifdef RTM_MODEL_MUTANT_SPILL_FIFO
namespace mutants {
/// Test-only toggle (model-checker mutant suite): re-introduces the
/// overflow-spill FIFO race PR 6 fixed — on ring overflow, drain once and
/// append to the deque even when the ring head is mid-publish, letting the
/// new message overtake older published entries stuck behind the gap.
/// Never defined in production builds.
inline bool g_spill_fifo = false;
}  // namespace mutants
#endif

/// Ring + overflow deque + the FIFO discipline between them.
template <class Policy = StdAtomics>
class BasicMailboxCore {
 public:
  using Ring = BasicMpmcMessageRing<Policy>;
  using PopResult = typename Ring::PopResult;

  /// A deque entry: the message plus its arrival stamp. Stamps increase
  /// monotonically in deque order; Mailbox::pop_match_for uses them to
  /// resume predicate scans without re-examining old messages.
  struct Entry {
    Message msg;
    std::uint64_t stamp = 0;
  };

  explicit BasicMailboxCore(std::size_t ring_capacity)
      : ring_(ring_capacity) {}

  /// Lock-free push attempt; false means the caller must take the mutex
  /// and use push_locked.
  bool try_push_fast(Message& m) { return ring_.try_push(m); }

  /// Lock-free exact-envelope pop attempt on the ring head.
  PopResult try_pop_fast(std::uint64_t envelope, Message& out) {
    return ring_.try_pop_exact(envelope, out);
  }

  /// Caller holds the external mutex. Enqueues on the locked path while
  /// preserving arrival order across ring and deque.
  void push_locked(Message m, bool fast_path_enabled) {
    // Keep the ring the primary channel whenever it has room: a new
    // message is the globally newest, so ring entries stay newer than
    // every deque entry (the fast-path FIFO invariant) regardless of
    // the deque's state.
    if (fast_path_enabled && ring_.try_push(m)) return;
    // Ring full or fast path off: spill the ring into the deque first
    // so arrival order is preserved. A drain stops early at a cell
    // whose producer has claimed a slot but not yet published; if `m`
    // were appended to the deque then, the published ring entries
    // behind that gap — all OLDER than `m` — would deliver after it.
    // So either re-enter the ring (where `m` is the newest entry by
    // claim order) or wait the publisher out and drain the ring dry:
    // the publisher is lock-free, never blocks on this mutex, and a
    // yield gives it a core even on single-CPU hosts.
    ring_.set_consumer_lock(true);
#ifdef RTM_MODEL_MUTANT_SPILL_FIFO
    if (mutants::g_spill_fifo) {
      // MUTANT: the pre-fix behavior — one drain, then park `m` in the
      // deque even when a mid-publish gap still hides older ring entries.
      drain_ring_locked();
      if (!(fast_path_enabled && ring_.try_push(m))) {
        queue_.push_back(Entry{std::move(m), next_stamp_++});
      }
      if (queue_.empty()) ring_.set_consumer_lock(false);
      return;
    }
#endif
    for (;;) {
      drain_ring_locked();
      if (fast_path_enabled && ring_.try_push(m)) {
        break;  // drained slots made room; rides the ring, behind the deque
      }
      if (ring_.approx_size() == 0) {
        queue_.push_back(Entry{std::move(m), next_stamp_++});
        break;
      }
      Policy::yield();  // head is mid-publish
    }
    // While the deque is non-empty the consumer-lock bit stays set;
    // the next locked consumer clears it once the deque drains.
    if (queue_.empty()) ring_.set_consumer_lock(false);
  }

  /// Caller holds the external mutex. Sets the consumer-lock bit and moves
  /// every published ring entry to the back of the deque, stamping
  /// arrivals — after this the deque shows every delivered message and
  /// fast pops cannot race a scan.
  void slow_begin_locked() {
    ring_.set_consumer_lock(true);
    drain_ring_locked();
  }

  /// Caller holds the external mutex. Clears the consumer-lock bit iff no
  /// message is parked in the deque (the fast-path FIFO precondition).
  void slow_end_locked() {
    if (queue_.empty()) ring_.set_consumer_lock(false);
  }

  /// Caller holds the external mutex with the consumer-lock bit set.
  void drain_ring_locked() {
    Message m;
    while (ring_.pop_head_locked(m)) {
      queue_.push_back(Entry{std::move(m), next_stamp_++});
    }
  }

  /// The overflow deque (guarded by the external mutex).
  std::deque<Entry>& queue() { return queue_; }
  const std::deque<Entry>& queue() const { return queue_; }

  /// Next arrival stamp (guarded by the external mutex); all queued
  /// entries carry stamps strictly below this.
  std::uint64_t next_stamp() const { return next_stamp_; }

  std::size_t ring_size() const { return ring_.approx_size(); }

  Ring& ring() { return ring_; }

 private:
  Ring ring_;
  std::deque<Entry> queue_;       // guarded by the external mutex
  std::uint64_t next_stamp_ = 1;  // guarded by the external mutex
};

/// The waiter-count word and the Dekker handshake against lost wakeups.
///
/// Publisher side (after a lock-free ring publication): a seq_cst fence,
/// then the count read — publisher_sees_waiter(). Receiver side (before
/// its final rescan and park): count increment, then a seq_cst fence —
/// enter(). The two fences order the (publish, count-read) pair against
/// the (count-write, rescan) pair like Dekker's algorithm orders its two
/// flags: at least one side always observes the other, so either the
/// publisher notifies, or the receiver's rescan finds the message. A
/// receiver can therefore never park after missing a message whose push
/// skipped the notify (full argument in DESIGN.md §7).
template <class Policy = StdAtomics>
class WaiterGate {
 public:
  /// Publisher half. Call after the message is published; true means some
  /// receiver is registered (or mid-registration) and must be notified.
  bool publisher_sees_waiter() {
    Policy::fence(std::memory_order_seq_cst);
    // mo: relaxed read is sound only behind the seq_cst fence above —
    // the fence pairs with the one in enter() (store-buffering shape).
    return count_.load(std::memory_order_relaxed) != 0;
  }

  /// Receiver half. Call before the post-registration rescan.
  void enter() {
    count_.fetch_add(1, std::memory_order_seq_cst);
    Policy::fence(std::memory_order_seq_cst);
  }

  void exit() { count_.fetch_sub(1, std::memory_order_seq_cst); }

  /// Racy snapshot for the locked push path, which re-checks the waiter
  /// registry under the mutex anyway.
  bool any_waiter_hint() const {
    // mo: relaxed — hint only; the registry check under the mutex decides.
    return count_.load(std::memory_order_relaxed) != 0;
  }

 private:
  typename Policy::template Atomic<int> count_{0};
};

}  // namespace reptile::rtm
