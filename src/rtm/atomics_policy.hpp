#pragma once
// Atomics policy seam for the rtm concurrency kernel.
//
// The lock-free structures (rtm/ring.hpp, rtm/mailbox_core.hpp, the slab
// refcount gate in rtm/message.hpp) are templated on a Policy that names
// their atomic cells, their plain (non-atomic but cross-thread) cells, and
// their fence/yield primitives. Production code instantiates them with
// StdAtomics below — a pure type alias onto std::atomic with zero runtime
// cost — while the model checker (rtm/model/) instantiates the SAME
// templates with instrumented types that track per-location modification
// orders and per-thread vector clocks, letting small configurations be
// verified over every interleaving and over simulated weak-memory effects
// (DESIGN.md §8).
//
// Policy requirements:
//   template <class T> Atomic  — std::atomic-compatible: load/store/
//                                compare_exchange_*/fetch_* taking
//                                std::memory_order arguments
//   template <class T> Plain   — a non-atomic cell; accessed only through
//                                the take()/put() helpers below so the
//                                model can interpose happens-before race
//                                detection on plain fields
//   static void fence(std::memory_order)
//   static void yield()        — spin-loop backoff point; the model turns
//                                this into "block until another thread
//                                performs a store", which keeps bounded
//                                exploration finite

#include <atomic>
#include <thread>
#include <utility>

namespace reptile::rtm {

/// Moves the value out of a plain cell and resets the cell to a
/// default-constructed value. The model overload (rtm/model/atomic.hpp)
/// records a write access for happens-before race checking.
template <class T>
[[nodiscard]] T take(T& cell) {
  T out = std::move(cell);
  cell = T();
  return out;
}

/// Moves a value into a plain cell (model overload records a write).
template <class T>
void put(T& cell, T value) {
  cell = std::move(value);
}

/// The production policy: plain std::atomic, plain T, real fences.
struct StdAtomics {
  template <class T>
  using Atomic = std::atomic<T>;

  template <class T>
  using Plain = T;

  static void fence(std::memory_order order) { std::atomic_thread_fence(order); }

  static void yield() { std::this_thread::yield(); }
};

}  // namespace reptile::rtm
