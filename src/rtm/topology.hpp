#pragma once
// Node topology: mapping ranks to nodes.
//
// The paper runs 8/16/32 ranks per BlueGene/Q node and relies on
// "communication between the ranks on the same node [using] the shared
// memory on the node". The topology classifies every (src, dst) pair as
// intra- or inter-node so the traffic recorder and the performance model
// can price them differently (this is what makes the Fig. 2 ranks-per-node
// sweep reproducible).

#include <cassert>

namespace reptile::rtm {

struct Topology {
  int nranks = 1;
  int ranks_per_node = 1;

  Topology() = default;
  Topology(int nranks_, int ranks_per_node_)
      : nranks(nranks_), ranks_per_node(ranks_per_node_) {
    assert(nranks >= 1);
    assert(ranks_per_node >= 1);
  }

  int nodes() const noexcept {
    return (nranks + ranks_per_node - 1) / ranks_per_node;
  }

  int node_of(int rank) const noexcept { return rank / ranks_per_node; }

  bool same_node(int a, int b) const noexcept {
    return node_of(a) == node_of(b);
  }
};

}  // namespace reptile::rtm
