#include "rtm/chaos.hpp"

#include "obs/trace.hpp"
#include "rtm/world.hpp"

namespace reptile::rtm {

namespace {

/// Fault decisions happen on the sender's thread (inside submit), so the
/// instant is attributed to the sending rank — the rank whose traffic the
/// fault hit — with the destination as an arg.
void chaos_instant(const char* fault, const Message& m, int dst) {
  obs::Tracer::instance().instant("chaos", fault, m.source, "dst",
                                  static_cast<std::uint64_t>(dst));
}

}  // namespace

ChaosDelayer::ChaosDelayer(World& world, const FaultPlan& plan)
    : world_(&world),
      plan_(plan),
      rng_(plan.seed),
      queues_(static_cast<std::size_t>(world.size())),
      last_release_(static_cast<std::size_t>(world.size()), clock::now()),
      stall_until_(static_cast<std::size_t>(world.size()), clock::now()) {
  plan_.validate();
  thread_ = std::thread([this] { run(); });
}

ChaosDelayer::~ChaosDelayer() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Drain anything still queued so no message is ever lost at shutdown —
  // stall windows and pending delays are ignored here on purpose.
  std::lock_guard lock(mutex_);
  deliver_due_locked(/*drain=*/true);
}

void ChaosDelayer::enqueue_locked(int dst, Message m) {
  const auto delay = std::chrono::microseconds(
      plan_.max_delay_us > 0
          ? rng_.below(static_cast<std::uint64_t>(plan_.max_delay_us) + 1)
          : 0);
  auto release = clock::now() + delay;
  auto& floor = last_release_[static_cast<std::size_t>(dst)];
  // Non-overtaking per destination: never release before a predecessor.
  if (release < floor) release = floor;
  floor = release;
  queues_[static_cast<std::size_t>(dst)].push_back({release, std::move(m)});
}

void ChaosDelayer::submit(int dst, Message m) {
  {
    std::lock_guard lock(mutex_);
    auto* check = world_->checker();
    if (plan_.drop_rate > 0.0 && rng_.chance(plan_.drop_rate)) {
      ++stats_.dropped;
      world_->traffic().record_drop(m.source);
      if (check != nullptr) check->on_chaos_drop(dst, m);
      chaos_instant("chaos:drop", m, dst);
      return;  // the message vanishes
    }
    if (plan_.truncate_rate > 0.0 && !m.payload.empty() &&
        rng_.chance(plan_.truncate_rate)) {
      // Cut to a strict prefix (possibly empty). A duplicated message is
      // duplicated in its truncated form, like a corrupted retransmit.
      m.payload.resize(rng_.below(m.payload.size()));
      ++stats_.truncated;
      if (check != nullptr) check->on_chaos_truncate(dst, m);
      chaos_instant("chaos:truncate", m, dst);
    }
    const bool dup =
        plan_.duplicate_rate > 0.0 && rng_.chance(plan_.duplicate_rate);
    if (plan_.stall_us > 0 && plan_.stall_rate > 0.0 &&
        rng_.chance(plan_.stall_rate)) {
      // A stall freezes ALL delivery to dst for stall_us — the peer looks
      // dead for a while, then everything arrives in order.
      const auto until =
          clock::now() + std::chrono::microseconds(plan_.stall_us);
      auto& stall = stall_until_[static_cast<std::size_t>(dst)];
      if (until > stall) stall = until;
      ++stats_.stalls_opened;
      chaos_instant("chaos:stall", m, dst);
    }
    Message copy;
    if (dup) copy = m;
    enqueue_locked(dst, std::move(m));
    if (dup) {
      ++stats_.duplicated;
      world_->traffic().record_duplicate(copy.source);
      if (check != nullptr) check->on_chaos_duplicate(dst, copy);
      chaos_instant("chaos:duplicate", copy, dst);
      enqueue_locked(dst, std::move(copy));
    }
  }
  cv_.notify_all();
}

bool ChaosDelayer::deliver_due_locked(bool drain) {
  const auto now = clock::now();
  bool pending = false;
  for (std::size_t dst = 0; dst < queues_.size(); ++dst) {
    auto& q = queues_[dst];
    if (!drain && stall_until_[dst] > now) {
      // Destination is stalled: hold everything addressed to it.
      pending = pending || !q.empty();
      continue;
    }
    while (!q.empty() && (drain || q.front().release <= now)) {
      world_->mailbox(static_cast<int>(dst))
          .push(std::move(q.front().message));
      q.pop_front();
      ++stats_.delivered;
    }
    pending = pending || !q.empty();
  }
  return pending;
}

void ChaosDelayer::run() {
  std::unique_lock lock(mutex_);
  while (true) {
    const bool pending = deliver_due_locked(/*drain=*/false);
    if (stop_ && !pending) return;
    if (stop_) {
      // Shutting down: flush the remainder immediately.
      deliver_due_locked(/*drain=*/true);
      return;
    }
    cv_.wait_for(lock, std::chrono::microseconds(50));
  }
}

}  // namespace reptile::rtm
