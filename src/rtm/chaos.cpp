#include "rtm/chaos.hpp"

#include "rtm/world.hpp"

namespace reptile::rtm {

ChaosDelayer::ChaosDelayer(World& world, std::uint64_t seed, int max_delay_us)
    : world_(&world),
      max_delay_us_(max_delay_us),
      rng_(seed),
      queues_(static_cast<std::size_t>(world.size())),
      last_release_(static_cast<std::size_t>(world.size()), clock::now()) {
  thread_ = std::thread([this] { run(); });
}

ChaosDelayer::~ChaosDelayer() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  // Drain anything still queued so no message is ever lost.
  std::lock_guard lock(mutex_);
  deliver_due_locked(/*drain=*/true);
}

void ChaosDelayer::submit(int dst, Message m) {
  {
    std::lock_guard lock(mutex_);
    const auto delay = std::chrono::microseconds(
        max_delay_us_ > 0
            ? rng_.below(static_cast<std::uint64_t>(max_delay_us_) + 1)
            : 0);
    auto release = clock::now() + delay;
    auto& floor = last_release_[static_cast<std::size_t>(dst)];
    // Non-overtaking per destination: never release before a predecessor.
    if (release < floor) release = floor;
    floor = release;
    queues_[static_cast<std::size_t>(dst)].push_back(
        {release, std::move(m)});
  }
  cv_.notify_all();
}

bool ChaosDelayer::deliver_due_locked(bool drain) {
  const auto now = clock::now();
  bool pending = false;
  for (std::size_t dst = 0; dst < queues_.size(); ++dst) {
    auto& q = queues_[dst];
    while (!q.empty() && (drain || q.front().release <= now)) {
      world_->mailbox(static_cast<int>(dst))
          .push(std::move(q.front().message));
      q.pop_front();
      ++delivered_;
    }
    pending = pending || !q.empty();
  }
  return pending;
}

void ChaosDelayer::run() {
  std::unique_lock lock(mutex_);
  while (true) {
    const bool pending = deliver_due_locked(/*drain=*/false);
    if (stop_ && !pending) return;
    if (stop_) {
      // Shutting down: flush the remainder immediately.
      deliver_due_locked(/*drain=*/true);
      return;
    }
    cv_.wait_for(lock, std::chrono::microseconds(50));
  }
}

}  // namespace reptile::rtm
