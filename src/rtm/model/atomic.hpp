#pragma once
// Instrumented atomics + plain-field race detection for the rtm model
// checker (DESIGN.md §8).
//
// model::Atomic keeps the FULL per-location modification order of one
// execution: every store is remembered with the storing context's epoch
// and, for release-class stores, the clock an acquire load must merge. A
// load does NOT simply return the newest value — it may observe any store
// that coherence and happens-before leave visible:
//
//   readable(load by thread t) = { stores S_i : i >= floor }, where
//   floor = max( newest store HB-before t's clock,   // HB consistency
//                newest store t has already read )   // coherence-RR
//
// When more than one store is readable the explorer picks (choice 0 =
// newest), so weak-memory outcomes — a relaxed publication seen "late", a
// store-buffering stale read — are ordinary schedule branches explored
// like any other. An over-relaxed annotation therefore fails a model test
// even on x86 hosts where the hardware would hide it.
//
// Simplifications, all on the STRONGER side (they can hide no bug that
// the real memory model forbids, only skip behaviors C++ would allow):
//   - RMWs and CAS (both success and failure) read the newest store;
//     weak CAS never fails spuriously.
//   - seq_cst loads/stores/RMWs join the global SC clock both ways, which
//     embeds the SC total order into happens-before.
//   - release sequences: an RMW's store inherits the release clock of the
//     store it read, so acquire loads through RMW chains still
//     synchronize with the original release store.
//
// PlainVar wraps a non-atomic cross-thread field (the ring cell's
// Message). Accesses go through the take()/put() helpers from
// rtm/atomics_policy.hpp — the overloads below shadow the production
// ones via ADL — and run a FastTrack-style epoch check: an access not
// ordered after the previous write (or a write not ordered after every
// previous read) is a genuine data race and fails the execution.

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "rtm/model/scheduler.hpp"
#include "rtm/model/vector_clock.hpp"

namespace reptile::rtm::model {

namespace detail {

using reptile::rtm::model::detail::g_exec;

inline bool is_acquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst || o == std::memory_order_consume;
}
inline bool is_release(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}
inline bool is_seq_cst(std::memory_order o) {
  return o == std::memory_order_seq_cst;
}

}  // namespace detail

template <class T>
class Atomic {
 public:
  Atomic() : Atomic(T()) {}

  explicit Atomic(T v) {
    Execution* e = detail::g_exec;
    id_ = e != nullptr ? e->next_object_id() : 0;
    Store s;
    s.value = v;
    s.slot = e != nullptr ? Execution::clock_slot(e->current_thread()) : 0;
    s.tick = 0;  // initialization happens-before everything
    hist_.push_back(s);
  }

  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load(std::memory_order mo = std::memory_order_seq_cst) const {
    Execution* e = detail::g_exec;
    e->schedule_point();
    VectorClock& c = e->clock();
    if (detail::is_seq_cst(mo)) {
      c.merge(e->sc_clock());
    }
    // Newest store this context is forced to see: anything older is
    // overwritten in its past.
    std::size_t floor = 0;
    for (std::size_t i = hist_.size(); i-- > 0;) {
      if (c[hist_[i].slot] >= hist_[i].tick) {
        floor = i;
        break;
      }
    }
    // Eventual visibility: stores stamped before the thread's visibility
    // floor (refreshed at yield points) may no longer be read stale.
    const std::uint64_t vis = e->visible_floor();
    for (std::size_t i = hist_.size(); i-- > floor;) {
      if (hist_[i].prog < vis) {
        floor = i;
        break;
      }
    }
    const std::size_t slot =
        static_cast<std::size_t>(Execution::clock_slot(e->current_thread()));
    if (read_floor_[slot] > floor) floor = read_floor_[slot];
    const int candidates = static_cast<int>(hist_.size() - floor);
    const int choice = e->choose(candidates);  // 0 = newest
    const std::size_t idx = hist_.size() - 1 - static_cast<std::size_t>(choice);
    const Store& s = hist_[idx];
    read_floor_[slot] = idx;
    if (s.has_rel) {
      if (detail::is_acquire(mo)) {
        c.merge(s.rel);  // synchronizes-with the release store
      } else {
        e->acq_pending().merge(s.rel);  // claimed by a later acquire fence
      }
    }
    if (detail::is_seq_cst(mo)) {
      e->tick();
      e->sc_clock().merge(c);
    }
    e->note("load a" + std::to_string(id_) + " -> " + std::to_string(+s.value) +
            (idx + 1 == hist_.size()
                 ? std::string()
                 : " (stale, " + std::to_string(hist_.size() - 1 - idx) +
                       " behind)"));
    return s.value;
  }

  void store(T v, std::memory_order mo = std::memory_order_seq_cst) {
    Execution* e = detail::g_exec;
    e->schedule_point();
    append_store(e, v, mo, /*prior_rel=*/nullptr);
    e->note("store a" + std::to_string(id_) + " = " + std::to_string(+v));
    e->note_progress();
  }

  T exchange(T v, std::memory_order mo = std::memory_order_seq_cst) {
    return rmw(v, mo, "exchange", [](T, T nv) { return nv; });
  }
  T fetch_add(T d, std::memory_order mo = std::memory_order_seq_cst) {
    return rmw(d, mo, "fetch_add", [](T old, T x) { return static_cast<T>(old + x); });
  }
  T fetch_sub(T d, std::memory_order mo = std::memory_order_seq_cst) {
    return rmw(d, mo, "fetch_sub", [](T old, T x) { return static_cast<T>(old - x); });
  }
  T fetch_or(T d, std::memory_order mo = std::memory_order_seq_cst) {
    return rmw(d, mo, "fetch_or", [](T old, T x) { return static_cast<T>(old | x); });
  }
  T fetch_and(T d, std::memory_order mo = std::memory_order_seq_cst) {
    return rmw(d, mo, "fetch_and", [](T old, T x) { return static_cast<T>(old & x); });
  }

  bool compare_exchange_weak(T& expected, T desired, std::memory_order mo) {
    return cas(expected, desired, mo, strip_release(mo));
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return cas(expected, desired, success, failure);
  }
  bool compare_exchange_strong(T& expected, T desired, std::memory_order mo) {
    return cas(expected, desired, mo, strip_release(mo));
  }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    return cas(expected, desired, success, failure);
  }

 private:
  struct Store {
    T value{};
    int slot = 0;            ///< clock slot of the storing context
    std::uint64_t tick = 0;  ///< its epoch at the store
    std::uint64_t prog = 0;  ///< progress stamp (eventual visibility)
    VectorClock rel;         ///< clock an acquire load merges
    bool has_rel = false;
  };

  static std::memory_order strip_release(std::memory_order mo) {
    if (mo == std::memory_order_acq_rel) return std::memory_order_acquire;
    if (mo == std::memory_order_release) return std::memory_order_relaxed;
    return mo;
  }

  /// Appends to the modification order. `prior_rel`: release clock of the
  /// store an RMW read, continued per release-sequence rules.
  void append_store(Execution* e, T v, std::memory_order mo,
                    const VectorClock* prior_rel) {
    VectorClock& c = e->clock();
    if (detail::is_seq_cst(mo)) c.merge(e->sc_clock());
    Store s;
    s.value = v;
    s.slot = Execution::clock_slot(e->current_thread());
    s.tick = e->tick();
    s.prog = e->progress_stamp();  // < floor once the follow-up bump lands
    if (prior_rel != nullptr) {
      s.rel.merge(*prior_rel);
      s.has_rel = true;
    }
    if (detail::is_release(mo)) {
      s.rel.merge(c);
      s.has_rel = true;
    } else if (const VectorClock* f = e->fence_release()) {
      s.rel.merge(*f);  // fence-to-acquire synchronization
      s.has_rel = true;
    }
    if (detail::is_seq_cst(mo)) e->sc_clock().merge(c);
    hist_.push_back(s);
    read_floor_[static_cast<std::size_t>(s.slot)] = hist_.size() - 1;
  }

  template <class Op>
  T rmw(T arg, std::memory_order mo, const char* name, Op op) {
    Execution* e = detail::g_exec;
    e->schedule_point();
    // RMWs read the NEWEST store (they append to the modification order).
    const Store old = hist_.back();
    VectorClock& c = e->clock();
    if (old.has_rel && detail::is_acquire(mo)) c.merge(old.rel);
    append_store(e, op(old.value, arg), mo, old.has_rel ? &old.rel : nullptr);
    e->note(std::string(name) + " a" + std::to_string(id_) + ": " +
            std::to_string(+old.value) + " -> " +
            std::to_string(+hist_.back().value));
    e->note_progress();
    return old.value;
  }

  bool cas(T& expected, T desired, std::memory_order success,
           std::memory_order failure) {
    Execution* e = detail::g_exec;
    e->schedule_point();
    const Store old = hist_.back();
    VectorClock& c = e->clock();
    if (old.value != expected) {
      if (old.has_rel && detail::is_acquire(failure)) c.merge(old.rel);
      expected = old.value;
      read_floor_[static_cast<std::size_t>(
          Execution::clock_slot(e->current_thread()))] = hist_.size() - 1;
      e->note("cas a" + std::to_string(id_) + " failed (saw " +
              std::to_string(+old.value) + ")");
      return false;
    }
    if (old.has_rel && detail::is_acquire(success)) c.merge(old.rel);
    append_store(e, desired, success, old.has_rel ? &old.rel : nullptr);
    e->note("cas a" + std::to_string(id_) + ": " + std::to_string(+old.value) +
            " -> " + std::to_string(+desired));
    e->note_progress();
    return true;
  }

  std::uint64_t id_ = 0;
  std::vector<Store> hist_;
  // Coherence read floors advance on loads too; const load() matches the
  // std::atomic interface the production code compiles against.
  mutable std::array<std::size_t, VectorClock::kSlots> read_floor_{};
};

/// A non-atomic field shared across threads (e.g. the ring cell Message).
/// All access goes through take()/put(), which run the FastTrack-style
/// happens-before race check before touching the value.
template <class T>
class PlainVar {
 public:
  PlainVar() {
    Execution* e = detail::g_exec;
    id_ = e != nullptr ? e->next_object_id() : 0;
  }
  PlainVar(const PlainVar&) = delete;
  PlainVar& operator=(const PlainVar&) = delete;

  /// ADL overloads shadowing the rtm:: defaults for model cells. Declared
  /// as friends so they are non-template functions, which overload
  /// resolution prefers over the generic rtm::take/put templates.
  friend T take(PlainVar& v) {
    v.on_write("take");
    T out = std::move(v.value_);
    v.value_ = T();
    return out;
  }

  friend void put(PlainVar& v, T x) {
    v.on_write("put");
    v.value_ = std::move(x);
  }

 private:
  void on_write(const char* what) {
    Execution* e = detail::g_exec;
    VectorClock& c = e->clock();
    const int slot = Execution::clock_slot(e->current_thread());
    if (w_slot_ >= 0 && c[w_slot_] < w_tick_) {
      e->fail("data race on plain field p" + std::to_string(id_) + " (" +
              what +
              "): write not ordered after the previous write — missing "
              "release/acquire on the publishing atomic");
    }
    for (int i = 0; i < VectorClock::kSlots; ++i) {
      if (r_ticks_[static_cast<std::size_t>(i)] != 0 &&
          c[i] < r_ticks_[static_cast<std::size_t>(i)]) {
        e->fail("data race on plain field p" + std::to_string(id_) + " (" +
                what + "): write not ordered after a previous read");
      }
    }
    w_slot_ = slot;
    w_tick_ = e->tick();
    r_ticks_.fill(0);
    e->note(std::string(what) + " p" + std::to_string(id_));
  }

  std::uint64_t id_ = 0;
  T value_{};
  int w_slot_ = -1;
  std::uint64_t w_tick_ = 0;
  std::array<std::uint64_t, VectorClock::kSlots> r_ticks_{};
};

/// The model policy: plug into BasicMpmcMessageRing / BasicMailboxCore /
/// WaiterGate / SlabRefGate in place of StdAtomics.
struct ModelAtomics {
  template <class T>
  using Atomic = model::Atomic<T>;

  template <class T>
  using Plain = model::PlainVar<T>;

  static void fence(std::memory_order mo) {
    Execution* e = detail::g_exec;
    e->schedule_point();
    if (detail::is_acquire(mo)) e->clock().merge(e->acq_pending());
    if (detail::is_seq_cst(mo)) e->clock().merge(e->sc_clock());
    if (detail::is_release(mo)) e->set_fence_release();
    if (detail::is_seq_cst(mo)) {
      e->tick();
      e->sc_clock().merge(e->clock());
    }
    e->note("fence");
  }

  static void yield() { detail::g_exec->yield(); }
};

}  // namespace reptile::rtm::model
