#pragma once
// Fixed-size vector clocks for the rtm model checker (DESIGN.md §8).
//
// Component i is the number of events thread i had performed when this
// clock was captured. Happens-before between events is component-wise
// dominance of the clocks captured at those events. The model runs at
// most kSlots - 1 virtual threads plus the bootstrap/teardown context,
// so a flat array beats anything dynamic.

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

namespace reptile::rtm::model {

class VectorClock {
 public:
  static constexpr int kSlots = 8;

  std::uint64_t operator[](int i) const { return t_[static_cast<std::size_t>(i)]; }
  std::uint64_t& operator[](int i) { return t_[static_cast<std::size_t>(i)]; }

  /// Pointwise maximum: after this, *this dominates both inputs.
  void merge(const VectorClock& o) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(kSlots); ++i) {
      t_[i] = std::max(t_[i], o.t_[i]);
    }
  }

  /// True when every component of *this is >= the matching one in `o`,
  /// i.e. the event that captured `o` happens-before the holder of *this.
  bool dominates(const VectorClock& o) const {
    for (std::size_t i = 0; i < static_cast<std::size_t>(kSlots); ++i) {
      if (t_[i] < o.t_[i]) return false;
    }
    return true;
  }

  void clear() { t_.fill(0); }

  std::string str() const {
    std::string out = "[";
    for (int i = 0; i < kSlots; ++i) {
      if (i != 0) out += ",";
      out += std::to_string(t_[static_cast<std::size_t>(i)]);
    }
    return out + "]";
  }

 private:
  std::array<std::uint64_t, static_cast<std::size_t>(kSlots)> t_{};
};

}  // namespace reptile::rtm::model
