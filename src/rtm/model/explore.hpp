#pragma once
// Exploration strategies of the rtm model checker (DESIGN.md §8).
//
// A scenario is run many times; each run's schedule is the decision list
// an Explorer produced. Three strategies:
//
//   - DFS: bounded-exhaustive enumeration of the decision tree, intended
//     for tiny configurations (2-3 threads, capacity 2-4 ring) together
//     with a preemption bound (CHESS-style): most concurrency bugs need
//     only 1-2 preemptions, and the bound collapses the tree from
//     exponential-in-steps to polynomial.
//   - Random: seeded random walks, biased toward "keep running the
//     current thread / read the newest store" so schedules stay cheap
//     (every non-default branch is a semaphore handoff) while still
//     visiting preemptions and stale reads. Default for large budgets.
//   - Replay: re-runs one recorded decision list — the `seed:d0.d1...`
//     token printed with every failure — with event recording on, for
//     deterministic diagnosis of a schedule found by either strategy.
//
// explore() runs the chosen strategy until failure / exhaustion / budget,
// and on failure re-executes the failing schedule once more with event
// recording enabled so Result carries a readable trace. Every run is
// deterministic given its decision list, which is what makes that re-run
// (and the CLI's --replay) exact.

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "rtm/model/atomic.hpp"
#include "rtm/model/scheduler.hpp"

namespace reptile::rtm::model {

enum class Mode { kDfs, kRandom, kReplay };

struct Options {
  Mode mode = Mode::kRandom;
  std::uint64_t max_schedules = 10000;  ///< budget (DFS may exhaust earlier)
  std::uint64_t seed = 1;               ///< random mode
  int max_preemptions = -1;             ///< DFS preemption bound; <0 = off
  std::uint64_t max_steps = 200000;     ///< per-execution livelock guard
  std::vector<int> replay;              ///< decision list for Mode::kReplay
};

struct Result {
  bool failed = false;
  bool exhausted = false;  ///< DFS proved the bounded space clean
  std::uint64_t schedules = 0;
  std::string message;            ///< first failure
  std::string replay_token;       ///< "seed:d0.d1..." reproducing it
  std::vector<std::string> trace;  ///< event log of the failing schedule
};

/// Formats the token printed with failures and accepted by --replay.
inline std::string format_replay(std::uint64_t seed,
                                 const std::vector<int>& decisions) {
  std::string out = std::to_string(seed) + ":";
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (i != 0) out += ".";
    out += std::to_string(decisions[i]);
  }
  return out;
}

/// Parses a replay token; returns false on malformed input.
inline bool parse_replay(const std::string& token, std::uint64_t* seed,
                         std::vector<int>* decisions) {
  const std::size_t colon = token.find(':');
  if (colon == std::string::npos) return false;
  try {
    *seed = std::stoull(token.substr(0, colon));
  } catch (...) {
    return false;
  }
  decisions->clear();
  std::stringstream rest(token.substr(colon + 1));
  std::string part;
  while (std::getline(rest, part, '.')) {
    if (part.empty()) continue;
    try {
      decisions->push_back(std::stoi(part));
    } catch (...) {
      return false;
    }
  }
  return true;
}

namespace detail {

/// splitmix64: tiny, seedable, good enough for schedule sampling.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : x_(seed + 0x9E3779B97F4A7C15ULL) {}
  std::uint64_t next() {
    std::uint64_t z = (x_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t x_;
};

class DfsExplorer final : public Explorer {
 public:
  int choose(int n) override {
    if (pos_ == stack_.size()) stack_.push_back(Node{n, 0});
    const int c = stack_[pos_].next;
    ++pos_;
    return c;
  }

  void begin() { pos_ = 0; }

  /// Advances to the next unexplored leaf; false when the tree is done.
  bool advance() {
    while (!stack_.empty()) {
      Node& top = stack_.back();
      if (++top.next < top.n) return true;
      stack_.pop_back();
    }
    return false;
  }

 private:
  struct Node {
    int n;
    int next;
  };
  std::vector<Node> stack_;
  std::size_t pos_ = 0;
};

class RandomExplorer final : public Explorer {
 public:
  explicit RandomExplorer(std::uint64_t seed) : rng_(seed) {}

  int choose(int n) override {
    // 3/4 bias to the default branch: handoff-free and SC-like, so a
    // 100k-schedule budget finishes in seconds; the remaining quarter
    // still lands ~15-40 preemptions/stale reads on every schedule.
    const std::uint64_t r = rng_.next();
    if ((r & 3) != 0) return 0;
    return static_cast<int>((r >> 2) % static_cast<std::uint64_t>(n));
  }

 private:
  Rng rng_;
};

class ReplayExplorer final : public Explorer {
 public:
  explicit ReplayExplorer(std::vector<int> decisions)
      : decisions_(std::move(decisions)) {}

  int choose(int n) override {
    if (pos_ >= decisions_.size()) return 0;  // past the tape: default
    int c = decisions_[pos_++];
    if (c < 0 || c >= n) c = 0;  // malformed token: stay in range
    return c;
  }

 private:
  std::vector<int> decisions_;
  std::size_t pos_ = 0;
};

}  // namespace detail

/// Runs `scenario` under `opts`; see file comment.
inline Result explore(const Options& opts,
                      const std::function<void(Sim&)>& scenario) {
  Result res;
  Execution::Limits limits;
  limits.max_preemptions = opts.max_preemptions;
  limits.max_steps = opts.max_steps;

  // Execution is pinned in place (it owns semaphores); one run's results
  // are copied out through this snapshot.
  struct RunOut {
    bool failed = false;
    std::string failure;
    std::vector<int> decisions;
    std::vector<std::string> events;
  };
  auto run_once = [&](Explorer& ex, bool record) {
    Execution e(ex, limits, record);
    e.run(scenario);
    return RunOut{e.failed(), e.failure(), e.decisions(), e.events()};
  };

  auto finish_failure = [&](const RunOut& r, std::uint64_t seed) {
    res.failed = true;
    res.message = r.failure;
    res.replay_token = format_replay(seed, r.decisions);
    // Deterministic re-run of the same schedule with event recording on.
    detail::ReplayExplorer replay(r.decisions);
    const RunOut diag = run_once(replay, /*record=*/true);
    res.trace = diag.events;
    if (!diag.failed) {
      res.trace.push_back(
          "(replay divergence: recorded schedule did not reproduce — "
          "model bug, please report)");
    }
  };

  switch (opts.mode) {
    case Mode::kDfs: {
      detail::DfsExplorer dfs;
      for (;;) {
        dfs.begin();
        const RunOut r = run_once(dfs, /*record=*/false);
        ++res.schedules;
        if (r.failed) {
          finish_failure(r, 0);
          return res;
        }
        if (!dfs.advance()) {
          res.exhausted = true;
          return res;
        }
        if (res.schedules >= opts.max_schedules) return res;  // budget
      }
    }
    case Mode::kRandom: {
      for (std::uint64_t i = 0; i < opts.max_schedules; ++i) {
        detail::RandomExplorer rnd(opts.seed + i);
        const RunOut r = run_once(rnd, /*record=*/false);
        ++res.schedules;
        if (r.failed) {
          finish_failure(r, opts.seed + i);
          return res;
        }
      }
      return res;
    }
    case Mode::kReplay: {
      detail::ReplayExplorer replay(opts.replay);
      const RunOut r = run_once(replay, /*record=*/true);
      ++res.schedules;
      if (r.failed) {
        res.failed = true;
        res.message = r.failure;
        res.replay_token = format_replay(opts.seed, r.decisions);
        res.trace = r.events;
      }
      return res;
    }
  }
  return res;
}

/// Renders a failed Result the way the test listeners and the CLI print
/// it: message, replay command, then the event trace.
inline std::string describe_failure(const Result& r,
                                    const std::string& scenario_name) {
  std::string out = "model failure in scenario '" + scenario_name +
                    "': " + r.message + "\n";
  out += "replay: tools/rtm_model --scenario " + scenario_name + " --replay " +
         r.replay_token + "\n";
  out += "schedule trace (" + std::to_string(r.trace.size()) + " events):\n";
  for (const std::string& ev : r.trace) out += "  " + ev + "\n";
  return out;
}

}  // namespace reptile::rtm::model
