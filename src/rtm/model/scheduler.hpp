#pragma once
// Cooperative virtual-thread scheduler of the rtm model checker.
//
// One EXECUTION = one run of a scenario (a handful of virtual threads
// driving the policy-templated rtm structures) under one fully determined
// schedule. Exactly one virtual thread runs at any moment; every
// instrumented operation (atomic access, fence, mutex, condvar, yield) is
// a SCHEDULING POINT where an Explorer decides which runnable thread runs
// next — and, for weak-memory loads, which store the load observes. The
// explorer's decision list IS the schedule: replaying the list replays
// the execution bit-for-bit (rtm/model/explore.hpp).
//
// Virtual threads are carried by a pool of OS threads parked on
// semaphores; a scheduling decision that stays on the current thread costs
// nothing, and a switch is one release + one acquire. Serialized execution
// means the model's own state (clocks, store histories, event log) needs
// no synchronization of its own. Chosen over stackful fibers so the model
// suite runs unmodified under TSan/ASan in CI.
//
// Blocking is modeled, not real:
//   - model Mutex/CondVar park the virtual thread and record the
//     happens-before edges a real mutex/condvar would create;
//   - Policy::yield() (a spin-loop backoff in production) is where the
//     model honors C++'s eventual-visibility guarantee ([intro.progress]):
//     if anything happened since this thread last looked, the yield
//     retries the spin body with every earlier store forced visible
//     (no stale-read choice); only a thread that has truly seen
//     everything parks, until any other thread performs a store, an
//     unlock or a notify — the only events that can change what the spin
//     re-checks. This keeps bounded exploration finite on retry loops
//     and is a sound pruning: a spin loop may not rely on staleness
//     persisting forever, and the skipped executions only re-run loads
//     that a more constrained schedule already covers.
//
// When every unfinished thread is parked the schedule has deadlocked —
// which is exactly what a lost wakeup looks like, so the checker finds
// those without any dedicated detector. Failures (data race, invariant
// violation, deadlock, step budget) abort the execution: parked threads
// are woken one by one and unwind via AbortThread.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "rtm/model/vector_clock.hpp"

namespace reptile::rtm::model {

class Execution;

namespace detail {
/// The execution being explored. Exactly one is live per process at a
/// time (the model suite is itself single-threaded at the test level);
/// instrumented atomics reach it through this pointer.
inline Execution* g_exec = nullptr;
/// Unwinds a virtual thread whose execution is being aborted.
struct AbortThread {};
}  // namespace detail

/// Supplies every decision of one execution. choose() returns a value in
/// [0, n); index 0 is always the "default" branch (continue the current
/// thread / read the newest store), which keeps the first DFS path close
/// to a sequentially consistent, uninterrupted run.
class Explorer {
 public:
  virtual ~Explorer() = default;
  virtual int choose(int n) = 0;
};

/// Collects a scenario's virtual threads and its end-of-execution
/// invariant; handed to the scenario body once per execution.
class Sim {
 public:
  void thread(std::string name, std::function<void()> body) {
    names_.push_back(std::move(name));
    bodies_.push_back(std::move(body));
  }

  /// Runs after every thread finished (on the joined teardown context,
  /// where all clocks are merged): use model::require to check ring FIFO,
  /// no-leak, and friends.
  void invariant(std::function<void()> check) { check_ = std::move(check); }

 private:
  friend class Execution;
  std::vector<std::string> names_;
  std::vector<std::function<void()>> bodies_;
  std::function<void()> check_;
};

class Mutex;
class CondVar;

class Execution {
 public:
  /// Virtual threads per scenario (slot kSlots-1 is the bootstrap /
  /// teardown context).
  static constexpr int kMaxThreads = VectorClock::kSlots - 1;

  struct Limits {
    int max_preemptions = -1;       ///< <0: unbounded
    std::uint64_t max_steps = 200000;  ///< scheduling points per execution
  };

  Execution(Explorer& explorer, const Limits& limits, bool record_events)
      : explorer_(explorer), limits_(limits), record_events_(record_events) {}

  // ---- result of one execution ----------------------------------------

  bool failed() const { return failed_; }
  const std::string& failure() const { return failure_; }
  const std::vector<int>& decisions() const { return decisions_; }
  const std::vector<std::string>& events() const { return events_; }
  std::uint64_t steps() const { return steps_; }

  /// Runs the scenario once under the explorer's schedule.
  void run(const std::function<void(Sim&)>& scenario) {
    detail::g_exec = this;
    Sim sim;
    phase_ = Phase::kBootstrap;
    cur_ = kBootstrapId;
    try {
      scenario(sim);  // constructs shared state, registers threads
      start_threads(sim);
      if (!failed_ && sim.check_) {
        phase_ = Phase::kTeardown;
        sim.check_();
      }
    } catch (const detail::AbortThread&) {
      // require() failed during bootstrap or teardown; failure_ is set.
    }
    phase_ = Phase::kDone;
    detail::g_exec = nullptr;
  }

  // ---- scenario-facing helpers -----------------------------------------

  /// Records a failure and aborts the execution. The FIRST failure wins;
  /// the abort unwind never overwrites it.
  [[noreturn]] void fail(const std::string& why) {
    if (!failed_) {
      failed_ = true;
      failure_ = context_name() + ": " + why;
      if (record_events_) note("FAIL " + why);
    }
    aborting_ = true;
    throw detail::AbortThread{};
  }

  int current_thread() const { return cur_; }
  bool in_threads_phase() const { return phase_ == Phase::kThreads; }

  // ---- instrumentation hooks (model atomics / mutex / condvar) ---------

  /// Consumes one explorer decision (recorded for replay). Trivial and
  /// out-of-phase choices are not decisions.
  int choose(int n) {
    if (n <= 1 || phase_ != Phase::kThreads) return 0;
    const int c = explorer_.choose(n);
    decisions_.push_back(c);
    return c;
  }

  /// A scheduling point: maybe switch to another runnable thread.
  void schedule_point() {
    if (phase_ != Phase::kThreads) return;
    // Abort unwinds run through RAII cleanup (LockGuard → unlock → here);
    // re-entering the scheduler there would throw from a destructor.
    if (aborting_) return;
    if (++steps_ > limits_.max_steps) {
      fail("step budget exceeded (" + std::to_string(limits_.max_steps) +
           " scheduling points) — livelock?");
    }
    pick_and_switch(/*current_runnable=*/true);
  }

  /// Spin-loop backoff. If progress happened since this thread's last
  /// visibility refresh, retry the spin body with every earlier store
  /// forced visible (eventual visibility — a stale read may not persist
  /// across a backoff). Otherwise park until another thread
  /// stores/unlocks/notifies.
  void yield() {
    if (phase_ != Phase::kThreads) return;
    if (aborting_) throw detail::AbortThread{};  // never from a destructor
    ThreadCtx& t = *threads_[static_cast<std::size_t>(cur_)];
    // Progress made by OTHER threads: the thread's own stores cannot
    // satisfy its own spin loop (and a re-check that stores — e.g. the
    // consumer-lock RMW — must not keep itself awake forever).
    const std::uint64_t foreign = progress_ - t.own_progress;
    if (foreign > t.foreign_seen) {
      // Someone did something since this thread's previous backoff: the
      // spin body may have checked before it landed, so retry with every
      // earlier store forced visible instead of parking.
      note("yield (retries with forced visibility)");
      t.foreign_seen = foreign;
      t.visible_floor = progress_;
      pick_and_switch(/*current_runnable=*/true);
      return;
    }
    note("yield (parks until progress)");
    t.state = State::kYieldParked;
    t.yield_stamp = progress_;
    pick_and_switch(/*current_runnable=*/false);
    // Resumed: someone made progress; their stores are now observable.
    ThreadCtx& self = *threads_[static_cast<std::size_t>(cur_)];
    self.visible_floor = progress_;
    self.foreign_seen = progress_ - self.own_progress;
  }

  /// A store / unlock / notify happened: spin loops may now observe
  /// something new, so un-park yield-blocked threads.
  void note_progress() {
    ++progress_;
    if (cur_ != kBootstrapId && phase_ == Phase::kThreads) {
      ++threads_[static_cast<std::size_t>(cur_)]->own_progress;
    }
    for (auto& t : threads_) {
      if (t->state == State::kYieldParked && t->yield_stamp < progress_) {
        t->state = State::kRunnable;
      }
    }
  }

  /// The current context's vector clock (bootstrap and teardown share the
  /// kBootstrapId slot; teardown starts from the join of all threads).
  VectorClock& clock() {
    return cur_ == kBootstrapId ? boot_clock_
                                : threads_[static_cast<std::size_t>(cur_)]->clock;
  }

  /// Advances the current context's own clock component and returns the
  /// new tick — the epoch of the event being recorded.
  std::uint64_t tick() {
    VectorClock& c = clock();
    return ++c[clock_slot(cur_)];
  }

  static int clock_slot(int ctx) {
    return ctx == kBootstrapId ? VectorClock::kSlots - 1 : ctx;
  }

  /// Per-thread clock accumulated by relaxed loads of release stores,
  /// claimed by the next acquire fence.
  VectorClock& acq_pending() {
    return acq_pending_[static_cast<std::size_t>(clock_slot(cur_))];
  }
  /// Per-thread release-fence clock: relaxed stores after a release fence
  /// carry it (fence-to-acquire synchronization).
  VectorClock* fence_release() {
    auto& f = fence_rel_[static_cast<std::size_t>(clock_slot(cur_))];
    return f.valid ? &f.clock : nullptr;
  }
  void set_fence_release() {
    auto& f = fence_rel_[static_cast<std::size_t>(clock_slot(cur_))];
    f.clock = clock();
    f.valid = true;
  }

  /// The global seq_cst clock: every seq_cst operation joins it both ways,
  /// which totally orders seq_cst events and gives store-buffering (Dekker)
  /// handshakes their real semantics.
  VectorClock& sc_clock() { return sc_clock_; }

  /// Progress stamp recorded on each store (model/atomic.hpp).
  std::uint64_t progress_stamp() const { return progress_; }

  /// Stores stamped before this are guaranteed visible to the current
  /// context: loads may not return anything older (eventual visibility,
  /// refreshed at yield points). Bootstrap/teardown see everything.
  std::uint64_t visible_floor() const {
    return cur_ == kBootstrapId
               ? progress_
               : threads_[static_cast<std::size_t>(cur_)]->visible_floor;
  }

  std::uint64_t next_object_id() { return object_ids_++; }

  void note(const std::string& what) {
    if (!record_events_) return;
    events_.push_back(context_name() + ": " + what);
    if (events_.size() > kMaxEvents) {
      events_.erase(events_.begin(),
                    events_.begin() + static_cast<std::ptrdiff_t>(
                                          events_.size() - kMaxEvents));
    }
  }

  // ---- blocking primitives (model Mutex / CondVar) ---------------------

  void block_on_mutex(const void* m) {
    threads_[static_cast<std::size_t>(cur_)]->state = State::kMutexParked;
    threads_[static_cast<std::size_t>(cur_)]->wait_obj = m;
    pick_and_switch(/*current_runnable=*/false);
  }

  void block_on_cv(const void* cv) {
    threads_[static_cast<std::size_t>(cur_)]->state = State::kCvParked;
    threads_[static_cast<std::size_t>(cur_)]->wait_obj = cv;
    pick_and_switch(/*current_runnable=*/false);
  }

  void wake_mutex_waiters(const void* m) {
    for (auto& t : threads_) {
      if (t->state == State::kMutexParked && t->wait_obj == m) {
        t->state = State::kRunnable;
      }
    }
  }

  void wake_cv_waiters(const void* cv) {
    for (auto& t : threads_) {
      if (t->state == State::kCvParked && t->wait_obj == cv) {
        t->state = State::kRunnable;
      }
    }
  }

 private:
  static constexpr int kBootstrapId = -1;
  static constexpr std::size_t kMaxEvents = 160;

  enum class Phase { kBootstrap, kThreads, kTeardown, kDone };
  enum class State {
    kRunnable,
    kRunning,
    kYieldParked,
    kMutexParked,
    kCvParked,
    kFinished,
  };

  struct ThreadCtx {
    std::string name;
    std::function<void()> body;
    State state = State::kRunnable;
    const void* wait_obj = nullptr;
    std::uint64_t yield_stamp = 0;
    std::uint64_t visible_floor = 0;  ///< see Execution::visible_floor()
    std::uint64_t own_progress = 0;   ///< progress bumps made by this thread
    std::uint64_t foreign_seen = 0;   ///< foreign progress at last yield
    VectorClock clock;
    std::thread os_thread;
    std::binary_semaphore sem{0};
  };

  std::string context_name() const {
    if (cur_ == kBootstrapId) {
      return phase_ == Phase::kTeardown ? "teardown" : "bootstrap";
    }
    return threads_[static_cast<std::size_t>(cur_)]->name;
  }

  static const char* state_name(State s) {
    switch (s) {
      case State::kRunnable: return "runnable";
      case State::kRunning: return "running";
      case State::kYieldParked: return "yield-parked";
      case State::kMutexParked: return "blocked on mutex";
      case State::kCvParked: return "waiting on condvar";
      case State::kFinished: return "finished";
    }
    return "?";
  }

  void start_threads(Sim& sim) {
    const int n = static_cast<int>(sim.bodies_.size());
    if (n == 0) return;
    if (n > kMaxThreads) {
      failed_ = true;
      failure_ = "scenario declares " + std::to_string(n) + " threads; max " +
                 std::to_string(kMaxThreads);
      return;
    }
    threads_.clear();
    finished_ = 0;
    for (int i = 0; i < n; ++i) {
      threads_.push_back(std::make_unique<ThreadCtx>());
      ThreadCtx& t = *threads_.back();
      t.name = sim.names_[static_cast<std::size_t>(i)];
      t.body = std::move(sim.bodies_[static_cast<std::size_t>(i)]);
      t.clock = boot_clock_;  // setup writes happen-before every thread
    }
    for (int i = 0; i < n; ++i) {
      threads_[static_cast<std::size_t>(i)]->os_thread =
          std::thread([this, i] { thread_main(i); });
    }
    phase_ = Phase::kThreads;
    // Hand the single run token to the first scheduled thread, then wait
    // for the last finisher to hand it back.
    cur_ = pick_first();
    threads_[static_cast<std::size_t>(cur_)]->state = State::kRunning;
    threads_[static_cast<std::size_t>(cur_)]->sem.release();
    done_.acquire();
    for (auto& t : threads_) t->os_thread.join();
    // Teardown context sees everything every thread did.
    cur_ = kBootstrapId;
    for (auto& t : threads_) boot_clock_.merge(t->clock);
  }

  int pick_first() {
    const int n = static_cast<int>(threads_.size());
    return choose(n);  // candidates are 0..n-1, all runnable
  }

  void thread_main(int me) {
    ThreadCtx& t = *threads_[static_cast<std::size_t>(me)];
    t.sem.acquire();
    try {
      if (aborting_) throw detail::AbortThread{};
      t.body();
    } catch (const detail::AbortThread&) {
    }
    finish(me);
  }

  /// Called by the finishing thread while it still holds the run token.
  void finish(int me) {
    threads_[static_cast<std::size_t>(me)]->state = State::kFinished;
    if (++finished_ == static_cast<int>(threads_.size())) {
      done_.release();
      return;
    }
    if (aborting_) {
      // Abort chain: pass the token to ANY unfinished thread; it wakes,
      // sees aborting_, unwinds, and continues the chain.
      for (std::size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i]->state != State::kFinished) {
          cur_ = static_cast<int>(i);
          threads_[i]->sem.release();
          return;
        }
      }
      return;  // unreachable: finished_ < size implies one exists
    }
    pick_and_switch_from_finished();
  }

  void pick_and_switch_from_finished() {
    std::vector<int> cands = runnable();
    if (cands.empty()) {
      report_deadlock_and_abort();
      return;
    }
    const int next = cands[static_cast<std::size_t>(
        choose(static_cast<int>(cands.size())))];
    switch_to(next, /*park_self=*/false);
  }

  std::vector<int> runnable() const {
    std::vector<int> out;
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      if (threads_[i]->state == State::kRunnable) {
        out.push_back(static_cast<int>(i));
      }
    }
    return out;
  }

  /// The deadlock report doubles as the lost-wakeup detector: a receiver
  /// parked on the condvar with no one left to notify it lands here.
  void report_deadlock_and_abort() {
    std::string why = "deadlock: no runnable thread (";
    bool first = true;
    for (const auto& t : threads_) {
      if (t->state == State::kFinished) continue;
      if (!first) why += ", ";
      first = false;
      why += t->name + " " + state_name(t->state);
    }
    why += ") — lost wakeup or circular wait";
    if (!failed_) {
      failed_ = true;
      failure_ = why;
      if (record_events_) note("FAIL " + why);
    }
    aborting_ = true;
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      if (threads_[i]->state != State::kFinished) {
        cur_ = static_cast<int>(i);
        threads_[i]->sem.release();
        return;
      }
    }
  }

  /// The scheduling decision. Candidate 0 is the current thread when it
  /// is still runnable, so decision 0 always means "keep going" — and a
  /// non-zero decision while the current thread could continue is a
  /// PREEMPTION, the thing preemption bounding counts.
  void pick_and_switch(bool current_runnable) {
    std::vector<int> cands;
    if (current_runnable) cands.push_back(cur_);
    for (std::size_t i = 0; i < threads_.size(); ++i) {
      if (static_cast<int>(i) != cur_ &&
          threads_[i]->state == State::kRunnable) {
        cands.push_back(static_cast<int>(i));
      }
    }
    if (cands.empty()) {
      // Current thread just parked and nobody can run: deadlock. Unwind
      // self; the abort chain wakes the other parked threads.
      report_deadlock_self();
      throw detail::AbortThread{};
    }
    int next;
    if (current_runnable &&
        (cands.size() == 1 ||
         (limits_.max_preemptions >= 0 && preemptions_ >= limits_.max_preemptions))) {
      next = cur_;  // forced: alone, or out of preemption budget
      // A budget-forced continue still goes on the tape (as the 0 the
      // explorer was never asked for): the decision list must replay the
      // same schedule under ANY preemption bound, including none.
      if (cands.size() > 1 && phase_ == Phase::kThreads) {
        decisions_.push_back(0);
      }
    } else {
      next = cands[static_cast<std::size_t>(
          choose(static_cast<int>(cands.size())))];
    }
    if (next == cur_) return;
    if (current_runnable) {
      ++preemptions_;
      threads_[static_cast<std::size_t>(cur_)]->state = State::kRunnable;
    }
    switch_to(next, /*park_self=*/true);
  }

  void report_deadlock_self() {
    std::string why = "deadlock: no runnable thread (";
    bool first = true;
    for (const auto& t : threads_) {
      if (t->state == State::kFinished) continue;
      if (!first) why += ", ";
      first = false;
      why += t->name + " " + state_name(t->state);
    }
    why += ") — lost wakeup or circular wait";
    if (!failed_) {
      failed_ = true;
      failure_ = why;
      if (record_events_) note("FAIL " + why);
    }
    aborting_ = true;
  }

  void switch_to(int next, bool park_self) {
    const int me = cur_;
    cur_ = next;
    threads_[static_cast<std::size_t>(next)]->state = State::kRunning;
    threads_[static_cast<std::size_t>(next)]->sem.release();
    if (!park_self) return;
    threads_[static_cast<std::size_t>(me)]->sem.acquire();
    if (aborting_) throw detail::AbortThread{};
    // Whoever released us already set cur_ = me and state = kRunning.
  }

  Explorer& explorer_;
  Limits limits_;
  bool record_events_;

  Phase phase_ = Phase::kBootstrap;
  int cur_ = kBootstrapId;
  std::vector<std::unique_ptr<ThreadCtx>> threads_;
  int finished_ = 0;
  std::binary_semaphore done_{0};

  VectorClock boot_clock_;
  VectorClock sc_clock_;
  std::array<VectorClock, VectorClock::kSlots> acq_pending_{};
  struct FenceRel {
    VectorClock clock;
    bool valid = false;
  };
  std::array<FenceRel, VectorClock::kSlots> fence_rel_{};

  bool failed_ = false;
  bool aborting_ = false;
  std::string failure_;
  std::vector<int> decisions_;
  std::vector<std::string> events_;
  std::uint64_t steps_ = 0;
  std::uint64_t progress_ = 0;
  int preemptions_ = 0;
  std::uint64_t object_ids_ = 0;
};

/// Scenario assertion: record a model failure (and abort the execution)
/// when `cond` is false. Usable from virtual threads and from the
/// end-of-execution invariant.
inline void require(bool cond, const std::string& why) {
  if (!cond) detail::g_exec->fail("invariant violated: " + why);
}

/// Model mutex: parks the virtual thread instead of the OS thread and
/// carries the happens-before clock a real mutex hands from unlocker to
/// the next locker.
class Mutex {
 public:
  void lock() {
    Execution* e = detail::g_exec;
    e->schedule_point();
    while (owner_ != -1) {
      e->note("lock (blocked)");
      e->block_on_mutex(this);
    }
    owner_ = e->current_thread();
    e->clock().merge(clk_);
    e->tick();
    e->note("lock acquired");
  }

  void unlock() {
    release();
    detail::g_exec->schedule_point();
  }

 private:
  friend class CondVar;

  /// Ownership release + happens-before handoff, NO scheduling point.
  /// CondVar::wait releases through this so nothing can run between the
  /// release and the cv park — the atomicity real condvars guarantee
  /// (a notifier acquiring the mutex after the release must find the
  /// waiter parked, not preempted on its way to the park).
  void release() {
    Execution* e = detail::g_exec;
    e->tick();
    clk_ = e->clock();
    owner_ = -1;
    e->note("unlock");
    e->wake_mutex_waiters(this);
    e->note_progress();  // spin loops may re-check mutex-guarded state
  }

  int owner_ = -1;
  VectorClock clk_;
};

/// std::lock_guard-compatible RAII for the model mutex.
class LockGuard {
 public:
  explicit LockGuard(Mutex& m) : m_(m) { m_.lock(); }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  ~LockGuard() { m_.unlock(); }

 private:
  Mutex& m_;
};

/// Model condition variable: no spurious wakeups (a schedule that needs
/// one is reachable anyway by notifying and finding nothing), no timeouts
/// (a model wait that only a timeout can end IS a lost wakeup, and shows
/// up as a deadlock).
class CondVar {
 public:
  /// Precondition: the current virtual thread holds `m`. Release and park
  /// are atomic (no scheduling point in between), as for a real condvar.
  void wait(Mutex& m) {
    Execution* e = detail::g_exec;
    e->note("cv wait (releases mutex, parks)");
    m.release();
    e->block_on_cv(this);
    m.lock();
  }

  void notify_all() {
    Execution* e = detail::g_exec;
    e->note("cv notify_all");
    e->wake_cv_waiters(this);
    e->note_progress();
    e->schedule_point();
  }

 private:
};

}  // namespace reptile::rtm::model
