#pragma once
// Model-checker scenarios for the rtm concurrency kernel (DESIGN.md §8).
//
// Each scenario instantiates the PRODUCTION templates — BasicMpmcMessageRing,
// BasicMailboxCore, WaiterGate, SlabRefGate — with the instrumented
// ModelAtomics policy and drives them from 2-3 virtual threads, mirroring
// the way rtm/mailbox.hpp composes them. Invariants:
//
//   ring_fifo / mailbox_overflow — per-(source, tag) FIFO across the ring
//       AND the overflow deque, checked against global arrival order
//       (catches the PR 6 overflow-spill race its mutant re-introduces);
//   ring_exact — exact-envelope fast pops deliver every message intact
//       (catches the relaxed-publish mutant as a data race on the cell);
//   waiter_gate — the Dekker waiter handshake never loses a wakeup
//       (a lost one parks the consumer forever = modeled deadlock);
//   slab_gate — the arena retire/release race recycles a slab exactly
//       once, never twice, never zero times.
//
// Scenarios are looked up by name from tests/test_rtm_model.cpp and from
// tools/rtm_model.cpp, so a failure printed anywhere is replayable from
// the command line.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "rtm/mailbox_core.hpp"
#include "rtm/message.hpp"
#include "rtm/model/atomic.hpp"
#include "rtm/model/explore.hpp"
#include "rtm/model/scheduler.hpp"
#include "rtm/ring.hpp"

namespace reptile::rtm::model {

/// Mailbox logic rebuilt over the model policy: the same composition of
/// core + gate + mutex + condvar as rtm::Mailbox, minus stats/rtm-check.
/// Scenarios share one instance across their virtual threads.
struct ModelMailbox {
  explicit ModelMailbox(std::size_t cap) : core(cap) {}

  BasicMailboxCore<ModelAtomics> core;
  WaiterGate<ModelAtomics> gate;
  Mutex mu;
  CondVar cv;

  /// Mirrors Mailbox::push: lock-free fast path + Dekker notify check,
  /// locked overflow path otherwise.
  void push(Message m) {
    if (core.try_push_fast(m)) {
      if (gate.publisher_sees_waiter()) notify_matching();
      return;
    }
    {
      LockGuard lock(mu);
      core.push_locked(std::move(m), /*fast_path_enabled=*/true);
    }
    cv.notify_all();
  }

  /// Mirrors Mailbox::try_pop for an exact (source, tag).
  std::optional<Message> try_pop(int source, int tag) {
    Message out;
    switch (core.try_pop_fast(pack_envelope(source, tag), out)) {
      case BasicMailboxCore<ModelAtomics>::PopResult::kOk:
        return out;
      case BasicMailboxCore<ModelAtomics>::PopResult::kEmpty:
        return std::nullopt;
      case BasicMailboxCore<ModelAtomics>::PopResult::kMismatch:
      case BasicMailboxCore<ModelAtomics>::PopResult::kLocked:
        break;
    }
    LockGuard lock(mu);
    core.slow_begin_locked();
    auto m = pop_queue_locked(source, tag);
    core.slow_end_locked();
    return m;
  }

  /// Mirrors Mailbox::pop_slow_blocking: locked scan, waiter registration
  /// (the Dekker receiving half), rescan, then condvar park.
  Message pop_blocking(int source, int tag) {
    mu.lock();
    core.slow_begin_locked();
    if (auto m = pop_queue_locked(source, tag)) {
      core.slow_end_locked();
      mu.unlock();
      return std::move(*m);
    }
    gate.enter();
    core.drain_ring_locked();  // rescan after publishing the registration
    while (true) {
      if (auto m = pop_queue_locked(source, tag)) {
        gate.exit();
        core.slow_end_locked();
        mu.unlock();
        return std::move(*m);
      }
      core.slow_end_locked();
      cv.wait(mu);
      core.slow_begin_locked();
    }
  }

  /// Pops the OLDEST queued message regardless of envelope (arrival
  /// order), or nullopt when nothing is delivered yet. The FIFO oracle:
  /// slow_begin_locked drains the ring behind the consumer-lock bit, so
  /// deque order here IS global delivery order.
  std::optional<Message> pop_front_any() {
    LockGuard lock(mu);
    core.slow_begin_locked();
    std::optional<Message> out;
    if (!core.queue().empty()) {
      out = std::move(core.queue().front().msg);
      core.queue().pop_front();
    }
    core.slow_end_locked();
    return out;
  }

  /// Mirrors Mailbox::notify_matching: the mutex round-trip (production
  /// takes it to read the waiter registry) is load-bearing — it serializes
  /// the notify with the receiver's check-then-wait critical section.
  /// Dropping it is a real lost-wakeup bug, and the waiter_gate scenario
  /// finds it in under a hundred schedules.
  void notify_matching() {
    { LockGuard lock(mu); }
    cv.notify_all();
  }

 private:
  std::optional<Message> pop_queue_locked(int source, int tag) {
    auto& q = core.queue();
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (it->msg.source == source && it->msg.tag == tag) {
        Message m = std::move(it->msg);
        q.erase(it);
        return m;
      }
    }
    return std::nullopt;
  }
};

namespace scenarios {

inline Message make_msg(int source, int tag) {
  return Message::of_value<int>(source, tag, tag);
}

/// n1 msgs on stream (source 1) and n2 on (source 2) race into a
/// capacity-`cap` ring; a consumer drains in arrival order and the
/// invariant demands per-stream tags ascend. Overflow configurations
/// (n1 + n2 > cap) drive the locked spill path the PR 6 race lived in.
inline std::function<void(Sim&)> ring_fifo(int n1, int n2, std::size_t cap) {
  return [n1, n2, cap](Sim& sim) {
    struct State {
      explicit State(std::size_t c) : mb(c) {}
      ModelMailbox mb;
      std::vector<std::pair<int, int>> got;  // (source, tag) arrival order
    };
    auto st = std::make_shared<State>(cap);
    const int total = n1 + n2;
    sim.thread("P1", [st, n1] {
      for (int i = 0; i < n1; ++i) st->mb.push(make_msg(1, i));
    });
    sim.thread("P2", [st, n2] {
      for (int i = 0; i < n2; ++i) st->mb.push(make_msg(2, i));
    });
    sim.thread("C", [st, total] {
      while (static_cast<int>(st->got.size()) < total) {
        if (auto m = st->mb.pop_front_any()) {
          st->got.emplace_back(m->source, m->tag);
        } else {
          ModelAtomics::yield();  // parks until a producer makes progress
        }
      }
    });
    sim.invariant([st, n1, n2] {
      int next1 = 0;
      int next2 = 0;
      for (const auto& [source, tag] : st->got) {
        int& next = source == 1 ? next1 : next2;
        require(tag == next, "stream " + std::to_string(source) +
                                 " delivered tag " + std::to_string(tag) +
                                 " before tag " + std::to_string(next) +
                                 " (per-stream FIFO broken)");
        ++next;
      }
      require(next1 == n1 && next2 == n2, "messages lost");
    });
  };
}

/// Exact-envelope consumption: the consumer pops each stream's NEXT
/// expected (source, tag) through the lock-free fast path, falling back
/// to the locked scan on mismatch — try_pop_exact's kOk/kEmpty/kMismatch
/// triangle plus payload integrity. The relaxed-publish mutant dies here:
/// the claimed cell's Message is read without the release/acquire edge,
/// which the PlainVar happens-before check reports as a data race.
inline std::function<void(Sim&)> ring_exact(int n1, int n2, std::size_t cap) {
  return [n1, n2, cap](Sim& sim) {
    struct State {
      explicit State(std::size_t c) : mb(c) {}
      ModelMailbox mb;
      int delivered = 0;
    };
    auto st = std::make_shared<State>(cap);
    const int total = n1 + n2;
    sim.thread("P1", [st, n1] {
      for (int i = 0; i < n1; ++i) st->mb.push(make_msg(1, i));
    });
    sim.thread("P2", [st, n2] {
      for (int i = 0; i < n2; ++i) st->mb.push(make_msg(2, i));
    });
    sim.thread("C", [st, n1, n2, total] {
      int next1 = 0;
      int next2 = 0;
      while (st->delivered < total) {
        bool progressed = false;
        if (next1 < n1) {
          if (auto m = st->mb.try_pop(1, next1)) {
            require(m->as_value<int>() == next1, "payload corrupted");
            ++next1;
            ++st->delivered;
            progressed = true;
          }
        }
        if (next2 < n2) {
          if (auto m = st->mb.try_pop(2, next2)) {
            require(m->as_value<int>() == next2, "payload corrupted");
            ++next2;
            ++st->delivered;
            progressed = true;
          }
        }
        if (!progressed) ModelAtomics::yield();
      }
    });
    sim.invariant([st, total] {
      require(st->delivered == total, "messages lost");
    });
  };
}

/// One producer, one blocking consumer: if the producer's fast-path push
/// decides "no waiter registered" while the consumer decides "nothing
/// delivered, park", the consumer sleeps forever. The WaiterGate seq_cst
/// fence handshake forbids that outcome; weakening it makes this scenario
/// deadlock (which the scheduler reports with the parked-thread states).
inline std::function<void(Sim&)> waiter_gate() {
  return [](Sim& sim) {
    auto st = std::make_shared<ModelMailbox>(2);
    sim.thread("P", [st] { st->push(make_msg(1, 0)); });
    sim.thread("C", [st] {
      const Message m = st->pop_blocking(1, 0);
      require(m.tag == 0, "wrong message");
    });
  };
}

/// The PayloadArena retire/release race, reduced to its gate: two
/// receivers release their handles lock-free while the owner retires the
/// slab; whoever is last recycles — exactly once (no double-free), and
/// someone does (no leak).
inline std::function<void(Sim&)> slab_gate() {
  return [](Sim& sim) {
    struct State {
      SlabRefGate<ModelAtomics> gate;
      Atomic<int> ready{0};
      Mutex mu;
      int recycles = 0;  // guarded by mu
    };
    auto st = std::make_shared<State>();
    sim.thread("owner", [st] {
      {
        LockGuard lock(st->mu);
        st->gate.add_ref();
        st->gate.add_ref();
      }
      // mo: release publishes the two add_ref()s above to the releasers'
      // acquire spin; part of what this scenario verifies.
      st->ready.store(1, std::memory_order_release);
      {
        LockGuard lock(st->mu);
        if (st->gate.retire_locked()) ++st->recycles;
      }
    });
    for (int r = 0; r < 2; ++r) {
      sim.thread("R" + std::to_string(r), [st] {
        // mo: acquire pairs with the owner's release store of ready.
        while (st->ready.load(std::memory_order_acquire) == 0) {
          ModelAtomics::yield();
        }
        if (st->gate.release_last()) {
          LockGuard lock(st->mu);
          if (st->gate.try_recycle_locked()) ++st->recycles;
        }
      });
    }
    sim.invariant([st] {
      require(st->recycles == 1,
              "slab recycled " + std::to_string(st->recycles) +
                  " times (want exactly 1: no double-free, no leak)");
    });
  };
}

/// Named registry shared by the test suite and the rtm_model CLI.
struct Named {
  std::string name;
  std::string description;
  std::function<void(Sim&)> fn;
};

inline std::vector<Named> all() {
  return {
      {"ring_fifo_small",
       "2 producers (2+1 msgs) / 1 consumer, capacity-2 ring, FIFO oracle",
       ring_fifo(2, 1, 2)},
      {"mailbox_overflow",
       "overflow-heavy FIFO: 3+2 msgs through a capacity-2 ring",
       ring_fifo(3, 2, 2)},
      {"ring_exact",
       "exact-envelope fast pops with mismatch fallback, 2+2 msgs, cap 4",
       ring_exact(2, 2, 4)},
      {"waiter_gate", "lost-wakeup handshake: 1 pusher vs 1 parked receiver",
       waiter_gate()},
      {"slab_gate", "arena slab retire vs 2 lock-free releases",
       slab_gate()},
  };
}

inline const Named* find(const std::string& name) {
  static const std::vector<Named> reg = all();
  for (const Named& s : reg) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace scenarios
}  // namespace reptile::rtm::model
