#pragma once
// Shared state of one runtime instance: mailboxes, barrier, collective
// staging, phase-completion flags, traffic counters, optional checkers.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "rtm/chaos.hpp"
#include "rtm/check/check.hpp"
#include "rtm/mailbox.hpp"
#include "rtm/topology.hpp"
#include "rtm/traffic.hpp"

namespace reptile::rtm {

/// Reusable generation-counting barrier for a fixed set of participants.
class Barrier {
 public:
  explicit Barrier(int participants) : n_(participants) {}

  /// Installs (or removes) the rtm-check hooks.
  void set_check(check::RunChecker* check) {
    std::lock_guard lock(mutex_);
    check_ = check;
  }

  /// `rank` identifies the arriving rank to rtm-check; pass -1 for an
  /// anonymous arrival (disables deadlock attribution for the generation).
  void arrive_and_wait(int rank = -1) {
    std::unique_lock lock(mutex_);
    const std::uint64_t gen = gen_;
    if (++waiting_ == n_) {
      waiting_ = 0;
      ++gen_;
      if (check_ != nullptr) check_->on_barrier_arrive(rank, gen, true);
      // Unlike Mailbox::push, this notify MUST stay inside the critical
      // section: a woken waiter may return and destroy the Barrier (think
      // "last barrier before teardown") the moment it reacquires the
      // mutex, so notifying after unlock could touch a dead condition
      // variable.
      cv_.notify_all();
      return;
    }
    if (check_ == nullptr) {
      cv_.wait(lock, [&] { return gen_ != gen; });
      return;
    }
    check_->on_barrier_arrive(rank, gen, false);
    const std::uint64_t ticket = check_->begin_barrier_wait(rank, gen);
    while (gen_ == gen) {
      if (check_->aborted()) {
        check_->end_barrier_wait(ticket);
        check_->throw_abort();
      }
      cv_.wait_for(lock, check_->poll_interval());
    }
    check_->end_barrier_wait(ticket);
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int n_;
  int waiting_ = 0;
  std::uint64_t gen_ = 0;
  check::RunChecker* check_ = nullptr;
};

/// State shared by all ranks of a run. Created once per Runtime; rank
/// threads access it through their Comm handles.
class World {
 public:
  explicit World(Topology topo)
      : topo_(topo),
        arenas_(static_cast<std::size_t>(topo.nranks)),
        mailboxes_(static_cast<std::size_t>(topo.nranks)),
        barrier_(topo.nranks),
        staging_(static_cast<std::size_t>(topo.nranks), nullptr),
        traffic_(topo) {
    for (int r = 0; r < topo.nranks; ++r) {
      mailboxes_[static_cast<std::size_t>(r)].set_owner(r);
      arenas_[static_cast<std::size_t>(r)] = std::make_unique<PayloadArena>();
    }
  }

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept { return topo_.nranks; }
  const Topology& topology() const noexcept { return topo_; }

  Mailbox& mailbox(int rank) {
    return mailboxes_[static_cast<std::size_t>(rank)];
  }

  /// Rank-local slab allocator for outgoing wire payloads (zero-copy
  /// sends build messages in place here; see rtm/message.hpp).
  PayloadArena& arena(int rank) {
    return *arenas_[static_cast<std::size_t>(rank)];
  }

  /// Enables/disables the lock-free mailbox fast path on every rank
  /// (benchmark A/B and chaos path-identity tests). Call before spawning
  /// rank threads.
  void set_mailbox_fast_path(bool enabled) {
    for (Mailbox& mb : mailboxes_) mb.set_fast_path(enabled);
  }

  Barrier& barrier() noexcept { return barrier_; }

  /// Collective staging slots: during a collective, slot r holds a pointer
  /// to rank r's send-side data, valid between the entry and exit barriers.
  std::vector<const void*>& staging() noexcept { return staging_; }

  /// Phase-completion counter used by the correction phase's termination
  /// protocol (see parallel::LookupService).
  std::atomic<int>& done_count() noexcept { return done_count_; }

  TrafficRecorder& traffic() noexcept { return traffic_; }

  /// Enables chaos delivery (see rtm/chaos.hpp): every subsequent
  /// point-to-point send goes through the fault injector (randomized delay
  /// plus any drop/duplicate/truncate/stall faults the plan arms), with
  /// per-destination order preserved. Call before spawning rank threads.
  void enable_chaos(const FaultPlan& plan) {
    chaos_ = std::make_unique<ChaosDelayer>(*this, plan);
  }

  /// Active chaos delayer, or nullptr for instant delivery.
  ChaosDelayer* chaos() noexcept { return chaos_.get(); }

  /// Enables rtm-check (see rtm/check/check.hpp): wait-for-graph deadlock
  /// watchdog, mailbox FIFO/leak audit, protocol linter. Call before
  /// spawning rank threads.
  void enable_check(const check::Options& options) {
    check_ = std::make_unique<check::RunChecker>(options, topo_.nranks, this);
    for (int r = 0; r < topo_.nranks; ++r) {
      check_->attach_mailbox(r, &mailboxes_[static_cast<std::size_t>(r)]);
    }
    check_->attach_barrier(&barrier_);
    check_->start();
  }

  /// Active run checker, or nullptr when checking is off.
  check::RunChecker* checker() noexcept { return check_.get(); }

 private:
  Topology topo_;
  // Declared before mailboxes_ so the arenas are destroyed AFTER them:
  // undelivered messages dying with their mailbox may still release
  // arena-backed payload slabs.
  std::vector<std::unique_ptr<PayloadArena>> arenas_;
  std::vector<Mailbox> mailboxes_;
  Barrier barrier_;
  std::vector<const void*> staging_;
  std::atomic<int> done_count_{0};
  TrafficRecorder traffic_;
  std::unique_ptr<ChaosDelayer> chaos_;
  // Declared after chaos_ so the checker is destroyed FIRST: ~RunChecker
  // detaches its mailbox/barrier hooks, making the chaos drain that runs
  // in ~ChaosDelayer safe.
  std::unique_ptr<check::RunChecker> check_;
};

}  // namespace reptile::rtm
