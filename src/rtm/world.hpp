#pragma once
// Shared state of one runtime instance: mailboxes, barrier, collective
// staging, phase-completion flags, traffic counters.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "rtm/chaos.hpp"
#include "rtm/mailbox.hpp"
#include "rtm/topology.hpp"
#include "rtm/traffic.hpp"

namespace reptile::rtm {

/// Reusable generation-counting barrier for a fixed set of participants.
class Barrier {
 public:
  explicit Barrier(int participants) : n_(participants) {}

  void arrive_and_wait() {
    std::unique_lock lock(mutex_);
    const std::uint64_t gen = gen_;
    if (++waiting_ == n_) {
      waiting_ = 0;
      ++gen_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return gen_ != gen; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int n_;
  int waiting_ = 0;
  std::uint64_t gen_ = 0;
};

/// State shared by all ranks of a run. Created once per Runtime; rank
/// threads access it through their Comm handles.
class World {
 public:
  explicit World(Topology topo)
      : topo_(topo),
        mailboxes_(static_cast<std::size_t>(topo.nranks)),
        barrier_(topo.nranks),
        staging_(static_cast<std::size_t>(topo.nranks), nullptr),
        traffic_(topo) {}

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept { return topo_.nranks; }
  const Topology& topology() const noexcept { return topo_; }

  Mailbox& mailbox(int rank) {
    return mailboxes_[static_cast<std::size_t>(rank)];
  }

  Barrier& barrier() noexcept { return barrier_; }

  /// Collective staging slots: during a collective, slot r holds a pointer
  /// to rank r's send-side data, valid between the entry and exit barriers.
  std::vector<const void*>& staging() noexcept { return staging_; }

  /// Phase-completion counter used by the correction phase's termination
  /// protocol (see parallel::LookupService).
  std::atomic<int>& done_count() noexcept { return done_count_; }

  TrafficRecorder& traffic() noexcept { return traffic_; }

  /// Enables chaos delivery (see rtm/chaos.hpp): every subsequent
  /// point-to-point send is delayed by a random amount while preserving
  /// per-destination order. Call before spawning rank threads.
  void enable_chaos(std::uint64_t seed, int max_delay_us = 300) {
    chaos_ = std::make_unique<ChaosDelayer>(*this, seed, max_delay_us);
  }

  /// Active chaos delayer, or nullptr for instant delivery.
  ChaosDelayer* chaos() noexcept { return chaos_.get(); }

 private:
  Topology topo_;
  std::vector<Mailbox> mailboxes_;
  Barrier barrier_;
  std::vector<const void*> staging_;
  std::atomic<int> done_count_{0};
  TrafficRecorder traffic_;
  std::unique_ptr<ChaosDelayer> chaos_;
};

}  // namespace reptile::rtm
