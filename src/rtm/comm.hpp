#pragma once
// Per-rank communicator: the API the Reptile pipelines are written against.
//
// Mirrors the MPI subset the paper uses — tagged point-to-point send /
// blocking receive / non-blocking probe (MPI_Iprobe), MPI_Alltoallv,
// MPI_Allgatherv, MPI_Allreduce, MPI_Barrier — implemented over the
// in-process mailboxes of rtm::World. A Comm is bound to one rank and may be
// shared by that rank's worker and communication threads (all operations on
// the underlying mailbox are thread-safe; collectives must only be entered
// by one thread per rank, as in MPI).

#include <cassert>
#include <functional>
#include <span>
#include <vector>

#include "rtm/world.hpp"

namespace reptile::rtm {

class Comm {
 public:
  Comm(World& world, int rank) : world_(&world), rank_(rank) {
    assert(rank >= 0 && rank < world.size());
  }

  int rank() const noexcept { return rank_; }
  int size() const noexcept { return world_->size(); }
  const Topology& topology() const noexcept { return world_->topology(); }
  World& world() noexcept { return *world_; }

  // --- point to point -----------------------------------------------------

  /// Sends `items` to `dst` with `tag`. Buffered and non-blocking, like an
  /// MPI_Send that always completes locally. The payload is staged in this
  /// rank's arena (one copy from the caller's buffer into a recycled slab,
  /// then ownership transfer all the way to the receiver). When rtm-check
  /// is active the message is linted against the protocol tag table first
  /// and a violation throws check::ProtocolError at this call site.
  template <class T>
  void send(int dst, int tag, std::span<const T> items) {
    Message m;
    m.source = rank_;
    m.tag = tag;
    m.payload = world_->arena(rank_).allocate(items.size_bytes());
    if (!items.empty()) {
      std::memcpy(m.payload.data(), items.data(), items.size_bytes());
    }
    finish_send(dst, std::move(m));
  }

  /// Sends a single value.
  template <class T>
  void send_value(int dst, int tag, const T& value) {
    send<T>(dst, tag, std::span<const T>(&value, 1));
  }

  /// Allocates an owned payload in this rank's arena for in-place
  /// construction (zero-copy send: encode the wire format directly into
  /// the returned buffer, then hand it to send_payload).
  Payload make_payload(std::size_t bytes) {
    return world_->arena(rank_).allocate(bytes);
  }

  /// Sends an already-built payload by ownership transfer — no copy.
  void send_payload(int dst, int tag, Payload&& payload) {
    Message m;
    m.source = rank_;
    m.tag = tag;
    m.payload = std::move(payload);
    finish_send(dst, std::move(m));
  }

  /// Blocking matched receive (source/tag may be wildcards).
  Message recv(int source = kAnySource, int tag = kAnyTag) {
    return world_->mailbox(rank_).pop(source, tag);
  }

  /// Non-blocking matched receive.
  std::optional<Message> try_recv(int source = kAnySource, int tag = kAnyTag) {
    return world_->mailbox(rank_).try_pop(source, tag);
  }

  /// Timed predicate receive: first queued message satisfying `pred`,
  /// waiting up to `timeout`. See Mailbox::pop_match_for.
  template <class Pred, class Rep, class Period>
  std::optional<Message> recv_match_for(
      Pred&& pred, std::chrono::duration<Rep, Period> timeout) {
    return world_->mailbox(rank_).pop_match_for(std::forward<Pred>(pred),
                                                timeout);
  }

  /// Non-blocking probe (MPI_Iprobe): envelope of the first matching queued
  /// message, without consuming it.
  std::optional<MessageInfo> iprobe(int source = kAnySource,
                                    int tag = kAnyTag) const {
    return world_->mailbox(rank_).probe(source, tag);
  }

  /// Number of messages queued at this rank (diagnostics).
  std::size_t pending() const { return world_->mailbox(rank_).size(); }

  // --- collectives ----------------------------------------------------------
  // All collectives are bulk-synchronous: every rank must call them in the
  // same order, from exactly one thread per rank.

  void barrier() {
    if (check::RunChecker* check = world_->checker()) {
      // A barrier is a phase boundary: sample the queue depth so the audit
      // can report the high-water mark of unconsumed messages.
      check->on_phase_boundary(rank_, pending());
    }
    world_->barrier().arrive_and_wait(rank_);
  }

  /// MPI_Alltoallv: `send[d]` goes to rank d; returns the per-source
  /// received buffers (`result[s]` came from rank s).
  template <class T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& send) {
    assert(static_cast<int>(send.size()) == size());
    world_->staging()[static_cast<std::size_t>(rank_)] = &send;
    barrier();
    std::vector<std::vector<T>> recv(static_cast<std::size_t>(size()));
    std::size_t bytes_in = 0;
    for (int src = 0; src < size(); ++src) {
      const auto& theirs = *static_cast<const std::vector<std::vector<T>>*>(
          world_->staging()[static_cast<std::size_t>(src)]);
      recv[static_cast<std::size_t>(src)] =
          theirs[static_cast<std::size_t>(rank_)];
      bytes_in +=
          recv[static_cast<std::size_t>(src)].size() * sizeof(T);
    }
    std::size_t bytes_out = 0;
    for (const auto& part : send) bytes_out += part.size() * sizeof(T);
    world_->traffic().record_collective(rank_, bytes_out, bytes_in);
    barrier();  // staging slots must stay valid until everyone copied
    return recv;
  }

  /// MPI_Allgatherv: every rank contributes `mine`; returns the
  /// concatenation in rank order.
  template <class T>
  std::vector<T> allgatherv(std::span<const T> mine) {
    struct View {
      const T* data;
      std::size_t n;
    };
    const View view{mine.data(), mine.size()};
    world_->staging()[static_cast<std::size_t>(rank_)] = &view;
    barrier();
    std::vector<T> out;
    std::size_t total = 0;
    for (int src = 0; src < size(); ++src) {
      total += static_cast<const View*>(
                   world_->staging()[static_cast<std::size_t>(src)])
                   ->n;
    }
    out.reserve(total);
    for (int src = 0; src < size(); ++src) {
      const auto* v = static_cast<const View*>(
          world_->staging()[static_cast<std::size_t>(src)]);
      out.insert(out.end(), v->data, v->data + v->n);
    }
    world_->traffic().record_collective(rank_, mine.size_bytes(),
                                        total * sizeof(T));
    barrier();
    return out;
  }

  /// MPI_Allreduce with an arbitrary associative combiner. Every rank
  /// computes the same result (reduction in rank order).
  template <class T, class F>
  T allreduce(const T& value, F combine) {
    world_->staging()[static_cast<std::size_t>(rank_)] = &value;
    barrier();
    T acc = *static_cast<const T*>(world_->staging()[0]);
    for (int src = 1; src < size(); ++src) {
      acc = combine(acc, *static_cast<const T*>(
                             world_->staging()[static_cast<std::size_t>(src)]));
    }
    world_->traffic().record_collective(rank_, sizeof(T),
                                        sizeof(T) * static_cast<std::size_t>(size()));
    barrier();
    return acc;
  }

  template <class T>
  T allreduce_sum(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a + b; });
  }

  template <class T>
  T allreduce_max(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a > b ? a : b; });
  }

  template <class T>
  T allreduce_min(const T& value) {
    return allreduce(value, [](const T& a, const T& b) { return a < b ? a : b; });
  }

  // --- phase completion ------------------------------------------------------
  // Termination protocol for the correction phase: each rank announces when
  // its own correction work is done; communication threads keep serving
  // until every rank has announced and their request queues drained.

  /// Collectively resets the completion counter (call before the phase).
  void reset_done() {
    barrier();
    // mo: release so ranks that acquire the counter in all_done() also see
    // any pre-phase state written before the reset; the surrounding
    // barriers already order the reset itself against both phases.
    if (rank_ == 0) world_->done_count().store(0, std::memory_order_release);
    barrier();
  }

  /// Announces this rank's phase completion.
  void signal_done() {
    // mo: acq_rel — release publishes this rank's final sends before its
    // announcement; acquire chains earlier announcements so the last
    // incrementer's view covers every rank's published work.
    world_->done_count().fetch_add(1, std::memory_order_acq_rel);
  }

  /// True when every rank has announced completion.
  bool all_done() const {
    // mo: acquire pairs with signal_done's release: seeing the full count
    // makes every rank's pre-announcement sends visible to the server
    // loop that is about to stop draining.
    return world_->done_count().load(std::memory_order_acquire) ==
           world_->size();
  }

 private:
  /// Common send tail: lint, count, route through chaos or the mailbox.
  void finish_send(int dst, Message m) {
    if (check::RunChecker* check = world_->checker()) {
      check->on_send(rank_, dst, m.tag, m.payload);
    }
    world_->traffic().record_send(rank_, dst, m.payload.size());
    if (ChaosDelayer* chaos = world_->chaos()) {
      chaos->submit(dst, std::move(m));
    } else {
      world_->mailbox(dst).push(std::move(m));
    }
  }

  World* world_;
  int rank_;
};

/// Spawns one thread per rank running `rank_main` and joins them all.
/// The first exception thrown by any rank is rethrown after the join.
/// NOTE: if one rank throws while others wait in a collective, the run
/// deadlocks (as a crashed MPI job would hang its peers) — rank bodies
/// should not throw between matching collective calls.
void run_ranks(World& world, const std::function<void(Comm&)>& rank_main);

/// Options for run_world.
struct RunOptions {
  /// Fault-injection plan (see rtm/chaos.hpp). chaos.seed != 0 arms the
  /// injector; the default plan then delays only. Lossy plans (drops or
  /// truncation) additionally need requester-side timeouts
  /// (parallel::RetryPolicy) or the run can hang.
  FaultPlan chaos;
  /// rtm-check configuration (see rtm/check/check.hpp). Checking defaults
  /// to ON so tests run audited; benchmarks set check.enabled = false.
  check::Options check;
  /// Lock-free mailbox fast path (see rtm/mailbox.hpp). Only effective
  /// while checking is off — an attached checker forces the mutex path so
  /// its hooks observe every push/pop. Disable to A/B against the legacy
  /// locked mailbox.
  bool mailbox_fast_path = true;
};

/// Convenience: builds a World for `topo`, runs `rank_main` on every rank,
/// and returns the World for post-run inspection (traffic counters).
std::unique_ptr<World> run_world(Topology topo,
                                 const std::function<void(Comm&)>& rank_main,
                                 const RunOptions& options = {});

}  // namespace reptile::rtm
