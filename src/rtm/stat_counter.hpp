#pragma once
// Relaxed access helpers for monotonic statistic counters.
//
// The rtm layer keeps many diagnostic counters (traffic volume, checker
// tallies, watchdog progress probes). They share one property: nothing is
// ever published THROUGH them — readers either snapshot after a barrier /
// join that already synchronizes, or (the watchdog) only compare two reads
// of the same counter for equality, where staleness is benign. Routing
// every such access through these helpers keeps that single memory-ordering
// argument in one auditable place instead of repeated at ~50 call sites;
// tools/atomics_lint.py enforces that any weaker-than-seq_cst order used
// directly carries its own `// mo:` rationale.

#include <atomic>
#include <cstdint>

namespace reptile::rtm {

// mo: relaxed — pure counting; ordering is provided externally at read
// time (barrier/join), or the reader tolerates stale values by design.
inline std::uint64_t stat_read(const std::atomic<std::uint64_t>& c) noexcept {
  return c.load(std::memory_order_relaxed);  // mo: see above
}

// mo: relaxed — see stat_read.
inline void stat_add(std::atomic<std::uint64_t>& c, std::uint64_t v) noexcept {
  c.fetch_add(v, std::memory_order_relaxed);  // mo: see above
}

}  // namespace reptile::rtm
