#pragma once
// Messages of the in-process message-passing runtime.
//
// The runtime replaces MPI on this host (see DESIGN.md §2): ranks are
// threads inside one process, and a message is an owned byte buffer tagged
// with its source rank and a user tag, matching MPI's (source, tag)
// selection model including ANY_SOURCE / ANY_TAG wildcards.
//
// Payload ownership (DESIGN.md §7): a payload is either heap-backed (a
// plain vector, the legacy path) or a chunk of a per-rank PayloadArena
// slab. Arena payloads are built in place at the send site — the batched
// lookup wire format is encoded directly into the slab — and the Payload
// handle passes OWNERSHIP through the mailbox instead of copying bytes.
// Slabs are recycled: the last Payload released from a retired slab
// returns it to the arena's free list, so steady-state traffic allocates
// no new memory at all. Lifetime contract: an arena payload borrows slab
// memory owned by the sending rank's arena, so a Message must never
// outlive the World that carried it (runtime messages are consumed during
// the run, which the rtm-check leak audit enforces).

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/ledger.hpp"
#include "rtm/atomics_policy.hpp"
#include "rtm/stat_counter.hpp"

namespace reptile::rtm {

/// Wildcard source rank for receive/probe matching (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receive/probe matching (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

class PayloadArena;

/// The recycling decision for one arena slab: a live-handle refcount plus
/// a retired flag, arranged so the LAST of {the retiring allocator, the
/// final releasing receiver} — whichever runs second — recycles the slab,
/// and never both. add_ref/retire run under the arena mutex; release_last
/// is lock-free (receivers free payloads from their own threads) and only
/// the release that drops the count to zero takes the mutex to attempt the
/// recycle. Policy-templated so the model checker can explore the
/// retire/release race for no-double-recycle and no-leak (DESIGN.md §8).
template <class Policy = StdAtomics>
class SlabRefGate {
 public:
  /// Caller holds the arena mutex (allocation path): one more outstanding
  /// Payload handle.
  void add_ref() {
    // mo: relaxed — the handle's handoff to the releasing thread is
    // ordered by the mailbox transfer of the Message, not this counter.
    live_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Lock-free release half. True when this call dropped the LAST
  /// reference: the caller must then take the arena mutex and attempt
  /// try_recycle_locked().
  bool release_last() {
    // mo: acq_rel — release publishes this handle's final payload reads
    // before the decrement; acquire (on the winning decrement) orders
    // every other handle's reads before the recycle that may follow.
    return live_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  /// Caller holds the arena mutex. Marks the slab no longer the bump
  /// target. True when no handle is outstanding — the caller recycles the
  /// slab immediately (the gate resets itself for reuse).
  bool retire_locked() {
    retired_.store(true, std::memory_order_seq_cst);
    if (live_.load(std::memory_order_seq_cst) == 0) {
      // mo: relaxed — the arena mutex orders the reset against the next
      // retire/recycle round.
      retired_.store(false, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Caller holds the arena mutex after release_last() returned true.
  /// True when the slab is retired with no outstanding handles — the
  /// caller recycles it (the gate resets itself). All recycling decisions
  /// happen under the mutex, so retire_locked and a racing final release
  /// can never both recycle the slab.
  bool try_recycle_locked() {
    // mo: relaxed — the arena mutex orders these against retire_locked;
    // the releaser's own acq_rel decrement ordered the payload reads.
    if (retired_.load(std::memory_order_relaxed) &&
        live_.load(std::memory_order_relaxed) == 0) {
      // mo: relaxed — under the arena mutex (see retire_locked).
      retired_.store(false, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  typename Policy::template Atomic<std::uint32_t> live_{0};
  typename Policy::template Atomic<bool> retired_{false};
};

namespace detail {

/// One arena slab: a fixed block of payload bytes plus the gate that
/// decides when the block can be recycled. `used` is guarded by the
/// owning arena's mutex.
struct ArenaSlab {
  PayloadArena* arena = nullptr;
  SlabRefGate<StdAtomics> gate;
  std::size_t used = 0;
  std::unique_ptr<std::byte[]> bytes;
};

void release_slab(ArenaSlab* slab) noexcept;

}  // namespace detail

/// Owned message payload: heap-backed or a borrowed arena slab chunk.
/// Move transfers ownership; copy (rare — chaos duplication) deep-copies
/// to the heap so the duplicate is self-contained.
class Payload {
 public:
  Payload() = default;
  ~Payload() { release(); }

  Payload(Payload&& other) noexcept
      : heap_(std::move(other.heap_)),
        slab_(other.slab_),
        data_(other.data_),
        size_(other.size_) {
    other.heap_.clear();
    other.slab_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }

  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      release();
      heap_ = std::move(other.heap_);
      slab_ = other.slab_;
      data_ = other.data_;
      size_ = other.size_;
      other.heap_.clear();
      other.slab_ = nullptr;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }

  Payload(const Payload& other) { heap_.assign(other.data(), other.data() + other.size()); }

  Payload& operator=(const Payload& other) {
    if (this != &other) {
      release();
      heap_.assign(other.data(), other.data() + other.size());
    }
    return *this;
  }

  std::byte* data() noexcept { return slab_ != nullptr ? data_ : heap_.data(); }
  const std::byte* data() const noexcept {
    return slab_ != nullptr ? data_ : heap_.data();
  }
  std::size_t size() const noexcept {
    return slab_ != nullptr ? size_ : heap_.size();
  }
  bool empty() const noexcept { return size() == 0; }
  /// True when the bytes live in an arena slab (tests / accounting).
  bool arena_backed() const noexcept { return slab_ != nullptr; }

  const std::byte* begin() const noexcept { return data(); }
  const std::byte* end() const noexcept { return data() + size(); }

  /// Shrinking trims in place on either backing (chaos truncation).
  /// Growing an arena payload migrates it to the heap, preserving content.
  void resize(std::size_t n) {
    if (slab_ == nullptr) {
      heap_.resize(n);
      return;
    }
    if (n <= size_) {
      size_ = n;
      return;
    }
    heap_.assign(data_, data_ + size_);
    heap_.resize(n);
    release();
  }

  operator std::span<const std::byte>() const noexcept {  // NOLINT(google-explicit-constructor)
    return {data(), size()};
  }

 private:
  friend class PayloadArena;

  void release() noexcept {
    if (slab_ != nullptr) {
      detail::release_slab(slab_);
      slab_ = nullptr;
    }
    data_ = nullptr;
    size_ = 0;
  }

  std::vector<std::byte> heap_;
  detail::ArenaSlab* slab_ = nullptr;  ///< non-null: arena chunk [data_, size_)
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Per-rank slab allocator for wire payloads. allocate() bump-allocates
/// from the current slab under a short mutex; releases are lock-free
/// except the final release of a retired slab, which pushes it back to
/// the free list. Oversize requests (> kSlabBytes) fall back to the heap
/// and are counted. memory_bytes() is exact, CountTable-style: reserved
/// slab bytes plus nothing hidden (heap payloads account to the Message).
class PayloadArena {
 public:
  static constexpr std::size_t kSlabBytes = std::size_t{1} << 18;  // 256 KiB

  PayloadArena() = default;
  PayloadArena(const PayloadArena&) = delete;
  PayloadArena& operator=(const PayloadArena&) = delete;

  /// Counters for obs gauges and tests.
  struct Stats {
    std::uint64_t slabs_allocated = 0;  ///< slabs ever created
    std::uint64_t slabs_reused = 0;     ///< recycles off the free list
    std::uint64_t oversize_allocs = 0;  ///< requests that fell back to heap
  };

  Payload allocate(std::size_t bytes) {
    Payload p;
    if (bytes == 0) return p;
    if (bytes > kSlabBytes) {
      // mo: relaxed stat counter.
      oversize_allocs_.fetch_add(1, std::memory_order_relaxed);
      p.heap_.resize(bytes);
      return p;
    }
    // Bump offsets stay 16-aligned so payload starts are memcpy-friendly.
    const std::size_t need = (bytes + 15) & ~std::size_t{15};
    std::lock_guard lock(mutex_);
    if (current_ == nullptr || current_->used + need > kSlabBytes) {
      retire_current_locked();
      if (!free_.empty()) {
        current_ = free_.back();
        free_.pop_back();
        current_->used = 0;
        // mo: relaxed stat counter.
        slabs_reused_.fetch_add(1, std::memory_order_relaxed);
      } else {
        all_.push_back(std::make_unique<detail::ArenaSlab>());
        current_ = all_.back().get();
        current_->arena = this;
        current_->bytes = std::make_unique<std::byte[]>(kSlabBytes);
        // mo: relaxed stat counter.
        slabs_allocated_.fetch_add(1, std::memory_order_relaxed);
        charge_.set(all_.size() * kSlabBytes);  // under mutex_
      }
    }
    p.slab_ = current_;
    p.data_ = current_->bytes.get() + current_->used;
    p.size_ = bytes;
    current_->used += need;
    current_->gate.add_ref();
    return p;
  }

  /// Exact reserved footprint: every slab ever created, at full size.
  std::size_t memory_bytes() const {
    std::lock_guard lock(mutex_);
    return all_.size() * kSlabBytes;
  }

  Stats stats() const {
    Stats s;
    s.slabs_allocated = stat_read(slabs_allocated_);
    s.slabs_reused = stat_read(slabs_reused_);
    s.oversize_allocs = stat_read(oversize_allocs_);
    return s;
  }

  /// Slabs currently waiting on the free list (tests: proves reuse).
  std::size_t free_slabs() const {
    std::lock_guard lock(mutex_);
    return free_.size();
  }

 private:
  friend void detail::release_slab(detail::ArenaSlab* slab) noexcept;

  /// Caller holds mutex_. Marks the bump target retired; if no payload is
  /// outstanding the slab goes straight back to the free list (otherwise
  /// the final release_slab recycles it). The race discipline lives in
  /// SlabRefGate.
  void retire_current_locked() {
    if (current_ == nullptr) return;
    if (current_->gate.retire_locked()) {
      current_->used = 0;
      free_.push_back(current_);
    }
    current_ = nullptr;
  }

  /// Lock-free decrement; the mutex is taken only by the release that
  /// drops a retired slab's count to zero (see SlabRefGate).
  void release(detail::ArenaSlab* slab) noexcept {
    if (!slab->gate.release_last()) return;
    std::lock_guard lock(mutex_);
    if (slab->gate.try_recycle_locked()) {
      slab->used = 0;
      free_.push_back(slab);
    }
  }

  mutable std::mutex mutex_;
  detail::ArenaSlab* current_ = nullptr;
  std::vector<std::unique_ptr<detail::ArenaSlab>> all_;
  /// Mirrors memory_bytes() into the resource ledger; mutated only under
  /// mutex_ (the slab-allocation path).
  obs::LedgerCharge charge_{obs::LedgerAccount::kPayloadArena};
  std::vector<detail::ArenaSlab*> free_;
  std::atomic<std::uint64_t> slabs_allocated_{0};
  std::atomic<std::uint64_t> slabs_reused_{0};
  std::atomic<std::uint64_t> oversize_allocs_{0};
};

namespace detail {
inline void release_slab(ArenaSlab* slab) noexcept { slab->arena->release(slab); }
}  // namespace detail

/// Envelope information returned by probe operations (MPI_Status analog).
struct MessageInfo {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// An owned, delivered message.
struct Message {
  int source = kAnySource;
  int tag = kAnyTag;
  /// Per-(source, tag) delivery sequence number, stamped by the rtm-check
  /// mailbox audit on push (see rtm/check/check.hpp); 0 when unchecked.
  std::uint64_t seq = 0;
  Payload payload;

  MessageInfo info() const noexcept { return {source, tag, payload.size()}; }

  /// Builds a heap-backed message from an array of trivially copyable
  /// elements. Send sites on the hot path build arena payloads instead
  /// (Comm::make_payload / Comm::send_payload).
  template <class T>
  static Message of(int source, int tag, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m;
    m.source = source;
    m.tag = tag;
    m.payload.resize(items.size_bytes());
    if (!items.empty()) {
      std::memcpy(m.payload.data(), items.data(), items.size_bytes());
    }
    return m;
  }

  /// Builds a message from a single trivially copyable value.
  template <class T>
  static Message of_value(int source, int tag, const T& value) {
    return of<T>(source, tag, std::span<const T>(&value, 1));
  }

  /// Reinterprets the payload as an array of T. Precondition: the payload
  /// size is a multiple of sizeof(T).
  template <class T>
  std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(payload.size() % sizeof(T) == 0);
    std::vector<T> out(payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), payload.data(), payload.size());
    }
    return out;
  }

  /// Reinterprets the payload as exactly one T.
  template <class T>
  T as_value() const {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(payload.size() == sizeof(T));
    T out;
    std::memcpy(&out, payload.data(), sizeof(T));
    return out;
  }
};

}  // namespace reptile::rtm
