#pragma once
// Messages of the in-process message-passing runtime.
//
// The runtime replaces MPI on this host (see DESIGN.md §2): ranks are
// threads inside one process, and a message is an owned byte buffer tagged
// with its source rank and a user tag, matching MPI's (source, tag)
// selection model including ANY_SOURCE / ANY_TAG wildcards.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace reptile::rtm {

/// Wildcard source rank for receive/probe matching (MPI_ANY_SOURCE).
inline constexpr int kAnySource = -1;
/// Wildcard tag for receive/probe matching (MPI_ANY_TAG).
inline constexpr int kAnyTag = -1;

/// Envelope information returned by probe operations (MPI_Status analog).
struct MessageInfo {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
};

/// An owned, delivered message.
struct Message {
  int source = kAnySource;
  int tag = kAnyTag;
  /// Per-(source, tag) delivery sequence number, stamped by the rtm-check
  /// mailbox audit on push (see rtm/check/check.hpp); 0 when unchecked.
  std::uint64_t seq = 0;
  std::vector<std::byte> payload;

  MessageInfo info() const noexcept { return {source, tag, payload.size()}; }

  /// Builds a message from an array of trivially copyable elements.
  template <class T>
  static Message of(int source, int tag, std::span<const T> items) {
    static_assert(std::is_trivially_copyable_v<T>);
    Message m;
    m.source = source;
    m.tag = tag;
    m.payload.resize(items.size_bytes());
    if (!items.empty()) {
      std::memcpy(m.payload.data(), items.data(), items.size_bytes());
    }
    return m;
  }

  /// Builds a message from a single trivially copyable value.
  template <class T>
  static Message of_value(int source, int tag, const T& value) {
    return of<T>(source, tag, std::span<const T>(&value, 1));
  }

  /// Reinterprets the payload as an array of T. Precondition: the payload
  /// size is a multiple of sizeof(T).
  template <class T>
  std::vector<T> as() const {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(payload.size() % sizeof(T) == 0);
    std::vector<T> out(payload.size() / sizeof(T));
    if (!out.empty()) {
      std::memcpy(out.data(), payload.data(), payload.size());
    }
    return out;
  }

  /// Reinterprets the payload as exactly one T.
  template <class T>
  T as_value() const {
    static_assert(std::is_trivially_copyable_v<T>);
    assert(payload.size() == sizeof(T));
    T out;
    std::memcpy(&out, payload.data(), sizeof(T));
    return out;
  }
};

}  // namespace reptile::rtm
